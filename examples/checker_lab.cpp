//===----------------------------------------------------------------------===//
// The dynamic checkers at work (paper §6.3): a deliberately buggy phase
// reintroduces a Match node after PatternMatcher eliminated them. The
// TreeChecker, running PatternMatcher's postcondition after every later
// group, localizes the bug to the offending phase immediately — the
// paper's onboarding/debugging story.
//
//   $ ./examples/checker_lab
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "frontend/Frontend.h"
#include "frontend/TypeAssigner.h"
#include "support/OStream.h"
#include "transforms/StandardPlan.h"

using namespace mpc;

namespace {

/// A buggy phase: wraps integer literals back into single-case Match
/// trees, violating PatternMatcher's postcondition.
class ReintroduceMatch : public MiniPhase {
public:
  ReintroduceMatch()
      : MiniPhase("ReintroduceMatch",
                  "BUGGY: recreates Match nodes after patmat ran") {
    declareTransforms({TreeKind::Literal});
  }
  TreePtr transformLiteral(Literal *T, PhaseRunContext &Ctx) override {
    if (T->value().kind() != Constant::Int || Fired)
      return TreePtr(T);
    Fired = true; // one violation is enough for the demo
    TreeContext &Trees = Ctx.trees();
    Symbol *Wild = Ctx.syms().makeTerm(
        Ctx.syms().std().Wildcard, Ctx.syms().rootPackage(),
        SymFlag::Synthetic | SymFlag::Local, T->type());
    TreePtr Pat = Trees.makeIdent(T->loc(), Wild, T->type());
    TreePtr Case =
        Trees.makeCaseDef(T->loc(), std::move(Pat), nullptr, TreePtr(T));
    TreeList Cases;
    Cases.push_back(std::move(Case));
    return Trees.makeMatch(T->loc(), TreePtr(T), std::move(Cases),
                           T->type());
  }
  bool Fired = false;
};

} // namespace

int main() {
  CompilerContext Comp;
  Comp.options().CheckTrees = true;
  std::vector<std::string> Errors;

  // Run the standard pipeline first, then the buggy phase as its own
  // group, re-checking the accumulated postconditions afterwards.
  std::vector<SourceInput> Sources;
  Sources.push_back({"lab.scala", R"(
object Main {
  def pick(x: Any): Int = x match {
    case n: Int => n
    case _ => 7
  }
  def main(args: Array[String]): Unit = println(pick(3))
}
)"});
  std::vector<CompilationUnit> Units =
      runFrontEnd(Comp, std::move(Sources));

  PhasePlan Standard = makeStandardPlan(true, Errors);
  TransformPipeline Pipeline(Standard);
  TreeChecker Checker(makeRetypeChecker());
  PipelineResult PR = Pipeline.run(Units, Comp, &Checker);
  outs() << "standard pipeline: " << PR.CheckFailures.size()
         << " checker failures (expected 0)\n";

  ReintroduceMatch Buggy;
  for (CompilationUnit &U : Units)
    Buggy.runOnUnit(U, Comp);

  // Re-check all accumulated postconditions, as the between-groups
  // checker pass would (Listing 9).
  std::vector<Phase *> Executed = Standard.phasesUpTo(
      Standard.groups().size() - 1);
  auto Failures =
      Checker.check(Units[0], Executed, Comp, Buggy.name());
  outs() << "after the buggy phase: " << Failures.size()
         << " failures; the first one blames:\n\n";
  if (!Failures.empty())
    outs() << "  [" << Failures.front().PhaseName << "] "
           << Failures.front().Message << '\n';
  outs() << "\n=> the postcondition of PatternMatcher failed after "
            "running ReintroduceMatch,\n   so ReintroduceMatch is the "
            "phase that broke the invariant (paper §6.3).\n";
  return Failures.empty() ? 1 : 0;
}
