//===----------------------------------------------------------------------===//
// Parallel batch compilation: the paper's evaluation setting ("batch
// compilation in a big project", §5.2) driven through the compileBatch
// API. Twelve generated code bases are compiled across a worker pool;
// compiler instances share nothing, so the speedup is near-linear until
// memory bandwidth saturates.
//
//   $ ./examples/parallel_batch [threads]
//===----------------------------------------------------------------------===//

#include "driver/Batch.h"
#include "support/Timer.h"
#include "workload/ProgramGenerator.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace mpc;

namespace {

std::vector<BatchJob> makeJobs() {
  std::vector<BatchJob> Jobs;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    WorkloadProfile P = Seed % 2 ? stdlibProfile(0.05) : dottyProfile(0.05);
    P.Seed = Seed;
    BatchJob J;
    J.Sources = generateWorkload(P);
    J.Kind = PipelineKind::StandardFused;
    Jobs.push_back(std::move(J));
  }
  return Jobs;
}

double timeBatch(unsigned Threads, uint64_t *TotalInstrs) {
  Timer T;
  std::vector<BatchResult> Results = compileBatch(makeJobs(), Threads);
  double Sec = T.elapsedSeconds();
  *TotalInstrs = 0;
  for (BatchResult &R : Results) {
    if (R.HadErrors) {
      std::printf("unexpected errors:\n%s\n", R.DiagText.c_str());
      std::exit(1);
    }
    *TotalInstrs += R.Out.Prog.totalInstructions();
  }
  return Sec;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Threads = argc > 1 ? std::atoi(argv[1]) : 4;
  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("compiling 12 generated code bases (fused pipeline), "
              "%u hardware threads available\n\n",
              Cores);

  uint64_t InstrSerial = 0, InstrParallel = 0;
  double Serial = timeBatch(1, &InstrSerial);
  double Parallel = timeBatch(Threads, &InstrParallel);

  std::printf("  serial   (1 worker):  %6.3fs\n", Serial);
  std::printf("  parallel (%u workers): %6.3fs   speedup %.2fx\n", Threads,
              Parallel, Serial / Parallel);
  if (Cores <= 1)
    std::printf("  (single-core machine: correctness is exercised, "
                "speedup is not expected)\n");
  if (InstrSerial != InstrParallel) {
    std::printf("MISMATCH: outputs differ between serial and parallel!\n");
    return 1;
  }
  std::printf("  outputs identical: %llu bytecode instructions both ways\n",
              (unsigned long long)InstrSerial);
  return 0;
}
