//===----------------------------------------------------------------------===//
// Custom phase: the downstream-contributor story from §7 of the paper.
//
// A user-written miniphase — an integer constant folder — is inserted
// into the standard pipeline after TailRec. Because it is a miniphase, it
// fuses into the surrounding block: the extended pipeline performs the
// SAME number of tree traversals as the stock one. The phase also ships a
// postcondition, so -Ycheck verifies that no later phase reintroduces
// foldable arithmetic.
//
//   $ ./examples/custom_phase
//===----------------------------------------------------------------------===//

#include "backend/Interpreter.h"
#include "driver/Driver.h"
#include "support/OStream.h"

#include <cstdio>

using namespace mpc;

namespace {

/// Folds `<intlit> op <intlit>` for + - * into a single literal. A
/// realistic peephole in the spirit of Dotty's VCElideAllocations.
class ConstFoldPhase : public MiniPhase {
public:
  ConstFoldPhase()
      : MiniPhase("ConstFold", "folds constant integer arithmetic") {
    declareTransforms({TreeKind::Apply});
    addRunsAfter("FirstTransform"); // operators are method calls by then
  }

  TreePtr transformApply(Apply *T, PhaseRunContext &Ctx) override {
    int64_t Folded;
    if (!foldable(T, Ctx.Comp, &Folded))
      return TreePtr(T);
    ++NumFolded;
    return Ctx.trees().makeLiteral(T->loc(), Constant::makeInt(Folded),
                                   T->type());
  }

  /// No foldable arithmetic survives this phase — and no later phase may
  /// reintroduce any (enforced by the TreeChecker on every later group).
  bool checkPostCondition(const Tree *T,
                          CompilerContext &Comp) const override {
    if (const auto *A = dyn_cast<Apply>(T))
      return !foldable(A, Comp, nullptr);
    return true;
  }

  unsigned folded() const { return NumFolded; }

private:
  static bool foldable(const Apply *T, CompilerContext &Comp,
                       int64_t *Result) {
    const auto *Sel = dyn_cast<Select>(T->fun());
    if (!Sel || T->numArgs() != 1 || !Comp.syms().isPrimOp(Sel->sym()))
      return false;
    std::string_view Op = Sel->sym()->name().text();
    if (Op != "+" && Op != "-" && Op != "*")
      return false;
    const auto *L = dyn_cast<Literal>(Sel->qual());
    const auto *R = dyn_cast<Literal>(T->arg(0));
    if (!L || !R || L->value().kind() != Constant::Int ||
        R->value().kind() != Constant::Int)
      return false;
    if (Result) {
      int64_t A = L->value().intValue(), B = R->value().intValue();
      *Result = static_cast<int32_t>(Op == "+"   ? A + B
                                     : Op == "-" ? A - B
                                                 : A * B);
    }
    return true;
  }

  unsigned NumFolded = 0;
};

const char *DemoSource = R"(
object Main {
  def area(): Int = (3 + 4) * (10 - 2) // folds to 7 * 8, then to 56
  def main(args: Array[String]): Unit = {
    println(2 * 3 + 4 * 5)             // folds to 26 at compile time
    println(area())
  }
}
)";

} // namespace

int main() {
  // 1. Build the stock plan and the customized one.
  std::vector<std::string> Errors;
  PhasePlan Stock = makeStandardPlan(/*Fuse=*/true, Errors);

  ConstFoldPhase *Folder = nullptr;
  PhasePlan Custom = makeCustomizedPlan(
      /*Fuse=*/true, Errors,
      [&](std::vector<std::unique_ptr<Phase>> &Phases) {
        auto Mine = std::make_unique<ConstFoldPhase>();
        Folder = Mine.get();
        for (size_t I = 0; I < Phases.size(); ++I) {
          if (Phases[I]->name() == "TailRec") {
            Phases.insert(Phases.begin() + I + 1, std::move(Mine));
            return;
          }
        }
        Phases.push_back(std::move(Mine)); // fallback: end of pipeline
      });
  if (!Errors.empty()) {
    std::printf("plan error: %s\n", Errors.front().c_str());
    return 1;
  }

  // 2. Compile the same program under both plans, with -Ycheck on.
  CompilerContext Comp1, Comp2;
  Comp1.options().CheckTrees = Comp2.options().CheckTrees = true;
  CompileOutput Plain = compileProgramWithPlan(
      Comp1, {{"demo.scala", DemoSource}}, Stock);
  CompileOutput Folded = compileProgramWithPlan(
      Comp2, {{"demo.scala", DemoSource}}, Custom);

  std::printf("stock pipeline:      %2zu phases, %llu traversals\n",
              Stock.phaseCount(),
              (unsigned long long)Plain.Timings.Traversals);
  std::printf("with ConstFold:      %2zu phases, %llu traversals\n",
              Custom.phaseCount(),
              (unsigned long long)Folded.Timings.Traversals);
  std::printf("=> one more phase, same traversal count: the new phase "
              "fused into its block.\n\n");

  std::printf("constants folded at compile time: %u\n", Folder->folded());
  std::printf("checker failures (postcondition enforced on all later "
              "groups): %zu\n\n",
              Folded.CheckFailures.size());

  // 3. Both binaries behave identically.
  for (CompileOutput *Out : {&Plain, &Folded}) {
    CompilerContext &Comp = Out == &Plain ? Comp1 : Comp2;
    Interpreter I(Comp, Out->Units);
    ExecResult R = I.runMain(Out->EntryPoints.front());
    std::printf("%s output: %s", Out == &Plain ? "stock " : "folded",
                R.Output.c_str());
  }
  return 0;
}
