//===----------------------------------------------------------------------===//
// Quickstart: define two miniphases of your own, fuse them into one
// traversal, and watch both run at every node of a single pass.
//
//   $ ./examples/quickstart
//===----------------------------------------------------------------------===//

#include "ast/TreePrinter.h"
#include "core/FusedBlock.h"
#include "support/OStream.h"

#include <memory>

using namespace mpc;

namespace {

/// Adds 1 to every integer literal.
class AddOne : public MiniPhase {
public:
  AddOne() : MiniPhase("AddOne", "bumps integer literals") {
    declareTransforms({TreeKind::Literal});
  }
  TreePtr transformLiteral(Literal *T, PhaseRunContext &Ctx) override {
    if (T->value().kind() != Constant::Int)
      return TreePtr(T);
    return Ctx.trees().makeLiteral(
        T->loc(), Constant::makeInt(T->value().intValue() + 1), T->type());
  }
};

/// Turns every `if (true) a else b` into `a` — and because it is fused
/// AFTER AddOne, it sees literals that AddOne already bumped.
class FoldIf : public MiniPhase {
public:
  FoldIf() : MiniPhase("FoldIf", "folds constant conditions") {
    declareTransforms({TreeKind::If});
  }
  TreePtr transformIf(If *T, PhaseRunContext &Ctx) override {
    (void)Ctx;
    const auto *C = dyn_cast<Literal>(T->cond());
    if (!C || C->value().kind() != Constant::Bool)
      return TreePtr(T);
    return TreePtr(C->value().boolValue() ? T->thenp() : T->elsep());
  }
};

} // namespace

int main() {
  CompilerContext Comp;
  TreeContext &Trees = Comp.trees();
  TypeContext &Types = Comp.types();

  // if (true) 41 else 0   — built by hand through the tree API.
  TreePtr Tree = Trees.makeIf(
      SourceLoc(),
      Trees.makeLiteral(SourceLoc(), Constant::makeBool(true),
                        Types.booleanType()),
      Trees.makeLiteral(SourceLoc(), Constant::makeInt(41),
                        Types.intType()),
      Trees.makeLiteral(SourceLoc(), Constant::makeInt(0),
                        Types.intType()),
      Types.intType());

  outs() << "before:\n";
  printTree(outs(), Tree.get());

  AddOne P1;
  FoldIf P2;
  FusedBlock Block({&P1, &P2}); // one traversal, both transformations

  CompilationUnit Unit;
  Unit.Root = Tree;
  Block.runOnUnit(Unit, Comp);

  outs() << "\nafter one fused traversal (AddOne then FoldIf at each "
            "node):\n";
  printTree(outs(), Unit.Root.get());
  outs() << "\nnodes visited: " << Block.nodesVisited()
         << ", hooks executed: " << Block.hooksExecuted() << '\n';
  return 0;
}
