//===----------------------------------------------------------------------===//
// A tour of the lowering pipeline: compiles a small program and prints
// the tree after each fusion group, so you can watch pattern matching
// become conditionals, lazy vals become flag+storage fields, closures
// become classes, and so on.
//
//   $ ./examples/lowering_tour
//===----------------------------------------------------------------------===//

#include "ast/TreePrinter.h"
#include "ast/TreeUtils.h"
#include "core/Pipeline.h"
#include "frontend/Frontend.h"
#include "support/OStream.h"
#include "transforms/StandardPlan.h"

using namespace mpc;

static const char *Program = R"(
class Counter(start: Int) {
  lazy val bonus: Int = start * 2
  def classify(x: Any): Int = x match {
    case n: Int => n + bonus
    case _ => 0
  }
}
)";

int main() {
  CompilerContext Comp;
  std::vector<std::string> Errors;
  PhasePlan Plan = makeStandardPlan(true, Errors);

  std::vector<SourceInput> Sources;
  Sources.push_back({"tour.scala", Program});
  std::vector<CompilationUnit> Units =
      runFrontEnd(Comp, std::move(Sources));
  if (Comp.diags().hasErrors()) {
    Comp.diags().printAll(errs());
    return 1;
  }

  PrintOptions PO;
  PO.ShowTypes = false;
  outs() << "=== after the front end (" << countNodes(Units[0].Root.get())
         << " nodes) ===\n";
  printTree(outs(), Units[0].Root.get(), PO);

  for (const PhaseGroup &G : Plan.groups()) {
    if (G.isFused()) {
      for (CompilationUnit &U : Units)
        G.Block->runOnUnit(U, Comp);
    } else {
      for (Phase *P : G.Members)
        for (CompilationUnit &U : Units)
          P->runOnUnit(U, Comp);
    }
    outs() << "\n=== after ";
    for (size_t I = 0; I < G.Members.size(); ++I)
      outs() << (I ? " + " : "") << G.Members[I]->name();
    outs() << " (" << countNodes(Units[0].Root.get()) << " nodes) ===\n";
    printTree(outs(), Units[0].Root.get(), PO);
  }
  return 0;
}
