//===----------------------------------------------------------------------===//
// A complete compiler run: MiniScala source -> typed trees -> 28-phase
// lowering pipeline -> bytecode, then execution. Compiles a file given on
// the command line, or the paper's Listing 1 example by default.
//
//   $ ./examples/minischala_compiler [file.scala]
//===----------------------------------------------------------------------===//

#include "backend/Interpreter.h"
#include "driver/Driver.h"
#include "support/OStream.h"
#include "workload/Corpus.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace mpc;

int main(int argc, char **argv) {
  std::string Name = "listing1.scala";
  std::string Source;
  if (argc > 1) {
    Name = argv[1];
    std::ifstream In(argv[1]);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  } else {
    Source = findCorpusProgram("listing1")->Source;
    outs() << "(no file given; compiling the paper's Listing 1 demo)\n\n";
  }

  CompilerContext Comp;
  Comp.options().CheckTrees = true; // -Ycheck: verify between groups
  std::vector<SourceInput> Sources;
  Sources.push_back({Name, Source});
  CompileOutput Out =
      compileProgram(Comp, std::move(Sources), PipelineKind::StandardFused);

  if (Comp.diags().hasErrors()) {
    Comp.diags().printAll(errs());
    return 1;
  }
  for (const CheckFailure &F : Out.CheckFailures)
    errs() << "checker: " << F.Message << '\n';

  outs() << "frontend   " << Out.Timings.FrontendSec << "s\n"
         << "transforms " << Out.Timings.TransformSec << "s ("
         << Out.Timings.Traversals << " tree traversals)\n"
         << "backend    " << Out.Timings.BackendSec << "s\n"
         << "bytecode   " << Out.Prog.totalInstructions()
         << " instructions in " << Out.Prog.Classes.size() << " classes\n";
  Comp.stats().printPrefixed(outs(), "fusion.");

  if (Out.EntryPoints.empty()) {
    outs() << "(no main method; nothing to run)\n";
    return 0;
  }
  outs() << "\nrunning " << Out.EntryPoints.front()->fullName() << ":\n";
  Interpreter Interp(Comp, Out.Units);
  ExecResult R = Interp.runMain(Out.EntryPoints.front());
  outs() << R.Output;
  if (R.Uncaught) {
    errs() << R.Error << '\n';
    return 1;
  }
  return 0;
}
