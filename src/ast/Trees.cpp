#include "ast/Trees.h"

#include <new>

using namespace mpc;

const char *mpc::treeKindName(TreeKind K) {
  switch (K) {
#define TREE_KIND(Name)                                                        \
  case TreeKind::Name:                                                         \
    return #Name;
#include "ast/TreeKinds.def"
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Allocation / destruction
//===----------------------------------------------------------------------===//

template <typename NodeT, typename... Args>
GcRef<NodeT> TreeContext::allocate(size_t ExtraBytes, Args &&...CtorArgs) {
  // The managed-heap charge approximates a JVM node: the object itself plus
  // its child-list cells (ExtraBytes = 8 per child, mirroring cons cells).
  size_t Charge = sizeof(NodeT) + ExtraBytes;
  uint64_t Birth = 0;
  void *Mem = Heap.allocate(sizeof(NodeT), Charge, Birth);
  auto *Node = new (Mem) NodeT(*this, std::forward<Args>(CtorArgs)...);
  Node->Birth = Birth;
  Node->AllocSize = static_cast<uint32_t>(Charge);
  ++NumCreated;
  if (Cache)
    Cache->store(reinterpret_cast<uint64_t>(Node), sizeof(NodeT));
  return GcRef<NodeT>(Node);
}

void TreeContext::destroy(Tree *T) {
  uint64_t Birth = T->Birth;
  uint32_t Size = T->AllocSize;
  switch (T->kind()) {
#define TREE_KIND(Name)                                                        \
  case TreeKind::Name:                                                         \
    static_cast<Name *>(T)->~Name();                                           \
    break;
#include "ast/TreeKinds.def"
  }
  Heap.deallocate(T, Size, Birth);
}

//===----------------------------------------------------------------------===//
// Factory methods
//===----------------------------------------------------------------------===//

GcRef<Ident> TreeContext::makeIdent(SourceLoc L, Symbol *Sym, const Type *Ty) {
  assert(Sym && "Ident requires a symbol");
  return allocate<Ident>(0, L, Ty, Sym);
}

GcRef<Select> TreeContext::makeSelect(SourceLoc L, TreePtr Qual, Symbol *Sym,
                                      const Type *Ty) {
  assert(Qual && "Select requires a qualifier");
  assert(Sym && "Select requires a symbol");
  return allocate<Select>(8, L, Ty, std::move(Qual), Sym);
}

GcRef<This> TreeContext::makeThis(SourceLoc L, ClassSymbol *Cls,
                                  const Type *Ty) {
  return allocate<This>(0, L, Ty, Cls);
}

GcRef<Super> TreeContext::makeSuper(SourceLoc L, ClassSymbol *FromCls,
                                    ClassSymbol *Target, const Type *Ty) {
  return allocate<Super>(0, L, Ty, FromCls, Target);
}

GcRef<Literal> TreeContext::makeLiteral(SourceLoc L, Constant V,
                                        const Type *Ty) {
  return allocate<Literal>(0, L, Ty, V);
}

GcRef<Apply> TreeContext::makeApply(SourceLoc L, TreePtr Fun, TreeList Args,
                                    const Type *Ty) {
  assert(Fun && "Apply requires a function");
  TreeList Ks;
  Ks.reserve(Args.size() + 1);
  Ks.push_back(std::move(Fun));
  for (TreePtr &A : Args) {
    assert(A && "Apply argument must be non-null");
    Ks.push_back(std::move(A));
  }
  return allocate<Apply>(8 * Ks.size(), L, Ty, std::move(Ks));
}

GcRef<TypeApply> TreeContext::makeTypeApply(SourceLoc L, TreePtr Fun,
                                            std::vector<const Type *> TArgs,
                                            const Type *Ty) {
  assert(Fun && "TypeApply requires a function");
  return allocate<TypeApply>(8, L, Ty, std::move(Fun), std::move(TArgs));
}

GcRef<New> TreeContext::makeNew(SourceLoc L, const Type *ClsTy,
                                TreeList Args) {
  assert(ClsTy && "New requires a class type");
  return allocate<New>(8 * Args.size(), L, ClsTy, ClsTy, std::move(Args));
}

GcRef<Typed> TreeContext::makeTyped(SourceLoc L, TreePtr Expr,
                                    const Type *TargetTy) {
  assert(Expr && "Typed requires an expression");
  return allocate<Typed>(8, L, TargetTy, std::move(Expr));
}

GcRef<Assign> TreeContext::makeAssign(SourceLoc L, TreePtr Lhs, TreePtr Rhs,
                                      const Type *UnitTy) {
  TreeList Ks;
  Ks.push_back(std::move(Lhs));
  Ks.push_back(std::move(Rhs));
  return allocate<Assign>(16, L, UnitTy, std::move(Ks));
}

GcRef<Block> TreeContext::makeBlock(SourceLoc L, TreeList Stats,
                                    TreePtr Expr) {
  assert(Expr && "Block requires a result expression");
  const Type *Ty = Expr->type();
  TreeList Ks = std::move(Stats);
  Ks.push_back(std::move(Expr));
  return allocate<Block>(8 * Ks.size(), L, Ty, std::move(Ks));
}

GcRef<If> TreeContext::makeIf(SourceLoc L, TreePtr Cond, TreePtr Then,
                              TreePtr Else, const Type *Ty) {
  assert(Cond && Then && Else && "If requires all three children");
  TreeList Ks;
  Ks.push_back(std::move(Cond));
  Ks.push_back(std::move(Then));
  Ks.push_back(std::move(Else));
  return allocate<If>(24, L, Ty, std::move(Ks));
}

GcRef<Closure> TreeContext::makeClosure(SourceLoc L, TreeList Params,
                                        TreePtr Body, const Type *Ty) {
  assert(Body && "Closure requires a body");
  TreeList Ks = std::move(Params);
  Ks.push_back(std::move(Body));
  return allocate<Closure>(8 * Ks.size(), L, Ty, std::move(Ks));
}

GcRef<Match> TreeContext::makeMatch(SourceLoc L, TreePtr Sel, TreeList Cases,
                                    const Type *Ty) {
  assert(Sel && "Match requires a selector");
  TreeList Ks;
  Ks.reserve(Cases.size() + 1);
  Ks.push_back(std::move(Sel));
  for (TreePtr &C : Cases)
    Ks.push_back(std::move(C));
  return allocate<Match>(8 * Ks.size(), L, Ty, std::move(Ks));
}

GcRef<CaseDef> TreeContext::makeCaseDef(SourceLoc L, TreePtr Pat,
                                        TreePtr Guard, TreePtr Body) {
  assert(Pat && Body && "CaseDef requires pattern and body");
  const Type *Ty = Body->type();
  TreeList Ks;
  Ks.push_back(std::move(Pat));
  Ks.push_back(std::move(Guard)); // nullable slot
  Ks.push_back(std::move(Body));
  return allocate<CaseDef>(24, L, Ty, std::move(Ks));
}

GcRef<Bind> TreeContext::makeBind(SourceLoc L, Symbol *Sym, TreePtr Pat) {
  assert(Sym && Pat && "Bind requires symbol and pattern");
  return allocate<Bind>(8, L, Sym->info(), Sym, std::move(Pat));
}

GcRef<Alternative> TreeContext::makeAlternative(SourceLoc L, TreeList Pats,
                                                const Type *Ty) {
  return allocate<Alternative>(8 * Pats.size(), L, Ty, std::move(Pats));
}

GcRef<UnApply> TreeContext::makeUnApply(SourceLoc L, ClassSymbol *Cls,
                                        TreeList Pats, const Type *Ty) {
  assert(Cls && "UnApply requires a case class");
  return allocate<UnApply>(8 * Pats.size(), L, Ty, Cls, std::move(Pats));
}

GcRef<Try> TreeContext::makeTry(SourceLoc L, TreePtr Body, TreeList Catches,
                                TreePtr Finalizer, const Type *Ty) {
  assert(Body && "Try requires a body");
  TreeList Ks;
  Ks.reserve(Catches.size() + 2);
  Ks.push_back(std::move(Body));
  Ks.push_back(std::move(Finalizer)); // nullable slot
  for (TreePtr &C : Catches)
    Ks.push_back(std::move(C));
  return allocate<Try>(8 * Ks.size(), L, Ty, std::move(Ks));
}

GcRef<Throw> TreeContext::makeThrow(SourceLoc L, TreePtr Expr,
                                    const Type *NothingTy) {
  assert(Expr && "Throw requires an expression");
  TreeList Ks;
  Ks.push_back(std::move(Expr));
  return allocate<Throw>(8, L, NothingTy, std::move(Ks));
}

GcRef<Return> TreeContext::makeReturn(SourceLoc L, TreePtr Expr,
                                      Symbol *FromMethod,
                                      const Type *NothingTy) {
  TreeList Ks;
  Ks.push_back(std::move(Expr)); // nullable slot
  return allocate<Return>(8, L, NothingTy, FromMethod, std::move(Ks));
}

GcRef<WhileDo> TreeContext::makeWhileDo(SourceLoc L, TreePtr Cond,
                                        TreePtr Body, const Type *UnitTy) {
  assert(Cond && Body && "WhileDo requires condition and body");
  TreeList Ks;
  Ks.push_back(std::move(Cond));
  Ks.push_back(std::move(Body));
  return allocate<WhileDo>(16, L, UnitTy, std::move(Ks));
}

GcRef<Labeled> TreeContext::makeLabeled(SourceLoc L, Symbol *Label,
                                        TreePtr Body, const Type *Ty) {
  assert(Label && Body && "Labeled requires label and body");
  TreeList Ks;
  Ks.push_back(std::move(Body));
  return allocate<Labeled>(8, L, Ty, Label, std::move(Ks));
}

GcRef<Goto> TreeContext::makeGoto(SourceLoc L, Symbol *Label,
                                  const Type *NothingTy) {
  assert(Label && "Goto requires a label");
  return allocate<Goto>(0, L, NothingTy, Label);
}

GcRef<SeqLiteral> TreeContext::makeSeqLiteral(SourceLoc L, TreeList Elems,
                                              const Type *ElemTy,
                                              const Type *Ty) {
  return allocate<SeqLiteral>(8 * Elems.size(), L, Ty, ElemTy,
                              std::move(Elems));
}

GcRef<ValDef> TreeContext::makeValDef(SourceLoc L, Symbol *Sym, TreePtr Rhs) {
  assert(Sym && "ValDef requires a symbol");
  TreeList Ks;
  Ks.push_back(std::move(Rhs)); // nullable slot
  return allocate<ValDef>(8, L, nullptr, Sym, std::move(Ks));
}

GcRef<DefDef> TreeContext::makeDefDef(SourceLoc L, Symbol *Sym,
                                      std::vector<uint32_t> ParamListSizes,
                                      TreeList Params, TreePtr Rhs) {
  assert(Sym && "DefDef requires a symbol");
#ifndef NDEBUG
  size_t Total = 0;
  for (uint32_t S : ParamListSizes)
    Total += S;
  assert(Total == Params.size() && "param list sizes inconsistent");
#endif
  TreeList Ks = std::move(Params);
  Ks.push_back(std::move(Rhs)); // nullable slot
  return allocate<DefDef>(8 * Ks.size(), L, nullptr, Sym,
                          std::move(ParamListSizes), std::move(Ks));
}

GcRef<ClassDef> TreeContext::makeClassDef(SourceLoc L, ClassSymbol *Sym,
                                          TreeList Body) {
  assert(Sym && "ClassDef requires a class symbol");
  return allocate<ClassDef>(8 * Body.size(), L, nullptr, Sym,
                            std::move(Body));
}

GcRef<PackageDef> TreeContext::makePackageDef(SourceLoc L, Name PkgName,
                                              TreeList Stats) {
  return allocate<PackageDef>(8 * Stats.size(), L, nullptr, PkgName,
                              std::move(Stats));
}

//===----------------------------------------------------------------------===//
// withNewChildren — the copier with the reuse optimization.
//===----------------------------------------------------------------------===//

TreePtr TreeContext::withNewChildren(Tree *T, TreeList NewKids) {
  assert(T && "withNewChildren on null tree");
  assert(NewKids.size() == T->numKids() &&
         "withNewChildren must preserve arity");

  bool AllSame = true;
  for (size_t I = 0; I < NewKids.size(); ++I) {
    if (NewKids[I].get() != T->kid(static_cast<unsigned>(I))) {
      AllSame = false;
      break;
    }
  }
  if (AllSame) {
    ++NumReused;
    return TreePtr(T);
  }
  return withNewChildrenForced(T, std::move(NewKids));
}

TreePtr TreeContext::withNewChildrenForced(Tree *T, TreeList NewKids) {
  assert(T && "withNewChildren on null tree");
  assert(NewKids.size() == T->numKids() &&
         "withNewChildren must preserve arity");
  ++NumRebuilt;
  return rebuildNode(T, std::move(NewKids), T->type());
}

TreePtr TreeContext::withType(Tree *T, const Type *NewTy) {
  assert(T && "withType on null tree");
  if (T->type() == NewTy)
    return TreePtr(T);
  TreeList Kids = T->kids(); // copy of the child refs
  return rebuildNode(T, std::move(Kids), NewTy);
}

TreePtr TreeContext::rebuildNode(Tree *T, TreeList NewKids, const Type *Ty) {
  SourceLoc L = T->loc();
  switch (T->kind()) {
  case TreeKind::Ident:
    return allocate<Ident>(0, L, Ty, cast<Ident>(T)->sym());
  case TreeKind::This:
    return allocate<This>(0, L, Ty, cast<This>(T)->cls());
  case TreeKind::Super:
    return allocate<Super>(0, L, Ty, cast<Super>(T)->fromClass(),
                           cast<Super>(T)->target());
  case TreeKind::Literal:
    return allocate<Literal>(0, L, Ty, cast<Literal>(T)->value());
  case TreeKind::Goto:
    return allocate<Goto>(0, L, Ty, cast<Goto>(T)->label());
  case TreeKind::Select:
    return allocate<Select>(8, L, Ty, std::move(NewKids[0]),
                            cast<Select>(T)->sym());
  case TreeKind::Apply:
    return allocate<Apply>(8 * NewKids.size(), L, Ty, std::move(NewKids));
  case TreeKind::TypeApply:
    return allocate<TypeApply>(8, L, Ty, std::move(NewKids[0]),
                               cast<TypeApply>(T)->typeArgs());
  case TreeKind::New:
    return allocate<New>(8 * NewKids.size(), L, Ty,
                         cast<New>(T)->classTy(), std::move(NewKids));
  case TreeKind::Typed:
    return allocate<Typed>(8, L, Ty, std::move(NewKids[0]));
  case TreeKind::Assign:
    return allocate<Assign>(16, L, Ty, std::move(NewKids));
  case TreeKind::Block:
    return allocate<Block>(8 * NewKids.size(), L, Ty, std::move(NewKids));
  case TreeKind::If:
    return allocate<If>(24, L, Ty, std::move(NewKids));
  case TreeKind::Closure:
    return allocate<Closure>(8 * NewKids.size(), L, Ty, std::move(NewKids));
  case TreeKind::Match:
    return allocate<Match>(8 * NewKids.size(), L, Ty, std::move(NewKids));
  case TreeKind::CaseDef:
    return allocate<CaseDef>(24, L, Ty, std::move(NewKids));
  case TreeKind::Bind:
    return allocate<Bind>(8, L, Ty, cast<Bind>(T)->sym(),
                          std::move(NewKids[0]));
  case TreeKind::Alternative:
    return allocate<Alternative>(8 * NewKids.size(), L, Ty,
                                 std::move(NewKids));
  case TreeKind::UnApply:
    return allocate<UnApply>(8 * NewKids.size(), L, Ty,
                             cast<UnApply>(T)->caseClass(),
                             std::move(NewKids));
  case TreeKind::Try:
    return allocate<Try>(8 * NewKids.size(), L, Ty, std::move(NewKids));
  case TreeKind::Throw:
    return allocate<Throw>(8, L, Ty, std::move(NewKids));
  case TreeKind::Return:
    return allocate<Return>(8, L, Ty, cast<Return>(T)->fromMethod(),
                            std::move(NewKids));
  case TreeKind::WhileDo:
    return allocate<WhileDo>(16, L, Ty, std::move(NewKids));
  case TreeKind::Labeled:
    return allocate<Labeled>(8, L, Ty, cast<Labeled>(T)->label(),
                             std::move(NewKids));
  case TreeKind::SeqLiteral:
    return allocate<SeqLiteral>(8 * NewKids.size(), L, Ty,
                                cast<SeqLiteral>(T)->elemType(),
                                std::move(NewKids));
  case TreeKind::ValDef:
    return allocate<ValDef>(8, L, Ty, cast<ValDef>(T)->sym(),
                            std::move(NewKids));
  case TreeKind::DefDef:
    return allocate<DefDef>(8 * NewKids.size(), L, Ty, cast<DefDef>(T)->sym(),
                            cast<DefDef>(T)->paramListSizes(),
                            std::move(NewKids));
  case TreeKind::ClassDef:
    return allocate<ClassDef>(8 * NewKids.size(), L, Ty,
                              cast<ClassDef>(T)->sym(), std::move(NewKids));
  case TreeKind::PackageDef:
    return allocate<PackageDef>(8 * NewKids.size(), L, Ty,
                                cast<PackageDef>(T)->pkgName(),
                                std::move(NewKids));
  }
  assert(false && "unhandled tree kind in rebuildNode");
  return TreePtr(T);
}
