#include "ast/Trees.h"

#include <new>

using namespace mpc;

const char *mpc::treeKindName(TreeKind K) {
  switch (K) {
#define TREE_KIND(Name)                                                        \
  case TreeKind::Name:                                                         \
    return #Name;
#include "ast/TreeKinds.def"
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Allocation / destruction
//===----------------------------------------------------------------------===//

template <typename NodeT, typename... Args>
GcRef<NodeT> TreeContext::allocate(size_t ExtraBytes, Args &&...CtorArgs) {
  // The managed-heap charge approximates a JVM node: the object itself plus
  // its child-list cells (ExtraBytes = 8 per child, mirroring cons cells).
  // The real storage behind the charge is sizeof(NodeT) from the slab
  // backend; spilled child arrays are separate raw slab blocks.
  size_t Charge = sizeof(NodeT) + ExtraBytes;
  uint64_t Birth = 0;
  void *Mem = Heap.allocate(sizeof(NodeT), Charge, Birth);
  auto *Node = new (Mem) NodeT(*this, std::forward<Args>(CtorArgs)...);
  Node->Birth = Birth;
  Node->AllocSize = static_cast<uint32_t>(Charge);
  ++NumCreated;
  if (Cache)
    Cache->store(reinterpret_cast<uint64_t>(Node), sizeof(NodeT));
  return GcRef<NodeT>(Node);
}

void TreeContext::destroy(Tree *T) {
  uint64_t Birth = T->Birth;
  uint32_t Charge = T->AllocSize;
  size_t NodeBytes = 0;
  switch (T->kind()) {
#define TREE_KIND(Name)                                                        \
  case TreeKind::Name:                                                         \
    NodeBytes = sizeof(Name);                                                  \
    static_cast<Name *>(T)->~Name();                                           \
    break;
#include "ast/TreeKinds.def"
  }
  Heap.deallocate(T, NodeBytes, Charge, Birth);
}

//===----------------------------------------------------------------------===//
// Factory methods
//===----------------------------------------------------------------------===//

GcRef<Ident> TreeContext::makeIdent(SourceLoc L, Symbol *Sym, const Type *Ty) {
  assert(Sym && "Ident requires a symbol");
  return allocate<Ident>(0, L, Ty, Sym);
}

GcRef<Select> TreeContext::makeSelect(SourceLoc L, TreePtr Qual, Symbol *Sym,
                                      const Type *Ty) {
  assert(Qual && "Select requires a qualifier");
  assert(Sym && "Select requires a symbol");
  return allocate<Select>(8, L, Ty, KidSpan(&Qual, 1), Sym);
}

GcRef<This> TreeContext::makeThis(SourceLoc L, ClassSymbol *Cls,
                                  const Type *Ty) {
  return allocate<This>(0, L, Ty, Cls);
}

GcRef<Super> TreeContext::makeSuper(SourceLoc L, ClassSymbol *FromCls,
                                    ClassSymbol *Target, const Type *Ty) {
  return allocate<Super>(0, L, Ty, FromCls, Target);
}

GcRef<Literal> TreeContext::makeLiteral(SourceLoc L, Constant V,
                                        const Type *Ty) {
  return allocate<Literal>(0, L, Ty, V);
}

GcRef<Apply> TreeContext::makeApply(SourceLoc L, TreePtr Fun, TreeList Args,
                                    const Type *Ty) {
  assert(Fun && "Apply requires a function");
  TreeList Ks;
  Ks.reserve(Args.size() + 1);
  Ks.push_back(std::move(Fun));
  for (TreePtr &A : Args) {
    assert(A && "Apply argument must be non-null");
    Ks.push_back(std::move(A));
  }
  return allocate<Apply>(8 * Ks.size(), L, Ty, KidSpan(Ks));
}

GcRef<Apply> TreeContext::makeApply(SourceLoc L, TreePtr *FunAndArgs,
                                    size_t NumKids, const Type *Ty) {
  assert(NumKids >= 1 && FunAndArgs[0] && "Apply requires a function");
#ifndef NDEBUG
  for (size_t I = 1; I < NumKids; ++I)
    assert(FunAndArgs[I] && "Apply argument must be non-null");
#endif
  return allocate<Apply>(8 * NumKids, L, Ty, KidSpan(FunAndArgs, NumKids));
}

GcRef<TypeApply> TreeContext::makeTypeApply(SourceLoc L, TreePtr Fun,
                                            std::vector<const Type *> TArgs,
                                            const Type *Ty) {
  assert(Fun && "TypeApply requires a function");
  return allocate<TypeApply>(8, L, Ty, KidSpan(&Fun, 1), std::move(TArgs));
}

GcRef<New> TreeContext::makeNew(SourceLoc L, const Type *ClsTy,
                                TreeList Args) {
  assert(ClsTy && "New requires a class type");
  return allocate<New>(8 * Args.size(), L, ClsTy, ClsTy, KidSpan(Args));
}

GcRef<New> TreeContext::makeNew(SourceLoc L, const Type *ClsTy, TreePtr *Args,
                                size_t NumArgs) {
  assert(ClsTy && "New requires a class type");
  return allocate<New>(8 * NumArgs, L, ClsTy, ClsTy, KidSpan(Args, NumArgs));
}

GcRef<Typed> TreeContext::makeTyped(SourceLoc L, TreePtr Expr,
                                    const Type *TargetTy) {
  assert(Expr && "Typed requires an expression");
  return allocate<Typed>(8, L, TargetTy, KidSpan(&Expr, 1));
}

GcRef<Assign> TreeContext::makeAssign(SourceLoc L, TreePtr Lhs, TreePtr Rhs,
                                      const Type *UnitTy) {
  TreePtr Ks[2] = {std::move(Lhs), std::move(Rhs)};
  return allocate<Assign>(16, L, UnitTy, KidSpan(Ks, 2));
}

GcRef<Block> TreeContext::makeBlock(SourceLoc L, TreeList Stats,
                                    TreePtr Expr) {
  assert(Expr && "Block requires a result expression");
  const Type *Ty = Expr->type();
  TreeList Ks = std::move(Stats);
  Ks.push_back(std::move(Expr));
  return allocate<Block>(8 * Ks.size(), L, Ty, KidSpan(Ks));
}

GcRef<If> TreeContext::makeIf(SourceLoc L, TreePtr Cond, TreePtr Then,
                              TreePtr Else, const Type *Ty) {
  assert(Cond && Then && Else && "If requires all three children");
  TreePtr Ks[3] = {std::move(Cond), std::move(Then), std::move(Else)};
  return allocate<If>(24, L, Ty, KidSpan(Ks, 3));
}

GcRef<Closure> TreeContext::makeClosure(SourceLoc L, TreeList Params,
                                        TreePtr Body, const Type *Ty) {
  assert(Body && "Closure requires a body");
  TreeList Ks = std::move(Params);
  Ks.push_back(std::move(Body));
  return allocate<Closure>(8 * Ks.size(), L, Ty, KidSpan(Ks));
}

GcRef<Match> TreeContext::makeMatch(SourceLoc L, TreePtr Sel, TreeList Cases,
                                    const Type *Ty) {
  assert(Sel && "Match requires a selector");
  TreeList Ks;
  Ks.reserve(Cases.size() + 1);
  Ks.push_back(std::move(Sel));
  for (TreePtr &C : Cases)
    Ks.push_back(std::move(C));
  return allocate<Match>(8 * Ks.size(), L, Ty, KidSpan(Ks));
}

GcRef<CaseDef> TreeContext::makeCaseDef(SourceLoc L, TreePtr Pat,
                                        TreePtr Guard, TreePtr Body) {
  assert(Pat && Body && "CaseDef requires pattern and body");
  const Type *Ty = Body->type();
  TreePtr Ks[3] = {std::move(Pat), std::move(Guard) /* nullable slot */,
                   std::move(Body)};
  return allocate<CaseDef>(24, L, Ty, KidSpan(Ks, 3));
}

GcRef<Bind> TreeContext::makeBind(SourceLoc L, Symbol *Sym, TreePtr Pat) {
  assert(Sym && Pat && "Bind requires symbol and pattern");
  return allocate<Bind>(8, L, Sym->info(), Sym, KidSpan(&Pat, 1));
}

GcRef<Alternative> TreeContext::makeAlternative(SourceLoc L, TreeList Pats,
                                                const Type *Ty) {
  return allocate<Alternative>(8 * Pats.size(), L, Ty, KidSpan(Pats));
}

GcRef<UnApply> TreeContext::makeUnApply(SourceLoc L, ClassSymbol *Cls,
                                        TreeList Pats, const Type *Ty) {
  assert(Cls && "UnApply requires a case class");
  return allocate<UnApply>(8 * Pats.size(), L, Ty, Cls, KidSpan(Pats));
}

GcRef<Try> TreeContext::makeTry(SourceLoc L, TreePtr Body, TreeList Catches,
                                TreePtr Finalizer, const Type *Ty) {
  assert(Body && "Try requires a body");
  TreeList Ks;
  Ks.reserve(Catches.size() + 2);
  Ks.push_back(std::move(Body));
  Ks.push_back(std::move(Finalizer)); // nullable slot
  for (TreePtr &C : Catches)
    Ks.push_back(std::move(C));
  return allocate<Try>(8 * Ks.size(), L, Ty, KidSpan(Ks));
}

GcRef<Throw> TreeContext::makeThrow(SourceLoc L, TreePtr Expr,
                                    const Type *NothingTy) {
  assert(Expr && "Throw requires an expression");
  return allocate<Throw>(8, L, NothingTy, KidSpan(&Expr, 1));
}

GcRef<Return> TreeContext::makeReturn(SourceLoc L, TreePtr Expr,
                                      Symbol *FromMethod,
                                      const Type *NothingTy) {
  // Nullable slot.
  return allocate<Return>(8, L, NothingTy, FromMethod, KidSpan(&Expr, 1));
}

GcRef<WhileDo> TreeContext::makeWhileDo(SourceLoc L, TreePtr Cond,
                                        TreePtr Body, const Type *UnitTy) {
  assert(Cond && Body && "WhileDo requires condition and body");
  TreePtr Ks[2] = {std::move(Cond), std::move(Body)};
  return allocate<WhileDo>(16, L, UnitTy, KidSpan(Ks, 2));
}

GcRef<Labeled> TreeContext::makeLabeled(SourceLoc L, Symbol *Label,
                                        TreePtr Body, const Type *Ty) {
  assert(Label && Body && "Labeled requires label and body");
  return allocate<Labeled>(8, L, Ty, Label, KidSpan(&Body, 1));
}

GcRef<Goto> TreeContext::makeGoto(SourceLoc L, Symbol *Label,
                                  const Type *NothingTy) {
  assert(Label && "Goto requires a label");
  return allocate<Goto>(0, L, NothingTy, Label);
}

GcRef<SeqLiteral> TreeContext::makeSeqLiteral(SourceLoc L, TreeList Elems,
                                              const Type *ElemTy,
                                              const Type *Ty) {
  return allocate<SeqLiteral>(8 * Elems.size(), L, Ty, ElemTy,
                              KidSpan(Elems));
}

GcRef<SeqLiteral> TreeContext::makeSeqLiteral(SourceLoc L, TreePtr *Elems,
                                              size_t NumElems,
                                              const Type *ElemTy,
                                              const Type *Ty) {
  return allocate<SeqLiteral>(8 * NumElems, L, Ty, ElemTy,
                              KidSpan(Elems, NumElems));
}

GcRef<ValDef> TreeContext::makeValDef(SourceLoc L, Symbol *Sym, TreePtr Rhs) {
  assert(Sym && "ValDef requires a symbol");
  // Nullable slot.
  return allocate<ValDef>(8, L, nullptr, Sym, KidSpan(&Rhs, 1));
}

GcRef<DefDef> TreeContext::makeDefDef(SourceLoc L, Symbol *Sym,
                                      std::vector<uint32_t> ParamListSizes,
                                      TreeList Params, TreePtr Rhs) {
  assert(Sym && "DefDef requires a symbol");
#ifndef NDEBUG
  size_t Total = 0;
  for (uint32_t S : ParamListSizes)
    Total += S;
  assert(Total == Params.size() && "param list sizes inconsistent");
#endif
  TreeList Ks = std::move(Params);
  Ks.push_back(std::move(Rhs)); // nullable slot
  return allocate<DefDef>(8 * Ks.size(), L, nullptr, Sym,
                          std::move(ParamListSizes), KidSpan(Ks));
}

GcRef<ClassDef> TreeContext::makeClassDef(SourceLoc L, ClassSymbol *Sym,
                                          TreeList Body) {
  assert(Sym && "ClassDef requires a class symbol");
  return allocate<ClassDef>(8 * Body.size(), L, nullptr, Sym, KidSpan(Body));
}

GcRef<PackageDef> TreeContext::makePackageDef(SourceLoc L, Name PkgName,
                                              TreeList Stats) {
  return allocate<PackageDef>(8 * Stats.size(), L, nullptr, PkgName,
                              KidSpan(Stats));
}

//===----------------------------------------------------------------------===//
// withNewChildren — the copier with the reuse optimization.
//===----------------------------------------------------------------------===//

TreePtr TreeContext::withNewChildren(Tree *T, TreePtr *NewKids, size_t N) {
  assert(T && "withNewChildren on null tree");
  assert(N == T->numKids() && "withNewChildren must preserve arity");

  bool AllSame = true;
  for (size_t I = 0; I < N; ++I) {
    if (NewKids[I].get() != T->kid(static_cast<unsigned>(I))) {
      AllSame = false;
      break;
    }
  }
  if (AllSame) {
    ++NumReused;
    return TreePtr(T);
  }
  return withNewChildrenForced(T, NewKids, N);
}

TreePtr TreeContext::withNewChildren(Tree *T, TreeList NewKids) {
  return withNewChildren(T, NewKids.data(), NewKids.size());
}

TreePtr TreeContext::withNewChildrenForced(Tree *T, TreePtr *NewKids,
                                           size_t N) {
  assert(T && "withNewChildren on null tree");
  assert(N == T->numKids() && "withNewChildren must preserve arity");
  ++NumRebuilt;
  return rebuildNode(T, KidSpan(NewKids, N), T->type());
}

TreePtr TreeContext::withNewChildrenForced(Tree *T, TreeList NewKids) {
  return withNewChildrenForced(T, NewKids.data(), NewKids.size());
}

TreePtr TreeContext::withType(Tree *T, const Type *NewTy) {
  assert(T && "withType on null tree");
  if (T->type() == NewTy) {
    ++NumTypeReused;
    return TreePtr(T);
  }
  // Share the child refs with the original node directly — the rebuild
  // retains each once into the new node's storage, with no intermediate
  // list copy.
  ++NumTypeShared;
  return rebuildNode(T, KidSpan::share(T->kids().data(), T->numKids()),
                     NewTy);
}

TreePtr TreeContext::rebuildNode(Tree *T, KidSpan NewKids, const Type *Ty) {
  SourceLoc L = T->loc();
  size_t N = NewKids.size();
  switch (T->kind()) {
  case TreeKind::Ident:
    return allocate<Ident>(0, L, Ty, cast<Ident>(T)->sym());
  case TreeKind::This:
    return allocate<This>(0, L, Ty, cast<This>(T)->cls());
  case TreeKind::Super:
    return allocate<Super>(0, L, Ty, cast<Super>(T)->fromClass(),
                           cast<Super>(T)->target());
  case TreeKind::Literal:
    return allocate<Literal>(0, L, Ty, cast<Literal>(T)->value());
  case TreeKind::Goto:
    return allocate<Goto>(0, L, Ty, cast<Goto>(T)->label());
  case TreeKind::Select:
    return allocate<Select>(8, L, Ty, NewKids, cast<Select>(T)->sym());
  case TreeKind::Apply:
    return allocate<Apply>(8 * N, L, Ty, NewKids);
  case TreeKind::TypeApply:
    return allocate<TypeApply>(8, L, Ty, NewKids,
                               cast<TypeApply>(T)->typeArgs());
  case TreeKind::New:
    return allocate<New>(8 * N, L, Ty, cast<New>(T)->classTy(), NewKids);
  case TreeKind::Typed:
    return allocate<Typed>(8, L, Ty, NewKids);
  case TreeKind::Assign:
    return allocate<Assign>(16, L, Ty, NewKids);
  case TreeKind::Block:
    return allocate<Block>(8 * N, L, Ty, NewKids);
  case TreeKind::If:
    return allocate<If>(24, L, Ty, NewKids);
  case TreeKind::Closure:
    return allocate<Closure>(8 * N, L, Ty, NewKids);
  case TreeKind::Match:
    return allocate<Match>(8 * N, L, Ty, NewKids);
  case TreeKind::CaseDef:
    return allocate<CaseDef>(24, L, Ty, NewKids);
  case TreeKind::Bind:
    return allocate<Bind>(8, L, Ty, cast<Bind>(T)->sym(), NewKids);
  case TreeKind::Alternative:
    return allocate<Alternative>(8 * N, L, Ty, NewKids);
  case TreeKind::UnApply:
    return allocate<UnApply>(8 * N, L, Ty, cast<UnApply>(T)->caseClass(),
                             NewKids);
  case TreeKind::Try:
    return allocate<Try>(8 * N, L, Ty, NewKids);
  case TreeKind::Throw:
    return allocate<Throw>(8, L, Ty, NewKids);
  case TreeKind::Return:
    return allocate<Return>(8, L, Ty, cast<Return>(T)->fromMethod(),
                            NewKids);
  case TreeKind::WhileDo:
    return allocate<WhileDo>(16, L, Ty, NewKids);
  case TreeKind::Labeled:
    return allocate<Labeled>(8, L, Ty, cast<Labeled>(T)->label(), NewKids);
  case TreeKind::SeqLiteral:
    return allocate<SeqLiteral>(8 * N, L, Ty,
                                cast<SeqLiteral>(T)->elemType(), NewKids);
  case TreeKind::ValDef:
    return allocate<ValDef>(8, L, Ty, cast<ValDef>(T)->sym(), NewKids);
  case TreeKind::DefDef:
    return allocate<DefDef>(8 * N, L, Ty, cast<DefDef>(T)->sym(),
                            cast<DefDef>(T)->paramListSizes(), NewKids);
  case TreeKind::ClassDef:
    return allocate<ClassDef>(8 * N, L, Ty, cast<ClassDef>(T)->sym(),
                              NewKids);
  case TreeKind::PackageDef:
    return allocate<PackageDef>(8 * N, L, Ty, cast<PackageDef>(T)->pkgName(),
                                NewKids);
  }
  assert(false && "unhandled tree kind in rebuildNode");
  return TreePtr(T);
}
