//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable tree dumping, used by examples and failing-test output.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_AST_TREEPRINTER_H
#define MPC_AST_TREEPRINTER_H

#include "ast/Trees.h"

#include <string>

namespace mpc {

class OStream;

/// Options for printTree.
struct PrintOptions {
  bool ShowTypes = false;
  bool ShowSymbolIds = false;
  unsigned MaxDepth = 0; // 0 = unlimited
};

/// Prints an indented structural dump of the subtree.
void printTree(OStream &OS, const Tree *T,
               const PrintOptions &Opts = PrintOptions());

/// Convenience: dump to a string.
std::string treeToString(const Tree *T,
                         const PrintOptions &Opts = PrintOptions());

} // namespace mpc

#endif // MPC_AST_TREEPRINTER_H
