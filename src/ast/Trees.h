//===----------------------------------------------------------------------===//
///
/// \file
/// The tree intermediate representation (paper Listing 2, generalized).
///
/// Trees are immutable: phases never mutate a node, they build a new one via
/// TreeContext and the framework rebuilds the spine (withNewChildren). The
/// copier reuses the original node when no child changed — the paper's
/// "optimization avoids the copying in the (quite common) case where a
/// transform returns a tree with the same fields as its input".
///
/// Nodes are reference counted. Immutability rules out cycles, so counts
/// are exact; each node records its allocation-clock birth so the
/// ManagedHeap can attribute generational promotion (Figures 5/6).
///
/// Storage layout: every node keeps its children in one uniform TreeKids
/// (typed accessors map onto fixed slots). Up to TreeKids::InlineCap
/// children are stored inline in the node itself; only higher arities
/// spill to a single slab-backed array — so leaves and the common low-
/// arity nodes (Select, If, Assign, ...) cost zero allocations beyond the
/// node. Child lists are handed to constructors as a borrowed KidSpan and
/// moved (or, for withType, reference-shared) straight into the node,
/// which keeps the rebuild hot paths free of intermediate vectors. The
/// uniform layout lets traversal, rebuild, equality and printing logic be
/// generic over kinds while hooks still get fully typed node classes.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_AST_TREES_H
#define MPC_AST_TREES_H

#include "ast/Constant.h"
#include "ast/Symbols.h"
#include "ast/Types.h"
#include "memsim/CacheSim.h"
#include "memsim/ManagedHeap.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace mpc {

class Tree;
class TreeContext;

/// Kind discriminator generated from TreeKinds.def.
enum class TreeKind : uint8_t {
#define TREE_KIND(Name) Name,
#include "ast/TreeKinds.def"
};

/// Number of concrete tree kinds.
constexpr unsigned NumTreeKinds = 0
#define TREE_KIND(Name) +1
#include "ast/TreeKinds.def"
    ;
static_assert(NumTreeKinds <= 32, "KindSet uses a 32-bit mask");

/// Printable kind name.
const char *treeKindName(TreeKind K);

/// A small set of tree kinds (used for phase transform/prepare masks).
class KindSet {
public:
  constexpr KindSet() : Bits(0) {}
  constexpr KindSet(std::initializer_list<TreeKind> Kinds) : Bits(0) {
    for (TreeKind K : Kinds)
      Bits |= bit(K);
  }
  static constexpr KindSet all() {
    KindSet S;
    S.Bits = (NumTreeKinds == 32) ? ~0u : ((1u << NumTreeKinds) - 1);
    return S;
  }
  bool contains(TreeKind K) const { return (Bits & bit(K)) != 0; }
  void insert(TreeKind K) { Bits |= bit(K); }
  bool empty() const { return Bits == 0; }
  uint32_t bits() const { return Bits; }

private:
  static constexpr uint32_t bit(TreeKind K) {
    return 1u << static_cast<unsigned>(K);
  }
  uint32_t Bits;
};

/// Intrusive reference-counted pointer to a Tree (or subclass).
template <typename T> class GcRef {
public:
  GcRef() : Ptr(nullptr) {}
  GcRef(std::nullptr_t) : Ptr(nullptr) {}
  GcRef(T *P) : Ptr(P) { retain(); }
  GcRef(const GcRef &O) : Ptr(O.Ptr) { retain(); }
  GcRef(GcRef &&O) noexcept : Ptr(O.Ptr) { O.Ptr = nullptr; }
  /// Upcast conversion (e.g. GcRef<Apply> -> GcRef<Tree>).
  template <typename U>
    requires std::is_convertible_v<U *, T *>
  GcRef(const GcRef<U> &O) : Ptr(O.get()) {
    retain();
  }
  ~GcRef() { release(); }

  GcRef &operator=(const GcRef &O) {
    if (this != &O) {
      GcRef Tmp(O);
      std::swap(Ptr, Tmp.Ptr);
    }
    return *this;
  }
  GcRef &operator=(GcRef &&O) noexcept {
    std::swap(Ptr, O.Ptr);
    return *this;
  }

  T *get() const { return Ptr; }
  T *operator->() const {
    assert(Ptr && "dereferencing null GcRef");
    return Ptr;
  }
  T &operator*() const {
    assert(Ptr && "dereferencing null GcRef");
    return *Ptr;
  }
  explicit operator bool() const { return Ptr != nullptr; }
  bool operator==(const GcRef &O) const { return Ptr == O.Ptr; }
  bool operator!=(const GcRef &O) const { return Ptr != O.Ptr; }
  bool operator==(const T *P) const { return Ptr == P; }

private:
  void retain() const;
  void release();
  T *Ptr;
};

using TreePtr = GcRef<Tree>;
using TreeList = std::vector<TreePtr>;

/// A borrowed view of the children handed to a node constructor, consumed
/// exactly once by the Tree base constructor. By default the referenced
/// slots are moved from (the caller's storage — a factory-local TreeList,
/// a stack array, or the fusion engine's scratch buffer — is left holding
/// nulls). share() instead copy-retains the slots, which is how withType
/// shares its children with the original node without an intermediate
/// list copy.
class KidSpan {
public:
  KidSpan() = default;
  KidSpan(TreeList &L)
      : Ptr(L.data()), N(static_cast<uint32_t>(L.size())) {}
  KidSpan(TreePtr *P, size_t Count)
      : Ptr(P), N(static_cast<uint32_t>(Count)) {}
  /// Copy-retaining view (source slots are left untouched).
  static KidSpan share(const TreePtr *P, size_t Count) {
    KidSpan S;
    S.Ptr = const_cast<TreePtr *>(P);
    S.N = static_cast<uint32_t>(Count);
    S.Move = false;
    return S;
  }
  size_t size() const { return N; }

private:
  friend class TreeKids;
  TreePtr *Ptr = nullptr;
  uint32_t N = 0;
  bool Move = true;
};

/// Inline-first child storage. Up to InlineCap children live directly in
/// the node; higher arities spill to a single contiguous array obtained
/// from the ManagedHeap's slab backend (never charged to the simulated
/// allocation clock — the child cells are already folded into the owning
/// node's charge). The spill block embeds its heap so destruction needs
/// no context. Immutable after construction, like the node that owns it.
class TreeKids {
public:
  /// Children stored inline before spilling (covers leaves and the
  /// 1–3-ary kinds, the overwhelming majority of nodes).
  static constexpr unsigned InlineCap = 3;

  TreeKids(KidSpan Src, ManagedHeap &Heap) : Num(Src.N) {
    TreePtr *Dst = Inline;
    if (Num > InlineCap) {
      void *Raw = Heap.rawAllocate(spillBytes(Num));
      *static_cast<ManagedHeap **>(Raw) = &Heap;
      Spill = reinterpret_cast<TreePtr *>(static_cast<char *>(Raw) +
                                          SpillHdrBytes);
      Dst = Spill;
    }
    for (uint32_t I = 0; I < Num; ++I) {
      if (Dst == Spill) {
        if (Src.Move)
          new (Dst + I) TreePtr(std::move(Src.Ptr[I]));
        else
          new (Dst + I) TreePtr(Src.Ptr[I]);
      } else {
        if (Src.Move)
          Dst[I] = std::move(Src.Ptr[I]);
        else
          Dst[I] = Src.Ptr[I];
      }
    }
  }
  TreeKids(const TreeKids &) = delete;
  TreeKids &operator=(const TreeKids &) = delete;
  ~TreeKids() {
    if (!Spill)
      return; // inline refs released by the member array's destructor
    for (uint32_t I = 0; I < Num; ++I)
      std::destroy_at(Spill + I);
    void *Raw = reinterpret_cast<char *>(Spill) - SpillHdrBytes;
    ManagedHeap *Heap = *static_cast<ManagedHeap **>(Raw);
    Heap->rawDeallocate(Raw, spillBytes(Num));
  }

  size_t size() const { return Num; }
  bool empty() const { return Num == 0; }
  const TreePtr *data() const { return Spill ? Spill : Inline; }
  const TreePtr *begin() const { return data(); }
  const TreePtr *end() const { return data() + Num; }
  const TreePtr &operator[](size_t I) const {
    assert(I < Num && "child index out of range");
    return data()[I];
  }
  /// True when the children live in a spilled array (exposed for the
  /// children-storage tests).
  bool spilled() const { return Spill != nullptr; }

  /// Copies out to a plain list (compatibility with transform code that
  /// edits a child list before rebuilding).
  operator TreeList() const { return TreeList(begin(), end()); }

private:
  static constexpr size_t SpillHdrBytes = sizeof(ManagedHeap *);
  static size_t spillBytes(uint32_t N) {
    return SpillHdrBytes + N * sizeof(TreePtr);
  }

  TreePtr *Spill = nullptr;
  uint32_t Num = 0;
  TreePtr Inline[InlineCap];
};

/// Root of the tree hierarchy. No vtable: the kind tag plus switch-based
/// dispatch keeps nodes compact and mirrors the paper's transform dispatch.
class Tree {
public:
  TreeKind kind() const { return K; }
  const Type *type() const { return Ty; }
  SourceLoc loc() const { return Loc; }
  TreeContext &context() const { return *Ctx; }

  /// Children, uniformly. Entries may be null only in the documented
  /// nullable slots (ValDef/DefDef rhs, Try finalizer, CaseDef guard).
  unsigned numKids() const { return static_cast<unsigned>(Kids.size()); }
  Tree *kid(unsigned I) const { return Kids[I].get(); }
  const TreeKids &kids() const { return Kids; }

  /// Kind summary of this subtree: the bit of kind() unioned with every
  /// descendant's summary. Computed once at construction (children are
  /// immutable, so it can never go stale) and used by the fusion engine
  /// to skip whole subtrees no constituent phase is interested in.
  uint32_t kindsBelow() const { return KindsBelowBits; }

  /// Reference count (exposed for allocation-lifetime tests).
  uint32_t refCount() const { return RefCount; }

  /// Bytes charged to the managed heap for this node.
  uint32_t allocBytes() const { return AllocSize; }

  /// Allocation-clock value at creation (ManagedHeap accounting).
  uint64_t birthClock() const { return Birth; }

  static bool classof(const Tree *) { return true; }

protected:
  Tree(TreeKind K, TreeContext &Ctx, SourceLoc Loc, const Type *Ty,
       KidSpan Kids); // defined after TreeContext (needs the heap)
  ~Tree() = default;

private:
  friend class TreeContext;
  template <typename T> friend class GcRef;

  void retain() const { ++RefCount; }
  void release(); // defined after TreeContext

  TreeContext *Ctx;
  const Type *Ty;
  TreeKids Kids;
  uint64_t Birth = 0;
  mutable uint32_t RefCount = 0;
  uint32_t AllocSize = 0;
  uint32_t KindsBelowBits = 0;
  SourceLoc Loc;
  TreeKind K;
};

template <typename T> void GcRef<T>::retain() const {
  if (Ptr)
    static_cast<const Tree *>(Ptr)->retain();
}

//===----------------------------------------------------------------------===//
// Node classes. Each documents its child-slot layout.
//===----------------------------------------------------------------------===//

/// Reference to a definition by symbol.
class Ident : public Tree {
public:
  Symbol *sym() const { return Sym; }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Ident; }

private:
  friend class TreeContext;
  Ident(TreeContext &C, SourceLoc L, const Type *Ty, Symbol *Sym)
      : Tree(TreeKind::Ident, C, L, Ty, {}), Sym(Sym) {}
  Symbol *Sym;
};

/// Member selection: kid 0 = qualifier.
class Select : public Tree {
public:
  Tree *qual() const { return kid(0); }
  Symbol *sym() const { return Sym; }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Select; }

private:
  friend class TreeContext;
  Select(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan Qual,
         Symbol *Sym)
      : Tree(TreeKind::Select, C, L, Ty, Qual), Sym(Sym) {}
  Symbol *Sym;
};

/// `this` of class \p cls().
class This : public Tree {
public:
  ClassSymbol *cls() const { return Cls; }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::This; }

private:
  friend class TreeContext;
  This(TreeContext &C, SourceLoc L, const Type *Ty, ClassSymbol *Cls)
      : Tree(TreeKind::This, C, L, Ty, {}), Cls(Cls) {}
  ClassSymbol *Cls;
};

/// `super` qualifier; appears only as Select(Super, member).
class Super : public Tree {
public:
  ClassSymbol *fromClass() const { return FromCls; }
  ClassSymbol *target() const { return Target; }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Super; }

private:
  friend class TreeContext;
  Super(TreeContext &C, SourceLoc L, const Type *Ty, ClassSymbol *FromCls,
        ClassSymbol *Target)
      : Tree(TreeKind::Super, C, L, Ty, {}), FromCls(FromCls), Target(Target) {
  }
  ClassSymbol *FromCls;
  ClassSymbol *Target;
};

/// A literal constant.
class Literal : public Tree {
public:
  const Constant &value() const { return Value; }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Literal; }

private:
  friend class TreeContext;
  Literal(TreeContext &C, SourceLoc L, const Type *Ty, Constant V)
      : Tree(TreeKind::Literal, C, L, Ty, {}), Value(V) {}
  Constant Value;
};

/// Application: kid 0 = function, kids 1.. = arguments.
class Apply : public Tree {
public:
  Tree *fun() const { return kid(0); }
  unsigned numArgs() const { return numKids() - 1; }
  Tree *arg(unsigned I) const { return kid(1 + I); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Apply; }

private:
  friend class TreeContext;
  Apply(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan FunAndArgs)
      : Tree(TreeKind::Apply, C, L, Ty, FunAndArgs) {}
};

/// Type application: kid 0 = function; type arguments as types.
class TypeApply : public Tree {
public:
  Tree *fun() const { return kid(0); }
  const std::vector<const Type *> &typeArgs() const { return TypeArgs; }
  static bool classof(const Tree *T) {
    return T->kind() == TreeKind::TypeApply;
  }

private:
  friend class TreeContext;
  TypeApply(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan Fun,
            std::vector<const Type *> TypeArgs)
      : Tree(TreeKind::TypeApply, C, L, Ty, Fun),
        TypeArgs(std::move(TypeArgs)) {}
  std::vector<const Type *> TypeArgs;
};

/// Instance creation `new C(args)`: kids = constructor arguments.
class New : public Tree {
public:
  const Type *classTy() const { return ClsTy; }
  unsigned numArgs() const { return numKids(); }
  Tree *arg(unsigned I) const { return kid(I); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::New; }

private:
  friend class TreeContext;
  New(TreeContext &C, SourceLoc L, const Type *Ty, const Type *ClsTy,
      KidSpan Args)
      : Tree(TreeKind::New, C, L, Ty, Args), ClsTy(ClsTy) {}
  const Type *ClsTy;
};

/// Ascription / checked cast / type pattern. The node's own type is the
/// target type; kid 0 = expression (or inner pattern).
class Typed : public Tree {
public:
  Tree *expr() const { return kid(0); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Typed; }

private:
  friend class TreeContext;
  Typed(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan Expr)
      : Tree(TreeKind::Typed, C, L, Ty, Expr) {}
};

/// Assignment: kid 0 = lhs, kid 1 = rhs.
class Assign : public Tree {
public:
  Tree *lhs() const { return kid(0); }
  Tree *rhs() const { return kid(1); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Assign; }

private:
  friend class TreeContext;
  Assign(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan Ks)
      : Tree(TreeKind::Assign, C, L, Ty, Ks) {}
};

/// Statement sequence: kids 0..n-2 = statements, last kid = result expr.
class Block : public Tree {
public:
  unsigned numStats() const { return numKids() - 1; }
  Tree *stat(unsigned I) const { return kid(I); }
  Tree *expr() const { return kid(numKids() - 1); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Block; }

private:
  friend class TreeContext;
  Block(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan Ks)
      : Tree(TreeKind::Block, C, L, Ty, Ks) {}
};

/// Conditional (always has an else; the typer inserts `()` if missing).
class If : public Tree {
public:
  Tree *cond() const { return kid(0); }
  Tree *thenp() const { return kid(1); }
  Tree *elsep() const { return kid(2); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::If; }

private:
  friend class TreeContext;
  If(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan Ks)
      : Tree(TreeKind::If, C, L, Ty, Ks) {}
};

/// Lambda: kids 0..n-2 = parameter ValDefs, last kid = body.
class Closure : public Tree {
public:
  unsigned numParams() const { return numKids() - 1; }
  Tree *param(unsigned I) const { return kid(I); }
  Tree *body() const { return kid(numKids() - 1); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Closure; }

private:
  friend class TreeContext;
  Closure(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan Ks)
      : Tree(TreeKind::Closure, C, L, Ty, Ks) {}
};

/// Pattern match: kid 0 = selector, kids 1.. = CaseDefs.
class Match : public Tree {
public:
  Tree *selector() const { return kid(0); }
  unsigned numCases() const { return numKids() - 1; }
  Tree *caseAt(unsigned I) const { return kid(1 + I); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Match; }

private:
  friend class TreeContext;
  Match(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan Ks)
      : Tree(TreeKind::Match, C, L, Ty, Ks) {}
};

/// One case: kid 0 = pattern, kid 1 = guard (nullable), kid 2 = body.
class CaseDef : public Tree {
public:
  Tree *pat() const { return kid(0); }
  Tree *guard() const { return kid(1); }
  Tree *body() const { return kid(2); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::CaseDef; }

private:
  friend class TreeContext;
  CaseDef(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan Ks)
      : Tree(TreeKind::CaseDef, C, L, Ty, Ks) {}
};

/// Pattern binder `x @ pat`: kid 0 = inner pattern.
class Bind : public Tree {
public:
  Symbol *sym() const { return Sym; }
  Tree *pat() const { return kid(0); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Bind; }

private:
  friend class TreeContext;
  Bind(TreeContext &C, SourceLoc L, const Type *Ty, Symbol *Sym, KidSpan Pat)
      : Tree(TreeKind::Bind, C, L, Ty, Pat), Sym(Sym) {}
  Symbol *Sym;
};

/// Pattern alternative `p1 | p2 | ...`: kids = alternatives.
class Alternative : public Tree {
public:
  static bool classof(const Tree *T) {
    return T->kind() == TreeKind::Alternative;
  }

private:
  friend class TreeContext;
  Alternative(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan Ks)
      : Tree(TreeKind::Alternative, C, L, Ty, Ks) {}
};

/// Case-class extractor pattern `C(p1, ..., pn)`: kids = sub-patterns.
class UnApply : public Tree {
public:
  ClassSymbol *caseClass() const { return Cls; }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::UnApply; }

private:
  friend class TreeContext;
  UnApply(TreeContext &C, SourceLoc L, const Type *Ty, ClassSymbol *Cls,
          KidSpan Ks)
      : Tree(TreeKind::UnApply, C, L, Ty, Ks), Cls(Cls) {}
  ClassSymbol *Cls;
};

/// try/catch/finally: kid 0 = body, kid 1 = finalizer (nullable),
/// kids 2.. = catch CaseDefs.
class Try : public Tree {
public:
  Tree *body() const { return kid(0); }
  Tree *finalizer() const { return kid(1); }
  unsigned numCatches() const { return numKids() - 2; }
  Tree *catchAt(unsigned I) const { return kid(2 + I); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Try; }

private:
  friend class TreeContext;
  Try(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan Ks)
      : Tree(TreeKind::Try, C, L, Ty, Ks) {}
};

/// throw: kid 0 = exception expression.
class Throw : public Tree {
public:
  Tree *expr() const { return kid(0); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Throw; }

private:
  friend class TreeContext;
  Throw(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan Ks)
      : Tree(TreeKind::Throw, C, L, Ty, Ks) {}
};

/// return from method \p fromMethod(): kid 0 = value (nullable for Unit).
class Return : public Tree {
public:
  Tree *expr() const { return kid(0); }
  Symbol *fromMethod() const { return From; }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Return; }

private:
  friend class TreeContext;
  Return(TreeContext &C, SourceLoc L, const Type *Ty, Symbol *From,
         KidSpan Ks)
      : Tree(TreeKind::Return, C, L, Ty, Ks), From(From) {}
  Symbol *From;
};

/// while loop: kid 0 = condition, kid 1 = body.
class WhileDo : public Tree {
public:
  Tree *cond() const { return kid(0); }
  Tree *body() const { return kid(1); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::WhileDo; }

private:
  friend class TreeContext;
  WhileDo(TreeContext &C, SourceLoc L, const Type *Ty, KidSpan Ks)
      : Tree(TreeKind::WhileDo, C, L, Ty, Ks) {}
};

/// Labeled block (TailRec / PatternMatcher output): kid 0 = body.
/// A Goto to the label re-enters the body (loop semantics).
class Labeled : public Tree {
public:
  Symbol *label() const { return Label; }
  Tree *body() const { return kid(0); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Labeled; }

private:
  friend class TreeContext;
  Labeled(TreeContext &C, SourceLoc L, const Type *Ty, Symbol *Label,
          KidSpan Ks)
      : Tree(TreeKind::Labeled, C, L, Ty, Ks), Label(Label) {}
  Symbol *Label;
};

/// Jump back to an enclosing Labeled.
class Goto : public Tree {
public:
  Symbol *label() const { return Label; }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::Goto; }

private:
  friend class TreeContext;
  Goto(TreeContext &C, SourceLoc L, const Type *Ty, Symbol *Label)
      : Tree(TreeKind::Goto, C, L, Ty, {}), Label(Label) {}
  Symbol *Label;
};

/// Sequence literal (vararg packaging, ElimRepeated): kids = elements.
class SeqLiteral : public Tree {
public:
  const Type *elemType() const { return ElemTy; }
  static bool classof(const Tree *T) {
    return T->kind() == TreeKind::SeqLiteral;
  }

private:
  friend class TreeContext;
  SeqLiteral(TreeContext &C, SourceLoc L, const Type *Ty, const Type *ElemTy,
             KidSpan Ks)
      : Tree(TreeKind::SeqLiteral, C, L, Ty, Ks), ElemTy(ElemTy) {}
  const Type *ElemTy;
};

/// Value definition: kid 0 = rhs (nullable for abstract/field decls).
class ValDef : public Tree {
public:
  Symbol *sym() const { return Sym; }
  Tree *rhs() const { return kid(0); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::ValDef; }

private:
  friend class TreeContext;
  ValDef(TreeContext &C, SourceLoc L, const Type *Ty, Symbol *Sym, KidSpan Ks)
      : Tree(TreeKind::ValDef, C, L, Ty, Ks), Sym(Sym) {
    Sym->setDefTree(this);
  }
  Symbol *Sym;
};

/// Method definition. Kids: parameter ValDefs of all lists concatenated,
/// then the rhs (nullable for abstract methods). paramListSizes() recovers
/// the currying structure until Uncurry flattens it.
class DefDef : public Tree {
public:
  Symbol *sym() const { return Sym; }
  const std::vector<uint32_t> &paramListSizes() const { return ParamSizes; }
  unsigned numParamsTotal() const { return numKids() - 1; }
  Tree *paramAt(unsigned I) const { return kid(I); }
  Tree *rhs() const { return kid(numKids() - 1); }
  static bool classof(const Tree *T) { return T->kind() == TreeKind::DefDef; }

private:
  friend class TreeContext;
  DefDef(TreeContext &C, SourceLoc L, const Type *Ty, Symbol *Sym,
         std::vector<uint32_t> ParamSizes, KidSpan Ks)
      : Tree(TreeKind::DefDef, C, L, Ty, Ks), Sym(Sym),
        ParamSizes(std::move(ParamSizes)) {
    Sym->setDefTree(this);
  }
  Symbol *Sym;
  std::vector<uint32_t> ParamSizes;
};

/// Class/trait/object-class definition: kids = body statements.
class ClassDef : public Tree {
public:
  ClassSymbol *sym() const { return Sym; }
  static bool classof(const Tree *T) {
    return T->kind() == TreeKind::ClassDef;
  }

private:
  friend class TreeContext;
  ClassDef(TreeContext &C, SourceLoc L, const Type *Ty, ClassSymbol *Sym,
           KidSpan Ks)
      : Tree(TreeKind::ClassDef, C, L, Ty, Ks), Sym(Sym) {
    Sym->setDefTree(this);
  }
  ClassSymbol *Sym;
};

/// Top of a compilation unit: kids = top-level definitions.
class PackageDef : public Tree {
public:
  Name pkgName() const { return PkgName; }
  static bool classof(const Tree *T) {
    return T->kind() == TreeKind::PackageDef;
  }

private:
  friend class TreeContext;
  PackageDef(TreeContext &C, SourceLoc L, const Type *Ty, Name PkgName,
             KidSpan Ks)
      : Tree(TreeKind::PackageDef, C, L, Ty, Ks), PkgName(PkgName) {}
  Name PkgName;
};

//===----------------------------------------------------------------------===//
// TreeContext: creation, rebuilding, and instrumentation.
//===----------------------------------------------------------------------===//

/// Creates and destroys tree nodes, charging the ManagedHeap and optionally
/// driving the cache simulator (allocation performs stores).
class TreeContext {
public:
  explicit TreeContext(ManagedHeap &Heap) : Heap(Heap) {}
  TreeContext(const TreeContext &) = delete;
  TreeContext &operator=(const TreeContext &) = delete;

  /// Attaches/detaches the cache simulator (null = no instrumentation).
  void setCacheSim(CacheSim *CS) { Cache = CS; }
  CacheSim *cacheSim() const { return Cache; }
  ManagedHeap &heap() { return Heap; }

  /// Total nodes created through this context (for stats).
  uint64_t nodesCreated() const { return NumCreated; }

  // Factory methods (one per kind). All types are final; parser output goes
  // through the frontend's own syntax representation, so every Tree is
  // created fully attributed.
  GcRef<Ident> makeIdent(SourceLoc L, Symbol *Sym, const Type *Ty);
  GcRef<Select> makeSelect(SourceLoc L, TreePtr Qual, Symbol *Sym,
                           const Type *Ty);
  GcRef<This> makeThis(SourceLoc L, ClassSymbol *Cls, const Type *Ty);
  GcRef<Super> makeSuper(SourceLoc L, ClassSymbol *FromCls,
                         ClassSymbol *Target, const Type *Ty);
  GcRef<Literal> makeLiteral(SourceLoc L, Constant V, const Type *Ty);
  GcRef<Apply> makeApply(SourceLoc L, TreePtr Fun, TreeList Args,
                         const Type *Ty);
  /// Span overload for the typer's stack-shaped argument scratch:
  /// \p FunAndArgs[0] is the function, the rest are the arguments; the
  /// slots are moved from (left null) without an intermediate list.
  GcRef<Apply> makeApply(SourceLoc L, TreePtr *FunAndArgs, size_t NumKids,
                         const Type *Ty);
  GcRef<TypeApply> makeTypeApply(SourceLoc L, TreePtr Fun,
                                 std::vector<const Type *> TypeArgs,
                                 const Type *Ty);
  GcRef<New> makeNew(SourceLoc L, const Type *ClsTy, TreeList Args);
  GcRef<New> makeNew(SourceLoc L, const Type *ClsTy, TreePtr *Args,
                     size_t NumArgs);
  GcRef<Typed> makeTyped(SourceLoc L, TreePtr Expr, const Type *TargetTy);
  GcRef<Assign> makeAssign(SourceLoc L, TreePtr Lhs, TreePtr Rhs,
                           const Type *UnitTy);
  GcRef<Block> makeBlock(SourceLoc L, TreeList Stats, TreePtr Expr);
  GcRef<If> makeIf(SourceLoc L, TreePtr Cond, TreePtr Then, TreePtr Else,
                   const Type *Ty);
  GcRef<Closure> makeClosure(SourceLoc L, TreeList Params, TreePtr Body,
                             const Type *Ty);
  GcRef<Match> makeMatch(SourceLoc L, TreePtr Sel, TreeList Cases,
                         const Type *Ty);
  GcRef<CaseDef> makeCaseDef(SourceLoc L, TreePtr Pat, TreePtr Guard,
                             TreePtr Body);
  GcRef<Bind> makeBind(SourceLoc L, Symbol *Sym, TreePtr Pat);
  GcRef<Alternative> makeAlternative(SourceLoc L, TreeList Pats,
                                     const Type *Ty);
  GcRef<UnApply> makeUnApply(SourceLoc L, ClassSymbol *Cls, TreeList Pats,
                             const Type *Ty);
  GcRef<Try> makeTry(SourceLoc L, TreePtr Body, TreeList Catches,
                     TreePtr Finalizer, const Type *Ty);
  GcRef<Throw> makeThrow(SourceLoc L, TreePtr Expr, const Type *NothingTy);
  GcRef<Return> makeReturn(SourceLoc L, TreePtr Expr, Symbol *FromMethod,
                           const Type *NothingTy);
  GcRef<WhileDo> makeWhileDo(SourceLoc L, TreePtr Cond, TreePtr Body,
                             const Type *UnitTy);
  GcRef<Labeled> makeLabeled(SourceLoc L, Symbol *Label, TreePtr Body,
                             const Type *Ty);
  GcRef<Goto> makeGoto(SourceLoc L, Symbol *Label, const Type *NothingTy);
  GcRef<SeqLiteral> makeSeqLiteral(SourceLoc L, TreeList Elems,
                                   const Type *ElemTy, const Type *Ty);
  GcRef<SeqLiteral> makeSeqLiteral(SourceLoc L, TreePtr *Elems,
                                   size_t NumElems, const Type *ElemTy,
                                   const Type *Ty);
  GcRef<ValDef> makeValDef(SourceLoc L, Symbol *Sym, TreePtr Rhs);
  GcRef<DefDef> makeDefDef(SourceLoc L, Symbol *Sym,
                           std::vector<uint32_t> ParamListSizes,
                           TreeList Params, TreePtr Rhs);
  GcRef<ClassDef> makeClassDef(SourceLoc L, ClassSymbol *Sym, TreeList Body);
  GcRef<PackageDef> makePackageDef(SourceLoc L, Name PkgName, TreeList Stats);

  /// The copier (paper: withNewChildren + reuse optimization). Returns the
  /// original node when every child is pointer-identical; otherwise builds
  /// a node of the same kind/payload/type with the new children. The span
  /// overload moves from \p NewKids (the fusion engine's scratch buffer)
  /// without any intermediate list.
  TreePtr withNewChildren(Tree *T, TreeList NewKids);
  TreePtr withNewChildren(Tree *T, TreePtr *NewKids, size_t N);

  /// Copier without the reuse optimization: always allocates a fresh node
  /// (the scalac-baseline configuration of Figure 9).
  TreePtr withNewChildrenForced(Tree *T, TreeList NewKids);
  TreePtr withNewChildrenForced(Tree *T, TreePtr *NewKids, size_t N);

  /// Copy of \p T (same payload and children) with a different type.
  /// Used by the typer's adaptation steps. Shares the children with the
  /// original by reference (no intermediate list copy).
  TreePtr withType(Tree *T, const Type *NewTy);

  /// Warm-reuse reset: rewinds the creation/copier counters so a recycled
  /// context reports the same statistics as a cold one. The tree storage
  /// itself lives in the ManagedHeap, which is reset separately.
  void resetCounters() {
    NumCreated = 0;
    NumReused = 0;
    NumRebuilt = 0;
    NumTypeReused = 0;
    NumTypeShared = 0;
  }

  /// Statistics: how often withNewChildren reused vs. rebuilt.
  uint64_t reuseCount() const { return NumReused; }
  uint64_t rebuildCount() const { return NumRebuilt; }
  /// Statistics for withType: calls that returned the original node
  /// (type already matched) vs. rebuilds that shared the child refs
  /// directly instead of copying the list.
  uint64_t typeReuseCount() const { return NumTypeReused; }
  uint64_t typeShareCount() const { return NumTypeShared; }

private:
  friend class Tree;

  template <typename NodeT, typename... Args>
  GcRef<NodeT> allocate(size_t ExtraBytes, Args &&...CtorArgs);

  TreePtr rebuildNode(Tree *T, KidSpan NewKids, const Type *Ty);

  void destroy(Tree *T);

  ManagedHeap &Heap;
  CacheSim *Cache = nullptr;
  uint64_t NumCreated = 0;
  uint64_t NumReused = 0;
  uint64_t NumRebuilt = 0;
  uint64_t NumTypeReused = 0;
  uint64_t NumTypeShared = 0;
};

inline Tree::Tree(TreeKind K, TreeContext &Ctx, SourceLoc Loc, const Type *Ty,
                  KidSpan KidsIn)
    : Ctx(&Ctx), Ty(Ty), Kids(KidsIn, Ctx.heap()), Loc(Loc), K(K) {
  uint32_t Below = 1u << static_cast<unsigned>(K);
  for (const TreePtr &Kid : Kids)
    if (Kid)
      Below |= Kid->KindsBelowBits;
  KindsBelowBits = Below;
}

template <typename T> void GcRef<T>::release() {
  if (!Ptr)
    return;
  static_cast<Tree *>(Ptr)->release();
  Ptr = nullptr;
}

inline void Tree::release() {
  assert(RefCount > 0 && "over-release of tree node");
  if (--RefCount == 0)
    Ctx->destroy(this);
}

} // namespace mpc

#endif // MPC_AST_TREES_H
