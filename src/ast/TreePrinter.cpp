#include "ast/TreePrinter.h"

#include "support/OStream.h"

using namespace mpc;

namespace {
class Printer {
public:
  Printer(OStream &OS, const PrintOptions &Opts) : OS(OS), Opts(Opts) {}

  void print(const Tree *T, unsigned Depth) {
    OS.indent(Depth * 2);
    if (!T) {
      OS << "<empty>\n";
      return;
    }
    OS << treeKindName(T->kind());
    printPayload(T);
    if (Opts.ShowTypes && T->type())
      OS << " : " << T->type()->show();
    OS << '\n';
    if (Opts.MaxDepth && Depth + 1 >= Opts.MaxDepth)
      return;
    for (const TreePtr &K : T->kids())
      print(K.get(), Depth + 1);
  }

private:
  void printSym(const Symbol *S) {
    if (!S) {
      OS << " <nosym>";
      return;
    }
    OS << ' ' << S->name().text();
    if (Opts.ShowSymbolIds)
      OS << '#' << S->id();
  }

  void printPayload(const Tree *T) {
    switch (T->kind()) {
    case TreeKind::Ident:
      printSym(cast<Ident>(T)->sym());
      break;
    case TreeKind::Select:
      printSym(cast<Select>(T)->sym());
      break;
    case TreeKind::This:
      printSym(cast<This>(T)->cls());
      break;
    case TreeKind::Super:
      printSym(cast<Super>(T)->fromClass());
      break;
    case TreeKind::Literal: {
      const Constant &C = cast<Literal>(T)->value();
      switch (C.kind()) {
      case Constant::Unit:
        OS << " ()";
        break;
      case Constant::Bool:
        OS << ' ' << C.boolValue();
        break;
      case Constant::Int:
        OS << ' ' << C.intValue();
        break;
      case Constant::Double:
        OS << ' ' << C.doubleValue();
        break;
      case Constant::Str:
        OS << " \"" << C.stringValue().text() << '"';
        break;
      case Constant::Null:
        OS << " null";
        break;
      case Constant::Clazz:
        OS << " classOf[" << C.clazzValue()->show() << ']';
        break;
      }
      break;
    }
    case TreeKind::TypeApply: {
      OS << " [";
      const auto &Args = cast<TypeApply>(T)->typeArgs();
      for (size_t I = 0; I < Args.size(); ++I) {
        if (I)
          OS << ", ";
        OS << Args[I]->show();
      }
      OS << ']';
      break;
    }
    case TreeKind::New:
      OS << ' ' << cast<New>(T)->classTy()->show();
      break;
    case TreeKind::Bind:
      printSym(cast<Bind>(T)->sym());
      break;
    case TreeKind::UnApply:
      printSym(cast<UnApply>(T)->caseClass());
      break;
    case TreeKind::Return:
      printSym(cast<Return>(T)->fromMethod());
      break;
    case TreeKind::Labeled:
      printSym(cast<Labeled>(T)->label());
      break;
    case TreeKind::Goto:
      printSym(cast<Goto>(T)->label());
      break;
    case TreeKind::SeqLiteral:
      OS << " elem=" << cast<SeqLiteral>(T)->elemType()->show();
      break;
    case TreeKind::ValDef: {
      const auto *VD = cast<ValDef>(T);
      printSym(VD->sym());
      if (VD->sym() && VD->sym()->info())
        OS << " : " << VD->sym()->info()->show();
      break;
    }
    case TreeKind::DefDef: {
      const auto *DD = cast<DefDef>(T);
      printSym(DD->sym());
      if (DD->sym() && DD->sym()->info())
        OS << " : " << DD->sym()->info()->show();
      break;
    }
    case TreeKind::ClassDef:
      printSym(cast<ClassDef>(T)->sym());
      break;
    case TreeKind::PackageDef:
      OS << ' '
         << (cast<PackageDef>(T)->pkgName()
                 ? cast<PackageDef>(T)->pkgName().text()
                 : std::string_view("<empty>"));
      break;
    default:
      break;
    }
  }

  OStream &OS;
  const PrintOptions &Opts;
};
} // namespace

void mpc::printTree(OStream &OS, const Tree *T, const PrintOptions &Opts) {
  Printer P(OS, Opts);
  P.print(T, 0);
}

std::string mpc::treeToString(const Tree *T, const PrintOptions &Opts) {
  StringOStream OS;
  printTree(OS, T, Opts);
  return OS.str();
}
