//===----------------------------------------------------------------------===//
///
/// \file
/// Literal constant values carried by Literal trees (and classOf results).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_AST_CONSTANT_H
#define MPC_AST_CONSTANT_H

#include "support/NameTable.h"

#include <cstdint>

namespace mpc {

class Type;

/// A compile-time constant. Clazz carries a Type* payload (result of
/// `classOf[T]`, see the ClassOf miniphase).
class Constant {
public:
  enum KindTy : uint8_t { Unit, Bool, Int, Double, Str, Null, Clazz };

  Constant() : K(Unit), IntVal(0) {}
  static Constant makeUnit() { return Constant(); }
  static Constant makeBool(bool B) {
    Constant C;
    C.K = Bool;
    C.IntVal = B ? 1 : 0;
    return C;
  }
  static Constant makeInt(int64_t V) {
    Constant C;
    C.K = Int;
    C.IntVal = V;
    return C;
  }
  static Constant makeDouble(double V) {
    Constant C;
    C.K = Double;
    C.DoubleVal = V;
    return C;
  }
  static Constant makeString(Name S) {
    Constant C;
    C.K = Str;
    C.StrVal = S;
    return C;
  }
  static Constant makeNull() {
    Constant C;
    C.K = Null;
    return C;
  }
  static Constant makeClazz(const Type *T) {
    Constant C;
    C.K = Clazz;
    C.ClazzVal = T;
    return C;
  }

  KindTy kind() const { return K; }
  bool boolValue() const { return IntVal != 0; }
  int64_t intValue() const { return IntVal; }
  double doubleValue() const { return DoubleVal; }
  Name stringValue() const { return StrVal; }
  const Type *clazzValue() const { return ClazzVal; }

  bool operator==(const Constant &O) const {
    if (K != O.K)
      return false;
    switch (K) {
    case Unit:
    case Null:
      return true;
    case Bool:
    case Int:
      return IntVal == O.IntVal;
    case Double:
      return DoubleVal == O.DoubleVal;
    case Str:
      return StrVal == O.StrVal;
    case Clazz:
      return ClazzVal == O.ClazzVal;
    }
    return false;
  }
  bool operator!=(const Constant &O) const { return !(*this == O); }

private:
  KindTy K;
  union {
    int64_t IntVal;
    double DoubleVal;
    const Type *ClazzVal;
  };
  Name StrVal;
};

} // namespace mpc

#endif // MPC_AST_CONSTANT_H
