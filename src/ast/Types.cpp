#include "ast/Types.h"

#include "ast/Symbols.h"

#include <cassert>

using namespace mpc;

bool Type::isPrim(PrimKind P) const {
  const auto *PT = dyn_cast<PrimitiveType>(this);
  return PT && PT->prim() == P;
}

bool Type::isValueType() const {
  const auto *PT = dyn_cast<PrimitiveType>(this);
  if (!PT)
    return false;
  switch (PT->prim()) {
  case PrimKind::Int:
  case PrimKind::Boolean:
  case PrimKind::Double:
  case PrimKind::Unit:
    return true;
  default:
    return false;
  }
}

ClassSymbol *Type::classSymbol() const {
  if (const auto *CT = dyn_cast<ClassType>(this))
    return CT->cls();
  return nullptr;
}

const Type *Type::resultType() const {
  switch (K) {
  case TypeKind::Method:
    return cast<MethodType>(this)->result();
  case TypeKind::Function:
    return cast<FunctionType>(this)->result();
  case TypeKind::Poly:
    return cast<PolyType>(this)->underlying()->resultType();
  case TypeKind::Expr:
    return cast<ExprType>(this)->result();
  default:
    return nullptr;
  }
}

const Type *Type::widenByName() const {
  if (const auto *ET = dyn_cast<ExprType>(this))
    return ET->result();
  return this;
}

std::string Type::show() const {
  switch (K) {
  case TypeKind::Primitive:
    switch (cast<PrimitiveType>(this)->prim()) {
    case PrimKind::Any:
      return "Any";
    case PrimKind::Nothing:
      return "Nothing";
    case PrimKind::Null:
      return "Null";
    case PrimKind::Unit:
      return "Unit";
    case PrimKind::Int:
      return "Int";
    case PrimKind::Boolean:
      return "Boolean";
    case PrimKind::Double:
      return "Double";
    }
    return "?";
  case TypeKind::Class: {
    const auto *CT = cast<ClassType>(this);
    std::string S(CT->cls()->name().text());
    if (!CT->args().empty()) {
      S += '[';
      for (size_t I = 0; I < CT->args().size(); ++I) {
        if (I)
          S += ", ";
        S += CT->args()[I]->show();
      }
      S += ']';
    }
    return S;
  }
  case TypeKind::Array:
    return "Array[" + cast<ArrayType>(this)->elem()->show() + "]";
  case TypeKind::Method: {
    const auto *MT = cast<MethodType>(this);
    std::string S = "(";
    for (size_t I = 0; I < MT->params().size(); ++I) {
      if (I)
        S += ", ";
      S += MT->params()[I]->show();
    }
    S += ")";
    S += MT->result()->show();
    return S;
  }
  case TypeKind::Poly: {
    const auto *PT = cast<PolyType>(this);
    std::string S = "[";
    for (size_t I = 0; I < PT->typeParams().size(); ++I) {
      if (I)
        S += ", ";
      S += PT->typeParams()[I]->name().str();
    }
    S += "]";
    return S + PT->underlying()->show();
  }
  case TypeKind::Function: {
    const auto *FT = cast<FunctionType>(this);
    std::string S = "(";
    for (size_t I = 0; I < FT->params().size(); ++I) {
      if (I)
        S += ", ";
      S += FT->params()[I]->show();
    }
    return S + ") => " + FT->result()->show();
  }
  case TypeKind::Expr:
    return "=> " + cast<ExprType>(this)->result()->show();
  case TypeKind::Repeated:
    return cast<RepeatedType>(this)->elem()->show() + "*";
  case TypeKind::Union:
    return cast<UnionType>(this)->left()->show() + " | " +
           cast<UnionType>(this)->right()->show();
  case TypeKind::Intersection:
    return cast<IntersectionType>(this)->left()->show() + " & " +
           cast<IntersectionType>(this)->right()->show();
  case TypeKind::TypeParam:
    return cast<TypeParamRef>(this)->param()->name().str();
  case TypeKind::Error:
    return "<error>";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// TypeContext
//===----------------------------------------------------------------------===//

TypeContext::TypeContext() {
  for (size_t I = 0; I < NumPrims; ++I)
    Prims[I] = new PrimitiveType(static_cast<PrimKind>(I));
  ErrorTy = new ErrorType();
}

TypeContext::~TypeContext() {
  // Arena-owned types still need their destructors (they hold vectors);
  // the arena then releases the storage wholesale.
  for (const Type *T : Owned)
    T->~Type();
  for (const Type *P : Prims)
    delete static_cast<const PrimitiveType *>(P);
  delete static_cast<const ErrorType *>(ErrorTy);
}

void TypeContext::reset() {
  for (const Type *T : Owned)
    T->~Type();
  Owned.clear();
  Slots.assign(Slots.size(), Slot());
  KeyPool.clear();
  KeyScratch.clear();
  TypeArena.reset();
}

static uint64_t hashKey(uint32_t Tag, const uint64_t *Words,
                        size_t NumWords) {
  uint64_t H = 0x9e3779b97f4a7c15ULL ^ Tag;
  for (size_t I = 0; I < NumWords; ++I)
    H ^= Words[I] + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

void TypeContext::growSlots() {
  std::vector<Slot> Old = std::move(Slots);
  Slots.assign(Old.empty() ? 512 : Old.size() * 2, Slot());
  size_t Mask = Slots.size() - 1;
  for (const Slot &S : Old) {
    if (!S.T)
      continue;
    for (size_t I = S.Hash & Mask;; I = (I + 1) & Mask) {
      if (!Slots[I].T) {
        Slots[I] = S;
        break;
      }
    }
  }
}

template <typename T, typename... Args>
const Type *TypeContext::intern(uint32_t Tag, const uint64_t *Words,
                                size_t NumWords, Args &&...CtorArgs) {
  if (Slots.empty() || Owned.size() * 4 >= Slots.size() * 3)
    growSlots();
  uint64_t H = hashKey(Tag, Words, NumWords);
  size_t Mask = Slots.size() - 1;
  size_t I = H & Mask;
  for (;; I = (I + 1) & Mask) {
    const Slot &S = Slots[I];
    if (!S.T)
      break;
    if (S.Hash == H && S.Tag == Tag && S.KeyLen == NumWords) {
      const uint64_t *Stored = KeyPool.data() + S.KeyOff;
      size_t J = 0;
      while (J < NumWords && Stored[J] == Words[J])
        ++J;
      if (J == NumWords)
        return S.T;
    }
  }

  const Type *Result = TypeArena.make<T>(std::forward<Args>(CtorArgs)...);
  Owned.push_back(Result);
  Slot &S = Slots[I];
  S.T = Result;
  S.Hash = H;
  S.Tag = Tag;
  S.KeyOff = static_cast<uint32_t>(KeyPool.size());
  S.KeyLen = static_cast<uint32_t>(NumWords);
  KeyPool.insert(KeyPool.end(), Words, Words + NumWords);
  return Result;
}

static uint64_t word(const void *P) {
  return reinterpret_cast<uint64_t>(P);
}

const Type *TypeContext::classType(ClassSymbol *Cls,
                                   std::vector<const Type *> Args) {
  KeyScratch.clear();
  KeyScratch.push_back(word(Cls));
  for (const Type *A : Args)
    KeyScratch.push_back(word(A));
  return intern<ClassType>(0, KeyScratch.data(), KeyScratch.size(), Cls,
                           std::move(Args));
}

const Type *TypeContext::arrayType(const Type *Elem) {
  uint64_t W[1] = {word(Elem)};
  return intern<ArrayType>(1, W, 1, Elem);
}

const Type *TypeContext::methodType(std::vector<const Type *> Params,
                                    const Type *Result) {
  KeyScratch.clear();
  KeyScratch.push_back(word(Result));
  for (const Type *P : Params)
    KeyScratch.push_back(word(P));
  return intern<MethodType>(2, KeyScratch.data(), KeyScratch.size(),
                            std::move(Params), Result);
}

const Type *TypeContext::polyType(std::vector<Symbol *> TypeParams,
                                  const Type *Underlying) {
  KeyScratch.clear();
  KeyScratch.push_back(word(Underlying));
  for (Symbol *P : TypeParams)
    KeyScratch.push_back(word(P));
  return intern<PolyType>(3, KeyScratch.data(), KeyScratch.size(),
                          std::move(TypeParams), Underlying);
}

const Type *TypeContext::functionType(std::vector<const Type *> Params,
                                      const Type *Result) {
  KeyScratch.clear();
  KeyScratch.push_back(word(Result));
  for (const Type *P : Params)
    KeyScratch.push_back(word(P));
  return intern<FunctionType>(4, KeyScratch.data(), KeyScratch.size(),
                              std::move(Params), Result);
}

const Type *TypeContext::exprType(const Type *Result) {
  uint64_t W[1] = {word(Result)};
  return intern<ExprType>(5, W, 1, Result);
}

const Type *TypeContext::repeatedType(const Type *Elem) {
  uint64_t W[1] = {word(Elem)};
  return intern<RepeatedType>(6, W, 1, Elem);
}

const Type *TypeContext::unionType(const Type *L, const Type *R) {
  if (L == R)
    return L;
  uint64_t W[2] = {word(L), word(R)};
  return intern<UnionType>(7, W, 2, L, R);
}

const Type *TypeContext::intersectionType(const Type *L, const Type *R) {
  if (L == R)
    return L;
  uint64_t W[2] = {word(L), word(R)};
  return intern<IntersectionType>(8, W, 2, L, R);
}

const Type *TypeContext::typeParamRef(Symbol *Param) {
  uint64_t W[1] = {word(Param)};
  return intern<TypeParamRef>(9, W, 1, Param);
}

const Type *TypeContext::substitute(const Type *T,
                                    const std::vector<Symbol *> &From,
                                    const std::vector<const Type *> &To) {
  assert(From.size() == To.size() && "substitution arity mismatch");
  if (From.empty() || !T)
    return T;
  switch (T->kind()) {
  case TypeKind::Primitive:
  case TypeKind::Error:
    return T;
  case TypeKind::TypeParam: {
    Symbol *P = cast<TypeParamRef>(T)->param();
    for (size_t I = 0; I < From.size(); ++I)
      if (From[I] == P)
        return To[I];
    return T;
  }
  case TypeKind::Class: {
    const auto *CT = cast<ClassType>(T);
    if (CT->args().empty())
      return T;
    std::vector<const Type *> NewArgs;
    NewArgs.reserve(CT->args().size());
    for (const Type *A : CT->args())
      NewArgs.push_back(substitute(A, From, To));
    return classType(CT->cls(), std::move(NewArgs));
  }
  case TypeKind::Array:
    return arrayType(substitute(cast<ArrayType>(T)->elem(), From, To));
  case TypeKind::Method: {
    const auto *MT = cast<MethodType>(T);
    std::vector<const Type *> NewParams;
    NewParams.reserve(MT->params().size());
    for (const Type *P : MT->params())
      NewParams.push_back(substitute(P, From, To));
    return methodType(std::move(NewParams),
                      substitute(MT->result(), From, To));
  }
  case TypeKind::Poly: {
    const auto *PT = cast<PolyType>(T);
    return polyType(PT->typeParams(),
                    substitute(PT->underlying(), From, To));
  }
  case TypeKind::Function: {
    const auto *FT = cast<FunctionType>(T);
    std::vector<const Type *> NewParams;
    NewParams.reserve(FT->params().size());
    for (const Type *P : FT->params())
      NewParams.push_back(substitute(P, From, To));
    return functionType(std::move(NewParams),
                        substitute(FT->result(), From, To));
  }
  case TypeKind::Expr:
    return exprType(substitute(cast<ExprType>(T)->result(), From, To));
  case TypeKind::Repeated:
    return repeatedType(substitute(cast<RepeatedType>(T)->elem(), From, To));
  case TypeKind::Union:
    return unionType(substitute(cast<UnionType>(T)->left(), From, To),
                     substitute(cast<UnionType>(T)->right(), From, To));
  case TypeKind::Intersection:
    return intersectionType(
        substitute(cast<IntersectionType>(T)->left(), From, To),
        substitute(cast<IntersectionType>(T)->right(), From, To));
  }
  return T;
}

bool TypeContext::isSubtype(const Type *A, const Type *B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  // Nothing is a subtype of everything; everything is a subtype of Any.
  if (A->isNothing() || B->isAny())
    return true;
  // ErrorType absorbs in both directions: the root cause was already
  // diagnosed, so conformance checks involving it succeed silently.
  if (A->isError() || B->isError())
    return true;
  // Null is a subtype of all reference types.
  if (A->isPrim(PrimKind::Null))
    return B->kind() == TypeKind::Class || B->kind() == TypeKind::Array ||
           B->kind() == TypeKind::Function || B->kind() == TypeKind::Union;
  // Union left side: (A1 | A2) <: B iff both halves conform.
  if (const auto *UA = dyn_cast<UnionType>(A))
    return isSubtype(UA->left(), B) && isSubtype(UA->right(), B);
  // Union right side: A <: (B1 | B2) if A conforms to either half.
  if (const auto *UB = dyn_cast<UnionType>(B))
    return isSubtype(A, UB->left()) || isSubtype(A, UB->right());
  // Intersection right side: A <: (B1 & B2) iff A conforms to both.
  if (const auto *IB = dyn_cast<IntersectionType>(B))
    return isSubtype(A, IB->left()) && isSubtype(A, IB->right());
  // Intersection left side: (A1 & A2) <: B if either half conforms.
  if (const auto *IA = dyn_cast<IntersectionType>(A))
    return isSubtype(IA->left(), B) || isSubtype(IA->right(), B);
  // By-name types conform when their results do.
  if (const auto *EA = dyn_cast<ExprType>(A)) {
    if (const auto *EB = dyn_cast<ExprType>(B))
      return isSubtype(EA->result(), EB->result());
    return false;
  }
  // Nominal class subtyping with invariant type arguments.
  if (const auto *CA = dyn_cast<ClassType>(A)) {
    const auto *CB = dyn_cast<ClassType>(B);
    if (!CB)
      return false;
    if (CA->cls() == CB->cls())
      return CA->args() == CB->args();
    // Walk A's parents with substituted type arguments.
    for (const Type *Parent : CA->cls()->parents()) {
      const Type *SubstParent = substitute(
          Parent, CA->cls()->typeParams(), CA->args());
      if (isSubtype(SubstParent, B))
        return true;
    }
    return false;
  }
  // Arrays: invariant element, and Array[T] <: Object.
  if (const auto *AA = dyn_cast<ArrayType>(A)) {
    if (const auto *AB = dyn_cast<ArrayType>(B))
      return AA->elem() == AB->elem();
    if (const auto *CB = dyn_cast<ClassType>(B))
      return CB->cls()->superClass() == nullptr && CB->args().empty();
    return false;
  }
  // Functions: exact arity, invariant (kept simple on purpose).
  if (const auto *FA = dyn_cast<FunctionType>(A)) {
    if (const auto *FB = dyn_cast<FunctionType>(B))
      return FA->params() == FB->params() &&
             isSubtype(FA->result(), FB->result());
    // A function conforms to the root class (it erases to an object).
    if (const auto *CB = dyn_cast<ClassType>(B))
      return CB->cls()->superClass() == nullptr && CB->args().empty();
    return false;
  }
  if (const auto *RA = dyn_cast<RepeatedType>(A))
    return isSubtype(arrayType(RA->elem()), B);
  return false;
}

const Type *TypeContext::lub(const Type *A, const Type *B) {
  if (A == B)
    return A;
  if (!A)
    return B;
  if (!B)
    return A;
  if (A->isNothing())
    return B;
  if (B->isNothing())
    return A;
  // The error type is absorbed by the healthy side so an errored branch
  // does not poison the join (and the If/Match keeps a useful type).
  if (A->isError())
    return B;
  if (B->isError())
    return A;
  if (isSubtype(A, B))
    return B;
  if (isSubtype(B, A))
    return A;
  // Unrelated types join as a union (Scala 3's un-widened inference).
  // A union conforms everywhere a class join would — (A|B) <: C whenever
  // both A <: C and B <: C — and it keeps Splitter/Erasure honest.
  return unionType(A, B);
}
