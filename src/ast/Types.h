//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniScala type representation. Types are hash-consed in a TypeContext
/// (pointer equality == structural equality) and live as long as the
/// context, so trees and symbols store bare Type pointers.
///
/// The repertoire intentionally matches what the paper's phases need:
/// unions and intersections (Splitter / Erasure, §6.2.2), by-name (ExprType,
/// for ElimByName), repeated params (ElimRepeated), generic class and
/// method types (Erasure), and function types (FunctionValues/LambdaLift).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_AST_TYPES_H
#define MPC_AST_TYPES_H

#include "support/Arena.h"
#include "support/Casting.h"
#include "support/NameTable.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mpc {

class ClassSymbol;
class Symbol;
class TypeContext;

/// Discriminator for the Type hierarchy.
enum class TypeKind : uint8_t {
  Primitive,
  Class,
  Array,
  Method,
  Poly,
  Function,
  Expr,     // by-name: =>T
  Repeated, // vararg: T*
  Union,
  Intersection,
  TypeParam,
  Error, // poisoned type for diagnosed code; absorbs instead of cascades
};

/// Built-in non-class types.
enum class PrimKind : uint8_t { Any, Nothing, Null, Unit, Int, Boolean, Double };

/// Root of the type hierarchy. Immutable and interned.
class Type {
public:
  TypeKind kind() const { return K; }

  bool isPrimitive() const { return K == TypeKind::Primitive; }
  bool isPrim(PrimKind P) const;
  bool isValueType() const; // Int / Boolean / Double / Unit
  bool isNothing() const { return isPrim(PrimKind::Nothing); }
  bool isAny() const { return isPrim(PrimKind::Any); }
  bool isUnit() const { return isPrim(PrimKind::Unit); }
  bool isError() const { return K == TypeKind::Error; }

  /// For class types, the class symbol; null otherwise.
  ClassSymbol *classSymbol() const;

  /// Result type when this type is applied as a method/function; null if
  /// this is not callable.
  const Type *resultType() const;

  /// Strips by-name wrappers.
  const Type *widenByName() const;

  /// Human-readable rendering ("Int", "List[Int]", "(Int, Int)Int", ...).
  std::string show() const;

  virtual ~Type() = default;

protected:
  explicit Type(TypeKind K) : K(K) {}

private:
  TypeKind K;
};

/// Any / Nothing / Null / Unit / Int / Boolean / Double.
class PrimitiveType : public Type {
public:
  explicit PrimitiveType(PrimKind P) : Type(TypeKind::Primitive), Prim(P) {}
  PrimKind prim() const { return Prim; }
  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Primitive;
  }

private:
  PrimKind Prim;
};

/// Reference to a class or trait, possibly with type arguments.
class ClassType : public Type {
public:
  ClassType(ClassSymbol *Cls, std::vector<const Type *> Args)
      : Type(TypeKind::Class), Cls(Cls), Args(std::move(Args)) {}
  ClassSymbol *cls() const { return Cls; }
  const std::vector<const Type *> &args() const { return Args; }
  static bool classof(const Type *T) { return T->kind() == TypeKind::Class; }

private:
  ClassSymbol *Cls;
  std::vector<const Type *> Args;
};

/// Array[T]; invariant.
class ArrayType : public Type {
public:
  explicit ArrayType(const Type *Elem) : Type(TypeKind::Array), Elem(Elem) {}
  const Type *elem() const { return Elem; }
  static bool classof(const Type *T) { return T->kind() == TypeKind::Array; }

private:
  const Type *Elem;
};

/// (T1, ..., Tn)R — one parameter list. Curried methods nest MethodTypes
/// until the Uncurry miniphase flattens them.
class MethodType : public Type {
public:
  MethodType(std::vector<const Type *> Params, const Type *Result)
      : Type(TypeKind::Method), Params(std::move(Params)), Result(Result) {}
  const std::vector<const Type *> &params() const { return Params; }
  const Type *result() const { return Result; }
  static bool classof(const Type *T) { return T->kind() == TypeKind::Method; }

private:
  std::vector<const Type *> Params;
  const Type *Result;
};

/// [T1, ..., Tn](method type) — a generic method signature.
class PolyType : public Type {
public:
  PolyType(std::vector<Symbol *> TypeParams, const Type *Underlying)
      : Type(TypeKind::Poly), TypeParams(std::move(TypeParams)),
        Underlying(Underlying) {}
  const std::vector<Symbol *> &typeParams() const { return TypeParams; }
  const Type *underlying() const { return Underlying; }
  static bool classof(const Type *T) { return T->kind() == TypeKind::Poly; }

private:
  std::vector<Symbol *> TypeParams;
  const Type *Underlying;
};

/// (T1, ..., Tn) => R — the type of lambdas; erased to FunctionN.
class FunctionType : public Type {
public:
  FunctionType(std::vector<const Type *> Params, const Type *Result)
      : Type(TypeKind::Function), Params(std::move(Params)), Result(Result) {}
  const std::vector<const Type *> &params() const { return Params; }
  const Type *result() const { return Result; }
  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Function;
  }

private:
  std::vector<const Type *> Params;
  const Type *Result;
};

/// => T, the type of a by-name parameter before ElimByName runs.
class ExprType : public Type {
public:
  explicit ExprType(const Type *Result) : Type(TypeKind::Expr), Res(Result) {}
  const Type *result() const { return Res; }
  static bool classof(const Type *T) { return T->kind() == TypeKind::Expr; }

private:
  const Type *Res;
};

/// T*, the type of a repeated (vararg) parameter before ElimRepeated runs.
class RepeatedType : public Type {
public:
  explicit RepeatedType(const Type *Elem)
      : Type(TypeKind::Repeated), Elem(Elem) {}
  const Type *elem() const { return Elem; }
  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Repeated;
  }

private:
  const Type *Elem;
};

/// A | B. Eliminated (at selections) by Splitter, erased by Erasure.
class UnionType : public Type {
public:
  UnionType(const Type *L, const Type *R) : Type(TypeKind::Union), L(L), R(R) {}
  const Type *left() const { return L; }
  const Type *right() const { return R; }
  static bool classof(const Type *T) { return T->kind() == TypeKind::Union; }

private:
  const Type *L, *R;
};

/// A & B.
class IntersectionType : public Type {
public:
  IntersectionType(const Type *L, const Type *R)
      : Type(TypeKind::Intersection), L(L), R(R) {}
  const Type *left() const { return L; }
  const Type *right() const { return R; }
  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Intersection;
  }

private:
  const Type *L, *R;
};

/// The poisoned type assigned to expressions and declarations that already
/// produced a diagnostic. It absorbs in subtyping (both directions) and in
/// lub so one root cause yields exactly one diagnostic: downstream checks
/// involving an ErrorType succeed silently instead of piling on secondary
/// noise. ErrorType never survives a clean frontend run — the driver never
/// hands trees to the transform pipeline once diagnostics were reported.
class ErrorType : public Type {
public:
  ErrorType() : Type(TypeKind::Error) {}
  static bool classof(const Type *T) { return T->kind() == TypeKind::Error; }
};

/// Reference to a class/method type parameter symbol.
class TypeParamRef : public Type {
public:
  explicit TypeParamRef(Symbol *Param)
      : Type(TypeKind::TypeParam), Param(Param) {}
  Symbol *param() const { return Param; }
  static bool classof(const Type *T) {
    return T->kind() == TypeKind::TypeParam;
  }

private:
  Symbol *Param;
};

/// Owns and interns all types. Construction methods return canonical
/// instances: calling them twice with equal arguments yields the same
/// pointer, so type equality throughout the compiler is pointer equality.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;
  ~TypeContext();

  // Primitive singletons.
  const Type *anyType() const { return Prims[size_t(PrimKind::Any)]; }
  const Type *nothingType() const { return Prims[size_t(PrimKind::Nothing)]; }
  const Type *nullType() const { return Prims[size_t(PrimKind::Null)]; }
  const Type *unitType() const { return Prims[size_t(PrimKind::Unit)]; }
  const Type *intType() const { return Prims[size_t(PrimKind::Int)]; }
  const Type *booleanType() const { return Prims[size_t(PrimKind::Boolean)]; }
  const Type *doubleType() const { return Prims[size_t(PrimKind::Double)]; }
  const Type *primType(PrimKind P) const { return Prims[size_t(P)]; }

  /// The poisoned error-type singleton. Like the primitives it survives
  /// reset(): it carries no references into other tables.
  const Type *errorType() const { return ErrorTy; }

  const Type *classType(ClassSymbol *Cls,
                        std::vector<const Type *> Args = {});
  const Type *arrayType(const Type *Elem);
  const Type *methodType(std::vector<const Type *> Params, const Type *Result);
  const Type *polyType(std::vector<Symbol *> TypeParams,
                       const Type *Underlying);
  const Type *functionType(std::vector<const Type *> Params,
                           const Type *Result);
  const Type *exprType(const Type *Result);
  const Type *repeatedType(const Type *Elem);
  const Type *unionType(const Type *L, const Type *R);
  const Type *intersectionType(const Type *L, const Type *R);
  const Type *typeParamRef(Symbol *Param);

  /// Substitutes type parameters: occurrences of From[i] become To[i].
  const Type *substitute(const Type *T, const std::vector<Symbol *> &From,
                         const std::vector<const Type *> &To);

  /// Subtyping. Reflexive; Nothing <: T <: Any; nominal for classes with
  /// invariant type arguments; structural for unions/intersections and
  /// function types.
  bool isSubtype(const Type *A, const Type *B);

  /// Least upper bound approximation (exact for equal types and class
  /// hierarchies; Any as fallback).
  const Type *lub(const Type *A, const Type *B);

  /// Number of distinct interned types (for tests / stats).
  size_t internedCount() const { return Owned.size() + NumPrims; }

  /// Empties the interner for warm context reuse: destroys every interned
  /// type (primitive singletons excepted — they carry no references into
  /// other tables and stay valid), resets the arena and key pool, and
  /// keeps table capacity. O(live interned types).
  void reset();

private:
  // Hash-consing storage: an open-addressed slot table (linear probing,
  // cached hashes) over keys packed as (tag, word sequence) in one
  // contiguous pool, with the Type objects themselves placement-new'd
  // into a bump arena. Compared to the previous
  // std::unordered_map<Key, unique_ptr<Type>> this performs no per-probe
  // key-vector allocation, no per-entry map-node allocation, and keeps
  // interned types tightly packed in memory. Owned tracks every arena
  // type so ~TypeContext can run destructors (types hold std::vectors).
  struct Slot {
    const Type *T = nullptr;
    uint64_t Hash = 0;
    uint32_t Tag = 0;
    uint32_t KeyOff = 0;
    uint32_t KeyLen = 0;
  };

  template <typename T, typename... Args>
  const Type *intern(uint32_t Tag, const uint64_t *Words, size_t NumWords,
                     Args &&...CtorArgs);
  void growSlots();

  static constexpr size_t NumPrims = 7;
  const Type *Prims[NumPrims];
  const Type *ErrorTy;
  std::vector<Slot> Slots;
  std::vector<uint64_t> KeyPool;
  std::vector<uint64_t> KeyScratch; // reused key builder (no recursion
                                    // between clear() and intern())
  Arena TypeArena;
  std::vector<const Type *> Owned;
};

} // namespace mpc

#endif // MPC_AST_TYPES_H
