//===----------------------------------------------------------------------===//
///
/// \file
/// Generic tree traversal and inspection helpers used by tests, checkers,
/// and phases that need local analyses (free variables, tail positions...).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_AST_TREEUTILS_H
#define MPC_AST_TREEUTILS_H

#include "ast/Trees.h"

#include <functional>

namespace mpc {

/// Calls \p Fn on every node of the subtree rooted at \p T (preorder,
/// including \p T itself). Null children are skipped.
void forEachSubtree(Tree *T, const std::function<void(Tree *)> &Fn);

/// Returns true if \p Pred holds for any node of the subtree.
bool anySubtree(Tree *T, const std::function<bool(Tree *)> &Pred);

/// Number of nodes in the subtree (nulls not counted).
uint64_t countNodes(Tree *T);

/// Maximum depth of the subtree (a leaf has depth 1).
unsigned treeDepth(Tree *T);

/// Number of nodes of kind \p K in the subtree.
uint64_t countKind(Tree *T, TreeKind K);

/// First node of kind \p K in preorder, or null.
Tree *findFirst(Tree *T, TreeKind K);

/// Structural equality: same kinds, same payloads (symbols, constants,
/// types, names) and recursively equal children. Pointer-distinct trees
/// can compare equal.
bool treeEquals(const Tree *A, const Tree *B);

/// Collects every node of kind \p K in preorder.
void collectKind(Tree *T, TreeKind K, std::vector<Tree *> &Out);

} // namespace mpc

#endif // MPC_AST_TREEUTILS_H
