#include "ast/TreeUtils.h"

using namespace mpc;

void mpc::forEachSubtree(Tree *T, const std::function<void(Tree *)> &Fn) {
  if (!T)
    return;
  Fn(T);
  for (const TreePtr &K : T->kids())
    forEachSubtree(K.get(), Fn);
}

bool mpc::anySubtree(Tree *T, const std::function<bool(Tree *)> &Pred) {
  if (!T)
    return false;
  if (Pred(T))
    return true;
  for (const TreePtr &K : T->kids())
    if (anySubtree(K.get(), Pred))
      return true;
  return false;
}

uint64_t mpc::countNodes(Tree *T) {
  if (!T)
    return 0;
  uint64_t N = 1;
  for (const TreePtr &K : T->kids())
    N += countNodes(K.get());
  return N;
}

unsigned mpc::treeDepth(Tree *T) {
  if (!T)
    return 0;
  unsigned Max = 0;
  for (const TreePtr &K : T->kids()) {
    unsigned D = treeDepth(K.get());
    if (D > Max)
      Max = D;
  }
  return Max + 1;
}

uint64_t mpc::countKind(Tree *T, TreeKind K) {
  if (!T)
    return 0;
  uint64_t N = T->kind() == K ? 1 : 0;
  for (const TreePtr &Kid : T->kids())
    N += countKind(Kid.get(), K);
  return N;
}

Tree *mpc::findFirst(Tree *T, TreeKind K) {
  if (!T)
    return nullptr;
  if (T->kind() == K)
    return T;
  for (const TreePtr &Kid : T->kids())
    if (Tree *Found = findFirst(Kid.get(), K))
      return Found;
  return nullptr;
}

void mpc::collectKind(Tree *T, TreeKind K, std::vector<Tree *> &Out) {
  if (!T)
    return;
  if (T->kind() == K)
    Out.push_back(T);
  for (const TreePtr &Kid : T->kids())
    collectKind(Kid.get(), K, Out);
}

/// Compares the non-child payload of two same-kind nodes.
static bool payloadEquals(const Tree *A, const Tree *B) {
  switch (A->kind()) {
  case TreeKind::Ident:
    return cast<Ident>(A)->sym() == cast<Ident>(B)->sym();
  case TreeKind::Select:
    return cast<Select>(A)->sym() == cast<Select>(B)->sym();
  case TreeKind::This:
    return cast<This>(A)->cls() == cast<This>(B)->cls();
  case TreeKind::Super:
    return cast<Super>(A)->fromClass() == cast<Super>(B)->fromClass() &&
           cast<Super>(A)->target() == cast<Super>(B)->target();
  case TreeKind::Literal:
    return cast<Literal>(A)->value() == cast<Literal>(B)->value();
  case TreeKind::TypeApply:
    return cast<TypeApply>(A)->typeArgs() == cast<TypeApply>(B)->typeArgs();
  case TreeKind::New:
    return cast<New>(A)->classTy() == cast<New>(B)->classTy();
  case TreeKind::Bind:
    return cast<Bind>(A)->sym() == cast<Bind>(B)->sym();
  case TreeKind::UnApply:
    return cast<UnApply>(A)->caseClass() == cast<UnApply>(B)->caseClass();
  case TreeKind::Return:
    return cast<Return>(A)->fromMethod() == cast<Return>(B)->fromMethod();
  case TreeKind::Labeled:
    return cast<Labeled>(A)->label() == cast<Labeled>(B)->label();
  case TreeKind::Goto:
    return cast<Goto>(A)->label() == cast<Goto>(B)->label();
  case TreeKind::SeqLiteral:
    return cast<SeqLiteral>(A)->elemType() == cast<SeqLiteral>(B)->elemType();
  case TreeKind::ValDef:
    return cast<ValDef>(A)->sym() == cast<ValDef>(B)->sym();
  case TreeKind::DefDef:
    return cast<DefDef>(A)->sym() == cast<DefDef>(B)->sym() &&
           cast<DefDef>(A)->paramListSizes() ==
               cast<DefDef>(B)->paramListSizes();
  case TreeKind::ClassDef:
    return cast<ClassDef>(A)->sym() == cast<ClassDef>(B)->sym();
  case TreeKind::PackageDef:
    return cast<PackageDef>(A)->pkgName() == cast<PackageDef>(B)->pkgName();
  default:
    return true;
  }
}

bool mpc::treeEquals(const Tree *A, const Tree *B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  if (A->kind() != B->kind() || A->type() != B->type())
    return false;
  if (!payloadEquals(A, B))
    return false;
  if (A->numKids() != B->numKids())
    return false;
  for (unsigned I = 0; I < A->numKids(); ++I)
    if (!treeEquals(A->kid(I), B->kid(I)))
      return false;
  return true;
}
