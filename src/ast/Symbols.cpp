#include "ast/Symbols.h"

#include <algorithm>
#include <cassert>

using namespace mpc;

ClassSymbol *Symbol::enclosingClass() {
  Symbol *S = this;
  while (S && !S->isClass())
    S = S->owner();
  return static_cast<ClassSymbol *>(S);
}

std::string Symbol::fullName() const {
  std::string Result(name().text());
  for (Symbol *S = owner(); S && !S->is(SymFlag::Package); S = S->owner()) {
    std::string Prefix(S->name().text());
    Result = Prefix + "." + Result;
  }
  return Result;
}

ClassSymbol *ClassSymbol::superClass() const {
  for (const Type *P : Parents) {
    ClassSymbol *Cls = P->classSymbol();
    if (Cls && !Cls->isTrait())
      return Cls;
  }
  // Trait-only parent lists still have a superclass via the first trait's
  // own superclass chain; the root class has no parents at all.
  for (const Type *P : Parents)
    if (ClassSymbol *Cls = P->classSymbol())
      return Cls->superClass();
  return nullptr;
}

void ClassSymbol::removeMember(Symbol *S) {
  auto It = std::find(Members.begin(), Members.end(), S);
  if (It != Members.end()) {
    Members.erase(It);
    MemberIdxDirty = true;
  }
}

bool ClassSymbol::hasMember(Symbol *S) const {
  return std::find(Members.begin(), Members.end(), S) != Members.end();
}

Symbol *ClassSymbol::findDeclaredMember(Name MemberName) const {
  // Tiny classes stay on the linear scan (an index would cost more to
  // maintain than it saves); larger ones answer from the flat
  // ordinal-keyed index, rebuilt lazily after any member mutation.
  if (Members.size() < 8) {
    for (Symbol *M : Members)
      if (M->name() == MemberName)
        return M;
    return nullptr;
  }
  if (MemberIdxDirty) {
    MemberIdx.clear();
    // insertIfAbsent keeps the first declaration on duplicate names,
    // matching the scan's first-match semantics.
    for (Symbol *M : Members)
      MemberIdx.insertIfAbsent(M->name().ordinal(), M);
    MemberIdxDirty = false;
  }
  Symbol *const *Found = MemberIdx.find(MemberName.ordinal());
  return Found ? *Found : nullptr;
}

Symbol *ClassSymbol::findMember(Name MemberName) const {
  if (Symbol *M = findDeclaredMember(MemberName))
    return M;
  for (const Type *P : Parents) {
    ClassSymbol *Cls = P->classSymbol();
    if (!Cls)
      continue;
    if (Symbol *M = Cls->findMember(MemberName))
      return M;
  }
  return nullptr;
}

bool ClassSymbol::derivesFrom(const ClassSymbol *Other) const {
  if (this == Other)
    return true;
  for (const Type *P : Parents) {
    ClassSymbol *Cls = P->classSymbol();
    if (Cls && Cls->derivesFrom(Other))
      return true;
  }
  return false;
}

void ClassSymbol::collectAncestors(std::vector<ClassSymbol *> &Out) const {
  for (const Type *P : Parents) {
    ClassSymbol *Cls = P->classSymbol();
    if (!Cls)
      continue;
    if (std::find(Out.begin(), Out.end(), Cls) == Out.end()) {
      Out.push_back(Cls);
      Cls->collectAncestors(Out);
    }
  }
}

//===----------------------------------------------------------------------===//
// SymbolTable
//===----------------------------------------------------------------------===//

SymbolTable::SymbolTable(NameTable &Names, TypeContext &Types)
    : Names(Names), Types(Types) {
  initBuiltins();
}

void SymbolTable::reset() {
  Symbols.clear();
  NextId = 1;
  FreshCounter = 0;
  PrimOpIdxByOrdinal.clear();
  PrimOpKindByOrdinal.clear();
  NumPrimOpNames = 0;
  for (auto &Row : PrimOpTable)
    for (Symbol *&S : Row)
      S = nullptr;
  initBuiltins();
}

void SymbolTable::initBuiltins() {
  Std.Init = Names.intern("<init>");
  Std.Apply = Names.intern("apply");
  Std.Main = Names.intern("main");
  Std.Elem = Names.intern("elem");
  Std.ModuleInstance = Names.intern("MODULE$");
  Std.Outer = Names.intern("$outer");
  Std.This = Names.intern("this");
  Std.Wildcard = Names.intern("_");
  Std.Length = Names.intern("length");
  Std.Update = Names.intern("update");
  Std.Println = Names.intern("println");
  Std.Print = Names.intern("print");
  Std.ClassOf = Names.intern("classOf");
  Std.Value = Names.intern("value");
  Std.Message = Names.intern("message");
  Std.Equals = Names.intern("equals");
  Std.EqEq = Names.intern("==");
  Std.BangEq = Names.intern("!=");
  Std.GetClass = Names.intern("getClass");
  Std.ToString = Names.intern("toString");
  Std.IsInstanceOf = Names.intern("isInstanceOf");
  Std.AsInstanceOf = Names.intern("asInstanceOf");
  Std.Label = Names.intern("label");
  Std.LiftedTry = Names.intern("liftedTree");
  Std.Bitmap = Names.intern("bitmap");

  RootPkg = makeTerm(Names.intern("<root>"), nullptr,
                     SymFlag::Package | SymFlag::Builtin);

  // The root reference class (AnyRef / java.lang.Object analogue).
  ObjectCls = makeBuiltinClass("Object", nullptr);
  ObjectTy = Types.classType(ObjectCls);

  StringCls = makeBuiltinClass("String", ObjectCls, SymFlag::Final);
  StringTy = Types.classType(StringCls);

  ThrowableCls = makeBuiltinClass("Throwable", ObjectCls);
  ThrowableTy = Types.classType(ThrowableCls);
  {
    Symbol *Msg = makeTerm(Std.Message, ThrowableCls,
                           SymFlag::Field | SymFlag::Builtin, StringTy);
    ThrowableCls->enterMember(Msg);
  }

  MatchErrorCls = makeBuiltinClass("MatchError", ThrowableCls);
  NonLocalReturnCls = makeBuiltinClass("NonLocalReturnControl", ThrowableCls);
  {
    Symbol *Val =
        makeTerm(Std.Value, NonLocalReturnCls,
                 SymFlag::Field | SymFlag::Builtin, Types.anyType());
    NonLocalReturnCls->enterMember(Val);
  }

  // Function0..Function5 with an abstract apply member. The apply signature
  // is generic in spirit; we give it Object-typed params, and the typer
  // special-cases application of FunctionType values anyway.
  for (unsigned Arity = 0; Arity <= MaxFunctionArity; ++Arity) {
    std::string ClsName = "Function" + std::to_string(Arity);
    ClassSymbol *F = makeBuiltinClass(ClsName.c_str(), ObjectCls,
                                      SymFlag::Trait);
    std::vector<const Type *> Params(Arity, Types.anyType());
    Symbol *ApplySym =
        makeTerm(Std.Apply, F,
                 SymFlag::Method | SymFlag::Abstract | SymFlag::Builtin,
                 Types.methodType(std::move(Params), Types.anyType()));
    F->enterMember(ApplySym);
    FunctionCls[Arity] = F;
  }

  // Ref boxes for captured vars.
  auto MakeRef = [&](const char *ClsName, const Type *ElemTy) {
    ClassSymbol *R = makeBuiltinClass(ClsName, ObjectCls, SymFlag::Final);
    Symbol *Elem = makeTerm(Std.Elem, R,
                            SymFlag::Field | SymFlag::Mutable |
                                SymFlag::Builtin,
                            ElemTy);
    R->enterMember(Elem);
    return R;
  };
  IntRefCls = MakeRef("IntRef", Types.intType());
  BooleanRefCls = MakeRef("BooleanRef", Types.booleanType());
  DoubleRefCls = MakeRef("DoubleRef", Types.doubleType());
  ObjectRefCls = MakeRef("ObjectRef", ObjectTy);

  // Predef module: println/print/classOf.
  PredefCls = makeBuiltinClass("Predef$", ObjectCls, SymFlag::ModuleClass);
  PredefVal = makeTerm(Names.intern("Predef"), RootPkg,
                       SymFlag::Module | SymFlag::Builtin | SymFlag::Final,
                       Types.classType(PredefCls));
  PrintlnSym = makeTerm(Std.Println, PredefCls,
                        SymFlag::Method | SymFlag::Builtin,
                        Types.methodType({Types.anyType()}, Types.unitType()));
  PredefCls->enterMember(PrintlnSym);
  PrintSym = makeTerm(Std.Print, PredefCls,
                      SymFlag::Method | SymFlag::Builtin,
                      Types.methodType({Types.anyType()}, Types.unitType()));
  PredefCls->enterMember(PrintSym);
  {
    // classOf[T](): Object — a PolyType over one type parameter.
    Symbol *TP = makeTerm(Names.intern("T"), PredefCls,
                          SymFlag::TypeParam | SymFlag::Builtin);
    ClassOfSym = makeTerm(Std.ClassOf, PredefCls,
                          SymFlag::Method | SymFlag::Builtin,
                          Types.polyType({TP}, Types.methodType({}, ObjectTy)));
    PredefCls->enterMember(ClassOfSym);
  }

  // Runtime module: null-safe equals used by InterceptedMethods.
  RuntimeCls = makeBuiltinClass("Runtime$", ObjectCls, SymFlag::ModuleClass);
  RuntimeVal = makeTerm(Names.intern("Runtime"), RootPkg,
                        SymFlag::Module | SymFlag::Builtin | SymFlag::Final,
                        Types.classType(RuntimeCls));
  RuntimeEqualsSym =
      makeTerm(Std.Equals, RuntimeCls, SymFlag::Method | SymFlag::Builtin,
               Types.methodType({Types.anyType(), Types.anyType()},
                                Types.booleanType()));
  RuntimeCls->enterMember(RuntimeEqualsSym);

  // isInstanceOf / asInstanceOf intrinsics: [T]()Boolean and [T]()T.
  {
    Symbol *TP1 = makeTerm(Names.intern("T"), ObjectCls,
                           SymFlag::TypeParam | SymFlag::Builtin);
    IsInstanceOfSym = makeTerm(
        Std.IsInstanceOf, ObjectCls,
        SymFlag::Method | SymFlag::Builtin | SymFlag::Final,
        Types.polyType({TP1}, Types.methodType({}, Types.booleanType())));
    Symbol *TP2 = makeTerm(Names.intern("T"), ObjectCls,
                           SymFlag::TypeParam | SymFlag::Builtin);
    AsInstanceOfSym =
        makeTerm(Std.AsInstanceOf, ObjectCls,
                 SymFlag::Method | SymFlag::Builtin | SymFlag::Final,
                 Types.polyType({TP2}, Types.methodType(
                                           {}, Types.typeParamRef(TP2))));
  }

  // Runtime.newArray[T](Int): Array[T] — backs `new Array[T](n)`.
  {
    Symbol *TP = makeTerm(Names.intern("T"), RuntimeCls,
                          SymFlag::TypeParam | SymFlag::Builtin);
    NewArraySym = makeTerm(
        Names.intern("newArray"), RuntimeCls,
        SymFlag::Method | SymFlag::Builtin,
        Types.polyType({TP},
                       Types.methodType({Types.intType()},
                                        Types.arrayType(
                                            Types.typeParamRef(TP)))));
    RuntimeCls->enterMember(NewArraySym);
  }

  // Object members usable on any reference: ==, !=, equals, toString.
  {
    const Type *EqTy =
        Types.methodType({Types.anyType()}, Types.booleanType());
    auto AddObj = [&](Name N, const Type *Ty) {
      Symbol *S = makeTerm(N, ObjectCls,
                           SymFlag::Method | SymFlag::Builtin, Ty);
      ObjectCls->enterMember(S);
      return S;
    };
    AddObj(Std.EqEq, EqTy);
    AddObj(Std.BangEq, EqTy);
    AddObj(Std.Equals, EqTy);
    AddObj(Std.ToString, Types.methodType({}, StringTy));
    // getClass yields a class literal comparable against classOf[T].
    AddObj(Std.GetClass, Types.methodType({}, ObjectTy));
  }

  // String members: concatenation and length.
  {
    Symbol *Concat = makeTerm(Names.intern("+"), StringCls,
                              SymFlag::Method | SymFlag::Builtin,
                              Types.methodType({Types.anyType()}, StringTy));
    StringCls->enterMember(Concat);
    Symbol *Len = makeTerm(Std.Length, StringCls,
                           SymFlag::Method | SymFlag::Builtin,
                           Types.methodType({}, Types.intType()));
    StringCls->enterMember(Len);
  }

  // Array pseudo-members. Their infos use Any; the typer retypes Select
  // nodes on arrays with the precise element type.
  ArrayApplySym = makeTerm(Std.Apply, ObjectCls,
                           SymFlag::Method | SymFlag::Builtin,
                           Types.methodType({Types.intType()},
                                            Types.anyType()));
  ArrayUpdateSym =
      makeTerm(Std.Update, ObjectCls, SymFlag::Method | SymFlag::Builtin,
               Types.methodType({Types.intType(), Types.anyType()},
                                Types.unitType()));
  ArrayLengthSym = makeTerm(Std.Length, ObjectCls,
                            SymFlag::Method | SymFlag::Builtin,
                            Types.methodType({}, Types.intType()));

  // Builtin constructors for classes that transforms instantiate.
  auto AddInit = [&](ClassSymbol *Cls, std::vector<const Type *> Params) {
    Symbol *Init = makeTerm(Std.Init, Cls,
                            SymFlag::Method | SymFlag::Constructor |
                                SymFlag::Builtin,
                            Types.methodType(std::move(Params),
                                             Types.unitType()));
    Cls->enterMember(Init);
  };
  AddInit(ObjectCls, {});
  AddInit(ThrowableCls, {StringTy});
  AddInit(MatchErrorCls, {});
  AddInit(NonLocalReturnCls, {Types.anyType()});
  AddInit(IntRefCls, {Types.intType()});
  AddInit(BooleanRefCls, {Types.booleanType()});
  AddInit(DoubleRefCls, {Types.doubleType()});
  AddInit(ObjectRefCls, {ObjectTy});

  // Primitive operator intrinsics, registered in the flat dispatch table.
  auto OpIndexOf = [&](Name OpName) -> int16_t {
    uint32_t Ord = OpName.ordinal();
    if (Ord >= PrimOpIdxByOrdinal.size())
      PrimOpIdxByOrdinal.resize(Ord + 1, -1);
    if (PrimOpIdxByOrdinal[Ord] < 0) {
      assert(NumPrimOpNames < static_cast<int16_t>(MaxPrimOps) &&
             "grow MaxPrimOps");
      PrimOpIdxByOrdinal[Ord] = NumPrimOpNames++;
    }
    return PrimOpIdxByOrdinal[Ord];
  };
  auto AddOp = [&](PrimKind P, const char *Op, PrimOpKind Kind,
                   const Type *Ret, bool Unary = false) {
    Name OpName = Names.intern(Op);
    std::vector<const Type *> Params;
    if (!Unary)
      Params.push_back(Types.primType(P));
    Symbol *S = makeTerm(OpName, RootPkg,
                         SymFlag::Method | SymFlag::Builtin | SymFlag::Final |
                             SymFlag::PrimOp,
                         Types.methodType(std::move(Params), Ret));
    PrimOpTable[static_cast<unsigned>(P)][OpIndexOf(OpName)] = S;
    // Record the operator's dense kind next to its name ordinal (the
    // kind depends on the name only, never on the primitive type).
    uint32_t Ord = OpName.ordinal();
    if (Ord >= PrimOpKindByOrdinal.size())
      PrimOpKindByOrdinal.resize(Ord + 1, -1);
    PrimOpKindByOrdinal[Ord] = static_cast<int8_t>(Kind);
  };
  using POK = PrimOpKind;
  constexpr std::pair<const char *, POK> Arith[] = {
      {"+", POK::Add}, {"-", POK::Sub}, {"*", POK::Mul},
      {"/", POK::Div}, {"%", POK::Rem}};
  constexpr std::pair<const char *, POK> Cmp[] = {
      {"<", POK::CmpLt}, {"<=", POK::CmpLe}, {">", POK::CmpGt},
      {">=", POK::CmpGe}, {"==", POK::CmpEq}, {"!=", POK::CmpNe}};
  for (PrimKind P : {PrimKind::Int, PrimKind::Double}) {
    const Type *Self = Types.primType(P);
    for (auto [Op, K] : Arith)
      AddOp(P, Op, K, Self);
    for (auto [Op, K] : Cmp)
      AddOp(P, Op, K, Types.booleanType());
    AddOp(P, "unary_-", POK::Neg, Self, /*Unary=*/true);
  }
  AddOp(PrimKind::Boolean, "&&", POK::And, Types.booleanType());
  AddOp(PrimKind::Boolean, "||", POK::Or, Types.booleanType());
  AddOp(PrimKind::Boolean, "==", POK::CmpEq, Types.booleanType());
  AddOp(PrimKind::Boolean, "!=", POK::CmpNe, Types.booleanType());
  AddOp(PrimKind::Boolean, "unary_!", POK::Not, Types.booleanType(),
        /*Unary=*/true);
}

PrimOpKind SymbolTable::primOpKindOf(Name Op) const {
  uint32_t Ord = Op.ordinal();
  if (Ord >= PrimOpKindByOrdinal.size())
    return PrimOpKind::None;
  return static_cast<PrimOpKind>(PrimOpKindByOrdinal[Ord]);
}

Symbol *SymbolTable::primOp(PrimKind P, Name Op) const {
  uint32_t Ord = Op.ordinal();
  if (Ord >= PrimOpIdxByOrdinal.size())
    return nullptr;
  int16_t Idx = PrimOpIdxByOrdinal[Ord];
  if (Idx < 0)
    return nullptr;
  return PrimOpTable[static_cast<unsigned>(P)][Idx];
}

Symbol *SymbolTable::makeTerm(Name N, Symbol *Owner, uint64_t Flags,
                              const Type *Info) {
  auto Owned = std::make_unique<Symbol>(Symbol::SymKind::Term, NextId++, N,
                                        Owner, Flags);
  Symbol *S = Owned.get();
  S->setInfo(Info);
  Symbols.push_back(std::move(Owned));
  return S;
}

ClassSymbol *SymbolTable::makeClass(Name N, Symbol *Owner, uint64_t Flags) {
  auto Owned = std::make_unique<ClassSymbol>(NextId++, N, Owner, Flags);
  ClassSymbol *S = Owned.get();
  Symbols.push_back(std::move(Owned));
  return S;
}

Name SymbolTable::freshName(std::string_view Base) {
  return Names.internSuffixed(Base, ++FreshCounter);
}

ClassSymbol *SymbolTable::makeBuiltinClass(const char *ClsName,
                                           ClassSymbol *Super,
                                           uint64_t Flags) {
  ClassSymbol *Cls = makeClass(Names.intern(ClsName), RootPkg,
                               Flags | SymFlag::Builtin);
  if (Super)
    Cls->setParents({Types.classType(Super)});
  Cls->setInfo(Types.classType(Cls));
  return Cls;
}

ClassSymbol *SymbolTable::functionClass(unsigned Arity) const {
  assert(Arity <= MaxFunctionArity && "function arity too large");
  return FunctionCls[Arity];
}

ClassSymbol *SymbolTable::refClassFor(const Type *Underlying) const {
  if (Underlying->isPrim(PrimKind::Int))
    return IntRefCls;
  if (Underlying->isPrim(PrimKind::Boolean))
    return BooleanRefCls;
  if (Underlying->isPrim(PrimKind::Double))
    return DoubleRefCls;
  return ObjectRefCls;
}
