//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generational-heap model, the substitute for HotSpot's GC in
/// the paper's Figures 5 and 6.
///
/// The paper's mechanism is lifetime-based: a tree node created by one
/// miniphase and replaced by a later miniphase *in the same traversal* dies
/// while still in the young generation, whereas under the megaphase scheme
/// the node stays live until the next whole-tree traversal, by which time
/// minor collections have promoted it to the old generation.
///
/// Tree nodes in this project are reference counted (immutability rules out
/// cycles), which gives exact death times. The model keeps a monotonically
/// increasing allocation clock; a simulated minor GC happens every
/// YoungGenBytes of allocation, and an object is counted as *tenured* when
/// it stays live across at least TenureThreshold minor collections.
///
/// Real storage vs. simulated clock: the accounting above is what the
/// Figure 5/6 benchmarks read, and it is computed purely from the charged
/// byte counts — it never observes addresses. The *real* storage behind
/// each allocation is served by a size-class SlabAllocator (pool pages +
/// per-class free lists), cutting system-allocator traffic from one call
/// per node to one call per 64 KiB page. CompilerOptions::SlabHeap toggles
/// the backend; the simulated statistics are byte-identical either way
/// (asserted by the slab-invariance test).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_MEMSIM_MANAGEDHEAP_H
#define MPC_MEMSIM_MANAGEDHEAP_H

#include "memsim/SlabAllocator.h"

#include <cstdint>
#include <cstdlib>

namespace mpc {

/// Aggregate statistics of a ManagedHeap, all in bytes / object counts.
struct HeapStats {
  uint64_t AllocatedBytes = 0;
  uint64_t AllocatedObjects = 0;
  uint64_t TenuredBytes = 0;
  uint64_t TenuredObjects = 0;
  /// Of the tenured objects, those whose PROMOTION (threshold crossing)
  /// happened before the marked boundary — e.g. frontend-built trees that
  /// die during the transformation pipeline. HotSpot promotes at survival
  /// time, so a per-stage measurement must attribute these to the stage
  /// where the promotion happened, not where the death happened.
  uint64_t TenuredBeforeBoundaryBytes = 0;
  uint64_t TenuredBeforeBoundaryObjects = 0;
  uint64_t FreedBytes = 0;
  uint64_t FreedObjects = 0;
  uint64_t MinorGCs = 0;
  uint64_t LiveBytes = 0;
  uint64_t PeakLiveBytes = 0;
};

/// The generational accounting heap. Real storage comes from the slab
/// backend (or the system allocator when the slab is disabled); what this
/// class adds is the allocation clock and promotion accounting.
class ManagedHeap {
public:
  /// \p YoungGenBytes   size of the simulated young generation;
  /// \p TenureThreshold number of survived minor GCs before promotion.
  explicit ManagedHeap(uint64_t YoungGenBytes = 64ull << 20,
                       unsigned TenureThreshold = 1)
      : YoungBytes(YoungGenBytes), Threshold(TenureThreshold) {}

  /// Allocates \p Size bytes and advances the allocation clock. Returns the
  /// storage; the current clock must be remembered by the object (trees keep
  /// it in their header) and passed back to deallocate().
  void *allocate(size_t Size, uint64_t &BirthClockOut) {
    return allocate(Size, Size, BirthClockOut);
  }

  /// Like allocate(), but charges \p ChargeBytes to the allocation clock
  /// while backing the object with \p MallocBytes of real storage. Tree
  /// nodes use this to account for their child-list cells (which on the
  /// JVM are separate cons-cell objects) in one charge.
  void *allocate(size_t MallocBytes, size_t ChargeBytes,
                 uint64_t &BirthClockOut) {
    // The birth clock is taken AFTER charging the allocation: an object
    // cannot survive the minor GC triggered by its own allocation.
    Clock += ChargeBytes;
    BirthClockOut = Clock;
    Stats.AllocatedBytes += ChargeBytes;
    Stats.AllocatedObjects += 1;
    Stats.LiveBytes += ChargeBytes;
    if (Stats.LiveBytes > Stats.PeakLiveBytes)
      Stats.PeakLiveBytes = Stats.LiveBytes;
    return Slab.allocate(MallocBytes);
  }

  /// Frees storage allocated with the symmetric allocate() (real storage
  /// equals the charged bytes).
  void deallocate(void *Ptr, size_t Size, uint64_t BirthClock) {
    deallocate(Ptr, Size, Size, BirthClock);
  }

  /// Frees storage allocated with the asymmetric allocate(): \p MallocBytes
  /// of real storage is returned to the backend while \p ChargeBytes is
  /// retired from the simulated clock, recording whether the object's
  /// lifetime spanned enough minor-GC boundaries to count as tenured.
  void deallocate(void *Ptr, size_t MallocBytes, size_t ChargeBytes,
                  uint64_t BirthClock) {
    Stats.FreedBytes += ChargeBytes;
    Stats.FreedObjects += 1;
    Stats.LiveBytes -= ChargeBytes;
    uint64_t BirthEpoch = BirthClock / YoungBytes;
    uint64_t DeathEpoch = Clock / YoungBytes;
    if (DeathEpoch - BirthEpoch >= Threshold) {
      Stats.TenuredBytes += ChargeBytes;
      Stats.TenuredObjects += 1;
      // Promotion happened at the first minor GC the object had survived
      // Threshold times — attribute it to the stage running then.
      uint64_t PromotionClock = (BirthEpoch + Threshold) * YoungBytes;
      if (HasBoundary && PromotionClock <= BoundaryClock) {
        Stats.TenuredBeforeBoundaryBytes += ChargeBytes;
        Stats.TenuredBeforeBoundaryObjects += 1;
      }
    }
    Slab.deallocate(Ptr, MallocBytes);
  }

  /// Raw storage from the slab backend, invisible to the simulated clock.
  /// Used for per-node auxiliary arrays (spilled child lists) whose JVM
  /// equivalent is already folded into the owning node's charge.
  void *rawAllocate(size_t Bytes) { return Slab.allocate(Bytes); }
  void rawDeallocate(void *Ptr, size_t Bytes) { Slab.deallocate(Ptr, Bytes); }

  /// Real-storage backend switch (CompilerOptions::SlabHeap). Only legal
  /// before the first allocation.
  void setSlabEnabled(bool E) { Slab.setEnabled(E); }
  bool slabEnabled() const { return Slab.enabled(); }

  /// Attaches the cross-context shared page pool (see PagePool.h). Only
  /// legal while the slab holds no pages.
  void setPagePool(PagePool *Pool) { Slab.setPagePool(Pool); }
  PagePool *pagePool() const { return Slab.pagePool(); }

  /// Warm-reuse reset: returns every slab page (to the shared pool when
  /// attached), clears the simulated statistics and the allocation
  /// clock. The caller guarantees no object allocated from this heap is
  /// still referenced. Generational geometry is preserved.
  void reset() {
    Slab.releaseAll();
    resetStats();
  }

  /// Backend counters: slab hits, pages mapped, system-allocator calls.
  const SlabAllocator::Stats &backendStats() const { return Slab.stats(); }

  /// Marks the current clock as a stage boundary (e.g. frontend ->
  /// transformations). Tenured objects promoted before this point are
  /// counted separately in TenuredBeforeBoundary*.
  void markBoundary() {
    HasBoundary = true;
    BoundaryClock = Clock;
  }

  /// Number of minor collections that have happened so far.
  uint64_t minorGCs() const { return Clock / YoungBytes; }

  const HeapStats &stats() const {
    Stats.MinorGCs = minorGCs();
    return Stats;
  }

  /// Resets the statistics and the allocation clock. Only valid when no
  /// objects are live (asserted by callers via stats().LiveBytes).
  void resetStats() {
    Stats = HeapStats();
    Clock = 0;
    HasBoundary = false;
    BoundaryClock = 0;
  }

  /// Reconfigures the generational geometry. Benchmarks size the young
  /// generation proportionally to the measured program (the paper's JVM
  /// heap is orders of magnitude larger than this harness's).
  void setGeometry(uint64_t YoungGenBytes, unsigned TenureThreshold) {
    YoungBytes = YoungGenBytes;
    Threshold = TenureThreshold;
  }

  uint64_t youngGenBytes() const { return YoungBytes; }
  unsigned tenureThreshold() const { return Threshold; }

private:
  uint64_t YoungBytes;
  unsigned Threshold;
  uint64_t Clock = 0;
  bool HasBoundary = false;
  uint64_t BoundaryClock = 0;
  mutable HeapStats Stats;
  SlabAllocator Slab;
};

} // namespace mpc

#endif // MPC_MEMSIM_MANAGEDHEAP_H
