//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction/cycle model on top of CacheSim, substituting for the `perf`
/// hardware counters of the paper's Figure 7.
///
/// The model is intentionally simple and documented: each simulated
/// "instruction" retires in BaseCPI cycles when it does not stall, and each
/// cache/memory miss adds a fixed latency that is accounted as stalled
/// cycles. The absolute numbers are a model; the *relative* behaviour of the
/// fused vs. unfused pipelines comes from real instruction counts (hooks
/// actually executed, nodes actually rebuilt) and real miss counts from the
/// address-accurate cache simulation.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_MEMSIM_PERFCOUNTERS_H
#define MPC_MEMSIM_PERFCOUNTERS_H

#include "memsim/CacheSim.h"

#include <cstdint>

namespace mpc {

/// Latency model (cycles). Values are typical for the Ivy Bridge-EP part
/// used in the paper (L1 4, L2 12, L3 ~30-40, DRAM ~200).
struct LatencyModel {
  double BaseCPI = 0.55;
  uint32_t L2HitCycles = 12;
  uint32_t L3HitCycles = 36;
  uint32_t MemoryCycles = 200;
};

/// Aggregated "perf stat"-style counters.
struct PerfStats {
  uint64_t Instructions = 0;
  uint64_t Cycles = 0;
  uint64_t StalledCycles = 0;
};

/// Combines an instruction counter with a CacheSim to produce cycle counts.
class PerfCounters {
public:
  explicit PerfCounters(CacheSim &CS, LatencyModel M = LatencyModel())
      : Cache(CS), Model(M) {}

  /// Records that \p N instructions were executed.
  void instructions(uint64_t N) { Instr += N; }

  /// Computes the derived stats from instruction and miss counts.
  PerfStats stats() const {
    const CacheCounters &C = Cache.counters();
    PerfStats S;
    S.Instructions = Instr;
    // Misses at each level stall the pipeline for the latency difference.
    uint64_t L2Hits = C.L2Accesses - C.L2Misses;
    uint64_t L3Hits = C.L3Accesses - C.L3Misses;
    S.StalledCycles = L2Hits * Model.L2HitCycles + L3Hits * Model.L3HitCycles +
                      C.MemoryAccesses * Model.MemoryCycles;
    S.Cycles =
        static_cast<uint64_t>(double(Instr) * Model.BaseCPI) + S.StalledCycles;
    return S;
  }

  void reset() { Instr = 0; }

  CacheSim &cache() { return Cache; }

private:
  CacheSim &Cache;
  LatencyModel Model;
  uint64_t Instr = 0;
};

} // namespace mpc

#endif // MPC_MEMSIM_PERFCOUNTERS_H
