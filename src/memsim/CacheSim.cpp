#include "memsim/CacheSim.h"

#include <cassert>
#include <cstddef>

using namespace mpc;

CacheLevel::CacheLevel(CacheGeometry G)
    : Geo(G), Tags(static_cast<size_t>(G.Sets) * G.Ways, EmptyTag),
      Stamps(static_cast<size_t>(G.Sets) * G.Ways, 0) {
  assert((G.Sets & (G.Sets - 1)) == 0 && "set count must be a power of two");
}

bool CacheLevel::lookup(uint64_t LineAddr) {
  uint32_t Set = setIndex(LineAddr);
  size_t Base = static_cast<size_t>(Set) * Geo.Ways;
  for (uint32_t W = 0; W < Geo.Ways; ++W) {
    if (Tags[Base + W] == LineAddr) {
      Stamps[Base + W] = ++Tick;
      return true;
    }
  }
  return false;
}

uint64_t CacheLevel::insert(uint64_t LineAddr) {
  uint32_t Set = setIndex(LineAddr);
  size_t Base = static_cast<size_t>(Set) * Geo.Ways;
  // Prefer an empty way; otherwise evict the LRU way.
  uint32_t Victim = 0;
  uint64_t OldestStamp = ~0ull;
  for (uint32_t W = 0; W < Geo.Ways; ++W) {
    if (Tags[Base + W] == EmptyTag) {
      Victim = W;
      OldestStamp = 0;
      break;
    }
    if (Stamps[Base + W] < OldestStamp) {
      OldestStamp = Stamps[Base + W];
      Victim = W;
    }
  }
  uint64_t Evicted = Tags[Base + Victim];
  Tags[Base + Victim] = LineAddr;
  Stamps[Base + Victim] = ++Tick;
  return Evicted == EmptyTag ? ~0ull : Evicted;
}

bool CacheLevel::invalidate(uint64_t LineAddr) {
  uint32_t Set = setIndex(LineAddr);
  size_t Base = static_cast<size_t>(Set) * Geo.Ways;
  for (uint32_t W = 0; W < Geo.Ways; ++W) {
    if (Tags[Base + W] == LineAddr) {
      Tags[Base + W] = EmptyTag;
      Stamps[Base + W] = 0;
      return true;
    }
  }
  return false;
}

// Xeon E5-2680 v2 geometry: L1d/L1i 32KB 8-way, L2 256KB 8-way,
// L3 25MB 20-way inclusive. 25MB/64B/20-way = 20480 sets, which is a power
// of two (2^14 = 16384? no: 20480 = 2^12 * 5). Index masking needs a power
// of two, so we use 16384 sets * 20 ways * 64B = 20MB, the closest
// power-of-two-set configuration; capacity differences at this scale do not
// change the qualitative behaviour.
CacheSim::CacheSim()
    : L1D({64, 8, LineBytes}), L1I({64, 8, LineBytes}),
      L2({512, 8, LineBytes}), L3({16384, 20, LineBytes}) {}

void CacheSim::access(uint64_t Addr, uint32_t Bytes, AccessKind Kind) {
  uint64_t FirstLine = Addr / LineBytes;
  uint64_t LastLine = (Addr + (Bytes ? Bytes - 1 : 0)) / LineBytes;
  for (uint64_t Line = FirstLine; Line <= LastLine; ++Line)
    accessLine(Line, Kind);
}

void CacheSim::accessLine(uint64_t LineAddr, AccessKind Kind) {
  CacheLevel &L1 = (Kind == AK_Fetch) ? L1I : L1D;

  switch (Kind) {
  case AK_Load:
    ++Counters.L1DLoads;
    break;
  case AK_Store:
    ++Counters.L1DStores;
    break;
  case AK_Fetch:
    ++Counters.L1IFetches;
    break;
  }

  if (L1.lookup(LineAddr))
    return;

  switch (Kind) {
  case AK_Load:
    ++Counters.L1DLoadMisses;
    break;
  case AK_Store:
    ++Counters.L1DStoreMisses;
    break;
  case AK_Fetch:
    ++Counters.L1IMisses;
    break;
  }

  ++Counters.L2Accesses;
  bool L2Hit = L2.lookup(LineAddr);
  if (!L2Hit) {
    ++Counters.L2Misses;
    ++Counters.L3Accesses;
    bool L3Hit = L3.lookup(LineAddr);
    if (!L3Hit) {
      ++Counters.L3Misses;
      ++Counters.MemoryAccesses;
      // Fill L3; inclusive property: anything evicted from L3 must leave
      // the core caches as well.
      uint64_t Evicted = L3.insert(LineAddr);
      if (Evicted != ~0ull) {
        L1D.invalidate(Evicted);
        L1I.invalidate(Evicted);
        L2.invalidate(Evicted);
      }
    }
    L2.insert(LineAddr);
  }
  L1.insert(LineAddr);
}
