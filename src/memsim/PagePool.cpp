#include "memsim/PagePool.h"

using namespace mpc;

PagePool &mpc::processPagePool() {
  // Deliberately leaked: allocators attached to the process-wide pool may
  // release pages into it from static-destruction order we don't control.
  // Runs with the default PagePoolConfig cap, so the process-wide
  // inventory is bounded too.
  static PagePool *Pool = new PagePool();
  return *Pool;
}
