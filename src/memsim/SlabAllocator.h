//===----------------------------------------------------------------------===//
///
/// \file
/// Size-class slab allocator backing the ManagedHeap's real storage.
///
/// The ManagedHeap models a generational GC for the paper's Figures 5/6;
/// its *simulated* allocation clock is pure accounting and never touches
/// this file. What does go through here is the real storage behind every
/// tree node (and the spilled child arrays of high-arity nodes), which
/// previously cost one std::malloc each. The slab batches them:
///
///   - sizes up to MaxSmallBytes round up to a 16-byte size class;
///   - each 64 KiB page is dedicated to one class and carries a small
///     header (free list, live count, carve cursor), so a block's page is
///     recovered by masking its address (pages are page-aligned);
///   - each class keeps a list of *available* pages (free blocks or carve
///     room); full pages drop off the list and rejoin it on the first
///     free back into them;
///   - when every block of a page has been freed, the page *retires*: it
///     leaves its class and enters a recycle pool any class may reuse, so
///     a phase churning one size class hands its pages to the next phase
///     instead of growing the footprint (heap.pagesRetired/pagesRecycled).
///     The page currently heading a class's available list is exempt —
///     that hysteresis keeps a free/alloc ping-pong on one block from
///     retiring and re-priming a page per cycle;
///   - oversize requests fall back to the system allocator.
///
/// The recycle pool exists at two scopes. By default it is allocator-local
/// (a retired page serves this allocator's next takePage). Attaching a
/// PagePool (setPagePool) lifts it process-wide: retired pages transfer to
/// the shared, mutex-guarded pool and takePage pulls from it, so pages
/// mapped while compiling one job serve the next job in a *different*
/// context — the CompileService's warm-page path. Ownership follows the
/// page: the allocator tracks the pages it currently holds on an intrusive
/// list threaded through the page headers and, at destruction or
/// releaseAll(), frees them (no shared pool) or returns them to the shared
/// pool (which then owns them). The allocator itself stays single-threaded;
/// only the PagePool handoff is synchronized.
///
/// Steady-state compilation touches the system allocator once per 64 KiB,
/// and an idle class's emptied pages are reusable everywhere. The backend
/// is deliberately invisible to the simulated figures: switching it off
/// (CompilerOptions::SlabHeap = false) changes only where bytes live,
/// never what the ManagedHeap accounts — a property the slab-invariance
/// test pins byte-for-byte.
///
/// Stats reported (surfaced as "heap.*" through the StatsRegistry):
///   SlabAllocs     allocations served from slab storage ("slab hits")
///   PagesMapped    64 KiB pages requested from the system allocator
///   PagesRetired   pages that went fully free and left their class
///   PagesRecycled  retired pages put back into service (either pool)
///   PagesToPool    pages handed to the shared PagePool
///   PagesFromPool  pages obtained from the shared PagePool
///   FallbackAllocs oversize allocations passed to the system allocator
///   SystemCalls    total system-allocator calls ("real" allocations)
///
//===----------------------------------------------------------------------===//

#ifndef MPC_MEMSIM_SLABALLOCATOR_H
#define MPC_MEMSIM_SLABALLOCATOR_H

#include "memsim/PagePool.h"
#include "support/FaultInjector.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace mpc {

/// Pooled small-object allocator with per-size-class page lists and
/// whole-page retirement.
class SlabAllocator {
public:
  /// Size-class granularity; every small allocation rounds up to this.
  static constexpr size_t GranuleBytes = 16;
  /// Largest slab-served request; bigger ones use the system allocator.
  static constexpr size_t MaxSmallBytes = 512;
  /// Bytes requested from the system per slab page (page-aligned, so a
  /// block's page header is found by masking the block address).
  static constexpr size_t PageBytes = 64 * 1024;

  /// Backend counters (real storage only — never the simulated clock).
  struct Stats {
    uint64_t SlabAllocs = 0;
    uint64_t SlabFrees = 0;
    uint64_t PagesMapped = 0;
    uint64_t PagesRetired = 0;
    uint64_t PagesRecycled = 0;
    uint64_t PagesToPool = 0;
    uint64_t PagesFromPool = 0;
    uint64_t FallbackAllocs = 0;
    uint64_t SystemCalls = 0;
  };

  explicit SlabAllocator(bool Enabled = true) : Enabled(Enabled) {}
  SlabAllocator(const SlabAllocator &) = delete;
  SlabAllocator &operator=(const SlabAllocator &) = delete;
  ~SlabAllocator() { releaseAll(); }

  /// Turns the slab on/off. Only legal before the first allocation (the
  /// free path must agree with the alloc path on who owns each block).
  void setEnabled(bool E) {
    assert(TotalAllocs == 0 && "slab toggle after first allocation");
    Enabled = E;
  }
  bool enabled() const { return Enabled; }

  /// Attaches the shared page pool (null detaches). Only legal while the
  /// allocator holds no pages, so every held page has one unambiguous
  /// release destination.
  void setPagePool(PagePool *Pool) {
    assert(!HeldHead && "page-pool switch while pages are held");
    Shared = Pool;
  }
  PagePool *pagePool() const { return Shared; }

  void *allocate(size_t Size) {
    ++TotalAllocs;
    if (!Enabled || Size > MaxSmallBytes) {
      if (FaultInjector *FI = activeFaultInjector())
        if (FI->failFallbackAlloc())
          throw std::bad_alloc();
      ++S.SystemCalls;
      if (Enabled)
        ++S.FallbackAllocs;
      return std::malloc(Size);
    }
    unsigned C = classOf(Size);
    ++S.SlabAllocs;
    PageHeader *P = Avail[C];
    if (!P)
      P = takePage(C);
    void *Block;
    if (P->Free) {
      Block = P->Free;
      P->Free = P->Free->Next;
    } else {
      Block = blockAt(P, P->Carved++);
    }
    ++P->Live;
    if (!P->Free && P->Carved == capacityOf(C))
      unlinkAvail(P); // page full: out of the allocation path
    return Block;
  }

  void deallocate(void *Ptr, size_t Size) {
    if (!Ptr)
      return;
    if (!Enabled || Size > MaxSmallBytes) {
      std::free(Ptr);
      return;
    }
    ++S.SlabFrees;
    auto *P = pageOf(Ptr);
    auto *N = static_cast<FreeNode *>(Ptr);
    N->Next = P->Free;
    P->Free = N;
    --P->Live;
    if (!P->InAvail) {
      // Was full; the freed block makes it available again. Re-enter
      // BEHIND the class's active head page: the head keeps absorbing
      // allocations, and if this page drains completely it retires
      // instead of pinning a nearly-empty page as the active one.
      linkAvailAfterHead(P);
    } else if (P->Live == 0 && Avail[P->ClassIdx] != P) {
      retire(P);
    }
  }

  /// Returns every page this allocator holds — the context-recycling
  /// "everything is dead now" path, where remaining live blocks die with
  /// their pages. Pages go back to the shared pool when one is attached,
  /// otherwise to the system. Afterwards the allocator is as fresh as a
  /// newly constructed one (cumulative stats excepted), so setEnabled /
  /// setPagePool become legal again. O(pages held).
  void releaseAll() {
    for (PageHeader *P = HeldHead; P;) {
      PageHeader *Next = P->OwnNext;
      if (Shared) {
        ++S.PagesToPool;
        Shared->put(P);
      } else {
        std::free(P);
      }
      P = Next;
    }
    HeldHead = nullptr;
    LocalPool.clear();
    for (unsigned C = 0; C < NumClasses; ++C)
      Avail[C] = nullptr;
    TotalAllocs = 0;
  }

  const Stats &stats() const { return S; }

private:
  struct FreeNode {
    FreeNode *Next;
  };
  /// Lives at the start of every page; blocks follow at HeaderBytes.
  struct PageHeader {
    PageHeader *Prev = nullptr; // available-list links (null = unlinked)
    PageHeader *Next = nullptr;
    PageHeader *OwnPrev = nullptr; // held-list links (all pages we own)
    PageHeader *OwnNext = nullptr;
    FreeNode *Free = nullptr;   // freed blocks of this page
    uint32_t Live = 0;          // blocks currently handed out
    uint32_t Carved = 0;        // blocks carved from the bump region
    uint32_t ClassIdx = 0;
    bool InAvail = false;
  };
  static constexpr size_t HeaderBytes = 64;
  static_assert(sizeof(PageHeader) <= HeaderBytes, "header fits its slot");
  static constexpr unsigned NumClasses = MaxSmallBytes / GranuleBytes;

  static unsigned classOf(size_t Size) {
    return Size == 0 ? 0
                     : static_cast<unsigned>((Size - 1) / GranuleBytes);
  }
  static size_t blockBytesOf(unsigned C) { return (C + 1) * GranuleBytes; }
  static uint32_t capacityOf(unsigned C) {
    return static_cast<uint32_t>((PageBytes - HeaderBytes) /
                                 blockBytesOf(C));
  }
  static void *blockAt(PageHeader *P, uint32_t Idx) {
    return reinterpret_cast<char *>(P) + HeaderBytes +
           size_t(Idx) * blockBytesOf(P->ClassIdx);
  }
  static PageHeader *pageOf(void *Block) {
    return reinterpret_cast<PageHeader *>(
        reinterpret_cast<uintptr_t>(Block) & ~(uintptr_t(PageBytes) - 1));
  }

  void linkAvailFront(PageHeader *P) {
    P->Prev = nullptr;
    P->Next = Avail[P->ClassIdx];
    if (P->Next)
      P->Next->Prev = P;
    Avail[P->ClassIdx] = P;
    P->InAvail = true;
  }

  /// Links \p P as the second page of its class (or the head when the
  /// list is empty) — see deallocate() for why full pages re-enter here.
  void linkAvailAfterHead(PageHeader *P) {
    PageHeader *Head = Avail[P->ClassIdx];
    if (!Head) {
      linkAvailFront(P);
      return;
    }
    P->Prev = Head;
    P->Next = Head->Next;
    if (P->Next)
      P->Next->Prev = P;
    Head->Next = P;
    P->InAvail = true;
  }

  void unlinkAvail(PageHeader *P) {
    if (P->Prev)
      P->Prev->Next = P->Next;
    else
      Avail[P->ClassIdx] = P->Next;
    if (P->Next)
      P->Next->Prev = P->Prev;
    P->Prev = P->Next = nullptr;
    P->InAvail = false;
  }

  void linkHeld(PageHeader *P) {
    P->OwnPrev = nullptr;
    P->OwnNext = HeldHead;
    if (HeldHead)
      HeldHead->OwnPrev = P;
    HeldHead = P;
  }

  void unlinkHeld(PageHeader *P) {
    if (P->OwnPrev)
      P->OwnPrev->OwnNext = P->OwnNext;
    else
      HeldHead = P->OwnNext;
    if (P->OwnNext)
      P->OwnNext->OwnPrev = P->OwnPrev;
    P->OwnPrev = P->OwnNext = nullptr;
  }

  /// Fully-free page leaves its class for the recycle pool: the shared
  /// PagePool when attached (ownership transfers), else the local pool
  /// (page stays held).
  void retire(PageHeader *P) {
    unlinkAvail(P);
    ++S.PagesRetired;
    if (Shared) {
      unlinkHeld(P);
      ++S.PagesToPool;
      Shared->put(P);
    } else {
      LocalPool.push_back(P);
    }
  }

  PageHeader *takePage(unsigned C) {
    // Fault point sits above the pool lookups so its firing frequency does
    // not depend on pool warmth — an injected exhaustion hits warm and
    // cold page paths alike.
    if (FaultInjector *FI = activeFaultInjector())
      if (FI->failPageAlloc())
        throw std::bad_alloc();
    void *Mem = nullptr;
    bool WasHeld = false;
    if (!LocalPool.empty()) {
      Mem = LocalPool.back();
      LocalPool.pop_back();
      ++S.PagesRecycled;
      WasHeld = true;
    } else if (Shared && (Mem = Shared->take())) {
      ++S.PagesRecycled;
      ++S.PagesFromPool;
    } else {
      Mem = std::aligned_alloc(PageBytes, PageBytes);
      ++S.PagesMapped;
      ++S.SystemCalls;
    }
    auto *P = static_cast<PageHeader *>(Mem);
    if (WasHeld)
      unlinkHeld(P); // header re-init below would wipe the links
    P = new (Mem) PageHeader();
    P->ClassIdx = C;
    linkHeld(P);
    linkAvailFront(P);
    return P;
  }

  PageHeader *Avail[NumClasses] = {}; // pages with a free block / carve room
  PageHeader *HeldHead = nullptr;     // every page we own (teardown/release)
  std::vector<void *> LocalPool;      // retired pages awaiting reuse (no
                                      // shared pool attached)
  PagePool *Shared = nullptr;
  bool Enabled;
  uint64_t TotalAllocs = 0;
  Stats S;
};

} // namespace mpc

#endif // MPC_MEMSIM_SLABALLOCATOR_H
