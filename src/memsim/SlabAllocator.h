//===----------------------------------------------------------------------===//
///
/// \file
/// Size-class slab allocator backing the ManagedHeap's real storage.
///
/// The ManagedHeap models a generational GC for the paper's Figures 5/6;
/// its *simulated* allocation clock is pure accounting and never touches
/// this file. What does go through here is the real storage behind every
/// tree node (and the spilled child arrays of high-arity nodes), which
/// previously cost one std::malloc each. The slab batches them:
///
///   - sizes up to MaxSmallBytes round up to a 16-byte size class;
///   - classes are served from per-class singly-linked free lists,
///     refilled by carving a shared 64 KiB bump page;
///   - oversize requests fall back to the system allocator.
///
/// Freed blocks return to their class's free list (pages are only released
/// wholesale at destruction), so steady-state compilation touches the
/// system allocator once per 64 KiB instead of once per node. The backend
/// is deliberately invisible to the simulated figures: switching it off
/// (CompilerOptions::SlabHeap = false) changes only where bytes live, never
/// what the ManagedHeap accounts — a property the slab-invariance test
/// pins byte-for-byte.
///
/// Stats reported (surfaced as "heap.*" through the StatsRegistry):
///   SlabAllocs     allocations served from slab storage ("slab hits")
///   PagesMapped    64 KiB pages requested from the system allocator
///   FallbackAllocs oversize allocations passed to the system allocator
///   SystemCalls    total system-allocator calls ("real" allocations)
///
//===----------------------------------------------------------------------===//

#ifndef MPC_MEMSIM_SLABALLOCATOR_H
#define MPC_MEMSIM_SLABALLOCATOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

namespace mpc {

/// Pooled small-object allocator with per-size-class free lists.
class SlabAllocator {
public:
  /// Size-class granularity; every small allocation rounds up to this.
  static constexpr size_t GranuleBytes = 16;
  /// Largest slab-served request; bigger ones use the system allocator.
  static constexpr size_t MaxSmallBytes = 512;
  /// Bytes requested from the system per slab page.
  static constexpr size_t PageBytes = 64 * 1024;

  /// Backend counters (real storage only — never the simulated clock).
  struct Stats {
    uint64_t SlabAllocs = 0;
    uint64_t SlabFrees = 0;
    uint64_t PagesMapped = 0;
    uint64_t FallbackAllocs = 0;
    uint64_t SystemCalls = 0;
  };

  explicit SlabAllocator(bool Enabled = true) : Enabled(Enabled) {}
  SlabAllocator(const SlabAllocator &) = delete;
  SlabAllocator &operator=(const SlabAllocator &) = delete;
  ~SlabAllocator() {
    for (void *Page : Pages)
      std::free(Page);
  }

  /// Turns the slab on/off. Only legal before the first allocation (the
  /// free path must agree with the alloc path on who owns each block).
  void setEnabled(bool E) {
    assert(TotalAllocs == 0 && "slab toggle after first allocation");
    Enabled = E;
  }
  bool enabled() const { return Enabled; }

  void *allocate(size_t Size) {
    ++TotalAllocs;
    if (!Enabled || Size > MaxSmallBytes) {
      ++S.SystemCalls;
      if (Enabled)
        ++S.FallbackAllocs;
      return std::malloc(Size);
    }
    unsigned C = classOf(Size);
    ++S.SlabAllocs;
    if (FreeNode *N = Free[C]) {
      Free[C] = N->Next;
      return N;
    }
    size_t ClassBytes = (C + 1) * GranuleBytes;
    if (static_cast<size_t>(BumpEnd - Bump) < ClassBytes) {
      // The sub-class remainder of the old page (< one class size) is
      // abandoned — bounded waste per page, and only on class changes.
      Bump = static_cast<char *>(std::malloc(PageBytes));
      BumpEnd = Bump + PageBytes;
      Pages.push_back(Bump);
      ++S.PagesMapped;
      ++S.SystemCalls;
    }
    void *P = Bump;
    Bump += ClassBytes;
    return P;
  }

  void deallocate(void *Ptr, size_t Size) {
    if (!Ptr)
      return;
    if (!Enabled || Size > MaxSmallBytes) {
      std::free(Ptr);
      return;
    }
    unsigned C = classOf(Size);
    ++S.SlabFrees;
    auto *N = static_cast<FreeNode *>(Ptr);
    N->Next = Free[C];
    Free[C] = N;
  }

  const Stats &stats() const { return S; }

private:
  struct FreeNode {
    FreeNode *Next;
  };
  static constexpr unsigned NumClasses = MaxSmallBytes / GranuleBytes;

  static unsigned classOf(size_t Size) {
    return Size == 0 ? 0
                     : static_cast<unsigned>((Size - 1) / GranuleBytes);
  }

  FreeNode *Free[NumClasses] = {};
  char *Bump = nullptr;
  char *BumpEnd = nullptr;
  std::vector<void *> Pages;
  bool Enabled;
  uint64_t TotalAllocs = 0;
  Stats S;
};

} // namespace mpc

#endif // MPC_MEMSIM_SLABALLOCATOR_H
