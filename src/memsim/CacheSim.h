//===----------------------------------------------------------------------===//
///
/// \file
/// Set-associative cache hierarchy simulator configured like the paper's
/// evaluation machine (Intel Xeon E5-2680 v2): 32KB 8-way L1d and L1i,
/// 256KB 8-way L2, and a 25MB 20-way *inclusive* L3. Inclusivity is modeled
/// faithfully: an eviction from L3 back-invalidates the line in L1d, L1i and
/// L2, which is the paper's explanation for the icache effect in Fig 8d.
///
/// The simulator consumes the real address stream of the real traversals
/// (tree node addresses from the allocator), so locality differences between
/// fused and unfused pipelines arise from the same mechanism as on hardware.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_MEMSIM_CACHESIM_H
#define MPC_MEMSIM_CACHESIM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpc {

/// Geometry of one cache level.
struct CacheGeometry {
  uint32_t Sets;
  uint32_t Ways;
  uint32_t LineBytes;

  uint64_t capacityBytes() const {
    return static_cast<uint64_t>(Sets) * Ways * LineBytes;
  }
};

/// One set-associative cache level with LRU replacement.
class CacheLevel {
public:
  explicit CacheLevel(CacheGeometry G);

  /// Looks up \p LineAddr (already divided by line size). Returns hit.
  bool lookup(uint64_t LineAddr);

  /// Inserts \p LineAddr; returns the evicted line address or ~0 if none.
  uint64_t insert(uint64_t LineAddr);

  /// Removes \p LineAddr if present (back-invalidation). Returns presence.
  bool invalidate(uint64_t LineAddr);

  const CacheGeometry &geometry() const { return Geo; }

private:
  static constexpr uint64_t EmptyTag = ~0ull;

  uint32_t setIndex(uint64_t LineAddr) const {
    // Sets is a power of two for all configured levels.
    return static_cast<uint32_t>(LineAddr & (Geo.Sets - 1));
  }

  CacheGeometry Geo;
  std::vector<uint64_t> Tags;   // Sets * Ways
  std::vector<uint64_t> Stamps; // LRU timestamps
  uint64_t Tick = 0;
};

/// Counter block shared by data and instruction accesses.
struct CacheCounters {
  uint64_t L1DLoads = 0, L1DLoadMisses = 0;
  uint64_t L1DStores = 0, L1DStoreMisses = 0;
  uint64_t L1IFetches = 0, L1IMisses = 0;
  uint64_t L2Accesses = 0, L2Misses = 0;
  uint64_t L3Accesses = 0, L3Misses = 0;
  /// Accesses that missed every on-chip cache (Fig 8c).
  uint64_t MemoryAccesses = 0;

  uint64_t l1dAccesses() const { return L1DLoads + L1DStores; }
  double l1dLoadMissRate() const {
    return L1DLoads ? double(L1DLoadMisses) / double(L1DLoads) : 0.0;
  }
  double l1dStoreMissRate() const {
    return L1DStores ? double(L1DStoreMisses) / double(L1DStores) : 0.0;
  }
  double llcLoadMissRate() const {
    return L3Accesses ? double(L3Misses) / double(L3Accesses) : 0.0;
  }
};

/// The three-level hierarchy (plus split L1i) with an inclusive L3.
class CacheSim {
public:
  /// Geometry defaults follow the paper's Xeon E5-2680 v2.
  CacheSim();

  /// Data load of \p Bytes at \p Addr (split into lines).
  void load(uint64_t Addr, uint32_t Bytes) { access(Addr, Bytes, AK_Load); }
  /// Data store.
  void store(uint64_t Addr, uint32_t Bytes) { access(Addr, Bytes, AK_Store); }
  /// Instruction fetch (simulated code addresses).
  void fetch(uint64_t Addr, uint32_t Bytes) { access(Addr, Bytes, AK_Fetch); }

  const CacheCounters &counters() const { return Counters; }
  void resetCounters() { Counters = CacheCounters(); }

  static constexpr uint32_t LineBytes = 64;

private:
  enum AccessKind { AK_Load, AK_Store, AK_Fetch };

  void access(uint64_t Addr, uint32_t Bytes, AccessKind Kind);
  void accessLine(uint64_t LineAddr, AccessKind Kind);

  CacheLevel L1D, L1I, L2, L3;
  CacheCounters Counters;
};

} // namespace mpc

#endif // MPC_MEMSIM_CACHESIM_H
