//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe pool of retired slab pages shared across compiler
/// contexts.
///
/// Each SlabAllocator recycles its own fully-freed pages; attaching a
/// PagePool lifts that recycle pool out of the allocator so pages mapped
/// while compiling one job serve the next job — possibly on a different
/// worker thread with a different CompilerContext. The pool owns every
/// page it holds: an allocator that puts a page in transfers ownership,
/// and takes ownership back when it takes one out, so contexts can come
/// and go while the pool (owned by the CompileService, or the process-wide
/// instance from processPagePool()) keeps the memory alive.
///
/// All operations are mutex-guarded; they run once per 64 KiB page, never
/// per allocation, so the lock is far off the allocation fast path.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_MEMSIM_PAGEPOOL_H
#define MPC_MEMSIM_PAGEPOOL_H

#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace mpc {

/// Mutex-guarded stack of page-sized blocks (see SlabAllocator::PageBytes).
class PagePool {
public:
  PagePool() = default;
  PagePool(const PagePool &) = delete;
  PagePool &operator=(const PagePool &) = delete;
  ~PagePool() {
    for (void *Page : Pages)
      std::free(Page);
  }

  /// Takes a page out of the pool (ownership moves to the caller), or
  /// returns null when the pool is empty.
  void *take() {
    std::lock_guard<std::mutex> Lock(M);
    if (Pages.empty())
      return nullptr;
    void *Page = Pages.back();
    Pages.pop_back();
    ++NumTaken;
    return Page;
  }

  /// Puts a page into the pool; the pool now owns it.
  void put(void *Page) {
    std::lock_guard<std::mutex> Lock(M);
    Pages.push_back(Page);
    ++NumPut;
  }

  /// Pages currently held.
  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Pages.size();
  }

  /// Lifetime traffic counters (snapshot under the lock).
  struct Stats {
    uint64_t PagesPut = 0;
    uint64_t PagesTaken = 0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> Lock(M);
    return {NumPut, NumTaken};
  }

private:
  mutable std::mutex M;
  std::vector<void *> Pages;
  uint64_t NumPut = 0;
  uint64_t NumTaken = 0;
};

/// The optional process-wide pool: every CompileService (and any direct
/// SlabAllocator user) that opts in shares one page inventory, so pages
/// survive service teardown and prime the next service. Constructed on
/// first use; intentionally leaked at exit (pages outlive any user).
PagePool &processPagePool();

} // namespace mpc

#endif // MPC_MEMSIM_PAGEPOOL_H
