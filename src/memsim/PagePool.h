//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe pool of retired slab pages shared across compiler
/// contexts.
///
/// Each SlabAllocator recycles its own fully-freed pages; attaching a
/// PagePool lifts that recycle pool out of the allocator so pages mapped
/// while compiling one job serve the next job — possibly on a different
/// worker thread with a different CompilerContext. The pool owns every
/// page it holds: an allocator that puts a page in transfers ownership,
/// and takes ownership back when it takes one out, so contexts can come
/// and go while the pool (owned by the CompileService, or the process-wide
/// instance from processPagePool()) keeps the memory alive.
///
/// Inventory is bounded: PagePoolConfig::MaxPages caps how many pages the
/// pool keeps; a put() beyond the cap frees the page back to the system
/// ("trim", counted in Stats::PagesTrimmed), so one burst of large jobs
/// cannot pin its peak footprint for the life of the service.
///
/// All operations are mutex-guarded; they run once per 64 KiB page, never
/// per allocation, so the lock is far off the allocation fast path.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_MEMSIM_PAGEPOOL_H
#define MPC_MEMSIM_PAGEPOOL_H

#include "support/FaultInjector.h"

#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace mpc {

/// Pool sizing policy.
struct PagePoolConfig {
  /// Pages the pool may hold at once. A put() that would exceed the cap
  /// frees the page to the system instead ("trim"), so idle inventory is
  /// bounded: a burst of large jobs can no longer pin its peak footprint
  /// forever. 0 = unbounded (the pre-cap behavior). The default caps the
  /// pool at 1024 x 64 KiB = 64 MiB.
  size_t MaxPages = 1024;
};

/// Mutex-guarded stack of page-sized blocks (see SlabAllocator::PageBytes).
class PagePool {
public:
  explicit PagePool(PagePoolConfig Config = PagePoolConfig())
      : Cfg(Config) {}
  PagePool(const PagePool &) = delete;
  PagePool &operator=(const PagePool &) = delete;
  ~PagePool() {
    for (void *Page : Pages)
      std::free(Page);
  }

  /// Takes a page out of the pool (ownership moves to the caller), or
  /// returns null when the pool is empty.
  void *take() {
    // Injected miss simulates an exhausted pool: the caller falls through
    // to a fresh system mapping, exercising the cold-page path on demand.
    if (FaultInjector *FI = activeFaultInjector())
      if (FI->missPoolTake())
        return nullptr;
    std::lock_guard<std::mutex> Lock(M);
    if (Pages.empty())
      return nullptr;
    void *Page = Pages.back();
    Pages.pop_back();
    ++NumTaken;
    return Page;
  }

  /// Puts a page into the pool; the pool now owns it. When the pool is
  /// at MaxPages, the page is trimmed (freed to the system) instead.
  void put(void *Page) {
    std::lock_guard<std::mutex> Lock(M);
    if (Cfg.MaxPages != 0 && Pages.size() >= Cfg.MaxPages) {
      std::free(Page);
      ++NumTrimmed;
      return;
    }
    Pages.push_back(Page);
    ++NumPut;
  }

  /// Pages currently held.
  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Pages.size();
  }

  const PagePoolConfig &config() const { return Cfg; }

  /// Lifetime traffic counters (snapshot under the lock).
  struct Stats {
    uint64_t PagesPut = 0;
    uint64_t PagesTaken = 0;
    /// Pages freed to the system because the pool was at MaxPages
    /// (surfaced by the compile service as "heap.pagesTrimmed").
    uint64_t PagesTrimmed = 0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> Lock(M);
    return {NumPut, NumTaken, NumTrimmed};
  }

private:
  mutable std::mutex M;
  PagePoolConfig Cfg;
  std::vector<void *> Pages;
  uint64_t NumPut = 0;
  uint64_t NumTaken = 0;
  uint64_t NumTrimmed = 0;
};

/// The optional process-wide pool: every CompileService (and any direct
/// SlabAllocator user) that opts in shares one page inventory, so pages
/// survive service teardown and prime the next service. Constructed on
/// first use; intentionally leaked at exit (pages outlive any user).
PagePool &processPagePool();

} // namespace mpc

#endif // MPC_MEMSIM_PAGEPOOL_H
