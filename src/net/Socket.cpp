#include "net/Socket.h"

#include "support/FaultInjector.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace mpc;
using namespace mpc::net;

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

void Socket::shutdownBoth() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

namespace {

sockaddr_in loopbackAddr(uint16_t Port) {
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  return Addr;
}

} // namespace

Socket net::listenTcp(uint16_t &Port, std::string &Err, int Backlog) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return Socket();
  }
  Socket S(Fd);
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr = loopbackAddr(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = std::string("bind: ") + std::strerror(errno);
    return Socket();
  }
  if (::listen(Fd, Backlog) != 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    return Socket();
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    Err = std::string("getsockname: ") + std::strerror(errno);
    return Socket();
  }
  Port = ntohs(Addr.sin_port);
  return S;
}

Socket net::acceptConn(int ListenFd) {
  int Fd = ::accept(ListenFd, nullptr, nullptr);
  if (Fd < 0)
    return Socket();
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  // Non-blocking: sendAll/recvSome own all waiting via poll, which is
  // what makes their timeouts real.
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  return Socket(Fd);
}

Socket net::connectTcp(uint16_t Port, int TimeoutMs, std::string &Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return Socket();
  }
  Socket S(Fd);
  // Non-blocking connect so the bound is honored even when the listener
  // has a full backlog.
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  sockaddr_in Addr = loopbackAddr(Port);
  int RC = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  if (RC != 0 && errno != EINPROGRESS) {
    Err = std::string("connect: ") + std::strerror(errno);
    return Socket();
  }
  if (RC != 0) {
    pollfd PFD{Fd, POLLOUT, 0};
    int PR = ::poll(&PFD, 1, TimeoutMs);
    if (PR <= 0) {
      Err = PR == 0 ? "connect: timed out" : "connect: poll failed";
      return Socket();
    }
    int SoErr = 0;
    socklen_t Len = sizeof(SoErr);
    ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &Len);
    if (SoErr != 0) {
      Err = std::string("connect: ") + std::strerror(SoErr);
      return Socket();
    }
  }
  // Stay non-blocking: sendAll/recvSome own all waiting via poll.
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return S;
}

int net::waitReadable(int Fd, int TimeoutMs) {
  pollfd PFD{Fd, POLLIN, 0};
  int RC = ::poll(&PFD, 1, TimeoutMs);
  if (RC == 0)
    return 0;
  if (RC < 0)
    return -1;
  if (PFD.revents & (POLLIN | POLLHUP))
    return 1; // readable, possibly a pending EOF — read() will tell
  return -1;
}

RecvStatus net::recvSome(int Fd, uint8_t *Buf, size_t Cap, size_t &Got,
                         int TimeoutMs) {
  Got = 0;
  if (FaultInjector *FI = activeFaultInjector())
    FI->readDelayPoint();
  int RC = waitReadable(Fd, TimeoutMs);
  if (RC == 0)
    return RecvStatus::Timeout;
  if (RC < 0)
    return RecvStatus::Error;
  ssize_t N = ::recv(Fd, Buf, Cap, 0);
  if (N > 0) {
    Got = static_cast<size_t>(N);
    return RecvStatus::Data;
  }
  if (N == 0)
    return RecvStatus::Closed;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
    return RecvStatus::Timeout;
  return RecvStatus::Error;
}

bool net::sendAll(int Fd, const uint8_t *Buf, size_t Len, int TimeoutMs) {
  // Torn-write fault: emit a strict prefix of the frame, then fail. The
  // peer's deframer sees a truncated frame followed by EOF — exactly the
  // shape a mid-write crash or connection reset produces.
  if (FaultInjector *FI = activeFaultInjector()) {
    if (Len > 1 && FI->tearWrite()) {
      size_t Torn = Len / 2;
      size_t At = 0;
      while (At < Torn) {
        ssize_t N = ::send(Fd, Buf + At, Torn - At, MSG_NOSIGNAL);
        if (N <= 0)
          break;
        At += static_cast<size_t>(N);
      }
      return false;
    }
  }
  size_t At = 0;
  while (At < Len) {
    ssize_t N = ::send(Fd, Buf + At, Len - At, MSG_NOSIGNAL);
    if (N > 0) {
      At += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full: a peer that stopped reading. Wait bounded —
      // a slow client cannot pin this thread past the timeout.
      pollfd PFD{Fd, POLLOUT, 0};
      int RC = ::poll(&PFD, 1, TimeoutMs);
      if (RC <= 0 || (PFD.revents & (POLLERR | POLLHUP)))
        return false;
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}
