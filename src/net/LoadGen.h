//===----------------------------------------------------------------------===//
///
/// \file
/// Open-loop load generation against a compile server. Arrivals follow a
/// fixed schedule T_i = T0 + i/RPS that does NOT slow down when the
/// server does — the defining property of open-loop measurement, and the
/// reason it exposes queueing collapse that closed-loop benchmarks hide:
/// latency for request i is measured from its *scheduled* arrival, so
/// time spent waiting behind a backlog counts against the server.
///
/// A pool of worker connections executes the schedule; each worker is a
/// CompileClient with the full retry/backoff stack, so the generator
/// doubles as the end-to-end fault-tolerance driver (NetFaultTest) and
/// as the latency bench (bench_service_latency sweeps RPS until the p99
/// knee).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_NET_LOADGEN_H
#define MPC_NET_LOADGEN_H

#include "net/Client.h"

#include <cstdint>
#include <string>

namespace mpc {
namespace net {

/// One load-generation run.
struct LoadGenConfig {
  uint16_t Port = 0;
  /// Offered arrival rate, requests/second. <= 0 = as fast as the
  /// workers can go (closed-loop; used to find the saturation point).
  double Rps = 0;
  /// Total arrivals in the schedule.
  uint64_t NumRequests = 100;
  /// Worker connections (the concurrency cap; an open-loop run wants
  /// enough that the schedule, not the pool, is the limiter).
  unsigned Connections = 8;
  /// Workload shape: generator seed (varied per request) and scale.
  uint64_t Seed = 1;
  double SourceScale = 0.02;
  /// Distinct job variants in the arrival mix. 1 exercises the server's
  /// artifact cache on every request after the first; larger values
  /// approximate a build fleet's mixed traffic.
  unsigned Variants = 4;
  /// Per-request soft deadline forwarded to the server (0 = none).
  uint64_t DeadlineMillis = 0;
  /// Retry budget per request (see ClientConfig).
  uint32_t MaxRetries = 8;
  int IoTimeoutMs = 30000;
};

/// What the run measured. Latencies in milliseconds.
struct LoadGenReport {
  uint64_t Scheduled = 0;   ///< arrivals in the schedule
  uint64_t Completed = 0;   ///< got a CompileResponse (any status)
  uint64_t Ok = 0;          ///< WireStatus::Ok
  uint64_t Deadline = 0;    ///< WireStatus::DeadlineExceeded
  uint64_t Faulted = 0;     ///< WireStatus::Faulted
  uint64_t GaveUp = 0;      ///< retries exhausted / unrecoverable
  uint64_t Retries = 0;     ///< backoff sleeps across all workers
  uint64_t RetryAfterSeen = 0;
  uint64_t Reconnects = 0;

  /// End-to-end latency from *scheduled* arrival to response.
  double P50Ms = 0, P95Ms = 0, P99Ms = 0, MeanMs = 0, MaxMs = 0;
  /// Server-reported queue wait of the completed requests — the split
  /// that tells queueing delay from compile time.
  double QueueP50Ms = 0, QueueP95Ms = 0, QueueP99Ms = 0;

  double OfferedRps = 0;  ///< what the schedule asked for
  double AchievedRps = 0; ///< completed / wall
  double WallSec = 0;
};

/// Runs one open-loop schedule. Blocking; spawns Cfg.Connections worker
/// threads internally.
LoadGenReport runLoadGen(const LoadGenConfig &Cfg);

/// Renders the report as one human-readable line.
std::string formatReport(const LoadGenReport &R);

} // namespace net
} // namespace mpc

#endif // MPC_NET_LOADGEN_H
