//===----------------------------------------------------------------------===//
///
/// \file
/// Dependency-light POSIX TCP plumbing for the compile server: RAII fd
/// ownership plus timeout-bounded whole-buffer send and chunk receive.
/// Everything returns status codes — no exceptions cross this layer, so
/// connection handlers can turn every failure into "close and account"
/// without unwinding through socket state.
///
/// The fault-injection story lives here too: sendAll() hosts the
/// NetTornWrite site (the frame is cut short mid-write, then the call
/// fails — the peer sees a truncated frame followed by EOF) and
/// recvSome() hosts the NetReadDelay site (a deterministic slow peer).
/// That is what lets the wire tests replay torn-frame and slow-client
/// schedules from a seed instead of depending on kernel buffer luck.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_NET_SOCKET_H
#define MPC_NET_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace mpc {
namespace net {

/// Owning file-descriptor handle (move-only).
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  Socket(Socket &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;
  ~Socket() { close(); }

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Half-close both directions without releasing the fd — wakes a peer
  /// (or our own reader thread) blocked in poll/read. Idempotent.
  void shutdownBoth();

  /// Closes the fd. Idempotent.
  void close();

private:
  int Fd = -1;
};

/// Creates a loopback listener. \p Port 0 picks an ephemeral port; on
/// success \p Port holds the actual bound port. Invalid Socket + \p Err
/// on failure.
Socket listenTcp(uint16_t &Port, std::string &Err, int Backlog = 64);

/// Accepts one pending connection (the caller polled readability).
/// Invalid Socket when the listener is closed or the accept fails.
Socket acceptConn(int ListenFd);

/// Connects to 127.0.0.1:\p Port with a bounded wait.
Socket connectTcp(uint16_t Port, int TimeoutMs, std::string &Err);

/// Outcome of one bounded receive.
enum class RecvStatus : uint8_t {
  Data,    ///< >=1 byte arrived
  Timeout, ///< nothing within TimeoutMs
  Closed,  ///< orderly EOF from the peer
  Error,   ///< socket error (connection reset, bad fd, ...)
};

/// Reads at most \p Cap bytes within \p TimeoutMs (-1 = wait forever).
/// Hosts the NetReadDelay fault site.
RecvStatus recvSome(int Fd, uint8_t *Buf, size_t Cap, size_t &Got,
                    int TimeoutMs);

/// Writes the whole buffer, polling for writability between partial
/// writes; fails (false) if any single wait exceeds \p TimeoutMs — the
/// slow-client guard: a peer that stops reading cannot pin the writer
/// for longer than the timeout. Hosts the NetTornWrite fault site.
/// Writes with SIGPIPE suppressed.
bool sendAll(int Fd, const uint8_t *Buf, size_t Len, int TimeoutMs);

/// Bounded poll for readability. Returns +1 readable, 0 timeout,
/// -1 error/hangup-with-nothing-readable.
int waitReadable(int Fd, int TimeoutMs);

} // namespace net
} // namespace mpc

#endif // MPC_NET_SOCKET_H
