//===----------------------------------------------------------------------===//
///
/// \file
/// The compile service's wire protocol: a small length-prefixed binary
/// framing over a byte stream, designed so that *parsing is total* — any
/// byte sequence a hostile or broken peer can produce decodes to Ok,
/// NeedMore, or a typed Error, never to a crash or an unbounded
/// allocation.
///
/// Frame layout (everything little-endian, lengths as LEB128 varints):
///
///   +----------------+---------+-------------------+
///   | varint Len     | msgType | payload           |
///   | (of type+body) | 1 byte  | Len - 1 bytes     |
///   +----------------+---------+-------------------+
///
/// Defensive rules the reader enforces *before* buffering a frame body:
///
///   - Len == 0 (a frame with no msgType) is a protocol error;
///   - Len > Limits::MaxFrameBytes is a protocol error, detected from
///     the header alone — an attacker cannot make the server buffer an
///     oversized body by lying about the length;
///   - a varint longer than MaxVarintBytes (10) is a protocol error
///     (every u64 fits in 10 LEB128 bytes, so an 11-byte varint is
///     necessarily garbage, not a big number);
///   - an unknown msgType is a typed error, surfaced after framing so
///     the connection can answer with ProtocolError and close instead of
///     desynchronizing.
///
/// Message payloads are decoded by pure functions that (a) bounds-check
/// every read, (b) cap repetition counts (Limits::MaxSources), and (c)
/// require the payload to be consumed *exactly* — trailing bytes mean a
/// malformed or desynchronized peer and fail the decode. All of this is
/// unit-fuzzable without a socket (tests/net/NetProtocolTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_NET_PROTOCOL_H
#define MPC_NET_PROTOCOL_H

#include "frontend/Frontend.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mpc {
namespace net {

/// Protocol version carried in the Hello frame. Bumped on any wire
/// change; the server refuses mismatches with ProtocolError(BadVersion).
inline constexpr uint64_t ProtocolVersion = 1;

/// First four payload bytes of a Hello frame ("MPCN"). A peer that is
/// not speaking this protocol at all fails here, on its first frame.
inline constexpr uint8_t HelloMagic[4] = {'M', 'P', 'C', 'N'};

/// Every frame type on the wire.
enum class MsgType : uint8_t {
  /// client -> server, first frame on a connection: magic + version.
  Hello = 1,
  /// client -> server: one compile job.
  CompileRequest = 2,
  /// server -> client: the job's result (any JobStatus except Rejected).
  CompileResponse = 3,
  /// server -> client: the job was not admitted (queue full, per-
  /// connection cap, or draining); retry after the suggested delay.
  RetryAfter = 4,
  /// server -> client: the peer violated the protocol; the server closes
  /// the connection right after sending this.
  ProtocolError = 5,
  /// server -> client: graceful shutdown — every owed response has been
  /// sent and the server is about to close the connection.
  Goodbye = 6,
  /// client -> server: keepalive (resets the idle-reap clock).
  Ping = 7,
  /// server -> client: answer to Ping.
  Pong = 8,
};

/// True iff \p Raw is a frame type this protocol version defines.
bool isKnownMsgType(uint8_t Raw);

/// Why the server is hanging up (ProtocolError payload).
enum class ProtoErrCode : uint8_t {
  BadMagic = 1,
  BadVersion = 2,
  FrameTooLarge = 3,
  MalformedFrame = 4,
  UnknownMsgType = 5,
  MalformedPayload = 6,
  HelloRequired = 7,
};
const char *protoErrCodeName(ProtoErrCode Code);

/// Job outcome over the wire (CompileResponse). Mirrors JobStatus minus
/// Rejected, which travels as its own RetryAfter frame.
enum class WireStatus : uint8_t {
  Ok = 0,
  DeadlineExceeded = 1,
  Faulted = 2,
};

/// Hard caps the defensive parser enforces. A server hands its limits to
/// every FrameReader it creates; clients use the defaults.
struct Limits {
  /// Largest admissible frame (msgType + payload). Checked against the
  /// header before any body byte is buffered.
  size_t MaxFrameBytes = 16u << 20;
  /// Most sources one CompileRequest may carry.
  uint64_t MaxSources = 4096;
};

/// Longest legal LEB128 varint (ceil(64/7)).
inline constexpr size_t MaxVarintBytes = 10;

//===----------------------------------------------------------------------===//
// Varints
//===----------------------------------------------------------------------===//

/// Appends \p V as a LEB128 varint.
void putVarint(std::vector<uint8_t> &Out, uint64_t V);

/// Incremental decode result.
enum class Decode : uint8_t { Ok, NeedMore, Error };

/// Decodes a varint from [P, P+N). On Ok sets \p V and \p Used; NeedMore
/// means the buffer ends mid-varint; Error means >MaxVarintBytes.
Decode getVarint(const uint8_t *P, size_t N, uint64_t &V, size_t &Used);

//===----------------------------------------------------------------------===//
// Messages
//===----------------------------------------------------------------------===//

/// Hello payload.
struct WireHello {
  uint64_t Version = ProtocolVersion;
};

/// CompileRequest payload. ReqId is chosen by the client and echoed in
/// the matching CompileResponse/RetryAfter, so responses can arrive out
/// of order (server workers complete jobs as they finish).
struct WireRequest {
  uint64_t ReqId = 0;
  bool WantDump = false;
  bool Interactive = false;
  /// Soft deadline in milliseconds measured from server admission
  /// (0 = none).
  uint64_t DeadlineMillis = 0;
  std::vector<SourceInput> Sources;
};

/// CompileResponse payload. Times travel as integer microseconds.
struct WireResponse {
  uint64_t ReqId = 0;
  WireStatus Status = WireStatus::Ok;
  bool HadErrors = false;
  uint64_t QueueWaitMicros = 0;
  uint64_t FrontendMicros = 0;
  uint64_t TransformMicros = 0;
  uint64_t BackendMicros = 0;
  std::string DiagText;
  std::string DumpText;
};

/// RetryAfter payload.
struct WireRetryAfter {
  uint64_t ReqId = 0;
  uint64_t RetryAfterMillis = 0;
  std::string Reason;
};

/// ProtocolError payload.
struct WireProtocolError {
  ProtoErrCode Code = ProtoErrCode::MalformedFrame;
  std::string Detail;
};

/// Frame encoders: each appends one complete frame (header + type +
/// payload) to \p Out.
void encodeHello(std::vector<uint8_t> &Out, const WireHello &M);
void encodeRequest(std::vector<uint8_t> &Out, const WireRequest &M);
void encodeResponse(std::vector<uint8_t> &Out, const WireResponse &M);
void encodeRetryAfter(std::vector<uint8_t> &Out, const WireRetryAfter &M);
void encodeProtocolError(std::vector<uint8_t> &Out,
                         const WireProtocolError &M);
void encodeBare(std::vector<uint8_t> &Out, MsgType Type); // Goodbye/Ping/Pong

/// Payload decoders (the msgType byte is already stripped). Return false
/// on malformed input with a human-readable \p Err; never throw, never
/// read out of bounds, and require exact consumption of the payload.
bool decodeHello(const uint8_t *P, size_t N, WireHello &M, std::string &Err);
bool decodeRequest(const uint8_t *P, size_t N, const Limits &Lim,
                   WireRequest &M, std::string &Err);
bool decodeResponse(const uint8_t *P, size_t N, WireResponse &M,
                    std::string &Err);
bool decodeRetryAfter(const uint8_t *P, size_t N, WireRetryAfter &M,
                      std::string &Err);
bool decodeProtocolError(const uint8_t *P, size_t N, WireProtocolError &M,
                         std::string &Err);

//===----------------------------------------------------------------------===//
// FrameReader
//===----------------------------------------------------------------------===//

/// One complete frame, viewing the reader's internal buffer. Valid until
/// the next call into the reader.
struct Frame {
  uint8_t RawType = 0;
  const uint8_t *Payload = nullptr;
  size_t PayloadLen = 0;

  MsgType type() const { return static_cast<MsgType>(RawType); }
};

/// Incremental defensive deframer. Feed it whatever byte chunks the
/// socket produces (any split, including one byte at a time); pull
/// complete frames with next(). After Error the reader is poisoned —
/// the connection must be closed, since the stream can no longer be
/// resynchronized.
class FrameReader {
public:
  explicit FrameReader(Limits Lim = Limits()) : Lim(Lim) {}

  /// Appends raw stream bytes.
  void feed(const uint8_t *P, size_t N) { Buf.insert(Buf.end(), P, P + N); }

  /// Extracts the next frame. Ok fills \p F (valid until the next feed/
  /// next call); NeedMore means the buffer holds no complete frame;
  /// Error means the stream is malformed (error() tells why).
  Decode next(Frame &F);

  /// Diagnosis of the Error state.
  ProtoErrCode errorCode() const { return ErrCode; }
  const std::string &error() const { return ErrText; }

  /// Bytes currently buffered (tests pin that this stays bounded).
  size_t buffered() const { return Buf.size(); }

private:
  Limits Lim;
  std::vector<uint8_t> Buf;
  size_t Pos = 0; // consumed prefix; compacted between frames
  bool Poisoned = false;
  ProtoErrCode ErrCode = ProtoErrCode::MalformedFrame;
  std::string ErrText;
};

} // namespace net
} // namespace mpc

#endif // MPC_NET_PROTOCOL_H
