#include "net/Server.h"

#include "support/FaultInjector.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>

using namespace mpc;
using namespace mpc::net;

CompileServer::CompileServer(ServerConfig Config) : Cfg(std::move(Config)) {
  // The server owns result delivery; the service must stream, not park.
  Cfg.Service.KeepContexts = false;
  Cfg.Service.OnResult = [this](uint64_t Id, BatchResult R) {
    deliverResult(Id, std::move(R));
  };
  Service = std::make_unique<CompileService>(Cfg.Service);
}

CompileServer::~CompileServer() {
  requestDrain();
  waitDrained();
  if (Drainer.joinable())
    Drainer.join();
  if (Acceptor.joinable())
    Acceptor.join();
}

bool CompileServer::start(std::string &Err) {
  uint16_t Port = Cfg.Port;
  Listener = listenTcp(Port, Err);
  if (!Listener.valid())
    return false;
  BoundPort = Port;

  int SV[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, SV) != 0) {
    Err = std::string("socketpair: ") + std::strerror(errno);
    return false;
  }
  WakeRead = Socket(SV[0]);
  WakeWrite = Socket(SV[1]);

  Started.store(true, std::memory_order_release);
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void CompileServer::acceptLoop() {
  while (!Draining.load(std::memory_order_acquire)) {
    pollfd FDs[2] = {{Listener.fd(), POLLIN, 0}, {WakeRead.fd(), POLLIN, 0}};
    int RC = ::poll(FDs, 2, -1);
    if (RC < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (FDs[1].revents)
      break; // drain wake-up
    if (!(FDs[0].revents & POLLIN))
      continue;
    Socket NS = acceptConn(Listener.fd());
    if (!NS.valid())
      continue;
    if (Draining.load(std::memory_order_acquire))
      break; // NS closes via RAII — we are no longer accepting work
    S.ConnectionsAccepted.fetch_add(1, std::memory_order_relaxed);
    auto Conn = std::make_shared<Connection>();
    Conn->Sock = std::move(NS);
    {
      std::lock_guard<std::mutex> Lock(ConnsM);
      Conn->ConnId = NextConnId++;
      Conns.emplace(Conn->ConnId, Conn);
    }
    {
      std::lock_guard<std::mutex> Lock(ReadersM);
      ++ActiveReaders;
    }
    // Detached: a reader cannot join itself when the peer hangs up, so
    // drain synchronizes on ActiveReaders instead of thread handles.
    std::thread([this, Conn] {
      connectionLoop(Conn);
      readerExit();
    }).detach();
  }
}

void CompileServer::readerExit() {
  std::lock_guard<std::mutex> Lock(ReadersM);
  --ActiveReaders;
  // Notify under the lock: the destructor may tear the condvar down the
  // instant the waiter sees zero.
  ReadersCv.notify_all();
}

void CompileServer::connectionLoop(std::shared_ptr<Connection> Conn) {
  FrameReader Reader(Cfg.Lim);
  uint8_t Buf[64 * 1024];
  auto LastActivity = std::chrono::steady_clock::now();

  while (!Conn->Dead.load(std::memory_order_acquire)) {
    size_t Got = 0;
    RecvStatus RS =
        recvSome(Conn->Sock.fd(), Buf, sizeof(Buf), Got, Cfg.PollMs);
    if (RS == RecvStatus::Closed || RS == RecvStatus::Error)
      break;
    if (RS == RecvStatus::Timeout) {
      // Idle reaping: traffic-free AND nothing owed. Never reap while a
      // response is outstanding, and never during drain (drain closes
      // connections itself, after the Goodbye).
      if (Cfg.IdleTimeoutMs > 0 && !Draining.load(std::memory_order_acquire) &&
          Conn->InFlight.load(std::memory_order_acquire) == 0) {
        auto Idle = std::chrono::steady_clock::now() - LastActivity;
        if (Idle >= std::chrono::milliseconds(Cfg.IdleTimeoutMs)) {
          S.IdleReaped.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      continue;
    }

    S.BytesRead.fetch_add(Got, std::memory_order_relaxed);
    LastActivity = std::chrono::steady_clock::now();
    Reader.feed(Buf, Got);

    Frame F;
    Decode D;
    bool Close = false;
    while ((D = Reader.next(F)) == Decode::Ok) {
      S.FramesRead.fetch_add(1, std::memory_order_relaxed);
      if (!handleFrame(Conn, F)) {
        Close = true;
        break;
      }
    }
    if (Close)
      break;
    if (D == Decode::Error) {
      // Typed error, then hang up: after a framing error the stream can
      // never be resynchronized.
      sendProtocolError(Conn, Reader.errorCode(), Reader.error());
      break;
    }

    // Forced-disconnect fault site: the connection dies abruptly, as if
    // the network dropped it — possibly with jobs still in flight (their
    // results become orphans; the service itself must keep serving).
    if (FaultInjector *FI = activeFaultInjector())
      if (FI->dropConnection())
        break;
  }

  Conn->Dead.store(true, std::memory_order_release);
  Conn->Sock.shutdownBoth(); // wake any writer; fd closes with the last ref
  dropConnectionEntry(Conn->ConnId);
}

bool CompileServer::handleFrame(const std::shared_ptr<Connection> &Conn,
                                const Frame &F) {
  if (!Conn->SawHello.load(std::memory_order_acquire) &&
      F.type() != MsgType::Hello) {
    sendProtocolError(Conn, ProtoErrCode::HelloRequired,
                      "first frame must be Hello");
    return false;
  }

  switch (F.type()) {
  case MsgType::Hello: {
    if (Conn->SawHello.load(std::memory_order_acquire)) {
      sendProtocolError(Conn, ProtoErrCode::MalformedPayload,
                        "duplicate Hello");
      return false;
    }
    WireHello H;
    std::string Err;
    if (!decodeHello(F.Payload, F.PayloadLen, H, Err)) {
      sendProtocolError(Conn,
                        Err == "bad hello magic" ? ProtoErrCode::BadMagic
                                                 : ProtoErrCode::MalformedPayload,
                        Err);
      return false;
    }
    if (H.Version != ProtocolVersion) {
      sendProtocolError(Conn, ProtoErrCode::BadVersion,
                        "peer speaks version " + std::to_string(H.Version) +
                            ", server speaks " +
                            std::to_string(ProtocolVersion));
      return false;
    }
    Conn->SawHello.store(true, std::memory_order_release);
    return true;
  }

  case MsgType::CompileRequest: {
    WireRequest Req;
    std::string Err;
    if (!decodeRequest(F.Payload, F.PayloadLen, Cfg.Lim, Req, Err)) {
      sendProtocolError(Conn, ProtoErrCode::MalformedPayload, Err);
      return false;
    }
    handleRequest(Conn, std::move(Req));
    return true;
  }

  case MsgType::Ping: {
    std::vector<uint8_t> Out;
    encodeBare(Out, MsgType::Pong);
    writeFrame(Conn, Out);
    return true;
  }

  case MsgType::Goodbye:
    return false; // orderly client hang-up; no error owed

  case MsgType::Pong:
    return true; // tolerated, meaningless from a client

  case MsgType::CompileResponse:
  case MsgType::RetryAfter:
  case MsgType::ProtocolError:
    sendProtocolError(Conn, ProtoErrCode::MalformedPayload,
                      "server-to-client frame type from a client");
    return false;
  }
  return false; // unreachable: FrameReader rejected unknown types already
}

void CompileServer::handleRequest(const std::shared_ptr<Connection> &Conn,
                                  WireRequest Req) {
  if (Draining.load(std::memory_order_acquire)) {
    sendRetryAfter(Conn, Req.ReqId, "server is draining");
    return;
  }
  // Per-connection in-flight cap: enforced here, before the service sees
  // the job, so one greedy connection cannot monopolize the queue.
  if (Conn->InFlight.load(std::memory_order_acquire) >=
      Cfg.MaxInFlightPerConn) {
    sendRetryAfter(Conn, Req.ReqId, "connection in-flight cap reached");
    return;
  }

  BatchJob Job;
  Job.Sources = std::move(Req.Sources);
  Job.WantDump = Req.WantDump;
  Job.Priority =
      Req.Interactive ? JobPriority::Interactive : JobPriority::Batch;
  Job.DeadlineSec = static_cast<double>(Req.DeadlineMillis) / 1000.0;

  // Count the job in flight *before* enqueueing: the completion callback
  // (which decrements) can fire before tryEnqueue returns.
  Conn->InFlight.fetch_add(1, std::memory_order_acq_rel);
  AdmitResult AR = Service->tryEnqueue(std::move(Job));
  if (AR.Id == InvalidJobId) {
    // Stopped service: no slot, no callback owed.
    Conn->InFlight.fetch_sub(1, std::memory_order_acq_rel);
    sendRetryAfter(Conn, Req.ReqId, "service stopped");
    return;
  }
  if (AR.Accepted)
    S.RequestsAdmitted.fetch_add(1, std::memory_order_relaxed);

  // Claim the id. The callback may already have fired (stashing the
  // result under Unclaimed) — deliver inline in that case.
  std::unique_ptr<BatchResult> Early;
  {
    std::lock_guard<std::mutex> Lock(PendingM);
    auto It = Unclaimed.find(AR.Id);
    if (It != Unclaimed.end()) {
      Early = std::move(It->second);
      Unclaimed.erase(It);
    } else {
      Pending.emplace(AR.Id, PendingJob{Conn, Req.ReqId});
    }
  }
  if (Early) {
    respond(Conn, Req.ReqId, *Early);
    Conn->InFlight.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void CompileServer::deliverResult(uint64_t JobId, BatchResult R) {
  PendingJob PJ;
  {
    std::lock_guard<std::mutex> Lock(PendingM);
    auto It = Pending.find(JobId);
    if (It == Pending.end()) {
      // The admitting thread has not registered this id yet — it is
      // still inside tryEnqueue. Stash; it claims after returning.
      Unclaimed.emplace(JobId,
                        std::make_unique<BatchResult>(std::move(R)));
      return;
    }
    PJ = std::move(It->second);
    Pending.erase(It);
  }
  respond(PJ.Conn, PJ.ReqId, R);
  PJ.Conn->InFlight.fetch_sub(1, std::memory_order_acq_rel);
}

void CompileServer::respond(const std::shared_ptr<Connection> &Conn,
                            uint64_t ReqId, BatchResult &R) {
  if (Conn->Dead.load(std::memory_order_acquire)) {
    // Disconnect mid-job: the job still ran to completion (the service
    // never aborts admitted work); only the answer has nowhere to go.
    S.OrphanedResults.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  if (R.Status == JobStatus::Rejected) {
    sendRetryAfter(Conn, ReqId,
                   R.DiagText.empty() ? "rejected by admission control"
                                      : R.DiagText.c_str());
    return;
  }

  WireResponse Resp;
  Resp.ReqId = ReqId;
  switch (R.Status) {
  case JobStatus::Ok:
    Resp.Status = WireStatus::Ok;
    break;
  case JobStatus::DeadlineExceeded:
    Resp.Status = WireStatus::DeadlineExceeded;
    break;
  case JobStatus::Faulted:
    Resp.Status = WireStatus::Faulted;
    break;
  case JobStatus::Rejected:
    break; // handled above
  }
  Resp.HadErrors = R.HadErrors;
  const CompileTimings &T = R.Out.Timings;
  Resp.QueueWaitMicros = static_cast<uint64_t>(T.QueueWaitSec * 1e6);
  Resp.FrontendMicros = static_cast<uint64_t>(T.FrontendSec * 1e6);
  Resp.TransformMicros = static_cast<uint64_t>(T.TransformSec * 1e6);
  Resp.BackendMicros = static_cast<uint64_t>(T.BackendSec * 1e6);
  Resp.DiagText = std::move(R.DiagText);
  Resp.DumpText = std::move(R.DumpText);

  std::vector<uint8_t> Out;
  encodeResponse(Out, Resp);
  if (writeFrame(Conn, Out))
    S.ResponsesSent.fetch_add(1, std::memory_order_relaxed);
  else
    S.OrphanedResults.fetch_add(1, std::memory_order_relaxed);
}

bool CompileServer::writeFrame(const std::shared_ptr<Connection> &Conn,
                               const std::vector<uint8_t> &Bytes) {
  std::lock_guard<std::mutex> Lock(Conn->WriteM);
  if (Conn->Dead.load(std::memory_order_acquire))
    return false;
  if (!sendAll(Conn->Sock.fd(), Bytes.data(), Bytes.size(),
               Cfg.WriteTimeoutMs)) {
    // Timed out (a peer that stopped reading) or failed outright: either
    // way this connection is beyond saving. Mark dead and wake its
    // reader so the fd is torn down once, through the normal exit path.
    S.SlowClientDrops.fetch_add(1, std::memory_order_relaxed);
    Conn->Dead.store(true, std::memory_order_release);
    Conn->Sock.shutdownBoth();
    return false;
  }
  S.BytesWritten.fetch_add(Bytes.size(), std::memory_order_relaxed);
  return true;
}

void CompileServer::sendRetryAfter(const std::shared_ptr<Connection> &Conn,
                                   uint64_t ReqId, const char *Reason) {
  WireRetryAfter M;
  M.ReqId = ReqId;
  M.RetryAfterMillis = Cfg.RetryAfterMillis;
  M.Reason = Reason;
  std::vector<uint8_t> Out;
  encodeRetryAfter(Out, M);
  if (writeFrame(Conn, Out))
    S.RetryAfterSent.fetch_add(1, std::memory_order_relaxed);
}

void CompileServer::sendProtocolError(const std::shared_ptr<Connection> &Conn,
                                      ProtoErrCode Code,
                                      const std::string &Detail) {
  S.ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
  WireProtocolError M;
  M.Code = Code;
  M.Detail = Detail;
  std::vector<uint8_t> Out;
  encodeProtocolError(Out, M);
  writeFrame(Conn, Out); // best effort — we are hanging up either way
}

void CompileServer::dropConnectionEntry(uint64_t ConnId) {
  std::lock_guard<std::mutex> Lock(ConnsM);
  if (Conns.erase(ConnId))
    S.ConnectionsClosed.fetch_add(1, std::memory_order_relaxed);
}

void CompileServer::requestDrain() {
  bool Expected = false;
  if (!Draining.compare_exchange_strong(Expected, true,
                                        std::memory_order_acq_rel))
    return;
  if (!Started.load(std::memory_order_acquire)) {
    // Never started: nothing to unwind, but the contract (waitDrained
    // returns, service stopped) still holds.
    Service->stop();
    std::lock_guard<std::mutex> Lock(DrainM);
    DrainDone = true;
    DrainCv.notify_all();
    return;
  }
  uint8_t B = 1;
  (void)::send(WakeWrite.fd(), &B, 1, MSG_NOSIGNAL);
  Drainer = std::thread([this] { drainMain(); });
}

void CompileServer::drainMain() {
  // 1. Stop accepting (the acceptor saw Draining + the wake byte).
  if (Acceptor.joinable())
    Acceptor.join();
  Listener.close();

  // 2. Answer everything admitted. stop() returns only after the
  //    OnResult callback has fired for every admitted job, i.e. after
  //    every owed CompileResponse/RetryAfter has been written (or
  //    counted as an orphan). Readers keep running meanwhile, answering
  //    late arrivals with RetryAfter("server is draining").
  Service->stop();

  // 3. Say Goodbye on every surviving connection, then shut it down so
  //    its reader unblocks and exits.
  std::vector<std::shared_ptr<Connection>> Live;
  {
    std::lock_guard<std::mutex> Lock(ConnsM);
    Live.reserve(Conns.size());
    for (auto &Entry : Conns)
      Live.push_back(Entry.second);
  }
  std::vector<uint8_t> Bye;
  encodeBare(Bye, MsgType::Goodbye);
  for (auto &Conn : Live) {
    writeFrame(Conn, Bye);
    Conn->Dead.store(true, std::memory_order_release);
    Conn->Sock.shutdownBoth();
  }

  // 4. Wait for every reader to unwind (they remove themselves from
  //    Conns on the way out).
  {
    std::unique_lock<std::mutex> Lock(ReadersM);
    ReadersCv.wait(Lock, [this] { return ActiveReaders == 0; });
  }

  std::lock_guard<std::mutex> Lock(DrainM);
  DrainDone = true;
  DrainCv.notify_all();
}

void CompileServer::waitDrained() {
  std::unique_lock<std::mutex> Lock(DrainM);
  DrainCv.wait(Lock, [this] { return DrainDone; });
}

ServerStats CompileServer::snapshot() const {
  ServerStats Out;
  Out.ConnectionsAccepted = S.ConnectionsAccepted.load();
  Out.ConnectionsClosed = S.ConnectionsClosed.load();
  Out.FramesRead = S.FramesRead.load();
  Out.RequestsAdmitted = S.RequestsAdmitted.load();
  Out.ResponsesSent = S.ResponsesSent.load();
  Out.RetryAfterSent = S.RetryAfterSent.load();
  Out.ProtocolErrors = S.ProtocolErrors.load();
  Out.IdleReaped = S.IdleReaped.load();
  Out.SlowClientDrops = S.SlowClientDrops.load();
  Out.OrphanedResults = S.OrphanedResults.load();
  Out.BytesRead = S.BytesRead.load();
  Out.BytesWritten = S.BytesWritten.load();
  return Out;
}

size_t CompileServer::liveConnections() const {
  std::lock_guard<std::mutex> Lock(ConnsM);
  return Conns.size();
}
