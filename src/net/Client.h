//===----------------------------------------------------------------------===//
///
/// \file
/// Client side of the compile-service wire protocol: a blocking
/// one-request-at-a-time connection with the fault-tolerance half of the
/// end-to-end story — reconnect on broken connections, exponential
/// backoff with deterministic jitter, and RetryAfter hints honored as a
/// floor on the next delay. The retry loop only ever replays *compiles*,
/// which are pure (same sources, same output), so resending after a torn
/// connection cannot double-apply anything.
///
/// The load generator (LoadGen.h) drives many of these, one per worker,
/// to put an open-loop arrival schedule on a server.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_NET_CLIENT_H
#define MPC_NET_CLIENT_H

#include "net/Protocol.h"
#include "net/Socket.h"

#include <cstdint>
#include <string>

namespace mpc {
namespace net {

/// Client tuning knobs.
struct ClientConfig {
  uint16_t Port = 0;
  int ConnectTimeoutMs = 2000;
  /// Bound on any single wait for server bytes (and on writes).
  int IoTimeoutMs = 10000;
  /// Attempts beyond the first before compile() gives up.
  uint32_t MaxRetries = 8;
  /// Exponential backoff: base * 2^attempt, capped, half of it jittered.
  uint32_t BackoffBaseMillis = 5;
  uint32_t BackoffCapMillis = 1000;
  /// Seed of the deterministic jitter (vary per client, e.g. by worker
  /// index, so a fleet doesn't retry in lockstep).
  uint64_t JitterSeed = 1;
  /// Frame caps for the client-side defensive reader.
  Limits Lim;
};

/// Wire-visible life of one client (monotone counters).
struct ClientStats {
  uint64_t RequestsSent = 0;
  uint64_t ResponsesOk = 0;
  uint64_t RetryAfterSeen = 0;
  uint64_t Reconnects = 0;
  uint64_t BackoffSleeps = 0;
  uint64_t TotalBackoffMillis = 0;
  uint64_t GaveUp = 0;
  uint64_t ProtocolErrors = 0;
};

/// What one low-level call() produced.
enum class CallStatus : uint8_t {
  Response,   ///< CompileResponse for our ReqId (in Reply)
  RetryAfter, ///< server refused; RetryHint/RetryReason are set
  Goodbye,    ///< server is draining; connection is done
  ProtoError, ///< server reported a protocol violation and hung up
  Closed,     ///< connection closed under us
  IoError,    ///< timeout or socket error (Error() tells which)
};
const char *callStatusName(CallStatus St);

/// One protocol connection. Not thread-safe: one thread, one client.
class CompileClient {
public:
  explicit CompileClient(ClientConfig Config) : Cfg(Config) {}

  /// Connects and completes the Hello handshake.
  bool connect(std::string &Err);
  bool connected() const { return Sock.valid(); }
  /// Sends Goodbye and closes (best-effort politeness).
  void close();

  /// Sends \p Req and blocks for its answer (matched by ReqId). No
  /// retries — the raw protocol exchange, for tests that assert on
  /// single responses.
  CallStatus call(const WireRequest &Req, WireResponse &Reply);

  /// The fault-tolerant path: call(), and on RetryAfter back off
  /// (honoring the server hint as a floor) and resend; on Closed/IoError
  /// reconnect and resend. Gives up after MaxRetries extra attempts.
  bool compile(const WireRequest &Req, WireResponse &Reply,
               std::string &Err);

  /// Round-trips a Ping (keepalive; tests use it to defeat idle reap).
  bool ping();

  /// Diagnosis of the last IoError/ProtoError.
  const std::string &error() const { return LastErr; }
  /// Last RetryAfter's hint and reason.
  uint64_t retryHintMillis() const { return RetryHint; }
  const std::string &retryReason() const { return RetryReason; }

  const ClientStats &stats() const { return Stats; }

  /// The backoff schedule, exposed for tests: delay before retry
  /// \p Attempt (0-based), with \p HintMillis as the server's floor.
  uint64_t backoffMillis(uint32_t Attempt, uint64_t HintMillis) const;

private:
  /// Blocks until one complete frame arrives. False = LastErr set and
  /// St set to Closed/IoError/ProtoError.
  bool readFrame(Frame &F, CallStatus &St);
  bool sendBytes(const std::vector<uint8_t> &Bytes);

  ClientConfig Cfg;
  Socket Sock;
  FrameReader Reader{Limits()};
  ClientStats Stats;
  std::string LastErr;
  uint64_t RetryHint = 0;
  std::string RetryReason;
  uint64_t NextReqId = 1;
};

} // namespace net
} // namespace mpc

#endif // MPC_NET_CLIENT_H
