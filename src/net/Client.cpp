#include "net/Client.h"

#include <chrono>
#include <thread>

using namespace mpc;
using namespace mpc::net;

const char *net::callStatusName(CallStatus St) {
  switch (St) {
  case CallStatus::Response:
    return "Response";
  case CallStatus::RetryAfter:
    return "RetryAfter";
  case CallStatus::Goodbye:
    return "Goodbye";
  case CallStatus::ProtoError:
    return "ProtoError";
  case CallStatus::Closed:
    return "Closed";
  case CallStatus::IoError:
    return "IoError";
  }
  return "?";
}

namespace {

/// splitmix64 — the jitter source: deterministic per (seed, attempt), so
/// retry schedules replay exactly under a fixed seed.
uint64_t mix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

} // namespace

bool CompileClient::connect(std::string &Err) {
  close();
  Sock = connectTcp(Cfg.Port, Cfg.ConnectTimeoutMs, Err);
  if (!Sock.valid())
    return false;
  Reader = FrameReader(Cfg.Lim); // a fresh stream needs a fresh deframer
  std::vector<uint8_t> Out;
  encodeHello(Out, WireHello{});
  if (!sendBytes(Out)) {
    Err = "hello write failed";
    Sock.close();
    return false;
  }
  return true;
}

void CompileClient::close() {
  if (!Sock.valid())
    return;
  std::vector<uint8_t> Out;
  encodeBare(Out, MsgType::Goodbye);
  sendBytes(Out); // best effort
  Sock.close();
}

bool CompileClient::sendBytes(const std::vector<uint8_t> &Bytes) {
  return Sock.valid() &&
         sendAll(Sock.fd(), Bytes.data(), Bytes.size(), Cfg.IoTimeoutMs);
}

bool CompileClient::readFrame(Frame &F, CallStatus &St) {
  uint8_t Buf[64 * 1024];
  for (;;) {
    switch (Reader.next(F)) {
    case Decode::Ok:
      return true;
    case Decode::Error:
      ++Stats.ProtocolErrors;
      LastErr = "malformed server frame: " + Reader.error();
      St = CallStatus::ProtoError;
      return false;
    case Decode::NeedMore:
      break;
    }
    size_t Got = 0;
    switch (recvSome(Sock.fd(), Buf, sizeof(Buf), Got, Cfg.IoTimeoutMs)) {
    case RecvStatus::Data:
      Reader.feed(Buf, Got);
      break;
    case RecvStatus::Timeout:
      LastErr = "timed out waiting for server";
      St = CallStatus::IoError;
      return false;
    case RecvStatus::Closed:
      LastErr = "connection closed by server";
      St = CallStatus::Closed;
      return false;
    case RecvStatus::Error:
      LastErr = "socket error while reading";
      St = CallStatus::IoError;
      return false;
    }
  }
}

CallStatus CompileClient::call(const WireRequest &Req, WireResponse &Reply) {
  std::vector<uint8_t> Out;
  encodeRequest(Out, Req);
  if (!sendBytes(Out)) {
    LastErr = "request write failed";
    return CallStatus::IoError;
  }
  ++Stats.RequestsSent;

  for (;;) {
    Frame F;
    CallStatus St = CallStatus::IoError;
    if (!readFrame(F, St))
      return St;

    std::string Err;
    switch (F.type()) {
    case MsgType::CompileResponse: {
      WireResponse R;
      if (!decodeResponse(F.Payload, F.PayloadLen, R, Err)) {
        ++Stats.ProtocolErrors;
        LastErr = "malformed CompileResponse: " + Err;
        return CallStatus::ProtoError;
      }
      if (R.ReqId != Req.ReqId)
        continue; // stale answer from a pre-reconnect life; not ours
      Reply = std::move(R);
      return CallStatus::Response;
    }
    case MsgType::RetryAfter: {
      WireRetryAfter RA;
      if (!decodeRetryAfter(F.Payload, F.PayloadLen, RA, Err)) {
        ++Stats.ProtocolErrors;
        LastErr = "malformed RetryAfter: " + Err;
        return CallStatus::ProtoError;
      }
      if (RA.ReqId != Req.ReqId)
        continue;
      ++Stats.RetryAfterSeen;
      RetryHint = RA.RetryAfterMillis;
      RetryReason = std::move(RA.Reason);
      return CallStatus::RetryAfter;
    }
    case MsgType::ProtocolError: {
      WireProtocolError PE;
      if (decodeProtocolError(F.Payload, F.PayloadLen, PE, Err))
        LastErr = std::string("server protocol error: ") +
                  protoErrCodeName(PE.Code) + ": " + PE.Detail;
      else
        LastErr = "server protocol error (undecodable payload)";
      ++Stats.ProtocolErrors;
      return CallStatus::ProtoError;
    }
    case MsgType::Goodbye:
      return CallStatus::Goodbye;
    case MsgType::Pong:
      continue; // stray keepalive answer
    default:
      ++Stats.ProtocolErrors;
      LastErr = "unexpected frame type " + std::to_string(F.RawType) +
                " from server";
      return CallStatus::ProtoError;
    }
  }
}

bool CompileClient::ping() {
  std::vector<uint8_t> Out;
  encodeBare(Out, MsgType::Ping);
  if (!sendBytes(Out))
    return false;
  for (;;) {
    Frame F;
    CallStatus St = CallStatus::IoError;
    if (!readFrame(F, St))
      return false;
    if (F.type() == MsgType::Pong)
      return true;
    if (F.type() == MsgType::Goodbye || F.type() == MsgType::ProtocolError)
      return false;
    // Anything else (a late response) is skipped — ping is single-
    // outstanding by the class contract, so nothing is owed to it.
  }
}

uint64_t CompileClient::backoffMillis(uint32_t Attempt,
                                      uint64_t HintMillis) const {
  uint32_t Shift = Attempt < 20 ? Attempt : 20;
  uint64_t Sched = uint64_t(Cfg.BackoffBaseMillis) << Shift;
  if (Sched > Cfg.BackoffCapMillis)
    Sched = Cfg.BackoffCapMillis;
  // Jitter over the top half: delay in [Sched/2, Sched], deterministic
  // per (seed, attempt) so a fleet with distinct seeds decorrelates.
  uint64_t Half = Sched / 2;
  uint64_t Jit = Half ? mix64(Cfg.JitterSeed * 0x9E3779B97F4A7C15ull +
                              Attempt) %
                            (Half + 1)
                      : 0;
  uint64_t Delay = Half + Jit;
  // The server's hint is a floor, not a suggestion: it knows its queue.
  return Delay < HintMillis ? HintMillis : Delay;
}

bool CompileClient::compile(const WireRequest &Req, WireResponse &Reply,
                            std::string &Err) {
  uint64_t Hint = 0;
  for (uint32_t Attempt = 0; Attempt <= Cfg.MaxRetries; ++Attempt) {
    if (Attempt > 0) {
      uint64_t Delay = backoffMillis(Attempt - 1, Hint);
      ++Stats.BackoffSleeps;
      Stats.TotalBackoffMillis += Delay;
      std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
      Hint = 0;
    }
    if (!connected()) {
      std::string ConnErr;
      if (!connect(ConnErr)) {
        Err = ConnErr;
        continue; // server may still be coming up / mid-restart
      }
      if (Attempt > 0)
        ++Stats.Reconnects;
    }
    switch (call(Req, Reply)) {
    case CallStatus::Response:
      ++Stats.ResponsesOk;
      return true;
    case CallStatus::RetryAfter:
      Hint = RetryHint;
      continue;
    case CallStatus::Goodbye:
    case CallStatus::Closed:
    case CallStatus::IoError:
      // Broken or draining connection: compiles are pure, so resending
      // on a fresh connection is always safe.
      Sock.close();
      Err = LastErr;
      continue;
    case CallStatus::ProtoError:
      // Not retryable: one side has a bug; stay loud instead of looping.
      Sock.close();
      Err = LastErr;
      return false;
    }
  }
  ++Stats.GaveUp;
  if (Err.empty())
    Err = "gave up after " + std::to_string(Cfg.MaxRetries) + " retries";
  return false;
}
