#include "net/LoadGen.h"

#include "workload/ProgramGenerator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <vector>

using namespace mpc;
using namespace mpc::net;

namespace {

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  double Rank = P / 100.0 * double(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - double(Lo);
  return Sorted[Lo] * (1 - Frac) + Sorted[Hi] * Frac;
}

} // namespace

LoadGenReport net::runLoadGen(const LoadGenConfig &Cfg) {
  LoadGenReport Rep;
  Rep.Scheduled = Cfg.NumRequests;
  Rep.OfferedRps = Cfg.Rps;

  // Pre-generate the job variants once: workload generation is itself
  // compiler-sized work and must not eat into the arrival schedule.
  unsigned NumVariants = std::max(1u, Cfg.Variants);
  std::vector<std::vector<SourceInput>> Variants;
  Variants.reserve(NumVariants);
  for (unsigned V = 0; V < NumVariants; ++V) {
    WorkloadProfile Profile = stdlibProfile(Cfg.SourceScale);
    Profile.Seed = Cfg.Seed + V;
    Profile.UnitsHint = 2;
    Variants.push_back(generateWorkload(Profile));
  }

  std::atomic<uint64_t> NextArrival{0};
  std::mutex ResultM;
  std::vector<double> LatMs, QueueMs;
  LatMs.reserve(Cfg.NumRequests);

  std::atomic<uint64_t> Completed{0}, Ok{0}, Deadline{0}, Faulted{0},
      GaveUp{0};

  Clock::time_point T0 = Clock::now();
  double PerArrivalSec = Cfg.Rps > 0 ? 1.0 / Cfg.Rps : 0;

  unsigned NumWorkers = std::max(1u, Cfg.Connections);
  std::vector<ClientStats> WorkerStats(NumWorkers);
  std::vector<std::thread> Workers;
  Workers.reserve(NumWorkers);

  for (unsigned W = 0; W < NumWorkers; ++W) {
    Workers.emplace_back([&, W] {
      ClientConfig CC;
      CC.Port = Cfg.Port;
      CC.MaxRetries = Cfg.MaxRetries;
      CC.IoTimeoutMs = Cfg.IoTimeoutMs;
      CC.JitterSeed = Cfg.Seed * 1000003 + W;
      CompileClient Client(CC);

      std::vector<double> MyLat, MyQueue;

      for (;;) {
        uint64_t I = NextArrival.fetch_add(1, std::memory_order_relaxed);
        if (I >= Cfg.NumRequests)
          break;

        // Open loop: wait for the scheduled arrival instant; if we are
        // already past it (server backlog pushed back on the pool), run
        // immediately — the lateness lands in this request's latency.
        Clock::time_point ScheduledAt =
            T0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(PerArrivalSec *
                                                   double(I)));
        if (Cfg.Rps > 0)
          std::this_thread::sleep_until(ScheduledAt);
        else
          ScheduledAt = Clock::now();

        WireRequest Req;
        Req.ReqId = I + 1;
        Req.DeadlineMillis = Cfg.DeadlineMillis;
        Req.Sources = Variants[I % NumVariants];

        WireResponse Resp;
        std::string Err;
        if (!Client.compile(Req, Resp, Err)) {
          GaveUp.fetch_add(1, std::memory_order_relaxed);
          continue;
        }

        double Ms = std::chrono::duration<double, std::milli>(
                        Clock::now() - ScheduledAt)
                        .count();
        MyLat.push_back(Ms);
        MyQueue.push_back(double(Resp.QueueWaitMicros) / 1000.0);
        Completed.fetch_add(1, std::memory_order_relaxed);
        switch (Resp.Status) {
        case WireStatus::Ok:
          Ok.fetch_add(1, std::memory_order_relaxed);
          break;
        case WireStatus::DeadlineExceeded:
          Deadline.fetch_add(1, std::memory_order_relaxed);
          break;
        case WireStatus::Faulted:
          Faulted.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }

      Client.close();
      WorkerStats[W] = Client.stats();
      std::lock_guard<std::mutex> Lock(ResultM);
      LatMs.insert(LatMs.end(), MyLat.begin(), MyLat.end());
      QueueMs.insert(QueueMs.end(), MyQueue.begin(), MyQueue.end());
    });
  }
  for (std::thread &T : Workers)
    T.join();

  Rep.WallSec =
      std::chrono::duration<double>(Clock::now() - T0).count();
  Rep.Completed = Completed.load();
  Rep.Ok = Ok.load();
  Rep.Deadline = Deadline.load();
  Rep.Faulted = Faulted.load();
  Rep.GaveUp = GaveUp.load();
  for (const ClientStats &CS : WorkerStats) {
    Rep.Retries += CS.BackoffSleeps;
    Rep.RetryAfterSeen += CS.RetryAfterSeen;
    Rep.Reconnects += CS.Reconnects;
  }

  std::sort(LatMs.begin(), LatMs.end());
  std::sort(QueueMs.begin(), QueueMs.end());
  Rep.P50Ms = percentile(LatMs, 50);
  Rep.P95Ms = percentile(LatMs, 95);
  Rep.P99Ms = percentile(LatMs, 99);
  Rep.MaxMs = LatMs.empty() ? 0 : LatMs.back();
  double Sum = 0;
  for (double L : LatMs)
    Sum += L;
  Rep.MeanMs = LatMs.empty() ? 0 : Sum / double(LatMs.size());
  Rep.QueueP50Ms = percentile(QueueMs, 50);
  Rep.QueueP95Ms = percentile(QueueMs, 95);
  Rep.QueueP99Ms = percentile(QueueMs, 99);
  Rep.AchievedRps = Rep.WallSec > 0 ? double(Rep.Completed) / Rep.WallSec : 0;
  return Rep;
}

std::string net::formatReport(const LoadGenReport &R) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "offered %.1f rps achieved %.1f rps | %llu/%llu completed "
      "(%llu ok, %llu deadline, %llu faulted, %llu gave up) | "
      "latency ms p50 %.2f p95 %.2f p99 %.2f max %.2f | "
      "queue-wait ms p50 %.2f p95 %.2f p99 %.2f | "
      "%llu retries, %llu retry-after, %llu reconnects",
      R.OfferedRps, R.AchievedRps,
      static_cast<unsigned long long>(R.Completed),
      static_cast<unsigned long long>(R.Scheduled),
      static_cast<unsigned long long>(R.Ok),
      static_cast<unsigned long long>(R.Deadline),
      static_cast<unsigned long long>(R.Faulted),
      static_cast<unsigned long long>(R.GaveUp), R.P50Ms, R.P95Ms, R.P99Ms,
      R.MaxMs, R.QueueP50Ms, R.QueueP95Ms, R.QueueP99Ms,
      static_cast<unsigned long long>(R.Retries),
      static_cast<unsigned long long>(R.RetryAfterSeen),
      static_cast<unsigned long long>(R.Reconnects));
  return Buf;
}
