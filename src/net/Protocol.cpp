#include "net/Protocol.h"

using namespace mpc;
using namespace mpc::net;

//===----------------------------------------------------------------------===//
// Varints
//===----------------------------------------------------------------------===//

void net::putVarint(std::vector<uint8_t> &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  Out.push_back(static_cast<uint8_t>(V));
}

Decode net::getVarint(const uint8_t *P, size_t N, uint64_t &V,
                      size_t &Used) {
  uint64_t Acc = 0;
  for (size_t I = 0; I < N && I < MaxVarintBytes; ++I) {
    Acc |= uint64_t(P[I] & 0x7F) << (7 * I);
    if (!(P[I] & 0x80)) {
      V = Acc;
      Used = I + 1;
      return Decode::Ok;
    }
  }
  // Ran out of buffer mid-varint, or exceeded the 10-byte cap: the
  // former wants more bytes, the latter can never become a valid u64.
  return N >= MaxVarintBytes ? Decode::Error : Decode::NeedMore;
}

//===----------------------------------------------------------------------===//
// Shared payload-cursor helpers
//===----------------------------------------------------------------------===//

namespace {

/// Bounds-checked sequential reader over one frame payload. Every getter
/// returns false (leaving \p Err set) instead of reading past the end.
struct Cursor {
  const uint8_t *P;
  size_t N;
  size_t At = 0;
  std::string &Err;

  Cursor(const uint8_t *P, size_t N, std::string &Err)
      : P(P), N(N), Err(Err) {}

  bool fail(const char *What) {
    Err = What;
    return false;
  }

  bool u64(uint64_t &V, const char *What) {
    size_t Used = 0;
    if (getVarint(P + At, N - At, V, Used) != Decode::Ok)
      return fail(What);
    At += Used;
    return true;
  }

  bool u8(uint8_t &V, const char *What) {
    if (At >= N)
      return fail(What);
    V = P[At++];
    return true;
  }

  /// A length-prefixed byte string. The length is validated against the
  /// *remaining payload*, so a lying prefix cannot trigger a huge
  /// allocation: the frame cap already bounds N.
  bool str(std::string &S, const char *What) {
    uint64_t Len = 0;
    if (!u64(Len, What))
      return false;
    if (Len > N - At)
      return fail(What);
    S.assign(reinterpret_cast<const char *>(P + At),
             static_cast<size_t>(Len));
    At += static_cast<size_t>(Len);
    return true;
  }

  /// Exact-consumption check — trailing bytes mean a desynchronized or
  /// malicious peer.
  bool done() {
    if (At != N)
      return fail("trailing bytes after payload");
    return true;
  }
};

void putStr(std::vector<uint8_t> &Out, const std::string &S) {
  putVarint(Out, S.size());
  Out.insert(Out.end(), S.begin(), S.end());
}

/// Wraps \p Body (msgType already first byte) into a frame in \p Out.
void putFrame(std::vector<uint8_t> &Out, const std::vector<uint8_t> &Body) {
  putVarint(Out, Body.size());
  Out.insert(Out.end(), Body.begin(), Body.end());
}

} // namespace

//===----------------------------------------------------------------------===//
// Encoders
//===----------------------------------------------------------------------===//

bool net::isKnownMsgType(uint8_t Raw) {
  return Raw >= static_cast<uint8_t>(MsgType::Hello) &&
         Raw <= static_cast<uint8_t>(MsgType::Pong);
}

const char *net::protoErrCodeName(ProtoErrCode Code) {
  switch (Code) {
  case ProtoErrCode::BadMagic:
    return "BadMagic";
  case ProtoErrCode::BadVersion:
    return "BadVersion";
  case ProtoErrCode::FrameTooLarge:
    return "FrameTooLarge";
  case ProtoErrCode::MalformedFrame:
    return "MalformedFrame";
  case ProtoErrCode::UnknownMsgType:
    return "UnknownMsgType";
  case ProtoErrCode::MalformedPayload:
    return "MalformedPayload";
  case ProtoErrCode::HelloRequired:
    return "HelloRequired";
  }
  return "?";
}

void net::encodeHello(std::vector<uint8_t> &Out, const WireHello &M) {
  std::vector<uint8_t> Body;
  Body.push_back(static_cast<uint8_t>(MsgType::Hello));
  Body.insert(Body.end(), HelloMagic, HelloMagic + 4);
  putVarint(Body, M.Version);
  putFrame(Out, Body);
}

void net::encodeRequest(std::vector<uint8_t> &Out, const WireRequest &M) {
  std::vector<uint8_t> Body;
  Body.push_back(static_cast<uint8_t>(MsgType::CompileRequest));
  putVarint(Body, M.ReqId);
  uint8_t Flags = (M.WantDump ? 1 : 0) | (M.Interactive ? 2 : 0);
  Body.push_back(Flags);
  putVarint(Body, M.DeadlineMillis);
  putVarint(Body, M.Sources.size());
  for (const SourceInput &S : M.Sources) {
    putStr(Body, S.FileName);
    putStr(Body, S.Text);
  }
  putFrame(Out, Body);
}

void net::encodeResponse(std::vector<uint8_t> &Out, const WireResponse &M) {
  std::vector<uint8_t> Body;
  Body.push_back(static_cast<uint8_t>(MsgType::CompileResponse));
  putVarint(Body, M.ReqId);
  Body.push_back(static_cast<uint8_t>(M.Status));
  Body.push_back(M.HadErrors ? 1 : 0);
  putVarint(Body, M.QueueWaitMicros);
  putVarint(Body, M.FrontendMicros);
  putVarint(Body, M.TransformMicros);
  putVarint(Body, M.BackendMicros);
  putStr(Body, M.DiagText);
  putStr(Body, M.DumpText);
  putFrame(Out, Body);
}

void net::encodeRetryAfter(std::vector<uint8_t> &Out,
                           const WireRetryAfter &M) {
  std::vector<uint8_t> Body;
  Body.push_back(static_cast<uint8_t>(MsgType::RetryAfter));
  putVarint(Body, M.ReqId);
  putVarint(Body, M.RetryAfterMillis);
  putStr(Body, M.Reason);
  putFrame(Out, Body);
}

void net::encodeProtocolError(std::vector<uint8_t> &Out,
                              const WireProtocolError &M) {
  std::vector<uint8_t> Body;
  Body.push_back(static_cast<uint8_t>(MsgType::ProtocolError));
  Body.push_back(static_cast<uint8_t>(M.Code));
  putStr(Body, M.Detail);
  putFrame(Out, Body);
}

void net::encodeBare(std::vector<uint8_t> &Out, MsgType Type) {
  std::vector<uint8_t> Body;
  Body.push_back(static_cast<uint8_t>(Type));
  putFrame(Out, Body);
}

//===----------------------------------------------------------------------===//
// Decoders
//===----------------------------------------------------------------------===//

bool net::decodeHello(const uint8_t *P, size_t N, WireHello &M,
                      std::string &Err) {
  Cursor C(P, N, Err);
  if (N < 4 || P[0] != HelloMagic[0] || P[1] != HelloMagic[1] ||
      P[2] != HelloMagic[2] || P[3] != HelloMagic[3])
    return C.fail("bad hello magic");
  C.At = 4;
  return C.u64(M.Version, "truncated hello version") && C.done();
}

bool net::decodeRequest(const uint8_t *P, size_t N, const Limits &Lim,
                        WireRequest &M, std::string &Err) {
  Cursor C(P, N, Err);
  uint8_t Flags = 0;
  uint64_t NumSources = 0;
  if (!C.u64(M.ReqId, "truncated request id") ||
      !C.u8(Flags, "truncated request flags") ||
      !C.u64(M.DeadlineMillis, "truncated request deadline") ||
      !C.u64(NumSources, "truncated source count"))
    return false;
  if (Flags & ~uint8_t(3))
    return C.fail("unknown request flag bits");
  M.WantDump = Flags & 1;
  M.Interactive = Flags & 2;
  if (NumSources > Lim.MaxSources)
    return C.fail("source count exceeds limit");
  // Each source needs >= 2 bytes (two empty strings), so a lying count
  // larger than the remaining payload fails before any reserve.
  if (NumSources > (N - C.At))
    return C.fail("source count exceeds payload");
  M.Sources.clear();
  M.Sources.reserve(static_cast<size_t>(NumSources));
  for (uint64_t I = 0; I < NumSources; ++I) {
    SourceInput S;
    if (!C.str(S.FileName, "truncated source name") ||
        !C.str(S.Text, "truncated source text"))
      return false;
    M.Sources.push_back(std::move(S));
  }
  return C.done();
}

bool net::decodeResponse(const uint8_t *P, size_t N, WireResponse &M,
                         std::string &Err) {
  Cursor C(P, N, Err);
  uint8_t Status = 0, HadErrors = 0;
  if (!C.u64(M.ReqId, "truncated response id") ||
      !C.u8(Status, "truncated response status") ||
      !C.u8(HadErrors, "truncated response error flag") ||
      !C.u64(M.QueueWaitMicros, "truncated response times") ||
      !C.u64(M.FrontendMicros, "truncated response times") ||
      !C.u64(M.TransformMicros, "truncated response times") ||
      !C.u64(M.BackendMicros, "truncated response times") ||
      !C.str(M.DiagText, "truncated response diagnostics") ||
      !C.str(M.DumpText, "truncated response dump"))
    return false;
  if (Status > static_cast<uint8_t>(WireStatus::Faulted))
    return C.fail("unknown response status");
  M.Status = static_cast<WireStatus>(Status);
  M.HadErrors = HadErrors != 0;
  return C.done();
}

bool net::decodeRetryAfter(const uint8_t *P, size_t N, WireRetryAfter &M,
                           std::string &Err) {
  Cursor C(P, N, Err);
  return C.u64(M.ReqId, "truncated retry id") &&
         C.u64(M.RetryAfterMillis, "truncated retry delay") &&
         C.str(M.Reason, "truncated retry reason") && C.done();
}

bool net::decodeProtocolError(const uint8_t *P, size_t N,
                              WireProtocolError &M, std::string &Err) {
  Cursor C(P, N, Err);
  uint8_t Code = 0;
  if (!C.u8(Code, "truncated error code") ||
      !C.str(M.Detail, "truncated error detail"))
    return false;
  if (Code < 1 || Code > static_cast<uint8_t>(ProtoErrCode::HelloRequired))
    return C.fail("unknown error code");
  M.Code = static_cast<ProtoErrCode>(Code);
  return C.done();
}

//===----------------------------------------------------------------------===//
// FrameReader
//===----------------------------------------------------------------------===//

Decode FrameReader::next(Frame &F) {
  if (Poisoned)
    return Decode::Error;

  // Compact the consumed prefix so the buffer stays bounded by one
  // frame's worth of data plus whatever the socket over-read.
  if (Pos > 0) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Pos));
    Pos = 0;
  }

  uint64_t Len = 0;
  size_t Used = 0;
  switch (getVarint(Buf.data(), Buf.size(), Len, Used)) {
  case Decode::NeedMore:
    return Decode::NeedMore;
  case Decode::Error:
    Poisoned = true;
    ErrCode = ProtoErrCode::MalformedFrame;
    ErrText = "frame header is not a valid varint";
    return Decode::Error;
  case Decode::Ok:
    break;
  }
  if (Len == 0) {
    Poisoned = true;
    ErrCode = ProtoErrCode::MalformedFrame;
    ErrText = "zero-length frame (no msgType)";
    return Decode::Error;
  }
  // The cap is enforced from the header alone, before the body arrives:
  // a peer cannot make us buffer an oversized frame by declaring one.
  if (Len > Lim.MaxFrameBytes) {
    Poisoned = true;
    ErrCode = ProtoErrCode::FrameTooLarge;
    ErrText = "declared frame length " + std::to_string(Len) +
              " exceeds cap " + std::to_string(Lim.MaxFrameBytes);
    return Decode::Error;
  }
  if (Buf.size() - Used < Len)
    return Decode::NeedMore;

  F.RawType = Buf[Used];
  F.Payload = Buf.data() + Used + 1;
  F.PayloadLen = static_cast<size_t>(Len) - 1;
  Pos = Used + static_cast<size_t>(Len);
  if (!isKnownMsgType(F.RawType)) {
    // Framing survived, so this *could* be skipped — but a peer sending
    // types we don't know is as likely desynchronized as newer, and
    // answering with a typed error is the safer contract.
    Poisoned = true;
    ErrCode = ProtoErrCode::UnknownMsgType;
    ErrText = "unknown msgType " + std::to_string(int(F.RawType));
    return Decode::Error;
  }
  return Decode::Ok;
}
