//===----------------------------------------------------------------------===//
///
/// \file
/// The networked compile server: CompileService behind a socket, built
/// so that *everything a hostile network can do is an accounted-for
/// outcome*, never a crash and never a wedged worker.
///
/// Architecture (one CompileServer):
///
///   accept thread ──► per-connection reader threads ──► tryEnqueue()
///                                                           │
///   OnResult callback (worker threads) ◄────────────────────┘
///        │ looks up (jobId → connection, reqId)
///        └─► serializes CompileResponse / RetryAfter, writes under the
///            connection's write lock with a bounded timeout
///
/// Robustness contracts:
///
///   - Defensive framing: the FrameReader's caps and typed errors mean a
///     torn frame, oversized header, or unknown msgType yields one
///     ProtocolError frame and a closed connection — the service and all
///     other connections keep running.
///   - Per-connection lifecycle: reads are polled with a timeout, idle
///     connections (no traffic, nothing in flight) are reaped, and a
///     connection may hold at most MaxInFlightPerConn jobs — beyond
///     that, and whenever the service's admission control refuses a job,
///     the client receives an explicit RetryAfter with a delay hint.
///   - Slow clients: response writes use a bounded poll; a peer that
///     stops reading is dropped (slowClientDrops), freeing the worker.
///   - Mid-job disconnects: jobs of a dead connection still complete;
///     their results are dropped and counted (orphanedResults).
///   - Graceful drain: requestDrain() stops accepting, answers every
///     admitted job (results or RetryAfter for late arrivals), sends
///     Goodbye on every surviving connection, and only then tears down —
///     riding CompileService::stop()'s drain guarantee. SIGTERM in the
///     mpc_served binary maps to exactly this, then exit 0.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_NET_SERVER_H
#define MPC_NET_SERVER_H

#include "driver/CompileService.h"
#include "net/Protocol.h"
#include "net/Socket.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace mpc {
namespace net {

/// Server tuning knobs.
struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 = ephemeral (read back via port()).
  uint16_t Port = 0;
  /// The wrapped compile service. KeepContexts must stay false and
  /// OnResult unset (the server installs its own).
  ServiceConfig Service;
  /// Wire-format caps handed to every connection's FrameReader.
  Limits Lim;
  /// Jobs one connection may have admitted-but-unanswered. Above this
  /// the server answers RetryAfter without consulting the service.
  uint32_t MaxInFlightPerConn = 8;
  /// Reader poll granularity (also bounds drain-notice latency).
  int PollMs = 50;
  /// Slow-client guard: max time one response write may stall.
  int WriteTimeoutMs = 2000;
  /// Connections with no traffic and nothing in flight for this long
  /// are closed. 0 disables reaping.
  int IdleTimeoutMs = 30000;
  /// Delay hint carried in RetryAfter responses.
  uint32_t RetryAfterMillis = 50;
};

/// Monotone wire-level counters (atomics; read with snapshot()).
struct ServerStats {
  uint64_t ConnectionsAccepted = 0;
  uint64_t ConnectionsClosed = 0;
  uint64_t FramesRead = 0;
  uint64_t RequestsAdmitted = 0;
  uint64_t ResponsesSent = 0;
  uint64_t RetryAfterSent = 0;
  uint64_t ProtocolErrors = 0;
  uint64_t IdleReaped = 0;
  uint64_t SlowClientDrops = 0;
  uint64_t OrphanedResults = 0;
  uint64_t BytesRead = 0;
  uint64_t BytesWritten = 0;
};

/// The long-lived server. start() spins up the listener; requestDrain()
/// (or destruction) runs the graceful shutdown.
class CompileServer {
public:
  explicit CompileServer(ServerConfig Config);
  CompileServer(const CompileServer &) = delete;
  CompileServer &operator=(const CompileServer &) = delete;
  /// requestDrain() + waitDrained().
  ~CompileServer();

  /// Binds and starts accepting. False + \p Err on failure (e.g. port
  /// in use). Call once.
  bool start(std::string &Err);

  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }

  /// Begins the graceful drain (idempotent, non-blocking): stop
  /// accepting, refuse new requests with RetryAfter, answer everything
  /// admitted, Goodbye + close every connection, join all threads.
  void requestDrain();

  /// Blocks until the drain started by requestDrain() has finished.
  void waitDrained();

  bool draining() const { return Draining.load(std::memory_order_acquire); }

  /// Wire counters snapshot. Thread-safe.
  ServerStats snapshot() const;

  /// The wrapped service (e.g. for its StatsRegistry after a drain).
  CompileService &service() { return *Service; }

  /// Live connections (tests: idle-reap / drain assertions).
  size_t liveConnections() const;

private:
  struct Connection {
    uint64_t ConnId = 0;
    Socket Sock;
    std::mutex WriteM;
    std::atomic<uint32_t> InFlight{0};
    std::atomic<bool> Dead{false};
    std::atomic<bool> SawHello{false};
  };

  struct PendingJob {
    std::shared_ptr<Connection> Conn;
    uint64_t ReqId = 0;
  };

  void acceptLoop();
  void drainMain();
  void connectionLoop(std::shared_ptr<Connection> Conn);
  /// Bookkeeping a detached reader runs as its very last act (a reader
  /// cannot join itself; drain waits on the count instead).
  void readerExit();
  /// Dispatches one decoded frame. False = close the connection.
  bool handleFrame(const std::shared_ptr<Connection> &Conn, const Frame &F);
  void handleRequest(const std::shared_ptr<Connection> &Conn,
                     WireRequest Req);
  /// The service's OnResult hook: routes \p R to the owning connection.
  void deliverResult(uint64_t JobId, BatchResult R);
  /// Turns one finished BatchResult into its wire answer: RetryAfter for
  /// JobStatus::Rejected, CompileResponse for everything else.
  void respond(const std::shared_ptr<Connection> &Conn, uint64_t ReqId,
               BatchResult &R);
  /// Serializes + writes one frame under the connection's write lock;
  /// marks the connection dead on failure. Returns write success.
  bool writeFrame(const std::shared_ptr<Connection> &Conn,
                  const std::vector<uint8_t> &Bytes);
  void sendRetryAfter(const std::shared_ptr<Connection> &Conn,
                      uint64_t ReqId, const char *Reason);
  void sendProtocolError(const std::shared_ptr<Connection> &Conn,
                         ProtoErrCode Code, const std::string &Detail);
  void dropConnectionEntry(uint64_t ConnId);

  ServerConfig Cfg;
  std::unique_ptr<CompileService> Service;
  Socket Listener;
  uint16_t BoundPort = 0;
  Socket WakeRead, WakeWrite; // self-pipe (socketpair) to wake accept poll

  std::atomic<bool> Draining{false};
  std::atomic<bool> Started{false};
  std::mutex DrainM;
  std::condition_variable DrainCv;
  bool DrainDone = false;

  mutable std::mutex ConnsM;
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> Conns;
  uint64_t NextConnId = 1;

  std::mutex PendingM;
  std::unordered_map<uint64_t, PendingJob> Pending;
  /// Results that completed before tryEnqueue() returned their job id to
  /// the admitting thread (the callback can outrun the admitter).
  std::unordered_map<uint64_t, std::unique_ptr<BatchResult>> Unclaimed;

  struct AtomicStats {
    std::atomic<uint64_t> ConnectionsAccepted{0}, ConnectionsClosed{0},
        FramesRead{0}, RequestsAdmitted{0}, ResponsesSent{0},
        RetryAfterSent{0}, ProtocolErrors{0}, IdleReaped{0},
        SlowClientDrops{0}, OrphanedResults{0}, BytesRead{0},
        BytesWritten{0};
  };
  AtomicStats S;

  /// Live detached reader threads. Drain (and only drain) waits for this
  /// to hit zero after shutting every socket down.
  std::mutex ReadersM;
  std::condition_variable ReadersCv;
  size_t ActiveReaders = 0;

  std::thread Acceptor;
  std::thread Drainer;
};

} // namespace net
} // namespace mpc

#endif // MPC_NET_SERVER_H
