#include "support/Fingerprint.h"

using namespace mpc;

namespace {

// splitmix64 finalizer: full-avalanche bijection on 64 bits.
inline uint64_t avalanche(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  return X;
}

// Little-endian word assembly, alignment- and endianness-agnostic.
inline uint64_t readWordLE(const unsigned char *P, size_t N) {
  uint64_t W = 0;
  for (size_t I = 0; I < N; ++I)
    W |= uint64_t(P[I]) << (8 * I);
  return W;
}

constexpr uint64_t KLane0 = 0x9e3779b97f4a7c15ull; // golden-ratio odd
constexpr uint64_t KLane1 = 0xc13fa9a902a6328full;
constexpr uint64_t KStep = 0x2545f4914f6cdd1dull;

} // namespace

std::string Fingerprint::hex() const {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(32, '0');
  for (int I = 0; I < 16; ++I)
    Out[15 - I] = Digits[(Hi >> (4 * I)) & 0xf];
  for (int I = 0; I < 16; ++I)
    Out[31 - I] = Digits[(Lo >> (4 * I)) & 0xf];
  return Out;
}

Fingerprint mpc::fingerprintBytes(const void *Data, size_t Size,
                                  Fingerprint Seed) {
  const auto *P = static_cast<const unsigned char *>(Data);
  uint64_t A = Seed.Lo ^ KLane0;
  uint64_t B = Seed.Hi ^ KLane1;
  size_t N = Size;
  while (N >= 8) {
    uint64_t W = readWordLE(P, 8);
    A = avalanche(A ^ W);
    B = avalanche(B + W + KStep);
    P += 8;
    N -= 8;
  }
  // Tail word (zero-padded) plus the total length: "abc" and "abc\0" must
  // differ, as must equal bytes at different lengths.
  uint64_t Tail = readWordLE(P, N);
  A = avalanche(A ^ Tail ^ Size);
  B = avalanche(B + Tail + Size * KStep);
  return {A, B};
}

Fingerprint mpc::fingerprintString(const std::string &S, Fingerprint Seed) {
  return fingerprintBytes(S.data(), S.size(), Seed);
}

Fingerprint mpc::fingerprintUInt(uint64_t Value) {
  return {avalanche(Value ^ KLane0), avalanche(Value + KLane1)};
}

Fingerprint mpc::combine(Fingerprint A, Fingerprint B) {
  // Asymmetric in A and B (combine(A,B) != combine(B,A)) and re-avalanched
  // so folding a chain of fingerprints keeps full dispersion.
  return {avalanche(A.Lo ^ (B.Lo + KStep)),
          avalanche(A.Hi + avalanche(B.Hi ^ KLane1))};
}
