//===----------------------------------------------------------------------===//
///
/// \file
/// A fast, stable 128-bit content fingerprint — the identity layer under
/// the compile service's artifact cache.
///
/// Two independent 64-bit lanes are mixed word-at-a-time with a
/// splitmix64-style avalanche (multiply-xor-shift), which gives full
/// 128-bit dispersion at a few cycles per 8 input bytes with zero
/// dependencies. The function is *stable*: input words are assembled
/// little-endian byte by byte, so the same bytes hash to the same value
/// on every platform and in every process run — a requirement for keys
/// that may one day be persisted or shipped between service replicas.
///
/// combine() is the order-sensitive combinator: job keys are built by
/// folding per-unit source fingerprints, the options fingerprint, and
/// the pipeline kind into one chain (see jobKeyFor in driver/Batch.h).
/// Order sensitivity is deliberate — unit order determines file ids and
/// therefore output, so reordered sources must produce a different key.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_FINGERPRINT_H
#define MPC_SUPPORT_FINGERPRINT_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace mpc {

/// A 128-bit content hash. Value type; compares bitwise.
struct Fingerprint {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool operator==(const Fingerprint &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const Fingerprint &O) const { return !(*this == O); }
  bool operator<(const Fingerprint &O) const {
    return Hi != O.Hi ? Hi < O.Hi : Lo < O.Lo;
  }

  /// 32 lowercase hex chars (Hi then Lo), for logs and golden tests.
  std::string hex() const;
};

/// Hashes \p Size bytes starting at \p Data. \p Seed chains fingerprints:
/// fingerprintBytes(B, fingerprintBytes(A)) != fingerprintBytes(AB) in
/// general, but both are stable; use combine() for explicit chaining.
Fingerprint fingerprintBytes(const void *Data, size_t Size,
                             Fingerprint Seed = Fingerprint());

/// Convenience over fingerprintBytes for strings (length is folded in,
/// so "ab"+"c" and "a"+"bc" chain differently).
Fingerprint fingerprintString(const std::string &S,
                              Fingerprint Seed = Fingerprint());

/// Fingerprint of one integer (enum ordinals, flags, sizes).
Fingerprint fingerprintUInt(uint64_t Value);

/// Order-sensitive mix of two fingerprints: the fold step for building
/// compound keys. Not commutative and not associative by design.
Fingerprint combine(Fingerprint A, Fingerprint B);

} // namespace mpc

#endif // MPC_SUPPORT_FINGERPRINT_H
