//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation (SplitMix64). Used by the
/// synthetic workload generator and property-style tests; never seeded from
/// wall-clock time so every run is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_RNG_H
#define MPC_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace mpc {

/// SplitMix64: tiny, fast, and statistically solid for workload generation.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "below() requires a positive bound");
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() bounds out of order");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// True with probability \p Percent / 100.
  bool chance(unsigned Percent) { return below(100) < Percent; }

  /// Picks a uniformly random element of \p Items.
  template <typename T, size_t N> const T &pick(const T (&Items)[N]) {
    return Items[below(N)];
  }

  /// Forks an independent stream (e.g. one per compilation unit).
  Rng fork() { return Rng(next() ^ 0xa02bdbf7bb3c0a7ULL); }

private:
  uint64_t State;
};

} // namespace mpc

#endif // MPC_SUPPORT_RNG_H
