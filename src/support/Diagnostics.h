//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and diagnostic collection. The compiler reports problems
/// through a DiagnosticEngine rather than aborting, so tests can assert on
/// produced diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_DIAGNOSTICS_H
#define MPC_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace mpc {

class OStream;

/// A position in a source file: 1-based line/column, file id into the
/// driver's file table. Line 0 means "no location".
struct SourceLoc {
  uint32_t FileId = 0;
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }
  bool operator==(const SourceLoc &O) const {
    return FileId == O.FileId && Line == O.Line && Col == O.Col;
  }
};

enum class DiagSeverity { Note, Warning, Error };

/// One reported problem.
struct Diagnostic {
  DiagSeverity Severity;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics; printing is separate from reporting.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Registers a file name, returning its id for SourceLocs.
  uint32_t addFile(std::string FileName) {
    Files.push_back(std::move(FileName));
    return static_cast<uint32_t>(Files.size() - 1);
  }
  const std::string &fileName(uint32_t Id) const { return Files[Id]; }
  size_t fileCount() const { return Files.size(); }

  /// Pretty-prints all diagnostics in "file:line:col: severity: msg" form.
  void printAll(OStream &OS) const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// Full reset for context recycling: clears diagnostics AND the file
  /// table, so a warm context assigns the same file ids as a cold one.
  void reset() {
    clear();
    Files.clear();
  }

private:
  std::vector<Diagnostic> Diags;
  std::vector<std::string> Files;
  unsigned NumErrors = 0;
};

} // namespace mpc

#endif // MPC_SUPPORT_DIAGNOSTICS_H
