//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and diagnostic collection. The compiler reports problems
/// through a DiagnosticEngine rather than aborting, so tests can assert on
/// produced diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_DIAGNOSTICS_H
#define MPC_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace mpc {

class OStream;

/// A position in a source file: 1-based line/column, file id into the
/// driver's file table. Line 0 means "no location".
struct SourceLoc {
  uint32_t FileId = 0;
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }
  bool operator==(const SourceLoc &O) const {
    return FileId == O.FileId && Line == O.Line && Col == O.Col;
  }
};

enum class DiagSeverity { Note, Warning, Error };

/// One reported problem.
struct Diagnostic {
  DiagSeverity Severity;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics; printing is separate from reporting.
///
/// To keep pathological inputs (fuzzed or machine-generated garbage) from
/// flooding memory and logs, each file stores at most MaxPerFile
/// diagnostics; the first one past the cap is replaced with a single
/// "too many errors, stopping" summary and the rest are counted but
/// dropped. Suppressed errors still count toward errorCount(), so
/// hasErrors() and driver decisions are unaffected by the cap.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    ++NumErrors;
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Diagnostics actually stored (including per-file cap summaries).
  size_t emittedCount() const { return Diags.size(); }
  /// Diagnostics dropped by the per-file cap.
  uint64_t suppressedCount() const { return NumSuppressed; }
  /// Sets the per-file diagnostic cap; 0 disables capping.
  void setMaxDiagnosticsPerFile(uint32_t Max) { MaxPerFile = Max; }
  uint32_t maxDiagnosticsPerFile() const { return MaxPerFile; }

  /// Registers a file name, returning its id for SourceLocs.
  uint32_t addFile(std::string FileName) {
    Files.push_back(std::move(FileName));
    return static_cast<uint32_t>(Files.size() - 1);
  }
  const std::string &fileName(uint32_t Id) const { return Files[Id]; }
  size_t fileCount() const { return Files.size(); }

  /// Pretty-prints all diagnostics in "file:line:col: severity: msg" form.
  void printAll(OStream &OS) const;

  void clear() {
    Diags.clear();
    PerFile.clear();
    NumErrors = 0;
    NumSuppressed = 0;
  }

  /// Full reset for context recycling: clears diagnostics AND the file
  /// table, so a warm context assigns the same file ids as a cold one.
  /// The configured per-file cap survives (it is configuration, not state).
  void reset() {
    clear();
    Files.clear();
  }

private:
  void report(DiagSeverity Sev, SourceLoc Loc, std::string Message) {
    if (MaxPerFile != 0) {
      uint32_t F = Loc.FileId;
      if (F >= PerFile.size())
        PerFile.resize(F + 1, 0);
      uint32_t &Emitted = PerFile[F];
      if (Emitted >= MaxPerFile) {
        ++NumSuppressed;
        if (Emitted == MaxPerFile) {
          ++Emitted; // sentinel: the summary was written for this file
          Diags.push_back({DiagSeverity::Note, Loc,
                           "too many errors, stopping diagnostics for "
                           "this file"});
        }
        return;
      }
      ++Emitted;
    }
    Diags.push_back({Sev, Loc, std::move(Message)});
  }

  std::vector<Diagnostic> Diags;
  std::vector<std::string> Files;
  std::vector<uint32_t> PerFile; // diagnostics emitted per FileId
  unsigned NumErrors = 0;
  uint64_t NumSuppressed = 0;
  uint32_t MaxPerFile = 64;
};

} // namespace mpc

#endif // MPC_SUPPORT_DIAGNOSTICS_H
