//===----------------------------------------------------------------------===//
///
/// \file
/// Flat open-addressing hash maps: pointer-keyed (FlatPtrMap) and
/// name-ordinal-keyed (FlatOrdMap).
///
/// FlatPtrMap is purpose-built for the fusion engine's DAG memo (input
/// node address -> transformed subtree): one contiguous slot array, linear
/// probing, and a multiplicative pointer hash. Compared to
/// std::unordered_map this does no per-entry allocation and probes
/// cache-adjacent slots, which matters because the memo is consulted once
/// per shared-subtree visit on the traversal hot path.
///
/// FlatOrdMap applies the same layout to dense uint32 name ordinals (the
/// ScopeStack's key scheme: slots store ordinal+1 so ordinal 0 — the
/// empty Name — never collides with the empty-slot sentinel). It backs
/// the typer's global table and the per-class member index.
///
/// Restrictions that keep both simple: keys are non-null (pointers) /
/// any ordinal (FlatOrdMap), entries are never erased individually
/// (clear() drops everything, retaining capacity).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_FLATPTRMAP_H
#define MPC_SUPPORT_FLATPTRMAP_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mpc {

/// Open-addressing pointer-keyed map. \p KeyT must be a pointer type;
/// \p ValueT must be default-constructible (empty slots hold a default
/// value alongside a null key).
template <typename KeyT, typename ValueT> class FlatPtrMap {
public:
  /// Returns the value mapped to \p Key, or nullptr when absent.
  ValueT *find(KeyT Key) {
    assert(Key && "null key");
    if (Slots.empty())
      return nullptr;
    size_t Mask = Slots.size() - 1;
    for (size_t I = hashOf(Key) & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (S.Key == Key)
        return &S.Value;
      if (!S.Key)
        return nullptr;
    }
  }

  /// Inserts \p Key -> \p Value when absent; existing entries win.
  void insert(KeyT Key, ValueT Value) {
    assert(Key && "null key");
    if (Slots.size() < 8 || Num * 4 >= Slots.size() * 3)
      grow();
    size_t Mask = Slots.size() - 1;
    for (size_t I = hashOf(Key) & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (S.Key == Key)
        return;
      if (!S.Key) {
        S.Key = Key;
        S.Value = std::move(Value);
        ++Num;
        return;
      }
    }
  }

  /// Drops all entries but keeps the slot array capacity.
  void clear() {
    for (Slot &S : Slots) {
      S.Key = nullptr;
      S.Value = ValueT();
    }
    Num = 0;
  }

  size_t size() const { return Num; }
  bool empty() const { return Num == 0; }

private:
  struct Slot {
    KeyT Key = nullptr;
    ValueT Value{};
  };

  static size_t hashOf(KeyT Key) {
    // Low bits of a heap pointer are alignment zeros; fold them out and
    // scatter with a 64-bit multiplicative mix (SplitMix64 constant).
    uint64_t H = reinterpret_cast<uintptr_t>(Key) >> 4;
    H *= 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(H ^ (H >> 32));
  }

  void grow() {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(Old.empty() ? 16 : Old.size() * 2, Slot());
    size_t Mask = Slots.size() - 1;
    for (Slot &S : Old) {
      if (!S.Key)
        continue;
      for (size_t I = hashOf(S.Key) & Mask;; I = (I + 1) & Mask) {
        if (!Slots[I].Key) {
          Slots[I].Key = S.Key;
          Slots[I].Value = std::move(S.Value);
          break;
        }
      }
    }
  }

  std::vector<Slot> Slots;
  size_t Num = 0;
};

/// Open-addressing map keyed by a name ordinal (uint32). Same layout as
/// the ScopeStack's slot table: linear probing over ordinal+1 keys with a
/// multiplicative hash, no tombstones. \p ValueT must be
/// default-constructible; the default value doubles as "absent" for
/// lookup() (the typer stores non-null Symbol pointers).
template <typename ValueT> class FlatOrdMap {
public:
  /// Pointer to the value mapped to \p Ord, or null when absent.
  ValueT *find(uint32_t Ord) {
    if (Slots.empty())
      return nullptr;
    size_t Mask = Slots.size() - 1;
    uint32_t Key = Ord + 1;
    for (size_t I = hashOrd(Ord) & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (S.OrdPlus1 == Key)
        return &S.Value;
      if (S.OrdPlus1 == 0)
        return nullptr;
    }
  }
  const ValueT *find(uint32_t Ord) const {
    return const_cast<FlatOrdMap *>(this)->find(Ord);
  }

  /// The value slot for \p Ord, inserting a default-constructed value
  /// when the key is new (std::map::operator[] semantics).
  ValueT &operator[](uint32_t Ord) {
    if (Slots.size() < 8 || Num * 4 >= Slots.size() * 3)
      grow();
    size_t Mask = Slots.size() - 1;
    uint32_t Key = Ord + 1;
    for (size_t I = hashOrd(Ord) & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (S.OrdPlus1 == Key)
        return S.Value;
      if (S.OrdPlus1 == 0) {
        S.OrdPlus1 = Key;
        ++Num;
        return S.Value;
      }
    }
  }

  /// Inserts \p Ord -> \p Value when absent; existing entries win (the
  /// declaration-order "first match" of a linear member scan).
  void insertIfAbsent(uint32_t Ord, ValueT Value) {
    ValueT &Slot = (*this)[Ord];
    if (Slot == ValueT())
      Slot = std::move(Value);
  }

  /// Drops all entries but keeps the slot array capacity.
  void clear() {
    for (Slot &S : Slots) {
      S.OrdPlus1 = 0;
      S.Value = ValueT();
    }
    Num = 0;
  }

  size_t size() const { return Num; }
  bool empty() const { return Num == 0; }

private:
  struct Slot {
    uint32_t OrdPlus1 = 0; // key ordinal + 1; 0 = empty slot
    ValueT Value{};
  };

  static size_t hashOrd(uint32_t Ord) {
    uint64_t H = Ord * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(H ^ (H >> 32));
  }

  void grow() {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(Old.empty() ? 16 : Old.size() * 2, Slot());
    size_t Mask = Slots.size() - 1;
    for (Slot &S : Old) {
      if (S.OrdPlus1 == 0)
        continue;
      for (size_t I = hashOrd(S.OrdPlus1 - 1) & Mask;; I = (I + 1) & Mask) {
        if (Slots[I].OrdPlus1 == 0) {
          Slots[I] = std::move(S);
          break;
        }
      }
    }
  }

  std::vector<Slot> Slots;
  size_t Num = 0;
};

} // namespace mpc

#endif // MPC_SUPPORT_FLATPTRMAP_H
