#include "support/Diagnostics.h"

#include "support/OStream.h"

using namespace mpc;

static const char *severityText(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

void DiagnosticEngine::printAll(OStream &OS) const {
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid() && D.Loc.FileId < Files.size())
      OS << Files[D.Loc.FileId] << ':' << D.Loc.Line << ':' << D.Loc.Col
         << ": ";
    OS << severityText(D.Severity) << ": " << D.Message << '\n';
  }
}
