#include "support/OStream.h"

#include <cinttypes>

using namespace mpc;

OStream::~OStream() = default;

OStream &OStream::operator<<(int64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRId64, N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::operator<<(uint64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::operator<<(double D) {
  char Buf[48];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::operator<<(const void *P) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%p", P);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::indent(unsigned N) {
  for (unsigned I = 0; I < N; ++I)
    write(" ", 1);
  return *this;
}

void FileOStream::write(const char *Data, size_t Size) {
  std::fwrite(Data, 1, Size, File);
}

OStream &mpc::outs() {
  static FileOStream S(stdout);
  return S;
}

OStream &mpc::errs() {
  static FileOStream S(stderr);
  return S;
}
