#include "support/Statistics.h"

#include "support/OStream.h"

using namespace mpc;

void StatsRegistry::print(OStream &OS) const {
  for (const auto &[Key, Value] : Counters)
    OS << Key << " = " << Value << '\n';
}
