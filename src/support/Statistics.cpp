#include "support/Statistics.h"

#include "support/OStream.h"

using namespace mpc;

void StatsRegistry::print(OStream &OS) const {
  for (const auto &[Key, Value] : Counters)
    OS << Key << " = " << Value << '\n';
}

void StatsRegistry::printPrefixed(OStream &OS,
                                  const std::string &Prefix) const {
  for (const auto &[Key, Value] : Counters)
    if (Key.compare(0, Prefix.size(), Prefix) == 0)
      OS << Key << " = " << Value << '\n';
}
