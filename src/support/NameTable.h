//===----------------------------------------------------------------------===//
///
/// \file
/// Interned identifier names. A Name is a cheap value type (a pointer into
/// the table) with O(1) equality, a stable uint32_t ordinal for
/// deterministic ordering and for indexing flat side tables (scope stacks,
/// prim-op tables), and the original text.
///
/// The NameTable itself is an open-addressed hash table (one contiguous
/// slot array, linear probing, cached 32-bit hashes for cheap rejects)
/// over entries whose header and character data live back-to-back in a
/// bump arena. Compared to the previous std::unordered_map-of-pointers
/// interner this does no per-name node allocation, probes cache-adjacent
/// slots, and keeps each name's header and text on the same cache line —
/// the lexer consults this table once per identifier token.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_NAMETABLE_H
#define MPC_SUPPORT_NAMETABLE_H

#include "support/Arena.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mpc {

class NameTable;

namespace detail {
/// Header of one interned name; the character data follows immediately.
struct NameEntry {
  uint32_t Length;
  uint32_t Ordinal;

  const char *chars() const {
    return reinterpret_cast<const char *>(this + 1);
  }
  std::string_view view() const {
    return std::string_view(chars(), Length);
  }
};
} // namespace detail

/// An interned string; trivially copyable, compares by identity.
class Name {
public:
  Name() : Entry(nullptr) {}

  /// The empty/invalid name.
  bool isEmpty() const { return Entry == nullptr; }
  explicit operator bool() const { return Entry != nullptr; }

  std::string_view text() const {
    if (!Entry)
      return std::string_view();
    return Entry->view();
  }
  std::string str() const { return std::string(text()); }

  /// Stable ordinal within the owning table (deterministic sort key;
  /// dense from 1, so flat tables may index by it directly).
  uint32_t ordinal() const { return Entry ? Entry->Ordinal : 0; }

  bool operator==(const Name &O) const { return Entry == O.Entry; }
  bool operator!=(const Name &O) const { return Entry != O.Entry; }
  bool operator<(const Name &O) const { return ordinal() < O.ordinal(); }

private:
  friend class NameTable;
  friend struct NameHash;
  explicit Name(const detail::NameEntry *E) : Entry(E) {}
  const detail::NameEntry *Entry;
};

struct NameHash {
  size_t operator()(const Name &N) const {
    return std::hash<const void *>()(N.Entry);
  }
};

/// Owns interned strings; all Names it returns stay valid for its lifetime.
class NameTable {
public:
  NameTable() = default;
  NameTable(const NameTable &) = delete;
  NameTable &operator=(const NameTable &) = delete;

  /// Interns \p Text, returning the canonical Name for it.
  Name intern(std::string_view Text);

  /// Interns "<Base>$<N>" — handy for synthesizing fresh names.
  Name internSuffixed(std::string_view Base, uint64_t N);

  /// Number of distinct names interned.
  size_t size() const { return Num; }

  /// Bytes of name storage (entry headers plus character data).
  uint64_t poolBytes() const { return Storage.bytesUsed(); }

  /// Empties the table for warm reuse: every Name handed out becomes
  /// invalid, ordinals restart at 1 (so a reset table re-interns the
  /// same intern sequence to the same ordinals — the determinism the
  /// compile service's context recycling relies on), and the slot array
  /// and arena storage keep their capacity. O(slot capacity).
  void reset() {
    Slots.assign(Slots.size(), Slot());
    Storage.reset();
    Num = 0;
    NextOrdinal = 1;
  }

private:
  struct Slot {
    const detail::NameEntry *Entry = nullptr;
    uint32_t Hash = 0;
  };

  static uint32_t hashText(std::string_view Text);
  void grow();

  Arena Storage;
  std::vector<Slot> Slots;
  size_t Num = 0;
  uint32_t NextOrdinal = 1;
};

} // namespace mpc

#endif // MPC_SUPPORT_NAMETABLE_H
