//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters in the spirit of LLVM's Statistic class. Phases bump
/// counters (nodes visited, trees rebuilt, hooks executed...) and benchmarks
/// read them back to explain measured effects.
///
/// The compile service adds a two-level scheme: each worker thread owns a
/// StatsSheaf (a locally buffered counter block) and the service merges
/// the sheaves into one StatsRegistry when results are drained, so the
/// per-job hot path never contends on a shared counter map.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_STATISTICS_H
#define MPC_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace mpc {

class OStream;

/// A bag of named uint64 counters. Not thread-safe; within one compiler
/// run counters are bumped by a single thread (per-worker accumulation
/// goes through StatsSheaf below).
class StatsRegistry {
public:
  uint64_t &counter(const std::string &Key) { return Counters[Key]; }

  void add(const std::string &Key, uint64_t Delta) { Counters[Key] += Delta; }

  uint64_t get(const std::string &Key) const {
    auto It = Counters.find(Key);
    return It == Counters.end() ? 0 : It->second;
  }

  void clear() { Counters.clear(); }

  /// Adds every counter of \p Other into this registry.
  void merge(const StatsRegistry &Other) {
    for (const auto &[Key, Value] : Other.Counters)
      Counters[Key] += Value;
  }

  /// Prints "key = value" lines sorted by key.
  void print(OStream &OS) const;

  /// Like print, restricted to counters whose key starts with \p Prefix
  /// (e.g. "fusion." for the fused-traversal counters).
  void printPrefixed(OStream &OS, const std::string &Prefix) const;

  const std::map<std::string, uint64_t> &all() const { return Counters; }

private:
  std::map<std::string, uint64_t> Counters;
};

/// Per-worker counter block of the compile service. A worker bumps its
/// own sheaf without contending with other workers (the tiny mutex is
/// only ever shared with the drainer, which runs once per drain, not per
/// counter); drainInto() moves the accumulated deltas into the service's
/// registry and empties the sheaf so repeated drains never double-count.
class StatsSheaf {
public:
  void add(const std::string &Key, uint64_t Delta) {
    std::lock_guard<std::mutex> Lock(M);
    Local.add(Key, Delta);
  }

  /// Adds every counter of \p Registry (e.g. a finished job's context
  /// stats) into the sheaf.
  void merge(const StatsRegistry &Registry) {
    std::lock_guard<std::mutex> Lock(M);
    Local.merge(Registry);
  }

  /// Moves the buffered deltas into \p Out and resets the sheaf.
  void drainInto(StatsRegistry &Out) {
    std::lock_guard<std::mutex> Lock(M);
    Out.merge(Local);
    Local.clear();
  }

private:
  mutable std::mutex M;
  StatsRegistry Local;
};

} // namespace mpc

#endif // MPC_SUPPORT_STATISTICS_H
