//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters in the spirit of LLVM's Statistic class. Phases bump
/// counters (nodes visited, trees rebuilt, hooks executed...) and benchmarks
/// read them back to explain measured effects.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_STATISTICS_H
#define MPC_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <string>

namespace mpc {

class OStream;

/// A bag of named uint64 counters. Not thread-safe; the compiler is
/// single-threaded like the paper's measurement configuration.
class StatsRegistry {
public:
  uint64_t &counter(const std::string &Key) { return Counters[Key]; }

  void add(const std::string &Key, uint64_t Delta) { Counters[Key] += Delta; }

  uint64_t get(const std::string &Key) const {
    auto It = Counters.find(Key);
    return It == Counters.end() ? 0 : It->second;
  }

  void clear() { Counters.clear(); }

  /// Prints "key = value" lines sorted by key.
  void print(OStream &OS) const;

  /// Like print, restricted to counters whose key starts with \p Prefix
  /// (e.g. "fusion." for the fused-traversal counters).
  void printPrefixed(OStream &OS, const std::string &Prefix) const;

  const std::map<std::string, uint64_t> &all() const { return Counters; }

private:
  std::map<std::string, uint64_t> Counters;
};

} // namespace mpc

#endif // MPC_SUPPORT_STATISTICS_H
