#include "support/FaultInjector.h"

#include <cassert>
#include <chrono>
#include <thread>

using namespace mpc;

std::atomic<FaultInjector *> mpc::detail::GFaultInjector{nullptr};

namespace {

/// SplitMix64 finalizer — the same mixer the workload Rng and the
/// fingerprint module use, applied here to (seed, site, arrival index).
uint64_t mix(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

} // namespace

bool FaultInjector::decide(FaultSite Site, double Rate) {
  if (Rate <= 0)
    return false;
  uint64_t N = Arrivals[static_cast<unsigned>(Site)].fetch_add(
      1, std::memory_order_relaxed);
  uint64_t H = mix(Cfg.Seed ^
                   (uint64_t(static_cast<unsigned>(Site)) << 56) ^ N);
  // Top 53 bits -> uniform double in [0, 1).
  double U = double(H >> 11) * 0x1.0p-53;
  return U < Rate;
}

void FaultInjector::readDelayPoint() {
  if (decide(FaultSite::NetReadDelay, Cfg.NetReadDelayRate)) {
    ++NumReadDelays;
    std::this_thread::sleep_for(
        std::chrono::microseconds(Cfg.NetReadDelayMicros));
  }
}

void FaultInjector::stagePoint(FaultSite Site) {
  assert(Site == FaultSite::FrontendEntry || Site == FaultSite::PhaseEntry);
  if (Cfg.StageHook)
    Cfg.StageHook(Site);
  if (decide(Site, Cfg.StageDelayRate)) {
    ++NumStageDelays;
    std::this_thread::sleep_for(
        std::chrono::microseconds(Cfg.StageDelayMicros));
  }
  // Each decision consumes its own arrival index, so the delay and throw
  // draws are independent: a delayed arrival may also throw.
  if (decide(Site, Cfg.StageThrowRate)) {
    ++NumStageThrows;
    throw InjectedFault(Site == FaultSite::PhaseEntry
                            ? "injected fault at pipeline phase entry"
                            : "injected fault at frontend entry");
  }
}

ScopedFaultInjector::ScopedFaultInjector(FaultConfig Config)
    : FI(std::move(Config)) {
  FaultInjector *Expected = nullptr;
  bool Installed = detail::GFaultInjector.compare_exchange_strong(
      Expected, &FI, std::memory_order_release);
  assert(Installed && "a FaultInjector is already installed");
  (void)Installed;
}

ScopedFaultInjector::~ScopedFaultInjector() {
  detail::GFaultInjector.store(nullptr, std::memory_order_release);
}
