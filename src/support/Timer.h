//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timing helpers used by the stage-time benchmarks (Fig 4/9).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_TIMER_H
#define MPC_SUPPORT_TIMER_H

#include <chrono>

namespace mpc {

/// Monotonic stopwatch measuring seconds as double.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  void reset() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Accumulates time across multiple start/stop windows.
class StopWatch {
public:
  void start() { T.reset(); }
  void stop() { Total += T.elapsedSeconds(); }
  double seconds() const { return Total; }
  void clear() { Total = 0; }

private:
  Timer T;
  double Total = 0;
};

} // namespace mpc

#endif // MPC_SUPPORT_TIMER_H
