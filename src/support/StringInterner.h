//===----------------------------------------------------------------------===//
///
/// \file
/// Interned identifier names. A Name is a cheap value type (a pointer into
/// the interner) with O(1) equality, a stable ordinal for deterministic
/// ordering, and the original text.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_STRINGINTERNER_H
#define MPC_SUPPORT_STRINGINTERNER_H

#include "support/Arena.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mpc {

class StringInterner;

namespace detail {
struct NameEntry {
  const char *Text;
  uint32_t Length;
  uint32_t Ordinal;
};
} // namespace detail

/// An interned string; trivially copyable, compares by identity.
class Name {
public:
  Name() : Entry(nullptr) {}

  /// The empty/invalid name.
  bool isEmpty() const { return Entry == nullptr; }
  explicit operator bool() const { return Entry != nullptr; }

  std::string_view text() const {
    if (!Entry)
      return std::string_view();
    return std::string_view(Entry->Text, Entry->Length);
  }
  std::string str() const { return std::string(text()); }

  /// Stable ordinal within the owning interner (deterministic sort key).
  uint32_t ordinal() const { return Entry ? Entry->Ordinal : 0; }

  bool operator==(const Name &O) const { return Entry == O.Entry; }
  bool operator!=(const Name &O) const { return Entry != O.Entry; }
  bool operator<(const Name &O) const { return ordinal() < O.ordinal(); }

private:
  friend class StringInterner;
  friend struct NameHash;
  explicit Name(const detail::NameEntry *E) : Entry(E) {}
  const detail::NameEntry *Entry;
};

struct NameHash {
  size_t operator()(const Name &N) const {
    return std::hash<const void *>()(N.Entry);
  }
};

/// Owns interned strings; all Names it returns stay valid for its lifetime.
class StringInterner {
public:
  StringInterner() = default;
  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;

  /// Interns \p Text, returning the canonical Name for it.
  Name intern(std::string_view Text);

  /// Interns "<Base>$<N>" — handy for synthesizing fresh names.
  Name internSuffixed(std::string_view Base, uint64_t N);

  size_t size() const { return Map.size(); }

private:
  Arena Storage;
  std::unordered_map<std::string_view, detail::NameEntry *> Map;
  uint32_t NextOrdinal = 1;
};

} // namespace mpc

#endif // MPC_SUPPORT_STRINGINTERNER_H
