//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation for in-flight compile jobs.
///
/// A CancelToken is armed with a soft deadline (and/or cancelled
/// explicitly from another thread) and polled at *checkpoints* — the
/// frontend's per-source loop, every pipeline phase boundary, and the
/// driver's stage boundaries. A checkpoint that observes an expired token
/// throws DeadlineExceeded; because every tree is reference-counted and
/// every intermediate holder is RAII, the unwind releases all context
/// storage, which is what makes a cancelled job's CompilerContext safely
/// recyclable (the service's reset() asserts live-bytes == 0).
///
/// Checkpoints run *between* units or phases, never inside a tree
/// traversal, so cancellation latency is bounded by one phase boundary —
/// the compile service's "a wedged job frees its worker" guarantee. The
/// one exception is the interpreter: its runtime is controlled by the
/// program under test (a guest loop runs arbitrarily long), so its
/// dispatch loop polls every 256th step as well.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_CANCELTOKEN_H
#define MPC_SUPPORT_CANCELTOKEN_H

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace mpc {

/// Thrown by a cancellation checkpoint once its token has expired. The
/// worker firewall (driver/Batch.cpp) turns it into a clean
/// DeadlineExceeded result instead of a hung worker.
class DeadlineExceeded : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Deadline + cancellation flag shared between the thread running a job
/// and anyone who wants it to stop. cancel() may race checkpoints freely;
/// armDeadline() must happen before the work starts.
class CancelToken {
public:
  using Clock = std::chrono::steady_clock;

  /// Requests cancellation (thread-safe; sticky).
  void cancel() { Cancelled.store(true, std::memory_order_relaxed); }

  /// Arms a soft deadline. Checkpoints after \p At throw. Not
  /// thread-safe: arm before handing the token to the working thread.
  void armDeadline(Clock::time_point At) {
    Deadline = At;
    HasDeadline = true;
  }

  bool expired() const {
    if (Cancelled.load(std::memory_order_relaxed))
      return true;
    return HasDeadline && Clock::now() >= Deadline;
  }

  /// The checkpoint: cheap when armed and healthy (one clock read), free
  /// to call from any stage that owns the token's context.
  void checkpoint() const {
    if (expired())
      throw DeadlineExceeded(
          Cancelled.load(std::memory_order_relaxed)
              ? "job cancelled at checkpoint"
              : "job deadline exceeded at checkpoint");
  }

private:
  std::atomic<bool> Cancelled{false};
  Clock::time_point Deadline{};
  bool HasDeadline = false;
};

} // namespace mpc

#endif // MPC_SUPPORT_CANCELTOKEN_H
