//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style custom RTTI: isa<>, cast<> and dyn_cast<> built on a classof
/// static member provided by each class in a hierarchy. The project compiles
/// without dynamic_cast; every polymorphic hierarchy (trees, types, symbols)
/// carries an explicit kind discriminator instead.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_CASTING_H
#define MPC_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace mpc {

/// Returns true if \p Val is an instance of class \p To.
/// \p To must provide `static bool classof(const From *)`.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible kind");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible kind");
  return static_cast<const To *>(Val);
}

/// Downcast that returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates a null input.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace mpc

#endif // MPC_SUPPORT_CASTING_H
