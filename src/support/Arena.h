//===----------------------------------------------------------------------===//
///
/// \file
/// Bump-pointer arena for long-lived compiler metadata (interned strings,
/// misc byte storage). Objects allocated here are never destroyed
/// individually; the arena frees all memory at once.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_ARENA_H
#define MPC_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mpc {

/// A simple bump-pointer allocator with geometrically growing slabs.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t)) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~(Align - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      growSlab(Size + Align);
      P = reinterpret_cast<uintptr_t>(Cur);
      Aligned = (P + Align - 1) & ~(Align - 1);
    }
    Cur = reinterpret_cast<char *>(Aligned + Size);
    TotalUsed += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Copies \p Size bytes into the arena and returns the stable copy.
  char *copyBytes(const char *Data, size_t Size) {
    char *Mem = static_cast<char *>(allocate(Size ? Size : 1, 1));
    for (size_t I = 0; I < Size; ++I)
      Mem[I] = Data[I];
    return Mem;
  }

  /// Total bytes handed out (excluding alignment waste).
  uint64_t bytesUsed() const { return TotalUsed; }

private:
  void growSlab(size_t AtLeast) {
    size_t Size = NextSlabSize;
    if (Size < AtLeast)
      Size = AtLeast * 2;
    NextSlabSize = NextSlabSize * 2;
    Slabs.push_back(std::make_unique<char[]>(Size));
    Cur = Slabs.back().get();
    End = Cur + Size;
  }

  std::vector<std::unique_ptr<char[]>> Slabs;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t NextSlabSize = 4096;
  uint64_t TotalUsed = 0;
};

} // namespace mpc

#endif // MPC_SUPPORT_ARENA_H
