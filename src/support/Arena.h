//===----------------------------------------------------------------------===//
///
/// \file
/// Bump-pointer arena for compiler metadata: interned name storage, the
/// per-compilation-unit syntax heap, and the hash-consed Type objects.
/// Objects allocated here are never destroyed individually; the arena
/// frees all memory at once. Callers that place non-trivially-destructible
/// objects here are responsible for running destructors themselves (the
/// frontend keeps its syntax nodes trivially destructible instead).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_ARENA_H
#define MPC_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace mpc {

/// A simple bump-pointer allocator with geometrically growing slabs.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t)) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~(Align - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      growSlab(Size + Align);
      P = reinterpret_cast<uintptr_t>(Cur);
      Aligned = (P + Align - 1) & ~(Align - 1);
    }
    Cur = reinterpret_cast<char *>(Aligned + Size);
    TotalUsed += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a \p T in the arena. The destructor is never run.
  template <typename T, typename... Args> T *make(Args &&...CtorArgs) {
    return new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(CtorArgs)...);
  }

  /// Allocates an uninitialized array of \p N objects of type \p T.
  template <typename T> T *allocateArray(size_t N) {
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Copies \p N trivially-copyable elements into the arena; returns the
  /// stable copy (null when \p N is zero — an empty span needs no bytes).
  template <typename T> T *copyArray(const T *Data, size_t N) {
    if (!N)
      return nullptr;
    T *Mem = allocateArray<T>(N);
    for (size_t I = 0; I < N; ++I)
      Mem[I] = Data[I];
    return Mem;
  }

  /// Copies \p Size bytes into the arena and returns the stable copy.
  char *copyBytes(const char *Data, size_t Size) {
    char *Mem = static_cast<char *>(allocate(Size ? Size : 1, 1));
    for (size_t I = 0; I < Size; ++I)
      Mem[I] = Data[I];
    return Mem;
  }

  /// Total bytes handed out (excluding alignment waste).
  uint64_t bytesUsed() const { return TotalUsed; }

  /// Logically empties the arena for reuse, retaining the largest slab
  /// so a warm arena serves the next compilation without re-growing from
  /// scratch (usually the newest slab, but an early oversized request
  /// can leave the largest one mid-list). All previously returned
  /// pointers are invalidated. O(number of retired slabs).
  void reset() {
    if (Slabs.empty()) {
      TotalUsed = 0;
      return;
    }
    size_t Largest = 0;
    for (size_t I = 1; I < Slabs.size(); ++I)
      if (Slabs[I].Size > Slabs[Largest].Size)
        Largest = I;
    if (Largest != 0)
      Slabs.front() = std::move(Slabs[Largest]);
    Slabs.resize(1);
    Cur = Slabs.front().Mem.get();
    End = Cur + Slabs.front().Size;
    TotalUsed = 0;
  }

private:
  void growSlab(size_t AtLeast) {
    size_t Size = NextSlabSize;
    if (Size < AtLeast)
      Size = AtLeast * 2;
    NextSlabSize = NextSlabSize * 2;
    Slabs.push_back({std::make_unique<char[]>(Size), Size});
    Cur = Slabs.back().Mem.get();
    End = Cur + Size;
  }

  struct SlabRec {
    std::unique_ptr<char[]> Mem;
    size_t Size;
  };
  std::vector<SlabRec> Slabs;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t NextSlabSize = 4096;
  uint64_t TotalUsed = 0;
};

} // namespace mpc

#endif // MPC_SUPPORT_ARENA_H
