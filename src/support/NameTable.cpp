#include "support/NameTable.h"

#include <cstdio>
#include <cstring>

using namespace mpc;

uint32_t NameTable::hashText(std::string_view Text) {
  // FNV-1a over the bytes, folded to 32 bits. Short identifier-sized
  // strings hash in a handful of cycles and the full hash is cached per
  // slot, so growth never re-reads the character data.
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return static_cast<uint32_t>(H ^ (H >> 32));
}

void NameTable::grow() {
  std::vector<Slot> Old = std::move(Slots);
  Slots.assign(Old.empty() ? 256 : Old.size() * 2, Slot());
  size_t Mask = Slots.size() - 1;
  for (const Slot &S : Old) {
    if (!S.Entry)
      continue;
    for (size_t I = S.Hash & Mask;; I = (I + 1) & Mask) {
      if (!Slots[I].Entry) {
        Slots[I] = S;
        break;
      }
    }
  }
}

Name NameTable::intern(std::string_view Text) {
  if (Slots.empty() || Num * 4 >= Slots.size() * 3)
    grow();
  uint32_t H = hashText(Text);
  size_t Mask = Slots.size() - 1;
  size_t I = H & Mask;
  for (;; I = (I + 1) & Mask) {
    Slot &S = Slots[I];
    if (!S.Entry)
      break;
    if (S.Hash == H && S.Entry->view() == Text)
      return Name(S.Entry);
  }

  // Entry header and character data back-to-back in the arena.
  auto *Entry = static_cast<detail::NameEntry *>(Storage.allocate(
      sizeof(detail::NameEntry) + Text.size(), alignof(detail::NameEntry)));
  Entry->Length = static_cast<uint32_t>(Text.size());
  Entry->Ordinal = NextOrdinal++;
  if (!Text.empty())
    std::memcpy(const_cast<char *>(Entry->chars()), Text.data(), Text.size());
  Slots[I].Entry = Entry;
  Slots[I].Hash = H;
  ++Num;
  return Name(Entry);
}

Name NameTable::internSuffixed(std::string_view Base, uint64_t N) {
  char Buf[160];
  // A uint64 needs at most 20 digits; fall back to heap assembly for
  // oversized bases rather than truncating (truncation would drop the
  // distinguishing counter and alias distinct fresh names).
  if (Base.size() + 22 <= sizeof(Buf)) {
    int Len = std::snprintf(Buf, sizeof(Buf), "%.*s$%llu",
                            static_cast<int>(Base.size()), Base.data(),
                            static_cast<unsigned long long>(N));
    return intern(std::string_view(Buf, static_cast<size_t>(Len)));
  }
  std::string Long(Base);
  Long += '$';
  Long += std::to_string(N);
  return intern(Long);
}
