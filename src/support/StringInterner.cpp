#include "support/StringInterner.h"

#include <cstdio>

using namespace mpc;

Name StringInterner::intern(std::string_view Text) {
  auto It = Map.find(Text);
  if (It != Map.end())
    return Name(It->second);

  char *Copy = Storage.copyBytes(Text.data(), Text.size());
  auto *Entry = static_cast<detail::NameEntry *>(
      Storage.allocate(sizeof(detail::NameEntry), alignof(detail::NameEntry)));
  Entry->Text = Copy;
  Entry->Length = static_cast<uint32_t>(Text.size());
  Entry->Ordinal = NextOrdinal++;
  Map.emplace(std::string_view(Copy, Text.size()), Entry);
  return Name(Entry);
}

Name StringInterner::internSuffixed(std::string_view Base, uint64_t N) {
  char Buf[160];
  int Len = std::snprintf(Buf, sizeof(Buf), "%.*s$%llu",
                          static_cast<int>(Base.size()), Base.data(),
                          static_cast<unsigned long long>(N));
  return intern(std::string_view(Buf, static_cast<size_t>(Len)));
}
