//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny raw_ostream-style output abstraction. Library code never includes
/// <iostream> (which injects static constructors); it writes through OStream
/// instead. FileOStream wraps a C FILE*, StringOStream appends to a string.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_OSTREAM_H
#define MPC_SUPPORT_OSTREAM_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace mpc {

/// Lightweight formatted output stream.
class OStream {
public:
  virtual ~OStream();

  /// Writes \p Size raw bytes.
  virtual void write(const char *Data, size_t Size) = 0;

  OStream &operator<<(std::string_view S) {
    write(S.data(), S.size());
    return *this;
  }
  OStream &operator<<(const char *S) { return *this << std::string_view(S); }
  OStream &operator<<(const std::string &S) {
    return *this << std::string_view(S);
  }
  OStream &operator<<(char C) {
    write(&C, 1);
    return *this;
  }
  OStream &operator<<(bool B) { return *this << (B ? "true" : "false"); }
  OStream &operator<<(int64_t N);
  OStream &operator<<(uint64_t N);
  OStream &operator<<(int N) { return *this << static_cast<int64_t>(N); }
  OStream &operator<<(unsigned N) { return *this << static_cast<uint64_t>(N); }
  OStream &operator<<(long long N) { return *this << static_cast<int64_t>(N); }
  OStream &operator<<(unsigned long long N) {
    return *this << static_cast<uint64_t>(N);
  }
  OStream &operator<<(double D);
  OStream &operator<<(const void *P);

  /// Writes \p N spaces (indentation helper).
  OStream &indent(unsigned N);
};

/// Stream over a C FILE handle; does not own the handle.
class FileOStream : public OStream {
public:
  explicit FileOStream(std::FILE *F) : File(F) {}
  void write(const char *Data, size_t Size) override;

private:
  std::FILE *File;
};

/// Stream that appends to a std::string buffer.
class StringOStream : public OStream {
public:
  StringOStream() = default;
  void write(const char *Data, size_t Size) override {
    Buffer.append(Data, Size);
  }
  const std::string &str() const { return Buffer; }
  void clear() { Buffer.clear(); }

private:
  std::string Buffer;
};

/// Stream that discards everything written to it.
class NullOStream : public OStream {
public:
  void write(const char *, size_t) override {}
};

/// Standard output stream (function-local static, no global ctor).
OStream &outs();
/// Standard error stream.
OStream &errs();

} // namespace mpc

#endif // MPC_SUPPORT_OSTREAM_H
