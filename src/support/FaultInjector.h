//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seeded fault injection for the compile service's
/// robustness tests.
///
/// Production infrastructure is only as trustworthy as its failure paths,
/// and failure paths are exactly the code that benign workloads never
/// execute. This file plants *fault points* at the spots the service's
/// fault-containment story depends on:
///
///   - SlabPageAlloc    SlabAllocator::takePage — acquiring a 64 KiB slab
///                      page fails with std::bad_alloc;
///   - SlabFallbackAlloc the oversize/system path of
///                      SlabAllocator::allocate fails with std::bad_alloc;
///   - PagePoolTake     PagePool::take reports an empty pool even when
///                      pages are available (exercises the fresh-mapping
///                      path under page-sharing);
///   - FrontendEntry    the per-source frontend loop;
///   - PhaseEntry       the transformation pipeline, once per phase group
///                      per unit;
///   - NetTornWrite     src/net's sendAll — the frame is cut short
///                      mid-write and the connection reports failure (the
///                      peer observes a truncated frame followed by EOF);
///   - NetReadDelay     src/net's recvSome — the read is delayed by a
///                      configured amount (how tests build slow clients
///                      without depending on machine speed);
///   - NetDisconnect    chunk boundaries in the server's connection
///                      reader — the connection is dropped abruptly,
///                      orphaning any in-flight job (disconnect-mid-job;
///                      the client sees an unannounced close and must
///                      reconnect and retry).
///
/// The stage sites (FrontendEntry/PhaseEntry) can throw an InjectedFault
/// or sleep for a configured delay — the latter is how tests make a job
/// slow enough to blow a deadline without depending on machine speed.
///
/// Decisions are *deterministic*: the N-th arrival at a site fires iff a
/// hash of (seed, site, N) falls under the site's configured rate, so a
/// failing run replays exactly from its seed (with one worker the whole
/// schedule is reproducible; with many, the set of firing arrivals is
/// fixed even though which job absorbs each arrival depends on
/// scheduling). All state is atomic — fault points race freely.
///
/// Cost when disabled: a single relaxed atomic load of a null pointer per
/// fault point — no injector object exists unless a test installs one
/// (see ScopedFaultInjector), so production runs pay one predictable
/// branch.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_SUPPORT_FAULTINJECTOR_H
#define MPC_SUPPORT_FAULTINJECTOR_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>

namespace mpc {

/// Thrown by a firing stage fault point. The compile service's worker
/// firewall turns it (like any other exception) into a Faulted result.
class InjectedFault : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Every fault point in the codebase. Each site keeps its own arrival
/// counter, so rates are independent.
enum class FaultSite : unsigned {
  SlabPageAlloc,
  SlabFallbackAlloc,
  PagePoolTake,
  FrontendEntry,
  PhaseEntry,
  NetTornWrite,
  NetReadDelay,
  NetDisconnect,
};
inline constexpr unsigned NumFaultSites = 8;

/// What to inject, and how often. Rates are per-arrival probabilities in
/// [0, 1]; 0 disables the site.
struct FaultConfig {
  /// Seed of the deterministic decision hash.
  uint64_t Seed = 1;
  /// SlabPageAlloc: probability a slab-page acquisition throws bad_alloc.
  double PageAllocFailRate = 0;
  /// SlabFallbackAlloc: probability an oversize/system-path allocation
  /// throws bad_alloc.
  double FallbackAllocFailRate = 0;
  /// PagePoolTake: probability a shared-pool take reports "empty".
  double PoolTakeMissRate = 0;
  /// FrontendEntry/PhaseEntry: probability of throwing InjectedFault.
  double StageThrowRate = 0;
  /// FrontendEntry/PhaseEntry: probability of sleeping StageDelayMicros.
  double StageDelayRate = 0;
  unsigned StageDelayMicros = 0;
  /// Test hook run at every FrontendEntry/PhaseEntry arrival (before the
  /// throw/delay decisions). Lets a test gate a worker on a condition
  /// variable to build deterministic queue states. Must be thread-safe.
  std::function<void(FaultSite)> StageHook;
  /// NetTornWrite: probability one sendAll() cuts the frame short and
  /// fails (the peer sees a truncated frame, then EOF).
  double TornWriteRate = 0;
  /// NetReadDelay: probability one recvSome() sleeps NetReadDelayMicros
  /// before reading (deterministic slow-client construction).
  double NetReadDelayRate = 0;
  unsigned NetReadDelayMicros = 0;
  /// NetDisconnect: probability a chunk boundary in the server's
  /// connection reader drops the connection abruptly, orphaning any
  /// in-flight job.
  double NetDisconnectRate = 0;
};

/// The injector: deterministic per-site decisions plus counters of what
/// actually fired (tests assert against these, not against luck).
class FaultInjector {
public:
  explicit FaultInjector(FaultConfig Config) : Cfg(std::move(Config)) {}
  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  /// SlabAllocator::takePage fault point; true = throw bad_alloc.
  bool failPageAlloc() {
    bool Fire = decide(FaultSite::SlabPageAlloc, Cfg.PageAllocFailRate);
    if (Fire)
      ++NumPageAllocFailures;
    return Fire;
  }

  /// SlabAllocator::allocate oversize-path fault point.
  bool failFallbackAlloc() {
    bool Fire =
        decide(FaultSite::SlabFallbackAlloc, Cfg.FallbackAllocFailRate);
    if (Fire)
      ++NumFallbackFailures;
    return Fire;
  }

  /// PagePool::take fault point; true = pretend the pool is empty.
  bool missPoolTake() {
    bool Fire = decide(FaultSite::PagePoolTake, Cfg.PoolTakeMissRate);
    if (Fire)
      ++NumPoolMisses;
    return Fire;
  }

  /// Stage fault point (FrontendEntry or PhaseEntry): runs the test hook,
  /// may sleep, may throw InjectedFault. Defined in FaultInjector.cpp.
  void stagePoint(FaultSite Site);

  /// sendAll fault point; true = cut the write short and fail it.
  bool tearWrite() {
    bool Fire = decide(FaultSite::NetTornWrite, Cfg.TornWriteRate);
    if (Fire)
      ++NumTornWrites;
    return Fire;
  }

  /// recvSome fault point: may sleep NetReadDelayMicros. Defined in
  /// FaultInjector.cpp (it needs <thread>).
  void readDelayPoint();

  /// Server connection-reader fault point; true = drop the connection now.
  bool dropConnection() {
    bool Fire = decide(FaultSite::NetDisconnect, Cfg.NetDisconnectRate);
    if (Fire)
      ++NumDisconnects;
    return Fire;
  }

  /// What actually fired so far (all monotone).
  struct Stats {
    uint64_t PageAllocFailures = 0;
    uint64_t FallbackFailures = 0;
    uint64_t PoolMisses = 0;
    uint64_t StageThrows = 0;
    uint64_t StageDelays = 0;
    uint64_t TornWrites = 0;
    uint64_t ReadDelays = 0;
    uint64_t Disconnects = 0;
  };
  Stats stats() const {
    Stats S;
    S.PageAllocFailures = NumPageAllocFailures.load();
    S.FallbackFailures = NumFallbackFailures.load();
    S.PoolMisses = NumPoolMisses.load();
    S.StageThrows = NumStageThrows.load();
    S.StageDelays = NumStageDelays.load();
    S.TornWrites = NumTornWrites.load();
    S.ReadDelays = NumReadDelays.load();
    S.Disconnects = NumDisconnects.load();
    return S;
  }

  const FaultConfig &config() const { return Cfg; }

private:
  /// The N-th arrival at \p Site fires iff hash(Seed, Site, N) < Rate.
  bool decide(FaultSite Site, double Rate);

  FaultConfig Cfg;
  std::atomic<uint64_t> Arrivals[NumFaultSites] = {};
  std::atomic<uint64_t> NumPageAllocFailures{0};
  std::atomic<uint64_t> NumFallbackFailures{0};
  std::atomic<uint64_t> NumPoolMisses{0};
  std::atomic<uint64_t> NumStageThrows{0};
  std::atomic<uint64_t> NumStageDelays{0};
  std::atomic<uint64_t> NumTornWrites{0};
  std::atomic<uint64_t> NumReadDelays{0};
  std::atomic<uint64_t> NumDisconnects{0};
};

namespace detail {
/// Null in production; set only while a ScopedFaultInjector is alive.
extern std::atomic<FaultInjector *> GFaultInjector;
} // namespace detail

/// The installed injector, or null (the common case — one relaxed load).
inline FaultInjector *activeFaultInjector() {
  return detail::GFaultInjector.load(std::memory_order_acquire);
}

/// RAII installation for tests: constructs the injector, publishes it to
/// every fault point, and withdraws it on destruction. Install before
/// starting the threads whose faults you want (publication is
/// release/acquire, but a mid-run install makes arrival counts
/// schedule-dependent). Only one may be alive at a time (asserted).
class ScopedFaultInjector {
public:
  explicit ScopedFaultInjector(FaultConfig Config);
  ~ScopedFaultInjector();
  ScopedFaultInjector(const ScopedFaultInjector &) = delete;
  ScopedFaultInjector &operator=(const ScopedFaultInjector &) = delete;

  FaultInjector &injector() { return FI; }

private:
  FaultInjector FI;
};

/// Stage fault-point helper for the frontend loop and the pipeline: the
/// one-branch fast path lives here, everything else in the injector.
inline void faultStagePoint(FaultSite Site) {
  if (FaultInjector *FI = activeFaultInjector())
    FI->stagePoint(Site);
}

} // namespace mpc

#endif // MPC_SUPPORT_FAULTINJECTOR_H
