//===----------------------------------------------------------------------===//
///
/// \file
/// The content-addressed artifact cache behind the compile service.
///
/// Jobs arriving at a compile service overwhelmingly repeat — the same
/// stdlib and corpus units recompiled on every request — so the biggest
/// lever on served-traffic cost is not compiling faster but not
/// compiling at all. The cache maps a JobKey (the 128-bit content
/// fingerprint of sources + cache-relevant options + pipeline kind, see
/// driver/Batch.h) to the *replayable* slice of a finished BatchResult:
/// the rendered dump, rendered diagnostics, error flag, timings, and the
/// simulated HeapStats snapshot. Everything context-owned (trees,
/// bytecode, symbols) is deliberately absent — a hit is replayed without
/// touching a CompilerContext at all, which is what makes it cheap.
///
/// Replay is byte-exact: the stored payload is precisely what the
/// service's miss path would have produced, so a cache-hit drain is
/// byte-identical to a cache-disabled run (pinned by CompileServiceTest
/// at several worker counts). Error results replay too — diagnostics are
/// deterministic text — unless CacheConfig::CacheErrors turns that off.
///
/// Capacity is bounded by CacheConfig::MaxBytes with strict LRU
/// eviction: every insert that would exceed the cap evicts from the cold
/// end first, so bytes() <= MaxBytes holds after every operation. All
/// operations are mutex-guarded; they run once per *job*, never on a
/// per-allocation or per-node path.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_DRIVER_ARTIFACTCACHE_H
#define MPC_DRIVER_ARTIFACTCACHE_H

#include "driver/Batch.h"

#include <list>
#include <mutex>
#include <unordered_map>

namespace mpc {

/// Artifact-cache tuning knobs (a ServiceConfig member).
struct CacheConfig {
  /// Consult/install at all. Off: every job compiles (the baseline the
  /// byte-equality tests compare against).
  bool Enabled = true;
  /// Total payload budget; strict LRU eviction keeps bytes() <= MaxBytes.
  /// An artifact larger than the whole budget is never inserted.
  size_t MaxBytes = 64ull << 20;
  /// Cache jobs that failed with diagnostics. Replay is deterministic
  /// (the rendered text is stored), but services that want failures to
  /// re-run the real pipeline every time can turn this off.
  bool CacheErrors = true;
};

/// The replayable slice of a BatchResult — everything except the
/// context-owned data the service strips before recycling a shell.
struct CachedArtifact {
  CompileTimings Timings;
  std::vector<std::string> PlanErrors;
  bool HadErrors = false;
  std::string DiagText;
  std::string DumpText;
  HeapStats Heap;
};

/// Mutex-guarded JobKey -> CachedArtifact map with byte accounting and
/// capped LRU eviction.
class ArtifactCache {
public:
  explicit ArtifactCache(CacheConfig Config = CacheConfig());
  ArtifactCache(const ArtifactCache &) = delete;
  ArtifactCache &operator=(const ArtifactCache &) = delete;

  /// On hit, copies the payload into \p Out, freshens the entry's LRU
  /// position, and returns true. Counts a hit or a miss either way.
  ///
  /// Integrity check before replay: the stored payload's recomputed byte
  /// size must match the size accounted at insert time. A mismatch means
  /// the entry was corrupted in place (a stray write, a buggy in-place
  /// mutation); replaying it would serve wrong bytes silently, so the
  /// entry is dropped, IntegrityRejects counts it, and the lookup
  /// degrades to a miss — the job recompiles and reinstalls.
  bool lookup(const JobKey &Key, CachedArtifact &Out);

  /// Installs \p Artifact under \p Key (replacing any previous entry),
  /// then evicts cold entries until bytes() <= MaxBytes. Skipped — and
  /// counted as rejected — when the artifact alone exceeds MaxBytes or
  /// when it carries errors and CacheErrors is off.
  void insert(const JobKey &Key, CachedArtifact Artifact);

  /// Lifetime counters plus current occupancy (snapshot under the lock).
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
    uint64_t Evictions = 0;
    uint64_t RejectedInserts = 0;
    /// Entries dropped at lookup because their stored payload no longer
    /// matched its accounted size (see lookup()).
    uint64_t IntegrityRejects = 0;
    uint64_t Bytes = 0;   // current payload bytes held
    uint64_t Entries = 0; // current entry count
  };
  Stats stats() const;

  size_t bytes() const;
  size_t entries() const;
  const CacheConfig &config() const { return Cfg; }

  /// The byte charge an artifact contributes to MaxBytes: payload strings
  /// plus the fixed per-entry footprint.
  static size_t artifactBytes(const CachedArtifact &Artifact);

  /// Test hook: mutates \p Key's stored payload in place WITHOUT fixing
  /// the byte accounting, simulating in-cache corruption. Returns false
  /// when the key is absent. Production code never calls this.
  bool corruptEntryForTest(const JobKey &Key);

private:
  struct Entry {
    JobKey Key;
    CachedArtifact Artifact;
    size_t Bytes = 0;
  };
  using LruList = std::list<Entry>;

  void evictToCapLocked();

  mutable std::mutex M;
  CacheConfig Cfg;
  LruList Lru; // front = hottest, back = next to evict
  std::unordered_map<JobKey, LruList::iterator, JobKeyHasher> Index;
  size_t BytesHeld = 0;
  uint64_t NumHits = 0;
  uint64_t NumMisses = 0;
  uint64_t NumInsertions = 0;
  uint64_t NumEvictions = 0;
  uint64_t NumRejected = 0;
  uint64_t NumIntegrityRejects = 0;
};

} // namespace mpc

#endif // MPC_DRIVER_ARTIFACTCACHE_H
