//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-service layer: a persistent worker pool that treats the
/// compiler as a long-lived service rather than a one-shot CLI run.
///
/// Ideas on top of the old batch driver:
///
///   1. Work queue with admission control. Jobs are enqueued (including
///      while the service is running) onto a mutex+condvar queue split
///      into two priority lanes (Interactive ahead of Batch, with an
///      anti-starvation burst cap); each worker dequeues ONE job at a
///      time, so scheduling is load-balanced rather than sliced, and
///      results are delivered in enqueue order at drain(). The queue is
///      optionally bounded (ServiceConfig::MaxQueueDepth): arrivals at a
///      full queue block, are rejected, or shed the oldest queued job
///      (QueuePolicy), with refused jobs completing in the drain window
///      as JobStatus::Rejected — overload degrades answers, never the
///      in-order delivery contract.
///
///   1b. Deadlines and fault containment. A job's soft deadline
///      (BatchJob::DeadlineSec, measured from enqueue) is enforced by
///      cooperative checkpoints at phase boundaries; an expired job
///      unwinds cleanly to JobStatus::DeadlineExceeded and its context
///      stays recyclable. Any other exception is caught by the worker
///      firewall in runBatchJob: the job fails (JobStatus::Faulted), its
///      possibly-poisoned context is discarded instead of recycled
///      (service.contextsDiscarded), and the worker lives on.
///
///   2. Warm contexts. A ContextPool recycles CompilerContext shells
///      between jobs: CompilerContext::reset() restores name table, type
///      interner, symbol world, and heap in O(live) — keeping table
///      capacities, arena slabs, and (via the shared PagePool) mapped
///      slab pages — instead of reconstructing everything cold. Name
///      ordinals, symbol ids, and the allocation clock restart exactly as
///      in a cold context, so a warm run's output is byte-identical to a
///      cold run's (pinned by CompileServiceTest).
///
///   3. Per-worker stats sheaves. Workers record their counters
///      (jobs completed, contexts reused, pages obtained from the shared
///      pool, busy time) in private StatsSheaf blocks; drain() merges the
///      sheaves into the service's StatsRegistry and derives
///      service.workerUtilization — no shared counter is touched on the
///      per-job path.
///
///   4. Content-addressed artifact cache. Each dequeued job derives its
///      JobKey (hash of sources + cache-relevant options + pipeline
///      kind, see driver/Batch.h) and consults the ArtifactCache first:
///      a hit replays the stored result into the drain window without
///      touching a context at all; a miss compiles and installs the
///      replayable payload. Replay is byte-identical to a cache-disabled
///      run (pinned by CompileServiceTest), counters surface as
///      service.cacheHits/cacheMisses/cacheBytes/cacheEvictions, and
///      capacity is LRU-bounded by CacheConfig::MaxBytes. KeepContexts
///      mode forces the cache off — a replayed hit has no context to
///      hand to the caller.
///
/// Context ownership has two modes. KeepContexts=true (what compileBatch
/// uses) hands each result its context, exactly like the historical
/// driver — contexts are then necessarily cold and unpooled, and no
/// shared page pool is attached (the pool must not outlive into caller-
/// owned contexts). KeepContexts=false is the service mode: the worker
/// snapshots everything the caller may want (dumps, heap stats,
/// diagnostics), strips the output of context-owned data, and returns
/// the shell to the pool for the next job.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_DRIVER_COMPILESERVICE_H
#define MPC_DRIVER_COMPILESERVICE_H

#include "driver/ArtifactCache.h"
#include "driver/Batch.h"
#include "memsim/PagePool.h"
#include "support/Statistics.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mpc {

/// Mutex-guarded free list of reset CompilerContext shells. acquire()
/// prefers a warm shell (already reset; just adopts the job's options)
/// and falls back to constructing one; recycle() resets the shell and
/// returns it. Every context the pool creates is attached to \p Pages
/// when non-null, so slab pages flow between shells through the shared
/// PagePool.
class ContextPool {
public:
  explicit ContextPool(PagePool *Pages = nullptr) : Pages(Pages) {}
  ContextPool(const ContextPool &) = delete;
  ContextPool &operator=(const ContextPool &) = delete;

  /// A context configured with \p Opts; \p Reused reports whether it is
  /// a recycled warm shell.
  std::unique_ptr<CompilerContext> acquire(const CompilerOptions &Opts,
                                           bool &Reused);

  /// Resets \p Comp (releasing its pages into the shared pool) and parks
  /// the shell for the next acquire. Precondition: nothing references
  /// the context's trees anymore.
  void recycle(std::unique_ptr<CompilerContext> Comp);

  /// Warm shells currently parked.
  size_t size() const;

private:
  mutable std::mutex M;
  std::vector<std::unique_ptr<CompilerContext>> Free;
  PagePool *Pages;
};

/// What the service does when a job arrives at a full queue
/// (ServiceConfig::MaxQueueDepth).
enum class QueuePolicy : uint8_t {
  /// tryEnqueue() blocks until a worker frees a slot (or the service
  /// stops). The closed-loop default: producers self-throttle.
  Block,
  /// The arriving job is refused: it still gets an id and completes
  /// immediately in the drain window with JobStatus::Rejected.
  RejectNewest,
  /// The arriving job is admitted and the oldest *queued* job is shed in
  /// its place (Batch lane first — interactive work is the last to go).
  /// Shed jobs complete with JobStatus::Rejected in the drain window, so
  /// in-order delivery is preserved under overload.
  ShedOldest,
};

/// Sentinel id returned by enqueue()/tryEnqueue() after stop(): the job
/// was not admitted and owns no slot in the drain window.
inline constexpr uint64_t InvalidJobId = ~uint64_t(0);

/// What admission control decided about one tryEnqueue() call.
struct AdmitResult {
  uint64_t Id = InvalidJobId;
  /// False: the job was refused (queue full under RejectNewest, or the
  /// service is stopped). When Id != InvalidJobId the refusal still
  /// delivers a Rejected result in the drain window.
  bool Accepted = false;
  /// Queued jobs this admission displaced (ShedOldest only).
  uint64_t JobsShed = 0;
};

/// Service tuning knobs.
struct ServiceConfig {
  /// Worker threads; 0 = hardware concurrency (min 1).
  unsigned Threads = 0;
  /// Admission bound: queued-but-not-running jobs the service holds
  /// before Policy kicks in. 0 = unbounded (the historical behavior).
  size_t MaxQueueDepth = 0;
  /// What to do with arrivals at a full queue.
  QueuePolicy Policy = QueuePolicy::Block;
  /// Anti-starvation cap for the priority lanes: after this many
  /// consecutive interactive dequeues while batch work waits, the next
  /// dequeue takes from the batch lane regardless.
  unsigned InteractiveBurst = 3;
  /// Recycle CompilerContext shells between jobs via the ContextPool.
  bool WarmContexts = true;
  /// Attach a shared PagePool so slab pages mapped by one job serve the
  /// next, across contexts and workers.
  bool SharePages = true;
  /// Use this pool instead of a service-owned one (e.g.
  /// &processPagePool() to share pages process-wide across services).
  PagePool *ExternalPages = nullptr;
  /// Sizing policy of the service-owned page pool (ignored when
  /// ExternalPages is set — the external pool brings its own cap).
  PagePoolConfig PagePoolCfg;
  /// Artifact-cache policy: consult-before-compile with LRU-bounded
  /// storage. Forced off in KeepContexts mode (a cache hit produces no
  /// context, which that contract requires).
  CacheConfig Cache;
  /// Results keep their contexts (the historical compileBatch contract).
  /// Forces cold, unpooled contexts with no shared pages — a context
  /// that escapes to the caller must own its storage outright.
  bool KeepContexts = false;
  /// Streaming delivery (the network server's mode): when set, every
  /// completed job — including rejected/shed ones — is handed to this
  /// callback the moment it finishes, in *completion* order, instead of
  /// being parked in the drain window. The callback runs on the
  /// completing worker's thread (or the admitting thread for refusals),
  /// never under the service lock, and must be thread-safe; it must not
  /// call back into drain(). stop() returns only after the callback has
  /// fired for every admitted job — the graceful-drain contract a server
  /// builds on. drain() still merges stats (and waits for quiescence)
  /// but returns no results in this mode. Incompatible with
  /// KeepContexts.
  std::function<void(uint64_t Id, BatchResult Result)> OnResult;
};

/// The persistent compile service.
class CompileService {
public:
  explicit CompileService(ServiceConfig Config = ServiceConfig());
  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;
  /// Equivalent to stop(): finishes already-admitted jobs, then joins.
  ~CompileService();

  /// Admission-controlled enqueue; legal at any time, from any thread.
  /// Applies MaxQueueDepth/Policy at a full queue and reports what
  /// happened. After stop() the job is refused with Id == InvalidJobId.
  AdmitResult tryEnqueue(BatchJob Job);

  /// Queues a job; legal at any time, including while workers are busy
  /// and from multiple threads. Returns the job's id (== its position in
  /// the overall enqueue order). Convenience over tryEnqueue(): a job
  /// refused by admission control still returns its id (its Rejected
  /// result arrives at drain); only after stop() does it return
  /// InvalidJobId, with no result owed.
  uint64_t enqueue(BatchJob Job);

  /// Stops the service: no further admissions, already-admitted queued
  /// jobs still run, then workers exit and are joined. Idempotent and
  /// safe to race with enqueue()/tryEnqueue() from other threads (they
  /// fail cleanly). The destructor calls this.
  void stop();

  /// Blocks until every job enqueued so far is complete and returns
  /// their results in enqueue order (starting after the previous drain's
  /// last job). Also merges the worker sheaves into stats() and refreshes
  /// service.workerUtilization. Single consumer: call from one thread at
  /// a time (enqueue() may race it freely).
  std::vector<BatchResult> drain();

  /// Jobs enqueued but not yet completed by a worker (queued + running).
  /// Monotone within a burst, 0 after a drain completes with no new
  /// enqueues — the backlog signal an open-loop load generator throttles
  /// on. Thread-safe.
  size_t pendingJobs() const;

  /// Jobs currently sitting in the admission queue (both lanes, not yet
  /// taken by a worker). Thread-safe.
  size_t queuedJobs() const;

  /// Merged service counters: service.jobsCompleted, contextsReused,
  /// pagesShared, workerUtilization (percent), the cache counters
  /// (service.cacheHits/cacheMisses/cacheBytes/cacheEvictions), the
  /// admission/robustness counters (service.jobsRejected, jobsShed,
  /// jobsDeadlineExceeded, jobsFaulted, contextsDiscarded,
  /// queueDepthPeak), plus the aggregated per-job context counters
  /// (fusion.*, heap.*, frontend.*) of recycled jobs. Stable between
  /// drain() calls.
  StatsRegistry &stats() { return Stats; }

  /// The shared page pool in effect, or null.
  PagePool *pagePool() { return Pages; }

  /// The artifact cache in effect, or null (cache disabled or
  /// KeepContexts mode).
  ArtifactCache *artifactCache() { return Cache.get(); }

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Warm context shells currently parked in the pool. At most one shell
  /// exists per worker at any instant (and discarded shells die), so this
  /// never exceeds threadCount() — the soak test's fixed point.
  size_t warmContexts() const { return Contexts.size(); }

private:
  /// One admitted-but-not-yet-running job. EnqueuedAt feeds the queue
  /// wait (reported per result and counted against the soft deadline).
  struct QueuedJob {
    uint64_t Id;
    BatchJob Job;
    std::chrono::steady_clock::time_point EnqueuedAt;
  };

  void workerMain(unsigned WorkerIdx);
  BatchResult runJob(BatchJob Job, StatsSheaf &Sheaf);
  /// Queue depth across both lanes. Caller holds M.
  size_t queueDepthLocked() const {
    return InteractiveLane.size() + BatchLane.size();
  }
  /// A refusal result pending callback delivery (OnResult mode): built
  /// under M, fired after M is released.
  struct PendingReject {
    uint64_t Id;
    BatchResult R;
  };
  /// Completes \p Id with a Rejected result without it ever reaching a
  /// worker: into the drain window, or (OnResult mode) onto \p Deferred
  /// for the caller to deliver outside the lock. Caller holds M; caller
  /// notifies DoneCv.
  void completeRejectedLocked(uint64_t Id, double QueueWaitSec,
                              const char *Why,
                              std::vector<PendingReject> &Deferred);

  ServiceConfig Cfg;
  // Destruction order matters: workers join first (declared last), then
  // the context pool drops its shells, then OwnPages frees pages the
  // shells released into it.
  std::unique_ptr<PagePool> OwnPages;
  PagePool *Pages = nullptr;
  std::unique_ptr<ArtifactCache> Cache;
  ContextPool Contexts;

  mutable std::mutex M;
  std::condition_variable QueueCv; // workers: queue non-empty or stopping
  std::condition_variable DoneCv;  // drain(): a job finished
  std::condition_variable SpaceCv; // Block-policy producers: a slot freed
  /// The admission queue, split by JobPriority. Workers prefer the
  /// interactive lane; SinceBatch enforces the InteractiveBurst cap so
  /// the batch lane cannot starve.
  std::deque<QueuedJob> InteractiveLane;
  std::deque<QueuedJob> BatchLane;
  unsigned SinceBatch = 0;     // interactive takes since the last batch take
  uint64_t DequeueCounter = 0; // BatchResult::DequeueSeq source
  /// Result slots for the undrained id window [DrainedUpTo, NextJobId):
  /// the slot is reserved by enqueue() (the window only ever grows
  /// there), a completing worker fills Done[Id - DrainedUpTo] in place,
  /// and drain() hands the completed prefix out and slides the window —
  /// so the deque stays bounded by the in-flight job count on a
  /// long-lived service and completion never grows it under the lock.
  std::deque<std::unique_ptr<BatchResult>> Done;
  uint64_t NextJobId = 0;
  uint64_t DrainedUpTo = 0;
  uint64_t CompletedJobs = 0;
  bool Stopping = false;
  // Admission counters (under M); published as gauges at drain().
  uint64_t JobsRejected = 0;
  uint64_t JobsShed = 0;
  uint64_t QueueDepthPeak = 0;

  std::vector<std::unique_ptr<StatsSheaf>> Sheaves; // one per worker
  StatsRegistry Stats;
  std::chrono::steady_clock::time_point StartedAt;
  std::mutex JoinM; // serializes stop()'s join phase (idempotent stop)
  std::vector<std::thread> Workers;
};

} // namespace mpc

#endif // MPC_DRIVER_COMPILESERVICE_H
