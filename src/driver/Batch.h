//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel batch compilation: many independent compiler runs sharing a
/// worker pool. This is the paper's evaluation setting ("batch compilation
/// in a big project", §5.2) and a first step toward its §9 future work on
/// parallel compilation — compiler *instances* are embarrassingly
/// parallel because every run owns its CompilerContext (trees, symbols,
/// interner), so no compiler state is shared between workers.
///
/// compileBatch() is nowadays a thin convenience over the CompileService
/// (see CompileService.h): it spins up a service in cold-context,
/// keep-context mode, enqueues every job, and drains — which preserves
/// the historical contract exactly (isolated contexts, results in job
/// order, bit-identical to a serial run).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_DRIVER_BATCH_H
#define MPC_DRIVER_BATCH_H

#include "driver/Driver.h"
#include "support/Fingerprint.h"

#include <memory>

namespace mpc {

/// One independent compile job.
struct BatchJob {
  std::vector<SourceInput> Sources;
  PipelineKind Kind = PipelineKind::StandardFused;
  /// Options applied to the job's context (CheckTrees etc.). The fusion
  /// and copier flags are still derived from \p Kind.
  CompilerOptions Options;
  /// Render a typed tree dump of every lowered unit into
  /// BatchResult::DumpText. This is how results stay comparable when the
  /// service recycles contexts (the trees themselves die with the shell).
  bool WantDump = false;
};

/// Content-addressed identity of a BatchJob: everything that determines
/// the job's observable output (sources in order, cache-relevant options,
/// pipeline kind, dump request) folded into one 128-bit fingerprint. Two
/// jobs with equal keys produce byte-identical results, so the compile
/// service's ArtifactCache can replay one for the other.
struct JobKey {
  Fingerprint FP;

  bool operator==(const JobKey &O) const { return FP == O.FP; }
  bool operator!=(const JobKey &O) const { return FP != O.FP; }
  std::string hex() const { return FP.hex(); }
};

/// Hash adaptor for keying unordered containers by JobKey — the key is
/// already a high-quality hash, so one lane is the bucket index.
struct JobKeyHasher {
  size_t operator()(const JobKey &K) const {
    return static_cast<size_t>(K.FP.Lo);
  }
};

/// Content fingerprint of one source input (name and text, each
/// length-folded, so renames and edits both change it).
Fingerprint fingerprintSource(const SourceInput &Source);

/// Derives the job's content-addressed key. See Batch.cpp for the
/// CompilerOptions audit: every field is either mixed into the key or
/// explicitly listed as cache-irrelevant, with a sizeof tripwire that
/// fails the build when a new field is added unaudited.
JobKey jobKeyFor(const BatchJob &Job);

/// The outcome of one job. The context is returned alongside the output
/// because the lowered trees it contains live in the context's heap —
/// except when the compile service recycles contexts, in which case
/// Comp is null and Out carries no context-owned data (see
/// ServiceConfig::KeepContexts).
struct BatchResult {
  std::unique_ptr<CompilerContext> Comp;
  CompileOutput Out;
  bool HadErrors = false;
  std::string DiagText; // rendered diagnostics when HadErrors
  std::string DumpText; // typed tree dumps when BatchJob::WantDump
  /// Simulated-heap statistics snapshot taken right after the compile
  /// (before any teardown), so warm/cold and serial/parallel runs are
  /// comparable field by field.
  HeapStats Heap;
};

/// Compiles one job in \p Comp, snapshotting diagnostics, heap stats,
/// and (when requested) tree dumps into the result. The shared per-job
/// core of compileBatch's serial path and the CompileService workers.
BatchResult runBatchJob(BatchJob Job, std::unique_ptr<CompilerContext> Comp);

/// Compiles all \p Jobs using up to \p Threads workers (0 = hardware
/// concurrency). Results are returned in job order regardless of worker
/// scheduling; each result is produced by an isolated CompilerContext, so
/// outputs are bit-identical to a serial run. With one thread (or one
/// job) the compile runs inline on the calling thread, as it always has.
std::vector<BatchResult> compileBatch(std::vector<BatchJob> Jobs,
                                      unsigned Threads = 0);

} // namespace mpc

#endif // MPC_DRIVER_BATCH_H
