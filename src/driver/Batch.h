//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel batch compilation: many independent compiler runs sharing a
/// worker pool. This is the paper's evaluation setting ("batch compilation
/// in a big project", §5.2) and a first step toward its §9 future work on
/// parallel compilation — compiler *instances* are embarrassingly
/// parallel because every run owns its CompilerContext (trees, symbols,
/// interner), so no compiler state is shared between workers.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_DRIVER_BATCH_H
#define MPC_DRIVER_BATCH_H

#include "driver/Driver.h"

#include <memory>

namespace mpc {

/// One independent compile job.
struct BatchJob {
  std::vector<SourceInput> Sources;
  PipelineKind Kind = PipelineKind::StandardFused;
  /// Options applied to the job's context (CheckTrees etc.). The fusion
  /// and copier flags are still derived from \p Kind.
  CompilerOptions Options;
};

/// The outcome of one job. The context is returned alongside the output
/// because the lowered trees it contains live in the context's heap.
struct BatchResult {
  std::unique_ptr<CompilerContext> Comp;
  CompileOutput Out;
  bool HadErrors = false;
  std::string DiagText; // rendered diagnostics when HadErrors
};

/// Compiles all \p Jobs using up to \p Threads workers (0 = hardware
/// concurrency). Results are returned in job order regardless of worker
/// scheduling; each result is produced by an isolated CompilerContext, so
/// outputs are bit-identical to a serial run.
std::vector<BatchResult> compileBatch(std::vector<BatchJob> Jobs,
                                      unsigned Threads = 0);

} // namespace mpc

#endif // MPC_DRIVER_BATCH_H
