//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel batch compilation: many independent compiler runs sharing a
/// worker pool. This is the paper's evaluation setting ("batch compilation
/// in a big project", §5.2) and a first step toward its §9 future work on
/// parallel compilation — compiler *instances* are embarrassingly
/// parallel because every run owns its CompilerContext (trees, symbols,
/// interner), so no compiler state is shared between workers.
///
/// compileBatch() is nowadays a thin convenience over the CompileService
/// (see CompileService.h): it spins up a service in cold-context,
/// keep-context mode, enqueues every job, and drains — which preserves
/// the historical contract exactly (isolated contexts, results in job
/// order, bit-identical to a serial run).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_DRIVER_BATCH_H
#define MPC_DRIVER_BATCH_H

#include "driver/Driver.h"
#include "support/Fingerprint.h"

#include <memory>

namespace mpc {

/// Scheduling class of a job in the compile service's admission queue.
/// Interactive jobs (IDE requests, incremental rebuilds) jump ahead of
/// Batch jobs, subject to the anti-starvation burst cap
/// (ServiceConfig::InteractiveBurst).
enum class JobPriority : uint8_t {
  Interactive,
  Batch,
};

/// How a job's run ended. Everything except Ok also sets
/// BatchResult::HadErrors with an explanatory DiagText.
enum class JobStatus : uint8_t {
  /// Compiled (possibly with source-level diagnostics).
  Ok,
  /// Never compiled: refused or shed by the service's admission control.
  Rejected,
  /// Cancelled at a checkpoint after its soft deadline expired (or spent
  /// the whole deadline waiting in the queue). The context unwinds
  /// through RAII tree holders only, so it stays recyclable.
  DeadlineExceeded,
  /// An exception escaped the compile; the worker's firewall converted it
  /// into this failed result. The job's context is treated as poisoned —
  /// discarded by the service, never recycled.
  Faulted,
};

/// One independent compile job.
struct BatchJob {
  std::vector<SourceInput> Sources;
  PipelineKind Kind = PipelineKind::StandardFused;
  /// Options applied to the job's context (CheckTrees etc.). The fusion
  /// and copier flags are still derived from \p Kind.
  CompilerOptions Options;
  /// Render a typed tree dump of every lowered unit into
  /// BatchResult::DumpText. This is how results stay comparable when the
  /// service recycles contexts (the trees themselves die with the shell).
  bool WantDump = false;
  /// Queue lane in the compile service (ignored by plain compileBatch).
  /// Scheduling metadata only — deliberately NOT part of the JobKey, so
  /// an interactive job can replay a batch job's cached artifact.
  JobPriority Priority = JobPriority::Batch;
  /// Soft deadline in seconds, measured from enqueue (so queue wait
  /// counts against it); 0 = none. Enforced cooperatively at phase
  /// boundaries — see CompilerContext::checkpoint(). Cache-irrelevant,
  /// like Priority.
  double DeadlineSec = 0;
};

/// Content-addressed identity of a BatchJob: everything that determines
/// the job's observable output (sources in order, cache-relevant options,
/// pipeline kind, dump request) folded into one 128-bit fingerprint. Two
/// jobs with equal keys produce byte-identical results, so the compile
/// service's ArtifactCache can replay one for the other.
struct JobKey {
  Fingerprint FP;

  bool operator==(const JobKey &O) const { return FP == O.FP; }
  bool operator!=(const JobKey &O) const { return FP != O.FP; }
  std::string hex() const { return FP.hex(); }
};

/// Hash adaptor for keying unordered containers by JobKey — the key is
/// already a high-quality hash, so one lane is the bucket index.
struct JobKeyHasher {
  size_t operator()(const JobKey &K) const {
    return static_cast<size_t>(K.FP.Lo);
  }
};

/// Content fingerprint of one source input (name and text, each
/// length-folded, so renames and edits both change it).
Fingerprint fingerprintSource(const SourceInput &Source);

/// Derives the job's content-addressed key. See Batch.cpp for the
/// CompilerOptions audit: every field is either mixed into the key or
/// explicitly listed as cache-irrelevant, with a sizeof tripwire that
/// fails the build when a new field is added unaudited.
JobKey jobKeyFor(const BatchJob &Job);

/// The outcome of one job. The context is returned alongside the output
/// because the lowered trees it contains live in the context's heap —
/// except when the compile service recycles contexts, in which case
/// Comp is null and Out carries no context-owned data (see
/// ServiceConfig::KeepContexts).
struct BatchResult {
  std::unique_ptr<CompilerContext> Comp;
  CompileOutput Out;
  JobStatus Status = JobStatus::Ok;
  bool HadErrors = false;
  std::string DiagText; // rendered diagnostics when HadErrors
  std::string DumpText; // typed tree dumps when BatchJob::WantDump
  /// Simulated-heap statistics snapshot taken right after the compile
  /// (before any teardown), so warm/cold and serial/parallel runs are
  /// comparable field by field.
  HeapStats Heap;
  /// Order this job was taken off the service queue (0-based, service
  /// lifetime scope) — makes the priority-lane schedule observable to
  /// tests. Stays 0 for jobs that never reached a worker (rejected/shed).
  uint64_t DequeueSeq = 0;
};

/// Compiles one job in \p Comp, snapshotting diagnostics, heap stats,
/// and (when requested) tree dumps into the result. The shared per-job
/// core of compileBatch's serial path and the CompileService workers.
///
/// This is also the fault boundary: a DeadlineExceeded unwind (the job's
/// DeadlineSec, armed here as a stack-local CancelToken) or any other
/// exception escaping the compile is caught and folded into the result's
/// Status — the context is always returned inside the result, never lost
/// to the unwind.
BatchResult runBatchJob(BatchJob Job, std::unique_ptr<CompilerContext> Comp);

/// Compiles all \p Jobs using up to \p Threads workers (0 = hardware
/// concurrency). Results are returned in job order regardless of worker
/// scheduling; each result is produced by an isolated CompilerContext, so
/// outputs are bit-identical to a serial run. With one thread (or one
/// job) the compile runs inline on the calling thread, as it always has.
std::vector<BatchResult> compileBatch(std::vector<BatchJob> Jobs,
                                      unsigned Threads = 0);

} // namespace mpc

#endif // MPC_DRIVER_BATCH_H
