#include "driver/ArtifactCache.h"

using namespace mpc;

ArtifactCache::ArtifactCache(CacheConfig Config) : Cfg(Config) {}

size_t ArtifactCache::artifactBytes(const CachedArtifact &Artifact) {
  size_t Bytes = sizeof(Entry) + Artifact.DiagText.size() +
                 Artifact.DumpText.size();
  for (const std::string &E : Artifact.PlanErrors)
    Bytes += sizeof(std::string) + E.size();
  return Bytes;
}

bool ArtifactCache::lookup(const JobKey &Key, CachedArtifact &Out) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++NumMisses;
    return false;
  }
  // Integrity gate: the payload's recomputed size must equal the size
  // accounted when it was stored. Anything that mutated the entry in
  // place desynchronizes the two, and a payload we can't vouch for must
  // not replay — drop it and degrade to a miss (the caller recompiles).
  Entry &E = *It->second;
  if (artifactBytes(E.Artifact) != E.Bytes) {
    ++NumIntegrityRejects;
    ++NumMisses;
    BytesHeld -= E.Bytes;
    Lru.erase(It->second);
    Index.erase(It);
    return false;
  }
  ++NumHits;
  // Freshen: move the entry to the hot end of the LRU list.
  Lru.splice(Lru.begin(), Lru, It->second);
  Out = E.Artifact;
  return true;
}

bool ArtifactCache::corruptEntryForTest(const JobKey &Key) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Index.find(Key);
  if (It == Index.end())
    return false;
  // Grow the payload behind the accounting's back — exactly the
  // desynchronization the lookup-time integrity check exists to catch.
  It->second->Artifact.DumpText += "<corrupted>";
  return true;
}

void ArtifactCache::insert(const JobKey &Key, CachedArtifact Artifact) {
  size_t Bytes = artifactBytes(Artifact);
  std::lock_guard<std::mutex> Lock(M);
  if ((Artifact.HadErrors && !Cfg.CacheErrors) || Bytes > Cfg.MaxBytes) {
    ++NumRejected;
    return;
  }
  auto It = Index.find(Key);
  if (It != Index.end()) {
    // Replace in place (two racing workers compiled the same key; the
    // payloads are byte-identical by construction, so either wins).
    BytesHeld -= It->second->Bytes;
    It->second->Artifact = std::move(Artifact);
    It->second->Bytes = Bytes;
    BytesHeld += Bytes;
    Lru.splice(Lru.begin(), Lru, It->second);
  } else {
    Lru.push_front(Entry{Key, std::move(Artifact), Bytes});
    Index.emplace(Key, Lru.begin());
    BytesHeld += Bytes;
    ++NumInsertions;
  }
  evictToCapLocked();
}

void ArtifactCache::evictToCapLocked() {
  while (BytesHeld > Cfg.MaxBytes) {
    Entry &Cold = Lru.back();
    BytesHeld -= Cold.Bytes;
    Index.erase(Cold.Key);
    Lru.pop_back();
    ++NumEvictions;
  }
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  Stats S;
  S.Hits = NumHits;
  S.Misses = NumMisses;
  S.Insertions = NumInsertions;
  S.Evictions = NumEvictions;
  S.RejectedInserts = NumRejected;
  S.IntegrityRejects = NumIntegrityRejects;
  S.Bytes = BytesHeld;
  S.Entries = Lru.size();
  return S;
}

size_t ArtifactCache::bytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return BytesHeld;
}

size_t ArtifactCache::entries() const {
  std::lock_guard<std::mutex> Lock(M);
  return Lru.size();
}
