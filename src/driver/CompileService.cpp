#include "driver/CompileService.h"

#include "support/Timer.h"

#include <cassert>

using namespace mpc;

//===----------------------------------------------------------------------===//
// ContextPool
//===----------------------------------------------------------------------===//

std::unique_ptr<CompilerContext>
ContextPool::acquire(const CompilerOptions &Opts, bool &Reused) {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Free.empty()) {
      std::unique_ptr<CompilerContext> Comp = std::move(Free.back());
      Free.pop_back();
      // The shell was reset at recycle time; only the new job's options
      // need applying (legal: the heap is empty).
      Comp->adoptOptions(Opts);
      Reused = true;
      return Comp;
    }
  }
  Reused = false;
  auto Comp = std::make_unique<CompilerContext>(Opts);
  if (Pages)
    Comp->heap().setPagePool(Pages);
  return Comp;
}

void ContextPool::recycle(std::unique_ptr<CompilerContext> Comp) {
  // Reset eagerly (outside the lock): pages flow back into the shared
  // pool right away, where a concurrently running job can pick them up.
  Comp->reset();
  std::lock_guard<std::mutex> Lock(M);
  Free.push_back(std::move(Comp));
}

size_t ContextPool::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Free.size();
}

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

CompileService::CompileService(ServiceConfig Config)
    : Cfg(Config),
      OwnPages(Cfg.SharePages && !Cfg.KeepContexts && !Cfg.ExternalPages
                   ? std::make_unique<PagePool>(Cfg.PagePoolCfg)
                   : nullptr),
      // A context that escapes to the caller (KeepContexts) must own its
      // pages outright, so page sharing is service-internal only.
      Pages(Cfg.KeepContexts ? nullptr
            : Cfg.SharePages ? (Cfg.ExternalPages ? Cfg.ExternalPages
                                                  : OwnPages.get())
                             : nullptr),
      // KeepContexts forces the cache off: a replayed hit carries no
      // context, which that contract hands to the caller.
      Cache(Cfg.Cache.Enabled && !Cfg.KeepContexts
                ? std::make_unique<ArtifactCache>(Cfg.Cache)
                : nullptr),
      Contexts(Pages), StartedAt(std::chrono::steady_clock::now()) {
  // A streamed result is stripped of its context, which KeepContexts
  // promises to hand over — the two modes cannot compose.
  assert(!(Cfg.OnResult && Cfg.KeepContexts) &&
         "OnResult delivery is incompatible with KeepContexts");
  unsigned N = Cfg.Threads;
  if (N == 0) {
    N = std::thread::hardware_concurrency();
    if (N == 0)
      N = 1;
  }
  Sheaves.reserve(N);
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Sheaves.push_back(std::make_unique<StatsSheaf>());
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

CompileService::~CompileService() { stop(); }

void CompileService::stop() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  // Wake everyone: workers drain the already-admitted queue and exit;
  // Block-policy producers waiting for space fail their admission.
  QueueCv.notify_all();
  SpaceCv.notify_all();
  // The join phase is guarded separately (never under M — workers need M
  // to finish) and is idempotent: a second stop(), or the destructor
  // after an explicit stop(), finds nothing joinable.
  std::lock_guard<std::mutex> JoinLock(JoinM);
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
}

void CompileService::completeRejectedLocked(
    uint64_t Id, double QueueWaitSec, const char *Why,
    std::vector<PendingReject> &Deferred) {
  BatchResult R;
  R.Status = JobStatus::Rejected;
  R.HadErrors = true;
  R.DiagText = std::string("error: ") + Why + "\n";
  R.Out.Timings.QueueWaitSec = QueueWaitSec;
  if (Cfg.OnResult) {
    // Streaming mode: no drain-window slot exists; the caller fires the
    // callback once M is released (user code never runs under the lock).
    Deferred.push_back(PendingReject{Id, std::move(R)});
  } else {
    Done[Id - DrainedUpTo] = std::make_unique<BatchResult>(std::move(R));
  }
  ++CompletedJobs;
}

AdmitResult CompileService::tryEnqueue(BatchJob Job) {
  AdmitResult A;
  bool NotifyDone = false;
  bool Refused = false;
  std::vector<PendingReject> Deferred;
  {
    std::unique_lock<std::mutex> Lock(M);
    if (Stopping)
      return A; // refused: no id, no slot, no result owed
    if (Cfg.MaxQueueDepth != 0 && queueDepthLocked() >= Cfg.MaxQueueDepth) {
      switch (Cfg.Policy) {
      case QueuePolicy::Block:
        SpaceCv.wait(Lock, [this] {
          return Stopping || queueDepthLocked() < Cfg.MaxQueueDepth;
        });
        if (Stopping)
          return A;
        break;
      case QueuePolicy::RejectNewest: {
        // The arrival is refused but still owns a slot: its Rejected
        // result completes immediately, keeping drain() in-order with no
        // gaps in the id sequence.
        ++JobsRejected;
        A.Id = NextJobId++;
        if (!Cfg.OnResult)
          Done.emplace_back();
        completeRejectedLocked(A.Id, 0, "compile job rejected: queue full",
                               Deferred);
        NotifyDone = true;
        Refused = true;
        break;
      }
      case QueuePolicy::ShedOldest: {
        // Make room by completing the oldest queued job as Rejected —
        // batch lane first, so interactive work is the last to be shed.
        // The shed victim's slot was reserved at its own admission;
        // filling it preserves in-order delivery.
        auto Now = std::chrono::steady_clock::now();
        while (queueDepthLocked() >= Cfg.MaxQueueDepth) {
          std::deque<QueuedJob> &Lane =
              !BatchLane.empty() ? BatchLane : InteractiveLane;
          QueuedJob Victim = std::move(Lane.front());
          Lane.pop_front();
          ++JobsShed;
          ++A.JobsShed;
          completeRejectedLocked(
              Victim.Id,
              std::chrono::duration<double>(Now - Victim.EnqueuedAt).count(),
              "compile job shed: queue full, displaced by a newer job",
              Deferred);
        }
        NotifyDone = true;
        break;
      }
      }
    }
    if (!Refused) {
      A.Id = NextJobId++;
      A.Accepted = true;
      if (!Cfg.OnResult)
        Done.emplace_back(); // result slot; filled by whichever worker runs it
      std::deque<QueuedJob> &Lane =
          Job.Priority == JobPriority::Interactive ? InteractiveLane
                                                   : BatchLane;
      Lane.push_back(
          QueuedJob{A.Id, std::move(Job), std::chrono::steady_clock::now()});
      if (queueDepthLocked() > QueueDepthPeak)
        QueueDepthPeak = queueDepthLocked();
    }
  }
  // Streaming mode: deliver refusals now that M is released.
  for (PendingReject &P : Deferred)
    Cfg.OnResult(P.Id, std::move(P.R));
  if (A.Accepted)
    QueueCv.notify_one();
  if (NotifyDone)
    DoneCv.notify_all();
  return A;
}

uint64_t CompileService::enqueue(BatchJob Job) {
  return tryEnqueue(std::move(Job)).Id;
}

void CompileService::workerMain(unsigned WorkerIdx) {
  StatsSheaf &Sheaf = *Sheaves[WorkerIdx];
  while (true) {
    uint64_t Id;
    uint64_t Seq;
    double QueueWait;
    BatchJob Job;
    {
      std::unique_lock<std::mutex> Lock(M);
      QueueCv.wait(Lock, [this] {
        return Stopping || !InteractiveLane.empty() || !BatchLane.empty();
      });
      if (InteractiveLane.empty() && BatchLane.empty())
        return; // Stopping, and nothing left to do
      // One dequeue per JOB (not per slice): whichever worker frees up
      // first takes the next job, so long jobs don't starve the rest.
      // Lane choice: interactive first, except that after InteractiveBurst
      // consecutive interactive takes with batch work waiting, the batch
      // lane gets the next slot (anti-starvation).
      bool TakeBatch =
          !BatchLane.empty() &&
          (InteractiveLane.empty() || SinceBatch >= Cfg.InteractiveBurst);
      std::deque<QueuedJob> &Lane = TakeBatch ? BatchLane : InteractiveLane;
      if (TakeBatch)
        SinceBatch = 0;
      else
        ++SinceBatch;
      QueuedJob QJ = std::move(Lane.front());
      Lane.pop_front();
      Id = QJ.Id;
      Job = std::move(QJ.Job);
      Seq = DequeueCounter++;
      QueueWait = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - QJ.EnqueuedAt)
                      .count();
    }
    // A slot opened up for a Block-policy producer.
    SpaceCv.notify_one();

    std::unique_ptr<BatchResult> Result;
    double Deadline = Job.DeadlineSec;
    if (Deadline > 0 && QueueWait >= Deadline) {
      // The deadline (measured from enqueue) expired while the job sat in
      // the queue: complete it without compiling — and without consulting
      // the cache, so an expired job's status never depends on what
      // happens to be cached.
      Result = std::make_unique<BatchResult>();
      Result->Status = JobStatus::DeadlineExceeded;
      Result->HadErrors = true;
      Result->DiagText = "error: job deadline exceeded while queued\n";
      Sheaf.add("service.jobsCompleted", 1);
      Sheaf.add("service.jobsDeadlineExceeded", 1);
    } else {
      // The remaining budget is what runBatchJob arms as the in-compile
      // deadline: queue wait counts against the job's total allowance.
      if (Deadline > 0)
        Job.DeadlineSec = Deadline - QueueWait;
      Result = std::make_unique<BatchResult>(runJob(std::move(Job), Sheaf));
    }
    Result->DequeueSeq = Seq;
    // Per-request, even on a cache replay (the compile-stage timings are
    // the cached copy; the wait is this request's own).
    Result->Out.Timings.QueueWaitSec = QueueWait;
    if (Cfg.OnResult) {
      // Streaming mode: hand the result over right now, on this worker
      // thread, before counting it complete — so quiescence (drain(),
      // stop()) implies the callback has run for every admitted job.
      Cfg.OnResult(Id, std::move(*Result));
      std::lock_guard<std::mutex> Lock(M);
      ++CompletedJobs;
    } else {
      std::lock_guard<std::mutex> Lock(M);
      // A job can only be drained after completing, so its slot is still
      // inside the window even if other drains happened meanwhile. The
      // slot was reserved at enqueue time — completion fills it in place
      // and never grows the window under the lock.
      Done[Id - DrainedUpTo] = std::move(Result);
      ++CompletedJobs;
    }
    DoneCv.notify_all();
  }
}

namespace {

/// Rebuilds a service-mode BatchResult from a cached payload — exactly
/// the shape the miss path leaves after stripping context-owned data, so
/// replayed and compiled results are indistinguishable byte for byte.
BatchResult replayArtifact(CachedArtifact Artifact) {
  BatchResult R;
  R.Out.Timings = Artifact.Timings;
  R.Out.PlanErrors = std::move(Artifact.PlanErrors);
  R.HadErrors = Artifact.HadErrors;
  R.DiagText = std::move(Artifact.DiagText);
  R.DumpText = std::move(Artifact.DumpText);
  R.Heap = Artifact.Heap;
  return R;
}

/// The replayable slice of a finished (already stripped) service result.
CachedArtifact captureArtifact(const BatchResult &R) {
  CachedArtifact Artifact;
  Artifact.Timings = R.Out.Timings;
  Artifact.PlanErrors = R.Out.PlanErrors;
  Artifact.HadErrors = R.HadErrors;
  Artifact.DiagText = R.DiagText;
  Artifact.DumpText = R.DumpText;
  Artifact.Heap = R.Heap;
  return Artifact;
}

} // namespace

BatchResult CompileService::runJob(BatchJob Job, StatsSheaf &Sheaf) {
  Timer Busy;

  // Consult the artifact cache first: a hit replays the stored result
  // without touching (or even acquiring) a context.
  JobKey Key;
  if (Cache) {
    Key = jobKeyFor(Job);
    CachedArtifact Artifact;
    if (Cache->lookup(Key, Artifact)) {
      Sheaf.add("service.jobsCompleted", 1);
      Sheaf.add("service.cacheHits", 1);
      BatchResult R = replayArtifact(std::move(Artifact));
      Sheaf.add("service.busyMicros",
                static_cast<uint64_t>(Busy.elapsedSeconds() * 1e6));
      return R;
    }
    Sheaf.add("service.cacheMisses", 1);
  }

  bool Reused = false;
  std::unique_ptr<CompilerContext> Comp;
  if (Cfg.WarmContexts && !Cfg.KeepContexts) {
    Comp = Contexts.acquire(Job.Options, Reused);
  } else {
    Comp = std::make_unique<CompilerContext>(Job.Options);
    if (Pages)
      Comp->heap().setPagePool(Pages);
  }
  const SlabAllocator::Stats &Backend0 = Comp->heap().backendStats();
  uint64_t PagesFromPool0 = Backend0.PagesFromPool;
  uint64_t PagesMapped0 = Backend0.PagesMapped;
  uint64_t SystemCalls0 = Backend0.SystemCalls;

  BatchResult R = runBatchJob(std::move(Job), std::move(Comp));

  Sheaf.add("service.jobsCompleted", 1);
  if (Reused)
    Sheaf.add("service.contextsReused", 1);
  if (R.Status == JobStatus::DeadlineExceeded)
    Sheaf.add("service.jobsDeadlineExceeded", 1);
  else if (R.Status == JobStatus::Faulted)
    Sheaf.add("service.jobsFaulted", 1);
  const SlabAllocator::Stats &Backend = R.Comp->heap().backendStats();
  Sheaf.add("service.pagesShared", Backend.PagesFromPool - PagesFromPool0);
  Sheaf.add("service.pagesMapped", Backend.PagesMapped - PagesMapped0);
  Sheaf.add("service.realAllocs", Backend.SystemCalls - SystemCalls0);

  if (!Cfg.KeepContexts) {
    // Everything context-owned must die before the shell is recycled:
    // the units' trees live in the context heap, and the bytecode /
    // entry points / check failures reference its symbols.
    R.Out.Units.clear();
    R.Out.Prog = Program();
    R.Out.EntryPoints.clear();
    R.Out.CheckFailures.clear();
    // Fold the job's pipeline counters into the service aggregate (in
    // KeepContexts mode the caller owns them via the context).
    Sheaf.merge(R.Comp->stats());
    if (R.Status == JobStatus::Faulted) {
      // Fault containment: the exception's throw site is unknown (it may
      // have split an allocation from its accounting), so the shell
      // counts as poisoned. Destroying it frees its pages wholesale —
      // through the shared pool when attached — without reset()'s
      // clean-heap precondition; the pool simply builds a fresh shell
      // next time. A DeadlineExceeded unwind, by contrast, only ever
      // crosses RAII tree holders, so that shell recycles normally.
      R.Comp.reset();
      Sheaf.add("service.contextsDiscarded", 1);
    } else if (Cfg.WarmContexts) {
      Contexts.recycle(std::move(R.Comp));
    } else {
      R.Comp.reset();
    }
    // Install the stripped result for future hits — completed compiles
    // only: a rejected/cancelled/faulted result describes this request's
    // scheduling fate, not the job's content, and must never replay for
    // an equal key. (Cache implies !KeepContexts, so the payload never
    // references a context.)
    if (Cache && R.Status == JobStatus::Ok)
      Cache->insert(Key, captureArtifact(R));
  }

  Sheaf.add("service.busyMicros",
            static_cast<uint64_t>(Busy.elapsedSeconds() * 1e6));
  return R;
}

size_t CompileService::pendingJobs() const {
  std::lock_guard<std::mutex> Lock(M);
  return static_cast<size_t>(NextJobId - CompletedJobs);
}

size_t CompileService::queuedJobs() const {
  std::lock_guard<std::mutex> Lock(M);
  return queueDepthLocked();
}

std::vector<BatchResult> CompileService::drain() {
  std::vector<BatchResult> Results;
  uint64_t Target;
  uint64_t Rejected, Shed, DepthPeak;
  {
    std::unique_lock<std::mutex> Lock(M);
    Target = NextJobId;
    if (Cfg.OnResult) {
      // Streaming mode: results were handed to the callback as they
      // completed; drain() degenerates to a quiescence barrier plus the
      // stats merge below.
      DoneCv.wait(Lock, [&] { return CompletedJobs >= Target; });
      DrainedUpTo = Target;
    } else {
      // Completed slots never empty again, so a monotonic cursor checks
      // each slot once across all wakeups — O(window) for the whole wait,
      // not per notification.
      uint64_t Scanned = DrainedUpTo;
      DoneCv.wait(Lock, [&] {
        while (Scanned < Target && Done[Scanned - DrainedUpTo])
          ++Scanned;
        return Scanned >= Target;
      });
      Results.reserve(Target - DrainedUpTo);
      while (DrainedUpTo < Target) {
        Results.push_back(std::move(*Done.front()));
        Done.pop_front();
        ++DrainedUpTo;
      }
    }
    Rejected = JobsRejected;
    Shed = JobsShed;
    DepthPeak = QueueDepthPeak;
  }

  // Merge the per-worker sheaves; each drain folds only the deltas since
  // the previous one, so the registry accumulates lifetime totals.
  for (auto &Sheaf : Sheaves)
    Sheaf->drainInto(Stats);
  double WallSec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - StartedAt)
                       .count();
  double Capacity = WallSec * static_cast<double>(Workers.size());
  double BusySec = static_cast<double>(Stats.get("service.busyMicros")) / 1e6;
  Stats.counter("service.workerUtilization") =
      Capacity > 0 ? static_cast<uint64_t>(100.0 * BusySec / Capacity) : 0;
  // Occupancy gauges (not deltas): refreshed to the current value each
  // drain. Hits/misses accumulate through the sheaves above; the
  // admission counters are service-lifetime totals read under M.
  Stats.counter("service.jobsRejected") = Rejected;
  Stats.counter("service.jobsShed") = Shed;
  Stats.counter("service.queueDepthPeak") = DepthPeak;
  if (Cache) {
    ArtifactCache::Stats CS = Cache->stats();
    Stats.counter("service.cacheBytes") = CS.Bytes;
    Stats.counter("service.cacheEntries") = CS.Entries;
    Stats.counter("service.cacheEvictions") = CS.Evictions;
    Stats.counter("service.cacheIntegrityRejects") = CS.IntegrityRejects;
  }
  if (Pages)
    Stats.counter("heap.pagesTrimmed") = Pages->stats().PagesTrimmed;
  return Results;
}
