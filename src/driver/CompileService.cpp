#include "driver/CompileService.h"

#include "support/Timer.h"

using namespace mpc;

//===----------------------------------------------------------------------===//
// ContextPool
//===----------------------------------------------------------------------===//

std::unique_ptr<CompilerContext>
ContextPool::acquire(const CompilerOptions &Opts, bool &Reused) {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Free.empty()) {
      std::unique_ptr<CompilerContext> Comp = std::move(Free.back());
      Free.pop_back();
      // The shell was reset at recycle time; only the new job's options
      // need applying (legal: the heap is empty).
      Comp->adoptOptions(Opts);
      Reused = true;
      return Comp;
    }
  }
  Reused = false;
  auto Comp = std::make_unique<CompilerContext>(Opts);
  if (Pages)
    Comp->heap().setPagePool(Pages);
  return Comp;
}

void ContextPool::recycle(std::unique_ptr<CompilerContext> Comp) {
  // Reset eagerly (outside the lock): pages flow back into the shared
  // pool right away, where a concurrently running job can pick them up.
  Comp->reset();
  std::lock_guard<std::mutex> Lock(M);
  Free.push_back(std::move(Comp));
}

size_t ContextPool::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Free.size();
}

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

CompileService::CompileService(ServiceConfig Config)
    : Cfg(Config),
      OwnPages(Cfg.SharePages && !Cfg.KeepContexts && !Cfg.ExternalPages
                   ? std::make_unique<PagePool>(Cfg.PagePoolCfg)
                   : nullptr),
      // A context that escapes to the caller (KeepContexts) must own its
      // pages outright, so page sharing is service-internal only.
      Pages(Cfg.KeepContexts ? nullptr
            : Cfg.SharePages ? (Cfg.ExternalPages ? Cfg.ExternalPages
                                                  : OwnPages.get())
                             : nullptr),
      // KeepContexts forces the cache off: a replayed hit carries no
      // context, which that contract hands to the caller.
      Cache(Cfg.Cache.Enabled && !Cfg.KeepContexts
                ? std::make_unique<ArtifactCache>(Cfg.Cache)
                : nullptr),
      Contexts(Pages), StartedAt(std::chrono::steady_clock::now()) {
  unsigned N = Cfg.Threads;
  if (N == 0) {
    N = std::thread::hardware_concurrency();
    if (N == 0)
      N = 1;
  }
  Sheaves.reserve(N);
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Sheaves.push_back(std::make_unique<StatsSheaf>());
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

CompileService::~CompileService() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

uint64_t CompileService::enqueue(BatchJob Job) {
  uint64_t Id;
  {
    std::lock_guard<std::mutex> Lock(M);
    Id = NextJobId++;
    Done.emplace_back(); // result slot; filled by whichever worker runs it
    Queue.emplace_back(Id, std::move(Job));
  }
  QueueCv.notify_one();
  return Id;
}

void CompileService::workerMain(unsigned WorkerIdx) {
  StatsSheaf &Sheaf = *Sheaves[WorkerIdx];
  while (true) {
    uint64_t Id;
    BatchJob Job;
    {
      std::unique_lock<std::mutex> Lock(M);
      QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping, and nothing left to do
      // One dequeue per JOB (not per slice): whichever worker frees up
      // first takes the next job, so long jobs don't starve the rest.
      Id = Queue.front().first;
      Job = std::move(Queue.front().second);
      Queue.pop_front();
    }
    auto Result = std::make_unique<BatchResult>(runJob(std::move(Job), Sheaf));
    {
      std::lock_guard<std::mutex> Lock(M);
      // A job can only be drained after completing, so its slot is still
      // inside the window even if other drains happened meanwhile. The
      // slot was reserved at enqueue time — completion fills it in place
      // and never grows the window under the lock.
      Done[Id - DrainedUpTo] = std::move(Result);
      ++CompletedJobs;
    }
    DoneCv.notify_all();
  }
}

namespace {

/// Rebuilds a service-mode BatchResult from a cached payload — exactly
/// the shape the miss path leaves after stripping context-owned data, so
/// replayed and compiled results are indistinguishable byte for byte.
BatchResult replayArtifact(CachedArtifact Artifact) {
  BatchResult R;
  R.Out.Timings = Artifact.Timings;
  R.Out.PlanErrors = std::move(Artifact.PlanErrors);
  R.HadErrors = Artifact.HadErrors;
  R.DiagText = std::move(Artifact.DiagText);
  R.DumpText = std::move(Artifact.DumpText);
  R.Heap = Artifact.Heap;
  return R;
}

/// The replayable slice of a finished (already stripped) service result.
CachedArtifact captureArtifact(const BatchResult &R) {
  CachedArtifact Artifact;
  Artifact.Timings = R.Out.Timings;
  Artifact.PlanErrors = R.Out.PlanErrors;
  Artifact.HadErrors = R.HadErrors;
  Artifact.DiagText = R.DiagText;
  Artifact.DumpText = R.DumpText;
  Artifact.Heap = R.Heap;
  return Artifact;
}

} // namespace

BatchResult CompileService::runJob(BatchJob Job, StatsSheaf &Sheaf) {
  Timer Busy;

  // Consult the artifact cache first: a hit replays the stored result
  // without touching (or even acquiring) a context.
  JobKey Key;
  if (Cache) {
    Key = jobKeyFor(Job);
    CachedArtifact Artifact;
    if (Cache->lookup(Key, Artifact)) {
      Sheaf.add("service.jobsCompleted", 1);
      Sheaf.add("service.cacheHits", 1);
      BatchResult R = replayArtifact(std::move(Artifact));
      Sheaf.add("service.busyMicros",
                static_cast<uint64_t>(Busy.elapsedSeconds() * 1e6));
      return R;
    }
    Sheaf.add("service.cacheMisses", 1);
  }

  bool Reused = false;
  std::unique_ptr<CompilerContext> Comp;
  if (Cfg.WarmContexts && !Cfg.KeepContexts) {
    Comp = Contexts.acquire(Job.Options, Reused);
  } else {
    Comp = std::make_unique<CompilerContext>(Job.Options);
    if (Pages)
      Comp->heap().setPagePool(Pages);
  }
  const SlabAllocator::Stats &Backend0 = Comp->heap().backendStats();
  uint64_t PagesFromPool0 = Backend0.PagesFromPool;
  uint64_t PagesMapped0 = Backend0.PagesMapped;
  uint64_t SystemCalls0 = Backend0.SystemCalls;

  BatchResult R = runBatchJob(std::move(Job), std::move(Comp));

  Sheaf.add("service.jobsCompleted", 1);
  if (Reused)
    Sheaf.add("service.contextsReused", 1);
  const SlabAllocator::Stats &Backend = R.Comp->heap().backendStats();
  Sheaf.add("service.pagesShared", Backend.PagesFromPool - PagesFromPool0);
  Sheaf.add("service.pagesMapped", Backend.PagesMapped - PagesMapped0);
  Sheaf.add("service.realAllocs", Backend.SystemCalls - SystemCalls0);

  if (!Cfg.KeepContexts) {
    // Everything context-owned must die before the shell is recycled:
    // the units' trees live in the context heap, and the bytecode /
    // entry points / check failures reference its symbols.
    R.Out.Units.clear();
    R.Out.Prog = Program();
    R.Out.EntryPoints.clear();
    R.Out.CheckFailures.clear();
    // Fold the job's pipeline counters into the service aggregate (in
    // KeepContexts mode the caller owns them via the context).
    Sheaf.merge(R.Comp->stats());
    if (Cfg.WarmContexts)
      Contexts.recycle(std::move(R.Comp));
    else
      R.Comp.reset();
    // Install the stripped result for future hits. (Cache implies
    // !KeepContexts, so the payload never references a context.)
    if (Cache)
      Cache->insert(Key, captureArtifact(R));
  }

  Sheaf.add("service.busyMicros",
            static_cast<uint64_t>(Busy.elapsedSeconds() * 1e6));
  return R;
}

size_t CompileService::pendingJobs() const {
  std::lock_guard<std::mutex> Lock(M);
  return static_cast<size_t>(NextJobId - CompletedJobs);
}

std::vector<BatchResult> CompileService::drain() {
  std::vector<BatchResult> Results;
  uint64_t Target;
  {
    std::unique_lock<std::mutex> Lock(M);
    Target = NextJobId;
    // Completed slots never empty again, so a monotonic cursor checks
    // each slot once across all wakeups — O(window) for the whole wait,
    // not per notification.
    uint64_t Scanned = DrainedUpTo;
    DoneCv.wait(Lock, [&] {
      while (Scanned < Target && Done[Scanned - DrainedUpTo])
        ++Scanned;
      return Scanned >= Target;
    });
    Results.reserve(Target - DrainedUpTo);
    while (DrainedUpTo < Target) {
      Results.push_back(std::move(*Done.front()));
      Done.pop_front();
      ++DrainedUpTo;
    }
  }

  // Merge the per-worker sheaves; each drain folds only the deltas since
  // the previous one, so the registry accumulates lifetime totals.
  for (auto &Sheaf : Sheaves)
    Sheaf->drainInto(Stats);
  double WallSec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - StartedAt)
                       .count();
  double Capacity = WallSec * static_cast<double>(Workers.size());
  double BusySec = static_cast<double>(Stats.get("service.busyMicros")) / 1e6;
  Stats.counter("service.workerUtilization") =
      Capacity > 0 ? static_cast<uint64_t>(100.0 * BusySec / Capacity) : 0;
  // Occupancy gauges (not deltas): refreshed to the current value each
  // drain. Hits/misses accumulate through the sheaves above.
  if (Cache) {
    ArtifactCache::Stats CS = Cache->stats();
    Stats.counter("service.cacheBytes") = CS.Bytes;
    Stats.counter("service.cacheEntries") = CS.Entries;
    Stats.counter("service.cacheEvictions") = CS.Evictions;
  }
  if (Pages)
    Stats.counter("heap.pagesTrimmed") = Pages->stats().PagesTrimmed;
  return Results;
}
