#include "driver/Batch.h"

#include "ast/TreePrinter.h"
#include "driver/CompileService.h"
#include "support/OStream.h"

#include <thread>

using namespace mpc;

//===----------------------------------------------------------------------===//
// Job keys (content-addressed identity)
//===----------------------------------------------------------------------===//

// CACHE-RELEVANCE AUDIT of CompilerOptions. Every field must appear in
// exactly one of these lists; the static_assert below trips when a field
// is added (or one changes size) without extending the audit, so a new
// option can never silently alias cache entries.
//
//   Mixed into the key (affect dumps, diagnostics, or the simulated
//   HeapStats the cache replays):
//     FuseMiniphases   fusion changes node lifetimes -> HeapStats
//     CheckTrees       checker failures surface in output
//     AlwaysCopy       copier baseline changes allocation clock
//     IdentitySkip     node reuse changes allocation clock
//     SubtreePruning   observationally identical, but mixed anyway so the
//                      pruning ablation never shares entries (conservative)
//     DagMemoize       sharing changes allocation clock
//     Strategy         dispatch strategy, mixed conservatively
//
//   Cache-IRRELEVANT (excluded deliberately):
//     SlabHeap         selects the real-storage backend only; the
//                      simulated stats and all rendered output are
//                      byte-identical either way (pinned by the
//                      SlabAllocatorTest invariance suite), so slab-on
//                      and slab-off jobs may share one cache entry.
static_assert(sizeof(CompilerOptions) == 12,
              "CompilerOptions changed: audit the cache-relevance lists "
              "above, extend optionsFingerprint(), then update this size");

namespace {

Fingerprint optionsFingerprint(const CompilerOptions &O) {
  const unsigned char Bits[8] = {
      static_cast<unsigned char>(O.FuseMiniphases),
      static_cast<unsigned char>(O.CheckTrees),
      static_cast<unsigned char>(O.AlwaysCopy),
      static_cast<unsigned char>(O.IdentitySkip),
      static_cast<unsigned char>(O.SubtreePruning),
      static_cast<unsigned char>(O.DagMemoize),
      static_cast<unsigned char>(O.Strategy),
      0, // reserved
  };
  return fingerprintBytes(Bits, sizeof(Bits));
}

} // namespace

Fingerprint mpc::fingerprintSource(const SourceInput &Source) {
  return combine(fingerprintString(Source.FileName),
                 fingerprintString(Source.Text));
}

JobKey mpc::jobKeyFor(const BatchJob &Job) {
  // Domain tag so a JobKey can never collide with a bare source
  // fingerprint someone stores in the same table.
  Fingerprint FP = fingerprintUInt(0x4a4f424bu /* "JOBK" */);
  // Order-sensitive fold: unit order assigns file ids and shapes output.
  for (const SourceInput &S : Job.Sources)
    FP = combine(FP, fingerprintSource(S));
  FP = combine(FP, optionsFingerprint(Job.Options));
  FP = combine(FP, fingerprintUInt(static_cast<uint64_t>(Job.Kind)));
  FP = combine(FP, fingerprintUInt(Job.WantDump ? 1 : 0));
  return JobKey{FP};
}

BatchResult mpc::runBatchJob(BatchJob Job,
                             std::unique_ptr<CompilerContext> Comp) {
  BatchResult R;
  R.Comp = std::move(Comp);
  R.Out = compileProgram(*R.Comp, std::move(Job.Sources), Job.Kind);
  R.HadErrors = R.Comp->diags().hasErrors();
  // Render any diagnostics (not just errors): in the service's
  // context-recycling mode this snapshot is the only place warnings and
  // notes survive the shell's reset.
  if (!R.Comp->diags().all().empty()) {
    StringOStream OS;
    R.Comp->diags().printAll(OS);
    R.DiagText = OS.str();
  }
  R.Heap = R.Comp->heap().stats();
  if (Job.WantDump) {
    PrintOptions PO;
    PO.ShowTypes = true;
    for (const CompilationUnit &U : R.Out.Units) {
      R.DumpText += "// === " + U.FileName + " ===\n";
      R.DumpText += treeToString(U.Root.get(), PO);
      R.DumpText += '\n';
    }
  }
  return R;
}

std::vector<BatchResult> mpc::compileBatch(std::vector<BatchJob> Jobs,
                                           unsigned Threads) {
  if (Jobs.empty())
    return {};
  if (Threads == 0) {
    Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
  }
  if (Threads > Jobs.size())
    Threads = static_cast<unsigned>(Jobs.size());

  // Serial runs stay inline on the calling thread (no pool, no spawn) —
  // the historical contract profilers and debuggers rely on.
  if (Threads <= 1) {
    std::vector<BatchResult> Results;
    Results.reserve(Jobs.size());
    for (BatchJob &Job : Jobs) {
      auto Comp = std::make_unique<CompilerContext>(Job.Options);
      Results.push_back(runBatchJob(std::move(Job), std::move(Comp)));
    }
    return Results;
  }

  // The parallel batch contract rides on the service: cold isolated
  // contexts, each handed to its result.
  ServiceConfig Cfg;
  Cfg.Threads = Threads;
  Cfg.WarmContexts = false;
  Cfg.SharePages = false;
  Cfg.KeepContexts = true;
  CompileService Service(Cfg);
  for (BatchJob &Job : Jobs)
    Service.enqueue(std::move(Job));
  return Service.drain();
}
