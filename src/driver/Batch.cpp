#include "driver/Batch.h"

#include "ast/TreePrinter.h"
#include "driver/CompileService.h"
#include "support/CancelToken.h"
#include "support/OStream.h"

#include <chrono>
#include <thread>

using namespace mpc;

//===----------------------------------------------------------------------===//
// Job keys (content-addressed identity)
//===----------------------------------------------------------------------===//

// CACHE-RELEVANCE AUDIT of CompilerOptions. Every field must appear in
// exactly one of these lists; the static_assert below trips when a field
// is added (or one changes size) without extending the audit, so a new
// option can never silently alias cache entries.
//
//   Mixed into the key (affect dumps, diagnostics, or the simulated
//   HeapStats the cache replays):
//     FuseMiniphases   fusion changes node lifetimes -> HeapStats
//     CheckTrees       checker failures surface in output
//     AlwaysCopy       copier baseline changes allocation clock
//     IdentitySkip     node reuse changes allocation clock
//     SubtreePruning   observationally identical, but mixed anyway so the
//                      pruning ablation never shares entries (conservative)
//     DagMemoize       sharing changes allocation clock
//     Strategy         dispatch strategy, mixed conservatively
//     VerifyBytecode   fills Program::VerifyFailures; callers reading
//                      verifier output must never replay an entry from a
//                      non-verified job (conservative — rendered text is
//                      identical today)
//
//   Cache-IRRELEVANT (excluded deliberately):
//     SlabHeap         selects the real-storage backend only; the
//                      simulated stats and all rendered output are
//                      byte-identical either way (pinned by the
//                      SlabAllocatorTest invariance suite), so slab-on
//                      and slab-off jobs may share one cache entry.
//     Engine           selects which engine executes the program AFTER
//                      compilation (tree-walker vs bytecode VM); the
//                      cached artifact is the compile output, which is
//                      identical either way, and the VM differential
//                      suite pins engine-equivalence of the execution.
static_assert(sizeof(CompilerOptions) == 16,
              "CompilerOptions changed: audit the cache-relevance lists "
              "above, extend optionsFingerprint(), then update this size");

namespace {

Fingerprint optionsFingerprint(const CompilerOptions &O) {
  const unsigned char Bits[8] = {
      static_cast<unsigned char>(O.FuseMiniphases),
      static_cast<unsigned char>(O.CheckTrees),
      static_cast<unsigned char>(O.AlwaysCopy),
      static_cast<unsigned char>(O.IdentitySkip),
      static_cast<unsigned char>(O.SubtreePruning),
      static_cast<unsigned char>(O.DagMemoize),
      static_cast<unsigned char>(O.Strategy),
      static_cast<unsigned char>(O.VerifyBytecode),
  };
  return fingerprintBytes(Bits, sizeof(Bits));
}

} // namespace

Fingerprint mpc::fingerprintSource(const SourceInput &Source) {
  return combine(fingerprintString(Source.FileName),
                 fingerprintString(Source.Text));
}

JobKey mpc::jobKeyFor(const BatchJob &Job) {
  // Domain tag so a JobKey can never collide with a bare source
  // fingerprint someone stores in the same table. Note what is absent
  // below: BatchJob::Priority and DeadlineSec are scheduling metadata
  // with no effect on the compiled output, so jobs differing only in
  // them deliberately share one cache entry.
  Fingerprint FP = fingerprintUInt(0x4a4f424bu /* "JOBK" */);
  // Order-sensitive fold: unit order assigns file ids and shapes output.
  for (const SourceInput &S : Job.Sources)
    FP = combine(FP, fingerprintSource(S));
  FP = combine(FP, optionsFingerprint(Job.Options));
  FP = combine(FP, fingerprintUInt(static_cast<uint64_t>(Job.Kind)));
  FP = combine(FP, fingerprintUInt(Job.WantDump ? 1 : 0));
  return JobKey{FP};
}

BatchResult mpc::runBatchJob(BatchJob Job,
                             std::unique_ptr<CompilerContext> Comp) {
  BatchResult R;
  // The context moves into the result BEFORE the compile runs, so the
  // firewall below hands it back even when the compile unwinds — the
  // service decides whether the shell is still recyclable, but it must
  // never be lost to an exception.
  R.Comp = std::move(Comp);

  // Arm the job's soft deadline as a stack-local token. The token lives
  // on this frame, so every exit path below detaches it before the
  // context escapes.
  CancelToken Token;
  if (Job.DeadlineSec > 0) {
    Token.armDeadline(CancelToken::Clock::now() +
                      std::chrono::duration_cast<CancelToken::Clock::duration>(
                          std::chrono::duration<double>(Job.DeadlineSec)));
    R.Comp->setCancelToken(&Token);
  }

  bool WantDump = Job.WantDump;
  try {
    R.Out = compileProgram(*R.Comp, std::move(Job.Sources), Job.Kind);
    R.HadErrors = R.Comp->diags().hasErrors();
  } catch (const DeadlineExceeded &E) {
    // Checkpoints only throw between units / at phase boundaries, where
    // all trees are RAII-held — the unwind released them, so the context
    // is clean (LiveBytes == 0) and stays recyclable.
    R.Status = JobStatus::DeadlineExceeded;
    R.HadErrors = true;
    R.DiagText = std::string("error: ") + E.what() + "\n";
    WantDump = false;
  } catch (const std::exception &E) {
    // Worker firewall: an arbitrary exception becomes a failed result.
    // Unlike a deadline unwind, the throw site is unknown (it may have
    // interrupted an allocation mid-charge), so the context counts as
    // poisoned — the service discards it rather than recycling.
    R.Status = JobStatus::Faulted;
    R.HadErrors = true;
    R.DiagText = std::string("error: compile job faulted: ") + E.what() + "\n";
    WantDump = false;
  } catch (...) {
    R.Status = JobStatus::Faulted;
    R.HadErrors = true;
    R.DiagText = "error: compile job faulted: unknown exception\n";
    WantDump = false;
  }
  R.Comp->setCancelToken(nullptr);

  // Render any diagnostics (not just errors): in the service's
  // context-recycling mode this snapshot is the only place warnings and
  // notes survive the shell's reset. On a cancelled/faulted run the
  // explanatory text above takes their place.
  if (R.Status == JobStatus::Ok && !R.Comp->diags().all().empty()) {
    StringOStream OS;
    R.Comp->diags().printAll(OS);
    R.DiagText = OS.str();
  }
  R.Heap = R.Comp->heap().stats();
  if (WantDump && R.Status == JobStatus::Ok) {
    PrintOptions PO;
    PO.ShowTypes = true;
    for (const CompilationUnit &U : R.Out.Units) {
      R.DumpText += "// === " + U.FileName + " ===\n";
      R.DumpText += treeToString(U.Root.get(), PO);
      R.DumpText += '\n';
    }
  }
  return R;
}

std::vector<BatchResult> mpc::compileBatch(std::vector<BatchJob> Jobs,
                                           unsigned Threads) {
  if (Jobs.empty())
    return {};
  if (Threads == 0) {
    Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
  }
  if (Threads > Jobs.size())
    Threads = static_cast<unsigned>(Jobs.size());

  // Serial runs stay inline on the calling thread (no pool, no spawn) —
  // the historical contract profilers and debuggers rely on.
  if (Threads <= 1) {
    std::vector<BatchResult> Results;
    Results.reserve(Jobs.size());
    for (BatchJob &Job : Jobs) {
      auto Comp = std::make_unique<CompilerContext>(Job.Options);
      Results.push_back(runBatchJob(std::move(Job), std::move(Comp)));
    }
    return Results;
  }

  // The parallel batch contract rides on the service: cold isolated
  // contexts, each handed to its result.
  ServiceConfig Cfg;
  Cfg.Threads = Threads;
  Cfg.WarmContexts = false;
  Cfg.SharePages = false;
  Cfg.KeepContexts = true;
  CompileService Service(Cfg);
  for (BatchJob &Job : Jobs)
    Service.enqueue(std::move(Job));
  return Service.drain();
}
