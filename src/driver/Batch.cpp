#include "driver/Batch.h"

#include "support/OStream.h"

#include <atomic>
#include <thread>

using namespace mpc;

std::vector<BatchResult> mpc::compileBatch(std::vector<BatchJob> Jobs,
                                           unsigned Threads) {
  if (Threads == 0) {
    Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
  }
  if (Threads > Jobs.size())
    Threads = static_cast<unsigned>(Jobs.size());

  std::vector<BatchResult> Results(Jobs.size());
  std::atomic<size_t> NextJob{0};

  auto Worker = [&]() {
    while (true) {
      size_t I = NextJob.fetch_add(1);
      if (I >= Jobs.size())
        return;
      BatchJob &Job = Jobs[I];
      BatchResult &R = Results[I];
      R.Comp = std::make_unique<CompilerContext>(Job.Options);
      R.Out = compileProgram(*R.Comp, std::move(Job.Sources), Job.Kind);
      R.HadErrors = R.Comp->diags().hasErrors();
      if (R.HadErrors) {
        StringOStream OS;
        R.Comp->diags().printAll(OS);
        R.DiagText = OS.str();
      }
    }
  };

  if (Threads <= 1) {
    Worker();
    return Results;
  }
  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
  return Results;
}
