#include "driver/Batch.h"

#include "ast/TreePrinter.h"
#include "driver/CompileService.h"
#include "support/OStream.h"

#include <thread>

using namespace mpc;

BatchResult mpc::runBatchJob(BatchJob Job,
                             std::unique_ptr<CompilerContext> Comp) {
  BatchResult R;
  R.Comp = std::move(Comp);
  R.Out = compileProgram(*R.Comp, std::move(Job.Sources), Job.Kind);
  R.HadErrors = R.Comp->diags().hasErrors();
  // Render any diagnostics (not just errors): in the service's
  // context-recycling mode this snapshot is the only place warnings and
  // notes survive the shell's reset.
  if (!R.Comp->diags().all().empty()) {
    StringOStream OS;
    R.Comp->diags().printAll(OS);
    R.DiagText = OS.str();
  }
  R.Heap = R.Comp->heap().stats();
  if (Job.WantDump) {
    PrintOptions PO;
    PO.ShowTypes = true;
    for (const CompilationUnit &U : R.Out.Units) {
      R.DumpText += "// === " + U.FileName + " ===\n";
      R.DumpText += treeToString(U.Root.get(), PO);
      R.DumpText += '\n';
    }
  }
  return R;
}

std::vector<BatchResult> mpc::compileBatch(std::vector<BatchJob> Jobs,
                                           unsigned Threads) {
  if (Jobs.empty())
    return {};
  if (Threads == 0) {
    Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
  }
  if (Threads > Jobs.size())
    Threads = static_cast<unsigned>(Jobs.size());

  // Serial runs stay inline on the calling thread (no pool, no spawn) —
  // the historical contract profilers and debuggers rely on.
  if (Threads <= 1) {
    std::vector<BatchResult> Results;
    Results.reserve(Jobs.size());
    for (BatchJob &Job : Jobs) {
      auto Comp = std::make_unique<CompilerContext>(Job.Options);
      Results.push_back(runBatchJob(std::move(Job), std::move(Comp)));
    }
    return Results;
  }

  // The parallel batch contract rides on the service: cold isolated
  // contexts, each handed to its result.
  ServiceConfig Cfg;
  Cfg.Threads = Threads;
  Cfg.WarmContexts = false;
  Cfg.SharePages = false;
  Cfg.KeepContexts = true;
  CompileService Service(Cfg);
  for (BatchJob &Job : Jobs)
    Service.enqueue(std::move(Job));
  return Service.drain();
}
