#include "driver/Driver.h"

#include "frontend/TypeAssigner.h"
#include "support/Timer.h"

using namespace mpc;

CompileOutput mpc::compileProgram(CompilerContext &Comp,
                                  std::vector<SourceInput> Sources,
                                  PipelineKind Kind) {
  CompileOutput Out;

  bool Fuse = Kind == PipelineKind::StandardFused;
  Comp.options().FuseMiniphases = Fuse;
  Comp.options().AlwaysCopy = Kind == PipelineKind::Legacy;

  // Phase plan is built (and its ordering constraints validated) at
  // startup, before any unit is touched (paper §6.3).
  PhasePlan Plan = makeStandardPlan(Fuse, Out.PlanErrors);
  if (!Out.PlanErrors.empty())
    return Out;
  return compileProgramWithPlan(Comp, std::move(Sources), Plan);
}

CompileOutput mpc::compileProgramWithPlan(CompilerContext &Comp,
                                          std::vector<SourceInput> Sources,
                                          const PhasePlan &Plan) {
  CompileOutput Out;

  // Front end.
  Timer T;
  Out.Units = runFrontEnd(Comp, std::move(Sources));
  Out.Timings.FrontendSec = T.elapsedSeconds();
  if (Comp.diags().hasErrors())
    return Out;

  // Stage boundary: a deadline that expired during the frontend surfaces
  // here rather than after a full pipeline run.
  Comp.checkpoint();

  // Tree transformation pipeline (Listing 3's loop).
  TreeChecker Checker(makeRetypeChecker());
  TransformPipeline Pipeline(Plan);
  T.reset();
  PipelineResult PR = Pipeline.run(
      Out.Units, Comp, Comp.options().CheckTrees ? &Checker : nullptr);
  Out.Timings.TransformSec = T.elapsedSeconds();
  Out.Timings.Traversals = PR.Traversals;
  Out.CheckFailures = std::move(PR.CheckFailures);

  // Back end.
  Comp.checkpoint();
  T.reset();
  Out.Prog = generateCode(Out.Units, Comp);
  Out.Timings.BackendSec = T.elapsedSeconds();

  if (auto *CEP = findEntryPoints(Plan)) {
    Out.EntryPoints = CEP->entryPoints();
    Out.Prog.EntryPoints = Out.EntryPoints;
  }
  return Out;
}
