//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic MiniScala program generator — the substitute
/// for the paper's evaluation inputs (Scala stdlib, 34 kLOC; Dotty,
/// 50 kLOC). Profiles control the feature mix; sizes are calibrated to
/// the paper's ~12 tree nodes per source line.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_WORKLOAD_PROGRAMGENERATOR_H
#define MPC_WORKLOAD_PROGRAMGENERATOR_H

#include "frontend/Frontend.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mpc {

/// Feature-mix profile of the generated code base.
struct WorkloadProfile {
  std::string Name;
  uint64_t Seed = 1;
  unsigned TargetLoc = 1000;  // approximate generated source lines
  unsigned UnitsHint = 10;    // number of compilation units (files)
  unsigned MatchPercent = 60; // how often methods use pattern matching
  unsigned LazyPercent = 30;
  unsigned ClosurePercent = 40;
  unsigned TryPercent = 25;
  unsigned VarargPercent = 20;
  unsigned TraitPercent = 40;
};

/// The paper's two evaluation inputs, scaled by \p Scale (1.0 = paper
/// size; tests use small scales).
WorkloadProfile stdlibProfile(double Scale = 1.0);
WorkloadProfile dottyProfile(double Scale = 1.0);

/// Generates the source files of a synthetic code base.
std::vector<SourceInput> generateWorkload(const WorkloadProfile &Profile);

/// Counts source lines of a generated workload.
uint64_t countLines(const std::vector<SourceInput> &Sources);

} // namespace mpc

#endif // MPC_WORKLOAD_PROGRAMGENERATOR_H
