//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic MiniScala program generator — the substitute
/// for the paper's evaluation inputs (Scala stdlib, 34 kLOC; Dotty,
/// 50 kLOC). Profiles control the feature mix; sizes are calibrated to
/// the paper's ~12 tree nodes per source line.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_WORKLOAD_PROGRAMGENERATOR_H
#define MPC_WORKLOAD_PROGRAMGENERATOR_H

#include "frontend/Frontend.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mpc {

/// Feature-mix profile of the generated code base.
struct WorkloadProfile {
  std::string Name;
  uint64_t Seed = 1;
  unsigned TargetLoc = 1000;  // approximate generated source lines
  unsigned UnitsHint = 10;    // number of compilation units (files)
  unsigned MatchPercent = 60; // how often methods use pattern matching
  unsigned LazyPercent = 30;
  unsigned ClosurePercent = 40;
  unsigned TryPercent = 25;
  unsigned VarargPercent = 20;
  unsigned TraitPercent = 40;
};

/// The paper's two evaluation inputs, scaled by \p Scale (1.0 = paper
/// size; tests use small scales).
WorkloadProfile stdlibProfile(double Scale = 1.0);
WorkloadProfile dottyProfile(double Scale = 1.0);

/// Generates the source files of a synthetic code base.
std::vector<SourceInput> generateWorkload(const WorkloadProfile &Profile);

/// Counts source lines of a generated workload.
uint64_t countLines(const std::vector<SourceInput> &Sources);

/// Named stress families for fuzzing, differential testing, and soak
/// traffic. Valid families generate well-typed programs that include an
/// `object Main { def main(args: Array[String]): Unit }` entry point, so
/// the full pipeline (transforms + interpreter) can run them. Invalid
/// families deterministically corrupt a valid base program and exercise
/// the frontend's error paths: the only acceptable outcome for them is
/// diagnostics, never a crash.
enum class Family : uint8_t {
  // Valid.
  Mixed,           // the profile-driven generator plus an entry point
  DeepInheritance, // long override chains, super calls, virtual dispatch
  ClosureHeavy,    // higher-order methods and capture-heavy lambdas
  MegaMethods,     // few classes, very long method bodies
  ManyTinyUnits,   // wide programs: many one-class compilation units
  // Invalid / adversarial.
  Truncated,        // a unit cut off mid-token/mid-definition
  TokenMutation,    // word-level replace/delete/duplicate mutations
  UnbalancedDelims, // deleted or inserted braces/parens/brackets
  TypeErrorSeeded,  // parses cleanly, fails in the typer
};

const char *familyName(Family F);
bool familyIsValid(Family F);
/// All families in declaration order (stable across runs, for iteration).
const std::vector<Family> &allFamilies();

/// Generates one deterministic program for (family, seed). \p Scale
/// stretches program size; 1.0 is a few hundred lines. Equal arguments
/// yield byte-identical sources.
std::vector<SourceInput> generateFamily(Family F, uint64_t Seed,
                                        double Scale = 1.0);

} // namespace mpc

#endif // MPC_WORKLOAD_PROGRAMGENERATOR_H
