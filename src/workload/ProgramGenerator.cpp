#include "workload/ProgramGenerator.h"

#include "support/Rng.h"

#include <sstream>

using namespace mpc;

WorkloadProfile mpc::stdlibProfile(double Scale) {
  WorkloadProfile P;
  P.Name = "stdlib";
  P.Seed = 0x5ca1ab1eULL;
  P.TargetLoc = static_cast<unsigned>(34000 * Scale);
  P.UnitsHint = static_cast<unsigned>(80 * Scale) + 4;
  P.MatchPercent = 70; // collection-like code is match-heavy
  P.LazyPercent = 35;
  P.ClosurePercent = 55;
  P.TryPercent = 15;
  P.VarargPercent = 25;
  P.TraitPercent = 50;
  return P;
}

WorkloadProfile mpc::dottyProfile(double Scale) {
  WorkloadProfile P;
  P.Name = "dotty";
  P.Seed = 0xd017eeULL;
  P.TargetLoc = static_cast<unsigned>(50000 * Scale);
  P.UnitsHint = static_cast<unsigned>(120 * Scale) + 4;
  P.MatchPercent = 80; // compilers pattern-match all the time
  P.LazyPercent = 25;
  P.ClosurePercent = 45;
  P.TryPercent = 20;
  P.VarargPercent = 15;
  P.TraitPercent = 45;
  return P;
}

namespace {

/// Emits one synthetic compilation unit. The generated code is closed
/// (each unit references only its own definitions plus units' shared
/// shapes) and well-typed by construction.
class UnitGenerator {
public:
  UnitGenerator(Rng &R, const WorkloadProfile &P, unsigned UnitIdx)
      : R(R), P(P), U(UnitIdx) {}

  std::string generate(unsigned TargetLines) {
    // A family of case classes for matching.
    line("trait Node" + id() + " { def weight: Int = 1 }");
    line("case class Leaf" + id() + "(value: Int) extends Node" + id());
    line("case class Pair" + id() + "(left: Int, right: Int) extends Node" +
         id());
    line("case class Tag" + id() + "(name: String, value: Int) extends "
         "Node" + id());
    blank();

    if (R.chance(P.TraitPercent)) {
      HasMixin = true;
      line("trait Mixin" + id() + " {");
      line("  def base: Int = " + num(1, 50));
      if (R.chance(P.LazyPercent))
        line("  lazy val cached: Int = base * " + num(2, 9));
      else
        line("  val cached: Int = " + num(10, 99));
      line("  def scaled(k: Int): Int = cached * k");
      line("}");
      blank();
    }

    unsigned Cls = 0;
    while (Lines < TargetLines - 20) {
      genClass(Cls++);
      blank();
    }

    // The unit's driver object ties everything together so nothing is
    // dead code.
    line("object Driver" + id() + " {");
    line("  def run(): Int = {");
    line("    var total = 0");
    for (unsigned C = 0; C < Cls; ++C)
      line("    total = total + new Worker" + id() + "_" +
           std::to_string(C) + "(" + num(1, 9) + ").work(" + num(1, 20) +
           ")");
    line("    total");
    line("  }");
    line("}");
    return Out.str();
  }

  unsigned lineCount() const { return Lines; }

private:
  std::string id() const { return std::to_string(U); }
  std::string num(int Lo, int Hi) {
    return std::to_string(R.range(Lo, Hi));
  }

  void line(const std::string &S) {
    Out << S << '\n';
    ++Lines;
  }
  void blank() {
    Out << '\n';
    ++Lines;
  }

  void genClass(unsigned C) {
    std::string Cls = "Worker" + id() + "_" + std::to_string(C);
    bool WithTrait = HasMixin && R.chance(P.TraitPercent);
    line("class " + Cls + "(seed: Int)" +
         (WithTrait ? " extends Mixin" + id() : "") + " {");
    line("  val bias: Int = seed * " + num(2, 5));
    if (R.chance(P.LazyPercent))
      line("  lazy val table: Int = { var t = 0; var i = 0; while (i < "
           "seed) { t = t + i; i = i + 1 }; t }");
    unsigned Methods = static_cast<unsigned>(R.range(2, 5));
    for (unsigned M = 0; M < Methods; ++M)
      genMethod(M);
    // The entry method chains the others.
    line("  def work(n: Int): Int = {");
    line("    var acc = bias");
    for (unsigned M = 0; M < Methods; ++M)
      line("    acc = acc + m" + std::to_string(M) + "(acc % " +
           num(5, 30) + ")");
    line("    acc");
    line("  }");
    line("}");
  }

  void genMethod(unsigned M) {
    std::string Name = "m" + std::to_string(M);
    unsigned Style = static_cast<unsigned>(R.below(100));
    if (Style < P.MatchPercent) {
      // Pattern-matching style.
      line("  def " + Name + "(x: Int): Int = {");
      line("    val node: Node" + id() + " = if (x % 3 == 0) Leaf" + id() +
           "(x) else if (x % 3 == 1) Pair" + id() + "(x, x + 1) else Tag" +
           id() + "(\"t\", x)");
      line("    node match {");
      line("      case Leaf" + id() + "(v) => v + " + num(1, 9));
      line("      case Pair" + id() + "(a, b) if a < b => a * b + " +
           num(1, 9));
      line("      case Pair" + id() + "(a, b) => a - b");
      line("      case Tag" + id() + "(n, v) => v + n.length");
      line("      case _ => 0");
      line("    }");
      line("  }");
      return;
    }
    Style -= P.MatchPercent;
    if (R.chance(P.ClosurePercent)) {
      line("  def " + Name + "(x: Int): Int = {");
      line("    val f = (k: Int) => k * " + num(2, 7) + " + x");
      line("    var acc = 0");
      line("    var i = 0");
      line("    while (i < " + num(3, 12) + ") { acc = acc + f(i); i = i "
           "+ 1 }");
      line("    acc");
      line("  }");
      return;
    }
    if (R.chance(P.TryPercent)) {
      line("  def " + Name + "(x: Int): Int = {");
      line("    val safe = 1 + (try { if (x == 0) throw new "
           "Throwable(\"zero\") else 100 / x } catch { case t: Throwable "
           "=> 0 })");
      line("    safe + x");
      line("  }");
      return;
    }
    if (R.chance(P.VarargPercent)) {
      line("  def sum" + Name + "(xs: Int*): Int = {");
      line("    var t = 0; var i = 0");
      line("    while (i < xs.length) { t = t + xs(i); i = i + 1 }");
      line("    t");
      line("  }");
      line("  def " + Name + "(x: Int): Int = sum" + Name + "(x, x + 1, "
           "x + 2) + " + num(1, 9));
      return;
    }
    // Tail-recursive accumulator.
    line("  def " + Name + "(x: Int): Int = {");
    line("    def loop(n: Int, acc: Int): Int =");
    line("      if (n <= 0) acc else loop(n - 1, acc + n)");
    line("    loop(x % " + num(5, 40) + ", " + num(0, 5) + ")");
    line("  }");
  }

  Rng &R;
  const WorkloadProfile &P;
  unsigned U;
  std::ostringstream Out;
  unsigned Lines = 0;
  bool HasMixin = false;
};

} // namespace

std::vector<SourceInput>
mpc::generateWorkload(const WorkloadProfile &Profile) {
  Rng Root(Profile.Seed);
  std::vector<SourceInput> Sources;
  unsigned Units = Profile.UnitsHint == 0 ? 1 : Profile.UnitsHint;
  unsigned PerUnit = Profile.TargetLoc / Units;
  for (unsigned U = 0; U < Units; ++U) {
    Rng UnitRng = Root.fork();
    UnitGenerator G(UnitRng, Profile, U);
    SourceInput Src;
    Src.FileName = Profile.Name + "_" + std::to_string(U) + ".scala";
    Src.Text = G.generate(PerUnit);
    Sources.push_back(std::move(Src));
  }
  return Sources;
}

uint64_t mpc::countLines(const std::vector<SourceInput> &Sources) {
  uint64_t N = 0;
  for (const SourceInput &S : Sources)
    for (char C : S.Text)
      if (C == '\n')
        ++N;
  return N;
}
