#include "workload/ProgramGenerator.h"

#include "support/Rng.h"

#include <sstream>

using namespace mpc;

WorkloadProfile mpc::stdlibProfile(double Scale) {
  WorkloadProfile P;
  P.Name = "stdlib";
  P.Seed = 0x5ca1ab1eULL;
  P.TargetLoc = static_cast<unsigned>(34000 * Scale);
  P.UnitsHint = static_cast<unsigned>(80 * Scale) + 4;
  P.MatchPercent = 70; // collection-like code is match-heavy
  P.LazyPercent = 35;
  P.ClosurePercent = 55;
  P.TryPercent = 15;
  P.VarargPercent = 25;
  P.TraitPercent = 50;
  return P;
}

WorkloadProfile mpc::dottyProfile(double Scale) {
  WorkloadProfile P;
  P.Name = "dotty";
  P.Seed = 0xd017eeULL;
  P.TargetLoc = static_cast<unsigned>(50000 * Scale);
  P.UnitsHint = static_cast<unsigned>(120 * Scale) + 4;
  P.MatchPercent = 80; // compilers pattern-match all the time
  P.LazyPercent = 25;
  P.ClosurePercent = 45;
  P.TryPercent = 20;
  P.VarargPercent = 15;
  P.TraitPercent = 45;
  return P;
}

namespace {

/// Emits one synthetic compilation unit. The generated code is closed
/// (each unit references only its own definitions plus units' shared
/// shapes) and well-typed by construction.
class UnitGenerator {
public:
  UnitGenerator(Rng &R, const WorkloadProfile &P, unsigned UnitIdx)
      : R(R), P(P), U(UnitIdx) {}

  std::string generate(unsigned TargetLines) {
    // A family of case classes for matching.
    line("trait Node" + id() + " { def weight: Int = 1 }");
    line("case class Leaf" + id() + "(value: Int) extends Node" + id());
    line("case class Pair" + id() + "(left: Int, right: Int) extends Node" +
         id());
    line("case class Tag" + id() + "(name: String, value: Int) extends "
         "Node" + id());
    blank();

    if (R.chance(P.TraitPercent)) {
      HasMixin = true;
      line("trait Mixin" + id() + " {");
      line("  def base: Int = " + num(1, 50));
      if (R.chance(P.LazyPercent))
        line("  lazy val cached: Int = base * " + num(2, 9));
      else
        line("  val cached: Int = " + num(10, 99));
      line("  def scaled(k: Int): Int = cached * k");
      line("}");
      blank();
    }

    unsigned Cls = 0;
    while (Lines < TargetLines - 20) {
      genClass(Cls++);
      blank();
    }

    // The unit's driver object ties everything together so nothing is
    // dead code.
    line("object Driver" + id() + " {");
    line("  def run(): Int = {");
    line("    var total = 0");
    for (unsigned C = 0; C < Cls; ++C)
      line("    total = total + new Worker" + id() + "_" +
           std::to_string(C) + "(" + num(1, 9) + ").work(" + num(1, 20) +
           ")");
    line("    total");
    line("  }");
    line("}");
    return Out.str();
  }

  unsigned lineCount() const { return Lines; }

private:
  std::string id() const { return std::to_string(U); }
  std::string num(int Lo, int Hi) {
    return std::to_string(R.range(Lo, Hi));
  }

  void line(const std::string &S) {
    Out << S << '\n';
    ++Lines;
  }
  void blank() {
    Out << '\n';
    ++Lines;
  }

  void genClass(unsigned C) {
    std::string Cls = "Worker" + id() + "_" + std::to_string(C);
    bool WithTrait = HasMixin && R.chance(P.TraitPercent);
    line("class " + Cls + "(seed: Int)" +
         (WithTrait ? " extends Mixin" + id() : "") + " {");
    line("  val bias: Int = seed * " + num(2, 5));
    if (R.chance(P.LazyPercent))
      line("  lazy val table: Int = { var t = 0; var i = 0; while (i < "
           "seed) { t = t + i; i = i + 1 }; t }");
    unsigned Methods = static_cast<unsigned>(R.range(2, 5));
    for (unsigned M = 0; M < Methods; ++M)
      genMethod(M);
    // The entry method chains the others.
    line("  def work(n: Int): Int = {");
    line("    var acc = bias");
    for (unsigned M = 0; M < Methods; ++M)
      line("    acc = acc + m" + std::to_string(M) + "(acc % " +
           num(5, 30) + ")");
    line("    acc");
    line("  }");
    line("}");
  }

  void genMethod(unsigned M) {
    std::string Name = "m" + std::to_string(M);
    unsigned Style = static_cast<unsigned>(R.below(100));
    if (Style < P.MatchPercent) {
      // Pattern-matching style.
      line("  def " + Name + "(x: Int): Int = {");
      line("    val node: Node" + id() + " = if (x % 3 == 0) Leaf" + id() +
           "(x) else if (x % 3 == 1) Pair" + id() + "(x, x + 1) else Tag" +
           id() + "(\"t\", x)");
      line("    node match {");
      line("      case Leaf" + id() + "(v) => v + " + num(1, 9));
      line("      case Pair" + id() + "(a, b) if a < b => a * b + " +
           num(1, 9));
      line("      case Pair" + id() + "(a, b) => a - b");
      line("      case Tag" + id() + "(n, v) => v + n.length");
      line("      case _ => 0");
      line("    }");
      line("  }");
      return;
    }
    Style -= P.MatchPercent;
    if (R.chance(P.ClosurePercent)) {
      line("  def " + Name + "(x: Int): Int = {");
      line("    val f = (k: Int) => k * " + num(2, 7) + " + x");
      line("    var acc = 0");
      line("    var i = 0");
      line("    while (i < " + num(3, 12) + ") { acc = acc + f(i); i = i "
           "+ 1 }");
      line("    acc");
      line("  }");
      return;
    }
    if (R.chance(P.TryPercent)) {
      line("  def " + Name + "(x: Int): Int = {");
      line("    val safe = 1 + (try { if (x == 0) throw new "
           "Throwable(\"zero\") else 100 / x } catch { case t: Throwable "
           "=> 0 })");
      line("    safe + x");
      line("  }");
      return;
    }
    if (R.chance(P.VarargPercent)) {
      line("  def sum" + Name + "(xs: Int*): Int = {");
      line("    var t = 0; var i = 0");
      line("    while (i < xs.length) { t = t + xs(i); i = i + 1 }");
      line("    t");
      line("  }");
      line("  def " + Name + "(x: Int): Int = sum" + Name + "(x, x + 1, "
           "x + 2) + " + num(1, 9));
      return;
    }
    // Tail-recursive accumulator.
    line("  def " + Name + "(x: Int): Int = {");
    line("    def loop(n: Int, acc: Int): Int =");
    line("      if (n <= 0) acc else loop(n - 1, acc + n)");
    line("    loop(x % " + num(5, 40) + ", " + num(0, 5) + ")");
    line("  }");
  }

  Rng &R;
  const WorkloadProfile &P;
  unsigned U;
  std::ostringstream Out;
  unsigned Lines = 0;
  bool HasMixin = false;
};

} // namespace

std::vector<SourceInput>
mpc::generateWorkload(const WorkloadProfile &Profile) {
  Rng Root(Profile.Seed);
  std::vector<SourceInput> Sources;
  unsigned Units = Profile.UnitsHint == 0 ? 1 : Profile.UnitsHint;
  unsigned PerUnit = Profile.TargetLoc / Units;
  for (unsigned U = 0; U < Units; ++U) {
    Rng UnitRng = Root.fork();
    UnitGenerator G(UnitRng, Profile, U);
    SourceInput Src;
    Src.FileName = Profile.Name + "_" + std::to_string(U) + ".scala";
    Src.Text = G.generate(PerUnit);
    Sources.push_back(std::move(Src));
  }
  return Sources;
}

uint64_t mpc::countLines(const std::vector<SourceInput> &Sources) {
  uint64_t N = 0;
  for (const SourceInput &S : Sources)
    for (char C : S.Text)
      if (C == '\n')
        ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Stress families
//===----------------------------------------------------------------------===//

const char *mpc::familyName(Family F) {
  switch (F) {
  case Family::Mixed:
    return "mixed";
  case Family::DeepInheritance:
    return "deep-inheritance";
  case Family::ClosureHeavy:
    return "closure-heavy";
  case Family::MegaMethods:
    return "mega-methods";
  case Family::ManyTinyUnits:
    return "many-tiny-units";
  case Family::Truncated:
    return "truncated";
  case Family::TokenMutation:
    return "token-mutation";
  case Family::UnbalancedDelims:
    return "unbalanced-delims";
  case Family::TypeErrorSeeded:
    return "type-error-seeded";
  }
  return "unknown";
}

bool mpc::familyIsValid(Family F) {
  switch (F) {
  case Family::Mixed:
  case Family::DeepInheritance:
  case Family::ClosureHeavy:
  case Family::MegaMethods:
  case Family::ManyTinyUnits:
    return true;
  default:
    return false;
  }
}

const std::vector<Family> &mpc::allFamilies() {
  static const std::vector<Family> All = {
      Family::Mixed,          Family::DeepInheritance,
      Family::ClosureHeavy,   Family::MegaMethods,
      Family::ManyTinyUnits,  Family::Truncated,
      Family::TokenMutation,  Family::UnbalancedDelims,
      Family::TypeErrorSeeded};
  return All;
}

namespace {

std::string numStr(Rng &R, int Lo, int Hi) {
  return std::to_string(R.range(Lo, Hi));
}

/// The profile-driven generator with an entry point bolted on: one Main
/// unit calls every per-unit Driver object so nothing is dead code.
std::vector<SourceInput> genMixed(uint64_t Seed, double Scale) {
  WorkloadProfile P;
  P.Name = "mixed";
  P.Seed = Seed * 2 + 1; // never zero
  P.TargetLoc = static_cast<unsigned>(240 * Scale) + 60;
  P.UnitsHint = 3;
  Rng R(Seed ^ 0x3a9d'2c41'77e1'0b5fULL);
  P.MatchPercent = static_cast<unsigned>(R.range(40, 85));
  P.LazyPercent = static_cast<unsigned>(R.range(10, 50));
  P.ClosurePercent = static_cast<unsigned>(R.range(20, 60));
  P.TryPercent = static_cast<unsigned>(R.range(5, 35));
  P.VarargPercent = static_cast<unsigned>(R.range(5, 35));
  P.TraitPercent = static_cast<unsigned>(R.range(20, 60));
  std::vector<SourceInput> Sources = generateWorkload(P);

  std::ostringstream Main;
  Main << "object Main {\n";
  Main << "  def main(args: Array[String]): Unit = {\n";
  for (unsigned U = 0; U < P.UnitsHint; ++U)
    Main << "    println(Driver" << U << ".run())\n";
  Main << "  }\n}\n";
  Sources.push_back({"mixed_main.scala", Main.str()});
  return Sources;
}

std::vector<SourceInput> genDeepInheritance(uint64_t Seed, double Scale) {
  Rng R(Seed ^ 0x11c9'84f2'0d3b'66a1ULL);
  unsigned Depth =
      static_cast<unsigned>(R.range(6, 10 + static_cast<int64_t>(20 * Scale)));
  std::ostringstream S;
  S << "class L0(s: Int) {\n";
  S << "  def rank(): Int = 0\n";
  S << "  def weigh(x: Int): Int = x + s\n";
  S << "}\n";
  for (unsigned D = 1; D < Depth; ++D) {
    S << "class L" << D << "(s: Int) extends L" << (D - 1) << "(s) {\n";
    S << "  override def rank(): Int = super.rank() + 1\n";
    S << "  override def weigh(x: Int): Int = super.weigh(x) + "
      << numStr(R, 1, 9) << "\n";
    if (R.chance(30))
      S << "  def own" << D << "(y: Int): Int = y * " << numStr(R, 2, 5)
        << "\n";
    S << "}\n";
  }
  S << "object Main {\n";
  S << "  def main(args: Array[String]): Unit = {\n";
  S << "    val top = new L" << (Depth - 1) << "(" << numStr(R, 1, 7)
    << ")\n";
  S << "    println(top.rank())\n";
  S << "    println(top.weigh(" << numStr(R, 1, 30) << "))\n";
  // Virtual dispatch through a base-typed slot.
  S << "    val mid: L0 = new L" << (Depth / 2) << "(" << numStr(R, 1, 7)
    << ")\n";
  S << "    println(mid.weigh(" << numStr(R, 1, 30) << "))\n";
  S << "    println(mid.rank())\n";
  S << "  }\n}\n";
  return {{"deep_inheritance.scala", S.str()}};
}

std::vector<SourceInput> genClosureHeavy(uint64_t Seed, double Scale) {
  Rng R(Seed ^ 0x7be2'5510'9ac3'44d9ULL);
  unsigned Rounds =
      static_cast<unsigned>(R.range(4, 6 + static_cast<int64_t>(14 * Scale)));
  std::ostringstream S;
  S << "object Main {\n";
  S << "  def fold(f: (Int) => Int, n: Int): Int = {\n";
  S << "    var a = 0\n";
  S << "    var i = 0\n";
  S << "    while (i < n) { a = a + f(i); i = i + 1 }\n";
  S << "    a\n";
  S << "  }\n";
  S << "  def twice(f: (Int) => Int, x: Int): Int = f(f(x))\n";
  S << "  def main(args: Array[String]): Unit = {\n";
  S << "    var acc = " << numStr(R, 1, 9) << "\n";
  for (unsigned I = 0; I < Rounds; ++I) {
    // Lambdas capture immutable snapshots only: closure conversion copies
    // captures into fields, so a captured `var` would change meaning.
    S << "    val snap" << I << " = acc\n";
    switch (R.below(3)) {
    case 0:
      S << "    val f" << I << " = (k: Int) => k * " << numStr(R, 2, 7)
        << " + snap" << I << "\n";
      S << "    acc = acc + fold(f" << I << ", " << numStr(R, 3, 12)
        << ")\n";
      break;
    case 1:
      S << "    val g" << I << " = (k: Int) => k + " << numStr(R, 1, 20)
        << "\n";
      S << "    acc = acc + twice(g" << I << ", acc % " << numStr(R, 7, 40)
        << ")\n";
      break;
    default:
      S << "    val c" << I << " = " << numStr(R, 2, 15) << "\n";
      S << "    acc = acc + fold((k: Int) => k * c" << I << " - snap" << I
        << " % " << numStr(R, 3, 9) << ", " << numStr(R, 2, 8) << ")\n";
      break;
    }
  }
  S << "    println(acc)\n";
  S << "  }\n}\n";
  return {{"closure_heavy.scala", S.str()}};
}

std::vector<SourceInput> genMegaMethods(uint64_t Seed, double Scale) {
  Rng R(Seed ^ 0x5d30'aa17'31fe'c88bULL);
  unsigned Stmts =
      static_cast<unsigned>(R.range(40, 60 + static_cast<int64_t>(240 * Scale)));
  std::ostringstream S;
  S << "class Mega(seed: Int) {\n";
  S << "  def grind(x: Int): Int = {\n";
  S << "    var acc = x + seed\n";
  for (unsigned I = 0; I < Stmts; ++I) {
    switch (R.below(4)) {
    case 0:
      S << "    acc = acc * " << numStr(R, 2, 5) << " + " << numStr(R, 1, 99)
        << "\n";
      break;
    case 1:
      S << "    acc = acc % " << numStr(R, 50, 5000) << " + acc / "
        << numStr(R, 2, 9) << "\n";
      break;
    case 2:
      S << "    if (acc % " << numStr(R, 2, 7) << " == 0) acc = acc + "
        << numStr(R, 1, 50) << " else acc = acc - " << numStr(R, 1, 50)
        << "\n";
      break;
    default:
      S << "    acc = (acc % " << numStr(R, 3, 11) << ") match { case 0 => "
           "acc + "
        << numStr(R, 1, 9) << " case 1 => acc * 2 case _ => acc - 1 }\n";
      break;
    }
  }
  S << "    acc\n";
  S << "  }\n";
  S << "}\n";
  S << "object Main {\n";
  S << "  def main(args: Array[String]): Unit = {\n";
  S << "    val m = new Mega(" << numStr(R, 1, 9) << ")\n";
  S << "    println(m.grind(" << numStr(R, 1, 100) << "))\n";
  S << "    println(m.grind(" << numStr(R, 100, 10000) << "))\n";
  S << "  }\n}\n";
  return {{"mega_methods.scala", S.str()}};
}

std::vector<SourceInput> genManyTinyUnits(uint64_t Seed, double Scale) {
  Rng R(Seed ^ 0xf00d'9e12'4cc8'71a3ULL);
  unsigned Units =
      static_cast<unsigned>(R.range(8, 12 + static_cast<int64_t>(28 * Scale)));
  std::vector<SourceInput> Sources;
  for (unsigned U = 0; U < Units; ++U) {
    std::ostringstream S;
    S << "class Tiny" << U << "(s: Int) {\n";
    S << "  val off: Int = " << numStr(R, 1, 40) << "\n";
    S << "  def f(x: Int): Int = x * " << numStr(R, 2, 9) << " + s + off\n";
    S << "}\n";
    Sources.push_back({"tiny_" + std::to_string(U) + ".scala", S.str()});
  }
  std::ostringstream Main;
  Main << "object Main {\n";
  Main << "  def main(args: Array[String]): Unit = {\n";
  Main << "    var total = 0\n";
  for (unsigned U = 0; U < Units; ++U)
    Main << "    total = total + new Tiny" << U << "("
         << numStr(R, 1, 9) << ").f(" << numStr(R, 1, 30) << ")\n";
  Main << "    println(total)\n";
  Main << "  }\n}\n";
  Sources.push_back({"tiny_main.scala", Main.str()});
  return Sources;
}

/// Invalid families corrupt the deterministic Mixed base for the same
/// seed, so every mutation applies to realistic, feature-rich input.

std::vector<SourceInput> genTruncated(uint64_t Seed, double Scale) {
  std::vector<SourceInput> Sources = genMixed(Seed, Scale);
  Rng R(Seed ^ 0x8125'cd09'66b7'3e4fULL);
  size_t Victim = R.below(Sources.size());
  std::string &Text = Sources[Victim].Text;
  if (Text.size() > 8) {
    size_t Cut = static_cast<size_t>(
        R.range(static_cast<int64_t>(Text.size() / 8),
                static_cast<int64_t>(Text.size() - 1)));
    Text.resize(Cut);
  }
  return Sources;
}

std::vector<SourceInput> genTokenMutation(uint64_t Seed, double Scale) {
  std::vector<SourceInput> Sources = genMixed(Seed, Scale);
  Rng R(Seed ^ 0x93b1'07dd'5a26'f081ULL);
  static const char *Vocab[] = {"def",   "val",  "class", "match", "=>",
                                "=",     "{",    "}",     "(",     ")",
                                "if",    "else", "42",    "while", "case",
                                "extends", "x",  ":",     "Int",   "new"};
  std::string &Text = Sources[R.below(Sources.size())].Text;
  // Split into whitespace-delimited words, mutate a few, and rejoin.
  std::vector<std::string> Words;
  std::string Cur;
  for (char C : Text) {
    if (C == ' ' || C == '\n') {
      if (!Cur.empty())
        Words.push_back(Cur);
      Cur.clear();
      Words.push_back(std::string(1, C)); // keep separators as words
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Words.push_back(Cur);
  unsigned Mutations = static_cast<unsigned>(R.range(3, 10));
  for (unsigned M = 0; M < Mutations && !Words.empty(); ++M) {
    size_t I = R.below(Words.size());
    switch (R.below(3)) {
    case 0: // replace
      Words[I] = R.pick(Vocab);
      break;
    case 1: // delete
      Words[I].clear();
      break;
    default: // duplicate
      Words[I] = Words[I] + " " + Words[I];
      break;
    }
  }
  std::string Mutated;
  for (const std::string &W : Words)
    Mutated += W;
  Text = std::move(Mutated);
  return Sources;
}

std::vector<SourceInput> genUnbalancedDelims(uint64_t Seed, double Scale) {
  std::vector<SourceInput> Sources = genMixed(Seed, Scale);
  Rng R(Seed ^ 0x2c68'f3ba'e901'557dULL);
  static const char Delims[] = {'{', '}', '(', ')', '[', ']'};
  std::string &Text = Sources[R.below(Sources.size())].Text;
  unsigned Edits = static_cast<unsigned>(R.range(2, 6));
  for (unsigned E = 0; E < Edits && !Text.empty(); ++E) {
    size_t I = R.below(Text.size());
    bool IsDelim = Text[I] == '{' || Text[I] == '}' || Text[I] == '(' ||
                   Text[I] == ')' || Text[I] == '[' || Text[I] == ']';
    if (IsDelim)
      Text.erase(I, 1); // drop an existing delimiter
    else
      Text.insert(I, 1, Delims[R.below(6)]); // inject a stray one
  }
  return Sources;
}

std::vector<SourceInput> genTypeErrorSeeded(uint64_t Seed, double Scale) {
  std::vector<SourceInput> Sources = genMixed(Seed, Scale);
  Rng R(Seed ^ 0x6f1a'8840'bd92'c5e7ULL);
  std::ostringstream S;
  S << "class Seeded" << R.below(100) << " {\n";
  unsigned Errors = static_cast<unsigned>(R.range(1, 4));
  for (unsigned E = 0; E < Errors; ++E) {
    switch (R.below(5)) {
    case 0:
      S << "  val a" << E << ": Unknown" << R.below(50) << " = 1\n";
      break;
    case 1:
      S << "  def f" << E << "(x: Int): Int = missing" << R.below(50)
        << " + x\n";
      break;
    case 2:
      S << "  def g" << E << "(x: Int): Int = x\n";
      S << "  def h" << E << "(): Int = g" << E << "(1, 2)\n";
      break;
    case 3:
      S << "  val b" << E << ": Int = \"not an int\"\n";
      break;
    default:
      S << "  def k" << E << "(): Int = new NoSuchClass" << R.below(50)
        << "(1)\n";
      break;
    }
  }
  S << "}\n";
  Sources.push_back({"type_error_seeded.scala", S.str()});
  return Sources;
}

} // namespace

std::vector<SourceInput> mpc::generateFamily(Family F, uint64_t Seed,
                                             double Scale) {
  switch (F) {
  case Family::Mixed:
    return genMixed(Seed, Scale);
  case Family::DeepInheritance:
    return genDeepInheritance(Seed, Scale);
  case Family::ClosureHeavy:
    return genClosureHeavy(Seed, Scale);
  case Family::MegaMethods:
    return genMegaMethods(Seed, Scale);
  case Family::ManyTinyUnits:
    return genManyTinyUnits(Seed, Scale);
  case Family::Truncated:
    return genTruncated(Seed, Scale);
  case Family::TokenMutation:
    return genTokenMutation(Seed, Scale);
  case Family::UnbalancedDelims:
    return genUnbalancedDelims(Seed, Scale);
  case Family::TypeErrorSeeded:
    return genTypeErrorSeeded(Seed, Scale);
  }
  return {};
}
