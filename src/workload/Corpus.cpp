#include "workload/Corpus.h"

using namespace mpc;

namespace {
std::vector<CorpusProgram> buildCorpus() {
  std::vector<CorpusProgram> Programs;

  Programs.push_back(
      {"listing1",
       R"(
trait Interface {
  def interfaceMethod: Int = 1
  lazy val interfaceField: Int = 2
}

class Increment(by: Int) extends Interface {
  def incOrZero(b: Any): Int = b match {
    case b: Int => b + by
    case _ => 0
  }
}

object Main {
  def main(args: Array[String]): Unit = {
    val inc = new Increment(10)
    println(inc.incOrZero(5))
    println(inc.incOrZero("five"))
    println(inc.interfaceMethod)
    println(inc.interfaceField)
  }
}
)",
       "15\n0\n1\n2\n",
       "PatternMatcher, LazyVals, Mixin, FirstTransform"});

  Programs.push_back(
      {"tailrec_factorial",
       R"(
object Main {
  def fact(n: Int, acc: Int): Int =
    if (n <= 1) acc else fact(n - 1, acc * n)
  def fib(n: Int): Int =
    if (n < 2) n else fib(n - 1) + fib(n - 2)
  def main(args: Array[String]): Unit = {
    println(fact(10, 1))
    println(fib(15))
    var total = 0
    var i = 0
    while (i < 100) { total = total + i; i = i + 1 }
    println(total)
  }
}
)",
       "3628800\n610\n4950\n",
       "TailRec, Uncurry, while loops"});

  Programs.push_back(
      {"patterns_generic",
       R"(
trait Shape
case class Circle(r: Int) extends Shape
case class Rect(w: Int, h: Int) extends Shape
case class Box[T](value: T)

object Main {
  def area(s: Shape): Int = s match {
    case Circle(r) => 3 * r * r
    case Rect(w, h) => w * h
  }
  def describe(x: Any): String = x match {
    case 0 => "zero"
    case n: Int => "int " + n
    case s: String => "str " + s
    case Circle(r) if r > 10 => "big circle"
    case Circle(r) => "circle " + r
    case _ => "other"
  }
  def unbox(b: Box[Int]): Int = b match {
    case Box(v) => v
  }
  def main(args: Array[String]): Unit = {
    println(area(Circle(2)))
    println(area(Rect(3, 4)))
    println(describe(0))
    println(describe(42))
    println(describe("hi"))
    println(describe(Circle(20)))
    println(describe(Circle(3)))
    println(describe(true))
    println(unbox(Box(7)))
    println(Circle(5) == Circle(5))
    println(Circle(5) == Circle(6))
  }
}
)",
       "12\n12\nzero\nint 42\nstr hi\nbig circle\ncircle 3\nother\n7\n"
       "true\nfalse\n",
       "PatternMatcher (guards, literals, generics), InterceptedMethods"});

  Programs.push_back(
      {"traits_lazy",
       R"(
trait Counter {
  def start: Int = 100
  lazy val expensive: Int = { println("computing"); start + 1 }
  def doubled: Int = expensive + expensive
}

class Basic extends Counter
class Shifted extends Counter {
  override def start: Int = 200
}

object Main {
  def main(args: Array[String]): Unit = {
    val b = new Basic
    println(b.doubled)
    val s = new Shifted
    println(s.expensive)
    println(s.expensive)
  }
}
)",
       "computing\n202\ncomputing\n201\n201\n",
       "Mixin, LazyVals, Memoize, Getters"});

  Programs.push_back(
      {"closures_captures",
       R"(
object Main {
  def applyTwice(f: (Int) => Int, x: Int): Int = f(f(x))
  def makeAdder(n: Int): (Int) => Int = (x: Int) => x + n
  def sumWith(limit: Int): Int = {
    var acc = 0
    var i = 0
    val bump = (k: Int) => { acc = acc + k; () }
    while (i < limit) { bump(i); i = i + 1 }
    acc
  }
  def findFirst(xs: Array[Int], p: (Int) => Boolean): Int = {
    var i = 0
    while (i < xs.length) {
      if (p(xs(i))) return xs(i)
      i = i + 1
    }
    0 - 1
  }
  def main(args: Array[String]): Unit = {
    println(applyTwice((x: Int) => x * 3, 2))
    val add5 = makeAdder(5)
    println(add5(10))
    println(sumWith(10))
    println(findFirst(Array(3, 8, 11, 20), (x: Int) => x > 9))
  }
}
)",
       "18\n15\n45\n11\n",
       "FunctionValues, CapturedVars, NonLocalReturns, LambdaLift"});

  Programs.push_back(
      {"try_lift",
       R"(
object Main {
  def risky(n: Int): Int =
    if (n < 0) throw new Throwable("negative") else n * 2
  def compute(n: Int): Int = {
    // try as a subexpression: LiftTry moves it into its own method.
    val x = 1 + (try risky(n) catch { case t: Throwable => 0 })
    x
  }
  def withFinally(n: Int): Int = {
    try {
      if (n == 0) throw new Throwable("zero")
      n
    } catch {
      case t: Throwable => 0 - 1
    } finally {
      println("done")
    }
  }
  def main(args: Array[String]): Unit = {
    println(compute(5))
    println(compute(0 - 3))
    println(withFinally(7))
    println(withFinally(0))
  }
}
)",
       "11\n1\ndone\n7\ndone\n-1\n",
       "LiftTry (prepares!), try/catch/finally, NonLocalReturns"});

  Programs.push_back(
      {"varargs_arrays",
       R"(
object Main {
  def sum(xs: Int*): Int = {
    var total = 0
    var i = 0
    while (i < xs.length) { total = total + xs(i); i = i + 1 }
    total
  }
  def join(sep: String, parts: String*): String = {
    var out = ""
    var i = 0
    while (i < parts.length) {
      if (i > 0) out = out + sep
      out = out + parts(i)
      i = i + 1
    }
    out
  }
  def main(args: Array[String]): Unit = {
    println(sum())
    println(sum(1, 2, 3, 4))
    println(join("-", "a", "b", "c"))
    val arr = new Array[Int](3)
    arr(0) = 10
    arr(2) = 30
    println(arr(0) + arr(1) + arr(2))
    println(Array(5, 6, 7).length)
  }
}
)",
       "0\n10\na-b-c\n40\n3\n",
       "ElimRepeated, array intrinsics"});

  Programs.push_back(
      {"unions_split",
       R"(
trait Pet { def name: String = "pet" }
class Dog extends Pet {
  override def name: String = "dog"
  def fetch(): String = "ball"
}
class Cat extends Pet {
  override def name: String = "cat"
  def nap(): Int = 9
}

object Main {
  def pick(flag: Boolean, d: Dog, c: Cat): Dog | Cat =
    if (flag) d else c
  def main(args: Array[String]): Unit = {
    val a = pick(true, new Dog, new Cat)
    println(a.name)
    val b = pick(false, new Dog, new Cat)
    println(b.name)
  }
}
)",
       "dog\ncat\n",
       "Splitter (union selections), Erasure"});

  Programs.push_back(
      {"byname_and_defaults",
       R"(
object Main {
  var evaluations: Int = 0
  def tick(): Int = {
    evaluations = evaluations + 1
    evaluations
  }
  def unless(cond: Boolean, body: => Int): Int =
    if (cond) 0 else body
  def main(args: Array[String]): Unit = {
    println(unless(true, tick()))
    println(evaluations)
    println(unless(false, tick()))
    println(evaluations)
  }
}
)",
       "0\n0\n1\n1\n",
       "ElimByName (thunking), evaluation-count semantics"});

  Programs.push_back(
      {"nested_outer",
       R"(
class Outer(base: Int) {
  val offset: Int = base * 10
  class Inner(x: Int) {
    def total(): Int = offset + x
  }
  def makeInner(x: Int): Int = {
    val inner = new Inner(x)
    inner.total()
  }
}

object Main {
  def main(args: Array[String]): Unit = {
    val o = new Outer(3)
    println(o.makeInner(4))
    println(o.makeInner(9))
  }
}
)",
       "34\n39\n",
       "ExplicitOuter, Flatten, Constructors"});

  Programs.push_back(
      {"local_defs",
       R"(
object Main {
  def compute(n: Int): Int = {
    val base = n * 2
    def helper(k: Int): Int = base + k
    def twice(k: Int): Int = helper(helper(k))
    twice(5)
  }
  def curried(a: Int)(b: Int)(c: Int): Int = a * 100 + b * 10 + c
  def main(args: Array[String]): Unit = {
    println(compute(10))
    println(curried(1)(2)(3))
  }
}
)",
       "45\n123\n",
       "LambdaLift (transitive free vars), Uncurry"});

  Programs.push_back(
      {"classof_and_super",
       R"(
class Animal(kind: String) {
  def describe(): String = "animal:" + kind
}
class Bird extends Animal("bird") {
  override def describe(): String = "flying " + super.describe()
}

object Main {
  def main(args: Array[String]): Unit = {
    println(new Bird().describe())
    println(classOf[Bird] == classOf[Bird])
  }
}
)",
       "flying animal:bird\ntrue\n",
       "ClassOf, super calls, constructors with parent args"});

  return Programs;
}
} // namespace

const std::vector<CorpusProgram> &mpc::corpusPrograms() {
  static std::vector<CorpusProgram> Programs = buildCorpus();
  return Programs;
}

const CorpusProgram *mpc::findCorpusProgram(const std::string &Name) {
  for (const CorpusProgram &P : corpusPrograms())
    if (P.Name == Name)
      return &P;
  return nullptr;
}
