//===----------------------------------------------------------------------===//
///
/// \file
/// Canned MiniScala programs with known outputs. Each exercises specific
/// miniphases; the integration tests compile every program with both the
/// fused and the unfused pipeline and require identical behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_WORKLOAD_CORPUS_H
#define MPC_WORKLOAD_CORPUS_H

#include <string>
#include <vector>

namespace mpc {

/// One runnable corpus program.
struct CorpusProgram {
  std::string Name;
  std::string Source;
  std::string ExpectedOutput;
  /// Phases this program primarily exercises (documentation).
  std::string Exercises;
};

/// All corpus programs.
const std::vector<CorpusProgram> &corpusPrograms();

/// Looks one up by name (null when absent).
const CorpusProgram *findCorpusProgram(const std::string &Name);

} // namespace mpc

#endif // MPC_WORKLOAD_CORPUS_H
