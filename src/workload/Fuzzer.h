//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic full-pipeline fuzzing harness. Feeds seeded generator
/// families (valid and adversarial) through lex -> parse -> type ->
/// transforms -> interpreter and checks the three totality properties the
/// compile service depends on:
///
///   1. no input crashes the compiler — invalid programs produce
///      diagnostics, never aborts or unhandled exceptions;
///   2. diagnostics and program output are deterministic — two cold runs
///      of the same seed are byte-identical;
///   3. context recycling is clean — compiling on a warm, reset() -recycled
///      context (including right after an error-laden job) is
///      byte-identical to a cold context.
///
/// Every case is reproducible from (family, seed, scale) alone; a failure
/// report names all three.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_WORKLOAD_FUZZER_H
#define MPC_WORKLOAD_FUZZER_H

#include "core/CompilerContext.h"
#include "workload/ProgramGenerator.h"

#include <string>
#include <vector>

namespace mpc {

/// One fuzz input: a (family, seed) pair at a given size scale.
struct FuzzCase {
  Family F = Family::Mixed;
  uint64_t Seed = 0;
  double Scale = 0.25;
};

/// What one compile (+ run, when clean) produced. All fields are
/// deterministic functions of the input program.
struct FuzzOutcome {
  bool Crashed = false;   // an exception escaped the pipeline
  bool HasErrors = false; // frontend reported diagnostics
  std::string DiagText;   // rendered diagnostics, stable format
  std::string Output;     // interpreter stdout (clean compiles only)
  bool Uncaught = false;  // interpreter uncaught MiniScala exception
  std::string Error;      // crash / uncaught-exception message

  bool operator==(const FuzzOutcome &O) const {
    return Crashed == O.Crashed && HasErrors == O.HasErrors &&
           DiagText == O.DiagText && Output == O.Output &&
           Uncaught == O.Uncaught && Error == O.Error;
  }
};

/// One property violation, with enough context to replay the case.
struct FuzzViolation {
  FuzzCase Case;
  std::string Kind; // "crash" | "valid-family-rejected" |
                    // "nondeterministic" | "warm-cold-mismatch"
  std::string Detail;
};

/// Campaign tallies.
struct FuzzStats {
  uint64_t CasesRun = 0;
  uint64_t CleanCompiles = 0;
  uint64_t ErrorCompiles = 0;
  uint64_t DiagsSeen = 0;
  std::vector<FuzzViolation> Violations;

  bool ok() const { return Violations.empty(); }
};

/// Renders diagnostics in the stable "file:line:col: severity: msg" form
/// used for byte-comparisons.
std::string renderDiags(const DiagnosticEngine &Diags);

/// Compiles \p Sources on \p Comp with the standard fused pipeline and,
/// when the compile is clean and has an entry point, interprets it.
/// Exceptions are captured into the outcome instead of escaping. The
/// caller owns context hygiene (reset() between jobs); all pipeline
/// outputs are destroyed before this returns, so a reset() directly after
/// is legal.
FuzzOutcome runPipelineOnce(CompilerContext &Comp,
                            std::vector<SourceInput> Sources);

/// Runs one case's full check triple: cold compile, identical cold rerun
/// (determinism), and a compile on \p WarmComp — which is reset() after
/// use — compared byte-for-byte against the cold outcome. Appends any
/// violations to \p Stats and returns the cold outcome.
FuzzOutcome runFuzzCase(CompilerContext &WarmComp, const FuzzCase &C,
                        FuzzStats &Stats);

/// Full campaign over \p Families x [StartSeed, StartSeed + NumSeeds).
/// One warm context lives across the whole campaign, recycled between
/// cases, so error-path state leaks surface as warm/cold mismatches in
/// later cases.
FuzzStats runFuzzCampaign(const std::vector<Family> &Families,
                          uint64_t StartSeed, uint64_t NumSeeds,
                          double Scale);

} // namespace mpc

#endif // MPC_WORKLOAD_FUZZER_H
