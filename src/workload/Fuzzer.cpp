#include "workload/Fuzzer.h"

#include "backend/Execution.h"
#include "driver/Driver.h"

#include <exception>

using namespace mpc;

std::string mpc::renderDiags(const DiagnosticEngine &Diags) {
  std::string S;
  for (const Diagnostic &D : Diags.all()) {
    if (D.Loc.FileId < Diags.fileCount())
      S += Diags.fileName(D.Loc.FileId);
    else
      S += "<unknown>";
    S += ":" + std::to_string(D.Loc.Line) + ":" + std::to_string(D.Loc.Col);
    switch (D.Severity) {
    case DiagSeverity::Error:
      S += ": error: ";
      break;
    case DiagSeverity::Warning:
      S += ": warning: ";
      break;
    case DiagSeverity::Note:
      S += ": note: ";
      break;
    }
    S += D.Message;
    S += '\n';
  }
  return S;
}

FuzzOutcome mpc::runPipelineOnce(CompilerContext &Comp,
                                 std::vector<SourceInput> Sources) {
  FuzzOutcome O;
  try {
    // Scope the output so trees and bytecode die before the caller's
    // reset() (which asserts the managed heap is empty).
    CompileOutput Out =
        compileProgram(Comp, std::move(Sources), PipelineKind::StandardFused);
    O.HasErrors = Comp.diags().hasErrors();
    O.DiagText = renderDiags(Comp.diags());
    if (!O.HasErrors && !Out.EntryPoints.empty()) {
      // Engine selection flows from the context's options, so the same
      // fuzz harness exercises the tree-walker or the bytecode VM.
      ExecResult R =
          executeProgram(Comp, Out.Units, Out.Prog, Out.EntryPoints.front(),
                         execOptionsFrom(Comp));
      O.Output = R.Output;
      O.Uncaught = R.Uncaught;
      if (R.Uncaught)
        O.Error = R.Error;
    }
  } catch (const std::exception &E) {
    O.Crashed = true;
    O.Error = E.what();
  } catch (...) {
    O.Crashed = true;
    O.Error = "non-standard exception";
  }
  return O;
}

namespace {

std::string caseLabel(const FuzzCase &C) {
  return std::string(familyName(C.F)) + " seed=" + std::to_string(C.Seed) +
         " scale=" + std::to_string(C.Scale);
}

FuzzOutcome runCold(const FuzzCase &C) {
  CompilerContext Comp;
  return runPipelineOnce(Comp, generateFamily(C.F, C.Seed, C.Scale));
}

std::string diffOutcomes(const FuzzOutcome &A, const FuzzOutcome &B) {
  std::string D;
  if (A.Crashed != B.Crashed)
    D += "crashed " + std::to_string(A.Crashed) + " vs " +
         std::to_string(B.Crashed) + "; ";
  if (A.HasErrors != B.HasErrors)
    D += "hasErrors " + std::to_string(A.HasErrors) + " vs " +
         std::to_string(B.HasErrors) + "; ";
  if (A.DiagText != B.DiagText)
    D += "diagnostics differ:\n--- first\n" + A.DiagText +
         "--- second\n" + B.DiagText;
  if (A.Output != B.Output)
    D += "program output differs:\n--- first\n" + A.Output +
         "--- second\n" + B.Output;
  if (A.Uncaught != B.Uncaught || A.Error != B.Error)
    D += "error state differs: '" + A.Error + "' vs '" + B.Error + "'; ";
  return D;
}

} // namespace

FuzzOutcome mpc::runFuzzCase(CompilerContext &WarmComp, const FuzzCase &C,
                             FuzzStats &Stats) {
  ++Stats.CasesRun;
  FuzzOutcome Cold = runCold(C);

  if (Cold.Crashed)
    Stats.Violations.push_back(
        {C, "crash", caseLabel(C) + ": " + Cold.Error});
  if (Cold.HasErrors)
    ++Stats.ErrorCompiles;
  else
    ++Stats.CleanCompiles;
  for (char Ch : Cold.DiagText)
    if (Ch == '\n')
      ++Stats.DiagsSeen;

  if (familyIsValid(C.F)) {
    if (Cold.HasErrors)
      Stats.Violations.push_back({C, "valid-family-rejected",
                                  caseLabel(C) + ":\n" + Cold.DiagText});
    else if (Cold.Uncaught)
      Stats.Violations.push_back({C, "valid-family-rejected",
                                  caseLabel(C) +
                                      ": uncaught exception: " + Cold.Error});
    else if (Cold.Output.empty())
      Stats.Violations.push_back(
          {C, "valid-family-rejected",
           caseLabel(C) + ": produced no program output"});
  }

  // Determinism: a second cold run must be byte-identical.
  FuzzOutcome Cold2 = runCold(C);
  if (!(Cold == Cold2))
    Stats.Violations.push_back(
        {C, "nondeterministic", caseLabel(C) + ": " +
                                    diffOutcomes(Cold, Cold2)});

  // Warm reuse: the long-lived recycled context must match cold exactly,
  // including (especially) right after earlier error-laden cases.
  FuzzOutcome Warm =
      runPipelineOnce(WarmComp, generateFamily(C.F, C.Seed, C.Scale));
  WarmComp.reset();
  if (!(Cold == Warm))
    Stats.Violations.push_back(
        {C, "warm-cold-mismatch", caseLabel(C) + ": " +
                                      diffOutcomes(Cold, Warm)});
  return Cold;
}

FuzzStats mpc::runFuzzCampaign(const std::vector<Family> &Families,
                               uint64_t StartSeed, uint64_t NumSeeds,
                               double Scale) {
  FuzzStats Stats;
  CompilerContext WarmComp;
  for (uint64_t S = 0; S < NumSeeds; ++S)
    for (Family F : Families)
      runFuzzCase(WarmComp, {F, StartSeed + S, Scale}, Stats);
  return Stats;
}
