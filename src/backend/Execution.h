//===----------------------------------------------------------------------===//
///
/// \file
/// One entry point for "run the compiled program": dispatches to the
/// definitional tree interpreter or to the link-and-execute bytecode VM
/// according to ExecOptions (defaulting to CompilerOptions::Engine).
/// Driver-level callers (fuzzer, examples, service wiring) go through
/// here so flipping the engine is one option, not a code change.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_BACKEND_EXECUTION_H
#define MPC_BACKEND_EXECUTION_H

#include "backend/Bytecode.h"
#include "backend/Interpreter.h"

namespace mpc {

/// Execution knobs. Engine defaults to the context's option so services
/// configure it once per job.
struct ExecOptions {
  ExecEngine Engine = ExecEngine::TreeWalk;
  uint64_t StepLimit = 50'000'000;
  /// VM only: fuse the measured superinstruction pairs at link time.
  bool Superinstructions = true;
};

/// Runs `main(args)` on \p EntryPoint with the selected engine. The
/// tree-walker executes \p Units; the VM links and executes \p Prog.
/// Both report through the same ExecResult shape (output, uncaught flag,
/// error text) and both honor the step limit and the context's
/// CancelToken.
ExecResult executeProgram(CompilerContext &Comp,
                          const std::vector<CompilationUnit> &Units,
                          const Program &Prog, Symbol *EntryPoint,
                          const ExecOptions &Opts = {},
                          const std::vector<std::string> &Args = {});

/// Convenience: ExecOptions prefilled from \p Comp's options().
ExecOptions execOptionsFrom(const CompilerContext &Comp);

} // namespace mpc

#endif // MPC_BACKEND_EXECUTION_H
