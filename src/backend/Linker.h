//===----------------------------------------------------------------------===//
///
/// \file
/// The link/resolve pass between CodeGen's symbolic bytecode and the VM.
/// Symbolic operands become dense indices so the execution loop never
/// touches a map:
///
///   * Load/Store/param Symbols  -> frame slot numbers (slot 0 = this,
///     then params, then locals in first-use order),
///   * GetField/PutField Symbols -> per-class object-layout slots behind
///     a monomorphic inline cache (FieldSite),
///   * InvokeVirt Symbols        -> per-class method tables keyed by name
///     ordinal behind a monomorphic inline cache (CallSite),
///   * InvokeSuper               -> the target method itself (resolved
///     statically from Instr::SuperCls),
///   * intrinsic Symbols (prim ops, println/print, Runtime.equals,
///     String.length, Object ==/equals/!=/toString/getClass) -> dedicated
///     opcodes, mirroring the tree interpreter's dispatch order exactly.
///
/// The linker also fuses measured hot opcode pairs into superinstructions
/// (never across a jump target or handler boundary) and computes, via the
/// verifier, each method's operand-stack bound and the depth every
/// exception handler unwinds to.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_BACKEND_LINKER_H
#define MPC_BACKEND_LINKER_H

#include "backend/Bytecode.h"
#include "support/FlatPtrMap.h"

#include <deque>
#include <memory>

namespace mpc {

class CompilerContext;
struct LClass;
struct LMethod;

/// Linked opcodes. The base set mirrors Op with operands resolved; the
/// trailing block holds the measured superinstructions (see the fusion
/// table in Linker.cpp and the README for the measurements that chose
/// them).
enum class LOp : uint8_t {
  Nop,
  ConstUnit,
  ConstBool,   // Imm.I (0/1)
  ConstInt,    // Imm.I
  ConstDouble, // Imm.D
  ConstStr,    // Imm.P = const std::string* (pooled)
  ConstNull,
  ConstClass, // Imm.P = const Type*
  LoadSlot,   // A = slot
  StoreSlot,  // A = slot
  LoadSelfField,  // A = field site (implicit receiver = slot 0)
  StoreSelfField, // A = field site
  GetField,       // A = field site
  PutField,       // A = field site
  GetModule,      // A = class index
  NewObject,      // A = class index, B = argc
  NewBuiltin,     // A = class index, B = argc (Throwable/Ref-box shapes)
  InvokeVirt,     // A = call site, B = argc
  InvokeSuperM,   // Imm.P = const LMethod*, B = argc
  InvokeSuperUnit,// B = argc (builtin or absent super ctor: pop, push unit)
  InstanceOf,     // Imm.P = const Type*
  CheckCast,      // Imm.P = const Type*
  NewArray,       // Imm.P = const Type* (elem), B = DefaultKind
  ArrayLoad,
  ArrayStore,
  ArrayLength,
  ArrUpdateV, // Array.update via invoke: store, then push unit
  Add, Sub, Mul, Div, Rem, Neg,
  CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe,
  Not,
  Concat,
  PrimOpEager, // A = PrimOpKind, B = argc (&&/|| survivors: eager, like
               // the interpreter's primOp on an already-evaluated pair)
  StrLen,
  RuntimeEq, // pops [module, a, b]
  Println,   // pops [module, a]
  Print,
  ValueEq, // Object.== / equals on arbitrary values
  ValueNe,
  ValueToString,
  GetClassV,
  Jump,        // A = target
  JumpIfFalse, // A = target
  AThrow,
  ReturnValue,
  Pop,
  Dup,
  LinkError, // Imm.P = const std::string* (message); raises a VM error
  // Superinstructions (fused pairs; picked from measured pair counts).
  LoadLoad,     // A = slot1, B = slot2
  LoadConstInt, // A = slot, Imm.I
  LoadGetField, // B = slot, A = field site
  CmpLtJF, CmpLeJF, CmpGtJF, CmpGeJF, CmpEqJF, CmpNeJF, // A = target
  // Second-order fusions (the fuse pass runs twice, so pairs whose
  // first half is itself a superinstruction can fuse again). All picked
  // from measured dynamic pair counts — see README "Bytecode VM".
  AddStore, SubStore, // A = store slot (arith result straight to a local)
  LoadConstAdd, LoadConstSub, LoadConstMul, LoadConstDiv,
  LoadConstRem, // A = load slot, Imm.I = int constant
  NumLOps,
};

/// Printable opcode name (stats keys, bench output).
const char *lopName(LOp Code);

/// One linked instruction: 24 bytes, operands inline or as indices into
/// the per-program side tables. H caches the dispatch label address for
/// direct threading (filled by the VM on first execution).
struct LInstr {
  const void *H = nullptr;
  union {
    int64_t I;
    double D;
    const void *P;
  } Imm = {0};
  uint32_t A = 0;
  uint16_t B = 0;
  LOp Code = LOp::Nop;
  uint8_t Pad = 0;
};
static_assert(sizeof(LInstr) == 24, "keep the dispatch loop's stride flat");

/// Monomorphic inline cache for a virtual call site.
struct CallSite {
  Symbol *Sym = nullptr;
  uint32_t NameOrd = 0;
  /// Routing class of the *name* for non-object receivers (the
  /// interpreter compares name text; we compare once at link time).
  enum NameClass : uint8_t { Plain, IsToString, IsEquals, IsBangEq };
  NameClass NC = Plain;
  const LClass *CachedCls = nullptr;
  const LMethod *CachedM = nullptr;
};

/// Monomorphic inline cache for a field access site.
struct FieldSite {
  Symbol *Sym = nullptr;
  uint32_t NameOrd = 0;
  const LClass *CachedCls = nullptr;
  uint32_t CachedSlot = 0;
};

/// Default value of a slot/array element, precomputed from its type.
enum class DefaultKind : uint8_t { Null, Int0, False, Dbl0, Unit };

/// One linked exception-handler entry.
struct LHandler {
  uint32_t Start = 0;
  uint32_t End = 0;
  uint32_t Entry = 0;
  const Type *CatchType = nullptr;
  bool IsFinally = false;
  /// Operand depth at Start: an unwind cuts the stack back here before
  /// pushing the in-flight exception (try can sit mid-expression).
  uint32_t Depth = 0;
};

/// One linked method.
struct LMethod {
  Symbol *Sym = nullptr;
  LClass *Owner = nullptr;
  uint32_t NumParams = 0;
  uint32_t NumSlots = 0; // this + params + locals
  uint32_t MaxStack = 0;
  std::vector<LInstr> Code;
  std::vector<LHandler> Handlers;
  /// DefaultKind per local slot (index 0 = slot NumParams+1).
  std::vector<DefaultKind> LocalDefaults;
};

/// One linked class: object layout, method table, metadata the VM's
/// equality/show/conforms mirrors need.
struct LClass {
  ClassSymbol *Cls = nullptr;
  uint32_t Index = 0; // position in LinkedProgram::Classes
  bool Builtin = false;
  bool IsCase = false;
  bool IsThrowable = false; // derives from Throwable
  /// Object layout, interpreter InitFields order: own declared fields
  /// first, then parents depth-first (first occurrence wins).
  std::vector<Symbol *> FieldSyms;
  std::vector<DefaultKind> FieldDefaults;
  FlatPtrMap<Symbol *, uint32_t> FieldSlotBySym; // sym -> slot + 1
  FlatOrdMap<uint32_t> FieldSlotByName;          // name ord -> slot + 1
  /// Virtual method table: name ordinal -> implementation, subclass
  /// first over the non-trait super chain (findMethod's walk, hoisted
  /// to link time).
  FlatOrdMap<LMethod *> Methods;
  LMethod *Ctor = nullptr; // declared ctor of this class only
  /// Per caseFields() entry: layout slot, or -1 (missing -> null).
  std::vector<int32_t> CaseFieldSlots;
  /// Layout slot holding the Throwable message, or -1.
  int32_t MsgSlot = -1;
};

/// Linking knobs.
struct LinkOptions {
  /// Fuse the measured superinstruction pairs (off to measure base-op
  /// pair frequencies or to differential-test the fusion itself).
  bool Superinstructions = true;
};

/// The linked program: everything the VM executes, with stable addresses
/// (deques/unique_ptrs) so inline caches and Imm.P pointers stay valid.
struct LinkedProgram {
  std::vector<std::unique_ptr<LClass>> Classes;
  std::vector<std::unique_ptr<LMethod>> Methods;
  FlatPtrMap<ClassSymbol *, LClass *> ClassBySym;
  std::deque<std::string> StrPool; // ConstStr + LinkError payloads
  std::vector<CallSite> CallSites;
  std::vector<FieldSite> FieldSites;
  /// Verifier findings for methods that failed to link (the VM refuses
  /// to run a program with a non-empty list).
  std::vector<VerifyFailure> Failures;
  /// True once a VM pass has filled LInstr::H with dispatch labels.
  bool Threaded = false;

  uint64_t totalInstructions() const {
    uint64_t N = 0;
    for (const auto &M : Methods)
      N += M->Code.size();
    return N;
  }
};

/// Links \p Prog against the context's symbol/type world. Verifies every
/// method first (failures land in LinkedProgram::Failures) and bumps
/// backend.link.* counters in the context's stats.
LinkedProgram linkProgram(const Program &Prog, CompilerContext &Comp,
                          const LinkOptions &Opts = {});

} // namespace mpc

#endif // MPC_BACKEND_LINKER_H
