#include "backend/Execution.h"

#include "backend/Linker.h"
#include "backend/VM.h"

using namespace mpc;

ExecOptions mpc::execOptionsFrom(const CompilerContext &Comp) {
  ExecOptions Opts;
  Opts.Engine = Comp.options().Engine;
  return Opts;
}

ExecResult mpc::executeProgram(CompilerContext &Comp,
                               const std::vector<CompilationUnit> &Units,
                               const Program &Prog, Symbol *EntryPoint,
                               const ExecOptions &Opts,
                               const std::vector<std::string> &Args) {
  if (!EntryPoint) {
    ExecResult R;
    R.Uncaught = true;
    R.Error = "no entry point";
    return R;
  }
  if (Opts.Engine == ExecEngine::VM) {
    LinkOptions LO;
    LO.Superinstructions = Opts.Superinstructions;
    LinkedProgram Linked = linkProgram(Prog, Comp, LO);
    VM M(Comp, Linked, Opts.StepLimit);
    return M.runMain(EntryPoint, Args);
  }
  Interpreter I(Comp, Units, Opts.StepLimit);
  return I.runMain(EntryPoint, Args);
}
