//===----------------------------------------------------------------------===//
///
/// \file
/// The code generator: lowered trees -> MiniScala VM bytecode. Asserts the
/// invariants the transformation pipeline is supposed to establish (no
/// Match/Closure/union types...), making it the final consumer of the
/// phases' postconditions.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_BACKEND_CODEGEN_H
#define MPC_BACKEND_CODEGEN_H

#include "backend/Bytecode.h"
#include "core/CompilerContext.h"

namespace mpc {

/// Compiles all classes of the given units into a Program. Input trees
/// must be fully lowered (i.e. the standard pipeline has run).
Program generateCode(const std::vector<CompilationUnit> &Units,
                     CompilerContext &Comp);

} // namespace mpc

#endif // MPC_BACKEND_CODEGEN_H
