#include "backend/Interpreter.h"

#include "ast/TreeUtils.h"

#include <cassert>
#include <cmath>
#include <functional>
#include <sstream>

using namespace mpc;

namespace {

struct ObjVal;
struct ArrVal;

/// A runtime value.
struct Value {
  enum K : uint8_t { Unit, Bool, Int, Double, Str, Null, Obj, Arr, Clazz };
  K Kind = Unit;
  int64_t I = 0;
  double D = 0;
  std::shared_ptr<std::string> S;
  std::shared_ptr<ObjVal> O;
  std::shared_ptr<ArrVal> A;
  const Type *Cl = nullptr;

  static Value unit() { return Value(); }
  static Value boolean(bool B) {
    Value V;
    V.Kind = Bool;
    V.I = B;
    return V;
  }
  static Value integer(int64_t N) {
    Value V;
    V.Kind = Int;
    V.I = N;
    return V;
  }
  static Value dbl(double N) {
    Value V;
    V.Kind = Double;
    V.D = N;
    return V;
  }
  static Value str(std::string Text) {
    Value V;
    V.Kind = Str;
    V.S = std::make_shared<std::string>(std::move(Text));
    return V;
  }
  static Value null() {
    Value V;
    V.Kind = Null;
    return V;
  }
  bool truthy() const { return I != 0; }
  double asDouble() const { return Kind == Double ? D : double(I); }
};

struct ObjVal {
  ClassSymbol *Cls = nullptr;
  std::map<Symbol *, Value> Fields;
};

struct ArrVal {
  std::vector<Value> Elems;
};

/// Thrown MiniScala exception (carried as a C++ exception).
struct ThrownValue {
  Value V;
};
/// `return` unwinding.
struct ReturnSignal {
  Symbol *Method;
  Value V;
};
/// `Goto` unwinding to an enclosing Labeled.
struct ContinueSignal {
  Symbol *Label;
};
/// Interpreter-level failure (cast error, missing member, step limit).
struct InterpError {
  std::string Message;
};

using Frame = std::map<Symbol *, Value>;

} // namespace

class Interpreter::Impl {
public:
  Impl(CompilerContext &Comp, const std::vector<CompilationUnit> &Units,
       uint64_t StepLimit)
      : Comp(Comp), StepLimit(StepLimit) {
    for (const CompilationUnit &U : Units) {
      if (!U.Root)
        continue;
      for (const TreePtr &Top : U.Root->kids())
        if (auto *CD = dyn_cast_or_null<ClassDef>(Top.get()))
          Classes[CD->sym()] = CD;
    }
  }

  ExecResult runMain(Symbol *Entry, const std::vector<std::string> &Args) {
    ExecResult R;
    Output.clear();
    Steps = 0;
    try {
      Value Module = moduleInstance(cast<ClassSymbol>(Entry->owner()));
      auto ArgArr = std::make_shared<ArrVal>();
      for (const std::string &A : Args)
        ArgArr->Elems.push_back(Value::str(A));
      Value ArgsVal;
      ArgsVal.Kind = Value::Arr;
      ArgsVal.A = ArgArr;
      invoke(Module, Entry, {ArgsVal});
    } catch (ThrownValue &TV) {
      R.Uncaught = true;
      R.Error = "uncaught exception: " + show(TV.V);
    } catch (InterpError &IE) {
      R.Uncaught = true;
      R.Error = IE.Message;
    }
    R.Output = Output;
    R.StepsExecuted = Steps;
    return R;
  }

private:
  //===--- infrastructure -------------------------------------------------===//

  void step() {
    if (++Steps > StepLimit)
      throw InterpError{"step limit exceeded"};
    // Cancellation checkpoint: the interpreter is the one backend stage
    // whose runtime is workload-controlled (a hot loop in the program
    // under test runs arbitrarily long), so polling only at phase
    // boundaries would let it blow through a deadline unboundedly. Every
    // 256th step keeps the poll off the hot path while bounding the
    // overshoot; DeadlineExceeded unwinds past run()'s handlers (which
    // catch only guest-level failures) to the service's worker firewall.
    if ((Steps & 255) == 0)
      Comp.checkpoint();
  }

  ClassDef *classDef(ClassSymbol *Cls) {
    auto It = Classes.find(Cls);
    return It == Classes.end() ? nullptr : It->second;
  }

  /// Virtual lookup: the method implementation for `name` starting at
  /// \p Cls (subclass first).
  DefDef *findMethod(ClassSymbol *Cls, Name N) {
    for (ClassSymbol *Walk = Cls; Walk;) {
      if (ClassDef *CD = classDef(Walk)) {
        for (const TreePtr &M : CD->kids())
          if (auto *DD = dyn_cast_or_null<DefDef>(M.get()))
            if (DD->sym()->name() == N && DD->rhs())
              return DD;
      }
      ClassSymbol *Super = nullptr;
      for (const Type *P : Walk->parents())
        if (ClassSymbol *PC = P->classSymbol())
          if (!PC->isTrait()) {
            Super = PC;
            break;
          }
      Walk = Super;
    }
    return nullptr;
  }

  Value moduleInstance(ClassSymbol *ModuleCls) {
    auto It = Modules.find(ModuleCls);
    if (It != Modules.end())
      return It->second;
    // Register the instance *before* running the constructor (the JVM
    // MODULE$ idiom) — the module's own initializer may refer back to it.
    Value V = objectShell(ModuleCls);
    Modules[ModuleCls] = V;
    if (DefDef *Init = findDeclaredCtor(ModuleCls))
      invokeMethod(V, Init, {});
    return V;
  }

  Value instantiate(ClassSymbol *Cls, const std::vector<Value> &Args) {
    Value V = objectShell(Cls);
    // Run the constructor.
    if (DefDef *Init = findDeclaredCtor(Cls))
      invokeMethod(V, Init, Args);
    return V;
  }

  Value objectShell(ClassSymbol *Cls) {
    Value V;
    V.Kind = Value::Obj;
    V.O = std::make_shared<ObjVal>();
    V.O->Cls = Cls;
    // Default-initialize declared fields (incl. inherited).
    std::function<void(ClassSymbol *)> InitFields = [&](ClassSymbol *C) {
      if (ClassDef *CD = classDef(C))
        for (const TreePtr &M : CD->kids())
          if (auto *VD = dyn_cast_or_null<ValDef>(M.get()))
            V.O->Fields[VD->sym()] = defaultValue(VD->sym()->info());
      for (const Type *P : C->parents())
        if (ClassSymbol *PC = P->classSymbol())
          InitFields(PC);
    };
    InitFields(Cls);
    return V;
  }

  DefDef *findDeclaredCtor(ClassSymbol *Cls) {
    if (ClassDef *CD = classDef(Cls))
      for (const TreePtr &M : CD->kids())
        if (auto *DD = dyn_cast_or_null<DefDef>(M.get()))
          if (DD->sym()->is(SymFlag::Constructor))
            return DD;
    return nullptr;
  }

  Value defaultValue(const Type *Ty) {
    if (!Ty)
      return Value::null();
    if (Ty->isPrim(PrimKind::Int))
      return Value::integer(0);
    if (Ty->isPrim(PrimKind::Boolean))
      return Value::boolean(false);
    if (Ty->isPrim(PrimKind::Double))
      return Value::dbl(0);
    if (Ty->isUnit())
      return Value::unit();
    return Value::null();
  }

  Value invoke(Value Receiver, Symbol *MethodSym,
               const std::vector<Value> &Args) {
    if (Receiver.Kind != Value::Obj || !Receiver.O)
      throw InterpError{"invoke on non-object receiver"};
    DefDef *Impl = findMethod(Receiver.O->Cls, MethodSym->name());
    if (!Impl)
      throw InterpError{"no implementation of " +
                        MethodSym->name().str() + " in " +
                        Receiver.O->Cls->name().str()};
    return invokeMethod(Receiver, Impl, Args);
  }

  Value invokeMethod(Value Receiver, DefDef *Impl,
                     const std::vector<Value> &Args) {
    Frame F;
    unsigned N = Impl->numParamsTotal();
    if (Args.size() != N)
      throw InterpError{"arity mismatch calling " +
                        Impl->sym()->name().str()};
    for (unsigned I = 0; I < N; ++I)
      F[cast<ValDef>(Impl->paramAt(I))->sym()] = Args[I];
    try {
      return eval(Impl->rhs(), F, Receiver);
    } catch (ReturnSignal &RS) {
      if (RS.Method == Impl->sym())
        return RS.V;
      throw;
    }
  }

  //===--- evaluation ------------------------------------------------------===//

  Value eval(Tree *T, Frame &F, Value &Self) {
    step();
    switch (T->kind()) {
    case TreeKind::Literal: {
      const Constant &C = cast<Literal>(T)->value();
      switch (C.kind()) {
      case Constant::Unit:
        return Value::unit();
      case Constant::Bool:
        return Value::boolean(C.boolValue());
      case Constant::Int:
        return Value::integer(C.intValue());
      case Constant::Double:
        return Value::dbl(C.doubleValue());
      case Constant::Str:
        return Value::str(C.stringValue().str());
      case Constant::Null:
        return Value::null();
      case Constant::Clazz: {
        Value V;
        V.Kind = Value::Clazz;
        V.Cl = C.clazzValue();
        return V;
      }
      }
      return Value::unit();
    }
    case TreeKind::Ident: {
      Symbol *Sym = cast<Ident>(T)->sym();
      if (Sym->is(SymFlag::Module))
        return moduleInstance(
            cast<ClassSymbol>(Sym->info()->classSymbol()));
      auto It = F.find(Sym);
      if (It != F.end())
        return It->second;
      // Field access through the implicit receiver (pre-Getters trees or
      // synthetic code may reference fields directly).
      if (Self.Kind == Value::Obj) {
        auto FIt = Self.O->Fields.find(Sym);
        if (FIt != Self.O->Fields.end())
          return FIt->second;
      }
      throw InterpError{"unbound identifier " + Sym->name().str()};
    }
    case TreeKind::This:
    case TreeKind::Super:
      return Self;
    case TreeKind::Select: {
      auto *Sel = cast<Select>(T);
      Value Q = eval(Sel->qual(), F, Self);
      return getField(Q, Sel->sym());
    }
    case TreeKind::Typed: {
      Value V = eval(cast<Typed>(T)->expr(), F, Self);
      if (!conforms(V, T->type()))
        throw ThrownValue{makeError("ClassCastException: value is not a " +
                                    T->type()->show())};
      return V;
    }
    case TreeKind::Apply:
      return evalApply(cast<Apply>(T), F, Self);
    case TreeKind::New: {
      auto *N = cast<New>(T);
      std::vector<Value> Args;
      for (unsigned I = 0; I < N->numArgs(); ++I)
        Args.push_back(eval(N->arg(I), F, Self));
      ClassSymbol *Cls = N->classTy()->classSymbol();
      if (!Cls)
        throw InterpError{"new of non-class type"};
      if (Cls->is(SymFlag::Builtin))
        return builtinNew(Cls, Args);
      return instantiate(Cls, Args);
    }
    case TreeKind::Assign: {
      auto *A = cast<Assign>(T);
      if (auto *Sel = dyn_cast<Select>(A->lhs())) {
        Value Q = eval(Sel->qual(), F, Self);
        Value V = eval(A->rhs(), F, Self);
        if (Q.Kind != Value::Obj)
          throw InterpError{"field store on non-object"};
        Q.O->Fields[Sel->sym()] = V;
        return Value::unit();
      }
      auto *Id = cast<Ident>(A->lhs());
      Value V = eval(A->rhs(), F, Self);
      auto It = F.find(Id->sym());
      if (It != F.end()) {
        It->second = V;
        return Value::unit();
      }
      if (Self.Kind == Value::Obj)
        Self.O->Fields[Id->sym()] = V;
      else
        F[Id->sym()] = V;
      return Value::unit();
    }
    case TreeKind::Block: {
      auto *B = cast<Block>(T);
      for (unsigned I = 0; I < B->numStats(); ++I) {
        Tree *Stat = B->stat(I);
        if (auto *VD = dyn_cast<ValDef>(Stat)) {
          F[VD->sym()] =
              VD->rhs() ? eval(VD->rhs(), F, Self)
                        : defaultValue(VD->sym()->info());
          continue;
        }
        if (isa<DefDef>(Stat) || isa<ClassDef>(Stat))
          continue; // unlowered local definitions are inert here
        eval(Stat, F, Self);
      }
      return eval(B->expr(), F, Self);
    }
    case TreeKind::If: {
      auto *I = cast<If>(T);
      Value C = eval(I->cond(), F, Self);
      return eval(C.truthy() ? I->thenp() : I->elsep(), F, Self);
    }
    case TreeKind::WhileDo: {
      auto *W = cast<WhileDo>(T);
      while (eval(W->cond(), F, Self).truthy())
        eval(W->body(), F, Self);
      return Value::unit();
    }
    case TreeKind::Labeled: {
      auto *L = cast<Labeled>(T);
      while (true) {
        try {
          return eval(L->body(), F, Self);
        } catch (ContinueSignal &CS) {
          if (CS.Label != L->label())
            throw;
          // loop: re-enter the labeled body
        }
      }
    }
    case TreeKind::Goto:
      throw ContinueSignal{cast<Goto>(T)->label()};
    case TreeKind::Return: {
      auto *R = cast<Return>(T);
      Value V = R->expr() ? eval(R->expr(), F, Self) : Value::unit();
      throw ReturnSignal{R->fromMethod(), V};
    }
    case TreeKind::Throw: {
      Value V = eval(cast<Throw>(T)->expr(), F, Self);
      throw ThrownValue{V};
    }
    case TreeKind::Try:
      return evalTry(cast<Try>(T), F, Self);
    case TreeKind::SeqLiteral: {
      auto *S = cast<SeqLiteral>(T);
      Value V;
      V.Kind = Value::Arr;
      V.A = std::make_shared<ArrVal>();
      for (unsigned I = 0; I < S->numKids(); ++I)
        V.A->Elems.push_back(eval(S->kid(I), F, Self));
      return V;
    }
    case TreeKind::Closure: {
      // Unlowered closures should not reach execution; the differential
      // tests always run the full pipeline first.
      throw InterpError{"closure reached the interpreter"};
    }
    case TreeKind::Match:
      throw InterpError{"match reached the interpreter"};
    default:
      throw InterpError{std::string("cannot evaluate ") +
                        treeKindName(T->kind())};
    }
  }

  Value getField(Value Q, Symbol *Sym) {
    switch (Q.Kind) {
    case Value::Obj: {
      auto It = Q.O->Fields.find(Sym);
      if (It != Q.O->Fields.end())
        return It->second;
      // Fall back to by-name lookup (trait copies use fresh symbols).
      for (auto &[FieldSym, V] : Q.O->Fields)
        if (FieldSym->name() == Sym->name())
          return V;
      throw InterpError{"no field " + Sym->name().str() + " on " +
                        Q.O->Cls->name().str()};
    }
    default:
      throw InterpError{"field access on non-object value"};
    }
  }

  Value makeError(const std::string &Msg) {
    Value V;
    V.Kind = Value::Obj;
    V.O = std::make_shared<ObjVal>();
    V.O->Cls = Comp.syms().throwableClass();
    Symbol *MsgField = Comp.syms().throwableClass()->findDeclaredMember(
        Comp.syms().std().Message);
    V.O->Fields[MsgField] = Value::str(Msg);
    return V;
  }

  Value builtinNew(ClassSymbol *Cls, const std::vector<Value> &Args) {
    Value V;
    V.Kind = Value::Obj;
    V.O = std::make_shared<ObjVal>();
    V.O->Cls = Cls;
    SymbolTable &Syms = Comp.syms();
    if (Cls == Syms.throwableClass() && !Args.empty()) {
      Symbol *MsgField =
          Cls->findDeclaredMember(Syms.std().Message);
      V.O->Fields[MsgField] = Args[0];
    } else if (Cls == Syms.nonLocalReturnClass() && !Args.empty()) {
      Symbol *ValueField = Cls->findDeclaredMember(Syms.std().Value);
      V.O->Fields[ValueField] = Args[0];
    } else if (Cls->findDeclaredMember(Syms.std().Elem) && !Args.empty()) {
      V.O->Fields[Cls->findDeclaredMember(Syms.std().Elem)] = Args[0];
    }
    return V;
  }

  bool conforms(const Value &V, const Type *Ty) {
    if (!Ty || Ty->isAny())
      return true;
    switch (Ty->kind()) {
    case TypeKind::Primitive:
      switch (cast<PrimitiveType>(Ty)->prim()) {
      case PrimKind::Int:
        return V.Kind == Value::Int;
      case PrimKind::Boolean:
        return V.Kind == Value::Bool;
      case PrimKind::Double:
        return V.Kind == Value::Double || V.Kind == Value::Int;
      case PrimKind::Unit:
        return V.Kind == Value::Unit;
      case PrimKind::Null:
        return V.Kind == Value::Null;
      default:
        return true;
      }
    case TypeKind::Class: {
      ClassSymbol *Cls = cast<ClassType>(Ty)->cls();
      if (V.Kind == Value::Null)
        return true; // null conforms to reference types
      if (Cls == Comp.syms().objectClass())
        return true;
      if (V.Kind == Value::Str)
        return Cls == Comp.syms().stringClass();
      if (V.Kind == Value::Obj)
        return V.O->Cls->derivesFrom(Cls);
      if (V.Kind == Value::Arr || V.Kind == Value::Clazz)
        return Cls == Comp.syms().objectClass();
      return false;
    }
    case TypeKind::Array:
      return V.Kind == Value::Arr || V.Kind == Value::Null;
    default:
      return true;
    }
  }

  bool valueEquals(const Value &A, const Value &B) {
    if (A.Kind == Value::Null || B.Kind == Value::Null)
      return A.Kind == B.Kind;
    if ((A.Kind == Value::Int || A.Kind == Value::Double) &&
        (B.Kind == Value::Int || B.Kind == Value::Double)) {
      if (A.Kind == Value::Int && B.Kind == Value::Int)
        return A.I == B.I;
      return A.asDouble() == B.asDouble();
    }
    if (A.Kind != B.Kind)
      return false;
    switch (A.Kind) {
    case Value::Unit:
      return true;
    case Value::Bool:
      return A.I == B.I;
    case Value::Str:
      return *A.S == *B.S;
    case Value::Clazz: {
      // Class literals compare erased, like the JVM: Box[Int] and
      // Box[String] share a runtime class.
      const auto *CA = dyn_cast<ClassType>(A.Cl);
      const auto *CB = dyn_cast<ClassType>(B.Cl);
      if (CA && CB)
        return CA->cls() == CB->cls();
      return A.Cl == B.Cl;
    }
    case Value::Arr:
      return A.A == B.A;
    case Value::Obj:
      // Case classes compare structurally, like Scala's generated equals.
      if (A.O == B.O)
        return true;
      if (A.O->Cls == B.O->Cls && A.O->Cls->is(SymFlag::Case)) {
        for (Symbol *Field : A.O->Cls->caseFields()) {
          Value FA = caseFieldValue(A, Field);
          Value FB = caseFieldValue(B, Field);
          if (!valueEquals(FA, FB))
            return false;
        }
        return true;
      }
      return false;
    default:
      return false;
    }
  }

  /// The runtime class of \p V as a class-literal value (getClass).
  Value classValueOf(const Value &V) {
    Value R;
    R.Kind = Value::Clazz;
    if (V.Kind == Value::Obj)
      R.Cl = Comp.types().classType(V.O->Cls);
    else if (V.Kind == Value::Str)
      R.Cl = Comp.syms().stringType();
    else
      R.Cl = Comp.syms().objectType();
    return R;
  }

  Value caseFieldValue(const Value &V, Symbol *Field) {
    auto It = V.O->Fields.find(Field);
    if (It != V.O->Fields.end())
      return It->second;
    // Trait copies use fresh symbols, so the exact symbol can miss.
    // Resolve the stand-in once per (class, field) — same-class objects
    // share a field-key set — instead of rescanning the map on every
    // show/equals of a case-class-heavy structure.
    auto Key = std::make_pair(V.O->Cls, Field);
    auto Memo = CaseFieldMemo.find(Key);
    Symbol *Resolved;
    if (Memo != CaseFieldMemo.end()) {
      Resolved = Memo->second;
    } else {
      Resolved = nullptr;
      for (auto &[Sym, FV] : V.O->Fields)
        if (Sym->name() == Field->name()) {
          Resolved = Sym;
          break;
        }
      CaseFieldMemo.emplace(Key, Resolved);
    }
    if (Resolved) {
      auto FIt = V.O->Fields.find(Resolved);
      if (FIt != V.O->Fields.end())
        return FIt->second;
    }
    return Value::null();
  }

  std::string show(const Value &V) {
    switch (V.Kind) {
    case Value::Unit:
      return "()";
    case Value::Bool:
      return V.I ? "true" : "false";
    case Value::Int:
      return std::to_string(V.I);
    case Value::Double: {
      std::ostringstream OS;
      OS << V.D;
      return OS.str();
    }
    case Value::Str:
      return *V.S;
    case Value::Null:
      return "null";
    case Value::Clazz:
      return "class " + V.Cl->show();
    case Value::Arr: {
      std::string S = "Array(";
      for (size_t I = 0; I < V.A->Elems.size(); ++I) {
        if (I)
          S += ", ";
        S += show(V.A->Elems[I]);
      }
      return S + ")";
    }
    case Value::Obj: {
      ClassSymbol *Cls = V.O->Cls;
      if (Cls->is(SymFlag::Case)) {
        std::string S(Cls->name().text());
        S += "(";
        bool First = true;
        for (Symbol *Field : Cls->caseFields()) {
          if (!First)
            S += ", ";
          First = false;
          S += show(caseFieldValue(V, Field));
        }
        return S + ")";
      }
      // Throwable-ish rendering.
      if (Cls->derivesFrom(Comp.syms().throwableClass())) {
        Value Msg = caseFieldValue(
            V, Comp.syms().throwableClass()->findDeclaredMember(
                   Comp.syms().std().Message));
        std::string S(Cls->name().text());
        if (Msg.Kind == Value::Str)
          S += "(" + *Msg.S + ")";
        return S;
      }
      return std::string(Cls->name().text()) + "@instance";
    }
    }
    return "?";
  }

  Value evalTry(Try *T, Frame &F, Value &Self) {
    auto RunFinalizer = [&]() {
      if (T->finalizer())
        eval(T->finalizer(), F, Self);
    };
    try {
      Value V = eval(T->body(), F, Self);
      RunFinalizer();
      return V;
    } catch (ThrownValue &TV) {
      for (unsigned I = 0; I < T->numCatches(); ++I) {
        auto *C = cast<CaseDef>(T->catchAt(I));
        Symbol *Binder = nullptr;
        const Type *CatchTy = Comp.syms().throwableType();
        Tree *Pat = C->pat();
        if (auto *B = dyn_cast<Bind>(Pat)) {
          Binder = B->sym();
          Pat = B->pat();
        }
        if (auto *Ty = dyn_cast_or_null<Typed>(Pat))
          CatchTy = Ty->type();
        if (!conforms(TV.V, CatchTy))
          continue;
        if (Binder)
          F[Binder] = TV.V;
        Value V = eval(C->body(), F, Self);
        RunFinalizer();
        return V;
      }
      RunFinalizer();
      throw;
    } catch (...) {
      RunFinalizer();
      throw;
    }
  }

  Value evalApply(Apply *T, Frame &F, Value &Self) {
    SymbolTable &Syms = Comp.syms();
    Tree *Fun = T->fun();

    // Type-applied intrinsics.
    if (auto *TApp = dyn_cast<TypeApply>(Fun)) {
      auto *Sel = cast<Select>(TApp->fun());
      Value Q = eval(Sel->qual(), F, Self);
      if (Sel->sym() == Syms.isInstanceOfMethod())
        return Value::boolean(Q.Kind != Value::Null &&
                              conforms(Q, TApp->typeArgs()[0]));
      if (Sel->sym() == Syms.asInstanceOfMethod()) {
        if (!conforms(Q, TApp->typeArgs()[0]))
          throw ThrownValue{
              makeError("ClassCastException: value is not a " +
                        TApp->typeArgs()[0]->show())};
        return Q;
      }
      if (Sel->sym() == Syms.newArrayMethod()) {
        Value Len = eval(T->arg(0), F, Self);
        Value V;
        V.Kind = Value::Arr;
        V.A = std::make_shared<ArrVal>();
        V.A->Elems.assign(static_cast<size_t>(Len.I),
                          defaultValue(TApp->typeArgs()[0]));
        return V;
      }
      throw InterpError{"unknown type-applied intrinsic"};
    }

    auto *Sel = dyn_cast<Select>(Fun);
    if (!Sel) {
      // Direct call of a local method (pre-LambdaLift trees).
      if (auto *Id = dyn_cast<Ident>(Fun)) {
        if (auto *DD = dyn_cast_or_null<DefDef>(Id->sym()->defTree())) {
          std::vector<Value> Args;
          for (unsigned I = 0; I < T->numArgs(); ++I)
            Args.push_back(eval(T->arg(I), F, Self));
          // Local methods share the enclosing frame for captured vars.
          Frame Inner = F;
          unsigned N = DD->numParamsTotal();
          for (unsigned I = 0; I < N && I < Args.size(); ++I)
            Inner[cast<ValDef>(DD->paramAt(I))->sym()] = Args[I];
          try {
            return eval(DD->rhs(), Inner, Self);
          } catch (ReturnSignal &RS) {
            if (RS.Method == DD->sym())
              return RS.V;
            throw;
          }
        }
      }
      throw InterpError{"cannot call this function shape"};
    }

    Symbol *Sym = Sel->sym();

    // Primitive operators, dispatched on the dense kind fixed at builtin
    // registration (no name-text comparison on the hot path).
    if (Syms.isPrimOp(Sym)) {
      Value L = eval(Sel->qual(), F, Self);
      Value R = T->numArgs() ? eval(T->arg(0), F, Self) : Value::unit();
      return primOp(Syms.primOpKindOf(Sym->name()), L, R, T->numArgs());
    }
    // Array intrinsics.
    if (Sym == Syms.arrayApply() || Sym == Syms.arrayUpdate() ||
        Sym == Syms.arrayLength()) {
      Value Q = eval(Sel->qual(), F, Self);
      if (Q.Kind != Value::Arr)
        throw InterpError{"array op on non-array"};
      if (Sym == Syms.arrayLength())
        return Value::integer(static_cast<int64_t>(Q.A->Elems.size()));
      Value Idx = eval(T->arg(0), F, Self);
      size_t I = static_cast<size_t>(Idx.I);
      if (I >= Q.A->Elems.size())
        throw ThrownValue{makeError("ArrayIndexOutOfBounds")};
      if (Sym == Syms.arrayApply())
        return Q.A->Elems[I];
      Q.A->Elems[I] = eval(T->arg(1), F, Self);
      return Value::unit();
    }
    // String concatenation / length.
    if (Sym->owner() == Syms.stringClass()) {
      Value Q = eval(Sel->qual(), F, Self);
      if (Sym->name().text() == "+") {
        Value R = eval(T->arg(0), F, Self);
        return Value::str(show(Q) + show(R));
      }
      if (Sym->name() == Syms.std().Length)
        return Value::integer(static_cast<int64_t>(Q.S->size()));
    }
    // Runtime.equals and Predef printing.
    if (Sym == Syms.runtimeEqualsMethod()) {
      eval(Sel->qual(), F, Self); // module ref, no effect
      Value A = eval(T->arg(0), F, Self);
      Value B = eval(T->arg(1), F, Self);
      return Value::boolean(valueEquals(A, B));
    }
    if (Sym == Syms.printlnMethod() || Sym == Syms.printMethod()) {
      eval(Sel->qual(), F, Self);
      Value A = eval(T->arg(0), F, Self);
      Output += show(A);
      if (Sym == Syms.printlnMethod())
        Output += '\n';
      return Value::unit();
    }
    // Object methods on arbitrary values.
    if (Sym->owner() == Syms.objectClass() && Sym->is(SymFlag::Builtin)) {
      Value Q = eval(Sel->qual(), F, Self);
      std::string_view N = Sym->name().text();
      if (N == "==" || N == "equals") {
        Value R = eval(T->arg(0), F, Self);
        return Value::boolean(valueEquals(Q, R));
      }
      if (N == "!=") {
        Value R = eval(T->arg(0), F, Self);
        return Value::boolean(!valueEquals(Q, R));
      }
      if (N == "toString")
        return Value::str(show(Q));
      if (N == "getClass")
        return classValueOf(Q);
    }

    // Super calls (incl. parent constructors): static dispatch.
    if (auto *Sup = dyn_cast<Super>(Sel->qual())) {
      std::vector<Value> Args;
      for (unsigned I = 0; I < T->numArgs(); ++I)
        Args.push_back(eval(T->arg(I), F, Self));
      ClassSymbol *Target = Sup->target();
      if (Sym->is(SymFlag::Constructor)) {
        if (Target->is(SymFlag::Builtin))
          return Value::unit(); // Object/Throwable ctors are no-ops here
        if (DefDef *Ctor = findDeclaredCtor(Target))
          return invokeMethod(Self, Ctor, Args);
        return Value::unit();
      }
      if (DefDef *Impl = findMethod(Target, Sym->name()))
        return invokeMethod(Self, Impl, Args);
      throw InterpError{"missing super method " + Sym->name().str()};
    }

    // Virtual dispatch.
    Value Q = eval(Sel->qual(), F, Self);
    std::vector<Value> Args;
    for (unsigned I = 0; I < T->numArgs(); ++I)
      Args.push_back(eval(T->arg(I), F, Self));
    if (Q.Kind == Value::Null)
      throw ThrownValue{makeError("NullPointerException")};
    if (Q.Kind != Value::Obj) {
      // Object methods on primitives (toString etc.).
      std::string_view N = Sym->name().text();
      if (N == "toString")
        return Value::str(show(Q));
      if (N == "==" || N == "equals")
        return Value::boolean(valueEquals(Q, Args[0]));
      if (N == "!=")
        return Value::boolean(!valueEquals(Q, Args[0]));
      throw InterpError{"method call on non-object value: " +
                        Sym->name().str()};
    }
    return invoke(Q, Sym, Args);
  }

  /// Int results wrap at 32 bits like JVM ints. Intermediate math is
  /// 64-bit, so the truncation implements two's-complement modular
  /// arithmetic (including INT_MIN / -1).
  static int64_t wrap32(int64_t V) { return static_cast<int32_t>(V); }

  Value primOp(PrimOpKind Op, Value L, Value R, unsigned NumArgs) {
    bool Dbl = L.Kind == Value::Double ||
               (NumArgs && R.Kind == Value::Double);
    switch (Op) {
    case PrimOpKind::Neg:
      return Dbl ? Value::dbl(-L.asDouble()) : Value::integer(wrap32(-L.I));
    case PrimOpKind::Not:
      return Value::boolean(!L.truthy());
    case PrimOpKind::Add:
      return Dbl ? Value::dbl(L.asDouble() + R.asDouble())
                 : Value::integer(wrap32(L.I + R.I));
    case PrimOpKind::Sub:
      return Dbl ? Value::dbl(L.asDouble() - R.asDouble())
                 : Value::integer(wrap32(L.I - R.I));
    case PrimOpKind::Mul:
      return Dbl ? Value::dbl(L.asDouble() * R.asDouble())
                 : Value::integer(wrap32(L.I * R.I));
    case PrimOpKind::Div:
      if (!Dbl && R.I == 0)
        throw ThrownValue{makeError("ArithmeticException: / by zero")};
      return Dbl ? Value::dbl(L.asDouble() / R.asDouble())
                 : Value::integer(wrap32(L.I / R.I));
    case PrimOpKind::Rem:
      if (!Dbl && R.I == 0)
        throw ThrownValue{makeError("ArithmeticException: % by zero")};
      return Dbl ? Value::dbl(std::fmod(L.asDouble(), R.asDouble()))
                 : Value::integer(wrap32(L.I % R.I));
    case PrimOpKind::CmpLt:
      return Value::boolean(L.asDouble() < R.asDouble());
    case PrimOpKind::CmpLe:
      return Value::boolean(L.asDouble() <= R.asDouble());
    case PrimOpKind::CmpGt:
      return Value::boolean(L.asDouble() > R.asDouble());
    case PrimOpKind::CmpGe:
      return Value::boolean(L.asDouble() >= R.asDouble());
    case PrimOpKind::CmpEq:
      return Value::boolean(valueEquals(L, R));
    case PrimOpKind::CmpNe:
      return Value::boolean(!valueEquals(L, R));
    case PrimOpKind::And:
      return Value::boolean(L.truthy() && R.truthy());
    case PrimOpKind::Or:
      return Value::boolean(L.truthy() || R.truthy());
    case PrimOpKind::None:
      break;
    }
    throw InterpError{"unknown primitive operator"};
  }

  CompilerContext &Comp;
  uint64_t StepLimit;
  uint64_t Steps = 0;
  std::map<ClassSymbol *, ClassDef *> Classes;
  std::map<ClassSymbol *, Value> Modules;
  /// (class, case field) -> the stand-in field symbol instances of that
  /// class actually carry (or null when none matches by name).
  std::map<std::pair<ClassSymbol *, Symbol *>, Symbol *> CaseFieldMemo;
  std::string Output;
};

Interpreter::Interpreter(CompilerContext &Comp,
                         const std::vector<CompilationUnit> &Units,
                         uint64_t StepLimit)
    : P(std::make_unique<Impl>(Comp, Units, StepLimit)) {}

Interpreter::~Interpreter() = default;

ExecResult Interpreter::runMain(Symbol *EntryPoint,
                                const std::vector<std::string> &Args) {
  return P->runMain(EntryPoint, Args);
}
