#include "backend/Verifier.h"

#include <string>

using namespace mpc;

namespace {

/// Static pop/push counts for one instruction. Returns false for opcodes
/// the code generator never emits (the VM refuses them too).
bool stackEffect(const Instr &I, uint32_t &Pops, uint32_t &Pushes) {
  switch (I.Code) {
  case Op::Nop:
    Pops = 0; Pushes = 0; return true;
  case Op::ConstUnit:
  case Op::ConstBool:
  case Op::ConstInt:
  case Op::ConstDouble:
  case Op::ConstStr:
  case Op::ConstNull:
  case Op::ConstClass:
  case Op::Load:
  case Op::GetModule:
    Pops = 0; Pushes = 1; return true;
  case Op::Store:
  case Op::Pop:
    Pops = 1; Pushes = 0; return true;
  case Op::GetField:
  case Op::InstanceOf:
  case Op::CheckCast:
  case Op::NewArray:
  case Op::ArrayLength:
  case Op::Neg:
  case Op::Not:
    Pops = 1; Pushes = 1; return true;
  case Op::PutField:
    Pops = 2; Pushes = 0; return true;
  case Op::NewObject:
    Pops = I.ArgCount; Pushes = 1; return true;
  case Op::InvokeVirt:
  case Op::InvokeSuper:
    Pops = I.ArgCount + 1; Pushes = 1; return true;
  case Op::ArrayLoad:
  case Op::Add: case Op::Sub: case Op::Mul: case Op::Div: case Op::Rem:
  case Op::CmpLt: case Op::CmpLe: case Op::CmpGt: case Op::CmpGe:
  case Op::CmpEq: case Op::CmpNe:
  case Op::Concat:
    Pops = 2; Pushes = 1; return true;
  case Op::ArrayStore:
    Pops = 3; Pushes = 0; return true;
  case Op::Jump:
    Pops = 0; Pushes = 0; return true;
  case Op::JumpIfFalse:
    Pops = 1; Pushes = 0; return true;
  case Op::AThrow:
  case Op::ReturnValue:
    Pops = 1; Pushes = 0; return true;
  case Op::Dup:
    Pops = 1; Pushes = 2; return true;
  case Op::InvokeStatic:
    return false;
  }
  return false;
}

bool isTerminal(Op Code) {
  return Code == Op::Jump || Code == Op::AThrow || Code == Op::ReturnValue;
}

} // namespace

bool mpc::verifyMethod(const MethodCode &MC,
                       std::vector<VerifyFailure> &Failures,
                       StackDepths *Depths) {
  const size_t Before = Failures.size();
  const uint32_t Size = static_cast<uint32_t>(MC.Code.size());
  auto Fail = [&](uint32_t Pc, std::string Msg) {
    Failures.push_back({MC.Method, Pc, std::move(Msg)});
  };

  if (Size == 0) {
    Fail(0, "empty method body");
    return false;
  }

  // Handler table shape first — the dataflow assumes sane ranges.
  for (const Handler &H : MC.Handlers) {
    if (H.Start >= H.End || H.End > Size)
      Fail(H.Start, "handler range [" + std::to_string(H.Start) + ", " +
                        std::to_string(H.End) + ") is malformed");
    if (H.Entry >= Size)
      Fail(H.Entry, "handler entry out of range");
    if (H.IsFinally && H.CatchType)
      Fail(H.Entry, "finally handler carries a catch type");
    if (!H.IsFinally && !H.CatchType)
      Fail(H.Entry, "typed handler without a catch type");
  }
  if (Failures.size() != Before)
    return false;

  // Worklist dataflow: depth-at-instruction must be consistent along
  // every path. -1 = not yet reached.
  std::vector<int64_t> DepthAt(Size, -1);
  std::vector<uint32_t> Work;
  uint32_t MaxStack = 0;
  auto Visit = [&](uint32_t Pc, uint32_t Depth) {
    if (DepthAt[Pc] < 0) {
      DepthAt[Pc] = Depth;
      Work.push_back(Pc);
      return;
    }
    if (DepthAt[Pc] != Depth)
      Fail(Pc, "stack depth mismatch at merge: " +
                   std::to_string(DepthAt[Pc]) + " vs " +
                   std::to_string(Depth));
  };

  Visit(0, 0);
  // Handler entries become reachable once the depth at their protected
  // range's start is known (the unwinder cuts the stack back to that
  // depth and pushes the exception). Re-seed until a fixpoint so
  // handlers inside other handlers' code are covered too.
  std::vector<bool> Seeded(MC.Handlers.size(), false);
  while (true) {
    while (!Work.empty()) {
      uint32_t Pc = Work.back();
      Work.pop_back();
      const Instr &I = MC.Code[Pc];
      uint32_t Depth = static_cast<uint32_t>(DepthAt[Pc]);
      uint32_t Pops = 0, Pushes = 0;
      if (!stackEffect(I, Pops, Pushes)) {
        Fail(Pc, "opcode is never generated and cannot execute");
        continue;
      }
      if (Depth < Pops) {
        Fail(Pc, "operand stack underflow: depth " + std::to_string(Depth) +
                     ", pops " + std::to_string(Pops));
        continue;
      }
      uint32_t After = Depth - Pops + Pushes;
      if (After > MaxStack)
        MaxStack = After;
      // Successors.
      if (I.Code == Op::Jump || I.Code == Op::JumpIfFalse) {
        if (I.Target < 0 || static_cast<uint32_t>(I.Target) >= Size) {
          Fail(Pc, "jump target " + std::to_string(I.Target) +
                       " out of range");
          continue;
        }
        Visit(static_cast<uint32_t>(I.Target), After);
      }
      if (!isTerminal(I.Code)) {
        if (Pc + 1 >= Size) {
          Fail(Pc, "control falls off the end of the method");
          continue;
        }
        Visit(Pc + 1, After);
      }
    }
    bool Progress = false;
    for (size_t H = 0; H < MC.Handlers.size(); ++H) {
      if (Seeded[H] || DepthAt[MC.Handlers[H].Start] < 0)
        continue;
      Seeded[H] = true;
      Progress = true;
      // Entry stack: everything below the try expression, plus the
      // in-flight exception.
      Visit(MC.Handlers[H].Entry,
            static_cast<uint32_t>(DepthAt[MC.Handlers[H].Start]) + 1);
    }
    if (!Progress)
      break;
  }

  if (Failures.size() != Before)
    return false;
  if (Depths) {
    Depths->MaxStack = MaxStack;
    Depths->HandlerDepth.clear();
    for (size_t H = 0; H < MC.Handlers.size(); ++H)
      Depths->HandlerDepth.push_back(
          DepthAt[MC.Handlers[H].Start] < 0
              ? 0
              : static_cast<uint32_t>(DepthAt[MC.Handlers[H].Start]));
  }
  return true;
}

std::vector<VerifyFailure> mpc::verifyProgram(const Program &Prog) {
  std::vector<VerifyFailure> Failures;
  for (const ClassFile &CF : Prog.Classes)
    for (const MethodCode &MC : CF.Methods)
      verifyMethod(MC, Failures);
  return Failures;
}
