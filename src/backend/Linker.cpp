#include "backend/Linker.h"

#include "backend/Verifier.h"
#include "core/CompilerContext.h"

#include <cassert>
#include <map>

using namespace mpc;

const char *mpc::lopName(LOp Code) {
  switch (Code) {
  case LOp::Nop: return "Nop";
  case LOp::ConstUnit: return "ConstUnit";
  case LOp::ConstBool: return "ConstBool";
  case LOp::ConstInt: return "ConstInt";
  case LOp::ConstDouble: return "ConstDouble";
  case LOp::ConstStr: return "ConstStr";
  case LOp::ConstNull: return "ConstNull";
  case LOp::ConstClass: return "ConstClass";
  case LOp::LoadSlot: return "LoadSlot";
  case LOp::StoreSlot: return "StoreSlot";
  case LOp::LoadSelfField: return "LoadSelfField";
  case LOp::StoreSelfField: return "StoreSelfField";
  case LOp::GetField: return "GetField";
  case LOp::PutField: return "PutField";
  case LOp::GetModule: return "GetModule";
  case LOp::NewObject: return "NewObject";
  case LOp::NewBuiltin: return "NewBuiltin";
  case LOp::InvokeVirt: return "InvokeVirt";
  case LOp::InvokeSuperM: return "InvokeSuperM";
  case LOp::InvokeSuperUnit: return "InvokeSuperUnit";
  case LOp::InstanceOf: return "InstanceOf";
  case LOp::CheckCast: return "CheckCast";
  case LOp::NewArray: return "NewArray";
  case LOp::ArrayLoad: return "ArrayLoad";
  case LOp::ArrayStore: return "ArrayStore";
  case LOp::ArrayLength: return "ArrayLength";
  case LOp::ArrUpdateV: return "ArrUpdateV";
  case LOp::Add: return "Add";
  case LOp::Sub: return "Sub";
  case LOp::Mul: return "Mul";
  case LOp::Div: return "Div";
  case LOp::Rem: return "Rem";
  case LOp::Neg: return "Neg";
  case LOp::CmpLt: return "CmpLt";
  case LOp::CmpLe: return "CmpLe";
  case LOp::CmpGt: return "CmpGt";
  case LOp::CmpGe: return "CmpGe";
  case LOp::CmpEq: return "CmpEq";
  case LOp::CmpNe: return "CmpNe";
  case LOp::Not: return "Not";
  case LOp::Concat: return "Concat";
  case LOp::PrimOpEager: return "PrimOpEager";
  case LOp::StrLen: return "StrLen";
  case LOp::RuntimeEq: return "RuntimeEq";
  case LOp::Println: return "Println";
  case LOp::Print: return "Print";
  case LOp::ValueEq: return "ValueEq";
  case LOp::ValueNe: return "ValueNe";
  case LOp::ValueToString: return "ValueToString";
  case LOp::GetClassV: return "GetClassV";
  case LOp::Jump: return "Jump";
  case LOp::JumpIfFalse: return "JumpIfFalse";
  case LOp::AThrow: return "AThrow";
  case LOp::ReturnValue: return "ReturnValue";
  case LOp::Pop: return "Pop";
  case LOp::Dup: return "Dup";
  case LOp::LinkError: return "LinkError";
  case LOp::LoadLoad: return "LoadLoad";
  case LOp::LoadConstInt: return "LoadConstInt";
  case LOp::LoadGetField: return "LoadGetField";
  case LOp::CmpLtJF: return "CmpLtJF";
  case LOp::CmpLeJF: return "CmpLeJF";
  case LOp::CmpGtJF: return "CmpGtJF";
  case LOp::CmpGeJF: return "CmpGeJF";
  case LOp::CmpEqJF: return "CmpEqJF";
  case LOp::CmpNeJF: return "CmpNeJF";
  case LOp::AddStore: return "AddStore";
  case LOp::SubStore: return "SubStore";
  case LOp::LoadConstAdd: return "LoadConstAdd";
  case LOp::LoadConstSub: return "LoadConstSub";
  case LOp::LoadConstMul: return "LoadConstMul";
  case LOp::LoadConstDiv: return "LoadConstDiv";
  case LOp::LoadConstRem: return "LoadConstRem";
  case LOp::NumLOps: break;
  }
  return "?";
}

namespace {

/// Superinstruction fusion rules: (first, second) -> fused. The pairs were
/// picked from measured dynamic pair frequencies on the workload families
/// (bench_interp --pairs); compare-and-branch dominates loop-heavy code,
/// load-load and load-const feed nearly every binary operation.
struct FuseRule {
  LOp First, Second, Fused;
};
constexpr FuseRule FuseRules[] = {
    {LOp::LoadSlot, LOp::LoadSlot, LOp::LoadLoad},
    {LOp::LoadSlot, LOp::ConstInt, LOp::LoadConstInt},
    {LOp::LoadSlot, LOp::GetField, LOp::LoadGetField},
    {LOp::CmpLt, LOp::JumpIfFalse, LOp::CmpLtJF},
    {LOp::CmpLe, LOp::JumpIfFalse, LOp::CmpLeJF},
    {LOp::CmpGt, LOp::JumpIfFalse, LOp::CmpGtJF},
    {LOp::CmpGe, LOp::JumpIfFalse, LOp::CmpGeJF},
    {LOp::CmpEq, LOp::JumpIfFalse, LOp::CmpEqJF},
    {LOp::CmpNe, LOp::JumpIfFalse, LOp::CmpNeJF},
    // Second-order rules: LoadConstInt only exists after the first fuse
    // pass, so these fire on the second (fuseMethod runs to fixpoint).
    {LOp::Add, LOp::StoreSlot, LOp::AddStore},
    {LOp::Sub, LOp::StoreSlot, LOp::SubStore},
    {LOp::LoadConstInt, LOp::Add, LOp::LoadConstAdd},
    {LOp::LoadConstInt, LOp::Sub, LOp::LoadConstSub},
    {LOp::LoadConstInt, LOp::Mul, LOp::LoadConstMul},
    {LOp::LoadConstInt, LOp::Div, LOp::LoadConstDiv},
    {LOp::LoadConstInt, LOp::Rem, LOp::LoadConstRem},
};

class Linker {
public:
  Linker(const Program &Prog, CompilerContext &Comp, const LinkOptions &Opts)
      : Prog(Prog), Comp(Comp), Opts(Opts) {}

  LinkedProgram run() {
    SymbolTable &Syms = Comp.syms();
    for (const ClassFile &CF : Prog.Classes)
      FileOf.insert(CF.Cls, &CF);
    // Shells + method objects first: method tables and super resolution
    // need every LMethod address before any body links.
    ensureClass(Syms.throwableClass()); // makeError's class, always live
    for (const ClassFile &CF : Prog.Classes) {
      LClass *LC = ensureClass(CF.Cls);
      for (const MethodCode &MC : CF.Methods) {
        LP.Methods.push_back(std::make_unique<LMethod>());
        LMethod *M = LP.Methods.back().get();
        M->Sym = MC.Method;
        M->Owner = LC;
        M->NumParams = static_cast<uint32_t>(MC.Params.size());
        MethodOf.insert(const_cast<MethodCode *>(&MC), M);
      }
    }
    for (const ClassFile &CF : Prog.Classes)
      buildMethodTable(*ensureClass(CF.Cls));
    uint64_t Fused = 0, Instrs = 0;
    for (const ClassFile &CF : Prog.Classes)
      for (const MethodCode &MC : CF.Methods) {
        LMethod *M = *MethodOf.find(const_cast<MethodCode *>(&MC));
        linkMethod(MC, *M, Fused);
        Instrs += M->Code.size();
      }
    StatsRegistry &S = Comp.stats();
    S.add("backend.link.classes", LP.Classes.size());
    S.add("backend.link.methods", LP.Methods.size());
    S.add("backend.link.instrs", Instrs);
    S.add("backend.link.superinstrs", Fused);
    S.add("backend.link.callSites", LP.CallSites.size());
    S.add("backend.link.fieldSites", LP.FieldSites.size());
    return std::move(LP);
  }

private:
  const ClassFile *fileOf(ClassSymbol *Cls) {
    const ClassFile **F = FileOf.find(Cls);
    return F ? *F : nullptr;
  }

  static ClassSymbol *nonTraitSuper(ClassSymbol *Cls) {
    for (const Type *P : Cls->parents())
      if (ClassSymbol *PC = P->classSymbol())
        if (!PC->isTrait())
          return PC;
    return nullptr;
  }

  static DefaultKind defaultKind(const Type *Ty) {
    if (!Ty)
      return DefaultKind::Null;
    if (Ty->isPrim(PrimKind::Int))
      return DefaultKind::Int0;
    if (Ty->isPrim(PrimKind::Boolean))
      return DefaultKind::False;
    if (Ty->isPrim(PrimKind::Double))
      return DefaultKind::Dbl0;
    if (Ty->isUnit())
      return DefaultKind::Unit;
    return DefaultKind::Null;
  }

  void addField(LClass &LC, Symbol *FieldSym) {
    if (LC.FieldSlotBySym.find(FieldSym))
      return; // first occurrence wins, like the interpreter's field map
    uint32_t Slot = static_cast<uint32_t>(LC.FieldSyms.size());
    LC.FieldSyms.push_back(FieldSym);
    LC.FieldDefaults.push_back(defaultKind(FieldSym->info()));
    LC.FieldSlotBySym.insert(FieldSym, Slot + 1);
    LC.FieldSlotByName.insertIfAbsent(FieldSym->name().ordinal(), Slot + 1);
  }

  /// The interpreter's objectShell field walk: own declared fields, then
  /// parents depth-first (traits included).
  void addFieldsOf(LClass &LC, ClassSymbol *Cls) {
    if (const ClassFile *CF = fileOf(Cls))
      for (Symbol *F : CF->Fields)
        addField(LC, F);
    for (const Type *P : Cls->parents())
      if (ClassSymbol *PC = P->classSymbol())
        addFieldsOf(LC, PC);
  }

  LClass *ensureClass(ClassSymbol *Cls) {
    if (LClass **Found = LP.ClassBySym.find(Cls))
      return *Found;
    LP.Classes.push_back(std::make_unique<LClass>());
    LClass *LC = LP.Classes.back().get();
    LC->Cls = Cls;
    LC->Index = static_cast<uint32_t>(LP.Classes.size() - 1);
    LC->Builtin = Cls->is(SymFlag::Builtin);
    LC->IsCase = Cls->is(SymFlag::Case);
    LC->IsThrowable = Cls->derivesFrom(Comp.syms().throwableClass());
    LP.ClassBySym.insert(Cls, LC);
    SymbolTable &Syms = Comp.syms();
    if (LC->Builtin) {
      // builtinNew shapes: the one special payload field, when present.
      Symbol *Special = nullptr;
      if (Cls == Syms.throwableClass())
        Special = Cls->findDeclaredMember(Syms.std().Message);
      else if (Cls == Syms.nonLocalReturnClass())
        Special = Cls->findDeclaredMember(Syms.std().Value);
      else
        Special = Cls->findDeclaredMember(Syms.std().Elem);
      if (Special)
        addField(*LC, Special);
    } else {
      addFieldsOf(*LC, Cls);
    }
    // Resolution the VM's show/equals mirrors need, done once here.
    for (Symbol *F : Cls->caseFields())
      LC->CaseFieldSlots.push_back(fieldSlotLikeInterp(*LC, F));
    if (LC->IsThrowable)
      if (Symbol *Msg = Syms.throwableClass()->findDeclaredMember(
              Syms.std().Message))
        LC->MsgSlot = fieldSlotLikeInterp(*LC, Msg);
    return LC;
  }

  /// caseFieldValue's resolution order: exact symbol, then first
  /// same-named field, else absent (-1).
  static int32_t fieldSlotLikeInterp(LClass &LC, Symbol *Field) {
    if (uint32_t *S = LC.FieldSlotBySym.find(Field))
      return static_cast<int32_t>(*S - 1);
    if (uint32_t *S = LC.FieldSlotByName.find(Field->name().ordinal()))
      return static_cast<int32_t>(*S - 1);
    return -1;
  }

  void buildMethodTable(LClass &LC) {
    // findMethod's walk, hoisted: subclass first along the non-trait
    // super chain; within a class, declaration order (first wins).
    for (ClassSymbol *Walk = LC.Cls; Walk; Walk = nonTraitSuper(Walk)) {
      const ClassFile *CF = fileOf(Walk);
      if (!CF)
        continue;
      for (const MethodCode &MC : CF->Methods) {
        LMethod *M = *MethodOf.find(const_cast<MethodCode *>(&MC));
        LC.Methods.insertIfAbsent(MC.Method->name().ordinal(), M);
      }
    }
    if (const ClassFile *CF = fileOf(LC.Cls))
      for (const MethodCode &MC : CF->Methods)
        if (MC.Method->is(SymFlag::Constructor)) {
          LC.Ctor = *MethodOf.find(const_cast<MethodCode *>(&MC));
          break;
        }
  }

  const std::string *poolStr(const std::string &S) {
    auto It = StrIndex.find(S);
    if (It != StrIndex.end())
      return It->second;
    LP.StrPool.push_back(S);
    const std::string *P = &LP.StrPool.back();
    StrIndex.emplace(S, P);
    return P;
  }

  LInstr errInstr(const std::string &Msg) {
    LInstr L;
    L.Code = LOp::LinkError;
    L.Imm.P = poolStr(Msg);
    return L;
  }

  uint32_t makeFieldSite(Symbol *Sym) {
    FieldSite FS;
    FS.Sym = Sym;
    FS.NameOrd = Sym->name().ordinal();
    LP.FieldSites.push_back(FS);
    return static_cast<uint32_t>(LP.FieldSites.size() - 1);
  }

  uint32_t makeCallSite(Symbol *Sym) {
    SymbolTable &Syms = Comp.syms();
    CallSite CS;
    CS.Sym = Sym;
    CS.NameOrd = Sym->name().ordinal();
    Name N = Sym->name();
    if (N == Syms.std().ToString)
      CS.NC = CallSite::IsToString;
    else if (N == Syms.std().EqEq || N == Syms.std().Equals)
      CS.NC = CallSite::IsEquals;
    else if (N == Syms.std().BangEq)
      CS.NC = CallSite::IsBangEq;
    LP.CallSites.push_back(CS);
    return static_cast<uint32_t>(LP.CallSites.size() - 1);
  }

  /// Routes one invoke instruction. The checks mirror evalApply's order
  /// exactly — the sym-keyed intrinsics come before super/virtual
  /// dispatch, so e.g. an InvokeSuper on a builtin Object method lands on
  /// the value opcodes, just like the tree interpreter.
  LInstr routeInvoke(const Instr &I) {
    SymbolTable &Syms = Comp.syms();
    Symbol *Sym = I.Sym;
    uint16_t Argc = static_cast<uint16_t>(I.ArgCount);
    LInstr L;
    L.B = Argc;
    if (!Sym)
      return errInstr("cannot call this function shape");
    // 1. Primitive operators (eager here: && / || survivors).
    if (Syms.isPrimOp(Sym)) {
      PrimOpKind K = Syms.primOpKindOf(Sym->name());
      L.Code = LOp::PrimOpEager;
      L.A = static_cast<uint32_t>(static_cast<int8_t>(K));
      return L;
    }
    // 2. Array intrinsics.
    if (Sym == Syms.arrayApply()) {
      L.Code = LOp::ArrayLoad;
      return L;
    }
    if (Sym == Syms.arrayUpdate()) {
      L.Code = LOp::ArrUpdateV;
      return L;
    }
    if (Sym == Syms.arrayLength()) {
      L.Code = LOp::ArrayLength;
      return L;
    }
    // 3. String + / length (other string-owned syms fall through, like
    // the interpreter's non-returning if).
    if (Sym->owner() == Syms.stringClass()) {
      if (Sym->name().text() == "+") {
        L.Code = LOp::Concat;
        return L;
      }
      if (Sym->name() == Syms.std().Length) {
        L.Code = LOp::StrLen;
        return L;
      }
    }
    // 4. Runtime.equals.
    if (Sym == Syms.runtimeEqualsMethod()) {
      L.Code = LOp::RuntimeEq;
      return L;
    }
    // 5. Predef printing.
    if (Sym == Syms.printlnMethod()) {
      L.Code = LOp::Println;
      return L;
    }
    if (Sym == Syms.printMethod()) {
      L.Code = LOp::Print;
      return L;
    }
    // 6. Object methods on arbitrary values.
    if (Sym->owner() == Syms.objectClass() && Sym->is(SymFlag::Builtin)) {
      Name N = Sym->name();
      if (N == Syms.std().EqEq || N == Syms.std().Equals) {
        L.Code = LOp::ValueEq;
        return L;
      }
      if (N == Syms.std().BangEq) {
        L.Code = LOp::ValueNe;
        return L;
      }
      if (N == Syms.std().ToString) {
        L.Code = LOp::ValueToString;
        return L;
      }
      if (N == Syms.std().GetClass) {
        L.Code = LOp::GetClassV;
        return L;
      }
    }
    // 7. Super calls: resolve the target method statically.
    if (I.Code == Op::InvokeSuper) {
      ClassSymbol *Target = I.SuperCls;
      if (!Target)
        return errInstr("missing super method " + Sym->name().str());
      if (Sym->is(SymFlag::Constructor)) {
        if (Target->is(SymFlag::Builtin)) {
          L.Code = LOp::InvokeSuperUnit;
          return L;
        }
        LClass *LC = ensureClass(Target);
        if (LC->Ctor) {
          L.Code = LOp::InvokeSuperM;
          L.Imm.P = LC->Ctor;
          return L;
        }
        L.Code = LOp::InvokeSuperUnit;
        return L;
      }
      LClass *LC = ensureClass(Target);
      if (LMethod **M = LC->Methods.find(Sym->name().ordinal())) {
        L.Code = LOp::InvokeSuperM;
        L.Imm.P = *M;
        return L;
      }
      return errInstr("missing super method " + Sym->name().str());
    }
    // 8. Plain virtual dispatch through an inline cache.
    L.Code = LOp::InvokeVirt;
    L.A = makeCallSite(Sym);
    return L;
  }

  void linkMethod(const MethodCode &MC, LMethod &M, uint64_t &Fused) {
    StackDepths Depths;
    if (!verifyMethod(MC, LP.Failures, &Depths))
      return; // Failures non-empty: the VM refuses the whole program
    M.MaxStack = Depths.MaxStack;

    // Frame slots: 0 = this, then declared params, then locals in
    // first-reference order.
    FlatPtrMap<Symbol *, uint32_t> SlotOf; // slot + 1
    uint32_t NextSlot = 1;
    for (Symbol *P : MC.Params) {
      SlotOf.insert(P, NextSlot + 1);
      ++NextSlot;
    }
    auto SlotFor = [&](Symbol *Sym) -> uint32_t {
      if (uint32_t *S = SlotOf.find(Sym))
        return *S - 1;
      uint32_t Slot = NextSlot++;
      SlotOf.insert(Sym, Slot + 1);
      M.LocalDefaults.push_back(defaultKind(Sym->info()));
      return Slot;
    };
    auto IsSelfField = [&](Symbol *Sym) {
      // A symbol the frame can never hold: owned by a class (field /
      // accessor target). The interpreter reaches these through Self
      // after a frame miss; params/locals are method-owned, so link-time
      // classification agrees with the runtime-order lookup.
      return !SlotOf.find(Sym) && Sym->owner() && Sym->owner()->isClass();
    };

    M.Code.reserve(MC.Code.size());
    for (const Instr &I : MC.Code) {
      LInstr L;
      switch (I.Code) {
      case Op::Nop:
        L.Code = LOp::Nop;
        break;
      case Op::ConstUnit:
        L.Code = LOp::ConstUnit;
        break;
      case Op::ConstBool:
        L.Code = LOp::ConstBool;
        L.Imm.I = I.Imm;
        break;
      case Op::ConstInt:
        L.Code = LOp::ConstInt;
        L.Imm.I = I.Imm;
        break;
      case Op::ConstDouble:
        L.Code = LOp::ConstDouble;
        L.Imm.D = I.Num;
        break;
      case Op::ConstStr:
        L.Code = LOp::ConstStr;
        L.Imm.P = poolStr(I.Str);
        break;
      case Op::ConstNull:
        L.Code = LOp::ConstNull;
        break;
      case Op::ConstClass:
        L.Code = LOp::ConstClass;
        L.Imm.P = I.TypeRef;
        break;
      case Op::Load:
        if (!I.Sym) {
          L.Code = LOp::LoadSlot;
          L.A = 0;
        } else if (IsSelfField(I.Sym)) {
          L.Code = LOp::LoadSelfField;
          L.A = makeFieldSite(I.Sym);
        } else {
          L.Code = LOp::LoadSlot;
          L.A = SlotFor(I.Sym);
        }
        break;
      case Op::Store:
        if (IsSelfField(I.Sym)) {
          L.Code = LOp::StoreSelfField;
          L.A = makeFieldSite(I.Sym);
        } else {
          L.Code = LOp::StoreSlot;
          L.A = SlotFor(I.Sym);
        }
        break;
      case Op::GetField:
        L.Code = LOp::GetField;
        L.A = makeFieldSite(I.Sym);
        break;
      case Op::PutField:
        L.Code = LOp::PutField;
        L.A = makeFieldSite(I.Sym);
        break;
      case Op::GetModule: {
        ClassSymbol *Cls =
            I.Sym && I.Sym->info() ? I.Sym->info()->classSymbol() : nullptr;
        if (!Cls) {
          L = errInstr("module without a class");
          break;
        }
        L.Code = LOp::GetModule;
        L.A = ensureClass(Cls)->Index;
        break;
      }
      case Op::NewObject: {
        auto *Cls = dyn_cast_or_null<ClassSymbol>(I.Sym);
        if (!Cls) {
          L = errInstr("new of non-class type");
          break;
        }
        LClass *LC = ensureClass(Cls);
        L.Code = Cls->is(SymFlag::Builtin) ? LOp::NewBuiltin : LOp::NewObject;
        L.A = LC->Index;
        L.B = static_cast<uint16_t>(I.ArgCount);
        break;
      }
      case Op::InvokeVirt:
      case Op::InvokeSuper:
        L = routeInvoke(I);
        break;
      case Op::InvokeStatic:
        L = errInstr("invoke-static is never generated");
        break;
      case Op::InstanceOf:
        L.Code = LOp::InstanceOf;
        L.Imm.P = I.TypeRef;
        break;
      case Op::CheckCast:
        L.Code = LOp::CheckCast;
        L.Imm.P = I.TypeRef;
        break;
      case Op::NewArray:
        L.Code = LOp::NewArray;
        L.Imm.P = I.TypeRef;
        L.B = static_cast<uint16_t>(defaultKind(I.TypeRef));
        break;
      case Op::ArrayLoad:
        L.Code = LOp::ArrayLoad;
        break;
      case Op::ArrayStore:
        L.Code = LOp::ArrayStore;
        break;
      case Op::ArrayLength:
        L.Code = LOp::ArrayLength;
        break;
      case Op::Add: L.Code = LOp::Add; break;
      case Op::Sub: L.Code = LOp::Sub; break;
      case Op::Mul: L.Code = LOp::Mul; break;
      case Op::Div: L.Code = LOp::Div; break;
      case Op::Rem: L.Code = LOp::Rem; break;
      case Op::Neg: L.Code = LOp::Neg; break;
      case Op::CmpLt: L.Code = LOp::CmpLt; break;
      case Op::CmpLe: L.Code = LOp::CmpLe; break;
      case Op::CmpGt: L.Code = LOp::CmpGt; break;
      case Op::CmpGe: L.Code = LOp::CmpGe; break;
      case Op::CmpEq: L.Code = LOp::CmpEq; break;
      case Op::CmpNe: L.Code = LOp::CmpNe; break;
      case Op::Not: L.Code = LOp::Not; break;
      case Op::Concat: L.Code = LOp::Concat; break;
      case Op::Jump:
        L.Code = LOp::Jump;
        L.A = static_cast<uint32_t>(I.Target);
        break;
      case Op::JumpIfFalse:
        L.Code = LOp::JumpIfFalse;
        L.A = static_cast<uint32_t>(I.Target);
        break;
      case Op::AThrow:
        L.Code = LOp::AThrow;
        break;
      case Op::ReturnValue:
        L.Code = LOp::ReturnValue;
        break;
      case Op::Pop:
        L.Code = LOp::Pop;
        break;
      case Op::Dup:
        L.Code = LOp::Dup;
        break;
      }
      M.Code.push_back(L);
    }
    M.NumSlots = NextSlot;

    M.Handlers.clear();
    for (size_t H = 0; H < MC.Handlers.size(); ++H) {
      const Handler &In = MC.Handlers[H];
      LHandler LH;
      LH.Start = In.Start;
      LH.End = In.End;
      LH.Entry = In.Entry;
      LH.CatchType = In.CatchType;
      LH.IsFinally = In.IsFinally;
      LH.Depth = Depths.HandlerDepth[H];
      M.Handlers.push_back(LH);
    }

    if (Opts.Superinstructions) {
      // To fixpoint: second-order rules consume first-pass output
      // (LoadConstInt;Add -> LoadConstAdd), and the stream shrinks
      // monotonically so this terminates.
      while (uint64_t N = fuseMethod(M))
        Fused += N;
    }
  }

  /// Pairwise peephole over one linked method. Never fuses across a
  /// leader (jump target or handler boundary): a fused instruction must
  /// be unobservable to control flow and to the unwinder.
  uint64_t fuseMethod(LMethod &M) {
    const size_t N = M.Code.size();
    std::vector<bool> Leader(N + 1, false);
    Leader[0] = true;
    for (const LInstr &L : M.Code)
      if (L.Code == LOp::Jump || L.Code == LOp::JumpIfFalse)
        Leader[L.A] = true;
    for (const LHandler &H : M.Handlers) {
      Leader[H.Start] = true;
      Leader[H.End] = true;
      Leader[H.Entry] = true;
    }

    std::vector<LInstr> Out;
    Out.reserve(N);
    std::vector<uint32_t> OldToNew(N + 1, 0);
    uint64_t Fused = 0;
    for (size_t I = 0; I < N;) {
      OldToNew[I] = static_cast<uint32_t>(Out.size());
      bool DidFuse = false;
      if (I + 1 < N && !Leader[I + 1]) {
        const LInstr &A = M.Code[I];
        const LInstr &B = M.Code[I + 1];
        // Degenerate fusion: push-unit-then-discard (every statement-
        // position assignment or unit call compiles to it; the pair is
        // ~20% of dynamic dispatches on the mega-methods family) fuses
        // to *zero* instructions. Neither op can throw or be observed,
        // so eliding the pair is safe anywhere control cannot enter
        // between them; jumps TO the pair land on whatever follows.
        if (A.Code == LOp::ConstUnit && B.Code == LOp::Pop) {
          OldToNew[I + 1] = static_cast<uint32_t>(Out.size());
          ++Fused;
          I += 2;
          continue;
        }
        for (const FuseRule &R : FuseRules) {
          if (A.Code != R.First || B.Code != R.Second)
            continue;
          LInstr F;
          F.Code = R.Fused;
          switch (R.Fused) {
          case LOp::LoadLoad:
            if (B.A > 0xFFFF)
              continue; // second slot must pack into B
            F.A = A.A;
            F.B = static_cast<uint16_t>(B.A);
            break;
          case LOp::LoadConstInt:
            F.A = A.A;
            F.Imm.I = B.Imm.I;
            break;
          case LOp::LoadGetField:
            if (A.A > 0xFFFF)
              continue; // slot must pack into B (site keeps A)
            F.A = B.A;
            F.B = static_cast<uint16_t>(A.A);
            break;
          case LOp::LoadConstAdd:
          case LOp::LoadConstSub:
          case LOp::LoadConstMul:
          case LOp::LoadConstDiv:
          case LOp::LoadConstRem:
            F.A = A.A; // the LoadConstInt's slot + constant
            F.Imm.I = A.Imm.I;
            break;
          default: // compare-and-branch and arith-store: B's operand
            F.A = B.A;
            break;
          }
          OldToNew[I + 1] = static_cast<uint32_t>(Out.size());
          Out.push_back(F);
          ++Fused;
          I += 2;
          DidFuse = true;
          break;
        }
      }
      if (!DidFuse) {
        Out.push_back(M.Code[I]);
        ++I;
      }
    }
    OldToNew[N] = static_cast<uint32_t>(Out.size());

    for (LInstr &L : Out)
      switch (L.Code) {
      case LOp::Jump:
      case LOp::JumpIfFalse:
      case LOp::CmpLtJF:
      case LOp::CmpLeJF:
      case LOp::CmpGtJF:
      case LOp::CmpGeJF:
      case LOp::CmpEqJF:
      case LOp::CmpNeJF:
        L.A = OldToNew[L.A];
        break;
      default:
        break;
      }
    for (LHandler &H : M.Handlers) {
      H.Start = OldToNew[H.Start];
      H.End = OldToNew[H.End];
      H.Entry = OldToNew[H.Entry];
    }
    M.Code = std::move(Out);
    return Fused;
  }

  const Program &Prog;
  CompilerContext &Comp;
  const LinkOptions &Opts;
  LinkedProgram LP;
  FlatPtrMap<ClassSymbol *, const ClassFile *> FileOf;
  FlatPtrMap<MethodCode *, LMethod *> MethodOf;
  std::map<std::string, const std::string *> StrIndex;
};

} // namespace

LinkedProgram mpc::linkProgram(const Program &Prog, CompilerContext &Comp,
                               const LinkOptions &Opts) {
  return Linker(Prog, Comp, Opts).run();
}
