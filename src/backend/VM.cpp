//===----------------------------------------------------------------------===//
///
/// \file
/// The direct-threaded VM. One contiguous value stack holds every frame's
/// slots (0 = this, then params, then locals) followed by its operand
/// stack; calls are a frame push on the same stack, so the receiver and
/// arguments are never copied. Virtual calls and field accesses go
/// through the monomorphic inline caches the linker allocated
/// (CallSite/FieldSite); a cache hit is one pointer compare.
///
/// Semantics are the tree interpreter's, bit for bit — every error
/// string, every evaluation-order quirk the bytecode preserves, the
/// show/equals/conforms mirrors. Where the two engines cannot agree
/// (documented at the relevant opcode), the differential suite pins the
/// actual behavior.
///
/// Error unwinding has two modes. Guest exceptions (`throw` in the
/// program) unwind through typed catch handlers and finally routes using
/// `conforms`. VM-level errors (the InterpError analogue: step limit,
/// missing member, bad receiver) unwind through *finally routes only*,
/// pushing an ErrToken sentinel in place of an exception value; when the
/// finalizer's closing AThrow pops the token, the error unwind resumes
/// with the message parked in PendingError. A real guest throw inside the
/// finalizer replaces the error, exactly like a C++ exception thrown from
/// a catch-all block.
///
//===----------------------------------------------------------------------===//

#include "backend/VM.h"

#include "ast/Types.h"

#include <cmath>
#include <cstring>
#include <deque>
#include <new>
#include <sstream>

using namespace mpc;

// Direct threading needs GNU labels-as-values; MSVC and strict-ISO builds
// fall back to the token-threaded switch. MPC_VM_NO_COMPUTED_GOTO forces
// the fallback so the CI matrix can differential-test both loops.
#if !defined(MPC_VM_NO_COMPUTED_GOTO) && defined(__GNUC__)
#define MPC_VM_COMPUTED_GOTO 1
#else
#define MPC_VM_COMPUTED_GOTO 0
#endif

namespace {

struct VMObj;
struct VMArr;

/// A flat tagged value: one kind byte and one 8-byte payload. The tree
/// interpreter carries separate I/D/S fields per value (so e.g. `V.I` of
/// a Double reads a never-written zero); the helpers below (truthy /
/// intOf / numOf) reproduce those reads against the union.
struct VMValue {
  enum K : uint8_t {
    Unit,
    Bool,
    Int,
    Dbl,
    Str,
    Null,
    Obj,
    Arr,
    Clazz,
    /// Sentinel pushed by the error unwinder in place of an exception
    /// value when routing a VM error through a finally block. Never
    /// observable by guest code: only AThrow inspects it.
    ErrToken,
  };
  K Kind;
  union {
    int64_t I;
    double D;
    const std::string *S;
    VMObj *O;
    VMArr *A;
    const Type *Cl;
  };
  VMValue() : Kind(Unit), I(0) {}
};

/// Heap object: class pointer, presence count, then the layout's field
/// values in place. NumFields mirrors the interpreter's per-object field
/// *map*: a builtin shell constructed with no arguments has an empty map
/// (reads fail), even though the layout reserves the payload slot.
/// Declared classes are always fully present.
struct VMObj {
  LClass *Cls;
  uint32_t NumFields;
  VMValue *fields() { return reinterpret_cast<VMValue *>(this + 1); }
};

/// Heap array: length then the elements in place.
struct VMArr {
  int64_t Len;
  VMValue *elems() { return reinterpret_cast<VMValue *>(this + 1); }
};

/// Chunked bump allocator for objects and arrays. Guest programs are
/// bounded by the step limit, so the run's allocations simply live until
/// the VM is destroyed; no collector.
class VMArena {
public:
  void *alloc(size_t Bytes) {
    Bytes = (Bytes + 15) & ~size_t(15);
    if (Bytes > ChunkBytes) {
      Chunks.push_back(std::make_unique<char[]>(Bytes));
      Used = ChunkBytes; // mark the oversized chunk full
      return Chunks.back().get();
    }
    if (Used + Bytes > ChunkBytes) {
      Chunks.push_back(std::make_unique<char[]>(ChunkBytes));
      Used = 0;
    }
    void *P = Chunks.back().get() + Used;
    Used += Bytes;
    return P;
  }

private:
  static constexpr size_t ChunkBytes = 1 << 20;
  std::vector<std::unique_ptr<char[]>> Chunks;
  size_t Used = ChunkBytes;
};

VMValue vBool(bool B) {
  VMValue V;
  V.Kind = VMValue::Bool;
  V.I = B;
  return V;
}
VMValue vInt(int64_t N) {
  VMValue V;
  V.Kind = VMValue::Int;
  V.I = N;
  return V;
}
VMValue vDbl(double N) {
  VMValue V;
  V.Kind = VMValue::Dbl;
  V.D = N;
  return V;
}
VMValue vStr(const std::string *S) {
  VMValue V;
  V.Kind = VMValue::Str;
  V.S = S;
  return V;
}
VMValue vNull() {
  VMValue V;
  V.Kind = VMValue::Null;
  return V;
}
VMValue vObj(VMObj *O) {
  VMValue V;
  V.Kind = VMValue::Obj;
  V.O = O;
  return V;
}
VMValue vArr(VMArr *A) {
  VMValue V;
  V.Kind = VMValue::Arr;
  V.A = A;
  return V;
}
VMValue vClazz(const Type *Cl) {
  VMValue V;
  V.Kind = VMValue::Clazz;
  V.Cl = Cl;
  return V;
}

VMValue defaultOf(DefaultKind K) {
  switch (K) {
  case DefaultKind::Int0:
    return vInt(0);
  case DefaultKind::False:
    return vBool(false);
  case DefaultKind::Dbl0:
    return vDbl(0);
  case DefaultKind::Unit:
    return VMValue();
  case DefaultKind::Null:
    break;
  }
  return vNull();
}

/// One call frame. Base indexes slot 0 (this) on the shared value stack;
/// the operand stack starts at StackBase = Base + NumSlots.
struct VMFrame {
  const LMethod *M;
  uint32_t Pc;
  uint32_t Base;
  uint32_t StackBase;
  uint8_t Flags;
};
/// Constructor frames: discard the callee's result on return and leave
/// the freshly built object (stashed just below Base) on top instead.
constexpr uint8_t FrameDropResult = 1;

} // namespace

class VM::Impl {
public:
  Impl(CompilerContext &Comp, LinkedProgram &Linked, uint64_t StepLimit)
      : Comp(Comp), LP(Linked), StepLimit(StepLimit) {
    for (const auto &C : LP.Classes)
      ClassAt.push_back(C.get());
    Modules.resize(ClassAt.size());
    ModuleReady.assign(ClassAt.size(), 0);
    std::memset(OpCount, 0, sizeof(OpCount));
    // Resolve the stats-registry slots once: finish() runs after every
    // runMain, and repeated executions (bench loops, warmed services)
    // must not pay a map-of-strings walk per guest run. References into
    // the registry stay valid for the VM's lifetime (the context is only
    // reset between jobs, never while a VM is live).
    StatsRegistry &S = Comp.stats();
    StepsC = &S.counter("backend.vm.steps");
    for (size_t I = 0; I < static_cast<size_t>(LOp::NumLOps); ++I)
      DispatchC[I] = &S.counter(std::string("backend.vm.dispatch.") +
                                lopName(static_cast<LOp>(I)));
    CallHitsC = &S.counter("backend.vm.ic.call.hits");
    CallMissesC = &S.counter("backend.vm.ic.call.misses");
    FieldHitsC = &S.counter("backend.vm.ic.field.hits");
    FieldMissesC = &S.counter("backend.vm.ic.field.misses");
    FramesC = &S.counter("backend.vm.frames");
    ObjAllocsC = &S.counter("backend.vm.alloc.objects");
    ArrAllocsC = &S.counter("backend.vm.alloc.arrays");
  }

  ExecResult runMain(Symbol *Entry, const std::vector<std::string> &Args) {
    Res = ExecResult();
    Output.clear();
    Steps = 0;
    resetCounters();
    Frames.clear();
    Sp = 0;
    PendingError.clear();

    if (!LP.Failures.empty()) {
      Res.Uncaught = true;
      Res.Error =
          "bytecode verification failed: " + LP.Failures.front().Message;
      return finish();
    }

    auto *OwnerCls = cast<ClassSymbol>(Entry->owner());
    LClass **LCp = LP.ClassBySym.find(OwnerCls);
    LClass *LC = LCp ? *LCp : nullptr;

    // Module instance of the entry point's owner, constructor included
    // (the lazy GetModule path would do the same on first touch).
    VMValue ModV;
    if (LC && !ModuleReady[LC->Index]) {
      ModV = vObj(allocObj(LC));
      Modules[LC->Index] = ModV;
      ModuleReady[LC->Index] = 1;
      if (LC->Ctor) {
        if (LC->Ctor->NumParams != 0) {
          Res.Uncaught = true;
          Res.Error = "arity mismatch calling " + LC->Ctor->Sym->name().str();
          return finish();
        }
        ensureStack(8);
        Sp = 0;
        Stack[Sp++] = ModV; // result (kept by FrameDropResult)
        Stack[Sp++] = ModV; // receiver = slot 0
        pushFrame(LC->Ctor, 1, FrameDropResult);
        if (!run())
          return finish();
      }
    } else if (LC) {
      ModV = Modules[LC->Index];
    }

    // Entry lookup by name, like the interpreter's findMethod walk
    // (hoisted into the linked method table).
    LMethod **Mp = LC ? LC->Methods.find(Entry->name().ordinal()) : nullptr;
    if (!Mp) {
      Res.Uncaught = true;
      Res.Error = "no implementation of " + Entry->name().str() + " in " +
                  OwnerCls->name().str();
      return finish();
    }
    LMethod *M = *Mp;
    if (M->NumParams != 1) {
      Res.Uncaught = true;
      Res.Error = "arity mismatch calling " + M->Sym->name().str();
      return finish();
    }

    VMArr *ArgArr = allocArr(static_cast<int64_t>(Args.size()));
    for (size_t I = 0; I < Args.size(); ++I)
      ArgArr->elems()[I] = vStr(internStr(Args[I]));

    ensureStack(8);
    Sp = 0;
    Stack[Sp++] = ModV;
    Stack[Sp++] = vArr(ArgArr);
    pushFrame(M, 0, 0);
    run();
    return finish();
  }

  void enablePairCounts() {
    PairsOn = true;
    const size_t N = static_cast<size_t>(LOp::NumLOps);
    Pairs.assign(N * N, 0);
  }
  const std::vector<uint64_t> &pairCounts() const { return Pairs; }

private:
  //===--- heap -----------------------------------------------------------===//

  const std::string *internStr(std::string S) {
    StrHeap.push_back(std::move(S));
    return &StrHeap.back();
  }

  VMObj *allocObj(LClass *LC) {
    const size_t N = LC->FieldSyms.size();
    auto *O =
        static_cast<VMObj *>(Arena.alloc(sizeof(VMObj) + N * sizeof(VMValue)));
    O->Cls = LC;
    // Builtins start with an *empty* field map like the interpreter's
    // builtinNew; the payload slot only becomes present when the
    // constructor argument lands (NewBuiltin) or a store reaches it.
    O->NumFields = LC->Builtin ? 0 : static_cast<uint32_t>(N);
    VMValue *F = O->fields();
    for (size_t I = 0; I < N; ++I)
      F[I] = defaultOf(LC->FieldDefaults[I]);
    ++ObjAllocs;
    return O;
  }

  VMArr *allocArr(int64_t Len, DefaultKind DK = DefaultKind::Null) {
    // Negative or absurd lengths die the way the interpreter's
    // vector::assign(size_t(Len)) does: an allocation failure, not a
    // guest-visible exception.
    if (Len < 0 || static_cast<uint64_t>(Len) > (uint64_t(1) << 31))
      throw std::bad_alloc();
    auto *A = static_cast<VMArr *>(
        Arena.alloc(sizeof(VMArr) + static_cast<size_t>(Len) * sizeof(VMValue)));
    A->Len = Len;
    VMValue D = defaultOf(DK);
    for (int64_t I = 0; I < Len; ++I)
      A->elems()[I] = D;
    ++ArrAllocs;
    return A;
  }

  VMValue makeError(const std::string &Msg) {
    LClass **TP = LP.ClassBySym.find(Comp.syms().throwableClass());
    LClass *LC = *TP; // the linker always materializes Throwable
    VMObj *O = allocObj(LC);
    if (LC->MsgSlot >= 0) {
      O->fields()[LC->MsgSlot] = vStr(internStr(Msg));
      O->NumFields = static_cast<uint32_t>(LC->MsgSlot) + 1;
    }
    return vObj(O);
  }

  //===--- value mirrors (interpreter-exact) ------------------------------===//

  /// The interpreter's Value keeps I alongside D/S/O, so `truthy()`
  /// (I != 0) is false for every kind that never writes I. Same for the
  /// int and double reads below.
  static bool truthy(const VMValue &V) {
    return (V.Kind == VMValue::Bool || V.Kind == VMValue::Int) && V.I != 0;
  }
  static int64_t intOf(const VMValue &V) {
    return (V.Kind == VMValue::Bool || V.Kind == VMValue::Int) ? V.I : 0;
  }
  static double numOf(const VMValue &V) {
    return V.Kind == VMValue::Dbl ? V.D : static_cast<double>(intOf(V));
  }
  /// Int results wrap at 32 bits like JVM ints (interpreter's wrap32).
  static int64_t wrap32(int64_t V) { return static_cast<int32_t>(V); }

  static VMValue caseSlotValue(VMObj *O, int32_t Slot) {
    if (Slot < 0 || static_cast<uint32_t>(Slot) >= O->NumFields)
      return vNull();
    return O->fields()[Slot];
  }

  bool conforms(const VMValue &V, const Type *Ty) {
    if (!Ty || Ty->isAny())
      return true;
    switch (Ty->kind()) {
    case TypeKind::Primitive:
      switch (cast<PrimitiveType>(Ty)->prim()) {
      case PrimKind::Int:
        return V.Kind == VMValue::Int;
      case PrimKind::Boolean:
        return V.Kind == VMValue::Bool;
      case PrimKind::Double:
        return V.Kind == VMValue::Dbl || V.Kind == VMValue::Int;
      case PrimKind::Unit:
        return V.Kind == VMValue::Unit;
      case PrimKind::Null:
        return V.Kind == VMValue::Null;
      default:
        return true;
      }
    case TypeKind::Class: {
      ClassSymbol *Cls = cast<ClassType>(Ty)->cls();
      if (V.Kind == VMValue::Null)
        return true; // null conforms to reference types
      if (Cls == Comp.syms().objectClass())
        return true;
      if (V.Kind == VMValue::Str)
        return Cls == Comp.syms().stringClass();
      if (V.Kind == VMValue::Obj)
        return V.O->Cls->Cls->derivesFrom(Cls);
      if (V.Kind == VMValue::Arr || V.Kind == VMValue::Clazz)
        return Cls == Comp.syms().objectClass();
      return false;
    }
    case TypeKind::Array:
      return V.Kind == VMValue::Arr || V.Kind == VMValue::Null;
    default:
      return true;
    }
  }

  bool valueEquals(const VMValue &A, const VMValue &B) {
    if (A.Kind == VMValue::Null || B.Kind == VMValue::Null)
      return A.Kind == B.Kind;
    const bool ANum = A.Kind == VMValue::Int || A.Kind == VMValue::Dbl;
    const bool BNum = B.Kind == VMValue::Int || B.Kind == VMValue::Dbl;
    if (ANum && BNum) {
      if (A.Kind == VMValue::Int && B.Kind == VMValue::Int)
        return A.I == B.I;
      return numOf(A) == numOf(B);
    }
    if (A.Kind != B.Kind)
      return false;
    switch (A.Kind) {
    case VMValue::Unit:
      return true;
    case VMValue::Bool:
      return A.I == B.I;
    case VMValue::Str:
      return *A.S == *B.S;
    case VMValue::Clazz: {
      // Class literals compare erased, like the JVM.
      const auto *CA = dyn_cast<ClassType>(A.Cl);
      const auto *CB = dyn_cast<ClassType>(B.Cl);
      if (CA && CB)
        return CA->cls() == CB->cls();
      return A.Cl == B.Cl;
    }
    case VMValue::Arr:
      return A.A == B.A;
    case VMValue::Obj: {
      if (A.O == B.O)
        return true;
      // Case classes compare structurally over the precomputed slots.
      LClass *C = A.O->Cls;
      if (C == B.O->Cls && C->IsCase) {
        for (int32_t Slot : C->CaseFieldSlots)
          if (!valueEquals(caseSlotValue(A.O, Slot),
                           caseSlotValue(B.O, Slot)))
            return false;
        return true;
      }
      return false;
    }
    default:
      return false;
    }
  }

  VMValue classValueOf(const VMValue &V) {
    if (V.Kind == VMValue::Obj)
      return vClazz(Comp.types().classType(V.O->Cls->Cls));
    if (V.Kind == VMValue::Str)
      return vClazz(Comp.syms().stringType());
    return vClazz(Comp.syms().objectType());
  }

  std::string show(const VMValue &V) {
    switch (V.Kind) {
    case VMValue::Unit:
      return "()";
    case VMValue::Bool:
      return V.I ? "true" : "false";
    case VMValue::Int:
      return std::to_string(V.I);
    case VMValue::Dbl: {
      std::ostringstream OS;
      OS << V.D;
      return OS.str();
    }
    case VMValue::Str:
      return *V.S;
    case VMValue::Null:
      return "null";
    case VMValue::Clazz:
      return "class " + V.Cl->show();
    case VMValue::Arr: {
      std::string S = "Array(";
      for (int64_t I = 0; I < V.A->Len; ++I) {
        if (I)
          S += ", ";
        S += show(V.A->elems()[I]);
      }
      return S + ")";
    }
    case VMValue::Obj: {
      LClass *C = V.O->Cls;
      if (C->IsCase) {
        std::string S(C->Cls->name().text());
        S += "(";
        bool First = true;
        for (int32_t Slot : C->CaseFieldSlots) {
          if (!First)
            S += ", ";
          First = false;
          S += show(caseSlotValue(V.O, Slot));
        }
        return S + ")";
      }
      if (C->IsThrowable) {
        std::string S(C->Cls->name().text());
        VMValue Msg = caseSlotValue(V.O, C->MsgSlot);
        if (Msg.Kind == VMValue::Str)
          S += "(" + *Msg.S + ")";
        return S;
      }
      return std::string(C->Cls->name().text()) + "@instance";
    }
    default:
      return "?";
    }
  }

  //===--- frames & unwinding ---------------------------------------------===//

  void ensureStack(size_t Need) {
    if (Stack.size() < Need)
      Stack.resize(Need + 256);
  }

  void pushFrame(const LMethod *M, uint32_t Base, uint8_t Flags) {
    ensureStack(static_cast<size_t>(Base) + M->NumSlots + M->MaxStack + 8);
    // Locals (slots after this+params) start at their type's default.
    VMValue *Slots = Stack.data() + Base;
    const uint32_t FirstLocal = 1 + M->NumParams;
    for (size_t I = 0; I < M->LocalDefaults.size(); ++I)
      Slots[FirstLocal + I] = defaultOf(M->LocalDefaults[I]);
    Sp = Base + M->NumSlots;
    Frames.push_back({M, 0, Base, Sp, Flags});
    ++FramesPushed;
  }

  /// Unwinds a guest exception: typed handlers match by conforms, finally
  /// routes match everything. Returns false when it escapes main.
  bool unwindGuest(const VMValue &Exn) {
    PendingError.clear(); // a real throw replaces an in-flight VM error
    while (!Frames.empty()) {
      VMFrame &F = Frames.back();
      const uint32_t At = F.Pc - 1;
      for (const LHandler &H : F.M->Handlers) {
        if (At < H.Start || At >= H.End)
          continue;
        if (!H.IsFinally && !conforms(Exn, H.CatchType))
          continue;
        Sp = F.StackBase + H.Depth;
        Stack[Sp++] = Exn;
        F.Pc = H.Entry;
        return true;
      }
      Sp = F.Base;
      Frames.pop_back();
    }
    Res.Uncaught = true;
    Res.Error = "uncaught exception: " + show(Exn);
    return false;
  }

  /// Unwinds a VM-level error. Only finally routes participate (the
  /// interpreter's catch(...) — typed catches see ThrownValue only); the
  /// finalizer runs with an ErrToken standing in for the exception and
  /// its closing AThrow resumes this unwind.
  bool unwindError(std::string Msg) {
    while (!Frames.empty()) {
      VMFrame &F = Frames.back();
      const uint32_t At = F.Pc - 1;
      for (const LHandler &H : F.M->Handlers) {
        if (At < H.Start || At >= H.End || !H.IsFinally)
          continue;
        Sp = F.StackBase + H.Depth;
        VMValue Token;
        Token.Kind = VMValue::ErrToken;
        Stack[Sp++] = Token;
        PendingError = std::move(Msg);
        F.Pc = H.Entry;
        return true;
      }
      Sp = F.Base;
      Frames.pop_back();
    }
    Res.Uncaught = true;
    Res.Error = std::move(Msg);
    return false;
  }

  //===--- inline-cache field resolution ----------------------------------===//

  /// Ident-through-self resolution: exact symbol only, like the
  /// interpreter's frame-miss path (Fields.find(Sym)).
  static bool resolveFieldBySym(LClass *C, Symbol *Sym, uint32_t &Slot) {
    if (uint32_t *S = C->FieldSlotBySym.find(Sym)) {
      Slot = *S - 1;
      return true;
    }
    return false;
  }

  /// Select resolution: exact symbol, then first same-named field in
  /// layout order (the trait-copy fallback).
  static bool resolveFieldByName(LClass *C, const FieldSite &FS,
                                 uint32_t &Slot) {
    if (uint32_t *S = C->FieldSlotBySym.find(FS.Sym)) {
      Slot = *S - 1;
      return true;
    }
    if (uint32_t *S = C->FieldSlotByName.find(FS.NameOrd)) {
      Slot = *S - 1;
      return true;
    }
    return false;
  }

  //===--- stats ----------------------------------------------------------===//

  void resetCounters() {
    std::memset(OpCount, 0, sizeof(OpCount));
    CallHits = CallMisses = FieldHits = FieldMisses = 0;
    FramesPushed = ObjAllocs = ArrAllocs = 0;
  }

  ExecResult finish() {
    Res.Output = Output;
    Res.StepsExecuted = Steps;
    *StepsC += Steps;
    for (size_t I = 0; I < static_cast<size_t>(LOp::NumLOps); ++I)
      *DispatchC[I] += OpCount[I];
    *CallHitsC += CallHits;
    *CallMissesC += CallMisses;
    *FieldHitsC += FieldHits;
    *FieldMissesC += FieldMisses;
    *FramesC += FramesPushed;
    *ObjAllocsC += ObjAllocs;
    *ArrAllocsC += ArrAllocs;
    return Res;
  }

  //===--- the dispatch loop ----------------------------------------------===//

  bool run();

  CompilerContext &Comp;
  LinkedProgram &LP;
  uint64_t StepLimit;
  uint64_t Steps = 0;

  std::vector<VMValue> Stack;
  uint32_t Sp = 0;
  std::vector<VMFrame> Frames;

  std::vector<LClass *> ClassAt;
  std::vector<VMValue> Modules;
  std::vector<uint8_t> ModuleReady;

  VMArena Arena;
  std::deque<std::string> StrHeap;
  std::string Output;
  std::string PendingError;
  ExecResult Res;

  uint64_t OpCount[static_cast<size_t>(LOp::NumLOps)];
  uint64_t CallHits = 0, CallMisses = 0;
  uint64_t FieldHits = 0, FieldMisses = 0;
  uint64_t FramesPushed = 0, ObjAllocs = 0, ArrAllocs = 0;

  // Pre-resolved registry slots (see the constructor).
  uint64_t *StepsC = nullptr;
  uint64_t *DispatchC[static_cast<size_t>(LOp::NumLOps)] = {};
  uint64_t *CallHitsC = nullptr, *CallMissesC = nullptr;
  uint64_t *FieldHitsC = nullptr, *FieldMissesC = nullptr;
  uint64_t *FramesC = nullptr, *ObjAllocsC = nullptr, *ArrAllocsC = nullptr;

  bool PairsOn = false;
  std::vector<uint64_t> Pairs;
};

//===--- run(): both dispatch loops from one opcode body list -------------===//

#if MPC_VM_COMPUTED_GOTO
#define VM_CASE(Name) Lbl_##Name:
#else
#define VM_CASE(Name) case LOp::Name:
#endif

/// Save the caller-visible Pc into the current frame (the unwinder and
/// callee pushes need it).
#define VM_SYNC() (Frames.back().Pc = Pc)

/// Reload the loop-local execution state from the top frame (after any
/// frame push/pop or stack reallocation).
#define VM_RELOAD()                                                            \
  do {                                                                         \
    VMFrame &F_ = Frames.back();                                               \
    Code = F_.M->Code.data();                                                  \
    Pc = F_.Pc;                                                                \
    Base = F_.Base;                                                            \
    Sk = Stack.data();                                                         \
  } while (0)

/// Raise a VM-level error at the current instruction.
#define VM_TRAP_ERR(MsgExpr)                                                   \
  do {                                                                         \
    VM_SYNC();                                                                 \
    if (!unwindError(MsgExpr))                                                 \
      return false;                                                            \
    VM_RELOAD();                                                               \
    goto dispatch;                                                             \
  } while (0)

/// Throw a guest exception at the current instruction.
#define VM_TRAP_THROW(ValExpr)                                                 \
  do {                                                                         \
    VM_SYNC();                                                                 \
    VMValue Exn_ = (ValExpr);                                                  \
    if (!unwindGuest(Exn_))                                                    \
      return false;                                                            \
    VM_RELOAD();                                                               \
    goto dispatch;                                                             \
  } while (0)

#define VM_NEXT() goto dispatch

bool VM::Impl::run() {
#if MPC_VM_COMPUTED_GOTO
  // One label per opcode, in exact LOp order: the enum value indexes this
  // table, and the threading pass below bakes the address into LInstr::H.
  static const void *const Labels[] = {
      &&Lbl_Nop,         &&Lbl_ConstUnit,     &&Lbl_ConstBool,
      &&Lbl_ConstInt,    &&Lbl_ConstDouble,   &&Lbl_ConstStr,
      &&Lbl_ConstNull,   &&Lbl_ConstClass,    &&Lbl_LoadSlot,
      &&Lbl_StoreSlot,   &&Lbl_LoadSelfField, &&Lbl_StoreSelfField,
      &&Lbl_GetField,    &&Lbl_PutField,      &&Lbl_GetModule,
      &&Lbl_NewObject,   &&Lbl_NewBuiltin,    &&Lbl_InvokeVirt,
      &&Lbl_InvokeSuperM, &&Lbl_InvokeSuperUnit, &&Lbl_InstanceOf,
      &&Lbl_CheckCast,   &&Lbl_NewArray,      &&Lbl_ArrayLoad,
      &&Lbl_ArrayStore,  &&Lbl_ArrayLength,   &&Lbl_ArrUpdateV,
      &&Lbl_Add,         &&Lbl_Sub,           &&Lbl_Mul,
      &&Lbl_Div,         &&Lbl_Rem,           &&Lbl_Neg,
      &&Lbl_CmpLt,       &&Lbl_CmpLe,         &&Lbl_CmpGt,
      &&Lbl_CmpGe,       &&Lbl_CmpEq,         &&Lbl_CmpNe,
      &&Lbl_Not,         &&Lbl_Concat,        &&Lbl_PrimOpEager,
      &&Lbl_StrLen,      &&Lbl_RuntimeEq,     &&Lbl_Println,
      &&Lbl_Print,       &&Lbl_ValueEq,       &&Lbl_ValueNe,
      &&Lbl_ValueToString, &&Lbl_GetClassV,   &&Lbl_Jump,
      &&Lbl_JumpIfFalse, &&Lbl_AThrow,        &&Lbl_ReturnValue,
      &&Lbl_Pop,         &&Lbl_Dup,           &&Lbl_LinkError,
      &&Lbl_LoadLoad,    &&Lbl_LoadConstInt,  &&Lbl_LoadGetField,
      &&Lbl_CmpLtJF,     &&Lbl_CmpLeJF,       &&Lbl_CmpGtJF,
      &&Lbl_CmpGeJF,     &&Lbl_CmpEqJF,       &&Lbl_CmpNeJF,
      &&Lbl_AddStore,    &&Lbl_SubStore,      &&Lbl_LoadConstAdd,
      &&Lbl_LoadConstSub, &&Lbl_LoadConstMul, &&Lbl_LoadConstDiv,
      &&Lbl_LoadConstRem,
  };
  static_assert(sizeof(Labels) / sizeof(Labels[0]) ==
                    static_cast<size_t>(LOp::NumLOps),
                "label table must cover every opcode");
  if (!LP.Threaded) {
    for (const auto &M : LP.Methods)
      for (LInstr &L : M->Code)
        L.H = Labels[static_cast<size_t>(L.Code)];
    LP.Threaded = true;
  }
#endif

  const LInstr *Code = nullptr;
  const LInstr *Ip = nullptr;
  uint32_t Pc = 0;
  uint32_t Base = 0;
  VMValue *Sk = nullptr;
  size_t PrevOp = static_cast<size_t>(LOp::Nop);
  VM_RELOAD();

dispatch:
  Ip = Code + Pc++;
  if (++Steps > StepLimit)
    VM_TRAP_ERR("step limit exceeded");
  // Cooperative cancellation, same cadence as the tree interpreter: the
  // guest program controls how long we run, so poll the deadline every
  // 256th step. DeadlineExceeded propagates past run() — the result of a
  // cancelled execution is discarded, never compared.
  if ((Steps & 255) == 0)
    Comp.checkpoint();
  ++OpCount[static_cast<size_t>(Ip->Code)];
  if (PairsOn) {
    const size_t Cur = static_cast<size_t>(Ip->Code);
    Pairs[PrevOp * static_cast<size_t>(LOp::NumLOps) + Cur]++;
    PrevOp = Cur;
  }
#if MPC_VM_COMPUTED_GOTO
  goto *const_cast<void *>(Ip->H);
#else
  switch (Ip->Code) {
#endif

  VM_CASE(Nop)
  VM_NEXT();

  VM_CASE(ConstUnit) {
    Sk[Sp++] = VMValue();
    VM_NEXT();
  }

  VM_CASE(ConstBool) {
    Sk[Sp++] = vBool(Ip->Imm.I != 0);
    VM_NEXT();
  }

  VM_CASE(ConstInt) {
    Sk[Sp++] = vInt(Ip->Imm.I);
    VM_NEXT();
  }

  VM_CASE(ConstDouble) {
    Sk[Sp++] = vDbl(Ip->Imm.D);
    VM_NEXT();
  }

  VM_CASE(ConstStr) {
    Sk[Sp++] = vStr(static_cast<const std::string *>(Ip->Imm.P));
    VM_NEXT();
  }

  VM_CASE(ConstNull) {
    Sk[Sp++] = vNull();
    VM_NEXT();
  }

  VM_CASE(ConstClass) {
    Sk[Sp++] = vClazz(static_cast<const Type *>(Ip->Imm.P));
    VM_NEXT();
  }

  VM_CASE(LoadSlot) {
    Sk[Sp++] = Sk[Base + Ip->A];
    VM_NEXT();
  }

  VM_CASE(StoreSlot) {
    Sk[Base + Ip->A] = Sk[--Sp];
    VM_NEXT();
  }

  VM_CASE(LoadSelfField) {
    FieldSite &FS = LP.FieldSites[Ip->A];
    const VMValue &Self = Sk[Base];
    if (Self.Kind != VMValue::Obj)
      VM_TRAP_ERR("unbound identifier " + FS.Sym->name().str());
    VMObj *O = Self.O;
    uint32_t Slot;
    if (FS.CachedCls == O->Cls) {
      Slot = FS.CachedSlot;
      ++FieldHits;
    } else {
      if (!resolveFieldBySym(O->Cls, FS.Sym, Slot))
        VM_TRAP_ERR("unbound identifier " + FS.Sym->name().str());
      FS.CachedCls = O->Cls;
      FS.CachedSlot = Slot;
      ++FieldMisses;
    }
    if (Slot >= O->NumFields)
      VM_TRAP_ERR("unbound identifier " + FS.Sym->name().str());
    Sk[Sp++] = O->fields()[Slot];
    VM_NEXT();
  }

  VM_CASE(StoreSelfField) {
    FieldSite &FS = LP.FieldSites[Ip->A];
    const VMValue &Self = Sk[Base];
    if (Self.Kind != VMValue::Obj)
      VM_TRAP_ERR("field store on non-object");
    VMObj *O = Self.O;
    uint32_t Slot;
    if (FS.CachedCls == O->Cls) {
      Slot = FS.CachedSlot;
      ++FieldHits;
    } else {
      if (!resolveFieldByName(O->Cls, FS, Slot))
        VM_TRAP_ERR("no field " + FS.Sym->name().str() + " on " +
                    O->Cls->Cls->name().str());
      FS.CachedCls = O->Cls;
      FS.CachedSlot = Slot;
      ++FieldMisses;
    }
    O->fields()[Slot] = Sk[--Sp];
    if (Slot >= O->NumFields)
      O->NumFields = Slot + 1; // stores insert, like the interpreter's map
    VM_NEXT();
  }

  VM_CASE(GetField) {
    FieldSite &FS = LP.FieldSites[Ip->A];
    const VMValue &Q = Sk[Sp - 1];
    if (Q.Kind != VMValue::Obj)
      VM_TRAP_ERR("field access on non-object value");
    VMObj *O = Q.O;
    uint32_t Slot;
    if (FS.CachedCls == O->Cls) {
      Slot = FS.CachedSlot;
      ++FieldHits;
    } else {
      if (!resolveFieldByName(O->Cls, FS, Slot))
        VM_TRAP_ERR("no field " + FS.Sym->name().str() + " on " +
                    O->Cls->Cls->name().str());
      FS.CachedCls = O->Cls;
      FS.CachedSlot = Slot;
      ++FieldMisses;
    }
    if (Slot >= O->NumFields)
      VM_TRAP_ERR("no field " + FS.Sym->name().str() + " on " +
                  O->Cls->Cls->name().str());
    Sk[Sp - 1] = O->fields()[Slot];
    VM_NEXT();
  }

  VM_CASE(PutField) {
    FieldSite &FS = LP.FieldSites[Ip->A];
    VMValue V = Sk[--Sp];
    VMValue Q = Sk[--Sp];
    if (Q.Kind != VMValue::Obj)
      VM_TRAP_ERR("field store on non-object");
    VMObj *O = Q.O;
    uint32_t Slot;
    if (FS.CachedCls == O->Cls) {
      Slot = FS.CachedSlot;
      ++FieldHits;
    } else {
      if (!resolveFieldByName(O->Cls, FS, Slot))
        VM_TRAP_ERR("no field " + FS.Sym->name().str() + " on " +
                    O->Cls->Cls->name().str());
      FS.CachedCls = O->Cls;
      FS.CachedSlot = Slot;
      ++FieldMisses;
    }
    O->fields()[Slot] = V;
    if (Slot >= O->NumFields)
      O->NumFields = Slot + 1;
    VM_NEXT();
  }

  VM_CASE(GetModule) {
    LClass *LC = ClassAt[Ip->A];
    if (ModuleReady[LC->Index]) {
      Sk[Sp++] = Modules[LC->Index];
      VM_NEXT();
    }
    // First touch: register the instance *before* the constructor runs
    // (the MODULE$ idiom — the initializer may refer back to it).
    VMValue Mod = vObj(allocObj(LC));
    Modules[LC->Index] = Mod;
    ModuleReady[LC->Index] = 1;
    if (!LC->Ctor) {
      Sk[Sp++] = Mod;
      VM_NEXT();
    }
    if (LC->Ctor->NumParams != 0)
      VM_TRAP_ERR("arity mismatch calling " + LC->Ctor->Sym->name().str());
    ensureStack(static_cast<size_t>(Sp) + 2);
    Sk = Stack.data();
    Sk[Sp++] = Mod; // result, kept by FrameDropResult
    Sk[Sp++] = Mod; // receiver = ctor slot 0
    VM_SYNC();
    pushFrame(LC->Ctor, Sp - 1, FrameDropResult);
    VM_RELOAD();
    VM_NEXT();
  }

  VM_CASE(NewObject) {
    LClass *LC = ClassAt[Ip->A];
    const uint32_t Argc = Ip->B;
    VMObj *O = allocObj(LC);
    if (!LC->Ctor) { // no declared ctor: the shell is the object
      Sp -= Argc;
      Sk[Sp++] = vObj(O);
      VM_NEXT();
    }
    if (Argc != LC->Ctor->NumParams)
      VM_TRAP_ERR("arity mismatch calling " + LC->Ctor->Sym->name().str());
    // Make room for [result, receiver] below the already-evaluated
    // arguments: they become the ctor frame's param slots in place.
    ensureStack(static_cast<size_t>(Sp) + 2);
    Sk = Stack.data();
    const uint32_t P = Sp - Argc;
    std::memmove(Sk + P + 2, Sk + P, Argc * sizeof(VMValue));
    Sk[P] = vObj(O);     // survives the call (FrameDropResult)
    Sk[P + 1] = vObj(O); // receiver = ctor slot 0
    Sp += 2;
    VM_SYNC();
    pushFrame(LC->Ctor, P + 1, FrameDropResult);
    VM_RELOAD();
    VM_NEXT();
  }

  VM_CASE(NewBuiltin) {
    LClass *LC = ClassAt[Ip->A];
    const uint32_t Argc = Ip->B;
    VMObj *O = allocObj(LC);
    // builtinNew: the single payload field (Throwable.message /
    // NonLocalReturn.value / Ref.elem) takes the first argument.
    if (Argc > 0 && !LC->FieldSyms.empty()) {
      O->fields()[0] = Sk[Sp - Argc];
      O->NumFields = 1;
    }
    Sp -= Argc;
    Sk[Sp++] = vObj(O);
    VM_NEXT();
  }

  VM_CASE(InvokeVirt) {
    CallSite &CS = LP.CallSites[Ip->A];
    const uint32_t Argc = Ip->B;
    const uint32_t RecvAt = Sp - Argc - 1;
    const VMValue &R = Sk[RecvAt];
    if (R.Kind == VMValue::Null)
      VM_TRAP_THROW(makeError("NullPointerException"));
    if (R.Kind != VMValue::Obj) {
      // Object methods on primitives, routed by the name class the
      // linker computed (the interpreter compares name text here).
      if (CS.NC == CallSite::IsToString) {
        VMValue S = vStr(internStr(show(R)));
        Sp = RecvAt;
        Sk[Sp++] = S;
        VM_NEXT();
      }
      if (CS.NC == CallSite::IsEquals && Argc >= 1) {
        const bool Eq = valueEquals(R, Sk[RecvAt + 1]);
        Sp = RecvAt;
        Sk[Sp++] = vBool(Eq);
        VM_NEXT();
      }
      if (CS.NC == CallSite::IsBangEq && Argc >= 1) {
        const bool Eq = valueEquals(R, Sk[RecvAt + 1]);
        Sp = RecvAt;
        Sk[Sp++] = vBool(!Eq);
        VM_NEXT();
      }
      VM_TRAP_ERR("method call on non-object value: " + CS.Sym->name().str());
    }
    const LMethod *M;
    if (CS.CachedCls == R.O->Cls) {
      M = CS.CachedM;
      ++CallHits;
    } else {
      LMethod **Found = R.O->Cls->Methods.find(CS.NameOrd);
      if (!Found)
        VM_TRAP_ERR("no implementation of " + CS.Sym->name().str() + " in " +
                    R.O->Cls->Cls->name().str());
      M = *Found;
      CS.CachedCls = R.O->Cls;
      CS.CachedM = M;
      ++CallMisses;
    }
    if (Argc != M->NumParams)
      VM_TRAP_ERR("arity mismatch calling " + M->Sym->name().str());
    VM_SYNC();
    pushFrame(M, RecvAt, 0);
    VM_RELOAD();
    VM_NEXT();
  }

  VM_CASE(InvokeSuperM) {
    const auto *M = static_cast<const LMethod *>(Ip->Imm.P);
    const uint32_t Argc = Ip->B;
    const uint32_t RecvAt = Sp - Argc - 1;
    if (Argc != M->NumParams)
      VM_TRAP_ERR("arity mismatch calling " + M->Sym->name().str());
    VM_SYNC();
    pushFrame(M, RecvAt, 0);
    VM_RELOAD();
    VM_NEXT();
  }

  VM_CASE(InvokeSuperUnit) {
    // Builtin or absent super constructor: a no-op returning unit.
    Sp -= Ip->B + 1;
    Sk[Sp++] = VMValue();
    VM_NEXT();
  }

  VM_CASE(InstanceOf) {
    const auto *Ty = static_cast<const Type *>(Ip->Imm.P);
    const VMValue &V = Sk[Sp - 1];
    Sk[Sp - 1] = vBool(V.Kind != VMValue::Null && conforms(V, Ty));
    VM_NEXT();
  }

  VM_CASE(CheckCast) {
    const auto *Ty = static_cast<const Type *>(Ip->Imm.P);
    if (!conforms(Sk[Sp - 1], Ty))
      VM_TRAP_THROW(
          makeError("ClassCastException: value is not a " + Ty->show()));
    VM_NEXT();
  }

  VM_CASE(NewArray) {
    const VMValue Len = Sk[--Sp];
    VMArr *A = allocArr(intOf(Len), static_cast<DefaultKind>(Ip->B));
    Sk = Stack.data(); // allocArr never resizes Stack, but stay uniform
    Sk[Sp++] = vArr(A);
    VM_NEXT();
  }

  VM_CASE(ArrayLoad) {
    const VMValue Ix = Sk[--Sp];
    const VMValue Ar = Sk[--Sp];
    if (Ar.Kind != VMValue::Arr)
      VM_TRAP_ERR("array op on non-array");
    const uint64_t I = static_cast<uint64_t>(intOf(Ix));
    if (I >= static_cast<uint64_t>(Ar.A->Len))
      VM_TRAP_THROW(makeError("ArrayIndexOutOfBounds"));
    Sk[Sp++] = Ar.A->elems()[I];
    VM_NEXT();
  }

  VM_CASE(ArrayStore) {
    const VMValue V = Sk[--Sp];
    const VMValue Ix = Sk[--Sp];
    const VMValue Ar = Sk[--Sp];
    if (Ar.Kind != VMValue::Arr)
      VM_TRAP_ERR("array op on non-array");
    const uint64_t I = static_cast<uint64_t>(intOf(Ix));
    if (I >= static_cast<uint64_t>(Ar.A->Len))
      VM_TRAP_THROW(makeError("ArrayIndexOutOfBounds"));
    Ar.A->elems()[I] = V;
    VM_NEXT();
  }

  VM_CASE(ArrayLength) {
    const VMValue Ar = Sk[--Sp];
    if (Ar.Kind != VMValue::Arr)
      VM_TRAP_ERR("array op on non-array");
    Sk[Sp++] = vInt(Ar.A->Len);
    VM_NEXT();
  }

  VM_CASE(ArrUpdateV) {
    // Array.update through the invoke route: store, result is unit.
    const VMValue V = Sk[--Sp];
    const VMValue Ix = Sk[--Sp];
    const VMValue Ar = Sk[--Sp];
    if (Ar.Kind != VMValue::Arr)
      VM_TRAP_ERR("array op on non-array");
    const uint64_t I = static_cast<uint64_t>(intOf(Ix));
    if (I >= static_cast<uint64_t>(Ar.A->Len))
      VM_TRAP_THROW(makeError("ArrayIndexOutOfBounds"));
    Ar.A->elems()[I] = V;
    Sk[Sp++] = VMValue();
    VM_NEXT();
  }

#define VM_ARITH(Name, OpTok)                                                  \
  VM_CASE(Name) {                                                              \
    const VMValue R = Sk[--Sp];                                                \
    const VMValue L = Sk[--Sp];                                                \
    if (L.Kind == VMValue::Dbl || R.Kind == VMValue::Dbl)                      \
      Sk[Sp++] = vDbl(numOf(L) OpTok numOf(R));                                \
    else                                                                       \
      Sk[Sp++] = vInt(wrap32(intOf(L) OpTok intOf(R)));                        \
    VM_NEXT();                                                                 \
  }

  VM_ARITH(Add, +)
  VM_ARITH(Sub, -)
  VM_ARITH(Mul, *)
#undef VM_ARITH

  VM_CASE(Div) {
    const VMValue R = Sk[--Sp];
    const VMValue L = Sk[--Sp];
    if (L.Kind == VMValue::Dbl || R.Kind == VMValue::Dbl) {
      Sk[Sp++] = vDbl(numOf(L) / numOf(R));
    } else {
      if (intOf(R) == 0)
        VM_TRAP_THROW(makeError("ArithmeticException: / by zero"));
      Sk[Sp++] = vInt(wrap32(intOf(L) / intOf(R)));
    }
    VM_NEXT();
  }

  VM_CASE(Rem) {
    const VMValue R = Sk[--Sp];
    const VMValue L = Sk[--Sp];
    if (L.Kind == VMValue::Dbl || R.Kind == VMValue::Dbl) {
      Sk[Sp++] = vDbl(std::fmod(numOf(L), numOf(R)));
    } else {
      if (intOf(R) == 0)
        VM_TRAP_THROW(makeError("ArithmeticException: % by zero"));
      Sk[Sp++] = vInt(wrap32(intOf(L) % intOf(R)));
    }
    VM_NEXT();
  }

  VM_CASE(Neg) {
    const VMValue L = Sk[--Sp];
    Sk[Sp++] = L.Kind == VMValue::Dbl ? vDbl(-numOf(L))
                                      : vInt(wrap32(-intOf(L)));
    VM_NEXT();
  }

#define VM_CMP(Name, OpTok)                                                    \
  VM_CASE(Name) {                                                              \
    const VMValue R = Sk[--Sp];                                                \
    const VMValue L = Sk[--Sp];                                                \
    Sk[Sp++] = vBool(numOf(L) OpTok numOf(R));                                 \
    VM_NEXT();                                                                 \
  }

  VM_CMP(CmpLt, <)
  VM_CMP(CmpLe, <=)
  VM_CMP(CmpGt, >)
  VM_CMP(CmpGe, >=)
#undef VM_CMP

  VM_CASE(CmpEq) {
    const VMValue R = Sk[--Sp];
    const VMValue L = Sk[--Sp];
    Sk[Sp++] = vBool(valueEquals(L, R));
    VM_NEXT();
  }

  VM_CASE(CmpNe) {
    const VMValue R = Sk[--Sp];
    const VMValue L = Sk[--Sp];
    Sk[Sp++] = vBool(!valueEquals(L, R));
    VM_NEXT();
  }

  VM_CASE(Not) {
    const VMValue L = Sk[--Sp];
    Sk[Sp++] = vBool(!truthy(L));
    VM_NEXT();
  }

  VM_CASE(Concat) {
    const VMValue R = Sk[--Sp];
    const VMValue L = Sk[--Sp];
    Sk[Sp++] = vStr(internStr(show(L) + show(R)));
    Sk = Stack.data();
    VM_NEXT();
  }

  VM_CASE(PrimOpEager) {
    // && / || survivors and any primOp reached as a value call: both
    // operands are already on the stack, so this is the interpreter's
    // eager primOp switched on the dense kind.
    const uint32_t Argc = Ip->B;
    VMValue R = Argc ? Sk[--Sp] : VMValue();
    VMValue L = Sk[--Sp];
    const bool Dbl =
        L.Kind == VMValue::Dbl || (Argc && R.Kind == VMValue::Dbl);
    const auto K = static_cast<PrimOpKind>(static_cast<int8_t>(Ip->A));
    VMValue Out;
    switch (K) {
    case PrimOpKind::Neg:
      Out = Dbl ? vDbl(-numOf(L)) : vInt(wrap32(-intOf(L)));
      break;
    case PrimOpKind::Not:
      Out = vBool(!truthy(L));
      break;
    case PrimOpKind::Add:
      Out = Dbl ? vDbl(numOf(L) + numOf(R))
                : vInt(wrap32(intOf(L) + intOf(R)));
      break;
    case PrimOpKind::Sub:
      Out = Dbl ? vDbl(numOf(L) - numOf(R))
                : vInt(wrap32(intOf(L) - intOf(R)));
      break;
    case PrimOpKind::Mul:
      Out = Dbl ? vDbl(numOf(L) * numOf(R))
                : vInt(wrap32(intOf(L) * intOf(R)));
      break;
    case PrimOpKind::Div:
      if (!Dbl && intOf(R) == 0)
        VM_TRAP_THROW(makeError("ArithmeticException: / by zero"));
      Out = Dbl ? vDbl(numOf(L) / numOf(R))
                : vInt(wrap32(intOf(L) / intOf(R)));
      break;
    case PrimOpKind::Rem:
      if (!Dbl && intOf(R) == 0)
        VM_TRAP_THROW(makeError("ArithmeticException: % by zero"));
      Out = Dbl ? vDbl(std::fmod(numOf(L), numOf(R)))
                : vInt(wrap32(intOf(L) % intOf(R)));
      break;
    case PrimOpKind::CmpLt:
      Out = vBool(numOf(L) < numOf(R));
      break;
    case PrimOpKind::CmpLe:
      Out = vBool(numOf(L) <= numOf(R));
      break;
    case PrimOpKind::CmpGt:
      Out = vBool(numOf(L) > numOf(R));
      break;
    case PrimOpKind::CmpGe:
      Out = vBool(numOf(L) >= numOf(R));
      break;
    case PrimOpKind::CmpEq:
      Out = vBool(valueEquals(L, R));
      break;
    case PrimOpKind::CmpNe:
      Out = vBool(!valueEquals(L, R));
      break;
    case PrimOpKind::And:
      Out = vBool(truthy(L) && truthy(R));
      break;
    case PrimOpKind::Or:
      Out = vBool(truthy(L) || truthy(R));
      break;
    case PrimOpKind::None:
      VM_TRAP_ERR("unknown primitive operator");
    }
    Sk[Sp++] = Out;
    VM_NEXT();
  }

  VM_CASE(StrLen) {
    const VMValue Q = Sk[--Sp];
    if (Q.Kind != VMValue::Str)
      VM_TRAP_ERR("string length on non-string");
    Sk[Sp++] = vInt(static_cast<int64_t>(Q.S->size()));
    VM_NEXT();
  }

  VM_CASE(RuntimeEq) {
    const VMValue B = Sk[--Sp];
    const VMValue A = Sk[--Sp];
    --Sp; // the Runtime module reference
    Sk[Sp++] = vBool(valueEquals(A, B));
    VM_NEXT();
  }

  VM_CASE(Println) {
    const VMValue A = Sk[--Sp];
    --Sp; // the Predef module reference
    Output += show(A);
    Output += '\n';
    Sk[Sp++] = VMValue();
    VM_NEXT();
  }

  VM_CASE(Print) {
    const VMValue A = Sk[--Sp];
    --Sp;
    Output += show(A);
    Sk[Sp++] = VMValue();
    VM_NEXT();
  }

  VM_CASE(ValueEq) {
    const VMValue R = Sk[--Sp];
    const VMValue Q = Sk[--Sp];
    Sk[Sp++] = vBool(valueEquals(Q, R));
    VM_NEXT();
  }

  VM_CASE(ValueNe) {
    const VMValue R = Sk[--Sp];
    const VMValue Q = Sk[--Sp];
    Sk[Sp++] = vBool(!valueEquals(Q, R));
    VM_NEXT();
  }

  VM_CASE(ValueToString) {
    const VMValue Q = Sk[--Sp];
    Sk[Sp++] = vStr(internStr(show(Q)));
    Sk = Stack.data();
    VM_NEXT();
  }

  VM_CASE(GetClassV) {
    const VMValue Q = Sk[--Sp];
    Sk[Sp++] = classValueOf(Q);
    VM_NEXT();
  }

  VM_CASE(Jump) {
    Pc = Ip->A;
    VM_NEXT();
  }

  VM_CASE(JumpIfFalse) {
    const VMValue C = Sk[--Sp];
    if (!truthy(C))
      Pc = Ip->A;
    VM_NEXT();
  }

  VM_CASE(AThrow) {
    VMValue V = Sk[--Sp];
    if (V.Kind == VMValue::ErrToken) {
      // A finally block finished replaying a VM error: resume its unwind.
      std::string Msg = std::move(PendingError);
      PendingError.clear();
      VM_TRAP_ERR(std::move(Msg));
    }
    VM_TRAP_THROW(V);
  }

  VM_CASE(ReturnValue) {
    const VMValue V = Sk[--Sp];
    const VMFrame F = Frames.back();
    Frames.pop_back();
    Sp = F.Base;
    if (!(F.Flags & FrameDropResult))
      Sk[Sp++] = V;
    // else: the object stashed at Base - 1 is already on top.
    if (Frames.empty())
      return true;
    VM_RELOAD();
    VM_NEXT();
  }

  VM_CASE(Pop) {
    --Sp;
    VM_NEXT();
  }

  VM_CASE(Dup) {
    Sk[Sp] = Sk[Sp - 1];
    ++Sp;
    VM_NEXT();
  }

  VM_CASE(LinkError) {
    VM_TRAP_ERR(*static_cast<const std::string *>(Ip->Imm.P));
  }

  //===--- superinstructions ----------------------------------------------===//

  VM_CASE(LoadLoad) {
    Sk[Sp++] = Sk[Base + Ip->A];
    Sk[Sp++] = Sk[Base + Ip->B];
    VM_NEXT();
  }

  VM_CASE(LoadConstInt) {
    Sk[Sp++] = Sk[Base + Ip->A];
    Sk[Sp++] = vInt(Ip->Imm.I);
    VM_NEXT();
  }

  VM_CASE(LoadGetField) {
    // LoadSlot ; GetField fused: the slot load feeds the field read.
    FieldSite &FS = LP.FieldSites[Ip->A];
    const VMValue &Q = Sk[Base + Ip->B];
    if (Q.Kind != VMValue::Obj)
      VM_TRAP_ERR("field access on non-object value");
    VMObj *O = Q.O;
    uint32_t Slot;
    if (FS.CachedCls == O->Cls) {
      Slot = FS.CachedSlot;
      ++FieldHits;
    } else {
      if (!resolveFieldByName(O->Cls, FS, Slot))
        VM_TRAP_ERR("no field " + FS.Sym->name().str() + " on " +
                    O->Cls->Cls->name().str());
      FS.CachedCls = O->Cls;
      FS.CachedSlot = Slot;
      ++FieldMisses;
    }
    if (Slot >= O->NumFields)
      VM_TRAP_ERR("no field " + FS.Sym->name().str() + " on " +
                  O->Cls->Cls->name().str());
    Sk[Sp++] = O->fields()[Slot];
    VM_NEXT();
  }

#define VM_CMP_JF(Name, OpTok)                                                 \
  VM_CASE(Name) {                                                              \
    const VMValue R = Sk[--Sp];                                                \
    const VMValue L = Sk[--Sp];                                                \
    if (!(numOf(L) OpTok numOf(R)))                                            \
      Pc = Ip->A;                                                              \
    VM_NEXT();                                                                 \
  }

  VM_CMP_JF(CmpLtJF, <)
  VM_CMP_JF(CmpLeJF, <=)
  VM_CMP_JF(CmpGtJF, >)
  VM_CMP_JF(CmpGeJF, >=)
#undef VM_CMP_JF

  VM_CASE(CmpEqJF) {
    const VMValue R = Sk[--Sp];
    const VMValue L = Sk[--Sp];
    if (!valueEquals(L, R))
      Pc = Ip->A;
    VM_NEXT();
  }

  VM_CASE(CmpNeJF) {
    const VMValue R = Sk[--Sp];
    const VMValue L = Sk[--Sp];
    if (valueEquals(L, R))
      Pc = Ip->A;
    VM_NEXT();
  }

  // Second-order fusions. Each body is the two component bodies glued
  // together with the intermediate push/pop elided — semantics (double
  // promotion, 32-bit wrap, division-by-zero guest errors) are exactly
  // the component ops'.

#define VM_ARITH_STORE(Name, OpTok)                                            \
  VM_CASE(Name) {                                                              \
    const VMValue R = Sk[--Sp];                                                \
    const VMValue L = Sk[--Sp];                                                \
    if (L.Kind == VMValue::Dbl || R.Kind == VMValue::Dbl)                      \
      Sk[Base + Ip->A] = vDbl(numOf(L) OpTok numOf(R));                        \
    else                                                                       \
      Sk[Base + Ip->A] = vInt(wrap32(intOf(L) OpTok intOf(R)));                \
    VM_NEXT();                                                                 \
  }

  VM_ARITH_STORE(AddStore, +)
  VM_ARITH_STORE(SubStore, -)
#undef VM_ARITH_STORE

  // The constant half is always an Int (it came from ConstInt), so
  // double promotion can only come from the slot operand.
#define VM_LOADCONST_ARITH(Name, OpTok)                                        \
  VM_CASE(Name) {                                                              \
    const VMValue L = Sk[Base + Ip->A];                                        \
    const int64_t C = Ip->Imm.I;                                               \
    if (L.Kind == VMValue::Dbl)                                                \
      Sk[Sp++] = vDbl(numOf(L) OpTok static_cast<double>(C));                  \
    else                                                                       \
      Sk[Sp++] = vInt(wrap32(intOf(L) OpTok C));                               \
    VM_NEXT();                                                                 \
  }

  VM_LOADCONST_ARITH(LoadConstAdd, +)
  VM_LOADCONST_ARITH(LoadConstSub, -)
  VM_LOADCONST_ARITH(LoadConstMul, *)
#undef VM_LOADCONST_ARITH

  VM_CASE(LoadConstDiv) {
    const VMValue L = Sk[Base + Ip->A];
    const int64_t C = Ip->Imm.I;
    if (L.Kind == VMValue::Dbl) {
      Sk[Sp++] = vDbl(numOf(L) / static_cast<double>(C));
    } else {
      if (C == 0)
        VM_TRAP_THROW(makeError("ArithmeticException: / by zero"));
      Sk[Sp++] = vInt(wrap32(intOf(L) / C));
    }
    VM_NEXT();
  }

  VM_CASE(LoadConstRem) {
    const VMValue L = Sk[Base + Ip->A];
    const int64_t C = Ip->Imm.I;
    if (L.Kind == VMValue::Dbl) {
      Sk[Sp++] = vDbl(std::fmod(numOf(L), static_cast<double>(C)));
    } else {
      if (C == 0)
        VM_TRAP_THROW(makeError("ArithmeticException: % by zero"));
      Sk[Sp++] = vInt(wrap32(intOf(L) % C));
    }
    VM_NEXT();
  }

#if !MPC_VM_COMPUTED_GOTO
  default:
    VM_TRAP_ERR("corrupt opcode");
  }
#endif
  return true; // unreachable: every opcode body jumps or returns
}

//===--- public API --------------------------------------------------------===//

VM::VM(CompilerContext &Comp, LinkedProgram &Linked, uint64_t StepLimit)
    : P(std::make_unique<Impl>(Comp, Linked, StepLimit)) {}

VM::~VM() = default;

ExecResult VM::runMain(Symbol *EntryPoint,
                       const std::vector<std::string> &Args) {
  return P->runMain(EntryPoint, Args);
}

void VM::enablePairCounts() { P->enablePairCounts(); }

const std::vector<uint64_t> &VM::pairCounts() const { return P->pairCounts(); }
