#include "backend/CodeGen.h"

#include "ast/TreeUtils.h"
#include "backend/Verifier.h"

#include <cassert>
#include <map>

using namespace mpc;

namespace {
/// Per-method bytecode emitter.
class MethodEmitter {
public:
  MethodEmitter(CompilerContext &Comp, MethodCode &Out)
      : Comp(Comp), Out(Out) {}

  void emitBody(Tree *Body) {
    genExpr(Body);
    emit(Op::ReturnValue);
  }

private:
  uint32_t here() const { return static_cast<uint32_t>(Out.Code.size()); }

  Instr &emit(Op Code) {
    Instr I;
    I.Code = Code;
    Out.Code.push_back(I);
    return Out.Code.back();
  }

  void genStat(Tree *T) {
    genExpr(T);
    emit(Op::Pop);
  }

  /// The type's default value (the interpreter's defaultValue) as a
  /// constant push.
  void emitDefault(const Type *Ty) {
    if (Ty && Ty->isPrim(PrimKind::Int))
      emit(Op::ConstInt).Imm = 0;
    else if (Ty && Ty->isPrim(PrimKind::Boolean))
      emit(Op::ConstBool).Imm = 0;
    else if (Ty && Ty->isPrim(PrimKind::Double))
      emit(Op::ConstDouble).Num = 0;
    else if (Ty && Ty->isUnit())
      emit(Op::ConstUnit);
    else
      emit(Op::ConstNull);
  }

  /// True for the primitive operator symbols; maps the operator's dense
  /// kind (no name-text comparisons) to an opcode. && and || have no
  /// opcode: the frontend desugars short-circuiting into If, so a
  /// surviving symbol goes through the generic invoke path (evaluated
  /// eagerly there, like the tree interpreter).
  bool tryPrimOp(Symbol *Sym, Op &Code) {
    if (!Comp.syms().isPrimOp(Sym))
      return false;
    switch (Comp.syms().primOpKindOf(Sym->name())) {
    case PrimOpKind::Add:   Code = Op::Add;   return true;
    case PrimOpKind::Sub:   Code = Op::Sub;   return true;
    case PrimOpKind::Mul:   Code = Op::Mul;   return true;
    case PrimOpKind::Div:   Code = Op::Div;   return true;
    case PrimOpKind::Rem:   Code = Op::Rem;   return true;
    case PrimOpKind::CmpLt: Code = Op::CmpLt; return true;
    case PrimOpKind::CmpLe: Code = Op::CmpLe; return true;
    case PrimOpKind::CmpGt: Code = Op::CmpGt; return true;
    case PrimOpKind::CmpGe: Code = Op::CmpGe; return true;
    case PrimOpKind::CmpEq: Code = Op::CmpEq; return true;
    case PrimOpKind::CmpNe: Code = Op::CmpNe; return true;
    case PrimOpKind::Neg:   Code = Op::Neg;   return true;
    case PrimOpKind::Not:   Code = Op::Not;   return true;
    default:
      return false;
    }
  }

  void genExpr(Tree *T) {
    assert(T && "codegen on null tree");
    SymbolTable &Syms = Comp.syms();
    switch (T->kind()) {
    case TreeKind::Literal: {
      const Constant &C = cast<Literal>(T)->value();
      switch (C.kind()) {
      case Constant::Unit:
        emit(Op::ConstUnit);
        break;
      case Constant::Bool:
        emit(Op::ConstBool).Imm = C.intValue();
        break;
      case Constant::Int:
        emit(Op::ConstInt).Imm = C.intValue();
        break;
      case Constant::Double:
        emit(Op::ConstDouble).Num = C.doubleValue();
        break;
      case Constant::Str:
        emit(Op::ConstStr).Str = C.stringValue().str();
        break;
      case Constant::Null:
        emit(Op::ConstNull);
        break;
      case Constant::Clazz:
        emit(Op::ConstClass).TypeRef = C.clazzValue();
        break;
      }
      return;
    }
    case TreeKind::Ident: {
      Symbol *Sym = cast<Ident>(T)->sym();
      if (Sym->is(SymFlag::Module)) {
        emit(Op::GetModule).Sym = Sym;
        return;
      }
      emit(Op::Load).Sym = Sym;
      return;
    }
    case TreeKind::This:
    case TreeKind::Super:
      emit(Op::Load).Sym = nullptr; // local slot 0 == this
      return;
    case TreeKind::Select: {
      auto *Sel = cast<Select>(T);
      genExpr(Sel->qual());
      emit(Op::GetField).Sym = Sel->sym();
      return;
    }
    case TreeKind::Typed: {
      genExpr(cast<Typed>(T)->expr());
      emit(Op::CheckCast).TypeRef = T->type();
      return;
    }
    case TreeKind::TypeApply: {
      // Only the fully-applied test/cast intrinsics survive to here; the
      // enclosing Apply handles them. A bare TypeApply is a pipeline bug.
      assert(false && "bare TypeApply reached the backend");
      return;
    }
    case TreeKind::Apply:
      genApply(cast<Apply>(T));
      return;
    case TreeKind::New: {
      auto *N = cast<New>(T);
      for (unsigned I = 0; I < N->numArgs(); ++I)
        genExpr(N->arg(I));
      Instr &I = emit(Op::NewObject);
      I.Sym = N->classTy()->classSymbol();
      I.ArgCount = N->numArgs();
      return;
    }
    case TreeKind::Assign: {
      auto *A = cast<Assign>(T);
      if (auto *Sel = dyn_cast<Select>(A->lhs())) {
        genExpr(Sel->qual());
        genExpr(A->rhs());
        emit(Op::PutField).Sym = Sel->sym();
      } else if (auto *Id = dyn_cast<Ident>(A->lhs())) {
        genExpr(A->rhs());
        emit(Op::Store).Sym = Id->sym();
      } else {
        assert(false && "invalid assignment target in backend");
      }
      emit(Op::ConstUnit);
      return;
    }
    case TreeKind::Block: {
      auto *B = cast<Block>(T);
      for (unsigned I = 0; I < B->numStats(); ++I) {
        Tree *Stat = B->stat(I);
        if (auto *VD = dyn_cast<ValDef>(Stat)) {
          if (VD->rhs())
            genExpr(VD->rhs());
          else
            emitDefault(VD->sym()->info()); // interpreter binds the
                                            // type default here
          emit(Op::Store).Sym = VD->sym();
          ++Out.MaxLocals;
          continue;
        }
        assert(!isa<DefDef>(Stat) &&
               "local method reached the backend (LambdaLift missed it)");
        genStat(Stat);
      }
      genExpr(B->expr());
      return;
    }
    case TreeKind::If: {
      // Branch targets are patched via indices (instruction storage may
      // reallocate while children are generated).
      auto *I = cast<If>(T);
      genExpr(I->cond());
      uint32_t BrIdx = here();
      emit(Op::JumpIfFalse);
      genExpr(I->thenp());
      uint32_t EndIdx = here();
      emit(Op::Jump);
      Out.Code[BrIdx].Target = static_cast<int32_t>(here());
      genExpr(I->elsep());
      Out.Code[EndIdx].Target = static_cast<int32_t>(here());
      return;
    }
    case TreeKind::WhileDo: {
      auto *W = cast<WhileDo>(T);
      uint32_t Start = here();
      genExpr(W->cond());
      uint32_t BrIdx = here();
      emit(Op::JumpIfFalse);
      genStat(W->body());
      emit(Op::Jump).Target = static_cast<int32_t>(Start);
      Out.Code[BrIdx].Target = static_cast<int32_t>(here());
      emit(Op::ConstUnit);
      return;
    }
    case TreeKind::Labeled: {
      auto *L = cast<Labeled>(T);
      LabelStarts[L->label()] = {here(), Finalizers.size()};
      genExpr(L->body());
      return;
    }
    case TreeKind::Goto: {
      auto It = LabelStarts.find(cast<Goto>(T)->label());
      assert(It != LabelStarts.end() && "jump to unseen label");
      // A backward jump crossing try bodies entered since the label runs
      // their finalizers first (the interpreter's ContinueSignal unwinds
      // through evalTry's catch-all, which does the same).
      for (size_t D = Finalizers.size(); D > It->second.FinalizerDepth; --D)
        genStat(Finalizers[D - 1]);
      emit(Op::Jump).Target = static_cast<int32_t>(It->second.Pc);
      return;
    }
    case TreeKind::Return: {
      auto *R = cast<Return>(T);
      if (R->expr())
        genExpr(R->expr());
      else
        emit(Op::ConstUnit);
      // A return unwinding out of enclosing try bodies runs their
      // finalizers innermost-first, with the return value parked on the
      // stack (mirrors the interpreter: ReturnSignal hits evalTry's
      // catch-all, which runs the finalizer and rethrows).
      for (size_t D = Finalizers.size(); D > 0; --D)
        genStat(Finalizers[D - 1]);
      emit(Op::ReturnValue);
      return;
    }
    case TreeKind::Throw:
      genExpr(cast<Throw>(T)->expr());
      emit(Op::AThrow);
      return;
    case TreeKind::Try: {
      auto *Y = cast<Try>(T);
      uint32_t Start = here();
      // While generating the body, returns and label-crossing gotos must
      // inline this try's finalizer; catch bodies must not (a throwing
      // matched-catch body skips the finalizer in the interpreter too).
      if (Y->finalizer())
        Finalizers.push_back(Y->finalizer());
      genExpr(Y->body());
      if (Y->finalizer())
        Finalizers.pop_back();
      // Jumps to the code after the whole try; patched by index below
      // (never via a sentinel scan — a nested try inside a later catch
      // body must not steal this try's pending patches).
      std::vector<uint32_t> EndJumps;
      EndJumps.push_back(here());
      emit(Op::Jump);
      uint32_t End = here();
      for (unsigned I = 0; I < Y->numCatches(); ++I) {
        auto *C = cast<CaseDef>(Y->catchAt(I));
        Handler H;
        H.Start = Start;
        H.End = End;
        H.Entry = here();
        // Simple catch shapes: e @ (_: T) / e @ _ / _: T.
        Symbol *Binder = nullptr;
        const Type *CatchTy = Comp.syms().throwableType();
        Tree *Pat = C->pat();
        if (auto *B = dyn_cast<Bind>(Pat)) {
          Binder = B->sym();
          Pat = B->pat();
        }
        if (auto *Ty = dyn_cast_or_null<Typed>(Pat))
          CatchTy = Ty->type();
        H.CatchType = CatchTy;
        Out.Handlers.push_back(H);
        // Handler body: exception value is on the stack.
        if (Binder)
          emit(Op::Store).Sym = Binder;
        else
          emit(Op::Pop);
        genExpr(C->body());
        if (I + 1 < Y->numCatches() || Y->finalizer()) {
          EndJumps.push_back(here());
          emit(Op::Jump);
        }
      }
      // Finally route: a catch-all handler over the body range that runs
      // the finalizer with the in-flight exception parked on the stack,
      // then rethrows it. It is last in the table, so typed catches win
      // on the exceptions they match and only the rest unwind through
      // here — exactly the interpreter's evalTry ordering.
      if (Y->finalizer()) {
        Handler H;
        H.Start = Start;
        H.End = End;
        H.Entry = here();
        H.CatchType = nullptr;
        H.IsFinally = true;
        Out.Handlers.push_back(H);
        genStat(Y->finalizer());
        emit(Op::AThrow);
      }
      for (uint32_t J : EndJumps)
        Out.Code[J].Target = static_cast<int32_t>(here());
      if (Y->finalizer()) {
        genStat(Y->finalizer());
      }
      return;
    }
    case TreeKind::SeqLiteral: {
      auto *S = cast<SeqLiteral>(T);
      emit(Op::ConstInt).Imm = S->numKids();
      emit(Op::NewArray).TypeRef = S->elemType();
      for (unsigned I = 0; I < S->numKids(); ++I) {
        emit(Op::Dup);
        emit(Op::ConstInt).Imm = I;
        genExpr(S->kid(I));
        emit(Op::ArrayStore);
      }
      return;
    }
    default:
      assert(false && "unlowered tree kind reached the backend");
      emit(Op::ConstUnit);
      return;
    }
    (void)Syms;
  }

  void genApply(Apply *T) {
    SymbolTable &Syms = Comp.syms();
    Tree *Fun = T->fun();

    // isInstanceOf / asInstanceOf intrinsics.
    if (auto *TApp = dyn_cast<TypeApply>(Fun)) {
      auto *Sel = cast<Select>(TApp->fun());
      genExpr(Sel->qual());
      if (Sel->sym() == Syms.isInstanceOfMethod()) {
        emit(Op::InstanceOf).TypeRef = TApp->typeArgs()[0];
        return;
      }
      if (Sel->sym() == Syms.asInstanceOfMethod()) {
        emit(Op::CheckCast).TypeRef = TApp->typeArgs()[0];
        return;
      }
      // Runtime.newArray[T](n).
      if (Sel->sym() == Syms.newArrayMethod()) {
        emit(Op::Pop); // module reference unused
        genExpr(T->arg(0));
        emit(Op::NewArray).TypeRef = TApp->typeArgs()[0];
        return;
      }
      assert(false && "unknown type-applied intrinsic in backend");
      return;
    }

    auto *Sel = dyn_cast<Select>(Fun);
    if (Sel) {
      Symbol *Sym = Sel->sym();
      // Primitive operators become single instructions.
      Op Code;
      if (tryPrimOp(Sym, Code)) {
        genExpr(Sel->qual());
        for (unsigned I = 0; I < T->numArgs(); ++I)
          genExpr(T->arg(I));
        emit(Code);
        return;
      }
      // Array intrinsics.
      if (Sym == Syms.arrayApply()) {
        genExpr(Sel->qual());
        genExpr(T->arg(0));
        emit(Op::ArrayLoad);
        return;
      }
      if (Sym == Syms.arrayUpdate()) {
        genExpr(Sel->qual());
        genExpr(T->arg(0));
        genExpr(T->arg(1));
        emit(Op::ArrayStore);
        emit(Op::ConstUnit);
        return;
      }
      if (Sym == Syms.arrayLength()) {
        genExpr(Sel->qual());
        emit(Op::ArrayLength);
        return;
      }
      // String concatenation.
      if (Sym->owner() == Syms.stringClass() &&
          Sym->name().text() == "+") {
        genExpr(Sel->qual());
        genExpr(T->arg(0));
        emit(Op::Concat);
        return;
      }
      // Super (incl. parent constructor) calls dispatch statically.
      if (auto *Sup = dyn_cast<Super>(Sel->qual())) {
        genExpr(Sel->qual());
        for (unsigned I = 0; I < T->numArgs(); ++I)
          genExpr(T->arg(I));
        Instr &I = emit(Op::InvokeSuper);
        I.Sym = Sym;
        I.SuperCls = Sup->target();
        I.ArgCount = T->numArgs();
        return;
      }
      // Plain virtual dispatch.
      genExpr(Sel->qual());
      for (unsigned I = 0; I < T->numArgs(); ++I)
        genExpr(T->arg(I));
      Instr &I = emit(Op::InvokeVirt);
      I.Sym = Sym;
      I.ArgCount = T->numArgs();
      return;
    }
    assert(false && "unexpected function shape in backend");
  }

  CompilerContext &Comp;
  MethodCode &Out;
  struct LabelInfo {
    uint32_t Pc = 0;
    /// Finalizers.size() when the label was defined — a Goto back to it
    /// inlines every finalizer pushed since.
    size_t FinalizerDepth = 0;
  };
  std::map<Symbol *, LabelInfo> LabelStarts;
  /// Finalizer blocks of the try bodies currently being generated,
  /// outermost first.
  std::vector<Tree *> Finalizers;
};

} // namespace

/// A Super qualifier evaluates to `this`.
static void noteSuper() {}

Program mpc::generateCode(const std::vector<CompilationUnit> &Units,
                          CompilerContext &Comp) {
  noteSuper();
  Program Prog;
  for (const CompilationUnit &Unit : Units) {
    if (!Unit.Root)
      continue;
    for (const TreePtr &Top : Unit.Root->kids()) {
      auto *CD = dyn_cast_or_null<ClassDef>(Top.get());
      if (!CD)
        continue;
      ClassFile CF;
      CF.Cls = CD->sym();
      for (const TreePtr &Member : CD->kids()) {
        if (!Member)
          continue;
        if (auto *VD = dyn_cast<ValDef>(Member.get())) {
          assert(!VD->rhs() &&
                 "field with initializer reached the backend");
          CF.Fields.push_back(VD->sym());
          continue;
        }
        auto *DD = dyn_cast<DefDef>(Member.get());
        if (!DD || !DD->rhs())
          continue;
        MethodCode MC;
        MC.Method = DD->sym();
        for (unsigned I = 0; I < DD->numParamsTotal(); ++I)
          MC.Params.push_back(cast<ValDef>(DD->paramAt(I))->sym());
        MC.MaxLocals = DD->numParamsTotal() + 1;
        MethodEmitter ME(Comp, MC);
        ME.emitBody(DD->rhs());
        CF.Methods.push_back(std::move(MC));
      }
      Prog.Classes.push_back(std::move(CF));
    }
  }
  // Debug option: catch structural codegen bugs here as typed failures
  // instead of VM crashes later. Test suites verify unconditionally.
  if (Comp.options().VerifyBytecode)
    Prog.VerifyFailures = verifyProgram(Prog);
  return Prog;
}
