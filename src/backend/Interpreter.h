//===----------------------------------------------------------------------===//
///
/// \file
/// A definitional interpreter for fully lowered trees. Used by the test
/// suite for differential semantics testing: a program compiled with the
/// fused-miniphase pipeline and the same program compiled with the
/// unfused (Megaphase) pipeline must produce identical output — the
/// soundness property of §6 made executable.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_BACKEND_INTERPRETER_H
#define MPC_BACKEND_INTERPRETER_H

#include "core/CompilerContext.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mpc {

/// Result of executing a program.
struct ExecResult {
  std::string Output;        // everything println/print produced
  bool Uncaught = false;     // an exception escaped main
  std::string Error;         // description when Uncaught
  uint64_t StepsExecuted = 0;
};

/// Executes lowered compilation units starting from an entry point.
class Interpreter {
public:
  /// \p StepLimit guards against runaway loops in generated programs.
  Interpreter(CompilerContext &Comp,
              const std::vector<CompilationUnit> &Units,
              uint64_t StepLimit = 50'000'000);
  ~Interpreter();

  /// Runs `main(args)` on the entry-point symbol.
  ExecResult runMain(Symbol *EntryPoint,
                     const std::vector<std::string> &Args = {});

private:
  class Impl;
  std::unique_ptr<Impl> P;
};

} // namespace mpc

#endif // MPC_BACKEND_INTERPRETER_H
