//===----------------------------------------------------------------------===//
///
/// \file
/// A compact stack-machine bytecode (the GenBCode analogue). The code
/// generator lowers the fully transformed trees into this form; the
/// bytecode is the compiler's final product and its size/shape is checked
/// by tests. (Semantic execution for differential testing happens on the
/// lowered trees, see Interpreter.h.)
///
//===----------------------------------------------------------------------===//

#ifndef MPC_BACKEND_BYTECODE_H
#define MPC_BACKEND_BYTECODE_H

#include "ast/Symbols.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mpc {

/// Operation codes of the MiniScala VM.
enum class Op : uint8_t {
  Nop,
  // Constants.
  ConstUnit,
  ConstBool,   // operand: Imm (0/1) — kept distinct from ConstInt: the
               // runtime value kinds differ (show/equality observe it)
  ConstInt,    // operand: Imm
  ConstDouble, // operand: Num
  ConstStr,    // operand: Str
  ConstNull,
  ConstClass, // operand: TypeRef
  // Locals.
  Load,  // operand: Sym (local/param)
  Store, // operand: Sym
  // Fields.
  GetField, // operand: Sym
  PutField, // operand: Sym
  // Objects.
  NewObject,   // operand: Sym (class)
  InvokeVirt,  // operand: Sym (method), ArgCount
  InvokeSuper, // operand: Sym
  InvokeStatic,// operand: Sym (module method)
  GetModule,   // operand: Sym (module class)
  InstanceOf,  // operand: TypeRef
  CheckCast,   // operand: TypeRef
  // Arrays.
  NewArray,    // operand: TypeRef (elem)
  ArrayLoad,
  ArrayStore,
  ArrayLength,
  // Arithmetic & logic (operate on operand-stack values).
  Add, Sub, Mul, Div, Rem, Neg,
  CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe,
  Not,
  Concat, // string concatenation
  // Control flow.
  Jump,        // operand: Target (instruction index)
  JumpIfFalse, // operand: Target
  AThrow,
  ReturnValue,
  Pop,
  Dup,
};

/// One instruction with its immediate operands.
struct Instr {
  Op Code = Op::Nop;
  int64_t Imm = 0;
  double Num = 0;
  std::string Str;
  Symbol *Sym = nullptr;
  const Type *TypeRef = nullptr;
  /// InvokeSuper only: the statically-known superclass the call
  /// dispatches into (`Super::target()` at the call site). The linker
  /// resolves super calls at link time and needs the class the symbol
  /// alone does not carry.
  ClassSymbol *SuperCls = nullptr;
  int32_t Target = -1;
  uint32_t ArgCount = 0;
};

/// Exception-handler table entry: [Start, End) protected range.
struct Handler {
  uint32_t Start = 0;
  uint32_t End = 0;
  uint32_t Entry = 0;
  const Type *CatchType = nullptr;
  /// A finally route: catches *everything* thrown in the range, runs the
  /// finalizer block at Entry, and rethrows (the block ends in AThrow).
  /// CatchType is null for these entries.
  bool IsFinally = false;
};

/// One compiled method.
struct MethodCode {
  Symbol *Method = nullptr;
  std::vector<Symbol *> Params;
  std::vector<Instr> Code;
  std::vector<Handler> Handlers;
  uint32_t MaxLocals = 0;
};

/// One compiled class.
struct ClassFile {
  ClassSymbol *Cls = nullptr;
  std::vector<Symbol *> Fields;
  std::vector<MethodCode> Methods;

  uint64_t totalInstructions() const {
    uint64_t N = 0;
    for (const MethodCode &M : Methods)
      N += M.Code.size();
    return N;
  }
};

/// One bytecode-verifier diagnostic (produced by backend/Verifier.h,
/// carried on the Program so callers see structural codegen bugs as
/// typed failures instead of VM crashes).
struct VerifyFailure {
  Symbol *Method = nullptr;
  uint32_t Pc = 0;
  std::string Message;
};

/// The compiled program.
struct Program {
  std::vector<ClassFile> Classes;
  std::vector<Symbol *> EntryPoints;
  /// Filled by generateCode when CompilerOptions::VerifyBytecode is set
  /// (tests run the verifier unconditionally via verifyProgram).
  std::vector<VerifyFailure> VerifyFailures;

  uint64_t totalInstructions() const {
    uint64_t N = 0;
    for (const ClassFile &C : Classes)
      N += C.totalInstructions();
    return N;
  }
};

} // namespace mpc

#endif // MPC_BACKEND_BYTECODE_H
