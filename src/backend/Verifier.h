//===----------------------------------------------------------------------===//
///
/// \file
/// Static bytecode verifier. Runs a worklist dataflow over each method's
/// instruction stream and rejects structurally broken code before it can
/// reach the VM: jump targets out of range, fall-through off the end of
/// the method, operand-stack underflow or depth mismatches at merge
/// points, and malformed exception-handler ranges. CodeGen runs it under
/// CompilerOptions::VerifyBytecode; the VM test suites run it on every
/// compiled program.
///
/// As a by-product the verifier computes each method's maximum operand
/// stack depth and the stack depth at every handler's protected-range
/// start — the linker uses both to size VM frames and to cut the operand
/// stack back to the right depth when an exception unwinds into a
/// handler that sits mid-expression.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_BACKEND_VERIFIER_H
#define MPC_BACKEND_VERIFIER_H

#include "backend/Bytecode.h"

namespace mpc {

/// Depth facts computed while verifying one method (only meaningful when
/// the method verified cleanly).
struct StackDepths {
  /// Maximum operand-stack depth over all reachable instructions.
  uint32_t MaxStack = 0;
  /// Per-handler operand depth at the protected range's start; the depth
  /// an unwind must cut the stack back to before pushing the exception.
  std::vector<uint32_t> HandlerDepth;
};

/// Verifies one method. Appends failures to \p Failures; returns true
/// when the method is clean. \p Depths is filled on success.
bool verifyMethod(const MethodCode &MC, std::vector<VerifyFailure> &Failures,
                  StackDepths *Depths = nullptr);

/// Verifies every method of every class. Returns all failures (empty =
/// program is structurally sound).
std::vector<VerifyFailure> verifyProgram(const Program &Prog);

} // namespace mpc

#endif // MPC_BACKEND_VERIFIER_H
