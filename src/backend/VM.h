//===----------------------------------------------------------------------===//
///
/// \file
/// A direct-threaded bytecode VM over the linked program (Linker.h). The
/// execution-model counterpart of the tree interpreter: flat tagged
/// values, slot-indexed frames on one contiguous value stack, monomorphic
/// inline caches on virtual-call and field sites, and (under GCC/Clang)
/// computed-goto dispatch with the label address cached in each
/// instruction. The tree interpreter stays in place as the semantic
/// oracle — for every valid program the VM must produce byte-identical
/// output, uncaught-exception text, and error strings (the differential
/// suite in tests/backend/VMExecutionTest.cpp enforces this).
///
/// Dispatch is direct-threaded when MPC_VM_COMPUTED_GOTO is available
/// (GNU labels-as-values); defining MPC_VM_NO_COMPUTED_GOTO forces the
/// portable token-threaded switch loop, which the CI matrix exercises.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_BACKEND_VM_H
#define MPC_BACKEND_VM_H

#include "backend/Interpreter.h" // ExecResult
#include "backend/Linker.h"

namespace mpc {

/// Executes a linked program. Holds the run's heap (objects, arrays,
/// strings live until the VM is destroyed — programs are bounded by the
/// step limit, so there is no collector) and the module instances.
class VM {
public:
  /// \p StepLimit mirrors the tree interpreter's runaway-loop guard; both
  /// engines report "step limit exceeded" through ExecResult::Error.
  /// Inline caches and (on first run) the threading pass write into
  /// \p Linked, so the program is taken by mutable reference; it must
  /// outlive the VM.
  VM(CompilerContext &Comp, LinkedProgram &Linked,
     uint64_t StepLimit = 50'000'000);
  ~VM();

  /// Runs `main(args)` on the entry-point symbol. Cooperative
  /// cancellation mirrors the interpreter: every 256th step polls the
  /// context's CancelToken, and DeadlineExceeded propagates out.
  /// Flushes backend.vm.* counters (dispatch per opcode, inline-cache
  /// hits/misses, frames, allocations) into the context's stats.
  ExecResult runMain(Symbol *EntryPoint,
                     const std::vector<std::string> &Args = {});

  /// Enables dynamic opcode-pair counting (a NumLOps x NumLOps matrix of
  /// (previous, current) dispatch counts). Adds a branch to the dispatch
  /// loop; used by bench_interp --pairs to measure which pairs are worth
  /// fusing into superinstructions. Count rows are read back with
  /// pairCounts().
  void enablePairCounts();
  const std::vector<uint64_t> &pairCounts() const;

private:
  class Impl;
  std::unique_ptr<Impl> P;
};

} // namespace mpc

#endif // MPC_BACKEND_VM_H
