//===----------------------------------------------------------------------===//
///
/// \file
/// Phase and MiniPhase (paper Listing 4 and Listing 7).
///
/// A Phase is an arbitrary whole-unit transformation. A MiniPhase instead
/// overrides per-node-kind transform hooks (and optionally prepare hooks)
/// and *declares* which kinds it touches; the framework fuses consecutive
/// miniphases into a single postorder traversal (see FusedBlock).
///
/// Ordering constraints (paper §6.3): runsAfter names phases that must
/// precede this one in the pipeline; runsAfterGroupsOf names phases that
/// must have *finished the whole compilation unit* — i.e. live in a
/// strictly earlier group — before this one runs. Both are validated at
/// compiler startup by PhasePlan.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_CORE_PHASE_H
#define MPC_CORE_PHASE_H

#include "core/CompilerContext.h"

#include <string>
#include <vector>

namespace mpc {

class MiniPhase;

/// Per-run state handed to every hook invocation.
struct PhaseRunContext {
  CompilerContext &Comp;
  CompilationUnit &Unit;

  TreeContext &trees() const { return Comp.trees(); }
  TypeContext &types() const { return Comp.types(); }
  SymbolTable &syms() const { return Comp.syms(); }
};

/// Base class of all pipeline phases.
class Phase {
public:
  Phase(std::string PhaseName, std::string Description)
      : PhaseName(std::move(PhaseName)), Description(std::move(Description)) {}
  virtual ~Phase();

  const std::string &name() const { return PhaseName; }
  const std::string &description() const { return Description; }

  virtual bool isMini() const { return false; }

  /// Runs the phase on one compilation unit (megaphase entry point; for a
  /// MiniPhase this performs a standalone single-phase traversal).
  virtual void runOnUnit(CompilationUnit &Unit, CompilerContext &Comp) = 0;

  /// Postcondition established by this phase, re-checked on every subtree
  /// by the TreeChecker after this and every later phase (Listing 9).
  /// Returns true when \p T satisfies the condition.
  virtual bool checkPostCondition(const Tree *T, CompilerContext &Comp) const {
    (void)T;
    (void)Comp;
    return true;
  }

  const std::vector<std::string> &runsAfter() const { return RunsAfter; }
  const std::vector<std::string> &runsAfterGroupsOf() const {
    return RunsAfterGroups;
  }

protected:
  void addRunsAfter(std::string Other) {
    RunsAfter.push_back(std::move(Other));
  }
  void addRunsAfterGroupsOf(std::string Other) {
    RunsAfterGroups.push_back(std::move(Other));
  }

private:
  std::string PhaseName;
  std::string Description;
  std::vector<std::string> RunsAfter;
  std::vector<std::string> RunsAfterGroups;
};

/// A fusible tree transformation with per-kind hooks (Listings 4 and 7).
///
/// Subclasses override transformX / prepareForX / leaveX for the node kinds
/// they care about and must declare those kinds in the constructor via
/// declareTransforms / declarePrepares — the framework skips undeclared
/// hooks entirely (the paper's identity-transform optimization). The
/// HookAudit test fixture cross-checks declarations against behaviour.
class MiniPhase : public Phase {
public:
  using Phase::Phase;

  bool isMini() const final { return true; }

  /// Standalone execution: a single-phase traversal (paper Listing 4).
  void runOnUnit(CompilationUnit &Unit, CompilerContext &Comp) override;

  // Per-kind transform hooks; defaults are identity.
#define TREE_KIND(Name)                                                        \
  virtual TreePtr transform##Name(Name *T, PhaseRunContext &Ctx) {             \
    (void)Ctx;                                                                 \
    return TreePtr(T);                                                         \
  }
#include "ast/TreeKinds.def"

  // Per-kind prepare hooks, run preorder on subtree entry; the matching
  // leave hook runs when the node's processing completes, restoring
  // stack-discipline phase state (our analogue of Dotty's scoped contexts).
#define TREE_KIND(Name)                                                        \
  virtual void prepareFor##Name(Name *T, PhaseRunContext &Ctx) {               \
    (void)T;                                                                   \
    (void)Ctx;                                                                 \
  }                                                                            \
  virtual void leave##Name(Name *T, PhaseRunContext &Ctx) {                    \
    (void)T;                                                                   \
    (void)Ctx;                                                                 \
  }
#include "ast/TreeKinds.def"

  /// Unit-level initialization (§4.2): populate per-unit phase state.
  virtual void prepareForUnit(PhaseRunContext &Ctx) { (void)Ctx; }
  /// Unit-level finalization (§4.2): clear per-unit state, final rewrites.
  virtual TreePtr transformUnit(TreePtr Root, PhaseRunContext &Ctx) {
    (void)Ctx;
    return Root;
  }

  /// Kind masks declared by the subclass.
  const KindSet &transformKinds() const { return TransformMask; }
  const KindSet &prepareKinds() const { return PrepareMask; }

  /// Kind-dispatched entry points used by the fusion engine.
  TreePtr dispatchTransform(Tree *T, PhaseRunContext &Ctx);
  void dispatchPrepare(Tree *T, PhaseRunContext &Ctx);
  void dispatchLeave(Tree *T, PhaseRunContext &Ctx);

protected:
  void declareTransforms(KindSet Kinds) { TransformMask = Kinds; }
  void declarePrepares(KindSet Kinds) { PrepareMask = Kinds; }

private:
  KindSet TransformMask;
  KindSet PrepareMask;
};

} // namespace mpc

#endif // MPC_CORE_PHASE_H
