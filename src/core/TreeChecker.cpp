#include "core/TreeChecker.h"

#include "ast/TreePrinter.h"
#include "ast/TreeUtils.h"

#include <set>

using namespace mpc;

/// Definition-free kinds never need a type; everything else must carry one.
static bool needsType(const Tree *T) {
  switch (T->kind()) {
  case TreeKind::ValDef:
  case TreeKind::DefDef:
  case TreeKind::ClassDef:
  case TreeKind::PackageDef:
    return false;
  default:
    return true;
  }
}

void TreeChecker::checkGlobalInvariants(
    const Tree *Root, CompilerContext &Comp,
    std::vector<CheckFailure> &Failures) const {
  (void)Comp;
  forEachSubtree(const_cast<Tree *>(Root), [&](Tree *T) {
    // Invariant: expression nodes carry types ("checkNoOrphanTypes").
    if (needsType(T) && !T->type())
      Failures.push_back(
          {"", std::string("untyped node: ") + treeKindName(T->kind()), T});

    // Invariant: definitions have symbols and the defining tree the symbol
    // points at is this very node (phases must keep defTree current).
    if (auto *VD = dyn_cast<ValDef>(T)) {
      if (!VD->sym())
        Failures.push_back({"", "ValDef without symbol", T});
    } else if (auto *DD = dyn_cast<DefDef>(T)) {
      if (!DD->sym())
        Failures.push_back({"", "DefDef without symbol", T});
    }

    // Invariant: no double definitions within one block/class body
    // ("checkNoDoubleDefinitions").
    auto CheckScope = [&](unsigned Begin, unsigned End) {
      std::set<Symbol *> Seen;
      for (unsigned I = Begin; I < End; ++I) {
        Tree *Stat = T->kid(I);
        Symbol *S = nullptr;
        if (auto *VD = dyn_cast_or_null<ValDef>(Stat))
          S = VD->sym();
        else if (auto *DD = dyn_cast_or_null<DefDef>(Stat))
          S = DD->sym();
        else if (auto *CD = dyn_cast_or_null<ClassDef>(Stat))
          S = CD->sym();
        if (S && !Seen.insert(S).second)
          Failures.push_back(
              {"", "double definition of " + S->name().str(), T});
      }
    };
    if (isa<Block>(T))
      CheckScope(0, T->numKids() - 1);
    else if (isa<ClassDef>(T) || isa<PackageDef>(T))
      CheckScope(0, T->numKids());

    // Invariant: structural shape — non-nullable child slots are filled.
    switch (T->kind()) {
    case TreeKind::Block:
      if (!T->kid(T->numKids() - 1))
        Failures.push_back({"", "Block without result expression", T});
      break;
    case TreeKind::If:
      if (!T->kid(0) || !T->kid(1) || !T->kid(2))
        Failures.push_back({"", "If with missing child", T});
      break;
    default:
      break;
    }

    // Re-derive types bottom-up and compare ("reTyped.hasSameTypes(subt)").
    // The derived type must conform to the recorded one — phases may
    // legally widen (e.g. erasure joins unions to a common ancestor).
    if (Retype && needsType(T) && T->type()) {
      const Type *Derived = Retype(T, Comp);
      if (Derived && Derived != T->type() &&
          !Comp.types().isSubtype(Derived, T->type()))
        Failures.push_back({"",
                            std::string("type mismatch on ") +
                                treeKindName(T->kind()) + ": recorded " +
                                T->type()->show() + ", re-derived " +
                                Derived->show(),
                            T});
    }
  });
}

std::vector<CheckFailure>
TreeChecker::check(CompilationUnit &Unit, const std::vector<Phase *> &Executed,
                   CompilerContext &Comp,
                   const std::string &AfterPhase) const {
  std::vector<CheckFailure> Failures;
  Tree *Root = Unit.Root.get();
  if (!Root)
    return Failures;

  checkGlobalInvariants(Root, Comp, Failures);

  // Postconditions of every phase executed so far must (still) hold on
  // every subtree — this is what localizes cross-phase breakage: "if a
  // postcondition of phase X fails after executing phase Y, we know
  // immediately that phase Y breaks the invariant of X".
  forEachSubtree(Root, [&](Tree *T) {
    for (Phase *P : Executed) {
      if (!P->checkPostCondition(T, Comp)) {
        PrintOptions PO;
        PO.ShowTypes = true;
        PO.MaxDepth = 3;
        Failures.push_back({P->name(),
                            "postcondition of phase " + P->name() +
                                " violated after running " + AfterPhase +
                                " on:\n" + treeToString(T, PO),
                            T});
      }
    }
  });
  return Failures;
}
