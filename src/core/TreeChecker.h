//===----------------------------------------------------------------------===//
///
/// \file
/// TreeChecker (paper Listing 9 and §6.3): a checking pass inserted between
/// phase groups when -Ycheck (CompilerOptions::CheckTrees) is enabled.
///
/// For every subtree it (a) verifies global invariants that must hold
/// between any two phases, (b) optionally re-derives types bottom-up and
/// compares them with the recorded ones (the "strip and re-typecheck"
/// check; injected by the frontend to keep layering), and (c) runs the
/// checkPostCondition of *all previously executed phases*, which localizes
/// an invariant violation to the phase that broke it.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_CORE_TREECHECKER_H
#define MPC_CORE_TREECHECKER_H

#include "core/Phase.h"

#include <functional>
#include <string>
#include <vector>

namespace mpc {

/// One detected violation.
struct CheckFailure {
  std::string PhaseName; // empty for a global-invariant failure
  std::string Message;
  const Tree *Node;
};

/// The between-groups dynamic checker.
class TreeChecker {
public:
  /// \p Retype, if provided, re-derives the type of an expression node
  /// bottom-up and returns it (null when it has no opinion). Supplied by
  /// the frontend's TypeAssigner.
  using RetypeFn =
      std::function<const Type *(const Tree *, CompilerContext &)>;

  TreeChecker() = default;
  explicit TreeChecker(RetypeFn Retype) : Retype(std::move(Retype)) {}

  /// Checks one unit after the phases \p Executed have run. Returns the
  /// failures found (empty = clean). \p AfterPhase names the phase that
  /// just finished, for messages.
  std::vector<CheckFailure> check(CompilationUnit &Unit,
                                  const std::vector<Phase *> &Executed,
                                  CompilerContext &Comp,
                                  const std::string &AfterPhase) const;

  /// Global invariants only (also used directly by tests).
  void checkGlobalInvariants(const Tree *Root, CompilerContext &Comp,
                             std::vector<CheckFailure> &Failures) const;

private:
  RetypeFn Retype;
};

} // namespace mpc

#endif // MPC_CORE_TREECHECKER_H
