//===----------------------------------------------------------------------===//
///
/// \file
/// PhasePlan: the ordered pipeline of phases, partitioned into groups.
///
/// Consecutive miniphases fuse into one group (one traversal); megaphases
/// are singleton groups. A group boundary is also forced when a miniphase
/// declares runsAfterGroupsOf on a phase of the open group — the §6
/// criteria: the named phase must finish the whole compilation unit first.
///
/// The ordering constraints are validated when the plan is built, i.e. at
/// compiler startup — "they are checked as soon as the compiler starts up,
/// so any violations are caught immediately, independent of any test
/// input" (§6.3).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_CORE_PHASEPLAN_H
#define MPC_CORE_PHASEPLAN_H

#include "core/FusedBlock.h"
#include "core/Phase.h"

#include <memory>
#include <string>
#include <vector>

namespace mpc {

class OStream;

/// One traversal's worth of phases: either a fused run of miniphases or a
/// single megaphase.
struct PhaseGroup {
  std::vector<Phase *> Members;
  /// Non-null iff all members are miniphases and fusion is enabled.
  std::unique_ptr<FusedBlock> Block;

  bool isFused() const { return Block != nullptr; }
};

/// An immutable, validated pipeline.
class PhasePlan {
public:
  PhasePlan() = default;
  PhasePlan(PhasePlan &&) = default;
  PhasePlan &operator=(PhasePlan &&) = default;

  /// Builds a plan from \p Phases in order. When \p Fuse is false every
  /// phase becomes its own group (the paper's "Megaphase" evaluation
  /// configuration). Ordering errors are appended to \p Errors; the plan
  /// is usable only when no errors were produced.
  static PhasePlan build(std::vector<std::unique_ptr<Phase>> Phases,
                         bool Fuse, std::vector<std::string> &Errors);

  const std::vector<PhaseGroup> &groups() const { return Groups; }
  size_t phaseCount() const { return AllPhases.size(); }
  const std::vector<Phase *> &phases() const { return AllPhases; }

  Phase *findPhase(const std::string &PhaseName) const;

  /// All phases of groups 0..\p GroupIdx inclusive — the "previous phases"
  /// whose postconditions the TreeChecker enforces after group \p GroupIdx
  /// finishes.
  std::vector<Phase *> phasesUpTo(size_t GroupIdx) const;

  /// The fused blocks of the plan in pipeline order (empty in the unfused
  /// configuration). Benches and tests read per-block traversal counters
  /// through this.
  std::vector<FusedBlock *> fusedBlocks() const;

  /// Prints the pipeline as in the paper's Tables 1/2: id, name,
  /// description; miniphases marked '*', horizontal rules at group
  /// boundaries.
  void print(OStream &OS) const;

private:
  std::vector<std::unique_ptr<Phase>> Owned;
  std::vector<Phase *> AllPhases;
  std::vector<PhaseGroup> Groups;
};

} // namespace mpc

#endif // MPC_CORE_PHASEPLAN_H
