#include "core/PhasePlan.h"

#include "support/OStream.h"

#include <map>

using namespace mpc;

PhasePlan PhasePlan::build(std::vector<std::unique_ptr<Phase>> Phases,
                           bool Fuse, std::vector<std::string> &Errors) {
  PhasePlan Plan;
  Plan.Owned = std::move(Phases);
  for (auto &P : Plan.Owned)
    Plan.AllPhases.push_back(P.get());

  // Name uniqueness and index maps.
  std::map<std::string, size_t> PositionOf;
  for (size_t I = 0; I < Plan.AllPhases.size(); ++I) {
    Phase *P = Plan.AllPhases[I];
    if (!PositionOf.emplace(P->name(), I).second)
      Errors.push_back("duplicate phase name: " + P->name());
  }

  // runsAfter: referenced phase must exist and appear strictly earlier.
  for (size_t I = 0; I < Plan.AllPhases.size(); ++I) {
    Phase *P = Plan.AllPhases[I];
    for (const std::string &Dep : P->runsAfter()) {
      auto It = PositionOf.find(Dep);
      if (It == PositionOf.end()) {
        Errors.push_back("phase " + P->name() + " runsAfter unknown phase " +
                         Dep);
        continue;
      }
      if (It->second >= I)
        Errors.push_back("phase " + P->name() + " must run after " + Dep +
                         ", but is scheduled before it");
    }
    for (const std::string &Dep : P->runsAfterGroupsOf()) {
      if (PositionOf.find(Dep) == PositionOf.end())
        Errors.push_back("phase " + P->name() +
                         " runsAfterGroupsOf unknown phase " + Dep);
    }
  }

  // Group formation.
  std::vector<std::vector<Phase *>> RawGroups;
  std::map<Phase *, size_t> GroupOf;
  auto InOpenGroup = [&](const std::string &DepName) {
    if (RawGroups.empty())
      return false;
    for (Phase *Member : RawGroups.back())
      if (Member->name() == DepName)
        return true;
    return false;
  };

  for (Phase *P : Plan.AllPhases) {
    bool StartNew = true;
    if (Fuse && P->isMini() && !RawGroups.empty() &&
        RawGroups.back().front()->isMini()) {
      // Candidate for fusion into the open group, unless a group-of
      // dependency lives in that group.
      StartNew = false;
      for (const std::string &Dep : P->runsAfterGroupsOf())
        if (InOpenGroup(Dep))
          StartNew = true;
    }
    if (StartNew)
      RawGroups.emplace_back();
    RawGroups.back().push_back(P);
    GroupOf[P] = RawGroups.size() - 1;
  }

  // runsAfterGroupsOf: referenced phase must live in a strictly earlier
  // group (it has finished the entire compilation unit).
  for (Phase *P : Plan.AllPhases) {
    for (const std::string &Dep : P->runsAfterGroupsOf()) {
      Phase *DepPhase = nullptr;
      for (Phase *Q : Plan.AllPhases)
        if (Q->name() == Dep)
          DepPhase = Q;
      if (!DepPhase)
        continue; // reported above
      if (GroupOf[DepPhase] >= GroupOf[P])
        Errors.push_back("phase " + P->name() + " requires groups of " + Dep +
                         " to have finished, but both are in the same group");
    }
  }

  for (auto &Raw : RawGroups) {
    PhaseGroup G;
    G.Members = Raw;
    bool AllMini = true;
    for (Phase *P : Raw)
      if (!P->isMini())
        AllMini = false;
    if (Fuse && AllMini && !Raw.empty()) {
      std::vector<MiniPhase *> Minis;
      for (Phase *P : Raw)
        Minis.push_back(static_cast<MiniPhase *>(P));
      G.Block = std::make_unique<FusedBlock>(std::move(Minis));
    }
    Plan.Groups.push_back(std::move(G));
  }
  return Plan;
}

Phase *PhasePlan::findPhase(const std::string &PhaseName) const {
  for (Phase *P : AllPhases)
    if (P->name() == PhaseName)
      return P;
  return nullptr;
}

std::vector<FusedBlock *> PhasePlan::fusedBlocks() const {
  std::vector<FusedBlock *> Blocks;
  for (const PhaseGroup &G : Groups)
    if (G.Block)
      Blocks.push_back(G.Block.get());
  return Blocks;
}

std::vector<Phase *> PhasePlan::phasesUpTo(size_t GroupIdx) const {
  std::vector<Phase *> Result;
  for (size_t G = 0; G <= GroupIdx && G < Groups.size(); ++G)
    for (Phase *P : Groups[G].Members)
      Result.push_back(P);
  return Result;
}

void PhasePlan::print(OStream &OS) const {
  unsigned Id = 1;
  for (size_t G = 0; G < Groups.size(); ++G) {
    if (G != 0)
      OS << "  ----------------------------------------\n";
    for (Phase *P : Groups[G].Members) {
      OS << "  ";
      if (Id < 10)
        OS << ' ';
      OS << Id << "  " << P->name();
      if (P->isMini())
        OS << '*';
      OS.indent(P->name().size() < 24 ? 24 - P->name().size() : 1);
      OS << P->description() << '\n';
      ++Id;
    }
  }
}
