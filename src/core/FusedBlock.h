//===----------------------------------------------------------------------===//
///
/// \file
/// The fusion engine (paper Listings 5/6/8 and Figures 2/3).
///
/// A FusedBlock owns the schedule for a group of miniphases and performs
/// one postorder traversal per compilation unit, applying at every node the
/// transforms of all constituent phases in order. The two published
/// optimizations are implemented:
///
///   1. identity-transform skip — phases that declared no interest in a
///      node's kind are never invoked on it;
///   2. same-kind fast path / kind-change re-dispatch — per-kind interest
///      lists are precomputed; while a node keeps its kind, the engine
///      walks the dense list, and when a hook changes the kind it switches
///      to the new kind's list (only phases after the current one run).
///
/// Prepares (Listing 7/8) run preorder; the matching leave hooks run when
/// the subtree completes. The semantics the paper highlights hold: when
/// phase m transforms node t, t was already transformed by phases before m,
/// and t's children by *all* phases of the block — m "sees the future" in
/// its subtrees (Figure 3).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_CORE_FUSEDBLOCK_H
#define MPC_CORE_FUSEDBLOCK_H

#include "core/Phase.h"

#include <unordered_map>
#include <vector>

namespace mpc {

/// A fused group of miniphases executing in a single traversal.
class FusedBlock {
public:
  /// \p Phases in pipeline order. The block does not own the phases.
  explicit FusedBlock(std::vector<MiniPhase *> Phases);

  /// Runs the whole block on one unit: unit prepares, one postorder
  /// traversal, unit transforms.
  void runOnUnit(CompilationUnit &Unit, CompilerContext &Comp);

  /// Transforms a single tree (exposed for unit tests).
  TreePtr transformTree(TreePtr Root, PhaseRunContext &Ctx);

  const std::vector<MiniPhase *> &phases() const { return Phases; }

  /// Traversal statistics for the last/accumulated runs.
  uint64_t nodesVisited() const { return NumVisited; }
  uint64_t hooksExecuted() const { return NumHooks; }
  /// Shared-subtree reuses under CompilerOptions::DagMemoize (§9).
  uint64_t sharedHits() const { return NumSharedHits; }
  void resetStats() {
    NumVisited = 0;
    NumHooks = 0;
    NumSharedHits = 0;
  }

  /// True when any constituent phase declares prepare hooks; such blocks
  /// never memoize shared subtrees (the transforms may be path-dependent).
  bool hasPrepares() const { return HasPrepares; }

private:
  TreePtr walk(Tree *T, PhaseRunContext &Ctx);
  TreePtr applyTransforms(TreePtr Node, PhaseRunContext &Ctx);
  TreePtr applyTransformsNaive(TreePtr Node, PhaseRunContext &Ctx);
  void instrumentVisit(const Tree *T, CompilerContext &Comp);
  void instrumentHook(unsigned PhaseIdx, TreeKind K,
                      CompilerContext &Comp, const Tree *Node);

  std::vector<MiniPhase *> Phases;
  /// For each tree kind, ascending indices of phases interested in it.
  std::vector<uint16_t> TransformLists[NumTreeKinds];
  std::vector<uint16_t> PrepareLists[NumTreeKinds];
  bool HasPrepares = false;
  uint64_t NumVisited = 0;
  uint64_t NumHooks = 0;
  uint64_t NumSharedHits = 0;
  /// Per-run memo for DAG mode: input node -> fully transformed result.
  std::unordered_map<const Tree *, TreePtr> DagMemo;
};

} // namespace mpc

#endif // MPC_CORE_FUSEDBLOCK_H
