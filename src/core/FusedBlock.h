//===----------------------------------------------------------------------===//
///
/// \file
/// The fusion engine (paper Listings 5/6/8 and Figures 2/3).
///
/// A FusedBlock owns the schedule for a group of miniphases and performs
/// one postorder traversal per compilation unit, applying at every node the
/// transforms of all constituent phases in order. The two published
/// optimizations are implemented:
///
///   1. identity-transform skip — phases that declared no interest in a
///      node's kind are never invoked on it;
///   2. same-kind fast path / kind-change re-dispatch — per-kind interest
///      lists are precomputed; while a node keeps its kind, the engine
///      walks the dense list, and when a hook changes the kind it switches
///      to the new kind's list (only phases after the current one run).
///
/// Two engine-level refinements extend them:
///
///   3. subtree pruning — the block's fused interest mask (union of all
///      phases' transform and prepare kind sets) is cached at block
///      construction; walk() returns a subtree untouched when its
///      Tree::kindsBelow summary intersects none of it, since zero hooks
///      would execute inside and the copier would reuse every node;
///   4. flattened dispatch tables — the per-kind interest lists live in
///      one contiguous uint16_t buffer addressed by per-kind
///      offset/length pairs, so the hot dispatch loop reads a single
///      cache-resident block instead of chasing per-kind vector headers;
///   5. prepare-only walks — a subtree whose summary intersects the
///      prepare mask but not the transform mask cannot change (zero
///      transform hooks run anywhere inside), so it is walked by a light
///      hook-only recursion that skips all rebuild bookkeeping and
///      returns the subtree by pointer;
///   6. scratch-buffer rebuilds — the per-node NewKids list lives in one
///      block-owned stack-shaped buffer instead of a fresh heap vector
///      per visited node, and the copier moves straight from that buffer
///      into the (inline-first) child storage of the rebuilt node.
///
/// Prepares (Listing 7/8) run preorder; the matching leave hooks run when
/// the subtree completes. The semantics the paper highlights hold: when
/// phase m transforms node t, t was already transformed by phases before m,
/// and t's children by *all* phases of the block — m "sees the future" in
/// its subtrees (Figure 3).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_CORE_FUSEDBLOCK_H
#define MPC_CORE_FUSEDBLOCK_H

#include "core/Phase.h"
#include "support/FlatPtrMap.h"

#include <vector>

namespace mpc {

/// A fused group of miniphases executing in a single traversal.
class FusedBlock {
public:
  /// \p Phases in pipeline order. The block does not own the phases.
  explicit FusedBlock(std::vector<MiniPhase *> Phases);

  /// Runs the whole block on one unit: unit prepares, one postorder
  /// traversal, unit transforms.
  void runOnUnit(CompilationUnit &Unit, CompilerContext &Comp);

  /// Transforms a single tree (exposed for unit tests).
  TreePtr transformTree(TreePtr Root, PhaseRunContext &Ctx);

  const std::vector<MiniPhase *> &phases() const { return Phases; }

  /// Traversal statistics for the last/accumulated runs.
  uint64_t nodesVisited() const { return NumVisited; }
  uint64_t hooksExecuted() const { return NumHooks; }
  /// Subtrees returned untouched by the kind-summary prune.
  uint64_t subtreesPruned() const { return NumPruned; }
  /// Subtrees walked in hook-only mode: they contain prepare-interesting
  /// kinds but no transform-interesting ones, so hooks run but all
  /// rebuild bookkeeping is skipped and the subtree is returned as-is.
  uint64_t prepareOnlyWalks() const { return NumPrepareOnly; }
  /// Shared-subtree reuses under CompilerOptions::DagMemoize (§9).
  uint64_t sharedHits() const { return NumSharedHits; }
  void resetStats() {
    NumVisited = 0;
    NumHooks = 0;
    NumPruned = 0;
    NumPrepareOnly = 0;
    NumSharedHits = 0;
  }

  /// True when any constituent phase declares prepare hooks; such blocks
  /// never memoize shared subtrees (the transforms may be path-dependent).
  bool hasPrepares() const { return HasPrepares; }

  /// Union of the constituent phases' transform kind masks, as bits.
  uint32_t fusedTransformMask() const { return TransformBits; }
  /// Union of the constituent phases' prepare kind masks, as bits.
  uint32_t fusedPrepareMask() const { return PrepareBits; }

private:
  /// Offset/length of one kind's slice of a flattened dispatch buffer.
  struct KindRange {
    uint16_t Off = 0;
    uint16_t Len = 0;
  };

  TreePtr walk(Tree *T, PhaseRunContext &Ctx);
  void walkPrepareOnly(Tree *T, PhaseRunContext &Ctx);
  TreePtr applyTransforms(TreePtr Node, PhaseRunContext &Ctx);
  TreePtr applyTransformsNaive(TreePtr Node, PhaseRunContext &Ctx);
  void instrumentVisit(const Tree *T, CompilerContext &Comp);
  void instrumentHook(unsigned PhaseIdx, TreeKind K,
                      CompilerContext &Comp, const Tree *Node);

  std::vector<MiniPhase *> Phases;
  /// Flattened per-kind interest lists: ascending phase indices, one
  /// contiguous buffer per hook class, sliced by KindRange.
  std::vector<uint16_t> TransformBuf;
  std::vector<uint16_t> PrepareBuf;
  KindRange TransformRange[NumTreeKinds];
  KindRange PrepareRange[NumTreeKinds];
  /// Cached fused interest masks (see fusedTransformMask/fusedPrepareMask).
  uint32_t TransformBits = 0;
  uint32_t PrepareBits = 0;
  /// Pruning state for the current transformTree run, split by hook
  /// class: a subtree whose kindsBelow misses both masks is returned
  /// untouched; one that only intersects the prepare mask is walked in
  /// hook-only mode (walkPrepareOnly). Both zero when pruning is
  /// disabled for this run.
  uint32_t ActiveTransformBits = 0;
  uint32_t ActivePrepareBits = 0;
  bool HasPrepares = false;
  uint64_t NumVisited = 0;
  uint64_t NumHooks = 0;
  uint64_t NumPruned = 0;
  uint64_t NumPrepareOnly = 0;
  uint64_t NumSharedHits = 0;
  /// Per-run memo for DAG mode: input node -> fully transformed result.
  /// Flat open-addressing table keyed by node address (hot-path lookup).
  FlatPtrMap<const Tree *, TreePtr> DagMemo;
  /// Stack-shaped scratch holding the NewKids of every node on the
  /// current recursion spine; walk() pushes transformed children here and
  /// the copier moves them out, so no per-node vector is ever allocated.
  std::vector<TreePtr> KidScratch;
};

} // namespace mpc

#endif // MPC_CORE_FUSEDBLOCK_H
