//===----------------------------------------------------------------------===//
///
/// \file
/// The transformation-pipeline executor (paper Listing 3): phases outer,
/// compilation units inner. A fused group counts as one "phase" of the
/// loop; in the unfused configuration every miniphase is its own pass —
/// this loop ordering is what makes whole-tree re-traversals cache-hostile
/// and is precisely what the evaluation measures.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_CORE_PIPELINE_H
#define MPC_CORE_PIPELINE_H

#include "core/PhasePlan.h"
#include "core/TreeChecker.h"

#include <string>
#include <vector>

namespace mpc {

/// Outcome of a pipeline run.
struct PipelineResult {
  /// Number of whole-tree traversals performed (groups in fused mode,
  /// phases in unfused mode).
  uint64_t Traversals = 0;
  /// Fusion-engine counters summed over the fused groups of this run
  /// (also accumulated into CompilerContext::stats() under the
  /// "fusion.*" keys). Zero in the unfused configuration, whose solo
  /// per-phase blocks are engine-internal temporaries.
  uint64_t NodesVisited = 0;
  uint64_t HooksExecuted = 0;
  uint64_t SubtreesPruned = 0;
  /// Subtrees walked hook-only by the prepare-only pruning gate.
  uint64_t PrepareOnlyWalks = 0;
  /// Heap-backend deltas for this run (real storage, not the simulated
  /// clock; also mirrored into CompilerContext::stats() as "heap.*"):
  /// system-allocator calls, slab-served allocations, pages mapped, and
  /// pages retired (fully freed and recycled into the shared pool).
  uint64_t RealAllocs = 0;
  uint64_t SlabHits = 0;
  uint64_t PagesMapped = 0;
  uint64_t PagesRetired = 0;
  /// TreeChecker failures, if checking was enabled.
  std::vector<CheckFailure> CheckFailures;
};

/// Executes a PhasePlan over the units of a compilation run.
class TransformPipeline {
public:
  explicit TransformPipeline(const PhasePlan &Plan) : Plan(Plan) {}

  /// Runs all groups. When CompilerOptions::CheckTrees is set, \p Checker
  /// (must be non-null then) runs after every group on every unit.
  PipelineResult run(std::vector<CompilationUnit> &Units,
                     CompilerContext &Comp,
                     const TreeChecker *Checker = nullptr) const;

private:
  const PhasePlan &Plan;
};

} // namespace mpc

#endif // MPC_CORE_PIPELINE_H
