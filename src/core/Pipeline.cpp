#include "core/Pipeline.h"

#include "support/FaultInjector.h"

#include <cassert>

using namespace mpc;

PipelineResult TransformPipeline::run(std::vector<CompilationUnit> &Units,
                                      CompilerContext &Comp,
                                      const TreeChecker *Checker) const {
  PipelineResult Result;
  bool Check = Comp.options().CheckTrees;
  assert((!Check || Checker) && "CheckTrees requires a TreeChecker");

  // Heap-backend counters accumulate for the context's lifetime; this
  // run's share is the delta around the group loop.
  const SlabAllocator::Stats &Backend = Comp.heap().backendStats();
  uint64_t RealAllocs0 = Backend.SystemCalls;
  uint64_t SlabHits0 = Backend.SlabAllocs;
  uint64_t PagesMapped0 = Backend.PagesMapped;
  uint64_t PagesRetired0 = Backend.PagesRetired;

  const auto &Groups = Plan.groups();
  for (size_t G = 0; G < Groups.size(); ++G) {
    const PhaseGroup &Group = Groups[G];
    if (Group.isFused()) {
      // One traversal applies every miniphase of the group (Figure 2/3).
      // Blocks accumulate their counters across runs, so this run's share
      // is the delta around the unit loop.
      uint64_t Visited0 = Group.Block->nodesVisited();
      uint64_t Hooks0 = Group.Block->hooksExecuted();
      uint64_t Pruned0 = Group.Block->subtreesPruned();
      uint64_t PrepOnly0 = Group.Block->prepareOnlyWalks();
      for (CompilationUnit &Unit : Units) {
        // Phase-entry fault point + cancellation checkpoint: both fire
        // between traversals only, so an unwind from here crosses nothing
        // but RAII-held trees (runOnUnit runs its own checkpoint).
        faultStagePoint(FaultSite::PhaseEntry);
        Group.Block->runOnUnit(Unit, Comp);
      }
      Result.NodesVisited += Group.Block->nodesVisited() - Visited0;
      Result.HooksExecuted += Group.Block->hooksExecuted() - Hooks0;
      Result.SubtreesPruned += Group.Block->subtreesPruned() - Pruned0;
      Result.PrepareOnlyWalks += Group.Block->prepareOnlyWalks() - PrepOnly0;
      ++Result.Traversals;
    } else {
      // Unfused: each phase is a separate whole-tree pass over all units
      // (Listing 3's phase-outer / unit-inner loop).
      for (Phase *P : Group.Members) {
        for (CompilationUnit &Unit : Units) {
          faultStagePoint(FaultSite::PhaseEntry);
          Comp.checkpoint();
          P->runOnUnit(Unit, Comp);
        }
        ++Result.Traversals;
      }
    }

    if (Check) {
      std::vector<Phase *> Executed = Plan.phasesUpTo(G);
      const std::string &After = Group.Members.back()->name();
      for (CompilationUnit &Unit : Units) {
        auto Failures = Checker->check(Unit, Executed, Comp, After);
        for (CheckFailure &F : Failures)
          Result.CheckFailures.push_back(std::move(F));
      }
    }
  }

  Result.RealAllocs = Backend.SystemCalls - RealAllocs0;
  Result.SlabHits = Backend.SlabAllocs - SlabHits0;
  Result.PagesMapped = Backend.PagesMapped - PagesMapped0;
  Result.PagesRetired = Backend.PagesRetired - PagesRetired0;

  StatsRegistry &Stats = Comp.stats();
  Stats.add("fusion.nodesVisited", Result.NodesVisited);
  Stats.add("fusion.hooksExecuted", Result.HooksExecuted);
  Stats.add("fusion.subtreesPruned", Result.SubtreesPruned);
  Stats.add("fusion.prepareOnlyWalks", Result.PrepareOnlyWalks);
  Stats.add("heap.realAllocs", Result.RealAllocs);
  Stats.add("heap.slabHits", Result.SlabHits);
  Stats.add("heap.pagesMapped", Result.PagesMapped);
  Stats.add("heap.pagesRetired", Result.PagesRetired);
  return Result;
}
