#include "core/FusedBlock.h"

#include <cassert>

using namespace mpc;

Phase::~Phase() = default;

TreePtr MiniPhase::dispatchTransform(Tree *T, PhaseRunContext &Ctx) {
  switch (T->kind()) {
#define TREE_KIND(Name)                                                        \
  case TreeKind::Name:                                                         \
    return transform##Name(cast<Name>(T), Ctx);
#include "ast/TreeKinds.def"
  }
  assert(false && "unhandled tree kind in dispatchTransform");
  return TreePtr(T);
}

void MiniPhase::dispatchPrepare(Tree *T, PhaseRunContext &Ctx) {
  switch (T->kind()) {
#define TREE_KIND(Name)                                                        \
  case TreeKind::Name:                                                         \
    prepareFor##Name(cast<Name>(T), Ctx);                                      \
    return;
#include "ast/TreeKinds.def"
  }
  assert(false && "unhandled tree kind in dispatchPrepare");
}

void MiniPhase::dispatchLeave(Tree *T, PhaseRunContext &Ctx) {
  switch (T->kind()) {
#define TREE_KIND(Name)                                                        \
  case TreeKind::Name:                                                         \
    leave##Name(cast<Name>(T), Ctx);                                           \
    return;
#include "ast/TreeKinds.def"
  }
  assert(false && "unhandled tree kind in dispatchLeave");
}

void MiniPhase::runOnUnit(CompilationUnit &Unit, CompilerContext &Comp) {
  // Listing 4: a miniphase run standalone is a single-phase fused block.
  FusedBlock Solo({this});
  Solo.runOnUnit(Unit, Comp);
}

//===----------------------------------------------------------------------===//
// FusedBlock
//===----------------------------------------------------------------------===//

FusedBlock::FusedBlock(std::vector<MiniPhase *> Ps) : Phases(std::move(Ps)) {
  // Phase indices and buffer offsets are stored as uint16_t; the buffers
  // hold at most NumTreeKinds * Phases.size() entries, so this bound
  // keeps every offset cast below exact.
  assert(Phases.size() * NumTreeKinds <= UINT16_MAX &&
         "too many phases in a block for the flattened dispatch tables");
  // Flattened dispatch tables: for each kind, the ascending indices of
  // interested phases, laid out back-to-back in one buffer per hook class
  // and addressed by offset/length. The fused interest masks fall out of
  // the same pass and are cached for subtree pruning.
  for (unsigned K = 0; K < NumTreeKinds; ++K) {
    TreeKind Kind = static_cast<TreeKind>(K);
    TransformRange[K].Off = static_cast<uint16_t>(TransformBuf.size());
    PrepareRange[K].Off = static_cast<uint16_t>(PrepareBuf.size());
    for (unsigned P = 0; P < Phases.size(); ++P) {
      if (Phases[P]->transformKinds().contains(Kind))
        TransformBuf.push_back(static_cast<uint16_t>(P));
      if (Phases[P]->prepareKinds().contains(Kind)) {
        PrepareBuf.push_back(static_cast<uint16_t>(P));
        HasPrepares = true;
      }
    }
    TransformRange[K].Len =
        static_cast<uint16_t>(TransformBuf.size() - TransformRange[K].Off);
    PrepareRange[K].Len =
        static_cast<uint16_t>(PrepareBuf.size() - PrepareRange[K].Off);
    if (TransformRange[K].Len)
      TransformBits |= 1u << K;
    if (PrepareRange[K].Len)
      PrepareBits |= 1u << K;
  }
}

void FusedBlock::runOnUnit(CompilationUnit &Unit, CompilerContext &Comp) {
  // Cancellation checkpoint at the phase boundary: the traversal below is
  // uninterruptible, so an expired deadline surfaces here — before the
  // walk — bounding cancellation latency to one fused group per unit.
  Comp.checkpoint();
  PhaseRunContext Ctx{Comp, Unit};
  // §4.2: per-unit initialization of every constituent phase, in order.
  for (MiniPhase *P : Phases)
    P->prepareForUnit(Ctx);
  TreePtr Root = Unit.Root;
  Root = transformTree(std::move(Root), Ctx);
  // §4.2: per-unit finalization (state cleanup / final rewrites).
  for (MiniPhase *P : Phases)
    Root = P->transformUnit(std::move(Root), Ctx);
  Unit.Root = std::move(Root);
}

TreePtr FusedBlock::transformTree(TreePtr Root, PhaseRunContext &Ctx) {
  assert(Root && "transformTree requires a root");
  // Subtree pruning: a subtree whose kind summary intersects neither the
  // fused transform mask nor the fused prepare mask executes zero hooks,
  // so walking it could only reproduce it node-for-node — skip it. For a
  // prepare-free block the prune mask degenerates to the pure transform
  // mask. Disabled under AlwaysCopy (the baseline copies every node
  // regardless of hooks), when IdentitySkip is off (the ablation invokes
  // undeclared hooks too), and under perf instrumentation (the memsim
  // figures model the full walk).
  const CompilerOptions &Opts = Ctx.Comp.options();
  bool Prune = Opts.SubtreePruning && Opts.IdentitySkip && !Opts.AlwaysCopy &&
               !Ctx.Comp.perf();
  ActiveTransformBits = Prune ? TransformBits : 0;
  ActivePrepareBits = Prune ? PrepareBits : 0;
  assert(KidScratch.empty() && "scratch leaked from a previous run");
  TreePtr Out = walk(Root.get(), Ctx);
  DagMemo.clear();
  return Out;
}

/// The single postorder traversal shared by all phases of the block
/// (paper Listing 4 generalized to a phase vector).
TreePtr FusedBlock::walk(Tree *T, PhaseRunContext &Ctx) {
  CompilerContext &Comp = Ctx.Comp;

  if (uint32_t ActiveBits = ActiveTransformBits | ActivePrepareBits) {
    uint32_t Below = T->kindsBelow();
    // Nothing below this node interests any constituent phase: no hook of
    // any class would run and the copier would reuse every node, so the
    // subtree is returned untouched without being visited.
    if ((Below & ActiveBits) == 0) {
      ++NumPruned;
      return TreePtr(T);
    }
    // Prepare-only subtree: prepare/leave hooks must still fire inside,
    // but zero transform hooks can run anywhere below, so the result is
    // this very subtree — walk it hook-only, skipping all rebuild
    // bookkeeping (no scratch kids, no copier calls).
    if ((Below & ActiveTransformBits) == 0) {
      ++NumPrepareOnly;
      walkPrepareOnly(T, Ctx);
      return TreePtr(T);
    }
  }

  // DAG mode (§9 future work): a subtree referenced from more than one
  // parent is transformed once; later occurrences reuse the result, which
  // both saves the re-walk and preserves sharing in the output. Blocks
  // with prepare hooks never memoize — their transforms may legitimately
  // produce different trees on different paths from the root.
  bool Memoize =
      Comp.options().DagMemoize && !HasPrepares && T->refCount() > 1;
  if (Memoize) {
    if (TreePtr *Hit = DagMemo.find(T)) {
      ++NumSharedHits;
      return *Hit;
    }
  }

  ++NumVisited;
  if (Comp.perf())
    instrumentVisit(T, Comp);

  // Prepares run on subtree entry (Listing 7).
  KindRange PR = PrepareRange[static_cast<unsigned>(T->kind())];
  const uint16_t *Preps = PrepareBuf.data() + PR.Off;
  for (unsigned I = 0; I < PR.Len; ++I)
    Phases[Preps[I]]->dispatchPrepare(T, Ctx);

  // Recurse into children, then rebuild the node if any child changed
  // (withNewChildren applies the reuse optimization; AlwaysCopy disables
  // it for the scalac-baseline configuration). The transformed children
  // go into the block's stack-shaped scratch buffer — slots are indexed
  // from Base because recursion may grow (and reallocate) the buffer.
  TreePtr Reconstructed;
  unsigned N = T->numKids();
  if (N == 0) {
    Reconstructed = TreePtr(T);
  } else {
    size_t Base = KidScratch.size();
    bool Changed = Comp.options().AlwaysCopy;
    for (unsigned I = 0; I < N; ++I) {
      Tree *Kid = T->kid(I);
      if (!Kid) {
        KidScratch.emplace_back();
        continue;
      }
      TreePtr NewKid = walk(Kid, Ctx);
      if (NewKid.get() != Kid)
        Changed = true;
      KidScratch.push_back(std::move(NewKid));
    }
    if (!Changed)
      Reconstructed = TreePtr(T);
    else if (Comp.options().AlwaysCopy)
      Reconstructed =
          Comp.trees().withNewChildrenForced(T, KidScratch.data() + Base, N);
    else
      Reconstructed =
          Comp.trees().withNewChildren(T, KidScratch.data() + Base, N);
    KidScratch.resize(Base);
  }

  // Apply the fused transforms bottom-up (Listings 5/6, Figures 2/3).
  TreePtr Out =
      Comp.options().Strategy == FusionStrategy::IndexedByKind
          ? applyTransforms(std::move(Reconstructed), Ctx)
          : applyTransformsNaive(std::move(Reconstructed), Ctx);

  // Balanced leave hooks (reverse order), restoring scoped phase state.
  for (unsigned I = PR.Len; I > 0; --I)
    Phases[Preps[I - 1]]->dispatchLeave(T, Ctx);

  if (Memoize)
    DagMemo.insert(T, Out);
  return Out;
}

/// Hook-only recursion for subtrees with prepare interest but no
/// transform interest: fires the same preorder prepare / postorder leave
/// sequence the full walk would, prunes hook-free sub-subtrees the same
/// way, but never touches the scratch buffer or the copier (the caller
/// returns the subtree by pointer).
void FusedBlock::walkPrepareOnly(Tree *T, PhaseRunContext &Ctx) {
  if ((T->kindsBelow() & ActivePrepareBits) == 0) {
    ++NumPruned;
    return;
  }
  ++NumVisited;

  KindRange PR = PrepareRange[static_cast<unsigned>(T->kind())];
  const uint16_t *Preps = PrepareBuf.data() + PR.Off;
  for (unsigned I = 0; I < PR.Len; ++I)
    Phases[Preps[I]]->dispatchPrepare(T, Ctx);

  unsigned N = T->numKids();
  for (unsigned I = 0; I < N; ++I)
    if (Tree *Kid = T->kid(I))
      walkPrepareOnly(Kid, Ctx);

  for (unsigned I = PR.Len; I > 0; --I)
    Phases[Preps[I - 1]]->dispatchLeave(T, Ctx);
}

/// Optimized transform application: per-kind interest lists plus
/// re-dispatch on kind change (paper Listing 6).
TreePtr FusedBlock::applyTransforms(TreePtr Node, PhaseRunContext &Ctx) {
  CompilerContext &Comp = Ctx.Comp;
  bool Instrument = Comp.perf() != nullptr;
  unsigned NextPhase = 0;
  while (true) {
    TreeKind K = Node->kind();
    KindRange R = TransformRange[static_cast<unsigned>(K)];
    const uint16_t *List = TransformBuf.data() + R.Off;
    // Find the first interested phase at or after NextPhase. Slices are
    // short (a handful of phases per kind); linear scan over the
    // contiguous buffer beats binary search here.
    unsigned P = ~0u;
    for (unsigned I = 0; I < R.Len; ++I) {
      if (List[I] >= NextPhase) {
        P = List[I];
        break;
      }
    }
    if (P == ~0u)
      return Node;
    ++NumHooks;
    if (Instrument)
      instrumentHook(P, K, Comp, Node.get());
    TreePtr Next = Phases[P]->dispatchTransform(Node.get(), Ctx);
    assert(Next && "transform hooks must return a tree");
    NextPhase = P + 1;
    Node = std::move(Next);
    // If the kind is unchanged the loop continues in the same list (fast
    // path); otherwise the next iteration re-dispatches into the new
    // kind's list — exactly the paper's "second.transform(other)".
  }
}

/// Baseline strategy for the ablation benchmark: consult every phase's
/// mask at every node (no per-kind lists). With IdentitySkip disabled it
/// invokes every hook unconditionally, modelling fusion without the
/// paper's optimization 1.
TreePtr FusedBlock::applyTransformsNaive(TreePtr Node, PhaseRunContext &Ctx) {
  CompilerContext &Comp = Ctx.Comp;
  bool Skip = Comp.options().IdentitySkip;
  bool Instrument = Comp.perf() != nullptr;
  for (unsigned P = 0; P < Phases.size(); ++P) {
    TreeKind K = Node->kind();
    if (Skip && !Phases[P]->transformKinds().contains(K))
      continue;
    ++NumHooks;
    if (Instrument)
      instrumentHook(P, K, Comp, Node.get());
    TreePtr Next = Phases[P]->dispatchTransform(Node.get(), Ctx);
    assert(Next && "transform hooks must return a tree");
    Node = std::move(Next);
  }
  return Node;
}

//===----------------------------------------------------------------------===//
// Instrumentation (cache/perf simulation)
//===----------------------------------------------------------------------===//

namespace {
/// Synthetic code addresses for the icache model. Each phase's transform
/// code occupies its own region; the traversal driver has one too. The
/// base is far above any malloc'd heap address we will touch as data.
constexpr uint64_t CodeBase = 0x7e0000000000ull;
constexpr uint64_t DriverCode = CodeBase;
constexpr uint64_t PhaseCodeBytes = 3072; // ~3KB of code per phase
constexpr uint64_t DriverFetchBytes = 128;
constexpr uint64_t HookFetchBytes = 192;
} // namespace

void FusedBlock::instrumentVisit(const Tree *T, CompilerContext &Comp) {
  CacheSim *CS = Comp.cacheSim();
  PerfCounters *PC = Comp.perf();
  // The walker reads the node header and its child list.
  CS->load(reinterpret_cast<uint64_t>(T), 48);
  if (T->numKids())
    CS->load(reinterpret_cast<uint64_t>(T->kids().data()),
             8 * T->numKids());
  // Driver straight-line code.
  CS->fetch(DriverCode, DriverFetchBytes);
  PC->instructions(24 + 2 * T->numKids());
}

void FusedBlock::instrumentHook(unsigned PhaseIdx, TreeKind K,
                                CompilerContext &Comp, const Tree *Node) {
  CacheSim *CS = Comp.cacheSim();
  PerfCounters *PC = Comp.perf();
  // Each executed hook touches a kind-dependent slice of its phase's code,
  // re-reads the node and its type, and works on the phase's own (hot)
  // scratch state — the transformation work proper, which is identical
  // under both the fused and the unfused configuration.
  uint64_t Region = CodeBase + PhaseCodeBytes * (1 + PhaseIdx);
  uint64_t Offset = (static_cast<uint64_t>(K) * 7 % 16) * 192;
  CS->fetch(Region + Offset % PhaseCodeBytes, HookFetchBytes);
  CS->load(reinterpret_cast<uint64_t>(Node), 48);
  if (Node->type())
    CS->load(reinterpret_cast<uint64_t>(Node->type()), 24);
  uint64_t Scratch = Region + PhaseCodeBytes - 256;
  CS->load(Scratch, 64);
  CS->store(Scratch, 32);
  PC->instructions(55);
}
