//===----------------------------------------------------------------------===//
///
/// \file
/// CompilerContext bundles the long-lived compiler state (names, types,
/// symbols, the managed tree heap, diagnostics, statistics) plus the
/// options that select between the paper's two configurations: fused
/// miniphases vs. one-traversal-per-phase ("Megaphase" split), and the
/// legacy always-copy mode used by the scalac baseline of Figure 9.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_CORE_COMPILERCONTEXT_H
#define MPC_CORE_COMPILERCONTEXT_H

#include "ast/Symbols.h"
#include "ast/Trees.h"
#include "ast/Types.h"
#include "memsim/CacheSim.h"
#include "memsim/ManagedHeap.h"
#include "memsim/PerfCounters.h"
#include "support/CancelToken.h"
#include "support/Diagnostics.h"
#include "support/Statistics.h"
#include "support/NameTable.h"

#include <string>

namespace mpc {

/// How a fused block applies the per-node transforms.
enum class FusionStrategy {
  /// Loop over all phases at each node, consulting the transform mask
  /// (paper's optimization 1 only).
  Naive,
  /// Precomputed per-kind interest lists; on a kind change, re-dispatch
  /// into the new kind's list (paper's optimizations 1 + 2).
  IndexedByKind,
};

/// Which engine executes guest programs after compilation (driver,
/// fuzzer, differential tests): the definitional tree-walker or the
/// direct-threaded bytecode VM. The tree-walker stays the semantic
/// oracle; the VM must match it byte for byte.
enum class ExecEngine : uint8_t { TreeWalk, VM };

/// Tunable behaviour, mirroring the evaluation's configurations.
struct CompilerOptions {
  /// True: miniphases fuse into blocks (Table 2 grouping). False: every
  /// miniphase runs as its own whole-tree traversal (the paper's
  /// "Megaphase" comparison configuration).
  bool FuseMiniphases = true;
  /// Run the TreeChecker between groups (the paper's -Ycheck).
  bool CheckTrees = false;
  /// Disable the copier's node-reuse optimization (scalac-like baseline).
  bool AlwaysCopy = false;
  /// Disable the identity-transform skip (ablation).
  bool IdentitySkip = true;
  /// Generalize the identity skip from nodes to whole subtrees: a fused
  /// block returns a subtree untouched when its kind summary
  /// (Tree::kindsBelow) intersects none of the kinds the block's phases
  /// declared for transform or prepare hooks. Observationally identical —
  /// such a subtree executes zero hooks and the copier would reuse every
  /// node — but skips the traversal entirely. Automatically inactive
  /// under AlwaysCopy (the baseline must copy every node), when
  /// IdentitySkip is off (the ablation invokes all hooks), and when the
  /// cache/perf simulators are attached (so the memsim figures keep
  /// modelling the full walk).
  bool SubtreePruning = true;
  /// Treat the unit as a DAG (paper §9 future work): subtrees shared via
  /// hash-consing or tree reuse are transformed once and the result is
  /// reused at every other occurrence, preserving sharing in the output.
  /// Automatically ignored for blocks containing phases with prepare
  /// hooks, whose transforms may depend on the path from the root.
  bool DagMemoize = false;
  /// Back tree-node storage with the ManagedHeap's size-class slab
  /// allocator instead of one system allocation per node. Affects only
  /// where real bytes live: the simulated allocation clock (Figures 5/6)
  /// is byte-identical with the slab on or off. Off exists for the
  /// allocator-invariance tests and for baseline comparisons of the
  /// "heap.realAllocs" counter. Takes effect through the
  /// CompilerContext(Opts) constructor or adoptOptions() right after
  /// reset() — the backend cannot change while the heap holds
  /// allocations.
  bool SlabHeap = true;
  /// Run the bytecode verifier over generateCode's output (jump targets,
  /// stack balance, handler well-formedness) and record failures on
  /// Program::VerifyFailures. A debug option, off by default; the VM
  /// test suites verify unconditionally.
  bool VerifyBytecode = false;
  /// Guest-execution engine for post-compile runs routed through
  /// backend/Execution.h (executeProgram honors this unless the caller
  /// overrides it explicitly).
  ExecEngine Engine = ExecEngine::TreeWalk;
  FusionStrategy Strategy = FusionStrategy::IndexedByKind;
};

/// One source file being compiled (paper §2: "Every compilation unit is a
/// single source-file which may define multiple top-level classes").
struct CompilationUnit {
  std::string FileName;
  uint32_t FileId = 0;
  std::string Source;
  TreePtr Root;
};

/// The shared compiler state. One per compiler run.
class CompilerContext {
public:
  CompilerContext()
      : Trees(Heap), Syms(Names, Types) {}
  explicit CompilerContext(const CompilerOptions &Opts)
      : Trees(Heap), Syms(Names, Types), Opts(Opts) {
    // No tree has been allocated yet, so the backend toggle is legal.
    Heap.setSlabEnabled(Opts.SlabHeap);
  }
  CompilerContext(const CompilerContext &) = delete;
  CompilerContext &operator=(const CompilerContext &) = delete;

  NameTable &names() { return Names; }
  TypeContext &types() { return Types; }
  ManagedHeap &heap() { return Heap; }
  TreeContext &trees() { return Trees; }
  SymbolTable &syms() { return Syms; }
  DiagnosticEngine &diags() { return Diags; }
  StatsRegistry &stats() { return Stats; }
  CompilerOptions &options() { return Opts; }
  const CompilerOptions &options() const { return Opts; }

  /// Attaches the simulators (instrumented runs only). The tree context
  /// starts performing simulated stores on allocation, and the traversal
  /// driver issues loads/fetches.
  void attachSimulators(CacheSim *CS, PerfCounters *PC) {
    Cache = CS;
    Perf = PC;
    Trees.setCacheSim(CS);
  }
  CacheSim *cacheSim() const { return Cache; }
  PerfCounters *perf() const { return Perf; }

  /// Attaches a cancellation token for the current job (null detaches).
  /// The token is owned by the caller (the batch runner keeps it on its
  /// stack), so whoever sets it must clear it before the context
  /// escapes — reset() also clears it.
  void setCancelToken(const CancelToken *T) { Cancel = T; }
  const CancelToken *cancelToken() const { return Cancel; }

  /// Cooperative cancellation checkpoint: throws DeadlineExceeded when
  /// the attached token (if any) has expired. Stages call this between
  /// units and at phase boundaries — never mid-traversal — so the unwind
  /// only ever crosses RAII-held trees and the context stays recyclable.
  void checkpoint() const {
    if (Cancel)
      Cancel->checkpoint();
  }

  /// Warm-reuse reset (the compile service's ContextPool lifecycle):
  /// restores the context to the observable state of a freshly
  /// constructed one in O(live) — live symbols/types are dropped and the
  /// builtin world is rebuilt, while table capacities, arena slabs, and
  /// (via the shared PagePool) slab pages are retained for the next job.
  /// Precondition: no tree allocated from this context is still
  /// referenced (drop the CompileOutput first); asserted via the heap's
  /// live-byte accounting. Name ordinals, symbol ids, file ids, and the
  /// allocation clock all restart exactly as in a cold context, which is
  /// what makes warm and cold runs byte-identical.
  void reset() {
    assert(Heap.stats().LiveBytes == 0 &&
           "context recycled while trees are still referenced");
    Diags.reset();
    Stats.clear();
    Trees.resetCounters();
    Trees.setCacheSim(nullptr);
    Cache = nullptr;
    Perf = nullptr;
    Cancel = nullptr;
    Types.reset();
    Names.reset();
    Syms.reset(); // re-interns builtins; must follow Names/Types resets
    Heap.reset(); // releases every page; re-arms the slab toggle
    Heap.setSlabEnabled(Opts.SlabHeap);
  }

  /// Applies a new job's options to a recycled context. Legal only right
  /// after reset() (the slab toggle requires an empty heap).
  void adoptOptions(const CompilerOptions &NewOpts) {
    Opts = NewOpts;
    Heap.setSlabEnabled(Opts.SlabHeap);
  }

private:
  NameTable Names;
  TypeContext Types;
  ManagedHeap Heap;
  TreeContext Trees;
  SymbolTable Syms;
  DiagnosticEngine Diags;
  StatsRegistry Stats;
  CompilerOptions Opts;
  CacheSim *Cache = nullptr;
  PerfCounters *Perf = nullptr;
  const CancelToken *Cancel = nullptr;
};

} // namespace mpc

#endif // MPC_CORE_COMPILERCONTEXT_H
