//===----------------------------------------------------------------------===//
///
/// \file
/// Bottom-up type reconstruction for the TreeChecker (paper Listing 9: the
/// checker "removes all types from the tree and reconstructs them
/// bottom-up, and checks that the reconstructed types are the same").
///
/// The assigner re-derives the type of a node from its children and
/// symbols where that is unambiguous, and stays silent (returns null) when
/// the derivation would need context it does not have. A re-derived type
/// that fails to conform to the recorded type is a checker failure.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_FRONTEND_TYPEASSIGNER_H
#define MPC_FRONTEND_TYPEASSIGNER_H

#include "core/CompilerContext.h"
#include "core/TreeChecker.h"

namespace mpc {

/// Re-derives the type of \p T bottom-up, or returns null when it has no
/// opinion (e.g. generic member selections that would need substitution
/// context).
const Type *reassignType(const Tree *T, CompilerContext &Comp);

/// A TreeChecker retype callback built on reassignType that reports a
/// failure when the derived type does not conform to the recorded one.
TreeChecker::RetypeFn makeRetypeChecker();

} // namespace mpc

#endif // MPC_FRONTEND_TYPEASSIGNER_H
