//===----------------------------------------------------------------------===//
///
/// \file
/// The parser's lightweight syntax representation. The core Tree IR is
/// always fully attributed (every node has a symbol/type), so the frontend
/// keeps its own untyped AST; the Namer/Typer lowers SynNode -> Tree.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_FRONTEND_SYNTAX_H
#define MPC_FRONTEND_SYNTAX_H

#include "ast/Constant.h"
#include "support/Diagnostics.h"
#include "support/StringInterner.h"

#include <memory>
#include <vector>

namespace mpc {

/// Syntactic types ("Int", "Box[T]", "(Int) => Int", "=> T", "T*", "A | B").
struct SynType {
  enum Kind : uint8_t { Named, Applied, Func, ByName, Repeated, Union, Inter };
  Kind K = Named;
  SourceLoc Loc;
  Name N;                       // Named / Applied head
  std::vector<SynType *> Args;  // Applied args / Func params / Union-Inter lr
  SynType *Res = nullptr;       // Func result / ByName / Repeated payload
};

/// Modifier and shape flags on syntax nodes.
namespace SynFlag {
enum : uint32_t {
  None = 0,
  Var = 1u << 0,
  Lazy = 1u << 1,
  Case = 1u << 2,
  Trait = 1u << 3,
  Object = 1u << 4,
  Override = 1u << 5,
  Private = 1u << 6,
  Final = 1u << 7,
  Abstract = 1u << 8,
};
} // namespace SynFlag

/// Kinds of syntax nodes.
enum class SynKind : uint8_t {
  // Expressions.
  Lit,      // literal; payload Lit
  Ref,      // identifier; payload N
  Select,   // Kids[0].N
  SuperSel, // super.N
  ThisRef,
  Apply,     // Kids[0] = fun, Kids[1..] = args
  TypeApply, // Kids[0] = fun, TyArgs
  New,       // Ty = class type, Kids = args
  If,        // Kids[0..2], else nullable
  While,     // Kids[0..1]
  Try,       // Kids[0]=body, Kids[1]=finalizer (nullable), Kids[2..]=cases
  Throw,     // Kids[0]
  Return,    // Kids[0] nullable
  Match,     // Kids[0]=sel, Kids[1..]=cases
  Lambda,    // Kids[0..n-2]=Param, last=body
  Block,     // Kids = stats
  Assign,    // Kids[0]=lhs, Kids[1]=rhs
  // Patterns.
  PatWild,  // optional Ty (typed wildcard)
  PatBind,  // N, Kids[0] = inner pattern (nullable for bare binder)
  PatTyped, // Kids[0] = inner (nullable), Ty
  PatCtor,  // N = case class, Kids = sub-patterns
  PatAlt,   // Kids = alternatives
  CaseClause, // Kids[0]=pat, Kids[1]=guard (nullable), Kids[2]=body
  // Definitions.
  ValDef,   // N, Ty (nullable), Kids[0]=rhs (nullable)
  DefDef,   // N, Ty=result (nullable), Kids=params+rhs(last, nullable)
  Param,    // N, Ty
  ClassDef, // N; params = first NumParams kids; members after
};

/// One syntax node; a deliberately "wide" struct so the parser stays simple.
struct SynNode {
  SynKind K;
  SourceLoc Loc;
  Name N;
  Constant Lit;
  SynType *Ty = nullptr;
  std::vector<SynNode *> Kids;
  std::vector<uint32_t> ParamListSizes;  // DefDef
  std::vector<SynType *> TyArgs;         // TypeApply
  std::vector<Name> TypeParamNames;      // ClassDef / DefDef
  std::vector<SynType *> Parents;        // ClassDef
  uint32_t NumParams = 0;                // ClassDef constructor params
  uint32_t Flags = 0;

  bool is(uint32_t F) const { return (Flags & F) != 0; }
};

/// Owns all syntax nodes/types of one parse.
class SynArena {
public:
  SynNode *node(SynKind K, SourceLoc Loc) {
    Nodes.push_back(std::make_unique<SynNode>());
    SynNode *N = Nodes.back().get();
    N->K = K;
    N->Loc = Loc;
    return N;
  }
  SynType *type(SynType::Kind K, SourceLoc Loc) {
    Types.push_back(std::make_unique<SynType>());
    SynType *T = Types.back().get();
    T->K = K;
    T->Loc = Loc;
    return T;
  }
  size_t nodeCount() const { return Nodes.size(); }

private:
  std::vector<std::unique_ptr<SynNode>> Nodes;
  std::vector<std::unique_ptr<SynType>> Types;
};

/// Result of parsing one source file.
struct SynUnit {
  Name PackageName;              // may be empty
  std::vector<SynNode *> TopLevel; // ClassDefs
};

} // namespace mpc

#endif // MPC_FRONTEND_SYNTAX_H
