//===----------------------------------------------------------------------===//
///
/// \file
/// The parser's lightweight syntax representation. The core Tree IR is
/// always fully attributed (every node has a symbol/type), so the frontend
/// keeps its own untyped AST; the Namer/Typer lowers SynNode -> Tree.
///
/// All syntax nodes, syntactic types, and their child/argument lists live
/// in one per-compilation-unit bump arena (SynArena): the parser performs
/// no per-node heap allocation, nodes are trivially destructible, and the
/// whole parse is released wholesale when the unit's arena dies. Child
/// lists are immutable exact-size spans (SynList) copied into the arena
/// once the parser has collected them in a scratch vector.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_FRONTEND_SYNTAX_H
#define MPC_FRONTEND_SYNTAX_H

#include "ast/Constant.h"
#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/NameTable.h"

#include <initializer_list>
#include <type_traits>
#include <vector>

namespace mpc {

/// An immutable exact-size span of trivially-copyable elements whose
/// storage lives in the owning SynArena.
template <typename T> class SynList {
public:
  SynList() = default;
  SynList(T *Data, uint32_t Num) : Data(Data), Num(Num) {}

  size_t size() const { return Num; }
  bool empty() const { return Num == 0; }
  T &operator[](size_t I) { return Data[I]; }
  const T &operator[](size_t I) const { return Data[I]; }
  T *begin() { return Data; }
  T *end() { return Data + Num; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Num; }
  T &back() { return Data[Num - 1]; }
  const T &back() const { return Data[Num - 1]; }

private:
  T *Data = nullptr;
  uint32_t Num = 0;
};

/// Syntactic types ("Int", "Box[T]", "(Int) => Int", "=> T", "T*", "A | B").
struct SynType {
  enum Kind : uint8_t { Named, Applied, Func, ByName, Repeated, Union, Inter };
  Kind K = Named;
  SourceLoc Loc;
  Name N;                       // Named / Applied head
  SynList<SynType *> Args;      // Applied args / Func params / Union-Inter lr
  SynType *Res = nullptr;       // Func result / ByName / Repeated payload
};

/// Modifier and shape flags on syntax nodes.
namespace SynFlag {
enum : uint32_t {
  None = 0,
  Var = 1u << 0,
  Lazy = 1u << 1,
  Case = 1u << 2,
  Trait = 1u << 3,
  Object = 1u << 4,
  Override = 1u << 5,
  Private = 1u << 6,
  Final = 1u << 7,
  Abstract = 1u << 8,
};
} // namespace SynFlag

/// Kinds of syntax nodes.
enum class SynKind : uint8_t {
  // Expressions.
  Lit,      // literal; payload Lit
  Ref,      // identifier; payload N
  Select,   // Kids[0].N
  SuperSel, // super.N
  ThisRef,
  Apply,     // Kids[0] = fun, Kids[1..] = args
  TypeApply, // Kids[0] = fun, TyArgs
  New,       // Ty = class type, Kids = args
  If,        // Kids[0..2], else nullable
  While,     // Kids[0..1]
  Try,       // Kids[0]=body, Kids[1]=finalizer (nullable), Kids[2..]=cases
  Throw,     // Kids[0]
  Return,    // Kids[0] nullable
  Match,     // Kids[0]=sel, Kids[1..]=cases
  Lambda,    // Kids[0..n-2]=Param, last=body
  Block,     // Kids = stats
  Assign,    // Kids[0]=lhs, Kids[1]=rhs
  // Patterns.
  PatWild,  // optional Ty (typed wildcard)
  PatBind,  // N, Kids[0] = inner pattern (nullable for bare binder)
  PatTyped, // Kids[0] = inner (nullable), Ty
  PatCtor,  // N = case class, Kids = sub-patterns
  PatAlt,   // Kids = alternatives
  CaseClause, // Kids[0]=pat, Kids[1]=guard (nullable), Kids[2]=body
  // Definitions.
  ValDef,   // N, Ty (nullable), Kids[0]=rhs (nullable)
  DefDef,   // N, Ty=result (nullable), Kids=params+rhs(last, nullable)
  Param,    // N, Ty
  ClassDef, // N; params = first NumParams kids; members after
  // Recovery.
  Error, // panic-mode recovery placeholder; region already diagnosed
};

/// One syntax node; a deliberately "wide" struct so the parser stays simple.
struct SynNode {
  SynKind K;
  SourceLoc Loc;
  Name N;
  Constant Lit;
  SynType *Ty = nullptr;
  SynList<SynNode *> Kids;
  SynList<uint32_t> ParamListSizes;  // DefDef
  SynList<SynType *> TyArgs;         // TypeApply
  SynList<Name> TypeParamNames;      // ClassDef / DefDef
  SynList<SynType *> Parents;        // ClassDef
  uint32_t NumParams = 0;            // ClassDef constructor params
  uint32_t Flags = 0;

  bool is(uint32_t F) const { return (Flags & F) != 0; }
};

static_assert(std::is_trivially_destructible_v<SynNode>,
              "syntax nodes must not need destructors — the arena drops "
              "them wholesale");
static_assert(std::is_trivially_destructible_v<SynType>,
              "syntax types must not need destructors");

/// Owns all syntax nodes/types of one parse (one bump arena per unit).
class SynArena {
public:
  SynNode *node(SynKind K, SourceLoc Loc) {
    SynNode *N = Mem.make<SynNode>();
    N->K = K;
    N->Loc = Loc;
    ++NumNodes;
    return N;
  }
  SynType *type(SynType::Kind K, SourceLoc Loc) {
    SynType *T = Mem.make<SynType>();
    T->K = K;
    T->Loc = Loc;
    ++NumTypes;
    return T;
  }

  /// Copies a scratch vector into an arena-owned exact-size span.
  template <typename T> SynList<T> list(const std::vector<T> &V) {
    return SynList<T>(Mem.copyArray(V.data(), V.size()),
                      static_cast<uint32_t>(V.size()));
  }
  template <typename T> SynList<T> list(std::initializer_list<T> V) {
    return SynList<T>(Mem.copyArray(V.begin(), V.size()),
                      static_cast<uint32_t>(V.size()));
  }

  size_t nodeCount() const { return NumNodes; }
  size_t typeCount() const { return NumTypes; }
  uint64_t bytesUsed() const { return Mem.bytesUsed(); }

private:
  Arena Mem;
  size_t NumNodes = 0;
  size_t NumTypes = 0;
};

/// Result of parsing one source file.
struct SynUnit {
  Name PackageName;              // may be empty
  std::vector<SynNode *> TopLevel; // ClassDefs (plus Error recovery nodes)
};

} // namespace mpc

#endif // MPC_FRONTEND_SYNTAX_H
