#include "frontend/TypeAssigner.h"

using namespace mpc;

const Type *mpc::reassignType(const Tree *T, CompilerContext &Comp) {
  TypeContext &Types = Comp.types();
  switch (T->kind()) {
  case TreeKind::Literal: {
    const Constant &C = cast<Literal>(T)->value();
    switch (C.kind()) {
    case Constant::Unit:
      return Types.unitType();
    case Constant::Bool:
      return Types.booleanType();
    case Constant::Int:
      return Types.intType();
    case Constant::Double:
      return Types.doubleType();
    case Constant::Str:
      return Comp.syms().stringType();
    case Constant::Null:
      // Null literals get retyped freely (error trees use Nothing).
      return nullptr;
    case Constant::Clazz:
      return Comp.syms().objectType();
    }
    return nullptr;
  }
  case TreeKind::If: {
    const auto *I = cast<If>(T);
    if (!I->thenp()->type() || !I->elsep()->type())
      return nullptr;
    return Types.lub(I->thenp()->type(), I->elsep()->type());
  }
  case TreeKind::Block:
    return cast<Block>(T)->expr() ? cast<Block>(T)->expr()->type() : nullptr;
  case TreeKind::WhileDo:
  case TreeKind::Assign:
    return Types.unitType();
  case TreeKind::Throw:
    return Types.nothingType();
  case TreeKind::Return:
    return Types.nothingType();
  case TreeKind::Apply: {
    const Tree *Fun = cast<Apply>(T)->fun();
    if (const auto *MT = dyn_cast_or_null<MethodType>(Fun->type()))
      return MT->result();
    return nullptr;
  }
  case TreeKind::New:
    return cast<New>(T)->classTy();
  case TreeKind::SeqLiteral:
    return Types.arrayType(cast<SeqLiteral>(T)->elemType());
  case TreeKind::Closure: {
    const auto *C = cast<Closure>(T);
    // After erasure the closure's recorded type is a FunctionN class; a
    // re-derived structural function type would be incomparable.
    if (T->type() && !isa<FunctionType>(T->type()))
      return nullptr;
    std::vector<const Type *> Params;
    for (unsigned I = 0; I < C->numParams(); ++I) {
      const auto *P = dyn_cast<ValDef>(C->param(I));
      if (!P || !P->sym()->info())
        return nullptr;
      Params.push_back(P->sym()->info());
    }
    if (!C->body()->type())
      return nullptr;
    return Types.functionType(std::move(Params), C->body()->type());
  }
  case TreeKind::Match: {
    const auto *M = cast<Match>(T);
    const Type *Ty = nullptr;
    for (unsigned I = 0; I < M->numCases(); ++I) {
      const auto *C = dyn_cast<CaseDef>(M->caseAt(I));
      if (!C || !C->body()->type())
        return nullptr;
      Ty = Ty ? Types.lub(Ty, C->body()->type()) : C->body()->type();
    }
    return Ty;
  }
  case TreeKind::Ident: {
    Symbol *S = cast<Ident>(T)->sym();
    if (!S || !S->info())
      return nullptr;
    const Type *Info = S->info();
    // By-name params and auto-applied nullary methods read as the result.
    if (T->type() == Info)
      return Info;
    if (const auto *ET = dyn_cast<ExprType>(Info))
      return ET->result();
    if (const auto *RT = dyn_cast<RepeatedType>(Info))
      return Comp.types().arrayType(RT->elem());
    if (const auto *MT = dyn_cast<MethodType>(Info)) {
      if (MT->params().empty())
        return MT->result();
    }
    return Info;
  }
  default:
    // Selections, type applications, patterns: substitution-dependent;
    // no opinion.
    return nullptr;
  }
}

TreeChecker::RetypeFn mpc::makeRetypeChecker() {
  return [](const Tree *T, CompilerContext &Comp) -> const Type * {
    return reassignType(T, Comp);
  };
}
