//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler front-end: lex + parse + name/type every source file,
/// producing the typed compilation units the transformation pipeline
/// starts from (paper §2: "The front-end parses and type-checks source
/// code, and generates trees annotated with type information").
///
//===----------------------------------------------------------------------===//

#ifndef MPC_FRONTEND_FRONTEND_H
#define MPC_FRONTEND_FRONTEND_H

#include "core/CompilerContext.h"
#include "frontend/Typer.h"

#include <string>
#include <vector>

namespace mpc {

/// One named source text.
struct SourceInput {
  std::string FileName;
  std::string Text;
};

/// Runs the whole front-end over a set of sources. Diagnostics accumulate
/// in the context; returns the typed units (possibly partial on errors).
std::vector<CompilationUnit> runFrontEnd(CompilerContext &Comp,
                                         std::vector<SourceInput> Sources);

/// Convenience for tests: parse+type a single source; asserts no errors
/// when \p RequireClean.
CompilationUnit compileSingleSource(CompilerContext &Comp,
                                    const std::string &Text,
                                    bool RequireClean = true);

} // namespace mpc

#endif // MPC_FRONTEND_FRONTEND_H
