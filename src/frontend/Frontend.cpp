#include "frontend/Frontend.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "support/FaultInjector.h"
#include "support/OStream.h"

#include <cassert>
#include <stdexcept>

using namespace mpc;

std::vector<CompilationUnit>
mpc::runFrontEnd(CompilerContext &Comp, std::vector<SourceInput> Sources) {
  size_t Names0 = Comp.names().size();
  size_t Emitted0 = Comp.diags().emittedCount();
  uint64_t Suppressed0 = Comp.diags().suppressedCount();
  uint64_t ArenaBytes = 0;
  std::vector<ParsedUnit> Parsed;
  std::vector<Token> TokScratch; // one collection buffer for all units
  for (SourceInput &Src : Sources) {
    // Frontend stage loop: cancellation checkpoint + fault point between
    // sources. At this boundary only RAII state (parsed units, arenas) is
    // live, so an unwind from either leaves the context recyclable.
    Comp.checkpoint();
    faultStagePoint(FaultSite::FrontendEntry);
    ParsedUnit PU;
    PU.FileName = Src.FileName;
    PU.FileId = Comp.diags().addFile(Src.FileName);
    PU.Source = std::move(Src.Text);
    PU.Arena = std::make_shared<SynArena>();

    Lexer Lex(PU.Source, PU.FileId, Comp.names(), Comp.diags());
    Parser P(Lex.lexAll(*PU.Arena, TokScratch), *PU.Arena, Comp.names(),
             Comp.diags());
    PU.Unit = P.parseUnit();
    ArenaBytes += PU.Arena->bytesUsed();
    Parsed.push_back(std::move(PU));
  }
  // Last pre-typer boundary: typing is the longest uninterruptible
  // stretch of the frontend, so check once more before entering it.
  Comp.checkpoint();
  Typer T(Comp);
  std::vector<CompilationUnit> Units = T.run(Parsed);
  // frontend.scopeProbes is recorded by the typer itself.
  Comp.stats().add("frontend.namesInterned", Comp.names().size() - Names0);
  Comp.stats().add("frontend.arenaBytes", ArenaBytes);
  Comp.stats().add("frontend.diagsEmitted",
                   Comp.diags().emittedCount() - Emitted0);
  Comp.stats().add("frontend.diagsSuppressed",
                   Comp.diags().suppressedCount() - Suppressed0);
  return Units;
}

CompilationUnit mpc::compileSingleSource(CompilerContext &Comp,
                                         const std::string &Text,
                                         bool RequireClean) {
  std::vector<SourceInput> Sources;
  Sources.push_back({"<test>", Text});
  std::vector<CompilationUnit> Units = runFrontEnd(Comp, std::move(Sources));
  if (RequireClean && Comp.diags().hasErrors()) {
    // Throw (rather than assert) so release builds and long-running fuzz
    // campaigns fail loudly with the diagnostics attached instead of
    // sailing past a compiled-out assert.
    std::string Msg = "frontend reported errors on test source:";
    for (const Diagnostic &D : Comp.diags().all()) {
      Msg += "\n  ";
      Msg += Comp.diags().fileName(D.Loc.FileId);
      Msg += ":" + std::to_string(D.Loc.Line) + ":" +
             std::to_string(D.Loc.Col) + ": " + D.Message;
    }
    throw std::runtime_error(Msg);
  }
  assert(Units.size() == 1);
  return std::move(Units[0]);
}
