#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace mpc;

const char *mpc::tokenKindName(Tok K) {
  switch (K) {
  case Tok::EndOfFile:
    return "end of file";
  case Tok::Error:
    return "invalid token";
  case Tok::IntLit:
    return "integer literal";
  case Tok::DoubleLit:
    return "double literal";
  case Tok::StringLit:
    return "string literal";
  case Tok::Id:
    return "identifier";
  case Tok::OpId:
    return "operator";
  case Tok::KwClass:
    return "'class'";
  case Tok::KwTrait:
    return "'trait'";
  case Tok::KwObject:
    return "'object'";
  case Tok::KwCase:
    return "'case'";
  case Tok::KwExtends:
    return "'extends'";
  case Tok::KwWith:
    return "'with'";
  case Tok::KwDef:
    return "'def'";
  case Tok::KwVal:
    return "'val'";
  case Tok::KwVar:
    return "'var'";
  case Tok::KwLazy:
    return "'lazy'";
  case Tok::KwIf:
    return "'if'";
  case Tok::KwElse:
    return "'else'";
  case Tok::KwWhile:
    return "'while'";
  case Tok::KwMatch:
    return "'match'";
  case Tok::KwTry:
    return "'try'";
  case Tok::KwCatch:
    return "'catch'";
  case Tok::KwFinally:
    return "'finally'";
  case Tok::KwThrow:
    return "'throw'";
  case Tok::KwReturn:
    return "'return'";
  case Tok::KwNew:
    return "'new'";
  case Tok::KwThis:
    return "'this'";
  case Tok::KwSuper:
    return "'super'";
  case Tok::KwTrue:
    return "'true'";
  case Tok::KwFalse:
    return "'false'";
  case Tok::KwNull:
    return "'null'";
  case Tok::KwOverride:
    return "'override'";
  case Tok::KwPrivate:
    return "'private'";
  case Tok::KwFinal:
    return "'final'";
  case Tok::KwAbstract:
    return "'abstract'";
  case Tok::KwPackage:
    return "'package'";
  case Tok::LParen:
    return "'('";
  case Tok::RParen:
    return "')'";
  case Tok::LBrace:
    return "'{'";
  case Tok::RBrace:
    return "'}'";
  case Tok::LBracket:
    return "'['";
  case Tok::RBracket:
    return "']'";
  case Tok::Comma:
    return "','";
  case Tok::Semi:
    return "';'";
  case Tok::Dot:
    return "'.'";
  case Tok::Colon:
    return "':'";
  case Tok::Eq:
    return "'='";
  case Tok::Arrow:
    return "'=>'";
  case Tok::At:
    return "'@'";
  case Tok::Underscore:
    return "'_'";
  case Tok::Star:
    return "'*'";
  case Tok::Pipe:
    return "'|'";
  case Tok::Amp:
    return "'&'";
  }
  return "?";
}

Lexer::Lexer(std::string_view Source, uint32_t FileId, NameTable &Names,
             DiagnosticEngine &Diags)
    : Src(Source), FileId(FileId), Names(Names), Diags(Diags) {}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipSpaceAndComments(bool &SawNewline) {
  while (!atEnd()) {
    char C = peek();
    if (C == '\n') {
      SawNewline = true;
      advance();
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (!atEnd()) {
        advance();
        advance();
      }
      continue;
    }
    break;
  }
}

bool Lexer::canEndStatement(Tok K) {
  // A trailing operator continues the expression on the next line
  // (Scala's rule), so OpId/Star are deliberately absent here.
  switch (K) {
  case Tok::Id:
  case Tok::IntLit:
  case Tok::DoubleLit:
  case Tok::StringLit:
  case Tok::RParen:
  case Tok::RBrace:
  case Tok::RBracket:
  case Tok::KwTrue:
  case Tok::KwFalse:
  case Tok::KwNull:
  case Tok::KwThis:
  case Tok::KwReturn:
  case Tok::Underscore:
    return true;
  default:
    return false;
  }
}

bool Lexer::canStartStatement(Tok K) {
  switch (K) {
  case Tok::RParen:
  case Tok::RBrace:
  case Tok::RBracket:
  case Tok::Comma:
  case Tok::Semi:
  case Tok::Dot:
  case Tok::Colon:
  case Tok::Eq:
  case Tok::Arrow:
  case Tok::KwElse:
  case Tok::KwCatch:
  case Tok::KwFinally:
  case Tok::KwExtends:
  case Tok::KwWith:
  case Tok::KwMatch:
  case Tok::Pipe:
  case Tok::Amp:
  case Tok::Star:
  case Tok::EndOfFile:
    return false;
  default:
    return true;
  }
}

SynList<Token> Lexer::lexAll(SynArena &Arena, std::vector<Token> &Scratch) {
  std::vector<Token> &Tokens = Scratch;
  Tokens.clear();
  Tok Prev = Tok::Semi;
  while (true) {
    bool SawNewline = false;
    skipSpaceAndComments(SawNewline);
    if (atEnd()) {
      Token T;
      T.Kind = Tok::EndOfFile;
      T.Loc = here();
      Tokens.push_back(T);
      break;
    }
    Token T = lexToken();
    // Semicolon inference.
    if (SawNewline && GroupDepth == 0 && canEndStatement(Prev) &&
        canStartStatement(T.Kind)) {
      Token S;
      S.Kind = Tok::Semi;
      S.Loc = T.Loc;
      Tokens.push_back(S);
    }
    if (T.Kind == Tok::LParen || T.Kind == Tok::LBracket)
      ++GroupDepth;
    if ((T.Kind == Tok::RParen || T.Kind == Tok::RBracket) && GroupDepth > 0)
      --GroupDepth;
    Tokens.push_back(T);
    Prev = T.Kind;
  }
  // One exact-size arena span: the token stream lives and dies with the
  // unit's syntax, and the caller's scratch capacity serves the next unit.
  static_assert(std::is_trivially_copyable_v<Token>,
                "tokens are copied into the arena bytewise");
  return Arena.list(Tokens);
}

Token Lexer::make(Tok K) {
  Token T;
  T.Kind = K;
  T.Loc = here();
  return T;
}

Token Lexer::lexToken() {
  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (C == '"')
    return lexString();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$')
    return lexIdentifier();

  Token T = make(Tok::Error);
  switch (C) {
  case '(':
    advance();
    T.Kind = Tok::LParen;
    return T;
  case ')':
    advance();
    T.Kind = Tok::RParen;
    return T;
  case '{':
    advance();
    T.Kind = Tok::LBrace;
    return T;
  case '}':
    advance();
    T.Kind = Tok::RBrace;
    return T;
  case '[':
    advance();
    T.Kind = Tok::LBracket;
    return T;
  case ']':
    advance();
    T.Kind = Tok::RBracket;
    return T;
  case ',':
    advance();
    T.Kind = Tok::Comma;
    return T;
  case ';':
    advance();
    T.Kind = Tok::Semi;
    return T;
  case '.':
    advance();
    T.Kind = Tok::Dot;
    return T;
  case '@':
    advance();
    T.Kind = Tok::At;
    return T;
  default:
    return lexOperator();
  }
}

/// NUL-terminates \p Digits for strtod/strtoll: into \p Buf when it fits,
/// else into the heap \p Spill (pathological digit runs only).
static const char *terminated(std::string_view Digits, char (&Buf)[64],
                              std::string &Spill) {
  if (Digits.size() < sizeof(Buf)) {
    std::memcpy(Buf, Digits.data(), Digits.size());
    Buf[Digits.size()] = '\0';
    return Buf;
  }
  Spill.assign(Digits);
  return Spill.c_str();
}

Token Lexer::lexNumber() {
  Token T = make(Tok::IntLit);
  size_t Start = Pos;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  bool IsDouble =
      peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)));
  if (IsDouble) {
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  std::string_view Digits = Src.substr(Start, Pos - Start);
  char Buf[64];
  std::string Spill;
  const char *CStr = terminated(Digits, Buf, Spill);
  if (IsDouble) {
    T.Kind = Tok::DoubleLit;
    T.DoubleValue = std::strtod(CStr, nullptr);
  } else {
    T.IntValue = std::strtoll(CStr, nullptr, 10);
  }
  return T;
}

Token Lexer::lexString() {
  Token T = make(Tok::StringLit);
  advance(); // opening quote
  // Fast path: no escapes — the value is a slice of the source buffer and
  // interns without any intermediate copy.
  size_t Start = Pos;
  bool HasEscape = false;
  while (!atEnd() && peek() != '"') {
    if (peek() == '\\') {
      HasEscape = true;
      break;
    }
    advance();
  }
  if (!HasEscape) {
    if (atEnd()) {
      Diags.error(T.Loc, "unterminated string literal");
      T.Kind = Tok::Error;
      return T;
    }
    T.Text = Names.intern(Src.substr(Start, Pos - Start));
    advance(); // closing quote
    return T;
  }
  // Slow path: unescape into the reused scratch buffer.
  StrBuf.assign(Src.substr(Start, Pos - Start));
  while (!atEnd() && peek() != '"') {
    char C = advance();
    if (C == '\\' && !atEnd()) {
      char E = advance();
      switch (E) {
      case 'n':
        StrBuf += '\n';
        break;
      case 't':
        StrBuf += '\t';
        break;
      case '\\':
        StrBuf += '\\';
        break;
      case '"':
        StrBuf += '"';
        break;
      default:
        StrBuf += E;
        break;
      }
      continue;
    }
    StrBuf += C;
  }
  if (atEnd()) {
    Diags.error(T.Loc, "unterminated string literal");
    T.Kind = Tok::Error;
    return T;
  }
  advance(); // closing quote
  T.Text = Names.intern(StrBuf);
  return T;
}

/// Keyword lookup without interning or allocation: dispatch on the first
/// character, then a handful of length+memcmp compares. Returns Tok::Id
/// for non-keywords.
static Tok keywordKind(std::string_view W) {
  switch (W[0]) {
  case 'a':
    if (W == "abstract")
      return Tok::KwAbstract;
    break;
  case 'c':
    if (W == "class")
      return Tok::KwClass;
    if (W == "case")
      return Tok::KwCase;
    if (W == "catch")
      return Tok::KwCatch;
    break;
  case 'd':
    if (W == "def")
      return Tok::KwDef;
    break;
  case 'e':
    if (W == "else")
      return Tok::KwElse;
    if (W == "extends")
      return Tok::KwExtends;
    break;
  case 'f':
    if (W == "false")
      return Tok::KwFalse;
    if (W == "final")
      return Tok::KwFinal;
    if (W == "finally")
      return Tok::KwFinally;
    break;
  case 'i':
    if (W == "if")
      return Tok::KwIf;
    break;
  case 'l':
    if (W == "lazy")
      return Tok::KwLazy;
    break;
  case 'm':
    if (W == "match")
      return Tok::KwMatch;
    break;
  case 'n':
    if (W == "new")
      return Tok::KwNew;
    if (W == "null")
      return Tok::KwNull;
    break;
  case 'o':
    if (W == "object")
      return Tok::KwObject;
    if (W == "override")
      return Tok::KwOverride;
    break;
  case 'p':
    if (W == "private")
      return Tok::KwPrivate;
    if (W == "package")
      return Tok::KwPackage;
    break;
  case 'r':
    if (W == "return")
      return Tok::KwReturn;
    break;
  case 's':
    if (W == "super")
      return Tok::KwSuper;
    break;
  case 't':
    if (W == "this")
      return Tok::KwThis;
    if (W == "true")
      return Tok::KwTrue;
    if (W == "trait")
      return Tok::KwTrait;
    if (W == "try")
      return Tok::KwTry;
    if (W == "throw")
      return Tok::KwThrow;
    break;
  case 'v':
    if (W == "val")
      return Tok::KwVal;
    if (W == "var")
      return Tok::KwVar;
    break;
  case 'w':
    if (W == "while")
      return Tok::KwWhile;
    if (W == "with")
      return Tok::KwWith;
    break;
  default:
    break;
  }
  return Tok::Id;
}

Token Lexer::lexIdentifier() {
  Token T = make(Tok::Id);
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
         peek() == '$')
    advance();
  std::string_view Text = Src.substr(Start, Pos - Start);

  if (Text == "_") {
    T.Kind = Tok::Underscore;
    return T;
  }
  T.Kind = keywordKind(Text);
  if (T.Kind == Tok::Id)
    T.Text = Names.intern(Text);
  return T;
}

static bool isOpChar(char C) {
  switch (C) {
  case '+':
  case '-':
  case '*':
  case '/':
  case '%':
  case '<':
  case '>':
  case '=':
  case '!':
  case '&':
  case '|':
  case '^':
  case '~':
  case '?':
  case ':':
    return true;
  default:
    return false;
  }
}

Token Lexer::lexOperator() {
  Token T = make(Tok::OpId);
  size_t Start = Pos;
  while (!atEnd() && isOpChar(peek()))
    advance();
  std::string_view Text = Src.substr(Start, Pos - Start);
  if (Text.empty()) {
    Diags.error(T.Loc, std::string("unexpected character '") + peek() + "'");
    advance();
    T.Kind = Tok::Error;
    return T;
  }
  if (Text == "=") {
    T.Kind = Tok::Eq;
    return T;
  }
  if (Text == "=>") {
    T.Kind = Tok::Arrow;
    return T;
  }
  if (Text == ":") {
    T.Kind = Tok::Colon;
    return T;
  }
  if (Text == "*")
    T.Kind = Tok::Star;
  else if (Text == "|")
    T.Kind = Tok::Pipe;
  else if (Text == "&")
    T.Kind = Tok::Amp;
  T.Text = Names.intern(Text);
  return T;
}
