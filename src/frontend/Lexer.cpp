#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <string>

using namespace mpc;

const char *mpc::tokenKindName(Tok K) {
  switch (K) {
  case Tok::EndOfFile:
    return "end of file";
  case Tok::Error:
    return "invalid token";
  case Tok::IntLit:
    return "integer literal";
  case Tok::DoubleLit:
    return "double literal";
  case Tok::StringLit:
    return "string literal";
  case Tok::Id:
    return "identifier";
  case Tok::OpId:
    return "operator";
  case Tok::KwClass:
    return "'class'";
  case Tok::KwTrait:
    return "'trait'";
  case Tok::KwObject:
    return "'object'";
  case Tok::KwCase:
    return "'case'";
  case Tok::KwExtends:
    return "'extends'";
  case Tok::KwWith:
    return "'with'";
  case Tok::KwDef:
    return "'def'";
  case Tok::KwVal:
    return "'val'";
  case Tok::KwVar:
    return "'var'";
  case Tok::KwLazy:
    return "'lazy'";
  case Tok::KwIf:
    return "'if'";
  case Tok::KwElse:
    return "'else'";
  case Tok::KwWhile:
    return "'while'";
  case Tok::KwMatch:
    return "'match'";
  case Tok::KwTry:
    return "'try'";
  case Tok::KwCatch:
    return "'catch'";
  case Tok::KwFinally:
    return "'finally'";
  case Tok::KwThrow:
    return "'throw'";
  case Tok::KwReturn:
    return "'return'";
  case Tok::KwNew:
    return "'new'";
  case Tok::KwThis:
    return "'this'";
  case Tok::KwSuper:
    return "'super'";
  case Tok::KwTrue:
    return "'true'";
  case Tok::KwFalse:
    return "'false'";
  case Tok::KwNull:
    return "'null'";
  case Tok::KwOverride:
    return "'override'";
  case Tok::KwPrivate:
    return "'private'";
  case Tok::KwFinal:
    return "'final'";
  case Tok::KwAbstract:
    return "'abstract'";
  case Tok::KwPackage:
    return "'package'";
  case Tok::LParen:
    return "'('";
  case Tok::RParen:
    return "')'";
  case Tok::LBrace:
    return "'{'";
  case Tok::RBrace:
    return "'}'";
  case Tok::LBracket:
    return "'['";
  case Tok::RBracket:
    return "']'";
  case Tok::Comma:
    return "','";
  case Tok::Semi:
    return "';'";
  case Tok::Dot:
    return "'.'";
  case Tok::Colon:
    return "':'";
  case Tok::Eq:
    return "'='";
  case Tok::Arrow:
    return "'=>'";
  case Tok::At:
    return "'@'";
  case Tok::Underscore:
    return "'_'";
  case Tok::Star:
    return "'*'";
  case Tok::Pipe:
    return "'|'";
  case Tok::Amp:
    return "'&'";
  }
  return "?";
}

Lexer::Lexer(std::string_view Source, uint32_t FileId, StringInterner &Names,
             DiagnosticEngine &Diags)
    : Src(Source), FileId(FileId), Names(Names), Diags(Diags) {}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipSpaceAndComments(bool &SawNewline) {
  while (!atEnd()) {
    char C = peek();
    if (C == '\n') {
      SawNewline = true;
      advance();
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (!atEnd()) {
        advance();
        advance();
      }
      continue;
    }
    break;
  }
}

bool Lexer::canEndStatement(Tok K) {
  // A trailing operator continues the expression on the next line
  // (Scala's rule), so OpId/Star are deliberately absent here.
  switch (K) {
  case Tok::Id:
  case Tok::IntLit:
  case Tok::DoubleLit:
  case Tok::StringLit:
  case Tok::RParen:
  case Tok::RBrace:
  case Tok::RBracket:
  case Tok::KwTrue:
  case Tok::KwFalse:
  case Tok::KwNull:
  case Tok::KwThis:
  case Tok::KwReturn:
  case Tok::Underscore:
    return true;
  default:
    return false;
  }
}

bool Lexer::canStartStatement(Tok K) {
  switch (K) {
  case Tok::RParen:
  case Tok::RBrace:
  case Tok::RBracket:
  case Tok::Comma:
  case Tok::Semi:
  case Tok::Dot:
  case Tok::Colon:
  case Tok::Eq:
  case Tok::Arrow:
  case Tok::KwElse:
  case Tok::KwCatch:
  case Tok::KwFinally:
  case Tok::KwExtends:
  case Tok::KwWith:
  case Tok::KwMatch:
  case Tok::Pipe:
  case Tok::Amp:
  case Tok::Star:
  case Tok::EndOfFile:
    return false;
  default:
    return true;
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  Tok Prev = Tok::Semi;
  while (true) {
    bool SawNewline = false;
    skipSpaceAndComments(SawNewline);
    if (atEnd()) {
      Token T;
      T.Kind = Tok::EndOfFile;
      T.Loc = here();
      Tokens.push_back(T);
      break;
    }
    Token T = lexToken();
    // Semicolon inference.
    if (SawNewline && GroupDepth == 0 && canEndStatement(Prev) &&
        canStartStatement(T.Kind)) {
      Token S;
      S.Kind = Tok::Semi;
      S.Loc = T.Loc;
      Tokens.push_back(S);
    }
    if (T.Kind == Tok::LParen || T.Kind == Tok::LBracket)
      ++GroupDepth;
    if ((T.Kind == Tok::RParen || T.Kind == Tok::RBracket) && GroupDepth > 0)
      --GroupDepth;
    Tokens.push_back(T);
    Prev = T.Kind;
  }
  return Tokens;
}

Token Lexer::make(Tok K) {
  Token T;
  T.Kind = K;
  T.Loc = here();
  return T;
}

Token Lexer::lexToken() {
  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (C == '"')
    return lexString();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$')
    return lexIdentifier();

  Token T = make(Tok::Error);
  switch (C) {
  case '(':
    advance();
    T.Kind = Tok::LParen;
    return T;
  case ')':
    advance();
    T.Kind = Tok::RParen;
    return T;
  case '{':
    advance();
    T.Kind = Tok::LBrace;
    return T;
  case '}':
    advance();
    T.Kind = Tok::RBrace;
    return T;
  case '[':
    advance();
    T.Kind = Tok::LBracket;
    return T;
  case ']':
    advance();
    T.Kind = Tok::RBracket;
    return T;
  case ',':
    advance();
    T.Kind = Tok::Comma;
    return T;
  case ';':
    advance();
    T.Kind = Tok::Semi;
    return T;
  case '.':
    advance();
    T.Kind = Tok::Dot;
    return T;
  case '@':
    advance();
    T.Kind = Tok::At;
    return T;
  default:
    return lexOperator();
  }
}

Token Lexer::lexNumber() {
  Token T = make(Tok::IntLit);
  std::string Digits;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    Digits += advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    Digits += advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits += advance();
    T.Kind = Tok::DoubleLit;
    T.DoubleValue = std::strtod(Digits.c_str(), nullptr);
    return T;
  }
  T.IntValue = std::strtoll(Digits.c_str(), nullptr, 10);
  return T;
}

Token Lexer::lexString() {
  Token T = make(Tok::StringLit);
  advance(); // opening quote
  std::string Value;
  while (!atEnd() && peek() != '"') {
    char C = advance();
    if (C == '\\' && !atEnd()) {
      char E = advance();
      switch (E) {
      case 'n':
        Value += '\n';
        break;
      case 't':
        Value += '\t';
        break;
      case '\\':
        Value += '\\';
        break;
      case '"':
        Value += '"';
        break;
      default:
        Value += E;
        break;
      }
      continue;
    }
    Value += C;
  }
  if (atEnd()) {
    Diags.error(T.Loc, "unterminated string literal");
    T.Kind = Tok::Error;
    return T;
  }
  advance(); // closing quote
  T.Text = Names.intern(Value);
  return T;
}

Token Lexer::lexIdentifier() {
  Token T = make(Tok::Id);
  std::string Text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
         peek() == '$')
    Text += advance();

  if (Text == "_") {
    T.Kind = Tok::Underscore;
    return T;
  }
  struct KwEntry {
    const char *Text;
    Tok Kind;
  };
  static const KwEntry Keywords[] = {
      {"class", Tok::KwClass},       {"trait", Tok::KwTrait},
      {"object", Tok::KwObject},     {"case", Tok::KwCase},
      {"extends", Tok::KwExtends},   {"with", Tok::KwWith},
      {"def", Tok::KwDef},           {"val", Tok::KwVal},
      {"var", Tok::KwVar},           {"lazy", Tok::KwLazy},
      {"if", Tok::KwIf},             {"else", Tok::KwElse},
      {"while", Tok::KwWhile},       {"match", Tok::KwMatch},
      {"try", Tok::KwTry},           {"catch", Tok::KwCatch},
      {"finally", Tok::KwFinally},   {"throw", Tok::KwThrow},
      {"return", Tok::KwReturn},     {"new", Tok::KwNew},
      {"this", Tok::KwThis},         {"super", Tok::KwSuper},
      {"true", Tok::KwTrue},         {"false", Tok::KwFalse},
      {"null", Tok::KwNull},         {"override", Tok::KwOverride},
      {"private", Tok::KwPrivate},   {"final", Tok::KwFinal},
      {"abstract", Tok::KwAbstract}, {"package", Tok::KwPackage},
  };
  for (const KwEntry &E : Keywords) {
    if (Text == E.Text) {
      T.Kind = E.Kind;
      return T;
    }
  }
  T.Text = Names.intern(Text);
  return T;
}

Token Lexer::lexOperator() {
  Token T = make(Tok::OpId);
  static const char OpChars[] = "+-*/%<>=!&|^~?:";
  std::string Text;
  while (!atEnd() && std::string_view(OpChars).find(peek()) !=
                         std::string_view::npos)
    Text += advance();
  if (Text.empty()) {
    Diags.error(T.Loc, std::string("unexpected character '") + peek() + "'");
    advance();
    T.Kind = Tok::Error;
    return T;
  }
  if (Text == "=") {
    T.Kind = Tok::Eq;
    return T;
  }
  if (Text == "=>") {
    T.Kind = Tok::Arrow;
    return T;
  }
  if (Text == ":") {
    T.Kind = Tok::Colon;
    return T;
  }
  if (Text == "*") {
    T.Kind = Tok::Star;
    T.Text = Names.intern(Text);
    return T;
  }
  if (Text == "|") {
    T.Kind = Tok::Pipe;
    T.Text = Names.intern(Text);
    return T;
  }
  if (Text == "&") {
    T.Kind = Tok::Amp;
    T.Text = Names.intern(Text);
    return T;
  }
  T.Text = Names.intern(Text);
  return T;
}
