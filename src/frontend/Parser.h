//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniScala.
///
/// Supported surface (chosen to exercise every miniphase): classes with
/// constructor params and type params, traits, objects, case classes,
/// (lazy) vals, vars, defs with multiple parameter lists / by-name / vararg
/// params / type params, pattern matching (literal, binder, typed,
/// constructor, alternative, wildcard patterns, guards), if/while/blocks,
/// try/catch/finally, throw/return, lambdas with typed params, `new`,
/// union & intersection types, and the usual operators with Scala
/// precedence.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_FRONTEND_PARSER_H
#define MPC_FRONTEND_PARSER_H

#include "frontend/Lexer.h"
#include "frontend/Syntax.h"

namespace mpc {

/// Parses one compilation unit's tokens into a SynUnit. The token stream
/// is an arena-owned span (see Lexer::lexAll) that must outlive the
/// parser — in practice both live in the unit's SynArena.
class Parser {
public:
  Parser(SynList<Token> Tokens, SynArena &Arena, NameTable &Names,
         DiagnosticEngine &Diags);

  /// Parses the whole unit. On syntax errors, diagnostics are reported and
  /// a best-effort partial unit is returned.
  SynUnit parseUnit();

private:
  // Token stream helpers.
  const Token &cur() const { return Tokens[Pos]; }
  const Token &ahead(unsigned N = 1) const {
    size_t I = Pos + N;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(Tok K) const { return cur().Kind == K; }
  bool atIdText(const char *Text) const;
  Token take();
  bool accept(Tok K);
  bool expect(Tok K, const char *What);
  void skipSemis();
  void error(const char *Message);

  // Panic-mode recovery: after a failed definition parse, skip forward to
  // a synchronization token (start of the next definition, or a region
  // closer) and leave a SynKind::Error node in the tree for the skipped
  // range. MinPos guarantees progress: if the failed parse consumed
  // nothing, at least one token is dropped before resynchronizing.
  enum class SyncSet : uint8_t { TopLevel, Member, Statement };
  bool atTopLevelStart() const;
  bool atMemberStart() const;
  bool atSync(SyncSet S) const;
  SynNode *recoverTo(SyncSet S, SourceLoc From, size_t MinPos);
  /// Skips to a statement boundary when a statement parse left errors and
  /// stopped mid-stream (used by block and case-clause bodies).
  void syncStatement(uint64_t ErrorsBefore, bool StopAtCase);

  // Recursion-depth guard: arbitrary input can nest expressions, types,
  // patterns, and classes without bound; the guard turns what would be a
  // stack overflow into one diagnostic plus an Error node.
  struct DepthGuard;
  bool tooDeep();

  // Types.
  SynType *parseType();
  SynType *parseInfixType();
  SynType *parseSimpleType();
  SynType *parseParamType(); // with => and * markers

  // Definitions.
  SynNode *parseTopLevelDef();
  SynNode *parseClassLike(uint32_t Flags);
  void parseTemplateBody(std::vector<SynNode *> &Kids);
  SynNode *parseMemberDef(uint32_t Mods);
  SynNode *parseValDef(uint32_t Mods);
  SynNode *parseDefDef(uint32_t Mods);
  SynNode *parseParam();
  SynList<Name> parseTypeParams();

  // Expressions.
  SynNode *parseExpr();
  SynNode *parseIfExpr();
  SynNode *parseWhileExpr();
  SynNode *parseTryExpr();
  SynNode *parseInfixExpr(int MinPrec);
  SynNode *parsePrefixExpr();
  SynNode *parsePostfixExpr();
  SynNode *parsePrimaryExpr();
  SynNode *parseBlockExpr();
  SynNode *parseNewExpr();
  SynNode *tryParseLambda();
  std::vector<SynNode *> parseArgs();

  // Patterns.
  SynNode *parsePattern();
  SynNode *parseSimplePattern();
  std::vector<SynNode *> parseCaseClauses();

  static int opPrecedence(std::string_view Op);
  bool atOperator() const;
  Name operatorName() const;

  SynList<Token> Tokens;
  size_t Pos = 0;
  SynArena &Arena;
  NameTable &Names;
  DiagnosticEngine &Diags;
  static constexpr unsigned MaxNestingDepth = 200;
  unsigned Depth = 0;
  bool DepthReported = false;
};

} // namespace mpc

#endif // MPC_FRONTEND_PARSER_H
