//===----------------------------------------------------------------------===//
///
/// \file
/// Flat scope/symbol lookup for the typer.
///
/// The previous design allocated one std::unordered_map per lexical scope
/// and chained lookups through parent pointers — a malloc per scope and a
/// pointer chase per nesting level on the hottest frontend path. This
/// replaces the whole chain with two flat arrays:
///
///   - an open-addressed slot table keyed by name ordinal (uint32), each
///     slot pointing at the *top* binding of that name, and
///   - a binding stack: one entry per `enter`, carrying the shadowed
///     binding's index so popping a scope restores the previous state by
///     walking the entries above the scope's mark in reverse.
///
/// Slots are never deleted (a name whose bindings all popped keeps its
/// slot with an empty chain), so linear probing needs no tombstones and
/// the table only ever grows to the number of distinct names seen.
///
/// Scopes form a strict LIFO; a scope opened as a *barrier* (fresh root,
/// e.g. a class body — the old parentless `Scope`) hides every binding of
/// enclosing scopes: lookups compare the top binding's depth against the
/// current barrier depth. Since chain depths increase toward the top,
/// checking the top binding alone is sufficient.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_FRONTEND_SCOPESTACK_H
#define MPC_FRONTEND_SCOPESTACK_H

#include "support/NameTable.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace mpc {

class Symbol;

class ScopeStack {
public:
  /// RAII frame: opening is `enter scope`, destruction pops every binding
  /// made while the frame was the innermost scope.
  class Frame {
  public:
    explicit Frame(ScopeStack &S, bool Barrier = false)
        : S(S), Mark(static_cast<uint32_t>(S.Bindings.size())),
          PrevBarrier(S.BarrierDepth) {
      ++S.Depth;
      if (Barrier)
        S.BarrierDepth = S.Depth;
    }
    Frame(const Frame &) = delete;
    Frame &operator=(const Frame &) = delete;
    ~Frame() {
      S.popTo(Mark);
      S.BarrierDepth = PrevBarrier;
      --S.Depth;
    }

  private:
    ScopeStack &S;
    uint32_t Mark;
    uint32_t PrevBarrier;
  };

  /// Binds \p N to \p Sym in the innermost scope (shadowing any outer
  /// binding; rebinding within the same scope shadows too, matching the
  /// old map-overwrite semantics for lookup). The default/empty Name
  /// (ordinal 0) is a valid key: slots store ordinal+1, so it never
  /// collides with the empty-slot sentinel.
  void enter(Name N, Symbol *Sym) {
    uint32_t Slot = findSlot(N.ordinal());
    Bindings.push_back(
        Binding{N.ordinal(), Depth, Slots[Slot].Top, Sym});
    Slots[Slot].Top = static_cast<uint32_t>(Bindings.size() - 1);
  }

  /// Innermost visible binding of \p N, or null. Bindings below the
  /// current barrier scope are invisible.
  Symbol *lookup(Name N) const {
    ++Probes;
    if (Slots.empty())
      return nullptr;
    size_t Mask = Slots.size() - 1;
    uint32_t Key = N.ordinal() + 1;
    for (size_t I = hashOrd(N.ordinal()) & Mask;; I = (I + 1) & Mask) {
      const Slot &S = Slots[I];
      if (S.OrdPlus1 == 0)
        return nullptr;
      if (S.OrdPlus1 == Key) {
        if (S.Top == None)
          return nullptr;
        const Binding &B = Bindings[S.Top];
        return B.Depth >= BarrierDepth ? B.Sym : nullptr;
      }
      ++Probes;
    }
  }

  /// Total slot probes performed by enter/lookup (frontend.scopeProbes).
  uint64_t probes() const { return Probes; }

  bool empty() const { return Bindings.empty(); }

private:
  static constexpr uint32_t None = ~0u;

  struct Slot {
    uint32_t OrdPlus1 = 0; // key ordinal + 1; 0 = never used
    uint32_t Top = None;   // index of the top binding, None when chain empty
  };
  struct Binding {
    uint32_t Ord;
    uint32_t Depth;
    uint32_t Shadowed; // previous binding index for Ord, or None
    Symbol *Sym;
  };

  static size_t hashOrd(uint32_t Ord) {
    uint64_t H = Ord * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(H ^ (H >> 32));
  }

  /// Probes for \p Ord, claiming a fresh slot (growing if needed) when
  /// the name has never been bound.
  uint32_t findSlot(uint32_t Ord) {
    if (Slots.empty() || NumUsed * 4 >= Slots.size() * 3)
      grow();
    size_t Mask = Slots.size() - 1;
    uint32_t Key = Ord + 1;
    for (size_t I = hashOrd(Ord) & Mask;; I = (I + 1) & Mask) {
      ++Probes;
      Slot &S = Slots[I];
      if (S.OrdPlus1 == Key)
        return static_cast<uint32_t>(I);
      if (S.OrdPlus1 == 0) {
        S.OrdPlus1 = Key;
        ++NumUsed;
        return static_cast<uint32_t>(I);
      }
    }
  }

  void popTo(uint32_t Mark) {
    size_t Mask = Slots.size() - 1;
    for (size_t I = Bindings.size(); I > Mark; --I) {
      const Binding &B = Bindings[I - 1];
      for (size_t J = hashOrd(B.Ord) & Mask;; J = (J + 1) & Mask) {
        if (Slots[J].OrdPlus1 == B.Ord + 1) {
          Slots[J].Top = B.Shadowed;
          break;
        }
        assert(Slots[J].OrdPlus1 != 0 && "binding without a slot");
      }
    }
    Bindings.resize(Mark);
  }

  void grow() {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(Old.empty() ? 64 : Old.size() * 2, Slot());
    size_t Mask = Slots.size() - 1;
    for (const Slot &S : Old) {
      if (S.OrdPlus1 == 0)
        continue;
      for (size_t I = hashOrd(S.OrdPlus1 - 1) & Mask;; I = (I + 1) & Mask) {
        if (Slots[I].OrdPlus1 == 0) {
          Slots[I] = S;
          break;
        }
      }
    }
  }

  std::vector<Slot> Slots;
  std::vector<Binding> Bindings;
  size_t NumUsed = 0;     // distinct ordinals in Slots
  uint32_t Depth = 0;     // current scope nesting depth
  uint32_t BarrierDepth = 0;
  mutable uint64_t Probes = 0;
};

} // namespace mpc

#endif // MPC_FRONTEND_SCOPESTACK_H
