//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniScala namer + typer. Lowers the parser's SynNode representation
/// to fully attributed core Trees in three passes over all units:
///
///   A. declare  — create class/module symbols for every (nested) class;
///   B. complete — resolve type params, parents, and member signatures;
///   C. bodies   — type-check method bodies and field initializers,
///                 producing the typed tree of each compilation unit.
///
/// The tree transformation pipeline starts from this output, exactly like
/// the paper's "front-end parses and type-checks source code, and
/// generates trees annotated with type information".
///
/// Name resolution runs on a single flat ScopeStack (open-addressed,
/// keyed by name ordinal) instead of a chain of per-scope hash maps; see
/// ScopeStack.h. Lexical scopes are strict LIFO frames on that stack, and
/// class bodies open *barrier* frames (the old parentless root scopes).
///
//===----------------------------------------------------------------------===//

#ifndef MPC_FRONTEND_TYPER_H
#define MPC_FRONTEND_TYPER_H

#include "core/CompilerContext.h"
#include "frontend/ScopeStack.h"
#include "frontend/Syntax.h"
#include "support/FlatPtrMap.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace mpc {

/// Output of lexing+parsing one file, input to the typer.
struct ParsedUnit {
  std::string FileName;
  uint32_t FileId = 0;
  std::string Source;
  SynUnit Unit;
  std::shared_ptr<SynArena> Arena;
};

/// The whole-program namer/typer.
class Typer {
public:
  explicit Typer(CompilerContext &Comp) : Comp(Comp) {}

  /// Types all units (cross-unit references allowed). Diagnostics go to
  /// the context's engine; on errors the returned units may be partial.
  std::vector<CompilationUnit> run(std::vector<ParsedUnit> &Parsed);

  /// Scope-table probe count so far (surfaced as frontend.scopeProbes).
  uint64_t scopeProbes() const { return Scopes.probes(); }

private:
  struct BodyCtx;

  // Pass A/B.
  void declareClass(SynNode *Cls, Symbol *Owner);
  void completeClass(SynNode *Cls);
  void completeMember(SynNode *Member, ClassSymbol *Cls);
  const Type *resolveType(SynType *T);
  const Type *resolveNamedType(SynType *T);

  // Pass C.
  TreePtr typeClassBody(SynNode *Cls);
  TreePtr typeMemberDef(SynNode *Member, ClassSymbol *Cls, BodyCtx &Ctx);
  TreePtr typedExpr(SynNode *E, BodyCtx &Ctx);
  TreePtr typedApply(SynNode *E, BodyCtx &Ctx);
  TreePtr typedSelectOrRef(SynNode *E, BodyCtx &Ctx);
  TreePtr typedPattern(SynNode *P, const Type *Expected, BodyCtx &Ctx);
  TreePtr typedBlock(SynNode *B, BodyCtx &Ctx);
  TreePtr typeLocalDef(SynNode *Stat, BodyCtx &Ctx);

  /// Adapts a just-typed reference for value position: a parameterless
  /// method reference takes its result type (FirstTransform later inserts
  /// the empty Apply).
  TreePtr adapt(TreePtr T);

  /// Member selection on an arbitrary receiver type.
  TreePtr selectMember(SourceLoc Loc, TreePtr Qual, Name N, BodyCtx &Ctx);

  /// Applies a function tree (with the given method/function type) to
  /// already-typed arguments, checking conformance. The arguments are
  /// ArgScratch[ArgBase..] — the caller pushes them onto the shared
  /// stack-shaped scratch (same pattern as FusedBlock::walk's
  /// KidScratch); applyCall consumes that region and truncates the
  /// scratch back to ArgBase before returning.
  TreePtr applyCall(SourceLoc Loc, TreePtr Fun,
                    std::vector<const Type *> ExplicitTypeArgs,
                    size_t ArgBase, BodyCtx &Ctx);

  bool unifyTypeParams(const Type *Declared, const Type *Actual,
                       const std::vector<Symbol *> &Params,
                       std::vector<const Type *> &Bindings);

  /// Recovered parses can stitch arbitrarily long left-deep expression
  /// chains even though the parser caps *nesting*, so expression typing
  /// carries its own recursion guard: past the cap, the offending
  /// subtree types to the error tree with one diagnostic.
  static constexpr unsigned MaxExprDepth = 512;
  unsigned ExprDepth = 0;
  bool ExprDepthReported = false;

  const Type *thisTypeOf(ClassSymbol *Cls);
  Symbol *lookupUnqualified(Name N, BodyCtx &Ctx, ClassSymbol **FoundIn);
  void error(SourceLoc Loc, std::string Msg);
  TreePtr errorTree(SourceLoc Loc);

  CompilerContext &Comp;
  ScopeStack Scopes; // the one flat scope table for all passes
  FlatOrdMap<Symbol *> Globals; // name ordinal -> top-level symbol
  std::unordered_map<const SynNode *, ClassSymbol *> ClassSyms;
  std::unordered_map<const SynNode *, Symbol *> MemberSyms;
  std::vector<SynNode *> AllClasses; // declaration order, nested included
  /// Stack-shaped scratch holding the typed arguments of the call being
  /// checked. Nested calls push above their caller's region and truncate
  /// back on return, so one buffer serves the whole recursion — no
  /// per-call std::vector.
  TreeList ArgScratch;
};

} // namespace mpc

#endif // MPC_FRONTEND_TYPER_H
