//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the MiniScala lexer.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_FRONTEND_TOKEN_H
#define MPC_FRONTEND_TOKEN_H

#include "support/Diagnostics.h"
#include "support/NameTable.h"

#include <cstdint>

namespace mpc {

enum class Tok : uint8_t {
  EndOfFile,
  Error,
  // Literals and identifiers.
  IntLit,
  DoubleLit,
  StringLit,
  Id,      // alphanumeric identifier
  OpId,    // symbolic identifier (+, -, ==, <=, ...)
  // Keywords.
  KwClass,
  KwTrait,
  KwObject,
  KwCase,
  KwExtends,
  KwWith,
  KwDef,
  KwVal,
  KwVar,
  KwLazy,
  KwIf,
  KwElse,
  KwWhile,
  KwMatch,
  KwTry,
  KwCatch,
  KwFinally,
  KwThrow,
  KwReturn,
  KwNew,
  KwThis,
  KwSuper,
  KwTrue,
  KwFalse,
  KwNull,
  KwOverride,
  KwPrivate,
  KwFinal,
  KwAbstract,
  KwPackage,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Dot,
  Colon,
  Eq,       // =
  Arrow,    // =>
  At,       // @
  Underscore,
  Star,     // * (vararg marker position; otherwise OpId)
  Pipe,     // |
  Amp,      // &
};

/// One lexed token.
struct Token {
  Tok Kind = Tok::EndOfFile;
  SourceLoc Loc;
  Name Text;          // identifier / operator / string payload
  int64_t IntValue = 0;
  double DoubleValue = 0;

  bool is(Tok K) const { return Kind == K; }
};

/// Printable token-kind name for diagnostics.
const char *tokenKindName(Tok K);

} // namespace mpc

#endif // MPC_FRONTEND_TOKEN_H
