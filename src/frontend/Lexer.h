//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniScala lexer. Performs Scala-style semicolon inference: a newline
/// acts as a statement separator when the previous token can end a
/// statement, the next can start one, and no parenthesis/bracket group is
/// open.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_FRONTEND_LEXER_H
#define MPC_FRONTEND_LEXER_H

#include "frontend/Syntax.h"
#include "frontend/Token.h"
#include "support/Diagnostics.h"
#include "support/NameTable.h"

#include <string_view>
#include <vector>

namespace mpc {

/// Lexes a whole source buffer into the unit's token stream (plus EOF
/// sentinel). Tokens are collected in a caller-owned scratch vector and
/// land as one exact-size span in the unit's SynArena, alongside the
/// syntax nodes they will become — no per-unit std::vector survives the
/// parse.
class Lexer {
public:
  Lexer(std::string_view Source, uint32_t FileId, NameTable &Names,
        DiagnosticEngine &Diags);

  /// Runs the lexer; returns all tokens ending with EndOfFile as an
  /// arena-owned exact-size span. \p Scratch is the collection buffer:
  /// a multi-unit caller passes the same vector for every unit so one
  /// allocation's capacity serves the whole batch.
  SynList<Token> lexAll(SynArena &Arena, std::vector<Token> &Scratch);

private:
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance();
  bool atEnd() const { return Pos >= Src.size(); }
  SourceLoc here() const { return {FileId, Line, Col}; }

  void skipSpaceAndComments(bool &SawNewline);
  Token lexToken();
  Token lexNumber();
  Token lexString();
  Token lexIdentifier();
  Token lexOperator();
  Token make(Tok K);

  static bool canEndStatement(Tok K);
  static bool canStartStatement(Tok K);

  std::string_view Src;
  uint32_t FileId;
  NameTable &Names;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  int GroupDepth = 0; // parens + brackets (not braces)
  std::string StrBuf; // reused scratch for string literals with escapes
};

} // namespace mpc

#endif // MPC_FRONTEND_LEXER_H
