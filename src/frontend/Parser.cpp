#include "frontend/Parser.h"

#include <cctype>
#include <string>

using namespace mpc;

Parser::Parser(SynList<Token> Toks, SynArena &Arena, NameTable &Names,
               DiagnosticEngine &Diags)
    : Tokens(Toks), Arena(Arena), Names(Names), Diags(Diags) {
  if (Tokens.empty()) {
    // Defensive EOF sentinel for callers that hand-build token spans;
    // Lexer::lexAll always terminates the stream itself.
    Token Eof;
    Eof.Kind = Tok::EndOfFile;
    Tokens = Arena.list({Eof});
  }
}

bool Parser::atIdText(const char *Text) const {
  return at(Tok::Id) && cur().Text.text() == Text;
}

Token Parser::take() {
  Token T = cur();
  if (!at(Tok::EndOfFile))
    ++Pos;
  return T;
}

bool Parser::accept(Tok K) {
  if (!at(K))
    return false;
  take();
  return true;
}

bool Parser::expect(Tok K, const char *What) {
  if (accept(K))
    return true;
  std::string Msg = "expected ";
  Msg += tokenKindName(K);
  Msg += " in ";
  Msg += What;
  Msg += ", found ";
  Msg += tokenKindName(cur().Kind);
  Diags.error(cur().Loc, Msg);
  return false;
}

void Parser::skipSemis() {
  while (at(Tok::Semi))
    take();
}

void Parser::error(const char *Message) { Diags.error(cur().Loc, Message); }

//===----------------------------------------------------------------------===//
// Panic-mode recovery
//===----------------------------------------------------------------------===//

bool Parser::atTopLevelStart() const {
  switch (cur().Kind) {
  case Tok::KwClass:
  case Tok::KwTrait:
  case Tok::KwObject:
  case Tok::KwCase:
  case Tok::KwFinal:
  case Tok::KwAbstract:
    return true;
  default:
    return false;
  }
}

bool Parser::atMemberStart() const {
  switch (cur().Kind) {
  case Tok::KwDef:
  case Tok::KwVal:
  case Tok::KwVar:
  case Tok::KwLazy:
  case Tok::KwOverride:
  case Tok::KwPrivate:
    return true;
  default:
    return atTopLevelStart(); // nested class-likes are members too
  }
}

bool Parser::atSync(SyncSet S) const {
  if (at(Tok::EndOfFile) || at(Tok::Semi))
    return true;
  switch (S) {
  case SyncSet::TopLevel:
    return atTopLevelStart();
  case SyncSet::Member:
    return at(Tok::RBrace) || atMemberStart();
  case SyncSet::Statement:
    return at(Tok::RBrace);
  }
  return true;
}

SynNode *Parser::recoverTo(SyncSet S, SourceLoc From, size_t MinPos) {
  // The failed parse may have consumed modifier tokens and stopped on a
  // sync token (e.g. `final ;`); if it consumed nothing at all, drop one
  // token unconditionally so the enclosing loop always makes progress.
  if (Pos == MinPos)
    take();
  while (!atSync(S))
    take();
  return Arena.node(SynKind::Error, From);
}

void Parser::syncStatement(uint64_t ErrorsBefore, bool StopAtCase) {
  if (Diags.errorCount() == ErrorsBefore)
    return;
  // The statement misparsed; tokens up to the next statement boundary are
  // part of the same root cause, so drop them instead of diagnosing each.
  while (!atSync(SyncSet::Statement) &&
         !(StopAtCase && at(Tok::KwCase)))
    take();
}

struct Parser::DepthGuard {
  explicit DepthGuard(Parser &P) : P(P) { ++P.Depth; }
  ~DepthGuard() { --P.Depth; }
  Parser &P;
};

bool Parser::tooDeep() {
  if (Depth <= MaxNestingDepth)
    return false;
  if (!DepthReported) {
    DepthReported = true;
    error("nesting too deep; giving up on this construct");
  }
  take(); // guarantee progress for every caller loop
  return true;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

SynType *Parser::parseType() {
  DepthGuard Guard(*this);
  if (tooDeep()) {
    SynType *T = Arena.type(SynType::Named, cur().Loc);
    T->N = Names.intern("<error>");
    return T;
  }
  // Function types: (T1, ..., Tn) => R  |  T => R.
  if (at(Tok::LParen)) {
    // Could be a function type or a parenthesized type; scan for `=>` after
    // the matching paren.
    size_t Save = Pos;
    take();
    std::vector<SynType *> Params;
    if (!at(Tok::RParen)) {
      Params.push_back(parseType());
      while (accept(Tok::Comma))
        Params.push_back(parseType());
    }
    expect(Tok::RParen, "type");
    if (accept(Tok::Arrow)) {
      SynType *F = Arena.type(SynType::Func, Tokens[Save].Loc);
      F->Args = Arena.list(Params);
      F->Res = parseType();
      return F;
    }
    if (Params.size() == 1)
      return Params[0]; // parenthesized type
    error("tuple types are not supported");
    return Params.empty() ? Arena.type(SynType::Named, cur().Loc) : Params[0];
  }
  SynType *T = parseInfixType();
  if (accept(Tok::Arrow)) {
    SynType *F = Arena.type(SynType::Func, T->Loc);
    F->Args = Arena.list({T});
    F->Res = parseType();
    return F;
  }
  return T;
}

SynType *Parser::parseInfixType() {
  SynType *Left = parseSimpleType();
  while (at(Tok::Pipe) || at(Tok::Amp)) {
    bool IsUnion = at(Tok::Pipe);
    SourceLoc Loc = take().Loc;
    SynType *Right = parseSimpleType();
    SynType *T = Arena.type(IsUnion ? SynType::Union : SynType::Inter, Loc);
    T->Args = Arena.list({Left, Right});
    Left = T;
  }
  return Left;
}

SynType *Parser::parseSimpleType() {
  if (!at(Tok::Id)) {
    error("expected type name");
    SynType *T = Arena.type(SynType::Named, cur().Loc);
    T->N = Names.intern("<error>");
    take();
    return T;
  }
  Token Head = take();
  SynType *T = Arena.type(SynType::Named, Head.Loc);
  T->N = Head.Text;
  if (at(Tok::LBracket)) {
    take();
    T->K = SynType::Applied;
    std::vector<SynType *> Args;
    Args.push_back(parseType());
    while (accept(Tok::Comma))
      Args.push_back(parseType());
    expect(Tok::RBracket, "type arguments");
    T->Args = Arena.list(Args);
  }
  return T;
}

SynType *Parser::parseParamType() {
  if (accept(Tok::Arrow)) {
    SynType *B = Arena.type(SynType::ByName, cur().Loc);
    B->Res = parseType();
    return B;
  }
  SynType *T = parseType();
  if (at(Tok::Star)) {
    take();
    SynType *R = Arena.type(SynType::Repeated, T->Loc);
    R->Res = T;
    return R;
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Definitions
//===----------------------------------------------------------------------===//

SynUnit Parser::parseUnit() {
  SynUnit Unit;
  skipSemis();
  if (accept(Tok::KwPackage)) {
    if (at(Tok::Id))
      Unit.PackageName = take().Text;
    else
      error("expected package name");
    skipSemis();
  }
  while (!at(Tok::EndOfFile)) {
    size_t Before = Pos;
    SourceLoc Loc = cur().Loc;
    SynNode *Def = parseTopLevelDef();
    if (Def)
      Unit.TopLevel.push_back(Def);
    else
      Unit.TopLevel.push_back(recoverTo(SyncSet::TopLevel, Loc, Before));
    skipSemis();
  }
  return Unit;
}

SynNode *Parser::parseTopLevelDef() {
  uint32_t Mods = 0;
  while (true) {
    if (accept(Tok::KwCase)) {
      Mods |= SynFlag::Case;
      continue;
    }
    if (accept(Tok::KwFinal)) {
      Mods |= SynFlag::Final;
      continue;
    }
    if (accept(Tok::KwAbstract)) {
      Mods |= SynFlag::Abstract;
      continue;
    }
    break;
  }
  if (at(Tok::KwClass))
    return parseClassLike(Mods);
  if (at(Tok::KwTrait))
    return parseClassLike(Mods | SynFlag::Trait);
  if (at(Tok::KwObject))
    return parseClassLike(Mods | SynFlag::Object);
  error("expected class, trait or object");
  return nullptr;
}

SynNode *Parser::parseClassLike(uint32_t Flags) {
  DepthGuard Guard(*this);
  if (tooDeep())
    return Arena.node(SynKind::Error, cur().Loc);
  SourceLoc Loc = cur().Loc;
  take(); // class/trait/object keyword
  SynNode *Cls = Arena.node(SynKind::ClassDef, Loc);
  Cls->Flags = Flags;
  if (at(Tok::Id))
    Cls->N = take().Text;
  else
    error("expected class name");

  if (!Cls->is(SynFlag::Object) && !Cls->is(SynFlag::Trait))
    Cls->TypeParamNames = parseTypeParams();

  // All children (ctor params, the <superargs> stash, then members)
  // collect in a scratch vector and land in the arena as one span.
  std::vector<SynNode *> Kids;

  // Constructor parameters (classes only).
  if (!Cls->is(SynFlag::Object) && !Cls->is(SynFlag::Trait) &&
      at(Tok::LParen)) {
    take();
    if (!at(Tok::RParen)) {
      Kids.push_back(parseParam());
      while (accept(Tok::Comma))
        Kids.push_back(parseParam());
    }
    expect(Tok::RParen, "class parameters");
    Cls->NumParams = static_cast<uint32_t>(Kids.size());
  }

  if (accept(Tok::KwExtends)) {
    std::vector<SynType *> Parents;
    Parents.push_back(parseSimpleType());
    // Parent constructor arguments: `extends C(args)`.
    if (at(Tok::LParen)) {
      take();
      std::vector<SynNode *> Args;
      if (!at(Tok::RParen)) {
        Args.push_back(parseExpr());
        while (accept(Tok::Comma))
          Args.push_back(parseExpr());
      }
      expect(Tok::RParen, "parent constructor arguments");
      // Stash super args as an Apply node child marked by name.
      SynNode *SuperArgs = Arena.node(SynKind::Apply, Parents[0]->Loc);
      SuperArgs->N = Names.intern("<superargs>");
      SuperArgs->Kids = Arena.list(Args);
      Kids.push_back(SuperArgs); // params stay a prefix
    }
    while (accept(Tok::KwWith))
      Parents.push_back(parseSimpleType());
    Cls->Parents = Arena.list(Parents);
  }

  if (at(Tok::LBrace))
    parseTemplateBody(Kids);
  Cls->Kids = Arena.list(Kids);
  return Cls;
}

SynList<Name> Parser::parseTypeParams() {
  if (!at(Tok::LBracket))
    return SynList<Name>();
  std::vector<Name> Result;
  take();
  do {
    if (at(Tok::Id))
      Result.push_back(take().Text);
    else {
      error("expected type parameter name");
      break;
    }
  } while (accept(Tok::Comma));
  expect(Tok::RBracket, "type parameters");
  return Arena.list(Result);
}

void Parser::parseTemplateBody(std::vector<SynNode *> &Kids) {
  expect(Tok::LBrace, "template body");
  skipSemis();
  while (!at(Tok::RBrace) && !at(Tok::EndOfFile)) {
    size_t Before = Pos;
    SourceLoc MemberLoc = cur().Loc;
    uint32_t Mods = 0;
    bool Advanced = true;
    while (Advanced) {
      Advanced = false;
      if (accept(Tok::KwOverride)) {
        Mods |= SynFlag::Override;
        Advanced = true;
      } else if (accept(Tok::KwPrivate)) {
        Mods |= SynFlag::Private;
        Advanced = true;
      } else if (accept(Tok::KwFinal)) {
        Mods |= SynFlag::Final;
        Advanced = true;
      }
    }
    SynNode *Member = parseMemberDef(Mods);
    if (Member)
      Kids.push_back(Member);
    else
      Kids.push_back(recoverTo(SyncSet::Member, MemberLoc, Before));
    skipSemis();
  }
  expect(Tok::RBrace, "template body");
}

SynNode *Parser::parseMemberDef(uint32_t Mods) {
  if (at(Tok::KwLazy)) {
    take();
    Mods |= SynFlag::Lazy;
    return parseValDef(Mods);
  }
  if (at(Tok::KwVal) || at(Tok::KwVar))
    return parseValDef(Mods);
  if (at(Tok::KwDef))
    return parseDefDef(Mods);
  if (at(Tok::KwClass) || at(Tok::KwTrait) || at(Tok::KwObject) ||
      at(Tok::KwCase) || at(Tok::KwAbstract))
    return parseTopLevelDef();
  error("expected member definition");
  return nullptr;
}

SynNode *Parser::parseValDef(uint32_t Mods) {
  SourceLoc Loc = cur().Loc;
  if (at(Tok::KwVar)) {
    Mods |= SynFlag::Var;
    take();
  } else {
    expect(Tok::KwVal, "value definition");
  }
  SynNode *VD = Arena.node(SynKind::ValDef, Loc);
  VD->Flags = Mods;
  if (at(Tok::Id))
    VD->N = take().Text;
  else
    error("expected value name");
  if (accept(Tok::Colon))
    VD->Ty = parseType();
  if (accept(Tok::Eq))
    VD->Kids = Arena.list({parseExpr()});
  else
    VD->Kids = Arena.list<SynNode *>({nullptr}); // abstract val
  return VD;
}

SynNode *Parser::parseDefDef(uint32_t Mods) {
  SourceLoc Loc = cur().Loc;
  expect(Tok::KwDef, "method definition");
  SynNode *DD = Arena.node(SynKind::DefDef, Loc);
  DD->Flags = Mods;
  if (at(Tok::Id))
    DD->N = take().Text;
  else if (at(Tok::OpId))
    DD->N = take().Text;
  else
    error("expected method name");
  DD->TypeParamNames = parseTypeParams();
  std::vector<SynNode *> Kids;
  std::vector<uint32_t> ListSizes;
  while (at(Tok::LParen)) {
    take();
    uint32_t Count = 0;
    if (!at(Tok::RParen)) {
      Kids.push_back(parseParam());
      ++Count;
      while (accept(Tok::Comma)) {
        Kids.push_back(parseParam());
        ++Count;
      }
    }
    expect(Tok::RParen, "parameter list");
    ListSizes.push_back(Count);
  }
  DD->ParamListSizes = Arena.list(ListSizes);
  if (accept(Tok::Colon))
    DD->Ty = parseType();
  if (accept(Tok::Eq))
    Kids.push_back(parseExpr());
  else
    Kids.push_back(nullptr); // abstract method
  DD->Kids = Arena.list(Kids);
  return DD;
}

SynNode *Parser::parseParam() {
  SynNode *P = Arena.node(SynKind::Param, cur().Loc);
  // Class parameters may carry `val`/`var` (parameter accessors). Plain
  // parameters already become fields; `var` additionally makes the field
  // mutable.
  if (accept(Tok::KwVar))
    P->Flags |= SynFlag::Var;
  else
    accept(Tok::KwVal);
  if (at(Tok::Id))
    P->N = take().Text;
  else
    error("expected parameter name");
  expect(Tok::Colon, "parameter");
  P->Ty = parseParamType();
  return P;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

SynNode *Parser::parseExpr() {
  DepthGuard Guard(*this);
  if (tooDeep())
    return Arena.node(SynKind::Error, cur().Loc);
  switch (cur().Kind) {
  case Tok::KwIf:
    return parseIfExpr();
  case Tok::KwWhile:
    return parseWhileExpr();
  case Tok::KwTry:
    return parseTryExpr();
  case Tok::KwThrow: {
    SynNode *T = Arena.node(SynKind::Throw, take().Loc);
    T->Kids = Arena.list({parseExpr()});
    return T;
  }
  case Tok::KwReturn: {
    SynNode *R = Arena.node(SynKind::Return, take().Loc);
    // `return` followed by an expression on the same statement.
    if (!at(Tok::Semi) && !at(Tok::RBrace) && !at(Tok::EndOfFile))
      R->Kids = Arena.list({parseExpr()});
    else
      R->Kids = Arena.list<SynNode *>({nullptr});
    return R;
  }
  default:
    break;
  }

  if (at(Tok::LParen)) {
    if (SynNode *Lambda = tryParseLambda())
      return Lambda;
  }

  SynNode *E = parseInfixExpr(0);

  // Assignment (right-associative, lowest precedence).
  if (at(Tok::Eq)) {
    SourceLoc Loc = take().Loc;
    SynNode *Rhs = parseExpr();
    SynNode *A = Arena.node(SynKind::Assign, Loc);
    A->Kids = Arena.list({E, Rhs});
    return A;
  }
  return E;
}

SynNode *Parser::parseIfExpr() {
  SynNode *I = Arena.node(SynKind::If, take().Loc);
  expect(Tok::LParen, "if condition");
  SynNode *Cond = parseExpr();
  expect(Tok::RParen, "if condition");
  skipSemis();
  SynNode *Then = parseExpr();
  SynNode *Else = nullptr;
  size_t Save = Pos;
  skipSemis();
  if (accept(Tok::KwElse)) {
    skipSemis();
    Else = parseExpr();
  } else {
    Pos = Save;
  }
  I->Kids = Arena.list({Cond, Then, Else});
  return I;
}

SynNode *Parser::parseWhileExpr() {
  SynNode *W = Arena.node(SynKind::While, take().Loc);
  expect(Tok::LParen, "while condition");
  SynNode *Cond = parseExpr();
  expect(Tok::RParen, "while condition");
  skipSemis();
  SynNode *Body = parseExpr();
  W->Kids = Arena.list({Cond, Body});
  return W;
}

SynNode *Parser::parseTryExpr() {
  SynNode *T = Arena.node(SynKind::Try, take().Loc);
  SynNode *Body = parseExpr();
  std::vector<SynNode *> Cases;
  SynNode *Fin = nullptr;
  skipSemis();
  if (accept(Tok::KwCatch)) {
    expect(Tok::LBrace, "catch handler");
    Cases = parseCaseClauses();
    expect(Tok::RBrace, "catch handler");
  }
  size_t Save = Pos;
  skipSemis();
  if (accept(Tok::KwFinally))
    Fin = parseExpr();
  else
    Pos = Save;
  std::vector<SynNode *> Kids;
  Kids.reserve(Cases.size() + 2);
  Kids.push_back(Body);
  Kids.push_back(Fin);
  for (SynNode *C : Cases)
    Kids.push_back(C);
  T->Kids = Arena.list(Kids);
  return T;
}

int Parser::opPrecedence(std::string_view Op) {
  if (Op == "||")
    return 2;
  if (Op == "&&")
    return 3;
  if (Op == "==" || Op == "!=")
    return 4;
  if (Op == "<" || Op == "<=" || Op == ">" || Op == ">=")
    return 5;
  if (Op == "+" || Op == "-")
    return 6;
  if (Op == "*" || Op == "/" || Op == "%")
    return 7;
  return -1;
}

bool Parser::atOperator() const {
  if (at(Tok::OpId) || at(Tok::Star))
    return true;
  return false;
}

Name Parser::operatorName() const { return cur().Text; }

SynNode *Parser::parseInfixExpr(int MinPrec) {
  SynNode *Left = parsePrefixExpr();
  while (atOperator()) {
    int Prec = opPrecedence(operatorName().text());
    if (Prec < 0 || Prec < MinPrec)
      break;
    Token Op = take();
    SynNode *Right = parseInfixExpr(Prec + 1);
    // Desugar `a op b` to Apply(Select(a, op), b).
    SynNode *Sel = Arena.node(SynKind::Select, Op.Loc);
    Sel->N = Op.Text;
    Sel->Kids = Arena.list({Left});
    SynNode *App = Arena.node(SynKind::Apply, Op.Loc);
    App->Kids = Arena.list({Sel, Right});
    Left = App;
  }
  return Left;
}

SynNode *Parser::parsePrefixExpr() {
  if (at(Tok::OpId) &&
      (cur().Text.text() == "-" || cur().Text.text() == "!")) {
    Token Op = take();
    SynNode *Operand = parsePrefixExpr();
    // `-x` => Apply(Select(x, unary_-), []).
    SynNode *Sel = Arena.node(SynKind::Select, Op.Loc);
    Sel->N = Names.intern(std::string("unary_") + std::string(Op.Text.text()));
    Sel->Kids = Arena.list({Operand});
    SynNode *App = Arena.node(SynKind::Apply, Op.Loc);
    App->Kids = Arena.list<SynNode *>({Sel});
    return App;
  }
  return parsePostfixExpr();
}

SynNode *Parser::parsePostfixExpr() {
  SynNode *E = parsePrimaryExpr();
  while (true) {
    if (at(Tok::Dot)) {
      take();
      SynNode *Sel = Arena.node(SynKind::Select, cur().Loc);
      if (at(Tok::Id) || at(Tok::OpId))
        Sel->N = take().Text;
      else
        error("expected member name after '.'");
      Sel->Kids = Arena.list({E});
      E = Sel;
      continue;
    }
    if (at(Tok::LBracket)) {
      take();
      SynNode *TA = Arena.node(SynKind::TypeApply, cur().Loc);
      TA->Kids = Arena.list<SynNode *>({E});
      std::vector<SynType *> TyArgs;
      TyArgs.push_back(parseType());
      while (accept(Tok::Comma))
        TyArgs.push_back(parseType());
      expect(Tok::RBracket, "type arguments");
      TA->TyArgs = Arena.list(TyArgs);
      E = TA;
      continue;
    }
    if (at(Tok::LParen)) {
      SynNode *App = Arena.node(SynKind::Apply, cur().Loc);
      std::vector<SynNode *> Kids;
      Kids.push_back(E);
      for (SynNode *A : parseArgs())
        Kids.push_back(A);
      App->Kids = Arena.list(Kids);
      E = App;
      continue;
    }
    if (at(Tok::KwMatch)) {
      take();
      expect(Tok::LBrace, "match expression");
      SynNode *M = Arena.node(SynKind::Match, E->Loc);
      std::vector<SynNode *> Kids;
      Kids.push_back(E);
      for (SynNode *C : parseCaseClauses())
        Kids.push_back(C);
      expect(Tok::RBrace, "match expression");
      M->Kids = Arena.list(Kids);
      E = M;
      continue;
    }
    break;
  }
  return E;
}

std::vector<SynNode *> Parser::parseArgs() {
  std::vector<SynNode *> Args;
  expect(Tok::LParen, "arguments");
  if (!at(Tok::RParen)) {
    Args.push_back(parseExpr());
    while (accept(Tok::Comma))
      Args.push_back(parseExpr());
  }
  expect(Tok::RParen, "arguments");
  return Args;
}

SynNode *Parser::parseNewExpr() {
  SourceLoc Loc = take().Loc; // 'new'
  SynNode *N = Arena.node(SynKind::New, Loc);
  N->Ty = parseSimpleType();
  if (at(Tok::LParen))
    N->Kids = Arena.list(parseArgs());
  return N;
}

/// Attempts `(x: T, ...) => body`; rolls back when it is not a lambda.
SynNode *Parser::tryParseLambda() {
  size_t Save = Pos;
  SourceLoc Loc = cur().Loc;
  take(); // '('
  std::vector<SynNode *> Params;
  bool Ok = true;
  if (!at(Tok::RParen)) {
    while (true) {
      if (!at(Tok::Id) || ahead().Kind != Tok::Colon) {
        Ok = false;
        break;
      }
      SynNode *P = Arena.node(SynKind::Param, cur().Loc);
      P->N = take().Text;
      take(); // ':'
      P->Ty = parseType();
      Params.push_back(P);
      if (accept(Tok::Comma))
        continue;
      break;
    }
  }
  if (!Ok || !at(Tok::RParen) || ahead().Kind != Tok::Arrow) {
    Pos = Save;
    return nullptr;
  }
  take(); // ')'
  take(); // '=>'
  SynNode *L = Arena.node(SynKind::Lambda, Loc);
  Params.push_back(parseExpr());
  L->Kids = Arena.list(Params);
  return L;
}

SynNode *Parser::parseBlockExpr() {
  SynNode *B = Arena.node(SynKind::Block, take().Loc); // '{'
  std::vector<SynNode *> Stats;
  skipSemis();
  while (!at(Tok::RBrace) && !at(Tok::EndOfFile)) {
    uint64_t ErrsBefore = Diags.errorCount();
    SynNode *Stat = nullptr;
    if (at(Tok::KwVal) || at(Tok::KwVar))
      Stat = parseValDef(0);
    else if (at(Tok::KwLazy)) {
      take();
      Stat = parseValDef(SynFlag::Lazy);
    } else if (at(Tok::KwDef))
      Stat = parseDefDef(0);
    else
      Stat = parseExpr();
    if (Stat)
      Stats.push_back(Stat);
    syncStatement(ErrsBefore, /*StopAtCase=*/false);
    skipSemis();
  }
  expect(Tok::RBrace, "block");
  B->Kids = Arena.list(Stats);
  return B;
}

SynNode *Parser::parsePrimaryExpr() {
  switch (cur().Kind) {
  case Tok::IntLit: {
    Token T = take();
    SynNode *L = Arena.node(SynKind::Lit, T.Loc);
    L->Lit = Constant::makeInt(T.IntValue);
    return L;
  }
  case Tok::DoubleLit: {
    Token T = take();
    SynNode *L = Arena.node(SynKind::Lit, T.Loc);
    L->Lit = Constant::makeDouble(T.DoubleValue);
    return L;
  }
  case Tok::StringLit: {
    Token T = take();
    SynNode *L = Arena.node(SynKind::Lit, T.Loc);
    L->Lit = Constant::makeString(T.Text);
    return L;
  }
  case Tok::KwTrue:
  case Tok::KwFalse: {
    Token T = take();
    SynNode *L = Arena.node(SynKind::Lit, T.Loc);
    L->Lit = Constant::makeBool(T.Kind == Tok::KwTrue);
    return L;
  }
  case Tok::KwNull: {
    SynNode *L = Arena.node(SynKind::Lit, take().Loc);
    L->Lit = Constant::makeNull();
    return L;
  }
  case Tok::KwThis:
    return Arena.node(SynKind::ThisRef, take().Loc);
  case Tok::KwSuper: {
    SourceLoc Loc = take().Loc;
    expect(Tok::Dot, "super reference");
    SynNode *S = Arena.node(SynKind::SuperSel, Loc);
    if (at(Tok::Id))
      S->N = take().Text;
    else
      error("expected member name after 'super.'");
    return S;
  }
  case Tok::KwNew:
    return parseNewExpr();
  case Tok::Id: {
    Token T = take();
    SynNode *R = Arena.node(SynKind::Ref, T.Loc);
    R->N = T.Text;
    return R;
  }
  case Tok::LBrace:
    return parseBlockExpr();
  case Tok::LParen: {
    take();
    if (at(Tok::RParen)) {
      // `()` — the unit literal.
      SynNode *L = Arena.node(SynKind::Lit, take().Loc);
      L->Lit = Constant::makeUnit();
      return L;
    }
    SynNode *E = parseExpr();
    expect(Tok::RParen, "parenthesized expression");
    return E;
  }
  default: {
    error("expected expression");
    SynNode *L = Arena.node(SynKind::Lit, cur().Loc);
    L->Lit = Constant::makeUnit();
    take();
    return L;
  }
  }
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

std::vector<SynNode *> Parser::parseCaseClauses() {
  std::vector<SynNode *> Cases;
  skipSemis();
  while (at(Tok::KwCase)) {
    SynNode *C = Arena.node(SynKind::CaseClause, take().Loc);
    SynNode *Pat = parsePattern();
    SynNode *Guard = nullptr;
    if (accept(Tok::KwIf))
      Guard = parseInfixExpr(0);
    expect(Tok::Arrow, "case clause");
    // Case body: statements until the next 'case' or closing brace.
    SynNode *Body = Arena.node(SynKind::Block, cur().Loc);
    std::vector<SynNode *> Stats;
    skipSemis();
    while (!at(Tok::KwCase) && !at(Tok::RBrace) && !at(Tok::EndOfFile)) {
      uint64_t ErrsBefore = Diags.errorCount();
      SynNode *Stat = nullptr;
      if (at(Tok::KwVal) || at(Tok::KwVar))
        Stat = parseValDef(0);
      else if (at(Tok::KwDef))
        Stat = parseDefDef(0);
      else
        Stat = parseExpr();
      if (Stat)
        Stats.push_back(Stat);
      syncStatement(ErrsBefore, /*StopAtCase=*/true);
      skipSemis();
    }
    Body->Kids = Arena.list(Stats);
    C->Kids = Arena.list({Pat, Guard, Body});
    Cases.push_back(C);
    skipSemis();
  }
  return Cases;
}

SynNode *Parser::parsePattern() {
  SynNode *First = parseSimplePattern();
  if (!at(Tok::Pipe))
    return First;
  SynNode *Alt = Arena.node(SynKind::PatAlt, First->Loc);
  std::vector<SynNode *> Alts;
  Alts.push_back(First);
  while (accept(Tok::Pipe))
    Alts.push_back(parseSimplePattern());
  Alt->Kids = Arena.list(Alts);
  return Alt;
}

SynNode *Parser::parseSimplePattern() {
  DepthGuard Guard(*this);
  if (tooDeep())
    return Arena.node(SynKind::PatWild, cur().Loc);
  switch (cur().Kind) {
  case Tok::IntLit:
  case Tok::DoubleLit:
  case Tok::StringLit:
  case Tok::KwTrue:
  case Tok::KwFalse:
  case Tok::KwNull:
    return parsePrimaryExpr(); // literal pattern (Lit node)
  case Tok::Underscore: {
    SourceLoc Loc = take().Loc;
    SynNode *W = Arena.node(SynKind::PatWild, Loc);
    if (accept(Tok::Colon)) {
      SynNode *T = Arena.node(SynKind::PatTyped, Loc);
      T->Kids = Arena.list<SynNode *>({nullptr});
      T->Ty = parseInfixType(); // no function types: `case _: T =>`
      return T;
    }
    return W;
  }
  case Tok::Id: {
    Token T = take();
    bool Uppercase = !T.Text.text().empty() &&
                     std::isupper(static_cast<unsigned char>(
                         T.Text.text().front()));
    if (Uppercase && at(Tok::LParen)) {
      // Constructor pattern C(p1, ..., pn).
      take();
      SynNode *Ctor = Arena.node(SynKind::PatCtor, T.Loc);
      Ctor->N = T.Text;
      std::vector<SynNode *> Pats;
      if (!at(Tok::RParen)) {
        Pats.push_back(parsePattern());
        while (accept(Tok::Comma))
          Pats.push_back(parsePattern());
      }
      expect(Tok::RParen, "constructor pattern");
      Ctor->Kids = Arena.list(Pats);
      return Ctor;
    }
    // Binder, possibly with @ or type ascription.
    SynNode *B = Arena.node(SynKind::PatBind, T.Loc);
    B->N = T.Text;
    if (accept(Tok::At)) {
      B->Kids = Arena.list({parseSimplePattern()});
      return B;
    }
    if (accept(Tok::Colon)) {
      SynNode *Typed = Arena.node(SynKind::PatTyped, T.Loc);
      Typed->Kids = Arena.list<SynNode *>({nullptr});
      Typed->Ty = parseInfixType(); // no function types: `case b: T =>`
      B->Kids = Arena.list<SynNode *>({Typed});
      return B;
    }
    B->Kids = Arena.list<SynNode *>({nullptr});
    return B;
  }
  default:
    error("expected pattern");
    take();
    return Arena.node(SynKind::PatWild, cur().Loc);
  }
}
