#include "frontend/Typer.h"

#include "ast/TreeUtils.h"

#include <algorithm>
#include <cassert>

using namespace mpc;

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//
//
// All lexical scoping lives on the Typer's single flat ScopeStack (see
// ScopeStack.h): functions open RAII frames instead of allocating chained
// per-scope maps, and the innermost scope is always the stack's top.

/// Context while typing a method/field body. The innermost value/type
/// scope is implicit: it is the top frame of the typer's ScopeStack.
struct Typer::BodyCtx {
  ClassSymbol *Cls = nullptr; // innermost enclosing class
  Symbol *Method = nullptr;   // innermost enclosing method (or <init>)
};

/// Shorthand: bind a symbol under its own name.
static void enterSym(ScopeStack &Scopes, Symbol *S) {
  Scopes.enter(S->name(), S);
}

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

void Typer::error(SourceLoc Loc, std::string Msg) {
  Comp.diags().error(Loc, std::move(Msg));
}

TreePtr Typer::errorTree(SourceLoc Loc) {
  // ErrorType absorbs in subtyping and lub, so downstream checks on this
  // tree succeed silently: one root cause, one diagnostic.
  return Comp.trees().makeLiteral(Loc, Constant::makeNull(),
                                  Comp.types().errorType());
}

const Type *Typer::thisTypeOf(ClassSymbol *Cls) {
  std::vector<const Type *> Args;
  for (Symbol *TP : Cls->typeParams())
    Args.push_back(Comp.types().typeParamRef(TP));
  return Comp.types().classType(Cls, std::move(Args));
}

/// Final (deepest) result of a possibly curried method/poly type.
static const Type *finalResultType(const Type *T) {
  while (T) {
    if (const auto *PT = dyn_cast<PolyType>(T)) {
      T = PT->underlying();
      continue;
    }
    if (const auto *MT = dyn_cast<MethodType>(T)) {
      T = MT->result();
      continue;
    }
    break;
  }
  return T;
}

/// Member lookup within a class type, substituting type arguments; walks
/// ancestors applying their own substitutions.
static const Type *memberInfoIn(TypeContext &Types, const ClassType *CT,
                                Name N, Symbol *&Found) {
  ClassSymbol *Cls = CT->cls();
  for (Symbol *M : Cls->members()) {
    if (M->name() == N) {
      Found = M;
      return Types.substitute(M->info(), Cls->typeParams(), CT->args());
    }
  }
  for (const Type *P : Cls->parents()) {
    const Type *Subst = Types.substitute(P, Cls->typeParams(), CT->args());
    if (const auto *PCT = dyn_cast<ClassType>(Subst)) {
      if (const Type *Info = memberInfoIn(Types, PCT, N, Found))
        return Info;
    }
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Pass A: declare classes
//===----------------------------------------------------------------------===//

void Typer::declareClass(SynNode *ClsSyn, Symbol *Owner) {
  uint64_t Flags = 0;
  if (ClsSyn->is(SynFlag::Trait))
    Flags |= SymFlag::Trait;
  if (ClsSyn->is(SynFlag::Object))
    Flags |= SymFlag::ModuleClass | SymFlag::Final;
  if (ClsSyn->is(SynFlag::Case))
    Flags |= SymFlag::Case;
  if (ClsSyn->is(SynFlag::Final))
    Flags |= SymFlag::Final;
  if (ClsSyn->is(SynFlag::Abstract))
    Flags |= SymFlag::Abstract;

  Name ClsName = ClsSyn->is(SynFlag::Object)
                     ? Comp.names().intern(ClsSyn->N.str() + "$")
                     : ClsSyn->N;
  ClassSymbol *Cls = Comp.syms().makeClass(ClsName, Owner, Flags);
  Cls->setLoc(ClsSyn->Loc);
  ClassSyms[ClsSyn] = Cls;
  AllClasses.push_back(ClsSyn);

  bool TopLevel = Owner == Comp.syms().rootPackage();
  if (ClsSyn->is(SynFlag::Object)) {
    // The module value: `object O` introduces term O of type O$.
    Symbol *ModVal = Comp.syms().makeTerm(
        ClsSyn->N, Owner, SymFlag::Module | SymFlag::Final,
        Comp.types().classType(Cls));
    ModVal->setLoc(ClsSyn->Loc);
    MemberSyms[ClsSyn] = ModVal;
    if (TopLevel) {
      if (Globals.find(ClsSyn->N.ordinal()))
        error(ClsSyn->Loc, "duplicate top-level name " + ClsSyn->N.str());
      Globals[ClsSyn->N.ordinal()] = ModVal;
    } else if (auto *OwnerCls = dyn_cast<ClassSymbol>(Owner)) {
      OwnerCls->enterMember(ModVal);
    }
  } else {
    if (TopLevel) {
      if (Globals.find(ClsSyn->N.ordinal()))
        error(ClsSyn->Loc, "duplicate top-level name " + ClsSyn->N.str());
      Globals[ClsSyn->N.ordinal()] = Cls;
    }
  }
  if (auto *OwnerCls = dyn_cast<ClassSymbol>(Owner))
    OwnerCls->enterMember(Cls);

  // Recurse into nested classes.
  for (size_t I = ClsSyn->NumParams; I < ClsSyn->Kids.size(); ++I) {
    SynNode *Member = ClsSyn->Kids[I];
    if (Member && Member->K == SynKind::ClassDef)
      declareClass(Member, Cls);
  }
}

//===----------------------------------------------------------------------===//
// Type resolution
//===----------------------------------------------------------------------===//

const Type *Typer::resolveNamedType(SynType *T) {
  TypeContext &Types = Comp.types();
  std::string_view Text = T->N.text();
  if (Text == "Int")
    return Types.intType();
  if (Text == "Boolean")
    return Types.booleanType();
  if (Text == "Double")
    return Types.doubleType();
  if (Text == "Unit")
    return Types.unitType();
  if (Text == "Any")
    return Types.anyType();
  if (Text == "Nothing")
    return Types.nothingType();
  if (Text == "Null")
    return Types.nullType();
  if (Text == "String")
    return Comp.syms().stringType();
  if (Text == "Object" || Text == "AnyRef")
    return Comp.syms().objectType();
  if (Text == "Throwable")
    return Comp.syms().throwableType();

  // Scope entries: type params and (nested) classes.
  if (Symbol *Sym = Scopes.lookup(T->N)) {
    if (Sym->is(SymFlag::TypeParam))
      return Types.typeParamRef(Sym);
    if (auto *Cls = dyn_cast<ClassSymbol>(Sym))
      return Types.classType(Cls);
  }
  // Global classes.
  if (Symbol *const *Global = Globals.find(T->N.ordinal())) {
    if (auto *Cls = dyn_cast<ClassSymbol>(*Global))
      return Types.classType(Cls);
  }
  error(T->Loc, "unknown type " + T->N.str());
  return Types.errorType();
}

const Type *Typer::resolveType(SynType *T) {
  TypeContext &Types = Comp.types();
  switch (T->K) {
  case SynType::Named:
    return resolveNamedType(T);
  case SynType::Applied: {
    if (T->N.text() == "Array") {
      if (T->Args.size() != 1) {
        error(T->Loc, "Array takes exactly one type argument");
        return Types.errorType();
      }
      return Types.arrayType(resolveType(T->Args[0]));
    }
    // Head must be a generic class.
    ClassSymbol *Cls = nullptr;
    if (Symbol *Sym = Scopes.lookup(T->N))
      Cls = dyn_cast<ClassSymbol>(Sym);
    if (!Cls) {
      if (Symbol *const *Global = Globals.find(T->N.ordinal()))
        Cls = dyn_cast<ClassSymbol>(*Global);
    }
    if (!Cls) {
      error(T->Loc, "unknown generic type " + T->N.str());
      return Types.errorType();
    }
    if (Cls->typeParams().size() != T->Args.size()) {
      error(T->Loc, "wrong number of type arguments for " + T->N.str());
      return Types.classType(Cls);
    }
    std::vector<const Type *> Args;
    for (SynType *A : T->Args)
      Args.push_back(resolveType(A));
    return Types.classType(Cls, std::move(Args));
  }
  case SynType::Func: {
    std::vector<const Type *> Params;
    for (SynType *P : T->Args)
      Params.push_back(resolveType(P));
    return Types.functionType(std::move(Params), resolveType(T->Res));
  }
  case SynType::ByName:
    return Types.exprType(resolveType(T->Res));
  case SynType::Repeated:
    return Types.repeatedType(resolveType(T->Res));
  case SynType::Union:
    return Types.unionType(resolveType(T->Args[0]),
                           resolveType(T->Args[1]));
  case SynType::Inter:
    return Types.intersectionType(resolveType(T->Args[0]),
                                  resolveType(T->Args[1]));
  }
  return Types.anyType();
}

//===----------------------------------------------------------------------===//
// Pass B: complete signatures
//===----------------------------------------------------------------------===//

void Typer::completeClass(SynNode *ClsSyn) {
  ClassSymbol *Cls = ClassSyms.at(ClsSyn);
  TypeContext &Types = Comp.types();

  // Fresh root scope: a class body sees nothing of its lexical
  // surroundings except via Globals.
  ScopeStack::Frame ClsScope(Scopes, /*Barrier=*/true);
  // Type parameters.
  std::vector<Symbol *> TypeParams;
  for (Name TPName : ClsSyn->TypeParamNames) {
    Symbol *TP = Comp.syms().makeTerm(TPName, Cls, SymFlag::TypeParam);
    TypeParams.push_back(TP);
    enterSym(Scopes, TP);
  }
  Cls->setTypeParams(TypeParams);

  // Nested classes visible by simple name inside the body.
  for (size_t I = ClsSyn->NumParams; I < ClsSyn->Kids.size(); ++I) {
    SynNode *M = ClsSyn->Kids[I];
    if (M && M->K == SynKind::ClassDef) {
      if (M->is(SynFlag::Object))
        Scopes.enter(M->N, MemberSyms.at(M));
      else
        Scopes.enter(M->N, ClassSyms.at(M));
    }
  }

  // Parents: ensure a proper superclass at the front.
  std::vector<const Type *> Parents;
  for (SynType *P : ClsSyn->Parents) {
    const Type *PT = resolveType(P);
    if (!isa<ClassType>(PT)) {
      // An already-poisoned parent was diagnosed at its root cause.
      if (!PT->isError())
        error(P->Loc, "parent must be a class type");
      continue;
    }
    Parents.push_back(PT);
  }
  bool HasSuperclass =
      !Parents.empty() && !Parents.front()->classSymbol()->isTrait();
  if (!HasSuperclass)
    Parents.insert(Parents.begin(), Comp.syms().objectType());
  Cls->setParents(Parents);
  Cls->setInfo(thisTypeOf(Cls));

  // Constructor parameters become fields; collect ctor param types.
  std::vector<const Type *> CtorParams;
  std::vector<Symbol *> CaseFields;
  for (uint32_t I = 0; I < ClsSyn->NumParams; ++I) {
    SynNode *P = ClsSyn->Kids[I];
    const Type *PTy = resolveType(P->Ty);
    CtorParams.push_back(PTy);
    uint64_t FieldFlags = SymFlag::Field | SymFlag::Local;
    if (P->is(SynFlag::Var))
      FieldFlags |= SymFlag::Mutable;
    Symbol *Field = Comp.syms().makeTerm(P->N, Cls, FieldFlags, PTy);
    Field->setLoc(P->Loc);
    Cls->enterMember(Field);
    MemberSyms[P] = Field;
    if (Cls->is(SymFlag::Case))
      CaseFields.push_back(Field);
  }
  if (Cls->is(SymFlag::Case))
    Cls->setCaseFields(CaseFields);

  // The primary constructor.
  if (!Cls->isTrait()) {
    Symbol *Init = Comp.syms().makeTerm(
        Comp.syms().std().Init, Cls,
        SymFlag::Method | SymFlag::Constructor,
        Types.methodType(CtorParams, Types.unitType()));
    Cls->enterMember(Init);
  }

  // Member signatures. Anything that is not a val/def — nested classes,
  // the <superargs> stash, and SynError recovery nodes — is skipped, so
  // one unparseable member never stops its siblings from being declared.
  for (size_t I = ClsSyn->NumParams; I < ClsSyn->Kids.size(); ++I) {
    SynNode *M = ClsSyn->Kids[I];
    if (!M || (M->K != SynKind::ValDef && M->K != SynKind::DefDef))
      continue;
    completeMember(M, Cls);
  }
}

void Typer::completeMember(SynNode *M, ClassSymbol *Cls) {
  TypeContext &Types = Comp.types();
  uint64_t Flags = 0;
  if (M->is(SynFlag::Private))
    Flags |= SymFlag::Private;
  if (M->is(SynFlag::Override))
    Flags |= SymFlag::Override;
  if (M->is(SynFlag::Final))
    Flags |= SymFlag::Final;

  if (M->K == SynKind::ValDef) {
    if (M->is(SynFlag::Var))
      Flags |= SymFlag::Mutable;
    if (M->is(SynFlag::Lazy))
      Flags |= SymFlag::Lazy;
    const Type *Ty = nullptr;
    if (M->Ty) {
      Ty = resolveType(M->Ty);
    } else if (SynNode *Rhs = M->Kids[0]; Rhs && Rhs->K == SynKind::Lit) {
      // Cheap inference for literal-initialized members.
      switch (Rhs->Lit.kind()) {
      case Constant::Int:
        Ty = Types.intType();
        break;
      case Constant::Bool:
        Ty = Types.booleanType();
        break;
      case Constant::Double:
        Ty = Types.doubleType();
        break;
      case Constant::Str:
        Ty = Comp.syms().stringType();
        break;
      default:
        break;
      }
    }
    if (!Ty) {
      error(M->Loc, "class-level value " + M->N.str() +
                        " needs an explicit type");
      Ty = Types.anyType();
    }
    Symbol *Sym =
        Comp.syms().makeTerm(M->N, Cls, Flags | SymFlag::Field, Ty);
    Sym->setLoc(M->Loc);
    if (!M->Kids[0])
      Sym->setFlag(SymFlag::Abstract);
    Cls->enterMember(Sym);
    MemberSyms[M] = Sym;
    return;
  }

  assert(M->K == SynKind::DefDef && "unexpected member kind");
  Flags |= SymFlag::Method;
  Symbol *Sym = Comp.syms().makeTerm(M->N, Cls, Flags);
  Sym->setLoc(M->Loc);

  ScopeStack::Frame SigScope(Scopes);
  std::vector<Symbol *> TypeParams;
  for (Name TPName : M->TypeParamNames) {
    Symbol *TP = Comp.syms().makeTerm(TPName, Sym, SymFlag::TypeParam);
    TypeParams.push_back(TP);
    enterSym(Scopes, TP);
  }

  // Parameter types per list.
  std::vector<std::vector<const Type *>> Lists;
  size_t ParamIdx = 0;
  for (uint32_t Count : M->ParamListSizes) {
    std::vector<const Type *> ListTypes;
    for (uint32_t I = 0; I < Count; ++I) {
      SynNode *P = M->Kids[ParamIdx++];
      ListTypes.push_back(resolveType(P->Ty));
    }
    Lists.push_back(std::move(ListTypes));
  }

  const Type *Result = nullptr;
  if (M->Ty) {
    Result = resolveType(M->Ty);
  } else if (SynNode *Rhs = M->Kids.back(); Rhs && Rhs->K == SynKind::Lit) {
    switch (Rhs->Lit.kind()) {
    case Constant::Int:
      Result = Types.intType();
      break;
    case Constant::Bool:
      Result = Types.booleanType();
      break;
    case Constant::Double:
      Result = Types.doubleType();
      break;
    case Constant::Str:
      Result = Comp.syms().stringType();
      break;
    case Constant::Unit:
      Result = Types.unitType();
      break;
    default:
      break;
    }
  }
  if (!Result) {
    error(M->Loc, "method " + M->N.str() + " needs an explicit result type");
    Result = Types.anyType();
  }

  // Build the (possibly curried, possibly polymorphic) signature.
  const Type *Info = Result;
  for (auto It = Lists.rbegin(); It != Lists.rend(); ++It)
    Info = Types.methodType(*It, Info);
  if (Lists.empty())
    Info = Types.methodType({}, Info); // parameterless method
  if (!TypeParams.empty())
    Info = Types.polyType(TypeParams, Info);
  Sym->setInfo(Info);
  if (!M->Kids.back())
    Sym->setFlag(SymFlag::Abstract);
  Cls->enterMember(Sym);
  MemberSyms[M] = Sym;
}

//===----------------------------------------------------------------------===//
// Pass C: bodies
//===----------------------------------------------------------------------===//

std::vector<CompilationUnit> Typer::run(std::vector<ParsedUnit> &Parsed) {
  // Pass A over all units. Top-level SynError recovery nodes carry no
  // declaration; they are simply skipped.
  for (ParsedUnit &PU : Parsed)
    for (SynNode *Cls : PU.Unit.TopLevel)
      if (Cls && Cls->K == SynKind::ClassDef)
        declareClass(Cls, Comp.syms().rootPackage());
  // Pass B in declaration order.
  for (SynNode *Cls : AllClasses)
    completeClass(Cls);
  // Pass C per unit.
  std::vector<CompilationUnit> Units;
  for (ParsedUnit &PU : Parsed) {
    CompilationUnit Unit;
    Unit.FileName = PU.FileName;
    Unit.FileId = PU.FileId;
    Unit.Source = std::move(PU.Source);
    TreeList TopStats;
    for (SynNode *Cls : PU.Unit.TopLevel)
      if (Cls && Cls->K == SynKind::ClassDef)
        TopStats.push_back(typeClassBody(Cls));
    Unit.Root = Comp.trees().makePackageDef(
        SourceLoc{PU.FileId, 1, 1}, PU.Unit.PackageName, std::move(TopStats));
    Units.push_back(std::move(Unit));
  }
  Comp.stats().add("frontend.scopeProbes", Scopes.probes());
  return Units;
}

TreePtr Typer::typeClassBody(SynNode *ClsSyn) {
  ClassSymbol *Cls = ClassSyms.at(ClsSyn);
  TreeContext &Trees = Comp.trees();
  TypeContext &Types = Comp.types();

  ScopeStack::Frame ClsScope(Scopes, /*Barrier=*/true);
  for (Symbol *TP : Cls->typeParams())
    enterSym(Scopes, TP);
  for (size_t I = ClsSyn->NumParams; I < ClsSyn->Kids.size(); ++I) {
    SynNode *M = ClsSyn->Kids[I];
    if (M && M->K == SynKind::ClassDef) {
      if (M->is(SynFlag::Object))
        Scopes.enter(M->N, MemberSyms.at(M));
      else
        Scopes.enter(M->N, ClassSyms.at(M));
    }
  }

  TreeList Body;
  Symbol *InitSym = Cls->findDeclaredMember(Comp.syms().std().Init);

  // Primary constructor (classes only; traits have no <init>).
  if (InitSym) {
    ScopeStack::Frame CtorScope(Scopes);
    TreeList ParamDefs;
    std::vector<Symbol *> ParamSyms;
    const auto *InitMT = cast<MethodType>(InitSym->info());
    for (uint32_t I = 0; I < ClsSyn->NumParams; ++I) {
      SynNode *P = ClsSyn->Kids[I];
      Symbol *ParamSym = Comp.syms().makeTerm(
          P->N, InitSym, SymFlag::Param | SymFlag::Local,
          InitMT->params()[I]);
      ParamSym->setLoc(P->Loc);
      ParamSyms.push_back(ParamSym);
      enterSym(Scopes, ParamSym);
      ParamDefs.push_back(Trees.makeValDef(P->Loc, ParamSym, nullptr));
    }

    // Super-constructor call.
    BodyCtx CtorCtx{Cls, InitSym};
    TreeList CtorStats;
    ClassSymbol *SuperCls = Cls->superClass();
    if (SuperCls) {
      Symbol *SuperInit =
          SuperCls->findDeclaredMember(Comp.syms().std().Init);
      if (SuperInit) {
        TreeList SuperArgs;
        // Locate the <superargs> stash.
        for (size_t I = ClsSyn->NumParams; I < ClsSyn->Kids.size(); ++I) {
          SynNode *M = ClsSyn->Kids[I];
          if (M && M->K == SynKind::Apply &&
              M->N.text() == "<superargs>") {
            for (SynNode *A : M->Kids)
              SuperArgs.push_back(adapt(typedExpr(A, CtorCtx)));
            break;
          }
        }
        TreePtr SuperRef = Trees.makeSuper(
            ClsSyn->Loc, Cls, SuperCls, Types.classType(SuperCls));
        TreePtr SuperSel = Trees.makeSelect(ClsSyn->Loc, std::move(SuperRef),
                                            SuperInit, SuperInit->info());
        CtorStats.push_back(Trees.makeApply(ClsSyn->Loc, std::move(SuperSel),
                                            std::move(SuperArgs),
                                            Types.unitType()));
      }
    }
    TreePtr CtorRhs = Trees.makeBlock(
        ClsSyn->Loc, std::move(CtorStats),
        Trees.makeLiteral(ClsSyn->Loc, Constant::makeUnit(),
                          Types.unitType()));
    Body.push_back(Trees.makeDefDef(
        ClsSyn->Loc, InitSym, {ClsSyn->NumParams}, std::move(ParamDefs),
        std::move(CtorRhs)));

    // Field definitions for constructor parameters (initialized from the
    // ctor params; the Constructors phase moves these into <init>).
    for (uint32_t I = 0; I < ClsSyn->NumParams; ++I) {
      SynNode *P = ClsSyn->Kids[I];
      Symbol *Field = MemberSyms.at(P);
      TreePtr Init = Trees.makeIdent(P->Loc, ParamSyms[I],
                                     ParamSyms[I]->info());
      Body.push_back(Trees.makeValDef(P->Loc, Field, std::move(Init)));
    }
  }

  // Members. Only val/def/class members carry bodies; the <superargs>
  // stash was consumed above and SynError recovery nodes are skipped so
  // the siblings of a bad member still get typed.
  BodyCtx ClsCtx{Cls, InitSym};
  for (size_t I = ClsSyn->NumParams; I < ClsSyn->Kids.size(); ++I) {
    SynNode *M = ClsSyn->Kids[I];
    if (!M)
      continue;
    if (M->K == SynKind::ClassDef) {
      Body.push_back(typeClassBody(M));
      continue;
    }
    if (M->K != SynKind::ValDef && M->K != SynKind::DefDef)
      continue;
    Body.push_back(typeMemberDef(M, Cls, ClsCtx));
  }

  return Trees.makeClassDef(ClsSyn->Loc, Cls, std::move(Body));
}

TreePtr Typer::typeMemberDef(SynNode *M, ClassSymbol *Cls, BodyCtx &Ctx) {
  TreeContext &Trees = Comp.trees();
  TypeContext &Types = Comp.types();
  Symbol *Sym = MemberSyms.at(M);

  if (M->K == SynKind::ValDef) {
    TreePtr Rhs;
    if (M->Kids[0]) {
      Rhs = adapt(typedExpr(M->Kids[0], Ctx));
      if (!Types.isSubtype(Rhs->type(), Sym->info()))
        error(M->Loc, "initializer of " + M->N.str() + " has type " +
                          Rhs->type()->show() + ", expected " +
                          Sym->info()->show());
    }
    return Trees.makeValDef(M->Loc, Sym, std::move(Rhs));
  }

  assert(M->K == SynKind::DefDef);
  ScopeStack::Frame MethodScope(Scopes);
  const Type *Info = Sym->info();
  if (const auto *PT = dyn_cast<PolyType>(Info)) {
    for (Symbol *TP : PT->typeParams())
      enterSym(Scopes, TP);
    Info = PT->underlying();
  }

  // Create parameter symbols and ValDefs per list.
  TreeList ParamDefs;
  std::vector<uint32_t> ListSizes(M->ParamListSizes.begin(),
                                  M->ParamListSizes.end());
  size_t ParamIdx = 0;
  const Type *Walk = Info;
  for (uint32_t Count : ListSizes) {
    const auto *MT = cast<MethodType>(Walk);
    for (uint32_t I = 0; I < Count; ++I) {
      SynNode *P = M->Kids[ParamIdx++];
      Symbol *ParamSym = Comp.syms().makeTerm(
          P->N, Sym, SymFlag::Param | SymFlag::Local, MT->params()[I]);
      ParamSym->setLoc(P->Loc);
      enterSym(Scopes, ParamSym);
      ParamDefs.push_back(Trees.makeValDef(P->Loc, ParamSym, nullptr));
    }
    Walk = MT->result();
  }

  TreePtr Rhs;
  SynNode *RhsSyn = M->Kids.back();
  if (RhsSyn) {
    BodyCtx MethodCtx{Cls, Sym};
    Rhs = adapt(typedExpr(RhsSyn, MethodCtx));
    const Type *Expected = finalResultType(Sym->info());
    if (!Types.isSubtype(Rhs->type(), Expected))
      error(M->Loc, "body of " + M->N.str() + " has type " +
                        Rhs->type()->show() + ", expected " +
                        Expected->show());
  }
  return Trees.makeDefDef(M->Loc, Sym, std::move(ListSizes),
                          std::move(ParamDefs), std::move(Rhs));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

TreePtr Typer::adapt(TreePtr T) {
  if (!T)
    return T;
  const Type *Ty = T->type();
  if (!Ty)
    return T;
  // By-name parameter reference: the value, not the thunk.
  if (const auto *ET = dyn_cast<ExprType>(Ty))
    return Comp.trees().withType(T.get(), ET->result());
  // Repeated parameter reference: reads as an array inside the body.
  if (const auto *RT = dyn_cast<RepeatedType>(Ty))
    return Comp.trees().withType(T.get(),
                                 Comp.types().arrayType(RT->elem()));
  // Parameterless method in value position: takes its result type; the
  // FirstTransform miniphase materializes the empty Apply.
  if (const auto *MT = dyn_cast<MethodType>(Ty)) {
    if (MT->params().empty() && !isa<MethodType>(MT->result()))
      return Comp.trees().withType(T.get(), MT->result());
  }
  return T;
}

Symbol *Typer::lookupUnqualified(Name N, BodyCtx &Ctx, ClassSymbol **FoundIn) {
  *FoundIn = nullptr;
  if (Symbol *S = Scopes.lookup(N))
    return S;
  // Members of the enclosing classes, innermost first.
  for (Symbol *Walk = Ctx.Cls; Walk; Walk = Walk->owner()) {
    auto *Cls = dyn_cast<ClassSymbol>(Walk);
    if (!Cls)
      continue;
    if (Symbol *M = Cls->findMember(N)) {
      *FoundIn = Cls;
      return M;
    }
  }
  // Globals (classes and module values).
  if (Symbol *const *Global = Globals.find(N.ordinal()))
    return *Global;
  // Predef members (println & friends).
  if (Symbol *M = Comp.syms().predefModuleClass()->findDeclaredMember(N))
    return M;
  return nullptr;
}

TreePtr Typer::typedSelectOrRef(SynNode *E, BodyCtx &Ctx) {
  TreeContext &Trees = Comp.trees();
  if (E->K == SynKind::Ref) {
    ClassSymbol *FoundIn = nullptr;
    Symbol *Sym = lookupUnqualified(E->N, Ctx, &FoundIn);
    if (!Sym) {
      error(E->Loc, "not found: " + E->N.str());
      return errorTree(E->Loc);
    }
    if (Sym->isClass()) {
      error(E->Loc, E->N.str() + " is a class, not a value");
      return errorTree(E->Loc);
    }
    if (FoundIn) {
      // Member access through `this` (possibly an outer class's this;
      // ExplicitOuter rewires those).
      const Type *QualTy = thisTypeOf(FoundIn);
      TreePtr Qual = Trees.makeThis(E->Loc, FoundIn, QualTy);
      const Type *Info = Sym->info();
      if (const auto *QCT = dyn_cast<ClassType>(QualTy)) {
        Symbol *Ignored = nullptr;
        if (const Type *Subst = memberInfoIn(Comp.types(), QCT, E->N,
                                             Ignored))
          Info = Subst;
      }
      return Trees.makeSelect(E->Loc, std::move(Qual), Sym, Info);
    }
    if (Sym->owner() == Comp.syms().predefModuleClass()) {
      TreePtr Qual = Trees.makeIdent(E->Loc, Comp.syms().predefModule(),
                                     Comp.syms().predefModule()->info());
      return Trees.makeSelect(E->Loc, std::move(Qual), Sym, Sym->info());
    }
    return Trees.makeIdent(E->Loc, Sym, Sym->info());
  }

  assert(E->K == SynKind::Select);
  TreePtr Qual = adapt(typedExpr(E->Kids[0], Ctx));
  return selectMember(E->Loc, std::move(Qual), E->N, Ctx);
}

TreePtr Typer::selectMember(SourceLoc Loc, TreePtr Qual, Name N,
                            BodyCtx &Ctx) {
  TreeContext &Trees = Comp.trees();
  TypeContext &Types = Comp.types();
  SymbolTable &Syms = Comp.syms();
  const Type *QT = Qual->type();
  if (!QT)
    return errorTree(Loc);
  // Selection on an already-poisoned qualifier stays silent: the root
  // cause produced its diagnostic when the qualifier was typed.
  if (QT->isError())
    return errorTree(Loc);

  // isInstanceOf / asInstanceOf on any receiver.
  if (N == Syms.std().IsInstanceOf)
    return Trees.makeSelect(Loc, std::move(Qual), Syms.isInstanceOfMethod(),
                            Syms.isInstanceOfMethod()->info());
  if (N == Syms.std().AsInstanceOf)
    return Trees.makeSelect(Loc, std::move(Qual), Syms.asInstanceOfMethod(),
                            Syms.asInstanceOfMethod()->info());

  switch (QT->kind()) {
  case TypeKind::Class: {
    const auto *CT = cast<ClassType>(QT);
    Symbol *Found = nullptr;
    if (const Type *Info = memberInfoIn(Types, CT, N, Found))
      return Trees.makeSelect(Loc, std::move(Qual), Found, Info);
    error(Loc, "value " + N.str() + " is not a member of " + QT->show());
    return errorTree(Loc);
  }
  case TypeKind::Array: {
    const Type *Elem = cast<ArrayType>(QT)->elem();
    if (N == Syms.std().Apply)
      return Trees.makeSelect(Loc, std::move(Qual), Syms.arrayApply(),
                              Types.methodType({Types.intType()}, Elem));
    if (N == Syms.std().Update)
      return Trees.makeSelect(
          Loc, std::move(Qual), Syms.arrayUpdate(),
          Types.methodType({Types.intType(), Elem}, Types.unitType()));
    if (N == Syms.std().Length)
      return Trees.makeSelect(Loc, std::move(Qual), Syms.arrayLength(),
                              Types.methodType({}, Types.intType()));
    error(Loc, "value " + N.str() + " is not a member of " + QT->show());
    return errorTree(Loc);
  }
  case TypeKind::Function: {
    const auto *FT = cast<FunctionType>(QT);
    if (N == Syms.std().Apply) {
      ClassSymbol *FnCls =
          Syms.functionClass(static_cast<unsigned>(FT->params().size()));
      Symbol *ApplySym = FnCls->findDeclaredMember(Syms.std().Apply);
      return Trees.makeSelect(Loc, std::move(Qual), ApplySym,
                              Types.methodType(FT->params(), FT->result()));
    }
    error(Loc, "value " + N.str() + " is not a member of " + QT->show());
    return errorTree(Loc);
  }
  case TypeKind::Primitive: {
    const auto *PT = cast<PrimitiveType>(QT);
    if (Symbol *Op = Syms.primOp(PT->prim(), N))
      return Trees.makeSelect(Loc, std::move(Qual), Op, Op->info());
    // ==/!=/toString etc. fall back to the Object members (boxing at
    // runtime is implicit in the interpreter's value model).
    if (Symbol *M = Syms.objectClass()->findDeclaredMember(N))
      return Trees.makeSelect(Loc, std::move(Qual), M, M->info());
    error(Loc, "value " + N.str() + " is not a member of " + QT->show());
    return errorTree(Loc);
  }
  case TypeKind::Union: {
    // Selection on a union type: both sides must agree on the member's
    // signature. The Splitter miniphase later expands this into a
    // conditional (paper §6.2.2).
    const auto *UT = cast<UnionType>(QT);
    TreePtr LQ = Trees.withType(Qual.get(), UT->left());
    TreePtr LSel = selectMember(Loc, std::move(LQ), N, Ctx);
    TreePtr RQ = Trees.withType(Qual.get(), UT->right());
    TreePtr RSel = selectMember(Loc, std::move(RQ), N, Ctx);
    if (LSel->kind() != TreeKind::Select ||
        RSel->kind() != TreeKind::Select)
      return errorTree(Loc);
    if (LSel->type() != RSel->type()) {
      error(Loc, "member " + N.str() +
                     " has different signatures in the union branches");
      return errorTree(Loc);
    }
    return Trees.makeSelect(Loc, std::move(Qual),
                            cast<Select>(LSel.get())->sym(), LSel->type());
  }
  case TypeKind::Intersection: {
    // Selection on an intersection picks whichever side declares the
    // member (Dotty's CrossCastAnd normalization). Probe class-typed
    // sides without emitting diagnostics; only if neither side has the
    // member do we re-select on the left to produce the error message.
    const auto *IT = cast<IntersectionType>(QT);
    for (const Type *Side : {IT->left(), IT->right()}) {
      const auto *SCT = dyn_cast<ClassType>(Side);
      if (!SCT)
        continue;
      Symbol *Found = nullptr;
      if (const Type *Info = memberInfoIn(Types, SCT, N, Found))
        return Trees.makeSelect(Loc, std::move(Qual), Found, Info);
    }
    TreePtr LQ = Trees.withType(Qual.get(), IT->left());
    return selectMember(Loc, std::move(LQ), N, Ctx);
  }
  default:
    error(Loc, "cannot select " + N.str() + " on " + QT->show());
    return errorTree(Loc);
  }
}

bool Typer::unifyTypeParams(const Type *Declared, const Type *Actual,
                            const std::vector<Symbol *> &Params,
                            std::vector<const Type *> &Bindings) {
  if (!Declared || !Actual)
    return true;
  if (const auto *TPR = dyn_cast<TypeParamRef>(Declared)) {
    for (size_t I = 0; I < Params.size(); ++I) {
      if (Params[I] == TPR->param()) {
        if (!Bindings[I])
          Bindings[I] = Actual;
        return true;
      }
    }
    return true;
  }
  if (const auto *DC = dyn_cast<ClassType>(Declared)) {
    const auto *AC = dyn_cast<ClassType>(Actual);
    if (AC && DC->cls() == AC->cls() &&
        DC->args().size() == AC->args().size()) {
      for (size_t I = 0; I < DC->args().size(); ++I)
        unifyTypeParams(DC->args()[I], AC->args()[I], Params, Bindings);
    }
    return true;
  }
  if (const auto *DA = dyn_cast<ArrayType>(Declared)) {
    if (const auto *AA = dyn_cast<ArrayType>(Actual))
      unifyTypeParams(DA->elem(), AA->elem(), Params, Bindings);
    return true;
  }
  if (const auto *DF = dyn_cast<FunctionType>(Declared)) {
    if (const auto *AF = dyn_cast<FunctionType>(Actual)) {
      if (DF->params().size() == AF->params().size()) {
        for (size_t I = 0; I < DF->params().size(); ++I)
          unifyTypeParams(DF->params()[I], AF->params()[I], Params, Bindings);
        unifyTypeParams(DF->result(), AF->result(), Params, Bindings);
      }
    }
    return true;
  }
  if (const auto *DR = dyn_cast<RepeatedType>(Declared)) {
    unifyTypeParams(DR->elem(), Actual, Params, Bindings);
    return true;
  }
  if (const auto *DE = dyn_cast<ExprType>(Declared)) {
    unifyTypeParams(DE->result(), Actual, Params, Bindings);
    return true;
  }
  return true;
}

TreePtr Typer::applyCall(SourceLoc Loc, TreePtr Fun,
                         std::vector<const Type *> ExplicitTypeArgs,
                         size_t ArgBase, BodyCtx &Ctx) {
  TreeContext &Trees = Comp.trees();
  TypeContext &Types = Comp.types();
  SymbolTable &Syms = Comp.syms();

  // The caller typed the arguments into ArgScratch[ArgBase..]; this
  // function owns that region and truncates it on every exit path.
  const size_t NumArgs = ArgScratch.size() - ArgBase;
  auto Arg = [&](size_t I) -> TreePtr & { return ArgScratch[ArgBase + I]; };
  auto Bail = [&]() {
    ArgScratch.resize(ArgBase);
    return errorTree(Loc);
  };
  // Builds the final Apply straight from the scratch: the function is
  // appended and rotated to slot 0, then the contiguous [fun, args...]
  // region is moved into the node without an intermediate list.
  auto Finish = [&](TreePtr F, const Type *ResultTy) {
    ArgScratch.push_back(std::move(F));
    std::rotate(ArgScratch.begin() + ArgBase, ArgScratch.end() - 1,
                ArgScratch.end());
    TreePtr R = Trees.makeApply(Loc, ArgScratch.data() + ArgBase,
                                NumArgs + 1, ResultTy);
    ArgScratch.resize(ArgBase);
    return R;
  };

  const Type *FunTy = Fun->type();
  if (!FunTy)
    return Bail();
  // Calling an already-poisoned function bails silently; the arguments
  // were still typed (diagnosing their own problems) before we got here.
  if (FunTy->isError())
    return Bail();

  // Applying an array value indexes it: a(i) -> a.apply(i).
  if (isa<RepeatedType>(FunTy)) {
    Fun = adapt(std::move(Fun));
    FunTy = Fun->type();
  }
  if (isa<ArrayType>(FunTy)) {
    Fun = selectMember(Loc, std::move(Fun), Syms.std().Apply, Ctx);
    FunTy = Fun->type();
  }

  // Closures: calling a function value goes through FunctionN.apply.
  if (const auto *FT = dyn_cast<FunctionType>(FunTy)) {
    ClassSymbol *FnCls =
        Syms.functionClass(static_cast<unsigned>(FT->params().size()));
    Symbol *ApplySym = FnCls->findDeclaredMember(Syms.std().Apply);
    Fun = Trees.makeSelect(Loc, std::move(Fun), ApplySym,
                           Types.methodType(FT->params(), FT->result()));
    FunTy = Fun->type();
  }

  // Polymorphic methods: instantiate via explicit or inferred type args.
  if (const auto *PT = dyn_cast<PolyType>(FunTy)) {
    std::vector<const Type *> TypeArgs = std::move(ExplicitTypeArgs);
    if (TypeArgs.empty()) {
      std::vector<const Type *> Bindings(PT->typeParams().size(), nullptr);
      if (const auto *MT = dyn_cast<MethodType>(PT->underlying())) {
        size_t NDecl = MT->params().size();
        for (size_t I = 0; I < NumArgs; ++I) {
          const Type *Declared =
              I < NDecl ? MT->params()[I]
                        : (NDecl ? MT->params()[NDecl - 1] : nullptr);
          unifyTypeParams(Declared, Arg(I)->type(), PT->typeParams(),
                          Bindings);
        }
      }
      for (size_t I = 0; I < Bindings.size(); ++I) {
        if (!Bindings[I]) {
          error(Loc, "could not infer type argument " +
                         PT->typeParams()[I]->name().str() +
                         "; provide it explicitly");
          Bindings[I] = Types.anyType();
        }
      }
      TypeArgs = std::move(Bindings);
    }
    if (TypeArgs.size() != PT->typeParams().size()) {
      error(Loc, "wrong number of type arguments");
      return Bail();
    }
    const Type *Inst =
        Types.substitute(PT->underlying(), PT->typeParams(), TypeArgs);
    Fun = Trees.makeTypeApply(Loc, std::move(Fun), TypeArgs, Inst);
    FunTy = Inst;
  } else if (!ExplicitTypeArgs.empty()) {
    error(Loc, "type arguments applied to a monomorphic function");
  }

  const auto *MT = dyn_cast<MethodType>(FunTy);
  if (!MT) {
    error(Loc, "expression of type " + FunTy->show() + " is not callable");
    return Bail();
  }

  // Primitive operators: numeric promotion and the Boolean short-circuit
  // forms are handled by the caller; here we only compute result types.
  if (Fun->kind() == TreeKind::Select) {
    Symbol *Sym = cast<Select>(Fun.get())->sym();
    if (Syms.isPrimOp(Sym) && NumArgs <= 1) {
      const Type *QualTy = cast<Select>(Fun.get())->qual()->type();
      std::string_view Op = Sym->name().text();
      bool IsArith = Op == "+" || Op == "-" || Op == "*" || Op == "/" ||
                     Op == "%" || Op == "unary_-";
      const Type *ArgTy = NumArgs == 0 ? nullptr : Arg(0)->type();
      // Numeric arguments only (== / != against non-primitives reroute
      // through Object.== below).
      bool ArgNumericOk =
          !ArgTy || ArgTy->isPrim(PrimKind::Int) ||
          ArgTy->isPrim(PrimKind::Double) ||
          ArgTy->isPrim(PrimKind::Boolean) || ArgTy->isNothing() ||
          ArgTy->isError();
      if (!ArgNumericOk && (Op == "==" || Op == "!=")) {
        Symbol *ObjEq = Syms.objectClass()->findDeclaredMember(Sym->name());
        Fun = Trees.makeSelect(Loc, TreePtr(cast<Select>(Fun.get())->qual()),
                               ObjEq, ObjEq->info());
        return Finish(std::move(Fun), Types.booleanType());
      }
      // `1 + "s"` is string concatenation (Scala's any2stringadd): route
      // through String.+ so the whole expression types as String.
      if (!ArgNumericOk && Op == "+" && ArgTy == Syms.stringType()) {
        Symbol *Concat = Syms.stringClass()->findDeclaredMember(Sym->name());
        Fun = Trees.makeSelect(Loc, TreePtr(cast<Select>(Fun.get())->qual()),
                               Concat, Concat->info());
        return Finish(std::move(Fun), Syms.stringType());
      }
      if (!ArgNumericOk) {
        error(Loc, "operator " + Sym->name().str() +
                       " expects a numeric operand");
        return Bail();
      }
      const Type *Result;
      if (IsArith) {
        bool AnyDouble = QualTy->isPrim(PrimKind::Double) ||
                         (ArgTy && ArgTy->isPrim(PrimKind::Double));
        Result = AnyDouble ? Types.doubleType() : QualTy;
      } else if (Op == "unary_!") {
        Result = Types.booleanType();
      } else {
        Result = Types.booleanType(); // comparisons and equality
      }
      return Finish(std::move(Fun), Result);
    }
  }

  // Arity / conformance checking with vararg and by-name awareness.
  const auto &Params = MT->params();
  bool Vararg =
      !Params.empty() && isa<RepeatedType>(Params.back());
  size_t FixedCount = Vararg ? Params.size() - 1 : Params.size();
  if ((!Vararg && NumArgs != Params.size()) ||
      (Vararg && NumArgs < FixedCount)) {
    error(Loc, "wrong number of arguments");
    return Bail();
  }
  for (size_t I = 0; I < NumArgs; ++I) {
    const Type *Declared =
        I < FixedCount ? Params[I]
                       : cast<RepeatedType>(Params.back())->elem();
    const Type *Required = Declared->widenByName();
    if (!Types.isSubtype(Arg(I)->type(), Required))
      error(Loc, "argument " + std::to_string(I + 1) + " has type " +
                     Arg(I)->type()->show() + ", expected " +
                     Required->show());
  }
  return Finish(std::move(Fun), MT->result());
}

TreePtr Typer::typedApply(SynNode *E, BodyCtx &Ctx) {
  TreeContext &Trees = Comp.trees();
  TypeContext &Types = Comp.types();
  SynNode *FunSyn = E->Kids[0];
  // The argument list is a slice of the arena-owned kid span — no copy.
  SynNode *const *Args = E->Kids.begin() + 1;
  const size_t NumArgs = E->Kids.size() - 1;

  // Explicit type arguments?
  std::vector<const Type *> ExplicitTargs;
  SynNode *Head = FunSyn;
  if (FunSyn->K == SynKind::TypeApply) {
    Head = FunSyn->Kids[0];
    for (SynType *TA : FunSyn->TyArgs)
      ExplicitTargs.push_back(resolveType(TA));
  }

  // Array literal: Array(e1, ..., en).
  if (Head->K == SynKind::Ref && Head->N.text() == "Array") {
    size_t Base = ArgScratch.size();
    const Type *ElemTy =
        ExplicitTargs.empty() ? nullptr : ExplicitTargs[0];
    for (size_t I = 0; I < NumArgs; ++I) {
      ArgScratch.push_back(adapt(typedExpr(Args[I], Ctx)));
      ElemTy = ElemTy ? Types.lub(ElemTy, ArgScratch.back()->type())
                      : ArgScratch.back()->type();
    }
    if (!ElemTy)
      ElemTy = Types.anyType();
    TreePtr R = Trees.makeSeqLiteral(E->Loc, ArgScratch.data() + Base,
                                     NumArgs, ElemTy,
                                     Types.arrayType(ElemTy));
    ArgScratch.resize(Base);
    return R;
  }

  // Case-class construction without `new`.
  if (Head->K == SynKind::Ref) {
    ClassSymbol *FoundIn = nullptr;
    Symbol *Sym = lookupUnqualified(Head->N, Ctx, &FoundIn);
    if (Sym && Sym->isClass()) {
      auto *Cls = cast<ClassSymbol>(Sym);
      if (!Cls->is(SymFlag::Case)) {
        error(E->Loc, "class " + Head->N.str() +
                          " is not a case class; use new");
        return errorTree(E->Loc);
      }
      // Type arguments: explicit or inferred from the field types.
      size_t Base = ArgScratch.size();
      for (size_t I = 0; I < NumArgs; ++I)
        ArgScratch.push_back(adapt(typedExpr(Args[I], Ctx)));
      std::vector<const Type *> TypeArgs = ExplicitTargs;
      if (TypeArgs.empty() && !Cls->typeParams().empty()) {
        std::vector<const Type *> Bindings(Cls->typeParams().size(),
                                           nullptr);
        Symbol *Init = Cls->findDeclaredMember(Comp.syms().std().Init);
        const auto *InitMT = cast<MethodType>(Init->info());
        for (size_t I = 0;
             I < NumArgs && I < InitMT->params().size(); ++I)
          unifyTypeParams(InitMT->params()[I],
                          ArgScratch[Base + I]->type(),
                          Cls->typeParams(), Bindings);
        for (auto *&B : Bindings)
          if (!B)
            B = Types.anyType();
        TypeArgs = Bindings;
      }
      const Type *ClsTy = Types.classType(Cls, TypeArgs);
      // Check arity.
      Symbol *Init = Cls->findDeclaredMember(Comp.syms().std().Init);
      const auto *InitMT = cast<MethodType>(Types.substitute(
          Init->info(), Cls->typeParams(), TypeArgs));
      if (InitMT->params().size() != NumArgs)
        error(E->Loc, "wrong number of constructor arguments");
      TreePtr R =
          Trees.makeNew(E->Loc, ClsTy, ArgScratch.data() + Base, NumArgs);
      ArgScratch.resize(Base);
      return R;
    }
  }

  // Boolean short-circuit operators desugar to If right here.
  if (Head->K == SynKind::Select &&
      (Head->N.text() == "&&" || Head->N.text() == "||") &&
      NumArgs == 1) {
    TreePtr Lhs = adapt(typedExpr(Head->Kids[0], Ctx));
    if (Lhs->type() && Lhs->type()->isPrim(PrimKind::Boolean)) {
      TreePtr Rhs = adapt(typedExpr(Args[0], Ctx));
      TreePtr TrueLit = Trees.makeLiteral(E->Loc, Constant::makeBool(true),
                                          Types.booleanType());
      TreePtr FalseLit = Trees.makeLiteral(
          E->Loc, Constant::makeBool(false), Types.booleanType());
      if (Head->N.text() == "&&")
        return Trees.makeIf(E->Loc, std::move(Lhs), std::move(Rhs),
                            std::move(FalseLit), Types.booleanType());
      return Trees.makeIf(E->Loc, std::move(Lhs), std::move(TrueLit),
                          std::move(Rhs), Types.booleanType());
    }
  }

  // General call. The function is typed first (matching the historical
  // evaluation order), then the arguments land on the shared scratch.
  TreePtr Fun;
  if (Head->K == SynKind::Ref || Head->K == SynKind::Select)
    Fun = typedSelectOrRef(Head, Ctx);
  else
    Fun = typedExpr(Head, Ctx);
  size_t Base = ArgScratch.size();
  for (size_t I = 0; I < NumArgs; ++I)
    ArgScratch.push_back(adapt(typedExpr(Args[I], Ctx)));
  return applyCall(E->Loc, std::move(Fun), std::move(ExplicitTargs), Base,
                   Ctx);
}

TreePtr Typer::typeLocalDef(SynNode *Stat, BodyCtx &Ctx) {
  TreeContext &Trees = Comp.trees();
  TypeContext &Types = Comp.types();

  if (Stat->K == SynKind::ValDef) {
    TreePtr Rhs =
        Stat->Kids[0] ? adapt(typedExpr(Stat->Kids[0], Ctx)) : nullptr;
    const Type *Ty = nullptr;
    if (Stat->Ty) {
      Ty = resolveType(Stat->Ty);
      if (Rhs && !Types.isSubtype(Rhs->type(), Ty))
        error(Stat->Loc, "initializer has type " + Rhs->type()->show() +
                             ", expected " + Ty->show());
    } else if (Rhs) {
      Ty = Rhs->type();
    } else {
      error(Stat->Loc, "local value needs an initializer");
      Ty = Types.anyType();
    }
    uint64_t Flags = SymFlag::Local;
    if (Stat->is(SynFlag::Var))
      Flags |= SymFlag::Mutable;
    if (Stat->is(SynFlag::Lazy))
      Flags |= SymFlag::Lazy;
    Symbol *Sym = Comp.syms().makeTerm(Stat->N, Ctx.Method, Flags, Ty);
    Sym->setLoc(Stat->Loc);
    enterSym(Scopes, Sym);
    return Trees.makeValDef(Stat->Loc, Sym, std::move(Rhs));
  }

  assert(Stat->K == SynKind::DefDef && "unexpected local definition");
  // Local method: the symbol was entered by the block pre-scan.
  Symbol *Sym = MemberSyms.at(Stat);
  ScopeStack::Frame MethodScope(Scopes);
  const Type *Info = Sym->info();
  if (const auto *PT = dyn_cast<PolyType>(Info)) {
    for (Symbol *TP : PT->typeParams())
      enterSym(Scopes, TP);
    Info = PT->underlying();
  }
  TreeList ParamDefs;
  std::vector<uint32_t> ListSizes(Stat->ParamListSizes.begin(),
                                  Stat->ParamListSizes.end());
  size_t ParamIdx = 0;
  const Type *Walk = Info;
  for (uint32_t Count : ListSizes) {
    const auto *MT = cast<MethodType>(Walk);
    for (uint32_t I = 0; I < Count; ++I) {
      SynNode *P = Stat->Kids[ParamIdx++];
      Symbol *ParamSym = Comp.syms().makeTerm(
          P->N, Sym, SymFlag::Param | SymFlag::Local, MT->params()[I]);
      enterSym(Scopes, ParamSym);
      ParamDefs.push_back(Trees.makeValDef(P->Loc, ParamSym, nullptr));
    }
    Walk = MT->result();
  }
  TreePtr Rhs;
  if (SynNode *RhsSyn = Stat->Kids.back()) {
    BodyCtx LocalCtx{Ctx.Cls, Sym};
    Rhs = adapt(typedExpr(RhsSyn, LocalCtx));
    const Type *Expected = finalResultType(Sym->info());
    if (!Types.isSubtype(Rhs->type(), Expected))
      error(Stat->Loc, "body has type " + Rhs->type()->show() +
                           ", expected " + Expected->show());
  } else {
    error(Stat->Loc, "local method needs a body");
  }
  return Trees.makeDefDef(Stat->Loc, Sym, std::move(ListSizes),
                          std::move(ParamDefs), std::move(Rhs));
}

TreePtr Typer::typedBlock(SynNode *B, BodyCtx &Ctx) {
  TreeContext &Trees = Comp.trees();
  TypeContext &Types = Comp.types();
  ScopeStack::Frame BlockScope(Scopes);
  BodyCtx BlockCtx{Ctx.Cls, Ctx.Method};

  // Pre-scan: local methods are mutually visible.
  for (SynNode *Stat : B->Kids) {
    if (!Stat || Stat->K != SynKind::DefDef)
      continue;
    Symbol *Sym = Comp.syms().makeTerm(
        Stat->N, Ctx.Method, SymFlag::Method | SymFlag::Local);
    Sym->setLoc(Stat->Loc);
    // Signature (reuses the member-completion logic inline). The
    // signature frame closes before the method is bound into the block
    // scope so its type parameters don't leak.
    const Type *Info = nullptr;
    {
      ScopeStack::Frame SigScope(Scopes);
      std::vector<Symbol *> TypeParams;
      for (Name TPName : Stat->TypeParamNames) {
        Symbol *TP = Comp.syms().makeTerm(TPName, Sym, SymFlag::TypeParam);
        TypeParams.push_back(TP);
        enterSym(Scopes, TP);
      }
      std::vector<std::vector<const Type *>> Lists;
      size_t ParamIdx = 0;
      for (uint32_t Count : Stat->ParamListSizes) {
        std::vector<const Type *> ListTypes;
        for (uint32_t I = 0; I < Count; ++I)
          ListTypes.push_back(resolveType(Stat->Kids[ParamIdx++]->Ty));
        Lists.push_back(std::move(ListTypes));
      }
      const Type *Result = nullptr;
      if (Stat->Ty)
        Result = resolveType(Stat->Ty);
      else if (SynNode *Rhs = Stat->Kids.back();
               Rhs && Rhs->K == SynKind::Lit) {
        switch (Rhs->Lit.kind()) {
        case Constant::Int:
          Result = Types.intType();
          break;
        case Constant::Bool:
          Result = Types.booleanType();
          break;
        case Constant::Double:
          Result = Types.doubleType();
          break;
        case Constant::Str:
          Result = Comp.syms().stringType();
          break;
        default:
          break;
        }
      }
      if (!Result) {
        error(Stat->Loc, "local method " + Stat->N.str() +
                             " needs an explicit result type");
        Result = Types.anyType();
      }
      Info = Result;
      for (auto It = Lists.rbegin(); It != Lists.rend(); ++It)
        Info = Types.methodType(*It, Info);
      if (Lists.empty())
        Info = Types.methodType({}, Info);
      if (!TypeParams.empty())
        Info = Types.polyType(TypeParams, Info);
    }
    Sym->setInfo(Info);
    MemberSyms[Stat] = Sym;
    enterSym(Scopes, Sym);
  }

  TreeList Stats;
  TreePtr Value;
  for (size_t I = 0; I < B->Kids.size(); ++I) {
    SynNode *Stat = B->Kids[I];
    if (!Stat)
      continue;
    bool Last = I + 1 == B->Kids.size();
    TreePtr T;
    if (Stat->K == SynKind::ValDef || Stat->K == SynKind::DefDef)
      T = typeLocalDef(Stat, BlockCtx);
    else
      T = adapt(typedExpr(Stat, BlockCtx));
    if (Last && T->type()) {
      Value = std::move(T);
    } else {
      Stats.push_back(std::move(T));
    }
  }
  if (!Value)
    Value = Trees.makeLiteral(B->Loc, Constant::makeUnit(),
                              Types.unitType());
  return Trees.makeBlock(B->Loc, std::move(Stats), std::move(Value));
}

TreePtr Typer::typedPattern(SynNode *P, const Type *Expected, BodyCtx &Ctx) {
  TreeContext &Trees = Comp.trees();
  TypeContext &Types = Comp.types();
  switch (P->K) {
  case SynKind::Lit: {
    const Type *Ty = Types.anyType();
    switch (P->Lit.kind()) {
    case Constant::Int:
      Ty = Types.intType();
      break;
    case Constant::Bool:
      Ty = Types.booleanType();
      break;
    case Constant::Double:
      Ty = Types.doubleType();
      break;
    case Constant::Str:
      Ty = Comp.syms().stringType();
      break;
    case Constant::Null:
      Ty = Types.nullType();
      break;
    default:
      break;
    }
    return Trees.makeLiteral(P->Loc, P->Lit, Ty);
  }
  case SynKind::PatWild: {
    Symbol *Wild = Comp.syms().makeTerm(Comp.syms().std().Wildcard,
                                        Ctx.Method,
                                        SymFlag::Synthetic | SymFlag::Local,
                                        Expected);
    return Trees.makeIdent(P->Loc, Wild, Expected);
  }
  case SynKind::PatTyped: {
    const Type *TestTy = resolveType(P->Ty);
    Symbol *Wild = Comp.syms().makeTerm(Comp.syms().std().Wildcard,
                                        Ctx.Method,
                                        SymFlag::Synthetic | SymFlag::Local,
                                        TestTy);
    TreePtr Inner = Trees.makeIdent(P->Loc, Wild, TestTy);
    return Trees.makeTyped(P->Loc, std::move(Inner), TestTy);
  }
  case SynKind::PatBind: {
    TreePtr Inner;
    const Type *BindTy = Expected;
    if (P->Kids[0]) {
      Inner = typedPattern(P->Kids[0], Expected, Ctx);
      BindTy = Inner->type();
    } else {
      Symbol *Wild = Comp.syms().makeTerm(
          Comp.syms().std().Wildcard, Ctx.Method,
          SymFlag::Synthetic | SymFlag::Local, Expected);
      Inner = Trees.makeIdent(P->Loc, Wild, Expected);
    }
    Symbol *Sym = Comp.syms().makeTerm(P->N, Ctx.Method, SymFlag::Local,
                                       BindTy);
    Sym->setLoc(P->Loc);
    enterSym(Scopes, Sym);
    return Trees.makeBind(P->Loc, Sym, std::move(Inner));
  }
  case SynKind::PatCtor: {
    ClassSymbol *Cls = nullptr;
    if (Symbol *S = Scopes.lookup(P->N))
      Cls = dyn_cast<ClassSymbol>(S);
    if (!Cls) {
      if (Symbol *const *Global = Globals.find(P->N.ordinal()))
        Cls = dyn_cast<ClassSymbol>(*Global);
    }
    if (!Cls || !Cls->is(SymFlag::Case)) {
      error(P->Loc, P->N.str() + " is not a case class");
      return errorTree(P->Loc);
    }
    // Determine type arguments from the scrutinee type when possible.
    std::vector<const Type *> TypeArgs;
    if (const auto *ECT = dyn_cast_or_null<ClassType>(Expected)) {
      if (ECT->cls() == Cls)
        TypeArgs = ECT->args();
    }
    if (TypeArgs.size() != Cls->typeParams().size())
      TypeArgs.assign(Cls->typeParams().size(), Types.anyType());
    if (P->Kids.size() != Cls->caseFields().size()) {
      error(P->Loc, "wrong number of sub-patterns for " + P->N.str());
      return errorTree(P->Loc);
    }
    TreeList Pats;
    for (size_t I = 0; I < P->Kids.size(); ++I) {
      const Type *FieldTy = Types.substitute(
          Cls->caseFields()[I]->info(), Cls->typeParams(), TypeArgs);
      Pats.push_back(typedPattern(P->Kids[I], FieldTy, Ctx));
    }
    return Trees.makeUnApply(P->Loc, Cls, std::move(Pats),
                             Types.classType(Cls, TypeArgs));
  }
  case SynKind::PatAlt: {
    TreeList Alts;
    for (SynNode *A : P->Kids)
      Alts.push_back(typedPattern(A, Expected, Ctx));
    return Trees.makeAlternative(P->Loc, std::move(Alts), Expected);
  }
  default:
    error(P->Loc, "unsupported pattern");
    return errorTree(P->Loc);
  }
}

TreePtr Typer::typedExpr(SynNode *E, BodyCtx &Ctx) {
  struct DepthGuard {
    explicit DepthGuard(unsigned &D) : D(D) { ++D; }
    ~DepthGuard() { --D; }
    unsigned &D;
  } Guard(ExprDepth);
  if (ExprDepth > MaxExprDepth) {
    if (!ExprDepthReported) {
      ExprDepthReported = true;
      error(E->Loc, "expression nesting too deep; giving up on this "
                    "expression");
    }
    return errorTree(E->Loc);
  }
  TreeContext &Trees = Comp.trees();
  TypeContext &Types = Comp.types();
  switch (E->K) {
  case SynKind::Lit: {
    const Type *Ty;
    switch (E->Lit.kind()) {
    case Constant::Int:
      Ty = Types.intType();
      break;
    case Constant::Bool:
      Ty = Types.booleanType();
      break;
    case Constant::Double:
      Ty = Types.doubleType();
      break;
    case Constant::Str:
      Ty = Comp.syms().stringType();
      break;
    case Constant::Null:
      Ty = Types.nullType();
      break;
    case Constant::Unit:
    default:
      Ty = Types.unitType();
      break;
    }
    return Trees.makeLiteral(E->Loc, E->Lit, Ty);
  }
  case SynKind::Ref:
  case SynKind::Select:
    return typedSelectOrRef(E, Ctx);
  case SynKind::ThisRef:
    if (!Ctx.Cls) {
      error(E->Loc, "'this' outside of a class");
      return errorTree(E->Loc);
    }
    return Trees.makeThis(E->Loc, Ctx.Cls, thisTypeOf(Ctx.Cls));
  case SynKind::SuperSel: {
    if (!Ctx.Cls) {
      error(E->Loc, "'super' outside of a class");
      return errorTree(E->Loc);
    }
    for (const Type *P : Ctx.Cls->parents()) {
      ClassSymbol *PCls = P->classSymbol();
      if (!PCls)
        continue;
      if (Symbol *M = PCls->findMember(E->N)) {
        TreePtr Sup = Trees.makeSuper(E->Loc, Ctx.Cls, PCls,
                                      Types.classType(PCls));
        return Trees.makeSelect(E->Loc, std::move(Sup), M, M->info());
      }
    }
    error(E->Loc, "super member " + E->N.str() + " not found");
    return errorTree(E->Loc);
  }
  case SynKind::Apply:
    return typedApply(E, Ctx);
  case SynKind::TypeApply: {
    // Bare type application in value position, e.g. x.isInstanceOf[T] or
    // classOf[T].
    std::vector<const Type *> Targs;
    for (SynType *TA : E->TyArgs)
      Targs.push_back(resolveType(TA));
    SynNode *FunSyn = E->Kids[0];
    TreePtr Fun;
    if (FunSyn->K == SynKind::Ref || FunSyn->K == SynKind::Select)
      Fun = typedSelectOrRef(FunSyn, Ctx);
    else
      Fun = typedExpr(FunSyn, Ctx);
    const auto *PT = dyn_cast_or_null<PolyType>(Fun->type());
    if (!PT) {
      if (!Fun->type() || !Fun->type()->isError())
        error(E->Loc, "type arguments applied to a non-generic expression");
      return errorTree(E->Loc);
    }
    if (PT->typeParams().size() != Targs.size()) {
      error(E->Loc, "wrong number of type arguments");
      return errorTree(E->Loc);
    }
    const Type *Inst =
        Types.substitute(PT->underlying(), PT->typeParams(), Targs);
    return adapt(Trees.makeTypeApply(E->Loc, std::move(Fun), Targs, Inst));
  }
  case SynKind::New: {
    // `new Array[T](n)` is the array-allocation intrinsic.
    if (E->Ty->K == SynType::Applied && E->Ty->N.text() == "Array") {
      const Type *Elem = resolveType(E->Ty->Args[0]);
      if (E->Kids.size() != 1) {
        error(E->Loc, "new Array[T] expects one length argument");
        return errorTree(E->Loc);
      }
      TreePtr Len = adapt(typedExpr(E->Kids[0], Ctx));
      SymbolTable &Syms = Comp.syms();
      TreePtr RuntimeRef = Trees.makeIdent(E->Loc, Syms.runtimeModule(),
                                           Syms.runtimeModule()->info());
      TreePtr Sel =
          Trees.makeSelect(E->Loc, std::move(RuntimeRef),
                           Syms.newArrayMethod(),
                           Syms.newArrayMethod()->info());
      const auto *PT = cast<PolyType>(Syms.newArrayMethod()->info());
      const Type *Inst =
          Types.substitute(PT->underlying(), PT->typeParams(), {Elem});
      TreePtr TApp = Trees.makeTypeApply(E->Loc, std::move(Sel), {Elem},
                                         Inst);
      TreeList CallArgs;
      CallArgs.push_back(std::move(Len));
      return Trees.makeApply(E->Loc, std::move(TApp), std::move(CallArgs),
                             Types.arrayType(Elem));
    }
    const Type *ClsTy = resolveType(E->Ty);
    if (ClsTy->isError())
      return errorTree(E->Loc); // "unknown type" was already reported
    const auto *CT = dyn_cast<ClassType>(ClsTy);
    if (!CT) {
      error(E->Loc, "cannot instantiate " + ClsTy->show());
      return errorTree(E->Loc);
    }
    if (CT->cls()->isTrait() || CT->cls()->is(SymFlag::Abstract)) {
      error(E->Loc, "cannot instantiate abstract class or trait");
      return errorTree(E->Loc);
    }
    Symbol *Init = CT->cls()->findDeclaredMember(Comp.syms().std().Init);
    if (!Init) {
      error(E->Loc, "class has no constructor");
      return errorTree(E->Loc);
    }
    const auto *InitMT = cast<MethodType>(Types.substitute(
        Init->info(), CT->cls()->typeParams(), CT->args()));
    size_t Base = ArgScratch.size();
    for (SynNode *A : E->Kids)
      ArgScratch.push_back(adapt(typedExpr(A, Ctx)));
    // `new Throwable` defaults its message, matching the JVM's
    // message-less Throwable() constructor.
    if (ArgScratch.size() == Base &&
        CT->cls() == Comp.syms().throwableClass() &&
        InitMT->params().size() == 1)
      ArgScratch.push_back(Trees.makeLiteral(
          E->Loc, Constant::makeString(Comp.names().intern("")),
          Comp.syms().stringType()));
    size_t NumCtorArgs = ArgScratch.size() - Base;
    if (NumCtorArgs != InitMT->params().size()) {
      error(E->Loc, "wrong number of constructor arguments");
    } else {
      for (size_t I = 0; I < NumCtorArgs; ++I)
        if (!Types.isSubtype(ArgScratch[Base + I]->type(),
                             InitMT->params()[I]))
          error(E->Loc, "constructor argument " + std::to_string(I + 1) +
                            " has type " +
                            ArgScratch[Base + I]->type()->show() +
                            ", expected " + InitMT->params()[I]->show());
    }
    TreePtr R =
        Trees.makeNew(E->Loc, ClsTy, ArgScratch.data() + Base, NumCtorArgs);
    ArgScratch.resize(Base);
    return R;
  }
  case SynKind::If: {
    TreePtr Cond = adapt(typedExpr(E->Kids[0], Ctx));
    if (Cond->type() && !Cond->type()->isPrim(PrimKind::Boolean) &&
        !Cond->type()->isNothing() && !Cond->type()->isError())
      error(E->Loc, "condition must be Boolean, found " +
                        Cond->type()->show());
    TreePtr Then = adapt(typedExpr(E->Kids[1], Ctx));
    TreePtr Else =
        E->Kids[2] ? adapt(typedExpr(E->Kids[2], Ctx))
                   : TreePtr(Trees.makeLiteral(E->Loc, Constant::makeUnit(),
                                               Types.unitType()));
    const Type *Ty = Types.lub(Then->type(), Else->type());
    return Trees.makeIf(E->Loc, std::move(Cond), std::move(Then),
                        std::move(Else), Ty);
  }
  case SynKind::While: {
    TreePtr Cond = adapt(typedExpr(E->Kids[0], Ctx));
    TreePtr Body = adapt(typedExpr(E->Kids[1], Ctx));
    return Trees.makeWhileDo(E->Loc, std::move(Cond), std::move(Body),
                             Types.unitType());
  }
  case SynKind::Try: {
    TreePtr Body = adapt(typedExpr(E->Kids[0], Ctx));
    TreePtr Fin;
    if (E->Kids[1])
      Fin = adapt(typedExpr(E->Kids[1], Ctx));
    const Type *Ty = Body->type();
    TreeList Catches;
    for (size_t I = 2; I < E->Kids.size(); ++I) {
      SynNode *C = E->Kids[I];
      ScopeStack::Frame CaseScope(Scopes);
      BodyCtx CaseCtx{Ctx.Cls, Ctx.Method};
      TreePtr Pat =
          typedPattern(C->Kids[0], Comp.syms().throwableType(), CaseCtx);
      TreePtr Guard;
      if (C->Kids[1]) {
        Guard = adapt(typedExpr(C->Kids[1], CaseCtx));
      }
      TreePtr CBody = typedBlock(C->Kids[2], CaseCtx);
      Ty = Types.lub(Ty, CBody->type());
      Catches.push_back(Trees.makeCaseDef(C->Loc, std::move(Pat),
                                          std::move(Guard),
                                          std::move(CBody)));
    }
    return Trees.makeTry(E->Loc, std::move(Body), std::move(Catches),
                         std::move(Fin), Ty);
  }
  case SynKind::Throw: {
    TreePtr Ex = adapt(typedExpr(E->Kids[0], Ctx));
    if (Ex->type() &&
        !Types.isSubtype(Ex->type(), Comp.syms().throwableType()))
      error(E->Loc, "throw expects a Throwable, found " +
                        Ex->type()->show());
    return Trees.makeThrow(E->Loc, std::move(Ex), Types.nothingType());
  }
  case SynKind::Return: {
    if (!Ctx.Method) {
      error(E->Loc, "return outside of a method");
      return errorTree(E->Loc);
    }
    TreePtr Val;
    if (E->Kids[0])
      Val = adapt(typedExpr(E->Kids[0], Ctx));
    const Type *Expected = finalResultType(Ctx.Method->info());
    const Type *Actual = Val ? Val->type() : Types.unitType();
    if (Expected && !Types.isSubtype(Actual, Expected))
      error(E->Loc, "return value has type " + Actual->show() +
                        ", expected " + Expected->show());
    return Trees.makeReturn(E->Loc, std::move(Val), Ctx.Method,
                            Types.nothingType());
  }
  case SynKind::Match: {
    TreePtr Sel = adapt(typedExpr(E->Kids[0], Ctx));
    const Type *SelTy = Sel->type();
    const Type *Ty = nullptr;
    TreeList Cases;
    for (size_t I = 1; I < E->Kids.size(); ++I) {
      SynNode *C = E->Kids[I];
      ScopeStack::Frame CaseScope(Scopes);
      BodyCtx CaseCtx{Ctx.Cls, Ctx.Method};
      TreePtr Pat = typedPattern(C->Kids[0], SelTy, CaseCtx);
      TreePtr Guard;
      if (C->Kids[1]) {
        Guard = adapt(typedExpr(C->Kids[1], CaseCtx));
        if (Guard->type() && !Guard->type()->isPrim(PrimKind::Boolean) &&
            !Guard->type()->isError())
          error(C->Loc, "guard must be Boolean");
      }
      TreePtr Body = typedBlock(C->Kids[2], CaseCtx);
      Ty = Ty ? Types.lub(Ty, Body->type()) : Body->type();
      Cases.push_back(Trees.makeCaseDef(C->Loc, std::move(Pat),
                                        std::move(Guard), std::move(Body)));
    }
    if (!Ty)
      Ty = Types.unitType();
    return Trees.makeMatch(E->Loc, std::move(Sel), std::move(Cases), Ty);
  }
  case SynKind::Lambda: {
    // Param types resolve in the enclosing scope (a lambda's own params
    // never shadow names in their annotations), so resolve them all
    // before the lambda frame opens.
    std::vector<const Type *> ParamTys;
    for (size_t I = 0; I + 1 < E->Kids.size(); ++I)
      ParamTys.push_back(resolveType(E->Kids[I]->Ty));
    ScopeStack::Frame LambdaScope(Scopes);
    BodyCtx LambdaCtx{Ctx.Cls, Ctx.Method};
    TreeList Params;
    for (size_t I = 0; I + 1 < E->Kids.size(); ++I) {
      SynNode *P = E->Kids[I];
      Symbol *Sym = Comp.syms().makeTerm(
          P->N, Ctx.Method, SymFlag::Param | SymFlag::Local, ParamTys[I]);
      Sym->setLoc(P->Loc);
      enterSym(Scopes, Sym);
      Params.push_back(Trees.makeValDef(P->Loc, Sym, nullptr));
    }
    TreePtr Body = adapt(typedExpr(E->Kids.back(), LambdaCtx));
    const Type *Ty = Types.functionType(ParamTys, Body->type());
    return Trees.makeClosure(E->Loc, std::move(Params), std::move(Body),
                             Ty);
  }
  case SynKind::Block:
    return typedBlock(E, Ctx);
  case SynKind::Error:
    // Parser recovery node: the parser already diagnosed it.
    return errorTree(E->Loc);
  case SynKind::Assign: {
    SynNode *Lhs = E->Kids[0];
    // Array update sugar: a(i) = v.
    if (Lhs->K == SynKind::Apply) {
      TreePtr Arr = adapt(typedExpr(Lhs->Kids[0], Ctx));
      if (Arr->type() && isa<ArrayType>(Arr->type())) {
        TreePtr Upd = selectMember(E->Loc, std::move(Arr),
                                   Comp.syms().std().Update, Ctx);
        // Index arguments plus the assigned value, typed straight onto
        // the shared scratch (no per-call argument vector).
        size_t Base = ArgScratch.size();
        for (size_t I = 1; I < Lhs->Kids.size(); ++I)
          ArgScratch.push_back(adapt(typedExpr(Lhs->Kids[I], Ctx)));
        ArgScratch.push_back(adapt(typedExpr(E->Kids[1], Ctx)));
        return applyCall(E->Loc, std::move(Upd), {}, Base, Ctx);
      }
      error(E->Loc, "invalid assignment target");
      return errorTree(E->Loc);
    }
    TreePtr LhsTree;
    if (Lhs->K == SynKind::Ref || Lhs->K == SynKind::Select)
      LhsTree = typedSelectOrRef(Lhs, Ctx);
    else {
      error(E->Loc, "invalid assignment target");
      return errorTree(E->Loc);
    }
    Symbol *Target = nullptr;
    if (auto *Id = dyn_cast<Ident>(LhsTree.get()))
      Target = Id->sym();
    else if (auto *Sel = dyn_cast<Select>(LhsTree.get()))
      Target = Sel->sym();
    if (Target && !Target->is(SymFlag::Mutable))
      error(E->Loc, "reassignment to val " + Target->name().str());
    TreePtr Rhs = adapt(typedExpr(E->Kids[1], Ctx));
    if (LhsTree->type() && Rhs->type() &&
        !Types.isSubtype(Rhs->type(), LhsTree->type()))
      error(E->Loc, "assignment of " + Rhs->type()->show() + " to " +
                        LhsTree->type()->show());
    return Trees.makeAssign(E->Loc, std::move(LhsTree), std::move(Rhs),
                            Types.unitType());
  }
  default:
    error(E->Loc, "unsupported expression");
    return errorTree(E->Loc);
  }
}
