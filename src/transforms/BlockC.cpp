//===----------------------------------------------------------------------===//
///
/// \file
/// Fusion block C: Mixin, LazyVals, Memoize, NonLocalReturns,
/// CapturedVars.
///
//===----------------------------------------------------------------------===//

#include "transforms/Phases.h"

#include "ast/TreeUtils.h"
#include "transforms/TransformUtils.h"
#include "transforms/TreeClone.h"

#include <functional>

using namespace mpc;

//===----------------------------------------------------------------------===//
// Mixin
//===----------------------------------------------------------------------===//

MixinPhase::MixinPhase()
    : MiniPhase("Mixin", "copies concrete trait members into classes") {
  declareTransforms({TreeKind::ClassDef});
  // Rule 3 (paper §6.1): trait bodies must have been fully transformed by
  // the accessor-introducing group before any class copies them.
  addRunsAfterGroupsOf("Getters");
}

/// Collects trait ancestors, most-derived first.
static void collectTraits(ClassSymbol *Cls,
                          std::vector<ClassSymbol *> &Out) {
  for (const Type *P : Cls->parents()) {
    ClassSymbol *PCls = P->classSymbol();
    if (!PCls)
      continue;
    if (PCls->isTrait() &&
        std::find(Out.begin(), Out.end(), PCls) == Out.end())
      Out.push_back(PCls);
    collectTraits(PCls, Out);
  }
}

TreePtr MixinPhase::transformClassDef(ClassDef *T, PhaseRunContext &Ctx) {
  ClassSymbol *Cls = T->sym();
  if (Cls->isTrait())
    return TreePtr(T);
  std::vector<ClassSymbol *> Traits;
  collectTraits(Cls, Traits);
  if (Traits.empty())
    return TreePtr(T);

  TreeList Body = T->kids();
  bool Added = false;
  for (ClassSymbol *Trait : Traits) {
    for (Symbol *M : Trait->members()) {
      if (!M->isMethod() || M->is(SymFlag::Abstract) ||
          M->is(SymFlag::Constructor) || M->is(SymFlag::Builtin))
        continue;
      // Skip if the class (or a class ancestor, or an earlier trait copy)
      // already provides this member.
      if (Symbol *Existing = Cls->findDeclaredMember(M->name())) {
        (void)Existing;
        continue;
      }
      auto *Def = dyn_cast_or_null<DefDef>(M->defTree());
      if (!Def || !Def->rhs())
        continue;
      // Clone the trait method into the class under a fresh symbol.
      Symbol *Copy = Ctx.syms().makeTerm(
          M->name(), Cls, (M->flags() | SymFlag::Synthetic), M->info());
      SymbolMap Subst;
      Subst[M] = Copy;
      TreePtr Cloned = cloneTree(Ctx.Comp, Def, Subst, Copy);
      Cls->enterMember(Copy);
      Body.push_back(std::move(Cloned));
      Added = true;
    }
  }
  if (!Added)
    return TreePtr(T);
  return Ctx.trees().makeClassDef(T->loc(), Cls, std::move(Body));
}

//===----------------------------------------------------------------------===//
// LazyVals
//===----------------------------------------------------------------------===//

LazyValsPhase::LazyValsPhase()
    : MiniPhase("LazyVals", "expands lazy vals into flag + storage") {
  declareTransforms({TreeKind::ClassDef});
  addRunsAfter("Mixin");
}

TreePtr LazyValsPhase::transformClassDef(ClassDef *T, PhaseRunContext &Ctx) {
  ClassSymbol *Cls = T->sym();
  if (Cls->isTrait())
    return TreePtr(T); // expanded in the implementing classes
  TreeContext &Trees = Ctx.trees();
  TypeContext &Types = Ctx.types();

  TreeList Body;
  bool Changed = false;
  for (const TreePtr &Member : T->kids()) {
    auto *Def = dyn_cast_or_null<DefDef>(Member.get());
    Symbol *Sym = Def ? Def->sym() : nullptr;
    if (!Def || !Sym || !Sym->is(SymFlag::Lazy) ||
        !Sym->is(SymFlag::Accessor) || !Def->rhs()) {
      Body.push_back(Member);
      continue;
    }
    Changed = true;
    SourceLoc Loc = Def->loc();
    const Type *ValueTy = cast<MethodType>(Sym->info())->result();

    Symbol *Storage = Ctx.syms().makeTerm(
        Ctx.syms().freshName(Sym->name().str() + "$lzy"), Cls,
        SymFlag::Field | SymFlag::Private | SymFlag::Synthetic |
            SymFlag::Mutable,
        ValueTy);
    Symbol *Flag = Ctx.syms().makeTerm(
        Ctx.syms().freshName(Sym->name().str() + "$flag"), Cls,
        SymFlag::Field | SymFlag::Private | SymFlag::Synthetic |
            SymFlag::Mutable,
        Types.booleanType());
    Cls->enterMember(Storage);
    Cls->enterMember(Flag);

    auto SelfField = [&](Symbol *F) {
      return Trees.makeSelect(Loc, makeSelfRef(Ctx, Loc, Cls), F,
                              F->info());
    };
    // if (!flag) { storage = rhs; flag = true }; storage
    Symbol *Not = Ctx.syms().primOp(PrimKind::Boolean,
                                    Ctx.Comp.names().intern("unary_!"));
    TreePtr NotFlag = makeMemberCall(Ctx, Loc, SelfField(Flag), Not,
                                     Not->info(), {});
    TreeList InitStats;
    InitStats.push_back(Trees.makeAssign(Loc, SelfField(Storage),
                                         TreePtr(Def->rhs()),
                                         Types.unitType()));
    InitStats.push_back(Trees.makeAssign(
        Loc, SelfField(Flag),
        Trees.makeLiteral(Loc, Constant::makeBool(true),
                          Types.booleanType()),
        Types.unitType()));
    TreePtr InitBlock = Trees.makeBlock(Loc, std::move(InitStats),
                                        makeUnitLit(Ctx, Loc));
    TreePtr Guard =
        Trees.makeIf(Loc, std::move(NotFlag), std::move(InitBlock),
                     makeUnitLit(Ctx, Loc), Types.unitType());
    TreeList GetterStats;
    GetterStats.push_back(std::move(Guard));
    TreePtr NewRhs = Trees.makeBlock(Loc, std::move(GetterStats),
                                     SelfField(Storage));

    // The accessor becomes a plain method (Memoize must not touch it).
    Sym->clearFlag(SymFlag::Lazy | SymFlag::Accessor);
    Body.push_back(Trees.makeValDef(Loc, Storage, nullptr));
    Body.push_back(Trees.makeValDef(Loc, Flag, nullptr));
    Body.push_back(Trees.makeDefDef(Loc, Sym, Def->paramListSizes(), {},
                                    std::move(NewRhs)));
  }
  if (!Changed)
    return TreePtr(T);
  return Trees.makeClassDef(T->loc(), Cls, std::move(Body));
}

bool LazyValsPhase::checkPostCondition(const Tree *T,
                                       CompilerContext &Comp) const {
  (void)Comp;
  // No lazy accessors survive in classes (traits keep them as templates
  // for Mixin, which runs before us).
  if (const auto *DD = dyn_cast<DefDef>(T)) {
    Symbol *S = DD->sym();
    if (S->is(SymFlag::Lazy) && S->is(SymFlag::Accessor) &&
        S->owner()->isClass() &&
        !cast<ClassSymbol>(S->owner())->isTrait())
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Memoize
//===----------------------------------------------------------------------===//

MemoizePhase::MemoizePhase()
    : MiniPhase("Memoize", "adds backing fields to getters") {
  declareTransforms({TreeKind::ClassDef});
  addRunsAfter("LazyVals");
}

TreePtr MemoizePhase::transformClassDef(ClassDef *T, PhaseRunContext &Ctx) {
  ClassSymbol *Cls = T->sym();
  if (Cls->isTrait())
    return TreePtr(T);
  TreeContext &Trees = Ctx.trees();

  TreeList Body;
  bool Changed = false;
  for (const TreePtr &Member : T->kids()) {
    auto *Def = dyn_cast_or_null<DefDef>(Member.get());
    Symbol *Sym = Def ? Def->sym() : nullptr;
    if (!Def || !Sym || !Sym->is(SymFlag::Accessor) ||
        Sym->is(SymFlag::Lazy) || !Def->rhs()) {
      Body.push_back(Member);
      continue;
    }
    Changed = true;
    SourceLoc Loc = Def->loc();
    const Type *ValueTy = cast<MethodType>(Sym->info())->result();
    Symbol *Field = Ctx.syms().makeTerm(
        Ctx.syms().freshName(Sym->name().str()), Cls,
        SymFlag::Field | SymFlag::Private | SymFlag::Synthetic, ValueTy);
    Cls->enterMember(Field);
    // Field keeps the initializer (Constructors moves it to <init>);
    // the getter just reads the field.
    Body.push_back(Trees.makeValDef(Loc, Field, TreePtr(Def->rhs())));
    TreePtr Read = Trees.makeSelect(Loc, makeSelfRef(Ctx, Loc, Cls), Field,
                                    ValueTy);
    Body.push_back(Trees.makeDefDef(Loc, Sym, Def->paramListSizes(), {},
                                    std::move(Read)));
  }
  if (!Changed)
    return TreePtr(T);
  return Trees.makeClassDef(T->loc(), Cls, std::move(Body));
}

//===----------------------------------------------------------------------===//
// NonLocalReturns
//===----------------------------------------------------------------------===//

NonLocalReturnsPhase::NonLocalReturnsPhase()
    : MiniPhase("NonLocalReturns",
                "expands returns from within closures") {
  // The Return hook must fire when the traversal reaches the node itself:
  // a later fused phase (FunctionValues) rewrites Closure nodes, so a
  // DefDef-level scan would find the closure bodies already moved away —
  // the §6.1 rule-2 trap this phase originally fell into.
  declareTransforms({TreeKind::Return, TreeKind::DefDef});
  declarePrepares({TreeKind::Closure, TreeKind::DefDef});
}

void NonLocalReturnsPhase::prepareForUnit(PhaseRunContext &Ctx) {
  (void)Ctx;
  ClosureDepth = 0;
  MethodFrames.clear();
  NeedsCatch.clear();
}

void NonLocalReturnsPhase::prepareForClosure(Closure *T,
                                             PhaseRunContext &Ctx) {
  (void)T;
  (void)Ctx;
  ++ClosureDepth;
}

void NonLocalReturnsPhase::leaveClosure(Closure *T, PhaseRunContext &Ctx) {
  (void)T;
  (void)Ctx;
  --ClosureDepth;
}

void NonLocalReturnsPhase::prepareForDefDef(DefDef *T,
                                            PhaseRunContext &Ctx) {
  (void)Ctx;
  MethodFrames.push_back({T->sym(), ClosureDepth});
}

void NonLocalReturnsPhase::leaveDefDef(DefDef *T, PhaseRunContext &Ctx) {
  (void)T;
  (void)Ctx;
  MethodFrames.pop_back();
}

bool NonLocalReturnsPhase::crossesClosure(const Symbol *Target) const {
  // A return is non-local iff a closure was entered after its target
  // method: a return to a def defined INSIDE the closure is still local.
  for (auto It = MethodFrames.rbegin(); It != MethodFrames.rend(); ++It)
    if (It->first == Target)
      return It->second < ClosureDepth;
  return ClosureDepth > 0; // target not on the stack: be conservative
}

TreePtr NonLocalReturnsPhase::transformReturn(Return *T,
                                              PhaseRunContext &Ctx) {
  if (!crossesClosure(T->fromMethod()))
    return TreePtr(T);
  NeedsCatch.insert(T->fromMethod());
  TreePtr Value = T->expr() ? TreePtr(T->expr())
                            : makeUnitLit(Ctx, T->loc());
  const Type *NlrTy =
      Ctx.types().classType(Ctx.syms().nonLocalReturnClass());
  TreeList Args;
  Args.push_back(std::move(Value));
  TreePtr Exc = Ctx.trees().makeNew(T->loc(), NlrTy, std::move(Args));
  return Ctx.trees().makeThrow(T->loc(), std::move(Exc),
                               Ctx.types().nothingType());
}

bool NonLocalReturnsPhase::checkPostCondition(const Tree *T,
                                              CompilerContext &Comp) const {
  (void)Comp;
  const auto *Cl = dyn_cast<Closure>(T);
  if (!Cl)
    return true;
  // Every Return inside a closure body must target a def defined within
  // that same body.
  std::set<const Symbol *> Inner;
  forEachSubtree(const_cast<Tree *>(T), [&](Tree *Sub) {
    if (auto *DD = dyn_cast<DefDef>(Sub))
      Inner.insert(DD->sym());
  });
  bool Ok = true;
  forEachSubtree(const_cast<Tree *>(T), [&](Tree *Sub) {
    if (auto *R = dyn_cast<Return>(Sub))
      if (!Inner.count(R->fromMethod()))
        Ok = false;
  });
  return Ok;
}

TreePtr NonLocalReturnsPhase::transformDefDef(DefDef *T,
                                              PhaseRunContext &Ctx) {
  if (!T->rhs() || !NeedsCatch.count(T->sym()))
    return TreePtr(T);
  NeedsCatch.erase(T->sym());
  TreePtr NewBody = TreePtr(T->rhs());

  // Wrap the body: try { body } catch { case e: NonLocalReturnControl =>
  // e.value.asInstanceOf[R] } — built in the lowered (post-patmat) form.
  TreeContext &Trees = Ctx.trees();
  TypeContext &Types = Ctx.types();
  SourceLoc Loc = T->loc();
  ClassSymbol *NlrCls = Ctx.syms().nonLocalReturnClass();
  const Type *NlrTy = Types.classType(NlrCls);
  const Type *ResultTy = NewBody->type();

  Symbol *Exc = Ctx.syms().makeTerm(
      Ctx.syms().freshName("nlr"), T->sym(),
      SymFlag::Local | SymFlag::Synthetic, NlrTy);
  Symbol *ValueField = NlrCls->findDeclaredMember(Ctx.syms().std().Value);
  TreePtr Read = Trees.makeSelect(
      Loc, Trees.makeIdent(Loc, Exc, NlrTy), ValueField,
      ValueField->info());
  TreePtr CastRead = Trees.makeTyped(Loc, std::move(Read), ResultTy);
  // The catch pattern: e @ (_: NonLocalReturnControl). Non-matching
  // throwables rethrow implicitly (interpreter semantics of Try cases).
  Symbol *Wild = Ctx.syms().makeTerm(Ctx.syms().std().Wildcard, T->sym(),
                                     SymFlag::Synthetic | SymFlag::Local,
                                     NlrTy);
  TreePtr Pat = Trees.makeBind(
      Loc, Exc,
      Trees.makeTyped(Loc, Trees.makeIdent(Loc, Wild, NlrTy), NlrTy));
  TreePtr Handler =
      Trees.makeCaseDef(Loc, std::move(Pat), nullptr, std::move(CastRead));
  TreeList Catches;
  Catches.push_back(std::move(Handler));
  TreePtr Wrapped = Trees.makeTry(Loc, std::move(NewBody),
                                  std::move(Catches), nullptr, ResultTy);

  TreeList Kids = T->kids();
  Kids.back() = std::move(Wrapped);
  return Trees.withNewChildren(T, std::move(Kids));
}

//===----------------------------------------------------------------------===//
// CapturedVars
//===----------------------------------------------------------------------===//

CapturedVarsPhase::CapturedVarsPhase()
    : MiniPhase("CapturedVars",
                "boxes vars captured by closures into Ref cells") {
  declareTransforms({TreeKind::Ident, TreeKind::ValDef});
}

void CapturedVarsPhase::prepareForUnit(PhaseRunContext &Ctx) {
  Boxed.clear();
  // Which mutable locals are referenced from inside a closure that does
  // not define them? Walk with a closure-nesting counter.
  std::map<Symbol *, unsigned> DefDepth;
  std::function<void(Tree *, unsigned)> Walk = [&](Tree *T,
                                                   unsigned Depth) {
    if (!T)
      return;
    if (auto *VD = dyn_cast<ValDef>(T)) {
      Symbol *S = VD->sym();
      if (S->is(SymFlag::Local) && S->is(SymFlag::Mutable) &&
          !S->is(SymFlag::Field))
        DefDepth[S] = Depth;
    }
    if (auto *Id = dyn_cast<Ident>(T)) {
      auto It = DefDepth.find(Id->sym());
      if (It != DefDepth.end() && It->second != Depth)
        Boxed.insert(Id->sym());
    }
    unsigned ChildDepth = isa<Closure>(T) ? Depth + 1 : Depth;
    for (const TreePtr &K : T->kids())
      Walk(K.get(), ChildDepth);
  };
  Walk(Ctx.Unit.Root.get(), 0);
}

TreePtr CapturedVarsPhase::transformIdent(Ident *T, PhaseRunContext &Ctx) {
  Symbol *Sym = T->sym();
  if (!Boxed.count(Sym))
    return TreePtr(T);
  // x  ->  x.elem  (x now holds a Ref box).
  const Type *ValueTy =
      Sym->is(SymFlag::Boxed)
          ? cast<ClassType>(Sym->info())
                ->cls()
                ->findDeclaredMember(Ctx.syms().std().Elem)
                ->info()
          : T->type();
  ClassSymbol *RefCls = Ctx.syms().refClassFor(ValueTy);
  const Type *RefTy = Ctx.types().classType(RefCls);
  Symbol *Elem = RefCls->findDeclaredMember(Ctx.syms().std().Elem);
  TreePtr Ref = Ctx.trees().makeIdent(T->loc(), Sym, RefTy);
  return Ctx.trees().makeSelect(T->loc(), std::move(Ref), Elem, ValueTy);
}

TreePtr CapturedVarsPhase::transformValDef(ValDef *T, PhaseRunContext &Ctx) {
  Symbol *Sym = T->sym();
  if (!Boxed.count(Sym) || Sym->is(SymFlag::Boxed))
    return TreePtr(T);
  const Type *ValueTy = Sym->info();
  ClassSymbol *RefCls = Ctx.syms().refClassFor(ValueTy);
  const Type *RefTy = Ctx.types().classType(RefCls);
  Sym->setInfo(RefTy);
  Sym->setFlag(SymFlag::Boxed);
  Sym->clearFlag(SymFlag::Mutable); // the binding itself is now stable
  TreeList Args;
  if (T->rhs())
    Args.push_back(TreePtr(T->rhs()));
  else
    Args.push_back(makeUnitLit(Ctx, T->loc()));
  TreePtr Box = Ctx.trees().makeNew(T->loc(), RefTy, std::move(Args));
  return Ctx.trees().makeValDef(T->loc(), Sym, std::move(Box));
}

TreePtr CapturedVarsPhase::transformAssign(Assign *T, PhaseRunContext &Ctx) {
  // Reads and writes are both covered by transformIdent (the lhs Ident
  // becomes a Select of `elem`, which Assign stores through).
  (void)Ctx;
  return TreePtr(T);
}
