//===----------------------------------------------------------------------===//
///
/// \file
/// Deep tree cloning with symbol substitution. Used by phases that move or
/// duplicate code (Mixin copies trait members, FunctionValues turns
/// closures into classes, LambdaLift moves local methods): every local
/// definition inside the cloned tree gets a fresh symbol so the copy never
/// aliases the original's locals.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_TRANSFORMS_TREECLONE_H
#define MPC_TRANSFORMS_TREECLONE_H

#include "core/CompilerContext.h"

#include <unordered_map>

namespace mpc {

/// Symbol replacement map for cloning.
using SymbolMap = std::unordered_map<Symbol *, Symbol *>;

/// Whole-tree replacements for identifier references (the replacement
/// subtree is shared across occurrences; trees are immutable DAGs).
using IdentMap = std::unordered_map<Symbol *, TreePtr>;

/// Deep-copies \p T. Symbol occurrences found in \p Subst are replaced;
/// Ident nodes whose symbol is in \p Idents are replaced by the mapped
/// tree. Local definitions (ValDef/DefDef/Bind/Labeled) whose symbols are
/// NOT in \p Subst get fresh clones (added to \p Subst), with \p NewOwner
/// as the owner for method-less locals. `this` nodes of \p ThisFrom are
/// replaced by \p ThisReplacement when the latter is non-null.
TreePtr cloneTree(CompilerContext &Comp, Tree *T, SymbolMap &Subst,
                  Symbol *NewOwner, ClassSymbol *ThisFrom = nullptr,
                  TreePtr ThisReplacement = nullptr,
                  const IdentMap *Idents = nullptr);

/// Collects the free local value symbols of \p T: referenced symbols with
/// the Local flag (params, locals) that are not defined within \p T.
/// Returns them in first-use order. `this` references to classes in
/// \p OuterThis (when non-null) are reported via \p UsesThis.
std::vector<Symbol *> freeLocals(Tree *T, bool *UsesThis = nullptr);

} // namespace mpc

#endif // MPC_TRANSFORMS_TREECLONE_H
