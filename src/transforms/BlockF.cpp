//===----------------------------------------------------------------------===//
///
/// \file
/// Fusion block F: CollectEntryPoints, FlattenBlocks, LabelDefs.
///
//===----------------------------------------------------------------------===//

#include "transforms/Phases.h"

#include "ast/TreeUtils.h"

using namespace mpc;

//===----------------------------------------------------------------------===//
// CollectEntryPoints
//===----------------------------------------------------------------------===//

CollectEntryPointsPhase::CollectEntryPointsPhase()
    : MiniPhase("CollectEntryPoints", "finds classes with main methods") {
  declareTransforms({TreeKind::DefDef});
  // Entry points register with global backend state and read final
  // ownership, so scope repair must have finished the whole unit.
  addRunsAfterGroupsOf("RestoreScopes");
}

TreePtr CollectEntryPointsPhase::transformDefDef(DefDef *T,
                                                 PhaseRunContext &Ctx) {
  Symbol *Sym = T->sym();
  if (Sym->name() != Ctx.syms().std().Main || !Sym->owner() ||
      !Sym->owner()->is(SymFlag::ModuleClass))
    return TreePtr(T);
  const auto *MT = dyn_cast_or_null<MethodType>(Sym->info());
  if (!MT || MT->params().size() != 1 || !MT->result()->isUnit())
    return TreePtr(T);
  if (!isa<ArrayType>(MT->params()[0]))
    return TreePtr(T);
  if (!Sym->is(SymFlag::EntryPoint)) {
    Sym->setFlag(SymFlag::EntryPoint);
    Entries.push_back(Sym);
  }
  return TreePtr(T);
}

//===----------------------------------------------------------------------===//
// FlattenBlocks
//===----------------------------------------------------------------------===//

FlattenBlocksPhase::FlattenBlocksPhase()
    : MiniPhase("FlattenBlocks",
                "cleanup: merges nested blocks, drops empty ones") {
  declareTransforms({TreeKind::Block});
}

TreePtr FlattenBlocksPhase::transformBlock(Block *T, PhaseRunContext &Ctx) {
  // {} -> (); { e } -> e; { stats; { stats2; e } } -> { stats; stats2; e }
  if (T->numStats() == 0)
    return TreePtr(T->expr());
  bool NeedsWork = isa<Block>(T->expr());
  for (unsigned I = 0; I < T->numStats() && !NeedsWork; ++I)
    if (isa<Block>(T->stat(I)) || isa<Literal>(T->stat(I)))
      NeedsWork = true;
  if (!NeedsWork)
    return TreePtr(T);

  TreeList Stats;
  auto Append = [&](Tree *Stat) {
    // Pure statements are dropped; nested statement blocks are inlined.
    if (isa<Literal>(Stat))
      return;
    if (auto *Inner = dyn_cast<Block>(Stat)) {
      for (unsigned K = 0; K < Inner->numStats(); ++K)
        Stats.push_back(TreePtr(Inner->stat(K)));
      if (!isa<Literal>(Inner->expr()))
        Stats.push_back(TreePtr(Inner->expr()));
      return;
    }
    Stats.push_back(TreePtr(Stat));
  };
  for (unsigned I = 0; I < T->numStats(); ++I)
    Append(T->stat(I));

  TreePtr Expr;
  if (auto *Inner = dyn_cast<Block>(T->expr())) {
    for (unsigned K = 0; K < Inner->numStats(); ++K)
      Stats.push_back(TreePtr(Inner->stat(K)));
    Expr = TreePtr(Inner->expr());
  } else {
    Expr = TreePtr(T->expr());
  }
  if (Stats.empty())
    return Expr;
  return Ctx.trees().makeBlock(T->loc(), std::move(Stats), std::move(Expr));
}

//===----------------------------------------------------------------------===//
// LabelDefs
//===----------------------------------------------------------------------===//

LabelDefsPhase::LabelDefsPhase()
    : MiniPhase("LabelDefs",
                "verifies label/jump structure for the backend") {
  declareTransforms({TreeKind::Goto});
  declarePrepares({TreeKind::Labeled});
}

void LabelDefsPhase::prepareForLabeled(Labeled *T, PhaseRunContext &Ctx) {
  (void)Ctx;
  LabelStack.push_back(T->label());
}
void LabelDefsPhase::leaveLabeled(Labeled *T, PhaseRunContext &Ctx) {
  (void)T;
  (void)Ctx;
  LabelStack.pop_back();
}

TreePtr LabelDefsPhase::transformGoto(Goto *T, PhaseRunContext &Ctx) {
  bool Enclosing = false;
  for (Symbol *L : LabelStack)
    if (L == T->label())
      Enclosing = true;
  if (!Enclosing)
    Ctx.Comp.diags().error(T->loc(),
                           "jump to non-enclosing label " +
                               T->label()->name().str());
  return TreePtr(T);
}

bool LabelDefsPhase::checkPostCondition(const Tree *T,
                                        CompilerContext &Comp) const {
  (void)Comp;
  // Every Goto inside this subtree targets an enclosing Labeled of the
  // same subtree when the subtree is a whole method body; checked
  // structurally at the Labeled level.
  if (const auto *L = dyn_cast<Labeled>(T))
    return L->body() != nullptr;
  return true;
}
