//===----------------------------------------------------------------------===//
///
/// \file
/// Declarations of every transformation phase of the MiniScala pipeline —
/// the analogue of the paper's Table 2. Phases are grouped into fusion
/// blocks (A..F) separated by the Erasure megaphase; see StandardPlan.cpp
/// for the assembled pipeline and the ordering constraints.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_TRANSFORMS_PHASES_H
#define MPC_TRANSFORMS_PHASES_H

#include "core/Phase.h"

#include <map>
#include <set>
#include <vector>

namespace mpc {

//===--- Block A: normalization --------------------------------------------===//

/// Override/abstract-member checks; also warns on vars in traits. Check-only
/// miniphase (all transforms are identity), mirroring Dotty's RefChecks.
class RefChecksPhase : public MiniPhase {
public:
  RefChecksPhase();
  TreePtr transformClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
};

/// Canonical form: materializes empty argument lists of parameterless
/// method uses, normalizes paren-less method definitions, and folds
/// constant If conditions (paper §2.1's refchecks example).
class FirstTransformPhase : public MiniPhase {
public:
  FirstTransformPhase();
  TreePtr transformIdent(Ident *T, PhaseRunContext &Ctx) override;
  TreePtr transformSelect(Select *T, PhaseRunContext &Ctx) override;
  TreePtr transformTypeApply(TypeApply *T, PhaseRunContext &Ctx) override;
  TreePtr transformDefDef(DefDef *T, PhaseRunContext &Ctx) override;
  TreePtr transformIf(If *T, PhaseRunContext &Ctx) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;
};

/// Flattens multiple parameter lists (paper §2.1's uncurry).
class UncurryPhase : public MiniPhase {
public:
  UncurryPhase();
  TreePtr transformDefDef(DefDef *T, PhaseRunContext &Ctx) override;
  TreePtr transformApply(Apply *T, PhaseRunContext &Ctx) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;
};

/// Rewrites vararg parameters and call sites (Dotty's ElimRepeated).
class ElimRepeatedPhase : public MiniPhase {
public:
  ElimRepeatedPhase();
  TreePtr transformDefDef(DefDef *T, PhaseRunContext &Ctx) override;
  TreePtr transformApply(Apply *T, PhaseRunContext &Ctx) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;
};

/// Expands Predef.classOf calls into class constants.
class ClassOfPhase : public MiniPhase {
public:
  ClassOfPhase();
  TreePtr transformApply(Apply *T, PhaseRunContext &Ctx) override;
};

/// Lifts try expressions that would execute on a non-empty stack into
/// local methods (paper §2.1/§4.1 — the flagship prepare user).
class LiftTryPhase : public MiniPhase {
public:
  LiftTryPhase();
  // Expression-context tracking via prepares/leaves.
  void prepareForApply(Apply *T, PhaseRunContext &Ctx) override;
  void leaveApply(Apply *T, PhaseRunContext &Ctx) override;
  void prepareForNew(New *T, PhaseRunContext &Ctx) override;
  void leaveNew(New *T, PhaseRunContext &Ctx) override;
  void prepareForAssign(Assign *T, PhaseRunContext &Ctx) override;
  void leaveAssign(Assign *T, PhaseRunContext &Ctx) override;
  void prepareForSelect(Select *T, PhaseRunContext &Ctx) override;
  void leaveSelect(Select *T, PhaseRunContext &Ctx) override;
  void prepareForSeqLiteral(SeqLiteral *T, PhaseRunContext &Ctx) override;
  void leaveSeqLiteral(SeqLiteral *T, PhaseRunContext &Ctx) override;
  void prepareForThrow(Throw *T, PhaseRunContext &Ctx) override;
  void leaveThrow(Throw *T, PhaseRunContext &Ctx) override;
  void prepareForDefDef(DefDef *T, PhaseRunContext &Ctx) override;
  void leaveDefDef(DefDef *T, PhaseRunContext &Ctx) override;
  void prepareForClosure(Closure *T, PhaseRunContext &Ctx) override;
  void leaveClosure(Closure *T, PhaseRunContext &Ctx) override;
  TreePtr transformTry(Try *T, PhaseRunContext &Ctx) override;
  void prepareForUnit(PhaseRunContext &Ctx) override;

  /// Exposed for tests: current expression-nesting depth.
  int exprDepth() const { return Frames.empty() ? 0 : Frames.back().Depth; }

private:
  struct Frame {
    Symbol *Method;
    int Depth;
  };
  std::vector<Frame> Frames;
};

/// Rewrites self-recursive tail calls into jumps (Dotty's TailRec).
class TailRecPhase : public MiniPhase {
public:
  TailRecPhase();
  TreePtr transformDefDef(DefDef *T, PhaseRunContext &Ctx) override;

  uint64_t rewrittenMethods() const { return NumRewritten; }

private:
  uint64_t NumRewritten = 0;
};

//===--- Block B: pattern matching and friends -----------------------------===//

/// Compiles Match trees into tests, casts and conditionals. Requires the
/// groups of TailRec to have finished (paper §6.3).
class PatternMatcherPhase : public MiniPhase {
public:
  PatternMatcherPhase();
  void prepareForDefDef(DefDef *T, PhaseRunContext &Ctx) override;
  void leaveDefDef(DefDef *T, PhaseRunContext &Ctx) override;
  TreePtr transformMatch(Match *T, PhaseRunContext &Ctx) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;

private:
  std::vector<Symbol *> MethodStack;
};

/// Routes universal equality through Runtime.equals (Dotty's
/// InterceptedMethods handles ==, getClass, ...).
class InterceptedMethodsPhase : public MiniPhase {
public:
  InterceptedMethodsPhase();
  TreePtr transformApply(Apply *T, PhaseRunContext &Ctx) override;
};

/// Expands member selections on union-typed receivers into conditionals
/// (paper §6.2.2); establishes Erasure's precondition.
class SplitterPhase : public MiniPhase {
public:
  SplitterPhase();
  void prepareForDefDef(DefDef *T, PhaseRunContext &Ctx) override;
  void leaveDefDef(DefDef *T, PhaseRunContext &Ctx) override;
  TreePtr transformApply(Apply *T, PhaseRunContext &Ctx) override;
  TreePtr transformSelect(Select *T, PhaseRunContext &Ctx) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;

private:
  std::vector<Symbol *> MethodStack;
};

/// Expands by-name parameters and arguments into Function0 thunks.
class ElimByNamePhase : public MiniPhase {
public:
  ElimByNamePhase();
  TreePtr transformIdent(Ident *T, PhaseRunContext &Ctx) override;
  TreePtr transformApply(Apply *T, PhaseRunContext &Ctx) override;
  TreePtr transformDefDef(DefDef *T, PhaseRunContext &Ctx) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;
};

/// Replaces non-private immutable class-level vals with getter defs; the
/// fields are reintroduced by Memoize (Dotty's Getters).
class GettersPhase : public MiniPhase {
public:
  GettersPhase();
  TreePtr transformValDef(ValDef *T, PhaseRunContext &Ctx) override;
  TreePtr transformSelect(Select *T, PhaseRunContext &Ctx) override;

  /// True if \p S is (or will be) converted by this phase.
  static bool isGetterCandidate(const Symbol *S);
};

/// Gives nested classes an $outer field/parameter and rewires outer-this
/// references (Dotty's ExplicitOuter).
class ExplicitOuterPhase : public MiniPhase {
public:
  ExplicitOuterPhase();
  void prepareForClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
  void leaveClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
  TreePtr transformThis(This *T, PhaseRunContext &Ctx) override;
  TreePtr transformNew(New *T, PhaseRunContext &Ctx) override;
  TreePtr transformClassDef(ClassDef *T, PhaseRunContext &Ctx) override;

  /// True if instances of \p Cls carry an outer pointer.
  static bool needsOuter(const ClassSymbol *Cls);

private:
  Symbol *outerFieldOf(ClassSymbol *Cls, PhaseRunContext &Ctx);
  std::vector<ClassSymbol *> ClassStack;
  std::map<ClassSymbol *, Symbol *> OuterFields;
};

//===--- Erasure (a megaphase, like in Dotty's Table 2) --------------------===//

/// Erases generics, unions/intersections, function and by-name types to
/// the runtime model; rewrites all node types and symbol infos, inserting
/// casts where the static type was refined. Violates fusion rules 2 and 3
/// (paper §6.2.2), hence a phase of its own.
class ErasurePhase : public Phase {
public:
  ErasurePhase();
  void runOnUnit(CompilationUnit &Unit, CompilerContext &Comp) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;

  /// The type-erasure function (exposed for tests).
  static const Type *eraseType(const Type *T, CompilerContext &Comp);

private:
  TreePtr eraseTree(Tree *T, CompilerContext &Comp);
  void eraseSymbolInfos(CompilerContext &Comp);
  bool SymbolsErased = false;
};

//===--- Block C: fields, traits, closures' captures -----------------------===//

/// Copies concrete trait members into implementing classes (Dotty's Mixin
/// / AugmentScala2Traits / ResolveSuper family). Requires the groups of
/// Getters to have finished (rule 3: it reads other classes' trees).
class MixinPhase : public MiniPhase {
public:
  MixinPhase();
  TreePtr transformClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
};

/// Expands lazy val accessors into initialized-flag + storage fields.
class LazyValsPhase : public MiniPhase {
public:
  LazyValsPhase();
  TreePtr transformClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;
};

/// Adds backing fields to getters (Dotty's Memoize).
class MemoizePhase : public MiniPhase {
public:
  MemoizePhase();
  TreePtr transformClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
};

/// Implements returns from within closures via control-flow exceptions.
///
/// Fusion-correct structure (paper §6.1 rule 2): the Return node itself is
/// rewritten into a throw when the traversal visits it — BEFORE any later
/// fused phase (FunctionValues) can move the closure body away — and the
/// enclosing method, reached later in the same postorder traversal, gains
/// the catching wrapper. Scanning for Returns from transformDefDef instead
/// would see children already converted by FunctionValues and miss them.
class NonLocalReturnsPhase : public MiniPhase {
public:
  NonLocalReturnsPhase();
  void prepareForUnit(PhaseRunContext &Ctx) override;
  void prepareForClosure(Closure *T, PhaseRunContext &Ctx) override;
  void leaveClosure(Closure *T, PhaseRunContext &Ctx) override;
  void prepareForDefDef(DefDef *T, PhaseRunContext &Ctx) override;
  void leaveDefDef(DefDef *T, PhaseRunContext &Ctx) override;
  TreePtr transformReturn(Return *T, PhaseRunContext &Ctx) override;
  TreePtr transformDefDef(DefDef *T, PhaseRunContext &Ctx) override;

  /// No closure body contains a Return targeting a method outside it.
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;

private:
  /// True when a return to \p Target from the current position would
  /// cross a closure boundary.
  bool crossesClosure(const Symbol *Target) const;

  unsigned ClosureDepth = 0;
  /// Enclosing methods with the closure depth at their entry.
  std::vector<std::pair<Symbol *, unsigned>> MethodFrames;
  std::set<Symbol *> NeedsCatch;
};

/// Boxes vars captured by closures into Ref cells.
class CapturedVarsPhase : public MiniPhase {
public:
  CapturedVarsPhase();
  void prepareForUnit(PhaseRunContext &Ctx) override;
  TreePtr transformIdent(Ident *T, PhaseRunContext &Ctx) override;
  TreePtr transformValDef(ValDef *T, PhaseRunContext &Ctx) override;
  TreePtr transformAssign(Assign *T, PhaseRunContext &Ctx) override;

private:
  std::set<Symbol *> Boxed;
};

//===--- Block D: constructors and closures --------------------------------===//

/// Moves field initializers into the primary constructor.
class ConstructorsPhase : public MiniPhase {
public:
  ConstructorsPhase();
  TreePtr transformClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;
};

/// Converts Closure trees into instances of synthetic FunctionN classes
/// (Dotty-era FunctionalInterfaces/delambdafy).
class FunctionValuesPhase : public MiniPhase {
public:
  FunctionValuesPhase();
  void prepareForClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
  void leaveClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
  void prepareForUnit(PhaseRunContext &Ctx) override;
  TreePtr transformClosure(Closure *T, PhaseRunContext &Ctx) override;
  TreePtr transformUnit(TreePtr Root, PhaseRunContext &Ctx) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;

private:
  std::vector<ClassSymbol *> ClassStack;
  TreeList PendingClasses;
};

/// Rewrites `this` of module classes to the module's global instance.
class ElimStaticThisPhase : public MiniPhase {
public:
  ElimStaticThisPhase();
  TreePtr transformThis(This *T, PhaseRunContext &Ctx) override;

  /// Module-value symbol for a module class (exposed for the backend).
  static Symbol *moduleValueOf(ClassSymbol *ModuleCls, CompilerContext &C);
};

//===--- Block E: lifting --------------------------------------------------===//

/// Lifts local methods to class scope, adding free variables as
/// parameters (Dotty's LambdaLift).
class LambdaLiftPhase : public MiniPhase {
public:
  LambdaLiftPhase();
  void prepareForUnit(PhaseRunContext &Ctx) override;
  void prepareForClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
  void leaveClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
  TreePtr transformBlock(Block *T, PhaseRunContext &Ctx) override;
  TreePtr transformApply(Apply *T, PhaseRunContext &Ctx) override;
  TreePtr transformClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;

private:
  struct LiftInfo {
    std::vector<Symbol *> FreeVars;
    ClassSymbol *HostClass = nullptr;
  };
  std::map<Symbol *, LiftInfo> Lifted;
  std::map<ClassSymbol *, TreeList> Pending;
  std::vector<ClassSymbol *> ClassStack;
};

/// Lifts nested classes to the top level.
class FlattenPhase : public MiniPhase {
public:
  FlattenPhase();
  TreePtr transformClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
  TreePtr transformPackageDef(PackageDef *T, PhaseRunContext &Ctx) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;

private:
  TreeList PendingTop;
};

/// Repairs owners and member lists invalidated by code motion (Dotty's
/// RestoreScopes).
class RestoreScopesPhase : public MiniPhase {
public:
  RestoreScopesPhase();
  TreePtr transformClassDef(ClassDef *T, PhaseRunContext &Ctx) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;
};

//===--- Block F: backend preparation --------------------------------------===//

/// Finds `def main(args: Array[String]): Unit` entry points.
class CollectEntryPointsPhase : public MiniPhase {
public:
  CollectEntryPointsPhase();
  TreePtr transformDefDef(DefDef *T, PhaseRunContext &Ctx) override;

  const std::vector<Symbol *> &entryPoints() const { return Entries; }

private:
  std::vector<Symbol *> Entries;
};

/// Cleanup: merges nested blocks and drops empty ones.
class FlattenBlocksPhase : public MiniPhase {
public:
  FlattenBlocksPhase();
  TreePtr transformBlock(Block *T, PhaseRunContext &Ctx) override;
};

/// Verifies Goto/Labeled well-formedness for the code generator.
class LabelDefsPhase : public MiniPhase {
public:
  LabelDefsPhase();
  void prepareForLabeled(Labeled *T, PhaseRunContext &Ctx) override;
  void leaveLabeled(Labeled *T, PhaseRunContext &Ctx) override;
  TreePtr transformGoto(Goto *T, PhaseRunContext &Ctx) override;
  bool checkPostCondition(const Tree *T, CompilerContext &Comp) const
      override;

private:
  std::vector<Symbol *> LabelStack;
};

} // namespace mpc

#endif // MPC_TRANSFORMS_PHASES_H
