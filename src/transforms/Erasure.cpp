//===----------------------------------------------------------------------===//
///
/// \file
/// The Erasure megaphase (paper §6.2.2). Erases generics, unions,
/// intersections, function and by-name types to the runtime model. It
/// modifies the types of many trees and mutates the global symbol table,
/// which is why it cannot be fused with other phases: it violates fusion
/// rule 2 (later phases could not handle half-erased trees) and rule 3
/// (it assumes Splitter finished the entire compilation unit).
///
//===----------------------------------------------------------------------===//

#include "transforms/Phases.h"

#include "ast/TreeUtils.h"

using namespace mpc;

ErasurePhase::ErasurePhase()
    : Phase("Erasure", "rewrites types to the runtime model, erasing type "
                       "parameters, unions and refinements") {
  addRunsAfterGroupsOf("Splitter");
  addRunsAfterGroupsOf("ElimByName");
}

/// Nearest common class ancestor for erased unions.
static ClassSymbol *commonAncestor(ClassSymbol *A, ClassSymbol *B) {
  if (!A || !B)
    return nullptr;
  if (B->derivesFrom(A))
    return A;
  std::vector<ClassSymbol *> Ancestors;
  A->collectAncestors(Ancestors);
  ClassSymbol *Best = nullptr;
  for (ClassSymbol *Anc : Ancestors) {
    if (!B->derivesFrom(Anc))
      continue;
    if (!Best || Anc->derivesFrom(Best))
      Best = Anc;
  }
  return Best;
}

const Type *ErasurePhase::eraseType(const Type *T, CompilerContext &Comp) {
  if (!T)
    return nullptr;
  TypeContext &Types = Comp.types();
  switch (T->kind()) {
  case TypeKind::Primitive:
    return T;
  case TypeKind::Class: {
    const auto *CT = cast<ClassType>(T);
    if (CT->args().empty())
      return T;
    return Types.classType(CT->cls());
  }
  case TypeKind::Array:
    return Types.arrayType(eraseType(cast<ArrayType>(T)->elem(), Comp));
  case TypeKind::Method: {
    const auto *MT = cast<MethodType>(T);
    std::vector<const Type *> Params;
    for (const Type *P : MT->params())
      Params.push_back(eraseType(P, Comp));
    return Types.methodType(std::move(Params),
                            eraseType(MT->result(), Comp));
  }
  case TypeKind::Poly:
    return eraseType(cast<PolyType>(T)->underlying(), Comp);
  case TypeKind::Function: {
    const auto *FT = cast<FunctionType>(T);
    unsigned Arity = static_cast<unsigned>(FT->params().size());
    return Types.classType(Comp.syms().functionClass(Arity));
  }
  case TypeKind::Expr:
    return Types.classType(Comp.syms().functionClass(0));
  case TypeKind::Repeated:
    return Types.arrayType(
        eraseType(cast<RepeatedType>(T)->elem(), Comp));
  case TypeKind::Union: {
    const auto *UT = cast<UnionType>(T);
    const Type *L = eraseType(UT->left(), Comp);
    const Type *R = eraseType(UT->right(), Comp);
    if (L == R)
      return L;
    if (L->isNothing())
      return R;
    if (R->isNothing())
      return L;
    ClassSymbol *Join = commonAncestor(L->classSymbol(), R->classSymbol());
    if (Join)
      return Types.classType(Join);
    return Comp.syms().objectType();
  }
  case TypeKind::Intersection:
    return eraseType(cast<IntersectionType>(T)->left(), Comp);
  case TypeKind::TypeParam:
    return Comp.syms().objectType();
  case TypeKind::Error:
    // Never reached in a clean run: the driver stops before transforms
    // when the frontend reported errors. Kept total for safety.
    return T;
  }
  return T;
}

void ErasurePhase::eraseSymbolInfos(CompilerContext &Comp) {
  for (const auto &Owned : Comp.syms().allSymbols()) {
    Symbol *S = Owned.get();
    if (S->is(SymFlag::TypeParam))
      continue;
    if (const Type *Info = S->info())
      S->setInfo(eraseType(Info, Comp));
  }
}

TreePtr ErasurePhase::eraseTree(Tree *T, CompilerContext &Comp) {
  TreeContext &Trees = Comp.trees();

  // Erase children first (postorder, like any other phase).
  TreeList NewKids;
  NewKids.reserve(T->numKids());
  bool KidsChanged = false;
  for (const TreePtr &K : T->kids()) {
    if (!K) {
      NewKids.push_back(nullptr);
      continue;
    }
    TreePtr NK = eraseTree(K.get(), Comp);
    if (NK.get() != K.get())
      KidsChanged = true;
    NewKids.push_back(std::move(NK));
  }

  const Type *ErasedTy = eraseType(T->type(), Comp);

  switch (T->kind()) {
  case TreeKind::TypeApply: {
    // Generic applications erase to their function; the isInstanceOf /
    // asInstanceOf intrinsics keep their (erased) type argument.
    auto *TA = cast<TypeApply>(T);
    Symbol *Sym = nullptr;
    if (const auto *Sel = dyn_cast<Select>(TA->fun()))
      Sym = Sel->sym();
    bool IsTest = Sym == Comp.syms().isInstanceOfMethod() ||
                  Sym == Comp.syms().asInstanceOfMethod() ||
                  Sym == Comp.syms().newArrayMethod();
    if (!IsTest)
      return NewKids[0] ? std::move(NewKids[0]) : TreePtr(TA->fun());
    std::vector<const Type *> Args;
    for (const Type *A : TA->typeArgs())
      Args.push_back(eraseType(A, Comp));
    return Trees.makeTypeApply(T->loc(), std::move(NewKids[0]),
                               std::move(Args), ErasedTy);
  }
  case TreeKind::New: {
    const Type *ClsTy = eraseType(cast<New>(T)->classTy(), Comp);
    return Trees.makeNew(T->loc(), ClsTy, std::move(NewKids));
  }
  case TreeKind::SeqLiteral: {
    const Type *Elem =
        eraseType(cast<SeqLiteral>(T)->elemType(), Comp);
    return Trees.makeSeqLiteral(T->loc(), std::move(NewKids), Elem,
                                Comp.types().arrayType(Elem));
  }
  case TreeKind::Apply: {
    // The value has the erased result type of the (erased) function; when
    // the statically known type was more precise, insert a cast.
    TreePtr Node;
    const Type *FunTy = NewKids[0]->type();
    const auto *MT = dyn_cast_or_null<MethodType>(FunTy);
    const Type *ResultTy = MT ? MT->result() : ErasedTy;
    Node = Trees.makeApply(
        T->loc(), std::move(NewKids[0]),
        TreeList(std::make_move_iterator(NewKids.begin() + 1),
                 std::make_move_iterator(NewKids.end())),
        ResultTy);
    if (ResultTy != ErasedTy && ErasedTy &&
        !Comp.types().isSubtype(ResultTy, ErasedTy))
      Node = Trees.makeTyped(T->loc(), std::move(Node), ErasedTy);
    return Node;
  }
  case TreeKind::Select: {
    auto *Sel = cast<Select>(T);
    Symbol *Sym = Sel->sym();
    const Type *OldTy = T->type();
    bool IsValuePos = OldTy && !isa<MethodType>(OldTy) &&
                      !isa<PolyType>(OldTy);
    if (IsValuePos && Sym && Sym->info() &&
        !isa<MethodType>(Sym->info())) {
      // Field read: value has the erased declared type; cast if the
      // static type was more precise.
      const Type *DeclTy = Sym->info();
      TreePtr Node = Trees.makeSelect(T->loc(), std::move(NewKids[0]),
                                      Sym, DeclTy);
      if (DeclTy != ErasedTy && ErasedTy &&
          !Comp.types().isSubtype(DeclTy, ErasedTy))
        return Trees.makeTyped(T->loc(), std::move(Node), ErasedTy);
      return Node;
    }
    // Method position: erase the signature recorded on the node.
    return Trees.makeSelect(T->loc(), std::move(NewKids[0]), Sym,
                            ErasedTy);
  }
  default:
    break;
  }

  TreePtr Node;
  if (KidsChanged)
    Node = Trees.withNewChildrenForced(T, std::move(NewKids));
  else
    Node = TreePtr(T);
  if (ErasedTy != Node->type())
    Node = Trees.withType(Node.get(), ErasedTy);
  return Node;
}

void ErasurePhase::runOnUnit(CompilationUnit &Unit, CompilerContext &Comp) {
  // Global symbol-table rewrite happens once per pipeline run — the global
  // mutation that makes Erasure unfusable (rule 3).
  if (!SymbolsErased) {
    eraseSymbolInfos(Comp);
    SymbolsErased = true;
  }
  Unit.Root = eraseTree(Unit.Root.get(), Comp);
}

/// True when \p T contains no pre-erasure type forms.
static bool typeIsErased(const Type *T) {
  if (!T)
    return true;
  switch (T->kind()) {
  case TypeKind::Primitive:
    return true;
  case TypeKind::Class:
    return cast<ClassType>(T)->args().empty();
  case TypeKind::Array:
    return typeIsErased(cast<ArrayType>(T)->elem());
  case TypeKind::Method: {
    const auto *MT = cast<MethodType>(T);
    for (const Type *P : MT->params())
      if (!typeIsErased(P))
        return false;
    return typeIsErased(MT->result());
  }
  default:
    return false;
  }
}

bool ErasurePhase::checkPostCondition(const Tree *T,
                                      CompilerContext &Comp) const {
  (void)Comp;
  if (!typeIsErased(T->type()))
    return false;
  if (const auto *VD = dyn_cast<ValDef>(T))
    return typeIsErased(VD->sym()->info());
  if (const auto *DD = dyn_cast<DefDef>(T))
    return typeIsErased(DD->sym()->info());
  return true;
}
