//===----------------------------------------------------------------------===//
///
/// \file
/// Fusion block A: normalization phases (RefChecks, FirstTransform,
/// Uncurry, ElimRepeated, ClassOf, LiftTry, TailRec).
///
//===----------------------------------------------------------------------===//

#include "transforms/Phases.h"

#include "ast/TreeUtils.h"
#include "transforms/TransformUtils.h"

#include <functional>

using namespace mpc;

//===----------------------------------------------------------------------===//
// RefChecks
//===----------------------------------------------------------------------===//

RefChecksPhase::RefChecksPhase()
    : MiniPhase("RefChecks",
                "checks related to abstract members and overriding") {
  declareTransforms({TreeKind::ClassDef});
}

TreePtr RefChecksPhase::transformClassDef(ClassDef *T, PhaseRunContext &Ctx) {
  ClassSymbol *Cls = T->sym();
  for (Symbol *M : Cls->members()) {
    // `override` requires a matching inherited member — and that member
    // must not be final.
    if (M->is(SymFlag::Override)) {
      bool Found = false;
      for (const Type *P : Cls->parents()) {
        ClassSymbol *PCls = P->classSymbol();
        if (!PCls)
          continue;
        if (Symbol *Inherited = PCls->findMember(M->name())) {
          Found = true;
          if (Inherited->is(SymFlag::Final))
            Ctx.Comp.diags().error(
                M->loc(), "member " + M->name().str() +
                              " overrides a final member of " +
                              PCls->name().str());
        }
      }
      if (!Found)
        Ctx.Comp.diags().error(M->loc(), "member " + M->name().str() +
                                             " overrides nothing");
    }
    // Vars are not allowed in traits (keeps Mixin simple; see DESIGN.md).
    if (Cls->isTrait() && M->is(SymFlag::Mutable))
      Ctx.Comp.diags().error(M->loc(), "traits may not declare vars");
  }
  // Concrete classes must implement inherited abstract members.
  if (!Cls->isTrait() && !Cls->is(SymFlag::Abstract)) {
    std::vector<ClassSymbol *> Ancestors;
    Cls->collectAncestors(Ancestors);
    for (ClassSymbol *Anc : Ancestors) {
      for (Symbol *M : Anc->members()) {
        if (!M->is(SymFlag::Abstract))
          continue;
        bool Implemented = false;
        if (Symbol *Impl = Cls->findMember(M->name()))
          Implemented = !Impl->is(SymFlag::Abstract);
        if (!Implemented)
          Ctx.Comp.diags().error(
              Cls->loc(), "class " + Cls->name().str() +
                              " must implement abstract member " +
                              M->name().str());
      }
    }
  }
  return TreePtr(T);
}

//===----------------------------------------------------------------------===//
// FirstTransform
//===----------------------------------------------------------------------===//

FirstTransformPhase::FirstTransformPhase()
    : MiniPhase("FirstTransform",
                "some transformations to put trees into a canonical form") {
  declareTransforms({TreeKind::Ident, TreeKind::Select, TreeKind::TypeApply,
                     TreeKind::DefDef, TreeKind::If});
}

/// True when \p T is a reference to a parameterless method used in value
/// position (node typed with the result, not the method type).
static bool isAutoApplied(const Tree *T, const Symbol *Sym) {
  if (!Sym || !Sym->isMethod() || Sym->is(SymFlag::Constructor))
    return false;
  const Type *Ty = T->type();
  return Ty && !isa<MethodType>(Ty) && !isa<PolyType>(Ty);
}

/// Wraps an auto-applied method reference in an explicit empty Apply.
static TreePtr wrapAutoApply(PhaseRunContext &Ctx, Tree *T) {
  const Type *ResultTy = T->type();
  const Type *MT = Ctx.types().methodType({}, ResultTy);
  TreePtr Fun = Ctx.trees().withType(T, MT);
  return Ctx.trees().makeApply(T->loc(), std::move(Fun), {}, ResultTy);
}

TreePtr FirstTransformPhase::transformIdent(Ident *T, PhaseRunContext &Ctx) {
  if (isAutoApplied(T, T->sym()))
    return wrapAutoApply(Ctx, T);
  return TreePtr(T);
}

TreePtr FirstTransformPhase::transformSelect(Select *T,
                                             PhaseRunContext &Ctx) {
  if (isAutoApplied(T, T->sym()))
    return wrapAutoApply(Ctx, T);
  return TreePtr(T);
}

TreePtr FirstTransformPhase::transformTypeApply(TypeApply *T,
                                                PhaseRunContext &Ctx) {
  // Auto-applied generic nullary (isInstanceOf, classOf...).
  const Type *Ty = T->type();
  if (Ty && !isa<MethodType>(Ty) && !isa<PolyType>(Ty))
    return wrapAutoApply(Ctx, T);
  return TreePtr(T);
}

TreePtr FirstTransformPhase::transformDefDef(DefDef *T,
                                             PhaseRunContext &Ctx) {
  // `def f = e` gets its empty parameter list (paper's Listing 1 example).
  if (!T->paramListSizes().empty())
    return TreePtr(T);
  TreeList Kids = T->kids();
  TreePtr Rhs = std::move(Kids.back());
  return Ctx.trees().makeDefDef(T->loc(), T->sym(), {0}, {},
                                std::move(Rhs));
}

TreePtr FirstTransformPhase::transformIf(If *T, PhaseRunContext &Ctx) {
  // Constant-condition folding (the transformation the paper describes as
  // buried inside scalac's refchecks, §2.1).
  (void)Ctx;
  const auto *Cond = dyn_cast<Literal>(T->cond());
  if (!Cond || Cond->value().kind() != Constant::Bool)
    return TreePtr(T);
  return TreePtr(Cond->value().boolValue() ? T->thenp() : T->elsep());
}

bool FirstTransformPhase::checkPostCondition(const Tree *T,
                                             CompilerContext &Comp) const {
  (void)Comp;
  // Every method definition has at least one parameter list.
  if (const auto *DD = dyn_cast<DefDef>(T))
    return !DD->paramListSizes().empty();
  return true;
}

//===----------------------------------------------------------------------===//
// Uncurry
//===----------------------------------------------------------------------===//

UncurryPhase::UncurryPhase()
    : MiniPhase("Uncurry", "flattens multiple parameter lists") {
  declareTransforms({TreeKind::DefDef, TreeKind::Apply});
  addRunsAfter("FirstTransform");
}

/// Flattens a curried method signature into one parameter list.
static const Type *flattenMethodType(TypeContext &Types, const Type *Info) {
  if (const auto *PT = dyn_cast<PolyType>(Info)) {
    const Type *Flat = flattenMethodType(Types, PT->underlying());
    return Types.polyType(PT->typeParams(), Flat);
  }
  const auto *MT = dyn_cast<MethodType>(Info);
  if (!MT || !isa<MethodType>(MT->result()))
    return Info;
  std::vector<const Type *> Params = MT->params();
  const Type *Walk = MT->result();
  while (const auto *Inner = dyn_cast<MethodType>(Walk)) {
    for (const Type *P : Inner->params())
      Params.push_back(P);
    Walk = Inner->result();
  }
  return Types.methodType(std::move(Params), Walk);
}

TreePtr UncurryPhase::transformDefDef(DefDef *T, PhaseRunContext &Ctx) {
  Symbol *Sym = T->sym();
  Sym->setInfo(flattenMethodType(Ctx.types(), Sym->info()));
  if (T->paramListSizes().size() <= 1)
    return TreePtr(T);
  uint32_t Total = 0;
  for (uint32_t S : T->paramListSizes())
    Total += S;
  TreeList Kids = T->kids();
  TreePtr Rhs = std::move(Kids.back());
  Kids.pop_back();
  return Ctx.trees().makeDefDef(T->loc(), Sym, {Total}, std::move(Kids),
                                std::move(Rhs));
}

TreePtr UncurryPhase::transformApply(Apply *T, PhaseRunContext &Ctx) {
  // Apply(Apply(f, as), bs) with a method-typed inner apply is a curried
  // call: merge into Apply(f, as ++ bs).
  auto *Inner = dyn_cast<Apply>(T->fun());
  if (!Inner || !Inner->type() || !isa<MethodType>(Inner->type()))
    return TreePtr(T);
  const auto *InnerMT = cast<MethodType>(Inner->type());
  const auto *InnerFunMT =
      dyn_cast_or_null<MethodType>(Inner->fun()->type());
  std::vector<const Type *> AllParams;
  if (InnerFunMT)
    AllParams = InnerFunMT->params();
  for (const Type *P : InnerMT->params())
    AllParams.push_back(P);
  const Type *MergedMT =
      Ctx.types().methodType(std::move(AllParams), InnerMT->result());
  TreePtr NewFun = Ctx.trees().withType(Inner->fun(), MergedMT);
  TreeList Args;
  for (unsigned I = 0; I < Inner->numArgs(); ++I)
    Args.push_back(TreePtr(Inner->arg(I)));
  for (unsigned I = 0; I < T->numArgs(); ++I)
    Args.push_back(TreePtr(T->arg(I)));
  return Ctx.trees().makeApply(T->loc(), std::move(NewFun), std::move(Args),
                               T->type());
}

bool UncurryPhase::checkPostCondition(const Tree *T,
                                      CompilerContext &Comp) const {
  (void)Comp;
  if (const auto *DD = dyn_cast<DefDef>(T))
    return DD->paramListSizes().size() <= 1;
  // No application whose function is itself a method-typed application.
  if (const auto *A = dyn_cast<Apply>(T)) {
    if (const auto *Inner = dyn_cast<Apply>(A->fun()))
      return !Inner->type() || !isa<MethodType>(Inner->type());
  }
  return true;
}

//===----------------------------------------------------------------------===//
// ElimRepeated
//===----------------------------------------------------------------------===//

ElimRepeatedPhase::ElimRepeatedPhase()
    : MiniPhase("ElimRepeated",
                "rewrites vararg parameters and arguments") {
  declareTransforms({TreeKind::DefDef, TreeKind::Apply});
  addRunsAfter("Uncurry");
}

TreePtr ElimRepeatedPhase::transformDefDef(DefDef *T, PhaseRunContext &Ctx) {
  TypeContext &Types = Ctx.types();
  Symbol *Sym = T->sym();
  // Rewrite the parameter symbol infos.
  for (unsigned I = 0; I < T->numParamsTotal(); ++I) {
    auto *PD = cast<ValDef>(T->paramAt(I));
    if (const auto *RT = dyn_cast_or_null<RepeatedType>(PD->sym()->info()))
      PD->sym()->setInfo(Types.arrayType(RT->elem()));
  }
  // Rewrite the method signature.
  const Type *Info = Sym->info();
  const PolyType *Poly = dyn_cast<PolyType>(Info);
  const auto *MT = cast<MethodType>(Poly ? Poly->underlying() : Info);
  if (MT->params().empty() || !isa<RepeatedType>(MT->params().back()))
    return TreePtr(T);
  std::vector<const Type *> Params = MT->params();
  Params.back() =
      Types.arrayType(cast<RepeatedType>(Params.back())->elem());
  const Type *NewMT = Types.methodType(std::move(Params), MT->result());
  Sym->setInfo(Poly ? Types.polyType(Poly->typeParams(), NewMT) : NewMT);
  return TreePtr(T);
}

TreePtr ElimRepeatedPhase::transformApply(Apply *T, PhaseRunContext &Ctx) {
  const auto *MT = dyn_cast_or_null<MethodType>(T->fun()->type());
  if (!MT || MT->params().empty() ||
      !isa<RepeatedType>(MT->params().back()))
    return TreePtr(T);
  TypeContext &Types = Ctx.types();
  const Type *Elem = cast<RepeatedType>(MT->params().back())->elem();
  size_t Fixed = MT->params().size() - 1;

  TreeList FixedArgs;
  TreeList VarArgs;
  for (unsigned I = 0; I < T->numArgs(); ++I) {
    if (I < Fixed)
      FixedArgs.push_back(TreePtr(T->arg(I)));
    else
      VarArgs.push_back(TreePtr(T->arg(I)));
  }
  TreePtr Packed = Ctx.trees().makeSeqLiteral(
      T->loc(), std::move(VarArgs), Elem, Types.arrayType(Elem));
  FixedArgs.push_back(std::move(Packed));

  std::vector<const Type *> Params = MT->params();
  Params.back() = Types.arrayType(Elem);
  TreePtr NewFun = Ctx.trees().withType(
      T->fun(), Types.methodType(std::move(Params), MT->result()));
  return Ctx.trees().makeApply(T->loc(), std::move(NewFun),
                               std::move(FixedArgs), T->type());
}

bool ElimRepeatedPhase::checkPostCondition(const Tree *T,
                                           CompilerContext &Comp) const {
  (void)Comp;
  if (const auto *DD = dyn_cast<DefDef>(T)) {
    for (unsigned I = 0; I < DD->numParamsTotal(); ++I) {
      const auto *PD = cast<ValDef>(DD->paramAt(I));
      if (PD->sym()->info() && isa<RepeatedType>(PD->sym()->info()))
        return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// ClassOf
//===----------------------------------------------------------------------===//

ClassOfPhase::ClassOfPhase()
    : MiniPhase("ClassOf", "expands Predef.classOf calls") {
  declareTransforms({TreeKind::Apply});
  addRunsAfter("FirstTransform");
}

TreePtr ClassOfPhase::transformApply(Apply *T, PhaseRunContext &Ctx) {
  const auto *TApp = dyn_cast<TypeApply>(T->fun());
  if (!TApp)
    return TreePtr(T);
  Symbol *Sym = nullptr;
  if (const auto *Sel = dyn_cast<Select>(TApp->fun()))
    Sym = Sel->sym();
  else if (const auto *Id = dyn_cast<Ident>(TApp->fun()))
    Sym = Id->sym();
  if (Sym != Ctx.syms().classOfMethod())
    return TreePtr(T);
  return Ctx.trees().makeLiteral(
      T->loc(), Constant::makeClazz(TApp->typeArgs()[0]), T->type());
}

//===----------------------------------------------------------------------===//
// LiftTry
//===----------------------------------------------------------------------===//

LiftTryPhase::LiftTryPhase()
    : MiniPhase("LiftTry", "puts try expressions that might execute on "
                           "non-empty stacks into their own methods") {
  declareTransforms({TreeKind::Try});
  declarePrepares({TreeKind::Apply, TreeKind::New, TreeKind::Assign,
                   TreeKind::Select, TreeKind::SeqLiteral, TreeKind::Throw,
                   TreeKind::DefDef, TreeKind::Closure});
}

void LiftTryPhase::prepareForUnit(PhaseRunContext &Ctx) {
  (void)Ctx;
  Frames.clear();
  Frames.push_back({nullptr, 0});
}

#define LIFTTRY_EXPR_CONTEXT(Kind)                                            \
  void LiftTryPhase::prepareFor##Kind(Kind *T, PhaseRunContext &Ctx) {        \
    (void)T;                                                                  \
    (void)Ctx;                                                                \
    if (!Frames.empty())                                                      \
      ++Frames.back().Depth;                                                  \
  }                                                                           \
  void LiftTryPhase::leave##Kind(Kind *T, PhaseRunContext &Ctx) {             \
    (void)T;                                                                  \
    (void)Ctx;                                                                \
    if (!Frames.empty())                                                      \
      --Frames.back().Depth;                                                  \
  }

LIFTTRY_EXPR_CONTEXT(Apply)
LIFTTRY_EXPR_CONTEXT(New)
LIFTTRY_EXPR_CONTEXT(Assign)
LIFTTRY_EXPR_CONTEXT(Select)
LIFTTRY_EXPR_CONTEXT(SeqLiteral)
LIFTTRY_EXPR_CONTEXT(Throw)
#undef LIFTTRY_EXPR_CONTEXT

void LiftTryPhase::prepareForDefDef(DefDef *T, PhaseRunContext &Ctx) {
  (void)Ctx;
  Frames.push_back({T->sym(), 0});
}
void LiftTryPhase::leaveDefDef(DefDef *T, PhaseRunContext &Ctx) {
  (void)T;
  (void)Ctx;
  Frames.pop_back();
}
void LiftTryPhase::prepareForClosure(Closure *T, PhaseRunContext &Ctx) {
  (void)T;
  (void)Ctx;
  // A closure body starts on an empty stack of its own.
  Frames.push_back({Frames.back().Method, 0});
}
void LiftTryPhase::leaveClosure(Closure *T, PhaseRunContext &Ctx) {
  (void)T;
  (void)Ctx;
  Frames.pop_back();
}

TreePtr LiftTryPhase::transformTry(Try *T, PhaseRunContext &Ctx) {
  if (Frames.empty() || Frames.back().Depth <= 0 || !Frames.back().Method)
    return TreePtr(T);
  // Lift: { def liftedTree$N(): T = <try>; liftedTree$N() }.
  TypeContext &Types = Ctx.types();
  const Type *Ty = T->type();
  Symbol *Lifted = Ctx.syms().makeTerm(
      Ctx.syms().freshName("liftedTree"), Frames.back().Method,
      SymFlag::Method | SymFlag::Local | SymFlag::Synthetic,
      Types.methodType({}, Ty));
  TreePtr Def =
      Ctx.trees().makeDefDef(T->loc(), Lifted, {0}, {}, TreePtr(T));
  TreePtr CallFun =
      Ctx.trees().makeIdent(T->loc(), Lifted, Lifted->info());
  TreePtr Call = Ctx.trees().makeApply(T->loc(), std::move(CallFun), {}, Ty);
  TreeList Stats;
  Stats.push_back(std::move(Def));
  return Ctx.trees().makeBlock(T->loc(), std::move(Stats), std::move(Call));
}

//===----------------------------------------------------------------------===//
// TailRec
//===----------------------------------------------------------------------===//

TailRecPhase::TailRecPhase()
    : MiniPhase("TailRec", "rewrites self-recursive tail calls to jumps") {
  declareTransforms({TreeKind::DefDef});
  addRunsAfter("Uncurry");
}

namespace {
/// Rewrites tail positions of a method body, replacing self tail calls by
/// parameter reassignment + Goto.
class TailCallRewriter {
public:
  TailCallRewriter(PhaseRunContext &Ctx, Symbol *Method,
                   std::vector<Symbol *> Params, Symbol *Label)
      : Ctx(Ctx), Method(Method), Params(std::move(Params)), Label(Label) {}

  bool Changed = false;

  TreePtr rewrite(Tree *T) {
    TreeContext &Trees = Ctx.trees();
    switch (T->kind()) {
    case TreeKind::Apply: {
      auto *A = cast<Apply>(T);
      if (!isSelfCall(A))
        return TreePtr(T);
      Changed = true;
      // Evaluate args into temps, then reassign params and jump.
      TreeList Stats;
      std::vector<Symbol *> Temps;
      for (unsigned I = 0; I < A->numArgs(); ++I) {
        Symbol *Tmp = Ctx.syms().makeTerm(
            Ctx.syms().freshName("tailArg"), Method,
            SymFlag::Local | SymFlag::Synthetic, Params[I]->info());
        Temps.push_back(Tmp);
        Stats.push_back(
            Trees.makeValDef(T->loc(), Tmp, TreePtr(A->arg(I))));
      }
      for (unsigned I = 0; I < A->numArgs(); ++I) {
        TreePtr Lhs =
            Trees.makeIdent(T->loc(), Params[I], Params[I]->info());
        TreePtr Rhs =
            Trees.makeIdent(T->loc(), Temps[I], Temps[I]->info());
        Stats.push_back(Trees.makeAssign(T->loc(), std::move(Lhs),
                                         std::move(Rhs),
                                         Ctx.types().unitType()));
      }
      TreePtr Jump = Trees.makeGoto(T->loc(), Label,
                                    Ctx.types().nothingType());
      return Trees.makeBlock(T->loc(), std::move(Stats), std::move(Jump));
    }
    case TreeKind::Block: {
      auto *B = cast<Block>(T);
      TreePtr NewExpr = rewrite(B->expr());
      if (NewExpr.get() == B->expr())
        return TreePtr(T);
      TreeList Kids = T->kids();
      Kids.back() = std::move(NewExpr);
      return Trees.withNewChildren(T, std::move(Kids));
    }
    case TreeKind::If: {
      auto *I = cast<If>(T);
      TreePtr NewThen = rewrite(I->thenp());
      TreePtr NewElse = rewrite(I->elsep());
      if (NewThen.get() == I->thenp() && NewElse.get() == I->elsep())
        return TreePtr(T);
      TreeList Kids = T->kids();
      Kids[1] = std::move(NewThen);
      Kids[2] = std::move(NewElse);
      return Trees.withNewChildren(T, std::move(Kids));
    }
    case TreeKind::Match: {
      auto *M = cast<Match>(T);
      TreeList Kids = T->kids();
      bool Any = false;
      for (unsigned I = 0; I < M->numCases(); ++I) {
        auto *C = cast<CaseDef>(M->caseAt(I));
        TreePtr NewBody = rewrite(C->body());
        if (NewBody.get() != C->body()) {
          Any = true;
          TreeList CKids = C->kids();
          CKids[2] = std::move(NewBody);
          Kids[1 + I] = Trees.withNewChildren(C, std::move(CKids));
        }
      }
      if (!Any)
        return TreePtr(T);
      return Trees.withNewChildren(T, std::move(Kids));
    }
    case TreeKind::Labeled: {
      auto *L = cast<Labeled>(T);
      TreePtr NewBody = rewrite(L->body());
      if (NewBody.get() == L->body())
        return TreePtr(T);
      TreeList Kids = T->kids();
      Kids[0] = std::move(NewBody);
      return Trees.withNewChildren(T, std::move(Kids));
    }
    default:
      return TreePtr(T);
    }
  }

private:
  bool isSelfCall(Apply *A) const {
    Symbol *Callee = nullptr;
    if (const auto *Sel = dyn_cast<Select>(A->fun())) {
      if (!isa<This>(Sel->qual()))
        return false;
      Callee = Sel->sym();
    } else if (const auto *Id = dyn_cast<Ident>(A->fun())) {
      Callee = Id->sym();
    }
    return Callee == Method && A->numArgs() == Params.size();
  }

  PhaseRunContext &Ctx;
  Symbol *Method;
  std::vector<Symbol *> Params;
  Symbol *Label;
};
} // namespace

TreePtr TailRecPhase::transformDefDef(DefDef *T, PhaseRunContext &Ctx) {
  if (!T->rhs() || T->sym()->is(SymFlag::Constructor))
    return TreePtr(T);
  std::vector<Symbol *> Params;
  for (unsigned I = 0; I < T->numParamsTotal(); ++I)
    Params.push_back(cast<ValDef>(T->paramAt(I))->sym());

  Symbol *Label = Ctx.syms().makeTerm(
      Ctx.syms().freshName("tailLabel"), T->sym(),
      SymFlag::Label | SymFlag::Synthetic);
  TailCallRewriter RW(Ctx, T->sym(), Params, Label);
  TreePtr NewBody = RW.rewrite(T->rhs());
  if (!RW.Changed)
    return TreePtr(T);
  ++NumRewritten;
  // Reassigned parameters become mutable.
  for (Symbol *P : Params)
    P->setFlag(SymFlag::Mutable);
  TreePtr Looped = Ctx.trees().makeLabeled(T->loc(), Label,
                                           std::move(NewBody),
                                           T->rhs()->type());
  TreeList Kids = T->kids();
  Kids.back() = std::move(Looped);
  return Ctx.trees().withNewChildren(T, std::move(Kids));
}
