//===----------------------------------------------------------------------===//
///
/// \file
/// Fusion block D: Constructors, FunctionValues, ElimStaticThis.
///
//===----------------------------------------------------------------------===//

#include "transforms/Phases.h"

#include "ast/TreeUtils.h"
#include "transforms/TransformUtils.h"
#include "transforms/TreeClone.h"

using namespace mpc;

//===----------------------------------------------------------------------===//
// Constructors
//===----------------------------------------------------------------------===//

ConstructorsPhase::ConstructorsPhase()
    : MiniPhase("Constructors",
                "collects initialization code in primary constructors") {
  declareTransforms({TreeKind::ClassDef});
  addRunsAfter("Memoize");
}

TreePtr ConstructorsPhase::transformClassDef(ClassDef *T,
                                             PhaseRunContext &Ctx) {
  ClassSymbol *Cls = T->sym();
  if (Cls->isTrait())
    return TreePtr(T);
  TreeContext &Trees = Ctx.trees();
  TypeContext &Types = Ctx.types();
  Symbol *Init = Cls->findDeclaredMember(Ctx.syms().std().Init);
  if (!Init)
    return TreePtr(T);

  // Gather field initializers in declaration order.
  TreeList InitStats;
  TreeList Body;
  const DefDef *CtorDef = nullptr;
  size_t CtorIndex = 0;
  for (const TreePtr &Member : T->kids()) {
    if (auto *VD = dyn_cast_or_null<ValDef>(Member.get())) {
      if (VD->rhs() && VD->sym()->is(SymFlag::Field)) {
        TreePtr Store = Trees.makeAssign(
            VD->loc(),
            Trees.makeSelect(VD->loc(), makeSelfRef(Ctx, VD->loc(), Cls),
                             VD->sym(), VD->sym()->info()),
            TreePtr(VD->rhs()), Types.unitType());
        InitStats.push_back(std::move(Store));
        Body.push_back(Trees.makeValDef(VD->loc(), VD->sym(), nullptr));
        continue;
      }
    }
    if (auto *DD = dyn_cast_or_null<DefDef>(Member.get()))
      if (DD->sym() == Init) {
        CtorDef = DD;
        CtorIndex = Body.size();
      }
    Body.push_back(Member);
  }
  if (InitStats.empty() || !CtorDef)
    return TreePtr(T);

  // Constructor body: existing statements (super call), then field
  // initialization in declaration order.
  TreeList CtorStats;
  if (CtorDef->rhs())
    CtorStats.push_back(TreePtr(CtorDef->rhs()));
  for (TreePtr &S : InitStats)
    CtorStats.push_back(std::move(S));
  TreePtr NewRhs = Trees.makeBlock(CtorDef->loc(), std::move(CtorStats),
                                   makeUnitLit(Ctx, CtorDef->loc()));
  TreeList CtorKids = CtorDef->kids();
  CtorKids.back() = std::move(NewRhs);
  Body[CtorIndex] = Trees.withNewChildren(const_cast<DefDef *>(CtorDef),
                                          std::move(CtorKids));
  return Trees.makeClassDef(T->loc(), Cls, std::move(Body));
}

bool ConstructorsPhase::checkPostCondition(const Tree *T,
                                           CompilerContext &Comp) const {
  (void)Comp;
  // Class-level fields carry no initializer anymore.
  if (const auto *VD = dyn_cast<ValDef>(T)) {
    Symbol *S = VD->sym();
    if (S->is(SymFlag::Field) && S->owner() && S->owner()->isClass() &&
        !cast<ClassSymbol>(S->owner())->isTrait())
      return VD->rhs() == nullptr;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// FunctionValues
//===----------------------------------------------------------------------===//

FunctionValuesPhase::FunctionValuesPhase()
    : MiniPhase("FunctionValues",
                "rewrites closures to instances of FunctionN classes") {
  declareTransforms({TreeKind::Closure});
  declarePrepares({TreeKind::ClassDef});
  addRunsAfter("Constructors");
}

void FunctionValuesPhase::prepareForUnit(PhaseRunContext &Ctx) {
  (void)Ctx;
  ClassStack.clear();
  PendingClasses.clear();
}

void FunctionValuesPhase::prepareForClassDef(ClassDef *T,
                                             PhaseRunContext &Ctx) {
  (void)Ctx;
  ClassStack.push_back(T->sym());
}
void FunctionValuesPhase::leaveClassDef(ClassDef *T, PhaseRunContext &Ctx) {
  (void)T;
  (void)Ctx;
  ClassStack.pop_back();
}

TreePtr FunctionValuesPhase::transformClosure(Closure *T,
                                              PhaseRunContext &Ctx) {
  TreeContext &Trees = Ctx.trees();
  TypeContext &Types = Ctx.types();
  SymbolTable &Syms = Ctx.syms();
  SourceLoc Loc = T->loc();
  unsigned Arity = T->numParams();
  ClassSymbol *Enclosing = ClassStack.empty() ? nullptr : ClassStack.back();

  // The anonymous function class.
  ClassSymbol *Anon = Syms.makeClass(
      Syms.freshName("anonfun"), Syms.rootPackage(),
      SymFlag::Final | SymFlag::Synthetic);
  Anon->setParents(
      {Syms.objectType(), Types.classType(Syms.functionClass(Arity))});
  Anon->setInfo(Types.classType(Anon));
  const Type *AnonTy = Anon->info();

  // Captured environment: free locals plus (optionally) the enclosing
  // `this`.
  bool UsesThis = false;
  std::vector<Symbol *> Captured = freeLocals(T->body(), &UsesThis);
  // Closure parameters are not captures.
  std::set<Symbol *> OwnParams;
  for (unsigned I = 0; I < Arity; ++I)
    OwnParams.insert(cast<ValDef>(T->param(I))->sym());
  std::vector<Symbol *> Env;
  for (Symbol *S : Captured)
    if (!OwnParams.count(S))
      Env.push_back(S);

  TreeList Fields;
  TreeList CtorParams;
  TreeList CtorStats;
  std::vector<const Type *> CtorParamTys;
  IdentMap EnvSubst;

  Symbol *CtorSym = Syms.makeTerm(Syms.std().Init, Anon,
                                  SymFlag::Method | SymFlag::Constructor |
                                      SymFlag::Synthetic);
  TreePtr SelfRef = Trees.makeThis(Loc, Anon, AnonTy);

  auto AddCapture = [&](Name FieldName, const Type *Ty) {
    Symbol *Field = Syms.makeTerm(Syms.freshName(FieldName.str()), Anon,
                                  SymFlag::Field | SymFlag::Synthetic, Ty);
    Anon->enterMember(Field);
    Fields.push_back(Trees.makeValDef(Loc, Field, nullptr));
    Symbol *Param =
        Syms.makeTerm(FieldName, CtorSym,
                      SymFlag::Param | SymFlag::Local | SymFlag::Synthetic,
                      Ty);
    CtorParams.push_back(Trees.makeValDef(Loc, Param, nullptr));
    CtorParamTys.push_back(Ty);
    CtorStats.push_back(Trees.makeAssign(
        Loc, Trees.makeSelect(Loc, SelfRef, Field, Ty),
        Trees.makeIdent(Loc, Param, Ty), Types.unitType()));
    return Field;
  };

  TreePtr ThisReplacement;
  if (UsesThis && Enclosing) {
    Symbol *SelfField =
        AddCapture(Ctx.Comp.names().intern("self"), Enclosing->info());
    ThisReplacement = Trees.makeSelect(Loc, SelfRef, SelfField,
                                       SelfField->info());
  }
  for (Symbol *S : Env) {
    Symbol *Field = AddCapture(S->name(), S->info());
    EnvSubst[S] =
        Trees.makeSelect(Loc, SelfRef, Field, Field->info());
  }

  CtorSym->setInfo(Types.methodType(CtorParamTys, Types.unitType()));
  Anon->enterMember(CtorSym);

  // The apply method: cloned body with env/this substitution.
  std::vector<const Type *> ApplyParamTys;
  for (unsigned I = 0; I < Arity; ++I)
    ApplyParamTys.push_back(cast<ValDef>(T->param(I))->sym()->info());
  Symbol *ApplySym = Syms.makeTerm(
      Syms.std().Apply, Anon, SymFlag::Method | SymFlag::Synthetic,
      Types.methodType(ApplyParamTys, T->body()->type()));
  Anon->enterMember(ApplySym);

  SymbolMap Subst;
  TreeList ApplyParams;
  for (unsigned I = 0; I < Arity; ++I) {
    Symbol *Old = cast<ValDef>(T->param(I))->sym();
    Symbol *Fresh = Syms.makeTerm(Old->name(), ApplySym,
                                  Old->flags(), Old->info());
    Subst[Old] = Fresh;
    ApplyParams.push_back(Trees.makeValDef(Loc, Fresh, nullptr));
  }
  TreePtr ApplyBody =
      cloneTree(Ctx.Comp, T->body(), Subst, ApplySym, Enclosing,
                ThisReplacement, &EnvSubst);

  // Assemble the class: fields, <init>, apply.
  TreeList ClsBody = std::move(Fields);
  TreePtr CtorRhs = Trees.makeBlock(Loc, std::move(CtorStats),
                                    makeUnitLit(Ctx, Loc));
  ClsBody.push_back(Trees.makeDefDef(
      Loc, CtorSym, {static_cast<uint32_t>(CtorParamTys.size())},
      std::move(CtorParams), std::move(CtorRhs)));
  ClsBody.push_back(Trees.makeDefDef(Loc, ApplySym, {Arity},
                                     std::move(ApplyParams),
                                     std::move(ApplyBody)));
  PendingClasses.push_back(
      Trees.makeClassDef(Loc, Anon, std::move(ClsBody)));

  // The closure value: new anonfun$N(captures...).
  TreeList NewArgs;
  if (UsesThis && Enclosing)
    NewArgs.push_back(makeSelfRef(Ctx, Loc, Enclosing));
  for (Symbol *S : Env)
    NewArgs.push_back(Trees.makeIdent(Loc, S, S->info()));
  return Trees.makeNew(Loc, AnonTy, std::move(NewArgs));
}

TreePtr FunctionValuesPhase::transformUnit(TreePtr Root,
                                           PhaseRunContext &Ctx) {
  // §4.2: unit finalization appends the synthesized classes at top level.
  if (PendingClasses.empty())
    return Root;
  auto *Pkg = cast<PackageDef>(Root.get());
  TreeList Kids = Root->kids();
  for (TreePtr &Cls : PendingClasses)
    Kids.push_back(std::move(Cls));
  PendingClasses.clear();
  return Ctx.trees().makePackageDef(Root->loc(), Pkg->pkgName(),
                                    std::move(Kids));
}

bool FunctionValuesPhase::checkPostCondition(const Tree *T,
                                             CompilerContext &Comp) const {
  (void)Comp;
  return T->kind() != TreeKind::Closure;
}

//===----------------------------------------------------------------------===//
// ElimStaticThis
//===----------------------------------------------------------------------===//

ElimStaticThisPhase::ElimStaticThisPhase()
    : MiniPhase("ElimStaticThis",
                "replaces this-references to module classes by the "
                "module instance") {
  declareTransforms({TreeKind::This});
}

Symbol *ElimStaticThisPhase::moduleValueOf(ClassSymbol *ModuleCls,
                                           CompilerContext &Comp) {
  for (const auto &Owned : Comp.syms().allSymbols()) {
    Symbol *S = Owned.get();
    if (S->is(SymFlag::Module) && S->info() &&
        S->info()->classSymbol() == ModuleCls)
      return S;
  }
  return nullptr;
}

TreePtr ElimStaticThisPhase::transformThis(This *T, PhaseRunContext &Ctx) {
  ClassSymbol *Cls = T->cls();
  if (!Cls || !Cls->is(SymFlag::ModuleClass))
    return TreePtr(T);
  Symbol *ModVal = moduleValueOf(Cls, Ctx.Comp);
  if (!ModVal)
    return TreePtr(T);
  return Ctx.trees().makeIdent(T->loc(), ModVal, ModVal->info());
}
