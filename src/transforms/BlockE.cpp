//===----------------------------------------------------------------------===//
///
/// \file
/// Fusion block E: LambdaLift, Flatten, RestoreScopes.
///
//===----------------------------------------------------------------------===//

#include "transforms/Phases.h"

#include "ast/TreeUtils.h"
#include "transforms/TransformUtils.h"
#include "transforms/TreeClone.h"

#include <functional>

using namespace mpc;

//===----------------------------------------------------------------------===//
// LambdaLift
//===----------------------------------------------------------------------===//

LambdaLiftPhase::LambdaLiftPhase()
    : MiniPhase("LambdaLift",
                "lifts local methods to class scope, passing free "
                "variables as parameters") {
  declareTransforms({TreeKind::Block, TreeKind::Apply, TreeKind::ClassDef});
  declarePrepares({TreeKind::ClassDef});
  // Rule 3 (paper §6.1): the whole-unit lifting analysis in
  // prepareForUnit assumes closure conversion and var boxing have
  // finished for the entire compilation unit.
  addRunsAfterGroupsOf("FunctionValues");
  addRunsAfterGroupsOf("CapturedVars");
}

void LambdaLiftPhase::prepareForClassDef(ClassDef *T, PhaseRunContext &Ctx) {
  (void)Ctx;
  ClassStack.push_back(T->sym());
}
void LambdaLiftPhase::leaveClassDef(ClassDef *T, PhaseRunContext &Ctx) {
  (void)T;
  (void)Ctx;
  ClassStack.pop_back();
}

void LambdaLiftPhase::prepareForUnit(PhaseRunContext &Ctx) {
  Lifted.clear();
  Pending.clear();
  ClassStack.clear();

  // Pass 1: find local methods, their hosting classes, and direct free
  // variables; record call edges between local methods.
  struct Info {
    DefDef *Def;
    ClassSymbol *Host;
    std::vector<Symbol *> Free;
    std::vector<Symbol *> Calls; // other local methods referenced
  };
  std::map<Symbol *, Info> Locals;

  std::function<void(Tree *, ClassSymbol *)> Scan =
      [&](Tree *T, ClassSymbol *Host) {
        if (!T)
          return;
        if (auto *CD = dyn_cast<ClassDef>(T))
          Host = CD->sym();
        if (auto *DD = dyn_cast<DefDef>(T)) {
          Symbol *S = DD->sym();
          // Scan the whole definition (params included) so the method's
          // own parameters are not counted as free.
          if (S->is(SymFlag::Local) && S->isMethod())
            Locals[S] = {DD, Host, freeLocals(DD), {}};
        }
        for (const TreePtr &K : T->kids())
          Scan(K.get(), Host);
      };
  Scan(Ctx.Unit.Root.get(), nullptr);

  // Call edges (references to other local methods inside each body).
  for (auto &[Sym, I] : Locals) {
    forEachSubtree(I.Def->rhs(), [&, &LI = I](Tree *Node) {
      if (auto *Id = dyn_cast<Ident>(Node)) {
        if (Id->sym() != Sym && Locals.count(Id->sym()))
          LI.Calls.push_back(Id->sym());
      }
    });
  }

  // Pass 2: transitive closure of free variables along call edges, so a
  // caller can supply its callee's environment.
  bool ChangedFV = true;
  while (ChangedFV) {
    ChangedFV = false;
    for (auto &[Sym, I] : Locals) {
      for (Symbol *Callee : I.Calls) {
        for (Symbol *FV : Locals[Callee].Free) {
          // The callee's own (new) params are not free in the caller.
          if (std::find(I.Free.begin(), I.Free.end(), FV) ==
              I.Free.end()) {
            // Skip variables defined inside this very method.
            bool DefinedHere = false;
            forEachSubtree(I.Def, [&](Tree *Node) {
              if (auto *VD = dyn_cast<ValDef>(Node))
                if (VD->sym() == FV)
                  DefinedHere = true;
            });
            if (!DefinedHere) {
              I.Free.push_back(FV);
              ChangedFV = true;
            }
          }
        }
      }
    }
  }

  // Pass 3: retarget symbols (owner, signature) — the new signatures are
  // visible to every call site in this unit's traversal.
  TypeContext &Types = Ctx.types();
  for (auto &[Sym, I] : Locals) {
    LiftInfo LI;
    LI.FreeVars = I.Free;
    LI.HostClass = I.Host;
    const auto *MT = cast<MethodType>(Sym->info());
    std::vector<const Type *> Params;
    for (Symbol *FV : I.Free)
      Params.push_back(FV->info());
    for (const Type *P : MT->params())
      Params.push_back(P);
    Sym->setInfo(Types.methodType(std::move(Params), MT->result()));
    Sym->setFlag(SymFlag::Lifted | SymFlag::Private | SymFlag::Synthetic);
    Sym->clearFlag(SymFlag::Local);
    if (I.Host)
      Sym->setOwner(I.Host);
    Lifted[Sym] = std::move(LI);
  }
}

TreePtr LambdaLiftPhase::transformApply(Apply *T, PhaseRunContext &Ctx) {
  auto *Id = dyn_cast<Ident>(T->fun());
  if (!Id)
    return TreePtr(T);
  auto It = Lifted.find(Id->sym());
  if (It == Lifted.end())
    return TreePtr(T);
  const LiftInfo &LI = It->second;
  Symbol *Sym = Id->sym();
  TreeContext &Trees = Ctx.trees();
  // f(args)  ->  this.f$lifted(fv1, ..., fvN, args).
  TreePtr Recv = LI.HostClass
                     ? TreePtr(makeSelfRef(Ctx, T->loc(), LI.HostClass))
                     : TreePtr(Trees.makeIdent(T->loc(), Sym, Sym->info()));
  TreePtr Fun =
      LI.HostClass
          ? TreePtr(Trees.makeSelect(T->loc(), std::move(Recv), Sym,
                                     Sym->info()))
          : std::move(Recv);
  TreeList Args;
  for (Symbol *FV : LI.FreeVars)
    Args.push_back(Trees.makeIdent(T->loc(), FV, FV->info()));
  for (unsigned I = 0; I < T->numArgs(); ++I)
    Args.push_back(TreePtr(T->arg(I)));
  return Trees.makeApply(T->loc(), std::move(Fun), std::move(Args),
                         T->type());
}

TreePtr LambdaLiftPhase::transformBlock(Block *T, PhaseRunContext &Ctx) {
  // Remove lifted local methods from blocks; clone them (with their free
  // variables turned into parameters) into the hosting class.
  bool Any = false;
  for (unsigned I = 0; I < T->numStats(); ++I)
    if (auto *DD = dyn_cast_or_null<DefDef>(T->stat(I)))
      if (Lifted.count(DD->sym()))
        Any = true;
  if (!Any)
    return TreePtr(T);

  TreeContext &Trees = Ctx.trees();
  TreeList Stats;
  for (unsigned I = 0; I < T->numStats(); ++I) {
    Tree *Stat = T->stat(I);
    auto *DD = dyn_cast_or_null<DefDef>(Stat);
    if (!DD || !Lifted.count(DD->sym())) {
      Stats.push_back(TreePtr(Stat));
      continue;
    }
    Symbol *Sym = DD->sym();
    const LiftInfo &LI = Lifted[Sym];
    // Fresh parameters for the free variables; references in the body are
    // redirected to them.
    SymbolMap Subst;
    TreeList Params;
    for (Symbol *FV : LI.FreeVars) {
      Symbol *P = Ctx.syms().makeTerm(
          FV->name(), Sym,
          SymFlag::Param | SymFlag::Local | SymFlag::Synthetic,
          FV->info());
      Subst[FV] = P;
      Params.push_back(Trees.makeValDef(DD->loc(), P, nullptr));
    }
    for (unsigned K = 0; K < DD->numParamsTotal(); ++K)
      Params.push_back(TreePtr(DD->paramAt(K)));
    TreePtr NewRhs = cloneTree(Ctx.Comp, DD->rhs(), Subst, Sym);
    uint32_t Total = static_cast<uint32_t>(Params.size());
    TreePtr Def = Trees.makeDefDef(DD->loc(), Sym, {Total},
                                   std::move(Params), std::move(NewRhs));
    Pending[LI.HostClass].push_back(std::move(Def));
  }
  TreePtr Expr = TreePtr(T->expr());
  return Trees.makeBlock(T->loc(), std::move(Stats), std::move(Expr));
}

TreePtr LambdaLiftPhase::transformClassDef(ClassDef *T,
                                           PhaseRunContext &Ctx) {
  auto It = Pending.find(T->sym());
  if (It == Pending.end() || It->second.empty())
    return TreePtr(T);
  TreeList Body = T->kids();
  for (TreePtr &Def : It->second) {
    T->sym()->enterMember(cast<DefDef>(Def.get())->sym());
    Body.push_back(std::move(Def));
  }
  It->second.clear();
  return Ctx.trees().makeClassDef(T->loc(), T->sym(), std::move(Body));
}

bool LambdaLiftPhase::checkPostCondition(const Tree *T,
                                         CompilerContext &Comp) const {
  (void)Comp;
  // No local methods remain inside blocks.
  if (const auto *B = dyn_cast<Block>(T)) {
    for (unsigned I = 0; I < B->numStats(); ++I)
      if (isa<DefDef>(B->stat(I)))
        return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Flatten
//===----------------------------------------------------------------------===//

FlattenPhase::FlattenPhase()
    : MiniPhase("Flatten", "lifts all inner classes to package scope") {
  declareTransforms({TreeKind::ClassDef, TreeKind::PackageDef});
  addRunsAfter("LambdaLift");
}

TreePtr FlattenPhase::transformClassDef(ClassDef *T, PhaseRunContext &Ctx) {
  bool Any = false;
  for (const TreePtr &Member : T->kids())
    if (Member && isa<ClassDef>(Member.get()))
      Any = true;
  if (!Any)
    return TreePtr(T);
  TreeList Body;
  for (const TreePtr &Member : T->kids()) {
    if (Member && isa<ClassDef>(Member.get())) {
      auto *Inner = cast<ClassDef>(Member.get());
      Inner->sym()->setOwner(Ctx.syms().rootPackage());
      T->sym()->removeMember(Inner->sym());
      PendingTop.push_back(Member);
      continue;
    }
    Body.push_back(Member);
  }
  return Ctx.trees().makeClassDef(T->loc(), T->sym(), std::move(Body));
}

TreePtr FlattenPhase::transformPackageDef(PackageDef *T,
                                          PhaseRunContext &Ctx) {
  if (PendingTop.empty())
    return TreePtr(T);
  TreeList Kids = T->kids();
  for (TreePtr &Cls : PendingTop)
    Kids.push_back(std::move(Cls));
  PendingTop.clear();
  return Ctx.trees().makePackageDef(T->loc(), T->pkgName(),
                                    std::move(Kids));
}

bool FlattenPhase::checkPostCondition(const Tree *T,
                                      CompilerContext &Comp) const {
  (void)Comp;
  // No class definitions nested inside class bodies.
  if (const auto *CD = dyn_cast<ClassDef>(T)) {
    for (const TreePtr &Member : CD->kids())
      if (Member && isa<ClassDef>(Member.get()))
        return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// RestoreScopes
//===----------------------------------------------------------------------===//

RestoreScopesPhase::RestoreScopesPhase()
    : MiniPhase("RestoreScopes",
                "repairs scopes invalidated by moving definitions") {
  declareTransforms({TreeKind::ClassDef});
  addRunsAfter("Flatten");
}

TreePtr RestoreScopesPhase::transformClassDef(ClassDef *T,
                                              PhaseRunContext &Ctx) {
  (void)Ctx;
  ClassSymbol *Cls = T->sym();
  for (const TreePtr &Member : T->kids()) {
    if (!Member)
      continue;
    Symbol *S = nullptr;
    if (auto *VD = dyn_cast<ValDef>(Member.get()))
      S = VD->sym();
    else if (auto *DD = dyn_cast<DefDef>(Member.get()))
      S = DD->sym();
    if (!S)
      continue;
    if (S->owner() != Cls)
      S->setOwner(Cls);
    if (!Cls->hasMember(S))
      Cls->enterMember(S);
  }
  return TreePtr(T);
}

bool RestoreScopesPhase::checkPostCondition(const Tree *T,
                                            CompilerContext &Comp) const {
  (void)Comp;
  // Every definition in a class body is owned by and a member of it.
  if (const auto *CD = dyn_cast<ClassDef>(T)) {
    ClassSymbol *Cls = CD->sym();
    for (const TreePtr &Member : CD->kids()) {
      if (!Member)
        continue;
      Symbol *S = nullptr;
      if (const auto *VD = dyn_cast<ValDef>(Member.get()))
        S = VD->sym();
      else if (const auto *DD = dyn_cast<DefDef>(Member.get()))
        S = DD->sym();
      if (S && (S->owner() != Cls || !Cls->hasMember(S)))
        return false;
    }
  }
  return true;
}
