//===----------------------------------------------------------------------===//
///
/// \file
/// Fusion block B: PatternMatcher, InterceptedMethods, Splitter,
/// ElimByName, Getters, ExplicitOuter.
///
//===----------------------------------------------------------------------===//

#include "transforms/Phases.h"

#include "ast/TreeUtils.h"
#include "transforms/TransformUtils.h"

using namespace mpc;

//===----------------------------------------------------------------------===//
// PatternMatcher
//===----------------------------------------------------------------------===//

PatternMatcherPhase::PatternMatcherPhase()
    : MiniPhase("PatternMatcher", "compiles pattern matches") {
  declareTransforms({TreeKind::Match});
  declarePrepares({TreeKind::DefDef});
  // Paper §6.3: "the phase that removes pattern matching requires the tail
  // recursion elimination phase to finish processing all the trees".
  addRunsAfterGroupsOf("TailRec");
}

void PatternMatcherPhase::prepareForDefDef(DefDef *T, PhaseRunContext &Ctx) {
  (void)Ctx;
  MethodStack.push_back(T->sym());
}
void PatternMatcherPhase::leaveDefDef(DefDef *T, PhaseRunContext &Ctx) {
  (void)T;
  (void)Ctx;
  MethodStack.pop_back();
}

namespace {
/// Translates one Match into tests/casts/conditionals. Failure
/// continuations are shared subtrees (immutability makes the result a DAG,
/// which reference counting handles naturally).
class MatchCompiler {
public:
  MatchCompiler(PhaseRunContext &Ctx, Symbol *Owner, const Type *ResultTy)
      : Ctx(Ctx), Owner(Owner), ResultTy(ResultTy) {}

  TreePtr compile(Match *M) {
    TreeContext &Trees = Ctx.trees();
    SourceLoc Loc = M->loc();
    Symbol *Sel = Ctx.syms().makeTerm(
        Ctx.syms().freshName("selector"), Owner,
        SymFlag::Local | SymFlag::Synthetic, M->selector()->type());
    // No case matched: throw new MatchError.
    const Type *MatchErrTy =
        Ctx.types().classType(Ctx.syms().matchErrorClass());
    TreePtr Chain = Trees.makeThrow(
        Loc, Trees.makeNew(Loc, MatchErrTy, {}),
        Ctx.types().nothingType());
    for (unsigned I = M->numCases(); I-- > 0;) {
      auto *C = cast<CaseDef>(M->caseAt(I));
      TreePtr Scrut = Trees.makeIdent(Loc, Sel, Sel->info());
      TreePtr Success = TreePtr(C->body());
      if (C->guard())
        Success = Trees.makeIf(C->loc(), TreePtr(C->guard()),
                               std::move(Success), Chain, ResultTy);
      Chain = compilePat(C->pat(), std::move(Scrut), std::move(Success),
                         Chain);
    }
    TreeList Stats;
    Stats.push_back(Trees.makeValDef(Loc, Sel, TreePtr(M->selector())));
    return Trees.makeBlock(Loc, std::move(Stats), std::move(Chain));
  }

private:
  TreePtr castIfNeeded(TreePtr Scrut, const Type *Ty) {
    if (Scrut->type() == Ty)
      return Scrut;
    SourceLoc Loc = Scrut->loc(); // sequenced before the move below
    return makeCast(Ctx, Loc, std::move(Scrut), Ty);
  }

  /// Universal, null-safe equality via Runtime.equals.
  TreePtr equalityTest(SourceLoc Loc, TreePtr Scrut, TreePtr Lit) {
    SymbolTable &Syms = Ctx.syms();
    TreePtr RuntimeRef = Ctx.trees().makeIdent(
        Loc, Syms.runtimeModule(), Syms.runtimeModule()->info());
    TreeList Args;
    Args.push_back(std::move(Scrut));
    Args.push_back(std::move(Lit));
    return makeMemberCall(Ctx, Loc, std::move(RuntimeRef),
                          Syms.runtimeEqualsMethod(),
                          Syms.runtimeEqualsMethod()->info(),
                          std::move(Args));
  }

  TreePtr compilePat(Tree *Pat, TreePtr Scrut, TreePtr Success,
                     TreePtr Fail) {
    TreeContext &Trees = Ctx.trees();
    SourceLoc Loc = Pat->loc();
    switch (Pat->kind()) {
    case TreeKind::Literal:
      return Trees.makeIf(
          Loc, equalityTest(Loc, std::move(Scrut), TreePtr(Pat)),
          std::move(Success), std::move(Fail), ResultTy);
    case TreeKind::Ident:
      // Wildcard: always matches, no binding.
      return Success;
    case TreeKind::Bind: {
      auto *B = cast<Bind>(Pat);
      Symbol *Var = B->sym();
      TreeList Stats;
      Stats.push_back(
          Trees.makeValDef(Loc, Var, castIfNeeded(Scrut, Var->info())));
      TreePtr Bound =
          Trees.makeBlock(Loc, std::move(Stats), std::move(Success));
      return compilePat(B->pat(), std::move(Scrut), std::move(Bound),
                        std::move(Fail));
    }
    case TreeKind::Typed: {
      const Type *TestTy = Pat->type();
      TreePtr Test = makeIsInstanceOf(Ctx, Loc, std::move(Scrut), TestTy);
      return Trees.makeIf(Loc, std::move(Test), std::move(Success),
                          std::move(Fail), ResultTy);
    }
    case TreeKind::UnApply: {
      auto *U = cast<UnApply>(Pat);
      ClassSymbol *Cls = U->caseClass();
      const Type *ClsTy = Pat->type();
      Symbol *Tmp = Ctx.syms().makeTerm(
          Ctx.syms().freshName("unapply"), Owner,
          SymFlag::Local | SymFlag::Synthetic, ClsTy);
      // Destructure fields positionally, innermost test first when
      // folding from the right.
      TreePtr Inner = std::move(Success);
      const auto &Fields = Cls->caseFields();
      for (unsigned I = U->numKids(); I-- > 0;) {
        Symbol *Field = Fields[I];
        TreePtr FieldRead;
        TreePtr TmpRef = Trees.makeIdent(Loc, Tmp, ClsTy);
        if (Field->isMethod() || Field->is(SymFlag::Accessor)) {
          // Getters may already have converted the field.
          FieldRead = makeMemberCall(
              Ctx, Loc, std::move(TmpRef), Field,
              Ctx.types().methodType({}, Field->info()->widenByName()),
              {});
        } else {
          FieldRead =
              Trees.makeSelect(Loc, std::move(TmpRef), Field,
                               Field->info());
        }
        Inner = compilePat(U->kid(I), std::move(FieldRead),
                           std::move(Inner), Fail);
      }
      TreeList Stats;
      TreePtr CastScrut = castIfNeeded(Scrut, ClsTy);
      Stats.push_back(Trees.makeValDef(Loc, Tmp, std::move(CastScrut)));
      TreePtr Body =
          Trees.makeBlock(Loc, std::move(Stats), std::move(Inner));
      TreePtr Test = makeIsInstanceOf(Ctx, Loc, std::move(Scrut),
                                      Ctx.types().classType(Cls));
      return Trees.makeIf(Loc, std::move(Test), std::move(Body),
                          std::move(Fail), ResultTy);
    }
    case TreeKind::Alternative: {
      TreePtr Result = std::move(Fail);
      for (unsigned I = Pat->numKids(); I-- > 0;)
        Result = compilePat(Pat->kid(I), Scrut, Success, std::move(Result));
      return Result;
    }
    default:
      // Unknown pattern form: treat as non-matching.
      return Fail;
    }
  }

  PhaseRunContext &Ctx;
  Symbol *Owner;
  const Type *ResultTy;
};
} // namespace

TreePtr PatternMatcherPhase::transformMatch(Match *T, PhaseRunContext &Ctx) {
  Symbol *Owner = MethodStack.empty() ? Ctx.syms().rootPackage()
                                      : MethodStack.back();
  MatchCompiler MC(Ctx, Owner, T->type());
  return MC.compile(T);
}

bool PatternMatcherPhase::checkPostCondition(const Tree *T,
                                             CompilerContext &Comp) const {
  (void)Comp;
  // Match expressions and the complex pattern forms are gone. CaseDef and
  // Bind survive only in the restricted catch-handler position of Try
  // (simple `e @ (_: T)` shapes the backend executes directly).
  switch (T->kind()) {
  case TreeKind::Match:
  case TreeKind::UnApply:
  case TreeKind::Alternative:
    return false;
  default:
    return true;
  }
}

//===----------------------------------------------------------------------===//
// InterceptedMethods
//===----------------------------------------------------------------------===//

InterceptedMethodsPhase::InterceptedMethodsPhase()
    : MiniPhase("InterceptedMethods",
                "special handling of ==, != and equals") {
  declareTransforms({TreeKind::Apply});
}

TreePtr InterceptedMethodsPhase::transformApply(Apply *T,
                                                PhaseRunContext &Ctx) {
  const auto *Sel = dyn_cast<Select>(T->fun());
  if (!Sel || T->numArgs() != 1)
    return TreePtr(T);
  SymbolTable &Syms = Ctx.syms();
  Symbol *Sym = Sel->sym();
  ClassSymbol *Obj = Syms.objectClass();
  bool IsEq = Sym->owner() == Obj && (Sym->name() == Syms.std().EqEq ||
                                      Sym->name() == Syms.std().Equals);
  bool IsNe = Sym->owner() == Obj && Sym->name() == Syms.std().BangEq;
  if (!IsEq && !IsNe)
    return TreePtr(T);

  TreePtr RuntimeRef = Ctx.trees().makeIdent(
      T->loc(), Syms.runtimeModule(), Syms.runtimeModule()->info());
  TreeList Args;
  Args.push_back(TreePtr(Sel->qual()));
  Args.push_back(TreePtr(T->arg(0)));
  TreePtr Call = makeMemberCall(Ctx, T->loc(), std::move(RuntimeRef),
                                Syms.runtimeEqualsMethod(),
                                Syms.runtimeEqualsMethod()->info(),
                                std::move(Args));
  if (!IsNe)
    return Call;
  // a != b  ->  !(Runtime.equals(a, b))
  Symbol *Not = Syms.primOp(PrimKind::Boolean,
                            Ctx.Comp.names().intern("unary_!"));
  return makeMemberCall(Ctx, T->loc(), std::move(Call), Not, Not->info(),
                        {});
}

//===----------------------------------------------------------------------===//
// Splitter
//===----------------------------------------------------------------------===//

SplitterPhase::SplitterPhase()
    : MiniPhase("Splitter",
                "expands selections on union types into conditionals") {
  declareTransforms({TreeKind::Apply, TreeKind::Select});
  declarePrepares({TreeKind::DefDef});
}

void SplitterPhase::prepareForDefDef(DefDef *T, PhaseRunContext &Ctx) {
  (void)Ctx;
  MethodStack.push_back(T->sym());
}
void SplitterPhase::leaveDefDef(DefDef *T, PhaseRunContext &Ctx) {
  (void)T;
  (void)Ctx;
  MethodStack.pop_back();
}

/// Collects the class-type leaves of a union; returns false when a leaf is
/// not a plain class type.
static bool unionLeaves(const Type *T, std::vector<const ClassType *> &Out) {
  if (const auto *U = dyn_cast<UnionType>(T))
    return unionLeaves(U->left(), Out) && unionLeaves(U->right(), Out);
  if (const auto *CT = dyn_cast<ClassType>(T)) {
    Out.push_back(CT);
    return true;
  }
  return false;
}

TreePtr SplitterPhase::transformApply(Apply *T, PhaseRunContext &Ctx) {
  const auto *Sel = dyn_cast<Select>(T->fun());
  if (!Sel || !Sel->qual()->type() ||
      !isa<UnionType>(Sel->qual()->type()))
    return TreePtr(T);
  std::vector<const ClassType *> Leaves;
  if (!unionLeaves(Sel->qual()->type(), Leaves) || Leaves.size() < 2)
    return TreePtr(T);

  TreeContext &Trees = Ctx.trees();
  SourceLoc Loc = T->loc();
  Symbol *Owner = MethodStack.empty() ? Ctx.syms().rootPackage()
                                      : MethodStack.back();
  Symbol *Tmp = Ctx.syms().makeTerm(Ctx.syms().freshName("union"), Owner,
                                    SymFlag::Local | SymFlag::Synthetic,
                                    Sel->qual()->type());

  // Innermost alternative: unconditionally dispatch on the last leaf.
  auto MakeBranchCall = [&](const ClassType *Leaf) -> TreePtr {
    Symbol *Member = Leaf->cls()->findMember(Sel->sym()->name());
    if (!Member)
      Member = Sel->sym();
    TreePtr Recv = makeCast(
        Ctx, Loc, Trees.makeIdent(Loc, Tmp, Tmp->info()), Leaf);
    TreePtr Fun = Trees.makeSelect(Loc, std::move(Recv), Member,
                                   Sel->type());
    TreeList Args;
    for (unsigned I = 0; I < T->numArgs(); ++I)
      Args.push_back(TreePtr(T->arg(I)));
    return Trees.makeApply(Loc, std::move(Fun), std::move(Args), T->type());
  };

  TreePtr Chain = MakeBranchCall(Leaves.back());
  for (unsigned I = static_cast<unsigned>(Leaves.size()) - 1; I-- > 0;) {
    TreePtr Test = makeIsInstanceOf(
        Ctx, Loc, Trees.makeIdent(Loc, Tmp, Tmp->info()), Leaves[I]);
    Chain = Trees.makeIf(Loc, std::move(Test), MakeBranchCall(Leaves[I]),
                         std::move(Chain), T->type());
  }
  TreeList Stats;
  Stats.push_back(Trees.makeValDef(Loc, Tmp, TreePtr(Sel->qual())));
  return Trees.makeBlock(Loc, std::move(Stats), std::move(Chain));
}

TreePtr SplitterPhase::transformSelect(Select *T, PhaseRunContext &Ctx) {
  // Bare selections on unions (field reads) — rare after Getters, but
  // handled the same way.
  if (!T->qual()->type() || !isa<UnionType>(T->qual()->type()))
    return TreePtr(T);
  if (T->type() && (isa<MethodType>(T->type()) || isa<PolyType>(T->type())))
    return TreePtr(T); // function position; the Apply hook splits it
  std::vector<const ClassType *> Leaves;
  if (!unionLeaves(T->qual()->type(), Leaves) || Leaves.size() < 2)
    return TreePtr(T);

  TreeContext &Trees = Ctx.trees();
  SourceLoc Loc = T->loc();
  Symbol *Owner = MethodStack.empty() ? Ctx.syms().rootPackage()
                                      : MethodStack.back();
  Symbol *Tmp = Ctx.syms().makeTerm(Ctx.syms().freshName("union"), Owner,
                                    SymFlag::Local | SymFlag::Synthetic,
                                    T->qual()->type());
  auto MakeBranch = [&](const ClassType *Leaf) -> TreePtr {
    Symbol *Member = Leaf->cls()->findMember(T->sym()->name());
    if (!Member)
      Member = T->sym();
    TreePtr Recv = makeCast(
        Ctx, Loc, Trees.makeIdent(Loc, Tmp, Tmp->info()), Leaf);
    return Trees.makeSelect(Loc, std::move(Recv), Member, T->type());
  };
  TreePtr Chain = MakeBranch(Leaves.back());
  for (unsigned I = static_cast<unsigned>(Leaves.size()) - 1; I-- > 0;) {
    TreePtr Test = makeIsInstanceOf(
        Ctx, Loc, Trees.makeIdent(Loc, Tmp, Tmp->info()), Leaves[I]);
    Chain = Trees.makeIf(Loc, std::move(Test), MakeBranch(Leaves[I]),
                         std::move(Chain), T->type());
  }
  TreeList Stats;
  Stats.push_back(Trees.makeValDef(Loc, Tmp, TreePtr(T->qual())));
  return Trees.makeBlock(Loc, std::move(Stats), std::move(Chain));
}

bool SplitterPhase::checkPostCondition(const Tree *T,
                                       CompilerContext &Comp) const {
  // Erasure's precondition (paper §6.2.2): no member selections on
  // union-typed receivers. The type-test intrinsics are exempt — they
  // are erased, not dispatched.
  if (const auto *Sel = dyn_cast<Select>(T)) {
    if (Sel->sym() == Comp.syms().isInstanceOfMethod() ||
        Sel->sym() == Comp.syms().asInstanceOfMethod())
      return true;
    const Type *QT = Sel->qual()->type();
    if (QT && isa<UnionType>(QT)) {
      std::vector<const ClassType *> Leaves;
      if (unionLeaves(QT, Leaves))
        return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// ElimByName
//===----------------------------------------------------------------------===//

ElimByNamePhase::ElimByNamePhase()
    : MiniPhase("ElimByName",
                "expands by-name parameters and arguments") {
  declareTransforms({TreeKind::Ident, TreeKind::Apply, TreeKind::DefDef});
}

TreePtr ElimByNamePhase::transformIdent(Ident *T, PhaseRunContext &Ctx) {
  Symbol *Sym = T->sym();
  if (!Sym || !Sym->is(SymFlag::Param) || !Sym->info() ||
      !isa<ExprType>(Sym->info()))
    return TreePtr(T);
  // x  ->  x.apply()   (the parameter becomes a Function0 thunk).
  TypeContext &Types = Ctx.types();
  const Type *ValueTy = cast<ExprType>(Sym->info())->result();
  const Type *ThunkTy = Types.functionType({}, ValueTy);
  TreePtr Ref = Ctx.trees().makeIdent(T->loc(), Sym, ThunkTy);
  Symbol *ApplySym =
      Ctx.syms().functionClass(0)->findDeclaredMember(Ctx.syms().std().Apply);
  return makeMemberCall(Ctx, T->loc(), std::move(Ref), ApplySym,
                        Types.methodType({}, ValueTy), {});
}

TreePtr ElimByNamePhase::transformApply(Apply *T, PhaseRunContext &Ctx) {
  const auto *MT = dyn_cast_or_null<MethodType>(T->fun()->type());
  if (!MT)
    return TreePtr(T);
  bool HasByName = false;
  for (const Type *P : MT->params())
    if (isa<ExprType>(P))
      HasByName = true;
  if (!HasByName)
    return TreePtr(T);

  TypeContext &Types = Ctx.types();
  TreeList Args;
  std::vector<const Type *> NewParams;
  for (unsigned I = 0; I < T->numArgs(); ++I) {
    const Type *P = I < MT->params().size() ? MT->params()[I] : nullptr;
    if (P && isa<ExprType>(P)) {
      const Type *ValueTy = cast<ExprType>(P)->result();
      const Type *ThunkTy = Types.functionType({}, ValueTy);
      Args.push_back(Ctx.trees().makeClosure(T->arg(I)->loc(), {},
                                             TreePtr(T->arg(I)), ThunkTy));
      NewParams.push_back(ThunkTy);
    } else {
      Args.push_back(TreePtr(T->arg(I)));
      NewParams.push_back(P);
    }
  }
  TreePtr NewFun = Ctx.trees().withType(
      T->fun(), Types.methodType(std::move(NewParams), MT->result()));
  return Ctx.trees().makeApply(T->loc(), std::move(NewFun), std::move(Args),
                               T->type());
}

TreePtr ElimByNamePhase::transformDefDef(DefDef *T, PhaseRunContext &Ctx) {
  TypeContext &Types = Ctx.types();
  Symbol *Sym = T->sym();
  bool Any = false;
  for (unsigned I = 0; I < T->numParamsTotal(); ++I) {
    auto *PD = cast<ValDef>(T->paramAt(I));
    if (const auto *ET = dyn_cast_or_null<ExprType>(PD->sym()->info())) {
      PD->sym()->setInfo(Types.functionType({}, ET->result()));
      Any = true;
    }
  }
  if (!Any)
    return TreePtr(T);
  const Type *Info = Sym->info();
  const PolyType *Poly = dyn_cast<PolyType>(Info);
  const auto *MT = cast<MethodType>(Poly ? Poly->underlying() : Info);
  std::vector<const Type *> Params;
  for (const Type *P : MT->params())
    Params.push_back(isa<ExprType>(P)
                         ? Types.functionType(
                               {}, cast<ExprType>(P)->result())
                         : P);
  const Type *NewMT = Types.methodType(std::move(Params), MT->result());
  Sym->setInfo(Poly ? Types.polyType(Poly->typeParams(), NewMT) : NewMT);
  return TreePtr(T);
}

bool ElimByNamePhase::checkPostCondition(const Tree *T,
                                         CompilerContext &Comp) const {
  (void)Comp;
  if (const auto *DD = dyn_cast<DefDef>(T)) {
    for (unsigned I = 0; I < DD->numParamsTotal(); ++I) {
      const auto *PD = cast<ValDef>(DD->paramAt(I));
      if (PD->sym()->info() && isa<ExprType>(PD->sym()->info()))
        return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Getters
//===----------------------------------------------------------------------===//

GettersPhase::GettersPhase()
    : MiniPhase("Getters",
                "replaces non-private vals with getter defs") {
  declareTransforms({TreeKind::ValDef, TreeKind::Select});
}

bool GettersPhase::isGetterCandidate(const Symbol *S) {
  if (!S || S->isClass())
    return false;
  Symbol *Owner = S->owner();
  if (!Owner || !Owner->isClass())
    return false;
  if (S->is(SymFlag::Local) || S->is(SymFlag::Mutable) ||
      S->is(SymFlag::Private) || S->is(SymFlag::Builtin))
    return false;
  return S->is(SymFlag::Field) || S->is(SymFlag::Accessor);
}

TreePtr GettersPhase::transformValDef(ValDef *T, PhaseRunContext &Ctx) {
  Symbol *Sym = T->sym();
  if (!isGetterCandidate(Sym) || Sym->is(SymFlag::Accessor))
    return TreePtr(T);
  // val x: T = rhs  ->  def x(): T = rhs  (field re-added by Memoize).
  const Type *ValueTy = Sym->info();
  Sym->setFlag(SymFlag::Method | SymFlag::Accessor);
  Sym->clearFlag(SymFlag::Field);
  Sym->setInfo(Ctx.types().methodType({}, ValueTy));
  return Ctx.trees().makeDefDef(T->loc(), Sym, {0}, {}, TreePtr(T->rhs()));
}

TreePtr GettersPhase::transformSelect(Select *T, PhaseRunContext &Ctx) {
  Symbol *Sym = T->sym();
  if (!isGetterCandidate(Sym))
    return TreePtr(T);
  if (T->type() && isa<MethodType>(T->type()))
    return TreePtr(T); // already in function position
  // x  ->  x()   (field read becomes accessor call).
  const Type *ValueTy = T->type();
  TreePtr Fun = Ctx.trees().withType(
      T, Ctx.types().methodType({}, ValueTy));
  return Ctx.trees().makeApply(T->loc(), std::move(Fun), {}, ValueTy);
}

//===----------------------------------------------------------------------===//
// ExplicitOuter
//===----------------------------------------------------------------------===//

ExplicitOuterPhase::ExplicitOuterPhase()
    : MiniPhase("ExplicitOuter",
                "adds outer pointers to nested classes") {
  declareTransforms({TreeKind::This, TreeKind::New, TreeKind::ClassDef});
  declarePrepares({TreeKind::ClassDef});
}

bool ExplicitOuterPhase::needsOuter(const ClassSymbol *Cls) {
  if (!Cls || Cls->isTrait() || Cls->is(SymFlag::ModuleClass) ||
      Cls->is(SymFlag::Builtin) || Cls->is(SymFlag::Synthetic))
    return false;
  Symbol *Owner = Cls->owner();
  return Owner && Owner->isClass() && !Owner->is(SymFlag::ModuleClass);
}

Symbol *ExplicitOuterPhase::outerFieldOf(ClassSymbol *Cls,
                                         PhaseRunContext &Ctx) {
  auto It = OuterFields.find(Cls);
  if (It != OuterFields.end())
    return It->second;
  auto *OwnerCls = cast<ClassSymbol>(Cls->owner());
  Symbol *Field = Ctx.syms().makeTerm(
      Ctx.syms().std().Outer, Cls,
      SymFlag::Field | SymFlag::Synthetic | SymFlag::Local,
      Ctx.types().classType(OwnerCls));
  Cls->enterMember(Field);
  OuterFields[Cls] = Field;
  return Field;
}

void ExplicitOuterPhase::prepareForClassDef(ClassDef *T,
                                            PhaseRunContext &Ctx) {
  (void)Ctx;
  ClassStack.push_back(T->sym());
}
void ExplicitOuterPhase::leaveClassDef(ClassDef *T, PhaseRunContext &Ctx) {
  (void)T;
  (void)Ctx;
  ClassStack.pop_back();
}

TreePtr ExplicitOuterPhase::transformThis(This *T, PhaseRunContext &Ctx) {
  if (ClassStack.empty())
    return TreePtr(T);
  ClassSymbol *Inner = ClassStack.back();
  if (!needsOuter(Inner) || T->cls() == Inner ||
      T->cls() != Inner->owner())
    return TreePtr(T);
  // this(Outer)  ->  this(Inner).$outer
  Symbol *Field = outerFieldOf(Inner, Ctx);
  TreePtr Self = makeSelfRef(Ctx, T->loc(), Inner);
  return Ctx.trees().makeSelect(T->loc(), std::move(Self), Field,
                                Field->info());
}

TreePtr ExplicitOuterPhase::transformNew(New *T, PhaseRunContext &Ctx) {
  ClassSymbol *Cls = T->classTy()->classSymbol();
  if (!Cls || !needsOuter(Cls))
    return TreePtr(T);
  // new Inner(args)  ->  new Inner(args, <enclosing this>).
  auto *OwnerCls = cast<ClassSymbol>(Cls->owner());
  TreeList Args = T->kids();
  Args.push_back(makeSelfRef(Ctx, T->loc(), OwnerCls));
  return Ctx.trees().makeNew(T->loc(), T->classTy(), std::move(Args));
}

TreePtr ExplicitOuterPhase::transformClassDef(ClassDef *T,
                                              PhaseRunContext &Ctx) {
  ClassSymbol *Cls = T->sym();
  if (!needsOuter(Cls))
    return TreePtr(T);
  TypeContext &Types = Ctx.types();
  auto *OwnerCls = cast<ClassSymbol>(Cls->owner());
  const Type *OuterTy = Types.classType(OwnerCls);
  Symbol *Field = outerFieldOf(Cls, Ctx);

  // Extend <init> with the trailing $outer parameter and the field store.
  Symbol *Init = Cls->findDeclaredMember(Ctx.syms().std().Init);
  TreeList Body = T->kids();
  for (TreePtr &Member : Body) {
    auto *DD = dyn_cast_or_null<DefDef>(Member.get());
    if (!DD || DD->sym() != Init)
      continue;
    Symbol *Param = Ctx.syms().makeTerm(
        Ctx.syms().freshName("outer"), Init,
        SymFlag::Param | SymFlag::Local | SymFlag::Synthetic, OuterTy);
    const auto *MT = cast<MethodType>(Init->info());
    std::vector<const Type *> Params = MT->params();
    Params.push_back(OuterTy);
    Init->setInfo(Types.methodType(std::move(Params), MT->result()));

    TreeList Kids = DD->kids();
    TreePtr Rhs = std::move(Kids.back());
    Kids.pop_back();
    Kids.push_back(Ctx.trees().makeValDef(T->loc(), Param, nullptr));
    // Prepend the store to the constructor body.
    TreePtr Store = Ctx.trees().makeAssign(
        T->loc(),
        Ctx.trees().makeSelect(T->loc(), makeSelfRef(Ctx, T->loc(), Cls),
                               Field, Field->info()),
        Ctx.trees().makeIdent(T->loc(), Param, OuterTy),
        Types.unitType());
    TreeList RhsStats;
    RhsStats.push_back(std::move(Store));
    RhsStats.push_back(std::move(Rhs));
    TreePtr NewRhs = Ctx.trees().makeBlock(T->loc(), std::move(RhsStats),
                                           makeUnitLit(Ctx, T->loc()));
    std::vector<uint32_t> Sizes = DD->paramListSizes();
    if (Sizes.empty())
      Sizes.push_back(0);
    Sizes.back() += 1;
    Member = Ctx.trees().makeDefDef(DD->loc(), Init, std::move(Sizes),
                                    std::move(Kids), std::move(NewRhs));
  }
  // Add the field declaration itself.
  Body.push_back(Ctx.trees().makeValDef(T->loc(), Field, nullptr));
  return Ctx.trees().makeClassDef(T->loc(), Cls, std::move(Body));
}
