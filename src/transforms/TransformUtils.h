//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared helpers for transformation phases.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_TRANSFORMS_TRANSFORMUTILS_H
#define MPC_TRANSFORMS_TRANSFORMUTILS_H

#include "core/Phase.h"

namespace mpc {

/// () literal of type Unit.
inline TreePtr makeUnitLit(PhaseRunContext &Ctx, SourceLoc Loc) {
  return Ctx.trees().makeLiteral(Loc, Constant::makeUnit(),
                                 Ctx.types().unitType());
}

/// `this` of \p Cls with its (possibly generic) self type.
inline TreePtr makeSelfRef(PhaseRunContext &Ctx, SourceLoc Loc,
                           ClassSymbol *Cls) {
  return Ctx.trees().makeThis(Loc, Cls, Cls->info());
}

/// Call `<receiver>.isInstanceOf[TestTy]` (fully applied).
TreePtr makeIsInstanceOf(PhaseRunContext &Ctx, SourceLoc Loc, TreePtr Recv,
                         const Type *TestTy);

/// Cast `<receiver>.asInstanceOf[TargetTy]`, represented as Typed.
TreePtr makeCast(PhaseRunContext &Ctx, SourceLoc Loc, TreePtr Recv,
                 const Type *TargetTy);

/// Fully applied call of a member: `recv.sym(args)` with explicit types.
TreePtr makeMemberCall(PhaseRunContext &Ctx, SourceLoc Loc, TreePtr Recv,
                       Symbol *Member, const Type *MemberMT, TreeList Args);

} // namespace mpc

#endif // MPC_TRANSFORMS_TRANSFORMUTILS_H
