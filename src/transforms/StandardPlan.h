//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline assembly: the standard (Dotty-like, Table 2) phase plan with
/// its six fusion blocks plus the Erasure megaphase, and the legacy
/// (scalac-like, Table 1) plan used by the Figure 9 baseline.
///
//===----------------------------------------------------------------------===//

#ifndef MPC_TRANSFORMS_STANDARDPLAN_H
#define MPC_TRANSFORMS_STANDARDPLAN_H

#include "core/PhasePlan.h"
#include "transforms/Phases.h"

#include <functional>

namespace mpc {

/// Builds the standard transformation pipeline. With \p Fuse the
/// miniphases fuse into blocks (the paper's Miniphase configuration);
/// without it every phase is a separate traversal (the Megaphase
/// configuration of the evaluation). Ordering constraints are validated;
/// errors are appended to \p Errors.
PhasePlan makeStandardPlan(bool Fuse, std::vector<std::string> &Errors);

/// Edits the phase list of a plan under construction (insert custom
/// phases, drop or reorder standard ones).
using PlanCustomizer =
    std::function<void(std::vector<std::unique_ptr<Phase>> &)>;

/// Like makeStandardPlan, but runs \p Customize on the standard phase
/// list before the plan is built and its ordering constraints validated —
/// the entry point for downstream users adding their own miniphases.
/// A customized miniphase fuses into the surrounding block like any
/// standard phase: extending the pipeline costs no extra traversal.
PhasePlan makeCustomizedPlan(bool Fuse, std::vector<std::string> &Errors,
                             const PlanCustomizer &Customize);

/// Builds the scalac-like legacy plan: the same transformations arranged
/// in Table 1 style (hand-fused groups, run unfused). Used with
/// CompilerOptions::AlwaysCopy as the Figure 9 baseline.
PhasePlan makeLegacyPlan(std::vector<std::string> &Errors);

/// Returns the CollectEntryPoints phase of a plan (for the backend), or
/// null.
CollectEntryPointsPhase *findEntryPoints(const PhasePlan &Plan);

} // namespace mpc

#endif // MPC_TRANSFORMS_STANDARDPLAN_H
