#include "transforms/TreeClone.h"

#include "ast/TreeUtils.h"

#include <functional>
#include <set>

using namespace mpc;

namespace {
class Cloner {
public:
  Cloner(CompilerContext &Comp, SymbolMap &Subst, Symbol *NewOwner,
         ClassSymbol *ThisFrom, TreePtr ThisReplacement,
         const IdentMap *Idents)
      : Comp(Comp), Subst(Subst), NewOwner(NewOwner), ThisFrom(ThisFrom),
        ThisReplacement(std::move(ThisReplacement)), Idents(Idents) {}

  Symbol *mapSym(Symbol *S) {
    if (!S)
      return S;
    auto It = Subst.find(S);
    return It == Subst.end() ? S : It->second;
  }

  /// Fresh clone for a locally-defined symbol.
  Symbol *freshLocal(Symbol *S) {
    auto It = Subst.find(S);
    if (It != Subst.end())
      return It->second;
    Symbol *Clone = Comp.syms().makeTerm(
        S->name(), NewOwner ? NewOwner : S->owner(), S->flags(), S->info());
    Clone->setLoc(S->loc());
    Subst[S] = Clone;
    return Clone;
  }

  TreePtr clone(Tree *T) {
    if (!T)
      return nullptr;
    TreeContext &Trees = Comp.trees();
    SourceLoc L = T->loc();
    const Type *Ty = T->type();

    switch (T->kind()) {
    case TreeKind::Ident: {
      Symbol *S = cast<Ident>(T)->sym();
      if (Idents) {
        auto It = Idents->find(S);
        if (It != Idents->end())
          return It->second;
      }
      return Trees.makeIdent(L, mapSym(S), Ty);
    }
    case TreeKind::This: {
      auto *TN = cast<This>(T);
      if (ThisReplacement && TN->cls() == ThisFrom)
        return ThisReplacement;
      return TreePtr(T); // `this` of unrelated classes is shared as-is
    }
    case TreeKind::Literal:
    case TreeKind::Super:
      return TreePtr(T); // leaves without symbol payloads to remap
    case TreeKind::Goto:
      return Trees.makeGoto(L, mapSym(cast<Goto>(T)->label()), Ty);
    case TreeKind::Select: {
      auto *S = cast<Select>(T);
      return Trees.makeSelect(L, clone(S->qual()), mapSym(S->sym()), Ty);
    }
    case TreeKind::Bind: {
      auto *B = cast<Bind>(T);
      Symbol *Fresh = freshLocal(B->sym());
      TreePtr Pat = clone(B->pat());
      return Trees.makeBind(L, Fresh, std::move(Pat));
    }
    case TreeKind::Labeled: {
      auto *LB = cast<Labeled>(T);
      Symbol *Fresh = freshLocal(LB->label());
      return Trees.makeLabeled(L, Fresh, clone(LB->body()), Ty);
    }
    case TreeKind::Return: {
      // The return target is remapped if the enclosing method was cloned.
      auto *R = cast<Return>(T);
      return Trees.makeReturn(L, clone(R->expr()), mapSym(R->fromMethod()),
                              Ty);
    }
    case TreeKind::ValDef: {
      auto *VD = cast<ValDef>(T);
      Symbol *Fresh = freshLocal(VD->sym());
      return Trees.makeValDef(L, Fresh, clone(VD->rhs()));
    }
    case TreeKind::DefDef: {
      auto *DD = cast<DefDef>(T);
      Symbol *Fresh = freshLocal(DD->sym());
      TreeList Params;
      for (unsigned I = 0; I < DD->numParamsTotal(); ++I)
        Params.push_back(clone(DD->paramAt(I)));
      // Params of the cloned method belong to it.
      for (TreePtr &P : Params)
        if (P)
          cast<ValDef>(P.get())->sym()->setOwner(Fresh);
      return Trees.makeDefDef(L, Fresh, DD->paramListSizes(),
                              std::move(Params), clone(DD->rhs()));
    }
    case TreeKind::ClassDef:
      // Classes are not cloned structurally; share the subtree.
      return TreePtr(T);
    default: {
      // Generic: clone children, rebuild with the same payload.
      TreeList NewKids;
      NewKids.reserve(T->numKids());
      bool Changed = false;
      for (const TreePtr &K : T->kids()) {
        TreePtr NK = clone(K.get());
        if (NK.get() != K.get())
          Changed = true;
        NewKids.push_back(std::move(NK));
      }
      if (!Changed)
        return TreePtr(T);
      return Trees.withNewChildrenForced(T, std::move(NewKids));
    }
    }
  }

private:
  CompilerContext &Comp;
  SymbolMap &Subst;
  Symbol *NewOwner;
  ClassSymbol *ThisFrom;
  TreePtr ThisReplacement;
  const IdentMap *Idents;
};
} // namespace

TreePtr mpc::cloneTree(CompilerContext &Comp, Tree *T, SymbolMap &Subst,
                       Symbol *NewOwner, ClassSymbol *ThisFrom,
                       TreePtr ThisReplacement, const IdentMap *Idents) {
  Cloner C(Comp, Subst, NewOwner, ThisFrom, std::move(ThisReplacement),
           Idents);
  return C.clone(T);
}

std::vector<Symbol *> mpc::freeLocals(Tree *T, bool *UsesThis) {
  std::vector<Symbol *> Free;
  std::set<Symbol *> Defined;
  std::set<Symbol *> Seen;
  if (UsesThis)
    *UsesThis = false;

  // First collect every symbol defined inside the subtree.
  forEachSubtree(T, [&](Tree *Node) {
    if (auto *VD = dyn_cast<ValDef>(Node))
      Defined.insert(VD->sym());
    else if (auto *DD = dyn_cast<DefDef>(Node))
      Defined.insert(DD->sym());
    else if (auto *B = dyn_cast<Bind>(Node))
      Defined.insert(B->sym());
    else if (auto *LB = dyn_cast<Labeled>(Node))
      Defined.insert(LB->label());
  });
  // Then find references to local symbols defined elsewhere. Identifiers
  // in pattern position (a CaseDef's pattern, e.g. wildcards in catch
  // handlers) are binders/placeholders, not references.
  std::function<void(Tree *)> ScanRefs = [&](Tree *Node) {
    if (!Node)
      return;
    Symbol *Ref = nullptr;
    if (auto *Id = dyn_cast<Ident>(Node))
      Ref = Id->sym();
    if (Ref && Ref->is(SymFlag::Local) && !Ref->isClass() &&
        !Ref->is(SymFlag::Field) && !Ref->is(SymFlag::Method) &&
        !Defined.count(Ref) && Seen.insert(Ref).second)
      Free.push_back(Ref);
    if (UsesThis && isa<This>(Node))
      *UsesThis = true;
    bool IsCase = isa<CaseDef>(Node);
    for (unsigned I = 0; I < Node->numKids(); ++I) {
      if (IsCase && I == 0)
        continue; // skip the pattern slot
      ScanRefs(Node->kid(I));
    }
  };
  ScanRefs(T);
  return Free;
}
