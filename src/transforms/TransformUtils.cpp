#include "transforms/TransformUtils.h"

using namespace mpc;

TreePtr mpc::makeIsInstanceOf(PhaseRunContext &Ctx, SourceLoc Loc,
                              TreePtr Recv, const Type *TestTy) {
  SymbolTable &Syms = Ctx.syms();
  TypeContext &Types = Ctx.types();
  Symbol *Sym = Syms.isInstanceOfMethod();
  TreePtr Sel = Ctx.trees().makeSelect(Loc, std::move(Recv), Sym,
                                       Sym->info());
  const Type *MT = Types.methodType({}, Types.booleanType());
  TreePtr TApp = Ctx.trees().makeTypeApply(Loc, std::move(Sel), {TestTy}, MT);
  return Ctx.trees().makeApply(Loc, std::move(TApp), {},
                               Types.booleanType());
}

TreePtr mpc::makeCast(PhaseRunContext &Ctx, SourceLoc Loc, TreePtr Recv,
                      const Type *TargetTy) {
  return Ctx.trees().makeTyped(Loc, std::move(Recv), TargetTy);
}

TreePtr mpc::makeMemberCall(PhaseRunContext &Ctx, SourceLoc Loc, TreePtr Recv,
                            Symbol *Member, const Type *MemberMT,
                            TreeList Args) {
  const auto *MT = cast<MethodType>(MemberMT);
  TreePtr Sel =
      Ctx.trees().makeSelect(Loc, std::move(Recv), Member, MemberMT);
  return Ctx.trees().makeApply(Loc, std::move(Sel), std::move(Args),
                               MT->result());
}
