#include "transforms/StandardPlan.h"

#include "transforms/Phases.h"

using namespace mpc;

PhasePlan mpc::makeStandardPlan(bool Fuse,
                                std::vector<std::string> &Errors) {
  return makeCustomizedPlan(Fuse, Errors,
                            [](std::vector<std::unique_ptr<Phase>> &) {});
}

PhasePlan mpc::makeCustomizedPlan(bool Fuse,
                                  std::vector<std::string> &Errors,
                                  const PlanCustomizer &Customize) {
  std::vector<std::unique_ptr<Phase>> Phases;
  // Block A — normalization.
  Phases.push_back(std::make_unique<RefChecksPhase>());
  Phases.push_back(std::make_unique<FirstTransformPhase>());
  Phases.push_back(std::make_unique<UncurryPhase>());
  Phases.push_back(std::make_unique<ElimRepeatedPhase>());
  Phases.push_back(std::make_unique<ClassOfPhase>());
  Phases.push_back(std::make_unique<LiftTryPhase>());
  Phases.push_back(std::make_unique<TailRecPhase>());
  // Block B — patterns and accessors (PatternMatcher's
  // runsAfterGroupsOf(TailRec) starts the new block).
  Phases.push_back(std::make_unique<PatternMatcherPhase>());
  Phases.push_back(std::make_unique<InterceptedMethodsPhase>());
  Phases.push_back(std::make_unique<SplitterPhase>());
  Phases.push_back(std::make_unique<ElimByNamePhase>());
  Phases.push_back(std::make_unique<GettersPhase>());
  Phases.push_back(std::make_unique<ExplicitOuterPhase>());
  // Erasure — a megaphase, necessarily its own group.
  Phases.push_back(std::make_unique<ErasurePhase>());
  // Block C — traits and fields.
  Phases.push_back(std::make_unique<MixinPhase>());
  Phases.push_back(std::make_unique<LazyValsPhase>());
  Phases.push_back(std::make_unique<MemoizePhase>());
  Phases.push_back(std::make_unique<NonLocalReturnsPhase>());
  Phases.push_back(std::make_unique<CapturedVarsPhase>());
  // Constructors and closures: these fuse with the block above —
  // Constructors rearranges class bodies only at the ClassDef node, after
  // Memoize (an earlier phase of the group) has already extended them at
  // that same visit.
  Phases.push_back(std::make_unique<ConstructorsPhase>());
  Phases.push_back(std::make_unique<FunctionValuesPhase>());
  Phases.push_back(std::make_unique<ElimStaticThisPhase>());
  // Block E — lifting.
  Phases.push_back(std::make_unique<LambdaLiftPhase>());
  Phases.push_back(std::make_unique<FlattenPhase>());
  Phases.push_back(std::make_unique<RestoreScopesPhase>());
  // Block F — backend preparation.
  Phases.push_back(std::make_unique<CollectEntryPointsPhase>());
  Phases.push_back(std::make_unique<FlattenBlocksPhase>());
  Phases.push_back(std::make_unique<LabelDefsPhase>());
  Customize(Phases);
  return PhasePlan::build(std::move(Phases), Fuse, Errors);
}

PhasePlan mpc::makeLegacyPlan(std::vector<std::string> &Errors) {
  // The scalac-style pipeline: same transformations, no fusion (each phase
  // re-traverses every tree, like Table 1's 24 passes).
  return makeStandardPlan(/*Fuse=*/false, Errors);
}

CollectEntryPointsPhase *mpc::findEntryPoints(const PhasePlan &Plan) {
  for (Phase *P : Plan.phases())
    if (P->name() == "CollectEntryPoints")
      return static_cast<CollectEntryPointsPhase *>(P);
  return nullptr;
}
