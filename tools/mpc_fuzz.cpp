//===----------------------------------------------------------------------===//
// mpc_fuzz — deterministic full-pipeline fuzz driver.
//
// Runs seeded generator families (valid and adversarial) through the whole
// compiler and checks the totality properties (no crashes, deterministic
// diagnostics, warm == cold after context recycling). Every case replays
// from its (family, seed, scale) triple:
//
//   mpc_fuzz --seeds 10000                    # full campaign
//   mpc_fuzz --families truncated,mixed       # subset
//   mpc_fuzz --start 1234 --seeds 1 --dump    # reproduce one case
//
// Exit code 0 when every property held, 1 otherwise.
//===----------------------------------------------------------------------===//

#include "workload/Fuzzer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace mpc;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: mpc_fuzz [options]\n"
      "  --seeds N        number of seeds per family (default 100)\n"
      "  --start N        first seed (default 0)\n"
      "  --scale F        program size scale (default 0.25)\n"
      "  --families a,b   comma-separated subset (default: all)\n"
      "  --dump           print each case's generated sources\n"
      "  --list-families  print family names and exit\n");
}

Family parseFamily(const std::string &Name, bool &Ok) {
  for (Family F : allFamilies())
    if (Name == familyName(F)) {
      Ok = true;
      return F;
    }
  Ok = false;
  return Family::Mixed;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t NumSeeds = 100;
  uint64_t StartSeed = 0;
  double Scale = 0.25;
  bool Dump = false;
  std::vector<Family> Families = allFamilies();

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        usage();
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--seeds") {
      NumSeeds = std::strtoull(NextValue(), nullptr, 10);
    } else if (Arg == "--start") {
      StartSeed = std::strtoull(NextValue(), nullptr, 10);
    } else if (Arg == "--scale") {
      Scale = std::strtod(NextValue(), nullptr);
    } else if (Arg == "--families") {
      Families.clear();
      std::string List = NextValue();
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        std::string Name = List.substr(Pos, Comma - Pos);
        if (!Name.empty()) {
          bool Ok = false;
          Family F = parseFamily(Name, Ok);
          if (!Ok) {
            std::fprintf(stderr, "mpc_fuzz: unknown family '%s'\n",
                         Name.c_str());
            return 2;
          }
          Families.push_back(F);
        }
        Pos = Comma + 1;
      }
      if (Families.empty()) {
        usage();
        return 2;
      }
    } else if (Arg == "--dump") {
      Dump = true;
    } else if (Arg == "--list-families") {
      for (Family F : allFamilies())
        std::printf("%s%s\n", familyName(F),
                    familyIsValid(F) ? "" : " (invalid)");
      return 0;
    } else {
      usage();
      return Arg == "--help" || Arg == "-h" ? 0 : 2;
    }
  }

  if (Dump) {
    for (uint64_t S = 0; S < NumSeeds; ++S)
      for (Family F : Families) {
        std::printf("==== %s seed=%llu scale=%g ====\n", familyName(F),
                    static_cast<unsigned long long>(StartSeed + S), Scale);
        for (const SourceInput &Src :
             generateFamily(F, StartSeed + S, Scale))
          std::printf("---- %s ----\n%s", Src.FileName.c_str(),
                      Src.Text.c_str());
      }
  }

  FuzzStats Stats = runFuzzCampaign(Families, StartSeed, NumSeeds, Scale);

  std::printf("mpc_fuzz: %llu cases (%llu families x %llu seeds), "
              "%llu clean, %llu with diagnostics, %llu diagnostic lines\n",
              static_cast<unsigned long long>(Stats.CasesRun),
              static_cast<unsigned long long>(Families.size()),
              static_cast<unsigned long long>(NumSeeds),
              static_cast<unsigned long long>(Stats.CleanCompiles),
              static_cast<unsigned long long>(Stats.ErrorCompiles),
              static_cast<unsigned long long>(Stats.DiagsSeen));
  if (Stats.ok()) {
    std::printf("mpc_fuzz: all properties held (no crashes, deterministic, "
                "warm == cold)\n");
    return 0;
  }
  std::printf("mpc_fuzz: %zu violations\n", Stats.Violations.size());
  for (const FuzzViolation &V : Stats.Violations)
    std::printf("  [%s] %s\n    reproduce: mpc_fuzz --families %s --start "
                "%llu --seeds 1 --scale %g --dump\n",
                V.Kind.c_str(), V.Detail.c_str(), familyName(V.Case.F),
                static_cast<unsigned long long>(V.Case.Seed), V.Case.Scale);
  return 1;
}
