//===----------------------------------------------------------------------===//
//
// mpc_load_client: open-loop load generator against a running
// mpc_served instance.
//
//   mpc_load_client --port N [--rps R] [--requests N] [--connections N]
//                   [--seed N] [--scale F] [--variants N]
//                   [--deadline-ms N]
//
// --rps 0 (the default) runs closed-loop as fast as the connection pool
// allows — that measures the saturation ceiling; positive --rps offers a
// fixed open-loop arrival schedule and reports p50/p95/p99 end-to-end
// latency plus the server-reported queue-wait split.
//
//===----------------------------------------------------------------------===//

#include "net/LoadGen.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace mpc::net;

namespace {

double argNum(int Argc, char **Argv, int &I, const char *Flag) {
  if (I + 1 >= Argc) {
    std::fprintf(stderr, "mpc_load_client: %s needs a value\n", Flag);
    std::exit(2);
  }
  return std::strtod(Argv[++I], nullptr);
}

} // namespace

int main(int Argc, char **Argv) {
  LoadGenConfig Cfg;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--port")
      Cfg.Port = static_cast<uint16_t>(argNum(Argc, Argv, I, "--port"));
    else if (A == "--rps")
      Cfg.Rps = argNum(Argc, Argv, I, "--rps");
    else if (A == "--requests")
      Cfg.NumRequests =
          static_cast<uint64_t>(argNum(Argc, Argv, I, "--requests"));
    else if (A == "--connections")
      Cfg.Connections =
          static_cast<unsigned>(argNum(Argc, Argv, I, "--connections"));
    else if (A == "--seed")
      Cfg.Seed = static_cast<uint64_t>(argNum(Argc, Argv, I, "--seed"));
    else if (A == "--scale")
      Cfg.SourceScale = argNum(Argc, Argv, I, "--scale");
    else if (A == "--variants")
      Cfg.Variants =
          static_cast<unsigned>(argNum(Argc, Argv, I, "--variants"));
    else if (A == "--deadline-ms")
      Cfg.DeadlineMillis =
          static_cast<uint64_t>(argNum(Argc, Argv, I, "--deadline-ms"));
    else {
      std::fprintf(stderr, "mpc_load_client: unknown flag '%s'\n",
                   A.c_str());
      return 2;
    }
  }
  if (Cfg.Port == 0) {
    std::fprintf(stderr, "mpc_load_client: --port is required\n");
    return 2;
  }

  LoadGenReport Rep = runLoadGen(Cfg);
  std::printf("%s\n", formatReport(Rep).c_str());
  // Transport-level failure of every request = the server was not there.
  return Rep.Completed > 0 ? 0 : 1;
}
