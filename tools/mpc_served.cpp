//===----------------------------------------------------------------------===//
//
// mpc_served: the long-lived compile server binary.
//
//   mpc_served [--port N] [--threads N] [--queue-depth N]
//              [--policy reject|shed|block] [--max-inflight N]
//              [--idle-timeout-ms N] [--cache-mb N]
//
// Prints "listening on 127.0.0.1:<port>" once the socket is bound (with
// --port 0 the kernel picks the port — that line is how a harness learns
// it). SIGTERM/SIGINT trigger the graceful drain: stop accepting, answer
// every admitted job (or RetryAfter), Goodbye on every connection, then
// exit 0. The drain contract is what the tier-1 smoke test pins.
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

using namespace mpc;
using namespace mpc::net;

namespace {

// Self-pipe: the handler only writes one byte; all real shutdown work
// happens on the main thread, where it is allowed to take locks.
int SignalPipe[2] = {-1, -1};

void onSignal(int) {
  uint8_t B = 1;
  ssize_t Ignored = ::write(SignalPipe[1], &B, 1);
  (void)Ignored;
}

uint64_t argNum(int Argc, char **Argv, int &I, const char *Flag) {
  if (I + 1 >= Argc) {
    std::fprintf(stderr, "mpc_served: %s needs a value\n", Flag);
    std::exit(2);
  }
  return std::strtoull(Argv[++I], nullptr, 10);
}

} // namespace

int main(int Argc, char **Argv) {
  ServerConfig Cfg;
  Cfg.Service.Threads = 2;
  Cfg.Service.MaxQueueDepth = 64;
  Cfg.Service.Policy = QueuePolicy::RejectNewest;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--port") {
      Cfg.Port = static_cast<uint16_t>(argNum(Argc, Argv, I, "--port"));
    } else if (A == "--threads") {
      Cfg.Service.Threads =
          static_cast<unsigned>(argNum(Argc, Argv, I, "--threads"));
    } else if (A == "--queue-depth") {
      Cfg.Service.MaxQueueDepth =
          static_cast<size_t>(argNum(Argc, Argv, I, "--queue-depth"));
    } else if (A == "--policy") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "mpc_served: --policy needs a value\n");
        return 2;
      }
      std::string P = Argv[++I];
      if (P == "reject")
        Cfg.Service.Policy = QueuePolicy::RejectNewest;
      else if (P == "shed")
        Cfg.Service.Policy = QueuePolicy::ShedOldest;
      else if (P == "block")
        Cfg.Service.Policy = QueuePolicy::Block;
      else {
        std::fprintf(stderr, "mpc_served: unknown policy '%s'\n",
                     P.c_str());
        return 2;
      }
    } else if (A == "--max-inflight") {
      Cfg.MaxInFlightPerConn =
          static_cast<uint32_t>(argNum(Argc, Argv, I, "--max-inflight"));
    } else if (A == "--idle-timeout-ms") {
      Cfg.IdleTimeoutMs =
          static_cast<int>(argNum(Argc, Argv, I, "--idle-timeout-ms"));
    } else if (A == "--cache-mb") {
      Cfg.Service.Cache.MaxBytes =
          argNum(Argc, Argv, I, "--cache-mb") * 1024 * 1024;
    } else {
      std::fprintf(stderr, "mpc_served: unknown flag '%s'\n", A.c_str());
      return 2;
    }
  }

  if (::pipe(SignalPipe) != 0) {
    std::fprintf(stderr, "mpc_served: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  CompileServer Server(Cfg);
  std::string Err;
  if (!Server.start(Err)) {
    std::fprintf(stderr, "mpc_served: start failed: %s\n", Err.c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u\n", unsigned(Server.port()));
  std::fflush(stdout);

  // Park until a signal arrives (EINTR restarts are expected here).
  uint8_t B = 0;
  for (;;) {
    ssize_t N = ::read(SignalPipe[0], &B, 1);
    if (N == 1)
      break;
    if (N < 0 && errno == EINTR)
      continue;
    break; // pipe broken — treat as shutdown
  }

  std::printf("draining\n");
  std::fflush(stdout);
  Server.requestDrain();
  Server.waitDrained();

  ServerStats St = Server.snapshot();
  std::printf("drained: %llu conns, %llu admitted, %llu responses, "
              "%llu retry-after, %llu protocol-errors, %llu orphaned\n",
              static_cast<unsigned long long>(St.ConnectionsAccepted),
              static_cast<unsigned long long>(St.RequestsAdmitted),
              static_cast<unsigned long long>(St.ResponsesSent),
              static_cast<unsigned long long>(St.RetryAfterSent),
              static_cast<unsigned long long>(St.ProtocolErrors),
              static_cast<unsigned long long>(St.OrphanedResults));
  std::fflush(stdout);
  return 0;
}
