//===----------------------------------------------------------------------===//
// Unit tests for the measurement substrates: the generational-heap model
// and the cache-hierarchy simulator (incl. the inclusive-L3 property the
// Figure 8d explanation rests on).
//===----------------------------------------------------------------------===//

#include "memsim/CacheSim.h"
#include "memsim/ManagedHeap.h"
#include "memsim/PerfCounters.h"

#include <gtest/gtest.h>

using namespace mpc;

namespace {

TEST(ManagedHeap, ShortLivedObjectsStayYoung) {
  ManagedHeap Heap(/*YoungGenBytes=*/1024, /*TenureThreshold=*/1);
  uint64_t Birth = 0;
  void *P = Heap.allocate(100, Birth);
  Heap.deallocate(P, 100, Birth); // dies immediately, same epoch
  EXPECT_EQ(Heap.stats().TenuredObjects, 0u);
  EXPECT_EQ(Heap.stats().AllocatedBytes, 100u);
}

TEST(ManagedHeap, SurvivorsGetTenured) {
  ManagedHeap Heap(1024, 1);
  uint64_t Birth = 0;
  void *Old = Heap.allocate(100, Birth);
  // Push the clock across a young-gen boundary.
  for (int I = 0; I < 20; ++I) {
    uint64_t B2 = 0;
    void *Tmp = Heap.allocate(100, B2);
    Heap.deallocate(Tmp, 100, B2);
  }
  EXPECT_GE(Heap.minorGCs(), 1u);
  // Fillers straddling an epoch boundary may tenure too; the old object
  // must add exactly one more promotion.
  uint64_t TenuredBefore = Heap.stats().TenuredObjects;
  Heap.deallocate(Old, 100, Birth); // lifetime spanned a minor GC
  EXPECT_EQ(Heap.stats().TenuredObjects, TenuredBefore + 1);
  EXPECT_GE(Heap.stats().TenuredBytes, 100u);
}

TEST(ManagedHeap, ThresholdControlsPromotion) {
  ManagedHeap Heap(1000, /*TenureThreshold=*/3);
  uint64_t Birth = 0;
  void *P = Heap.allocate(10, Birth);
  uint64_t B2 = 0;
  void *Filler = Heap.allocate(2500, B2); // crosses 2 boundaries
  Heap.deallocate(P, 10, Birth);
  EXPECT_EQ(Heap.stats().TenuredObjects, 0u); // 2 < 3 epochs survived
  Heap.deallocate(Filler, 2500, B2);
}

TEST(CacheSim, HitAfterMiss) {
  CacheSim CS;
  CS.load(0x1000, 8);
  EXPECT_EQ(CS.counters().L1DLoadMisses, 1u);
  CS.load(0x1000, 8);
  EXPECT_EQ(CS.counters().L1DLoads, 2u);
  EXPECT_EQ(CS.counters().L1DLoadMisses, 1u); // second access hits
}

TEST(CacheSim, StraddlingAccessTouchesTwoLines) {
  CacheSim CS;
  CS.load(0x1000 + 60, 8); // crosses a 64B boundary
  EXPECT_EQ(CS.counters().L1DLoads, 2u);
}

TEST(CacheSim, CapacityEvictionCausesMemoryAccess) {
  CacheSim CS;
  // Touch far more distinct lines than the whole hierarchy holds.
  for (uint64_t I = 0; I < 600000; ++I)
    CS.load(I * 64, 4);
  EXPECT_GT(CS.counters().MemoryAccesses, 0u);
  // Re-touch the very first line: long evicted, misses again.
  uint64_t MissesBefore = CS.counters().L1DLoadMisses;
  CS.load(0, 4);
  EXPECT_EQ(CS.counters().L1DLoadMisses, MissesBefore + 1);
}

TEST(CacheSim, InclusiveL3BackInvalidatesL1Instructions) {
  // The Figure 8d mechanism: data streaming through the inclusive L3
  // evicts code lines from L1i even though the code itself is hot.
  CacheSim CS;
  uint64_t CodeAddr = 0x7e0000000000ull;
  CS.fetch(CodeAddr, 64);
  EXPECT_EQ(CS.counters().L1IMisses, 1u);
  CS.fetch(CodeAddr, 64);
  EXPECT_EQ(CS.counters().L1IMisses, 1u); // hot

  // Stream enough data to cycle the entire L3.
  for (uint64_t I = 0; I < 400000; ++I)
    CS.load(0x10000000 + I * 64, 4);

  CS.fetch(CodeAddr, 64);
  EXPECT_EQ(CS.counters().L1IMisses, 2u)
      << "L3 eviction must back-invalidate the L1i line";
}

TEST(PerfCounters, CyclesCombineInstructionsAndStalls) {
  CacheSim CS;
  PerfCounters PC(CS);
  PC.instructions(1000);
  CS.load(0x5000, 4); // one cold miss -> memory access
  PerfStats S = PC.stats();
  EXPECT_EQ(S.Instructions, 1000u);
  EXPECT_GT(S.StalledCycles, 0u);
  EXPECT_GT(S.Cycles, S.StalledCycles);
}

} // namespace
