//===----------------------------------------------------------------------===//
// Property tests for the cache-hierarchy simulator and the generational
// heap model — the two measurement substrates standing in for the paper's
// perf counters (Figures 7/8) and HotSpot GC logs (Figures 5/6). The
// simulators' mechanics must be trustworthy for the benchmark shapes to
// mean anything, so the replacement policy, inclusivity and tenuring
// accounting are pinned here in isolation.
//===----------------------------------------------------------------------===//

#include "memsim/CacheSim.h"
#include "memsim/ManagedHeap.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace mpc;

namespace {

//===----------------------------------------------------------------------===//
// CacheLevel: replacement policy
//===----------------------------------------------------------------------===//

TEST(CacheLevelTest, AssociativityBoundsResidency) {
  // Ways distinct lines mapping to one set all stay resident; one more
  // evicts the least recently used.
  CacheGeometry G{/*Sets=*/4, /*Ways=*/2, /*LineBytes=*/64};
  CacheLevel L(G);
  uint64_t SameSet0 = 0;      // set 0
  uint64_t SameSet1 = 4;      // set 0 again (4 sets)
  uint64_t SameSet2 = 8;      // set 0 again
  EXPECT_FALSE(L.lookup(SameSet0));
  L.insert(SameSet0);
  EXPECT_FALSE(L.lookup(SameSet1));
  L.insert(SameSet1);
  EXPECT_TRUE(L.lookup(SameSet0));
  EXPECT_TRUE(L.lookup(SameSet1));
  // Third line in the same set evicts; both prior lines were just touched,
  // so the evicted one is the least recently used: SameSet0.
  L.lookup(SameSet0); // make SameSet1 the LRU
  uint64_t Evicted = L.insert(SameSet2);
  EXPECT_EQ(Evicted, SameSet1);
  EXPECT_TRUE(L.lookup(SameSet0));
  EXPECT_FALSE(L.lookup(SameSet1));
  EXPECT_TRUE(L.lookup(SameSet2));
}

TEST(CacheLevelTest, DifferentSetsDoNotConflict) {
  CacheGeometry G{/*Sets=*/4, /*Ways=*/1, /*LineBytes=*/64};
  CacheLevel L(G);
  for (uint64_t Line = 0; Line < 4; ++Line) {
    uint64_t Evicted = L.insert(Line);
    EXPECT_EQ(Evicted, ~0ull) << "line " << Line;
  }
  for (uint64_t Line = 0; Line < 4; ++Line)
    EXPECT_TRUE(L.lookup(Line));
}

TEST(CacheLevelTest, InvalidateRemovesLine) {
  CacheGeometry G{/*Sets=*/2, /*Ways=*/2, /*LineBytes=*/64};
  CacheLevel L(G);
  L.insert(10);
  EXPECT_TRUE(L.lookup(10));
  EXPECT_TRUE(L.invalidate(10));
  EXPECT_FALSE(L.lookup(10));
  EXPECT_FALSE(L.invalidate(10)); // second invalidation is a no-op
}

TEST(CacheLevelTest, LruIsPerSet) {
  // Touching lines in set 1 must not age lines in set 0.
  CacheGeometry G{/*Sets=*/2, /*Ways=*/1, /*LineBytes=*/64};
  CacheLevel L(G);
  L.insert(0); // set 0
  L.insert(1); // set 1
  L.insert(3); // set 1, evicts 1
  EXPECT_TRUE(L.lookup(0));
  EXPECT_FALSE(L.lookup(1));
  EXPECT_TRUE(L.lookup(3));
}

//===----------------------------------------------------------------------===//
// CacheSim hierarchy behaviour
//===----------------------------------------------------------------------===//

TEST(CacheHierarchy, RepeatedAccessHitsL1Only) {
  CacheSim CS;
  CS.load(0x1000, 8);
  CS.resetCounters();
  for (int I = 0; I < 100; ++I)
    CS.load(0x1000, 8);
  const CacheCounters &C = CS.counters();
  EXPECT_EQ(C.L1DLoads, 100u);
  EXPECT_EQ(C.L1DLoadMisses, 0u);
  EXPECT_EQ(C.L2Accesses, 0u);
  EXPECT_EQ(C.MemoryAccesses, 0u);
}

TEST(CacheHierarchy, ColdMissGoesAllTheWayToMemory) {
  CacheSim CS;
  CS.load(0x5000, 8);
  const CacheCounters &C = CS.counters();
  EXPECT_EQ(C.L1DLoadMisses, 1u);
  EXPECT_EQ(C.L2Misses, 1u);
  EXPECT_EQ(C.L3Misses, 1u);
  EXPECT_EQ(C.MemoryAccesses, 1u);
}

TEST(CacheHierarchy, StoresAreCountedSeparately) {
  CacheSim CS;
  CS.store(0x2000, 8);
  CS.store(0x2000, 8);
  const CacheCounters &C = CS.counters();
  EXPECT_EQ(C.L1DStores, 2u);
  EXPECT_EQ(C.L1DStoreMisses, 1u);
  EXPECT_EQ(C.L1DLoads, 0u);
}

TEST(CacheHierarchy, InstructionFetchesUseSplitL1) {
  CacheSim CS;
  CS.fetch(0x8000, 16);
  CS.fetch(0x8000, 16);
  const CacheCounters &C = CS.counters();
  EXPECT_EQ(C.L1IFetches, 2u);
  EXPECT_EQ(C.L1IMisses, 1u);
  EXPECT_EQ(C.L1DLoads, 0u); // data side untouched
  // A data load of the same line must still miss L1d (split caches)...
  CS.load(0x8000, 8);
  EXPECT_EQ(CS.counters().L1DLoadMisses, 1u);
  // ...but hit L2, which is unified (no new memory access).
  EXPECT_EQ(CS.counters().MemoryAccesses, 1u);
}

TEST(CacheHierarchy, WideAccessTouchesEveryStraddledLine) {
  CacheSim CS;
  // 256 bytes starting at a line boundary: 4 lines.
  CS.load(0x10000, 256);
  EXPECT_EQ(CS.counters().L1DLoads, 4u);
  // 8 bytes straddling a line boundary: 2 lines.
  CS.resetCounters();
  CS.load(0x20000 + CacheSim::LineBytes - 4, 8);
  EXPECT_EQ(CS.counters().L1DLoads, 2u);
}

TEST(CacheHierarchy, WorkingSetLargerThanL1SpillsToL2) {
  CacheSim CS;
  // 64KB working set: fits L2 (256KB), not L1d (32KB). Two passes: the
  // second pass must hit L2 but not L1.
  const uint64_t Lines = (64 * 1024) / CacheSim::LineBytes;
  for (uint64_t I = 0; I < Lines; ++I)
    CS.load(0x100000 + I * CacheSim::LineBytes, 8);
  CS.resetCounters();
  for (uint64_t I = 0; I < Lines; ++I)
    CS.load(0x100000 + I * CacheSim::LineBytes, 8);
  const CacheCounters &C = CS.counters();
  EXPECT_GT(C.L1DLoadMisses, Lines / 2); // mostly misses L1
  EXPECT_EQ(C.MemoryAccesses, 0u);       // but never leaves the chip
}

TEST(CacheHierarchy, InclusiveL3EvictionBackInvalidatesL2) {
  // Sweep far more than the L3 capacity, then re-touch the first line:
  // inclusivity demands it is gone from EVERY level, so the re-touch goes
  // to memory.
  CacheSim CS;
  const uint64_t L3Bytes = 25ull * 1024 * 1024;
  const uint64_t Lines = (2 * L3Bytes) / CacheSim::LineBytes;
  CS.load(0x0, 8);
  for (uint64_t I = 1; I < Lines; ++I)
    CS.load(I * CacheSim::LineBytes, 8);
  CS.resetCounters();
  CS.load(0x0, 8);
  EXPECT_EQ(CS.counters().MemoryAccesses, 1u);
}

/// Locality property over strides: for a fixed number of accesses, larger
/// strides (less spatial locality) can only increase L1 misses.
class StrideLocality : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StrideLocality, MissesGrowMonotonicallyWithStride) {
  uint32_t Stride = GetParam();
  auto MissesAtStride = [](uint32_t S) {
    CacheSim CS;
    for (uint64_t I = 0; I < 4096; ++I)
      CS.load(0x40000 + I * S, 8);
    return CS.counters().L1DLoadMisses;
  };
  ASSERT_GE(Stride, 8u);
  EXPECT_LE(MissesAtStride(Stride / 2), MissesAtStride(Stride));
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideLocality,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u),
                         [](const ::testing::TestParamInfo<uint32_t> &I) {
                           return "stride" + std::to_string(I.param);
                         });

//===----------------------------------------------------------------------===//
// ManagedHeap: generational accounting
//===----------------------------------------------------------------------===//

TEST(HeapModel, ObjectDyingWithinEpochStaysYoung) {
  ManagedHeap H(/*YoungGenBytes=*/1000, /*TenureThreshold=*/1);
  uint64_t Birth;
  void *P = H.allocate(100, Birth);
  H.deallocate(P, 100, Birth);
  EXPECT_EQ(H.stats().TenuredObjects, 0u);
  EXPECT_EQ(H.stats().FreedObjects, 1u);
}

TEST(HeapModel, ObjectSurvivingMinorGCIsTenured) {
  ManagedHeap H(/*YoungGenBytes=*/1000, /*TenureThreshold=*/1);
  uint64_t Birth;
  void *P = H.allocate(100, Birth);
  // Burn through one young generation (sized so no burn object's own
  // allocation lands exactly on the epoch boundary): a minor GC happens.
  for (int I = 0; I < 19; ++I) {
    uint64_t B;
    void *Q = H.allocate(50, B);
    H.deallocate(Q, 50, B);
  }
  H.deallocate(P, 100, Birth);
  EXPECT_EQ(H.stats().TenuredObjects, 1u);
  EXPECT_EQ(H.stats().TenuredBytes, 100u);
}

TEST(HeapModel, HigherThresholdDelaysPromotion) {
  // With threshold 3, surviving one minor GC is not enough.
  ManagedHeap H(/*YoungGenBytes=*/1000, /*TenureThreshold=*/3);
  uint64_t Birth;
  void *P = H.allocate(100, Birth);
  for (int I = 0; I < 10; ++I) { // one epoch's worth
    uint64_t B;
    void *Q = H.allocate(100, B);
    H.deallocate(Q, 100, B);
  }
  H.deallocate(P, 100, Birth);
  EXPECT_EQ(H.stats().TenuredObjects, 0u);

  uint64_t Birth2;
  void *P2 = H.allocate(100, Birth2);
  for (int I = 0; I < 30; ++I) { // three epochs' worth
    uint64_t B;
    void *Q = H.allocate(100, B);
    H.deallocate(Q, 100, B);
  }
  H.deallocate(P2, 100, Birth2);
  EXPECT_EQ(H.stats().TenuredObjects, 1u);
}

TEST(HeapModel, ChargeBytesDriveTheClockNotMallocBytes) {
  // Tree nodes charge more than their malloc size (child-cell accounting):
  // the clock must advance by the charge.
  ManagedHeap H(/*YoungGenBytes=*/1000, /*TenureThreshold=*/1);
  uint64_t Birth;
  void *P = H.allocate(/*MallocBytes=*/16, /*ChargeBytes=*/500, Birth);
  uint64_t Birth2;
  void *Q = H.allocate(16, 500, Birth2);
  // Asymmetric allocations must free through the asymmetric overload so
  // the real-storage size reaches the slab's size-class lookup.
  H.deallocate(Q, /*MallocBytes=*/16, /*ChargeBytes=*/500, Birth2);
  H.deallocate(P, /*MallocBytes=*/16, /*ChargeBytes=*/500, Birth);
  EXPECT_EQ(H.stats().AllocatedBytes, 1000u);
  EXPECT_EQ(H.minorGCs(), 1u);
}

TEST(HeapModel, LiveAndPeakTrackAllocations) {
  ManagedHeap H(1 << 20, 1);
  uint64_t B1, B2;
  void *P1 = H.allocate(300, B1);
  void *P2 = H.allocate(200, B2);
  EXPECT_EQ(H.stats().LiveBytes, 500u);
  EXPECT_EQ(H.stats().PeakLiveBytes, 500u);
  H.deallocate(P2, 200, B2);
  EXPECT_EQ(H.stats().LiveBytes, 300u);
  EXPECT_EQ(H.stats().PeakLiveBytes, 500u);
  H.deallocate(P1, 300, B1);
  EXPECT_EQ(H.stats().LiveBytes, 0u);
}

TEST(HeapModel, BoundaryAttributesPromotionToEarlierStage) {
  // An object promoted during stage 1 but dying in stage 2 must be
  // attributed to stage 1 (TenuredBeforeBoundary) — the frontend-tree
  // case that otherwise dilutes the Figure 6 comparison.
  ManagedHeap H(/*YoungGenBytes=*/1000, /*TenureThreshold=*/1);
  uint64_t EarlyBirth;
  void *Early = H.allocate(100, EarlyBirth);
  // Burn three epochs: Early is promoted long before the boundary.
  for (int I = 0; I < 60; ++I) {
    uint64_t B;
    void *Q = H.allocate(50, B);
    H.deallocate(Q, 50, B);
  }
  H.markBoundary();
  // An object allocated after the boundary that also tenures.
  uint64_t LateBirth;
  void *Late = H.allocate(100, LateBirth);
  for (int I = 0; I < 40; ++I) {
    uint64_t B;
    void *Q = H.allocate(50, B);
    H.deallocate(Q, 50, B);
  }
  H.deallocate(Early, 100, EarlyBirth);
  H.deallocate(Late, 100, LateBirth);
  const HeapStats &S = H.stats();
  EXPECT_EQ(S.TenuredObjects, 2u);
  EXPECT_EQ(S.TenuredBeforeBoundaryObjects, 1u);
  EXPECT_EQ(S.TenuredBeforeBoundaryBytes, 100u);
}

TEST(HeapModel, ResetClearsClockAndStats) {
  ManagedHeap H(1000, 1);
  uint64_t B;
  void *P = H.allocate(2500, B);
  H.deallocate(P, 2500, B);
  EXPECT_GT(H.minorGCs(), 0u);
  H.resetStats();
  EXPECT_EQ(H.minorGCs(), 0u);
  EXPECT_EQ(H.stats().AllocatedBytes, 0u);
  EXPECT_EQ(H.stats().TenuredObjects, 0u);
}

/// The central mechanism of Figures 5/6, reproduced in miniature: N
/// "nodes" are each rewritten by P phases. Fused, the P rewrites of one
/// node happen back-to-back (intermediate dies young); unfused, a node's
/// rewrite survives a whole sweep of the other N-1 nodes.
class TenuringMechanism : public ::testing::TestWithParam<unsigned> {};

TEST_P(TenuringMechanism, FusionReducesTenuredBytes) {
  const unsigned Nodes = 2000;
  const unsigned Phases = GetParam();
  const unsigned ObjBytes = 64;
  // Young generation sized well below one full sweep, as in the paper's
  // setting where the tree vastly exceeds the young gen.
  const uint64_t YoungGen = Nodes * ObjBytes / 4;

  struct Obj {
    void *P = nullptr;
    uint64_t Birth = 0;
  };

  auto Sweep = [&](bool Fused) {
    ManagedHeap H(YoungGen, 1);
    std::vector<Obj> Cur(Nodes);
    for (Obj &O : Cur)
      O.P = H.allocate(ObjBytes, O.Birth);
    if (Fused) {
      for (unsigned N = 0; N < Nodes; ++N)
        for (unsigned Ph = 0; Ph < Phases; ++Ph) {
          Obj Next;
          Next.P = H.allocate(ObjBytes, Next.Birth);
          H.deallocate(Cur[N].P, ObjBytes, Cur[N].Birth);
          Cur[N] = Next;
        }
    } else {
      for (unsigned Ph = 0; Ph < Phases; ++Ph)
        for (unsigned N = 0; N < Nodes; ++N) {
          Obj Next;
          Next.P = H.allocate(ObjBytes, Next.Birth);
          H.deallocate(Cur[N].P, ObjBytes, Cur[N].Birth);
          Cur[N] = Next;
        }
    }
    for (Obj &O : Cur)
      H.deallocate(O.P, ObjBytes, O.Birth);
    return H.stats().TenuredBytes;
  };

  uint64_t FusedTenured = Sweep(true);
  uint64_t UnfusedTenured = Sweep(false);
  // Fusion always tenures less; the gap widens with the phase count (at
  // P phases only 1/P of fused rewrites survive a sweep boundary, versus
  // every rewrite under the unfused schedule).
  EXPECT_LT(FusedTenured, UnfusedTenured)
      << "fused=" << FusedTenured << " unfused=" << UnfusedTenured;
  if (Phases >= 5)
    EXPECT_LT(FusedTenured, UnfusedTenured / 2)
        << "fused=" << FusedTenured << " unfused=" << UnfusedTenured;
}

INSTANTIATE_TEST_SUITE_P(PhaseCounts, TenuringMechanism,
                         ::testing::Values(2u, 5u, 10u, 25u),
                         [](const ::testing::TestParamInfo<unsigned> &I) {
                           return "phases" + std::to_string(I.param);
                         });

} // namespace
